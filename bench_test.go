package dtdctcp

// One benchmark per figure of the paper plus the ablations listed in
// DESIGN.md. Each bench runs a reduced-size instance of the experiment
// behind the figure and reports the figure's headline quantity as a
// custom metric, so `go test -bench=.` both exercises every experiment
// path end to end and prints the reproduced numbers. The full-size
// sweeps with the paper's exact parameters are produced by
// cmd/dtexperiments (see EXPERIMENTS.md).

import (
	"math"
	"testing"
	"time"

	"dtdctcp/internal/control"
)

func paperBase() DumbbellConfig {
	return DumbbellConfig{
		Rate:       10 * Gbps,
		RTT:        100 * time.Microsecond,
		BufferPkts: 600,
		Duration:   40 * time.Millisecond,
		Warmup:     10 * time.Millisecond,
		Seed:       1,
	}
}

func runDumbbell(b *testing.B, p Protocol, flows int) *DumbbellResult {
	b.Helper()
	cfg := paperBase()
	cfg.Protocol = p
	cfg.Flows = flows
	res, err := RunDumbbell(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFig01QueueOscillation regenerates Fig. 1: the bottleneck queue
// trace of DCTCP at N = 10 vs N = 100 (10 Gbps, 100 µs RTT, K = 40,
// g = 1/16). The figure's visual — oscillation amplitude growing with the
// flow count — is reported as the peak-to-peak queue excursion.
func BenchmarkFig01QueueOscillation(b *testing.B) {
	for _, n := range []int{10, 100} {
		n := n
		b.Run(map[int]string{10: "N=10", 100: "N=100"}[n], func(b *testing.B) {
			var swing float64
			for i := 0; i < b.N; i++ {
				res := runDumbbell(b, DCTCP(40, 1.0/16), n)
				swing = res.QueueMaxPkts - res.QueueMinPkts
			}
			b.ReportMetric(swing, "pkts-peak2peak")
		})
	}
}

// BenchmarkFig02MarkingStrategies regenerates Fig. 2: the same triangular
// queue trajectory replayed through both markers; the metric is the
// marked fraction of arrivals (DT-DCTCP marks a longer, shifted window).
func BenchmarkFig02MarkingStrategies(b *testing.B) {
	traj := TriangleTrajectory(80)
	for _, p := range []Protocol{DCTCP(40, 1.0/16), DTDCTCP(30, 50, 1.0/16)} {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			var frac float64
			for i := 0; i < b.N; i++ {
				dec, err := ReplayMarker(p, traj)
				if err != nil {
					b.Fatal(err)
				}
				marked := 0
				for _, d := range dec {
					if d.Marked {
						marked++
					}
				}
				frac = float64(marked) / float64(len(dec))
			}
			b.ReportMetric(frac, "marked-fraction")
		})
	}
}

// BenchmarkFig06DescribingFunctions validates the closed-form DFs of
// Figs. 6/8 (Eqs. 22 and 27) against numeric Fourier integration of the
// marking waveform; the metric is the worst relative error across an
// amplitude sweep.
func BenchmarkFig06DescribingFunctions(b *testing.B) {
	dc := control.DCTCPDF{K: 40}
	dt := control.DTDCTCPDF{K1: 30, K2: 50}
	var worst float64
	for i := 0; i < b.N; i++ {
		worst = 0
		for x := 55.0; x <= 400; x += 23 {
			num := control.NumericDF(x, 100000, func(th float64) float64 {
				if x*math.Sin(th) >= 40 {
					return 1
				}
				return 0
			})
			rel := cabs(num-dc.Eval(x)) / cabs(dc.Eval(x))
			if rel > worst {
				worst = rel
			}
			phi1 := math.Asin(30 / x)
			phi2 := math.Pi - math.Asin(50/x)
			numDT := control.NumericDF(x, 100000, func(th float64) float64 {
				if th >= phi1 && th <= phi2 {
					return 1
				}
				return 0
			})
			rel = cabs(numDT-dt.Eval(x)) / cabs(dt.Eval(x))
			if rel > worst {
				worst = rel
			}
		}
	}
	b.ReportMetric(worst, "worst-rel-err")
}

func cabs(z complex128) float64 {
	return math.Hypot(real(z), imag(z))
}

// BenchmarkFig09Nyquist regenerates the paper's Fig. 9 headline: the
// critical flow count at which the Nyquist loci first intersect
// (oscillation onset) for each marker. The paper reports N ≈ 60 for
// DCTCP and N ≈ 70 for DT-DCTCP; the reproduced ordering (DT later) is
// what the metric captures.
func BenchmarkFig09Nyquist(b *testing.B) {
	params := PaperAnalysisParams()
	for _, p := range []Protocol{DCTCP(40, 1.0/16), DTDCTCP(30, 50, 1.0/16)} {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			var onset int
			for i := 0; i < b.N; i++ {
				n, err := CriticalFlows(p, params, 2, 150)
				if err != nil {
					b.Fatal(err)
				}
				onset = n
			}
			b.ReportMetric(float64(onset), "critical-N")
		})
	}
}

// BenchmarkFig10AvgQueue regenerates Fig. 10: average queue length vs
// flow count, normalized to the protocol's own N = 10 baseline. The
// metric is the normalized mean at N = 60 (DCTCP strays far above 1;
// DT-DCTCP stays closer).
func BenchmarkFig10AvgQueue(b *testing.B) {
	for _, p := range []Protocol{DCTCP(40, 1.0/16), DTDCTCP(30, 50, 1.0/16)} {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			var norm float64
			for i := 0; i < b.N; i++ {
				base := runDumbbell(b, p, 10)
				at60 := runDumbbell(b, p, 60)
				norm = at60.QueueMeanPkts / base.QueueMeanPkts
			}
			b.ReportMetric(norm, "mean-vs-N10")
		})
	}
}

// BenchmarkFig11QueueStdDev regenerates Fig. 11: the queue standard
// deviation at N = 60 for both protocols (DT-DCTCP's must be smaller).
func BenchmarkFig11QueueStdDev(b *testing.B) {
	for _, p := range []Protocol{DCTCP(40, 1.0/16), DTDCTCP(30, 50, 1.0/16)} {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			var sd float64
			for i := 0; i < b.N; i++ {
				sd = runDumbbell(b, p, 60).QueueStdPkts
			}
			b.ReportMetric(sd, "queue-sd-pkts")
		})
	}
}

// BenchmarkFig12Alpha regenerates Fig. 12: the flows' average congestion
// estimate α at N = 60 for both protocols.
func BenchmarkFig12Alpha(b *testing.B) {
	for _, p := range []Protocol{DCTCP(40, 1.0/16), DTDCTCP(30, 50, 1.0/16)} {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			var alpha float64
			for i := 0; i < b.N; i++ {
				alpha = runDumbbell(b, p, 60).AlphaMean
			}
			b.ReportMetric(alpha, "alpha")
		})
	}
}

// BenchmarkFig14Incast regenerates Fig. 14: goodput of the synchronized
// 64 KB-per-worker query at a flow count past DCTCP's collapse point.
// DT-DCTCP (anticipatory thresholds around the same mean as K) sustains
// several times DCTCP's goodput there — the "postponed collapse".
func BenchmarkFig14Incast(b *testing.B) {
	for _, p := range []Protocol{DCTCP(21, 1.0/16), DTDCTCP(16, 26, 1.0/16)} {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			var goodput float64
			for i := 0; i < b.N; i++ {
				res, err := RunIncast(DefaultTestbed(p, 56), 5)
				if err != nil {
					b.Fatal(err)
				}
				goodput = res.MeanGoodputBps / 1e6
			}
			b.ReportMetric(goodput, "goodput-Mbps")
		})
	}
}

// BenchmarkFig15CompletionTime regenerates Fig. 15: the completion time
// of a 1 MB query split across the workers, at a count where timeouts
// begin to stretch the tail (the ≈10 ms floor jumps toward RTOmin).
func BenchmarkFig15CompletionTime(b *testing.B) {
	for _, p := range []Protocol{DCTCP(21, 1.0/16), DTDCTCP(16, 26, 1.0/16)} {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				res, err := RunCompletionTime(DefaultTestbed(p, 48), 5)
				if err != nil {
					b.Fatal(err)
				}
				mean = res.MeanCompletion.Seconds() * 1000
			}
			b.ReportMetric(mean, "completion-ms")
		})
	}
}

// BenchmarkAblationThresholdGap (A1): vary the K1/K2 gap around a fixed
// mean of 40 packets and report the queue σ at N = 60 — wider hysteresis
// tames the oscillation further, at the cost of a larger excursion band.
func BenchmarkAblationThresholdGap(b *testing.B) {
	for _, gap := range []int{0, 10, 20, 40} {
		gap := gap
		b.Run(map[int]string{0: "gap=0", 10: "gap=10", 20: "gap=20", 40: "gap=40"}[gap], func(b *testing.B) {
			p := DTDCTCP(40-gap/2, 40+gap/2, 1.0/16)
			if gap == 0 {
				p = DCTCP(40, 1.0/16)
			}
			var sd float64
			for i := 0; i < b.N; i++ {
				sd = runDumbbell(b, p, 60).QueueStdPkts
			}
			b.ReportMetric(sd, "queue-sd-pkts")
		})
	}
}

// BenchmarkAblationGain (A2): sensitivity of the queue σ to DCTCP's
// estimation gain g at N = 60.
func BenchmarkAblationGain(b *testing.B) {
	for _, g := range []float64{1.0 / 4, 1.0 / 16, 1.0 / 64} {
		g := g
		b.Run(map[float64]string{0.25: "g=1_4", 1.0 / 16: "g=1_16", 1.0 / 64: "g=1_64"}[g], func(b *testing.B) {
			var sd float64
			for i := 0; i < b.N; i++ {
				sd = runDumbbell(b, DCTCP(40, g), 60).QueueStdPkts
			}
			b.ReportMetric(sd, "queue-sd-pkts")
		})
	}
}

// BenchmarkAblationHysteresisDirection (A3): the paper's two DT-DCTCP
// parameterizations at equal mean threshold in the incast scenario —
// anticipatory (K1 < K2) vs inverted/hysteresis (K1 > K2). The metric is
// goodput at n = 56; the anticipatory order is what postpones collapse.
func BenchmarkAblationHysteresisDirection(b *testing.B) {
	for _, tc := range []struct {
		name string
		p    Protocol
	}{
		{"anticipatory-16-26", DTDCTCP(16, 26, 1.0/16)},
		{"hysteresis-26-16", DTDCTCP(26, 16, 1.0/16)},
		// The paper's literal second testbed parameterization:
		// 34 KB/30 KB of 1.5 KB packets.
		{"paper-testbed-23-20", DTDCTCP(23, 20, 1.0/16)},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var goodput float64
			for i := 0; i < b.N; i++ {
				res, err := RunIncast(DefaultTestbed(tc.p, 56), 5)
				if err != nil {
					b.Fatal(err)
				}
				goodput = res.MeanGoodputBps / 1e6
			}
			b.ReportMetric(goodput, "goodput-Mbps")
		})
	}
}

// BenchmarkAblationAQM (A4): queue law comparison at N = 60 — DropTail
// (Reno and CUBIC), RFC3168 ECN, PIE and CoDel (delay targets ≈ K packets
// at 10 Gbps), single threshold (DCTCP) and double threshold — reporting
// the mean queue in packets.
func BenchmarkAblationAQM(b *testing.B) {
	// Delay targets for PIE/CoDel: 200 µs ≈ 167 packets at 10 Gbps
	// (window-based flows cannot hold a target much below the 100 µs
	// RTT); CoDel's interval spans a handful of RTTs.
	pie := RenoPIE(10*Gbps, 200*time.Microsecond)
	codel := RenoCoDel(200*time.Microsecond, time.Millisecond)
	for _, p := range []Protocol{Reno(), Cubic(), RenoECN(40), pie, codel, DCTCP(40, 1.0/16), DTDCTCP(30, 50, 1.0/16)} {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				mean = runDumbbell(b, p, 60).QueueMeanPkts
			}
			b.ReportMetric(mean, "queue-mean-pkts")
		})
	}
}
