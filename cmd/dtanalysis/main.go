// Command dtanalysis runs the paper's describing-function stability
// analysis (Sections IV–V): it evaluates the Nyquist criterion for a
// marking law at a given flow count, predicts the limit cycle, and
// searches for the critical flow count at which oscillation first
// appears (Fig. 9).
//
// Examples:
//
//	dtanalysis -k 40 -n 60
//	dtanalysis -dt -k1 30 -k2 50 -critical
//	dtanalysis -k 40 -locus locus.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"

	"dtdctcp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dtanalysis:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dtanalysis", flag.ContinueOnError)
	var (
		dt       = fs.Bool("dt", false, "analyze DT-DCTCP instead of DCTCP")
		k        = fs.Int("k", 40, "DCTCP threshold in packets")
		k1       = fs.Int("k1", 30, "DT-DCTCP mark-on threshold in packets")
		k2       = fs.Int("k2", 50, "DT-DCTCP mark-off threshold in packets")
		g        = fs.Float64("g", 1.0/16, "DCTCP estimation gain")
		n        = fs.Int("n", 60, "flow count to analyze")
		c        = fs.Float64("c", 1e7, "capacity in packets/second (paper's Fig. 9 unit)")
		rtt      = fs.Float64("rtt", 1e-4, "round-trip time in seconds")
		critical = fs.Bool("critical", false, "search the critical flow count instead")
		nMin     = fs.Int("nmin", 2, "critical search lower bound")
		nMax     = fs.Int("nmax", 200, "critical search upper bound")
		locus    = fs.String("locus", "", "write the K0*G(jw) locus as CSV to this path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var proto dtdctcp.Protocol
	if *dt {
		proto = dtdctcp.DTDCTCP(*k1, *k2, *g)
	} else {
		proto = dtdctcp.DCTCP(*k, *g)
	}
	params := dtdctcp.AnalysisParams{CapacityPktsPerSec: *c, RTT: *rtt, G: *g}

	if *critical {
		onset, err := dtdctcp.CriticalFlows(proto, params, *nMin, *nMax)
		if err != nil {
			return err
		}
		if onset > *nMax {
			fmt.Fprintf(out, "%s: stable for every N in [%d, %d]\n", proto.Name, *nMin, *nMax)
			return nil
		}
		fmt.Fprintf(out, "%s: oscillation onset at N = %d\n", proto.Name, onset)
		return nil
	}

	v, err := dtdctcp.AnalyzeStability(proto, params, *n)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "protocol        %s\n", proto.Name)
	fmt.Fprintf(out, "flows           %d\n", *n)
	fmt.Fprintf(out, "stable          %t\n", v.Stable)
	fmt.Fprintf(out, "locus distance  %.4f (normalized closest approach)\n", v.ClosestApproach)
	if !v.Stable {
		fmt.Fprintf(out, "limit cycle     amplitude %.1f packets, frequency %.0f rad/s (period %.1f µs)\n",
			v.Cycle.Amplitude, v.Cycle.Frequency, v.Cycle.PeriodSeconds()*1e6)
	}
	if m, err := dtdctcp.StabilityMargins(proto, params, *n); err == nil {
		fmt.Fprintf(out, "gain margin     %.2f (×, >1 stable) at phase crossover %.0f rad/s\n",
			m.GainMargin, m.PhaseCrossover)
		if !math.IsNaN(m.PhaseMargin) {
			fmt.Fprintf(out, "phase margin    %.1f° at gain crossover %.0f rad/s\n",
				m.PhaseMargin*180/math.Pi, m.GainCrossover)
		}
	}

	if *locus != "" {
		f, err := os.Create(*locus)
		if err != nil {
			return err
		}
		defer f.Close()
		ws, zs := params.Plant(*n).Locus(1/float64(max(*k, 1)), 1e2, 1e7, 2000)
		if _, err := fmt.Fprintln(f, "w,re,im"); err != nil {
			return err
		}
		for i := range ws {
			if _, err := fmt.Fprintf(f, "%s,%s,%s\n",
				strconv.FormatFloat(ws[i], 'g', -1, 64),
				strconv.FormatFloat(real(zs[i]), 'g', -1, 64),
				strconv.FormatFloat(imag(zs[i]), 'g', -1, 64)); err != nil {
				return err
			}
		}
		fmt.Fprintf(out, "locus written to %s\n", *locus)
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
