package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunVerdictStable(t *testing.T) {
	if err := run([]string{"-k", "40", "-n", "10"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunVerdictOscillating(t *testing.T) {
	if err := run([]string{"-k", "40", "-n", "80"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunDTVariant(t *testing.T) {
	if err := run([]string{"-dt", "-k1", "30", "-k2", "50", "-n", "60"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunCriticalSearch(t *testing.T) {
	if err := run([]string{"-critical", "-nmin", "2", "-nmax", "120"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	// Stable-everywhere branch: 1500-byte packet unit.
	if err := run([]string{"-critical", "-c", "833333", "-nmax", "50"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunLocusCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "locus.csv")
	if err := run([]string{"-k", "40", "-n", "60", "-locus", path}, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if lines[0] != "w,re,im" {
		t.Fatalf("header %q", lines[0])
	}
	if len(lines) != 2001 {
		t.Fatalf("locus rows = %d, want 2001", len(lines))
	}
}

func TestRunLocusBadPath(t *testing.T) {
	if err := run([]string{"-locus", "/nonexistent-dir/x.csv"}, io.Discard); err == nil {
		t.Fatal("unwritable locus path accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}, io.Discard); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunBadRange(t *testing.T) {
	if err := run([]string{"-critical", "-nmin", "0"}, io.Discard); err == nil {
		t.Fatal("nmin=0 accepted")
	}
}
