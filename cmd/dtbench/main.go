// Command dtbench measures the simulator's hot paths and writes the
// numbers as machine-readable JSON, so performance regressions show up as
// diffs instead of anecdotes.
//
// It replays the repo's own benchmarks through testing.Benchmark — the
// event kernel (schedule/run, self-scheduling chains, timer rearm), the
// netsim forwarding path, a full dumbbell run with allocations-per-event
// accounting, and a sweep-scaling probe that times the same sweep at
// workers=1 and workers=GOMAXPROCS.
//
// Usage:
//
//	dtbench                        # print the snapshot to stdout
//	dtbench -o BENCH_baseline.json # merge into a baseline file: the
//	                               # previous Current moves to History
//	dtbench -label after-pool      # tag the snapshot
//	dtbench -quick                 # smaller dumbbell/sweep (CI smoke)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"dtdctcp"
	"dtdctcp/internal/aqm"
	"dtdctcp/internal/metrics"
	"dtdctcp/internal/netsim"
	"dtdctcp/internal/sim"
)

// Metric is one benchmark result. GOMAXPROCS and NumCPU are recorded
// per metric — not just once per snapshot — so a number pasted out of
// context still carries the hardware it was measured on.
type Metric struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// EventsPerSec is derived for kernel benchmarks where one op is one
	// event (zero elsewhere).
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	NumCPU       int     `json:"num_cpu"`
}

// DumbbellMetric profiles one full experiment run.
type DumbbellMetric struct {
	Flows          int     `json:"flows"`
	SimMillis      int64   `json:"sim_millis"`
	Events         uint64  `json:"events"`
	WallMillis     float64 `json:"wall_millis"`
	Mallocs        uint64  `json:"mallocs"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	EventsPerSec   float64 `json:"events_per_sec"`
}

// OverheadMetric compares the same dumbbell run with the observability
// registry off and on, measured as interleaved A/B pairs: each pair runs
// both sides back to back so a load spike lands on both arms instead of
// inflating one whole side, and the reported delta is the median across
// pairs. The event counts must match exactly, since pull-based
// instrumentation is required not to change the simulation.
type OverheadMetric struct {
	// Runs is the number of interleaved base/metrics pairs measured
	// (after one discarded warm-up pair).
	Runs              int     `json:"runs"`
	Events            uint64  `json:"events"`
	BaseNsPerEvent    float64 `json:"base_ns_per_event"`
	MetricsNsPerEvent float64 `json:"metrics_ns_per_event"`
	// DeltaPercent is the median paired (metrics − base) delta ÷ the
	// median base × 100; the test suite pins it below 5%.
	DeltaPercent float64 `json:"delta_percent"`
}

// SweepMetric times one sweep serially and in parallel.
type SweepMetric struct {
	Points         int     `json:"points"`
	Workers        int     `json:"workers"`
	SerialMillis   float64 `json:"serial_millis"`
	ParallelMillis float64 `json:"parallel_millis"`
	Speedup        float64 `json:"speedup"`
	// PerCoreEfficiency is Speedup ÷ min(Workers, NumCPU): 1.0 means the
	// extra cores were fully converted into throughput.
	PerCoreEfficiency float64 `json:"per_core_efficiency"`
}

// ShardPoint is one shard-count measurement of the identical testbed
// run.
type ShardPoint struct {
	Shards       int     `json:"shards"`
	Events       uint64  `json:"events"`
	WallMillis   float64 `json:"wall_millis"`
	EventsPerSec float64 `json:"events_per_sec"`
	// Speedup is events/sec relative to the shards=1 point.
	Speedup float64 `json:"speedup"`
}

// ShardScalingMetric reruns the same 4-switch incast testbed at
// increasing shard counts. Sharding is required to be byte-deterministic,
// so the Events column may only vary by the fixed rounds−1 bookkeeping
// events the serial engine keeps on its own wheel — the sharded points
// must all match exactly. Read Speedup against GOMAXPROCS/NumCPU: on a
// single-core box every shards>1 point measures pure synchronization
// overhead, not parallelism, and speedups below 1.0 are the honest
// result.
type ShardScalingMetric struct {
	Workers    int          `json:"workers"`
	Rounds     int          `json:"rounds"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	NumCPU     int          `json:"num_cpu"`
	Points     []ShardPoint `json:"points"`
}

// Snapshot is one complete dtbench run.
type Snapshot struct {
	Label        string              `json:"label"`
	Timestamp    string              `json:"timestamp"`
	GoVersion    string              `json:"go_version"`
	GOMAXPROCS   int                 `json:"gomaxprocs"`
	NumCPU       int                 `json:"num_cpu"`
	Metrics      []Metric            `json:"metrics"`
	Dumbbell     *DumbbellMetric     `json:"dumbbell,omitempty"`
	Overhead     *OverheadMetric     `json:"overhead,omitempty"`
	Sweep        *SweepMetric        `json:"sweep,omitempty"`
	ShardScaling *ShardScalingMetric `json:"shard_scaling,omitempty"`
}

// File is the on-disk layout: the latest snapshot plus every snapshot it
// replaced, oldest first, so the performance trajectory stays in-repo.
type File struct {
	Schema  string     `json:"schema"`
	Current *Snapshot  `json:"current"`
	History []Snapshot `json:"history,omitempty"`
}

const schema = "dtbench/v1"

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dtbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dtbench", flag.ContinueOnError)
	var (
		out        = fs.String("o", "", "merge the snapshot into this JSON file (previous current moves to history)")
		label      = fs.String("label", "", "snapshot label (default: timestamp)")
		quick      = fs.Bool("quick", false, "smaller dumbbell and sweep for a fast smoke pass")
		shards     = fs.Int("shards", 8, "largest shard count in the shard-scaling family (powers of two from 1; 0 skips it)")
		metricsOut = fs.String("metrics", "", "write the instrumented dumbbell's observability snapshot as JSON to this path")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this path")
		memProfile = fs.String("memprofile", "", "write a heap profile to this path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProfile != "" {
		stop, err := metrics.StartCPUProfile(*cpuProfile)
		if err != nil {
			return err
		}
		defer stop()
	}

	snap := measure(*quick, *shards)
	if *metricsOut != "" {
		cfg := dumbbellConfig(*quick)
		cfg.Metrics = true
		res, err := dtdctcp.RunDumbbell(cfg)
		if err != nil {
			return err
		}
		if err := metrics.WriteFile(*metricsOut, []metrics.Named{{Name: "dumbbell", Snapshot: res.Metrics}}); err != nil {
			return err
		}
	}
	if *memProfile != "" {
		defer metrics.WriteHeapProfile(*memProfile)
	}
	snap.Label = *label
	if snap.Label == "" {
		snap.Label = snap.Timestamp
	}

	if *out == "" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(snap)
	}
	return merge(*out, snap)
}

// merge writes snap as the file's Current, demoting any previous Current
// to the end of History.
func merge(path string, snap *Snapshot) error {
	var f File
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &f); err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		if f.Current != nil {
			f.History = append(f.History, *f.Current)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	f.Schema = schema
	f.Current = snap
	raw, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

func measure(quick bool, maxShards int) *Snapshot {
	snap := &Snapshot{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	kernel := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"sim/ScheduleRun", benchScheduleRun},
		{"sim/EventChain", benchEventChain},
		{"sim/TimerReset", benchTimerReset},
		{"netsim/ForwardDropTail", benchForwardDropTail},
	}
	for _, k := range kernel {
		r := testing.Benchmark(k.fn)
		m := Metric{
			Name:        k.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			NumCPU:      runtime.NumCPU(),
		}
		if m.NsPerOp > 0 {
			m.EventsPerSec = 1e9 / m.NsPerOp
		}
		snap.Metrics = append(snap.Metrics, m)
	}
	snap.Dumbbell = measureDumbbell(quick)
	snap.Overhead = measureOverhead(quick)
	snap.Sweep = measureSweep(quick)
	if maxShards > 0 {
		snap.ShardScaling = measureShardScaling(quick, maxShards)
	}
	return snap
}

// --- kernel benchmarks (mirrors of the _test.go benchmarks, which a
// command cannot import) ---

func benchScheduleRun(b *testing.B) {
	e := sim.NewEngine(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+sim.Time(i%64), func() {})
		if i%1024 == 1023 {
			if err := e.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func benchEventChain(b *testing.B) {
	e := sim.NewEngine(1)
	remaining := b.N
	var step func()
	step = func() {
		remaining--
		if remaining > 0 {
			e.After(time.Microsecond, step)
		}
	}
	b.ReportAllocs()
	e.After(time.Microsecond, step)
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func benchTimerReset(b *testing.B) {
	e := sim.NewEngine(1)
	tm := sim.NewTimer(e, func() {})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm.Reset(time.Millisecond)
		if i%4096 == 4095 {
			if err := e.RunUntil(e.Now()); err != nil {
				b.Fatal(err)
			}
		}
	}
	tm.Stop()
}

type benchSink struct{ n int }

func (s *benchSink) Deliver(*netsim.Packet) { s.n++ }

func benchForwardDropTail(b *testing.B) {
	e := sim.NewEngine(1)
	n := netsim.NewNetwork(e)
	src := n.AddHost("src")
	dst := n.AddHost("dst")
	sw := n.AddSwitch("sw")
	cfg := netsim.PortConfig{Rate: 100 * netsim.Gbps, Delay: time.Microsecond, Buffer: 1 << 24, Policy: aqm.NewDropTail()}
	if err := n.Connect(src, sw, cfg, cfg); err != nil {
		b.Fatal(err)
	}
	if err := n.Connect(dst, sw, cfg, cfg); err != nil {
		b.Fatal(err)
	}
	if err := n.ComputeRoutes(); err != nil {
		b.Fatal(err)
	}
	sink := &benchSink{}
	dst.Register(1, sink)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt := n.AllocPacket()
		pkt.Flow = 1
		pkt.Dst = dst.ID()
		pkt.Size = 1500
		pkt.ECT = true
		src.Send(pkt)
		if i%256 == 255 {
			if err := e.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	if sink.n == 0 {
		b.Fatal("nothing delivered")
	}
}

// dumbbellConfig is the paper-scale run shared by the dumbbell profile,
// the overhead pair, and the -metrics export.
func dumbbellConfig(quick bool) dtdctcp.DumbbellConfig {
	cfg := dtdctcp.DumbbellConfig{
		Protocol:   dtdctcp.DCTCP(40, 1.0/16),
		Flows:      40,
		Rate:       10 * dtdctcp.Gbps,
		RTT:        100 * time.Microsecond,
		BufferPkts: 600,
		Duration:   40 * time.Millisecond,
		Warmup:     10 * time.Millisecond,
		Seed:       1,
	}
	if quick {
		cfg.Flows = 10
		cfg.Duration = 10 * time.Millisecond
		cfg.Warmup = 2 * time.Millisecond
	}
	return cfg
}

// measureDumbbell runs one paper-scale dumbbell and reports the malloc
// count per simulated event.
func measureDumbbell(quick bool) *DumbbellMetric {
	cfg := dumbbellConfig(quick)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := dtdctcp.RunDumbbell(cfg)
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		// Benchmarks must not mask simulator breakage.
		panic(err)
	}
	m := &DumbbellMetric{
		Flows:      cfg.Flows,
		SimMillis:  (cfg.Duration + cfg.Warmup).Milliseconds(),
		Events:     res.Events,
		WallMillis: float64(wall.Microseconds()) / 1e3,
		Mallocs:    after.Mallocs - before.Mallocs,
	}
	if res.Events > 0 {
		m.AllocsPerEvent = float64(m.Mallocs) / float64(res.Events)
		m.EventsPerSec = float64(res.Events) / wall.Seconds()
	}
	return m
}

// measureOverhead times the identical dumbbell with metrics off and on
// as interleaved A/B pairs and reports the median paired ns-per-event
// delta. Timing each whole side in its own wall-clock window is
// one-sided under load — a spike inflates only the side it lands on, and
// min-of-N per side cannot repair that — so each pair runs both sides
// back to back (alternating in-pair order to cancel monotonic drift) and
// the median across pairs discards the pairs a spike still split. Event
// counts from both sides must match — pull-based instrumentation may not
// alter the simulation — and a mismatch panics rather than reporting a
// meaningless comparison.
func measureOverhead(quick bool) *OverheadMetric {
	cfg := dumbbellConfig(quick)
	// Seven pairs even in quick mode: the median only moves if four
	// pairs are disturbed at once, and each pair costs milliseconds on
	// the quick dumbbell and ~a quarter second at full size.
	const pairs = 7
	timeRun := func(withMetrics bool) (ns float64, events uint64) {
		c := cfg
		c.Metrics = withMetrics
		start := time.Now()
		res, err := dtdctcp.RunDumbbell(c)
		wall := time.Since(start)
		if err != nil {
			panic(err)
		}
		return float64(wall.Nanoseconds()) / float64(res.Events), res.Events
	}
	// One discarded warm-up pair lets the allocator and caches settle.
	timeRun(false)
	timeRun(true)
	baseNs := make([]float64, pairs)
	deltaNs := make([]float64, pairs)
	var baseEvents, metEvents uint64
	for i := range deltaNs {
		// Each arm is the min of two runs — timing noise is upward
		// spikes, and taking the min inside the pair damps them
		// symmetrically. The mirrored orders (b,m,m,b then m,b,b,m)
		// cancel monotonic drift across the pair.
		var b, met float64
		if i%2 == 0 {
			b, baseEvents = timeRun(false)
			met, metEvents = timeRun(true)
			if m2, _ := timeRun(true); m2 < met {
				met = m2
			}
			if b2, _ := timeRun(false); b2 < b {
				b = b2
			}
		} else {
			met, metEvents = timeRun(true)
			b, baseEvents = timeRun(false)
			if b2, _ := timeRun(false); b2 < b {
				b = b2
			}
			if m2, _ := timeRun(true); m2 < met {
				met = m2
			}
		}
		baseNs[i] = b
		deltaNs[i] = met - b
	}
	if baseEvents != metEvents {
		panic(fmt.Sprintf("dtbench: metrics changed the run: %d events without vs %d with", baseEvents, metEvents))
	}
	base := median(baseNs)
	delta := median(deltaNs)
	m := &OverheadMetric{
		Runs:              pairs,
		Events:            baseEvents,
		BaseNsPerEvent:    base,
		MetricsNsPerEvent: base + delta,
	}
	if base > 0 {
		m.DeltaPercent = delta / base * 100
	}
	return m
}

// median returns the middle value of xs (mean of the middle two for even
// lengths) without reordering the caller's slice.
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// measureSweep times the same flow sweep at workers=1 and
// workers=GOMAXPROCS and reports the per-core scaling efficiency.
func measureSweep(quick bool) *SweepMetric {
	base := dtdctcp.DumbbellConfig{
		Protocol:   dtdctcp.DCTCP(40, 1.0/16),
		Rate:       10 * dtdctcp.Gbps,
		RTT:        100 * time.Microsecond,
		BufferPkts: 600,
		Duration:   20 * time.Millisecond,
		Warmup:     5 * time.Millisecond,
		Seed:       1,
	}
	flows := []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120}
	if quick {
		base.Duration = 5 * time.Millisecond
		base.Warmup = time.Millisecond
		flows = flows[:4]
	}
	workers := runtime.GOMAXPROCS(0)
	ctx := context.Background()

	start := time.Now()
	if _, err := dtdctcp.SweepFlowsParallel(ctx, base, flows, 1); err != nil {
		panic(err)
	}
	serial := time.Since(start)

	start = time.Now()
	if _, err := dtdctcp.SweepFlowsParallel(ctx, base, flows, workers); err != nil {
		panic(err)
	}
	parallel := time.Since(start)

	m := &SweepMetric{
		Points:         len(flows),
		Workers:        workers,
		SerialMillis:   float64(serial.Microseconds()) / 1e3,
		ParallelMillis: float64(parallel.Microseconds()) / 1e3,
	}
	if parallel > 0 {
		m.Speedup = serial.Seconds() / parallel.Seconds()
	}
	cores := workers
	if n := runtime.NumCPU(); n < cores {
		cores = n
	}
	if cores > 0 {
		m.PerCoreEfficiency = m.Speedup / float64(cores)
	}
	return m
}

// measureShardScaling times the identical 4-switch incast testbed run at
// shard counts 1, 2, 4, … up to maxShards. The determinism contract
// makes the comparison clean: every point simulates exactly the same
// packets in exactly the same order, so a differing event count means
// the sharded engine is broken and the function panics rather than
// reporting a number that compares different workloads.
func measureShardScaling(quick bool, maxShards int) *ShardScalingMetric {
	workers, rounds := 32, 4
	if quick {
		workers, rounds = 12, 2
	}
	m := &ShardScalingMetric{
		Workers:    workers,
		Rounds:     rounds,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	for shards := 1; shards <= maxShards; shards *= 2 {
		cfg := dtdctcp.DefaultTestbed(dtdctcp.DCTCP(21, 1.0/16), workers)
		cfg.Shards = shards
		start := time.Now()
		res, err := dtdctcp.RunIncast(cfg, rounds)
		wall := time.Since(start)
		if err != nil {
			panic(err)
		}
		p := ShardPoint{
			Shards:     shards,
			Events:     res.Events,
			WallMillis: float64(wall.Microseconds()) / 1e3,
		}
		if wall > 0 {
			p.EventsPerSec = float64(res.Events) / wall.Seconds()
		}
		if len(m.Points) > 0 {
			base := m.Points[0]
			// The serial engine starts rounds 2..N with events on its own
			// wheel; relay mode starts them with barrier tasks, which are
			// not engine events. So the shards=1 point carries exactly
			// rounds−1 extra bookkeeping events, and every sharded point
			// must match its siblings to the event.
			want := base.Events
			if base.Shards == 1 {
				want -= uint64(rounds - 1)
			}
			if p.Events != want {
				panic(fmt.Sprintf("dtbench: sharding changed the run: %d events at shards=%d, want %d",
					p.Events, shards, want))
			}
			if base.EventsPerSec > 0 {
				p.Speedup = p.EventsPerSec / base.EventsPerSec
			}
		} else {
			p.Speedup = 1
		}
		m.Points = append(m.Points, p)
	}
	return m
}
