package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func readFile(t *testing.T, path string) File {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestMergeDemotesCurrentToHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")

	if err := merge(path, &Snapshot{Label: "first"}); err != nil {
		t.Fatal(err)
	}
	f := readFile(t, path)
	if f.Schema != schema || f.Current.Label != "first" || len(f.History) != 0 {
		t.Fatalf("after first merge: %+v", f)
	}

	if err := merge(path, &Snapshot{Label: "second"}); err != nil {
		t.Fatal(err)
	}
	f = readFile(t, path)
	if f.Current.Label != "second" {
		t.Fatalf("current = %q, want second", f.Current.Label)
	}
	if len(f.History) != 1 || f.History[0].Label != "first" {
		t.Fatalf("history = %+v, want [first]", f.History)
	}

	if err := merge(path, &Snapshot{Label: "third"}); err != nil {
		t.Fatal(err)
	}
	f = readFile(t, path)
	if len(f.History) != 2 || f.History[0].Label != "first" || f.History[1].Label != "second" {
		t.Fatalf("history = %+v, want [first second] oldest-first", f.History)
	}
}

func TestMergeRejectsCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := merge(path, &Snapshot{Label: "x"}); err == nil {
		t.Fatal("corrupt baseline accepted")
	}
}

func TestCommittedBaselineParses(t *testing.T) {
	// The repo's committed baseline must stay parseable and meet the
	// optimization floor this PR establishes: the steady-state event
	// kernel allocates nothing, and the dumbbell path allocates at least
	// 30% less per event than the pre-optimization seed in history.
	raw, err := os.ReadFile("../../BENCH_baseline.json")
	if err != nil {
		t.Skipf("no committed baseline: %v", err)
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatal(err)
	}
	if f.Schema != schema || f.Current == nil {
		t.Fatalf("baseline malformed: schema=%q current=%v", f.Schema, f.Current)
	}
	for _, m := range f.Current.Metrics {
		if m.AllocsPerOp != 0 {
			t.Errorf("%s allocates %d/op in the committed baseline, want 0", m.Name, m.AllocsPerOp)
		}
	}
	if len(f.History) == 0 || f.Current.Dumbbell == nil || f.History[0].Dumbbell == nil {
		t.Fatal("baseline missing pre-optimization history entry")
	}
	seed := f.History[0].Dumbbell.AllocsPerEvent
	cur := f.Current.Dumbbell.AllocsPerEvent
	if seed <= 0 || cur > 0.7*seed {
		t.Errorf("allocs/event %.4f vs seed %.4f: want ≥30%% reduction", cur, seed)
	}
}

// TestMetricsOverheadSmoke runs the interleaved metrics-on/off pairs and
// pins the observability tax. Both sides must process the identical
// event stream (pull-based collection cannot perturb the simulation) and
// the median paired per-event slowdown must stay under 8%: the committed
// baseline records ~4.3%, and the pin leaves headroom for load noise
// while still catching any regression that puts real work on the event
// path (those show up at tens of percent). No retry loop: the paired
// scheme absorbs load spikes inside each pair, so a single measurement
// is the contract. It measures the full-size dumbbell, not -quick: on
// the short quick run the registry's fixed sampling cost amortizes over
// so few events that the honest tax alone exceeds the pin and per-run
// jitter swamps the signal — the old min-of-N-per-side estimator only
// passed there by systematically underestimating the delta.
func TestMetricsOverheadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive smoke test")
	}
	o := measureOverhead(false)
	if o.Events == 0 {
		t.Fatal("overhead pairs processed no events")
	}
	if o.BaseNsPerEvent <= 0 {
		t.Fatalf("degenerate base timing: %.2f ns/event", o.BaseNsPerEvent)
	}
	if o.Runs < 3 {
		t.Fatalf("measured %d pairs, want at least 3 for a median", o.Runs)
	}
	if o.DeltaPercent >= 8 {
		t.Fatalf("metrics overhead %.2f%% per event, want < 8%%", o.DeltaPercent)
	}
}

// TestMedian pins the estimator the overhead pairing rests on, including
// the even-length mean and input immutability.
func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{3}, 3},
		{[]float64{5, 1, 3}, 3},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{-10, 2, 1000, 3, 4}, 3}, // outlier pairs do not move the median
	}
	for _, c := range cases {
		in := append([]float64(nil), c.in...)
		if got := median(in); got != c.want {
			t.Errorf("median(%v) = %v, want %v", c.in, got, c.want)
		}
		for i := range in {
			if in[i] != c.in[i] {
				t.Fatalf("median reordered its input: %v -> %v", c.in, in)
			}
		}
	}
}
