package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func readFile(t *testing.T, path string) File {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestMergeDemotesCurrentToHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")

	if err := merge(path, &Snapshot{Label: "first"}); err != nil {
		t.Fatal(err)
	}
	f := readFile(t, path)
	if f.Schema != schema || f.Current.Label != "first" || len(f.History) != 0 {
		t.Fatalf("after first merge: %+v", f)
	}

	if err := merge(path, &Snapshot{Label: "second"}); err != nil {
		t.Fatal(err)
	}
	f = readFile(t, path)
	if f.Current.Label != "second" {
		t.Fatalf("current = %q, want second", f.Current.Label)
	}
	if len(f.History) != 1 || f.History[0].Label != "first" {
		t.Fatalf("history = %+v, want [first]", f.History)
	}

	if err := merge(path, &Snapshot{Label: "third"}); err != nil {
		t.Fatal(err)
	}
	f = readFile(t, path)
	if len(f.History) != 2 || f.History[0].Label != "first" || f.History[1].Label != "second" {
		t.Fatalf("history = %+v, want [first second] oldest-first", f.History)
	}
}

func TestMergeRejectsCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := merge(path, &Snapshot{Label: "x"}); err == nil {
		t.Fatal("corrupt baseline accepted")
	}
}

func TestCommittedBaselineParses(t *testing.T) {
	// The repo's committed baseline must stay parseable and meet the
	// optimization floor this PR establishes: the steady-state event
	// kernel allocates nothing, and the dumbbell path allocates at least
	// 30% less per event than the pre-optimization seed in history.
	raw, err := os.ReadFile("../../BENCH_baseline.json")
	if err != nil {
		t.Skipf("no committed baseline: %v", err)
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatal(err)
	}
	if f.Schema != schema || f.Current == nil {
		t.Fatalf("baseline malformed: schema=%q current=%v", f.Schema, f.Current)
	}
	for _, m := range f.Current.Metrics {
		if m.AllocsPerOp != 0 {
			t.Errorf("%s allocates %d/op in the committed baseline, want 0", m.Name, m.AllocsPerOp)
		}
	}
	if len(f.History) == 0 || f.Current.Dumbbell == nil || f.History[0].Dumbbell == nil {
		t.Fatal("baseline missing pre-optimization history entry")
	}
	seed := f.History[0].Dumbbell.AllocsPerEvent
	cur := f.Current.Dumbbell.AllocsPerEvent
	if seed <= 0 || cur > 0.7*seed {
		t.Errorf("allocs/event %.4f vs seed %.4f: want ≥30%% reduction", cur, seed)
	}
}

// TestMetricsOverheadSmoke runs the metrics-on/off benchmark pair in
// quick mode and pins the observability tax: both runs must process the
// identical event stream (pull-based collection cannot perturb the
// simulation) and the per-event slowdown must stay under 5%.
func TestMetricsOverheadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive smoke test")
	}
	// The two sides of the pair run in separate wall-clock windows, so a
	// load spike on a busy machine inflates only one of them. Load noise
	// is one-sided: the smallest delta across attempts is the closest to
	// the true overhead, so retry the whole pair before failing.
	var o *OverheadMetric
	for attempt := 0; attempt < 3; attempt++ {
		m := measureOverhead(true)
		if m.Events == 0 {
			t.Fatal("overhead pair processed no events")
		}
		if m.BaseNsPerEvent <= 0 || m.MetricsNsPerEvent <= 0 {
			t.Fatalf("degenerate timings: base=%.2f metrics=%.2f", m.BaseNsPerEvent, m.MetricsNsPerEvent)
		}
		if o == nil || m.DeltaPercent < o.DeltaPercent {
			o = m
		}
		if o.DeltaPercent < 5 {
			break
		}
	}
	if o.DeltaPercent >= 5 {
		t.Fatalf("metrics overhead %.2f%% per event, want < 5%%", o.DeltaPercent)
	}
}
