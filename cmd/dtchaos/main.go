// Command dtchaos stresses the paper's stability claim under network
// dynamics: it sweeps fault-injection profiles (link blackouts,
// flapping, capacity degradation, buffer squeezes, background bursts,
// corruption) over the dumbbell scenario, running DCTCP and DT-DCTCP
// under the identical perturbation, and reports how each recovers —
// time-to-drain back into the pre-fault queue band and time until the
// queue oscillation re-locks.
//
// Results are printed as a table and, with -o, merged into a
// machine-readable JSON file following the BENCH_baseline.json
// conventions (schema + current + history).
//
// Usage:
//
//	dtchaos                          # all built-in profiles, print table
//	dtchaos -profiles blackout,burst # a subset
//	dtchaos -plan my.json            # a custom plan file instead
//	dtchaos -o CHAOS_baseline.json   # merge snapshot into a baseline file
//	dtchaos -workers 8               # sweep points in parallel (output
//	                                 # is byte-identical for any value)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"dtdctcp"
	"dtdctcp/internal/chaos"
	"dtdctcp/internal/metrics"
	"dtdctcp/internal/runner"
)

// Report is one (profile, protocol) recovery measurement.
type Report struct {
	Profile  string `json:"profile"`
	Protocol string `json:"protocol"`

	QueueMeanPkts float64 `json:"queue_mean_pkts"`
	QueueStdPkts  float64 `json:"queue_std_pkts"`
	Utilization   float64 `json:"utilization"`
	FaultDrops    uint64  `json:"fault_drops"`
	Timeouts      uint64  `json:"timeouts"`

	Drained      bool    `json:"drained"`
	DrainTimeMs  float64 `json:"drain_time_ms"`
	Relocked     bool    `json:"relocked"`
	RelockTimeMs float64 `json:"relock_time_ms"`
	RefPeriodUs  float64 `json:"ref_period_us"`
}

// Snapshot is one complete dtchaos run.
type Snapshot struct {
	Label     string   `json:"label"`
	Timestamp string   `json:"timestamp"`
	GoVersion string   `json:"go_version"`
	Seed      int64    `json:"seed"`
	Flows     int      `json:"flows"`
	RateBps   int64    `json:"rate_bps"`
	Reports   []Report `json:"reports"`
}

// File is the on-disk layout, mirroring dtbench: the latest snapshot
// plus every snapshot it replaced, oldest first.
type File struct {
	Schema  string     `json:"schema"`
	Current *Snapshot  `json:"current"`
	History []Snapshot `json:"history,omitempty"`
}

const schema = "dtchaos/v1"

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dtchaos:", err)
		os.Exit(1)
	}
}

func run(args []string, w *os.File) error {
	fs := flag.NewFlagSet("dtchaos", flag.ContinueOnError)
	var (
		out        = fs.String("o", "", "merge the snapshot into this JSON file (previous current moves to history)")
		label      = fs.String("label", "", "snapshot label (default: timestamp)")
		profiles   = fs.String("profiles", "", "comma-separated built-in profiles (default: all)")
		planPath   = fs.String("plan", "", "run a custom plan file instead of built-in profiles")
		flows      = fs.Int("flows", 40, "long-lived flows sharing the bottleneck")
		rate       = fs.Int64("rate", int64(10*dtdctcp.Gbps), "bottleneck rate in bits per second")
		seed       = fs.Int64("seed", 1, "engine seed")
		workers    = fs.Int("workers", runtime.GOMAXPROCS(0), "parallel sweep workers (results are identical for any value)")
		zoo        = fs.Bool("zoo", false, "also run the DCTCP+ and HULL zoo protocols under every profile")
		sbAlpha    = fs.Float64("sb-alpha", 0, "shared-buffer dynamic-threshold α; > 0 pools the bottleneck buffer")
		metricsOut = fs.String("metrics", "", "write per-cell observability snapshots as JSON to this path")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this path")
		memProfile = fs.String("memprofile", "", "write a heap profile to this path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProfile != "" {
		stop, err := metrics.StartCPUProfile(*cpuProfile)
		if err != nil {
			return err
		}
		defer stop()
	}

	plans, err := selectPlans(*profiles, *planPath)
	if err != nil {
		return err
	}
	reports, snaps, err := Sweep(plans, SweepOptions{
		Flows:   *flows,
		Rate:    dtdctcp.Rate(*rate),
		Seed:    *seed,
		Workers: *workers,
		Metrics: *metricsOut != "",
		Zoo:     *zoo,
		SBAlpha: *sbAlpha,
	})
	if err != nil {
		return err
	}
	if *metricsOut != "" {
		if err := metrics.WriteFile(*metricsOut, snaps); err != nil {
			return err
		}
	}
	if *memProfile != "" {
		defer metrics.WriteHeapProfile(*memProfile)
	}

	printTable(w, reports)

	snap := &Snapshot{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Seed:      *seed,
		Flows:     *flows,
		RateBps:   *rate,
		Reports:   reports,
	}
	snap.Label = *label
	if snap.Label == "" {
		snap.Label = snap.Timestamp
	}
	if *out == "" {
		return nil
	}
	return merge(*out, snap)
}

func selectPlans(profiles, planPath string) ([]*chaos.Plan, error) {
	if planPath != "" {
		p, err := chaos.LoadPlan(planPath)
		if err != nil {
			return nil, err
		}
		return []*chaos.Plan{p}, nil
	}
	names := chaos.Profiles()
	if profiles != "" {
		names = strings.Split(profiles, ",")
	}
	plans := make([]*chaos.Plan, 0, len(names))
	for _, name := range names {
		p, err := chaos.Profile(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		plans = append(plans, p)
	}
	return plans, nil
}

// Protocols compared under every fault profile: the paper's baseline
// and its contribution, at the paper's simulation parameters. With zoo
// set, the DCTCP+ slow-timer sender and the HULL phantom-queue variant
// join the comparison so the extended zoo is exercised under faults too.
func protocols(zoo bool, rate dtdctcp.Rate) []dtdctcp.Protocol {
	ps := []dtdctcp.Protocol{
		dtdctcp.DCTCP(40, 1.0/16),
		dtdctcp.DTDCTCP(30, 50, 1.0/16),
	}
	if zoo {
		ps = append(ps,
			dtdctcp.DCTCPPlus(40, 1.0/16),
			dtdctcp.HULL(40, 0.95, rate, 1.0/16),
		)
	}
	return ps
}

// SweepOptions parameterizes one fault sweep.
type SweepOptions struct {
	Flows   int
	Rate    dtdctcp.Rate
	Seed    int64
	Workers int
	Metrics bool
	// Zoo adds the DCTCP+ and HULL zoo protocols to the comparison.
	Zoo bool
	// SBAlpha, when > 0, pools the bottleneck buffer behind a
	// shared-buffer dynamic-threshold switch, so set-buffer fault
	// events squeeze the pool rather than a private port buffer.
	SBAlpha float64
}

// Sweep runs every (plan, protocol) pair and measures recovery. Points
// run on up to o.Workers goroutines; each owns a private engine seeded
// by the configuration alone, so output is identical for any worker
// count. With o.Metrics set, each cell also returns its observability
// snapshot named "<profile>/<protocol>".
func Sweep(plans []*chaos.Plan, o SweepOptions) ([]Report, []metrics.Named, error) {
	protos := protocols(o.Zoo, o.Rate)
	type point struct {
		plan  *chaos.Plan
		proto dtdctcp.Protocol
	}
	type cell struct {
		rep  Report
		snap *metrics.Snapshot
	}
	var pts []point
	for _, plan := range plans {
		for _, proto := range protos {
			pts = append(pts, point{plan, proto})
		}
	}
	cells, err := runner.Map(context.Background(), len(pts), runner.Options{Workers: o.Workers},
		func(_ context.Context, i int) (cell, error) {
			pt := pts[i]
			cfg := dtdctcp.DumbbellConfig{
				Protocol:         pt.proto,
				Flows:            o.Flows,
				Rate:             o.Rate,
				RTT:              100 * time.Microsecond,
				BufferPkts:       250,
				Duration:         40 * time.Millisecond,
				Warmup:           10 * time.Millisecond,
				QueueSampleEvery: 20 * time.Microsecond,
				Seed:             o.Seed,
				Chaos:            pt.plan,
				Metrics:          o.Metrics,
			}
			if o.SBAlpha > 0 {
				cfg.SharedBuffer = dtdctcp.SharedBufferConfig{Alpha: o.SBAlpha}
			}
			res, err := dtdctcp.RunDumbbell(cfg)
			if err != nil {
				return cell{}, fmt.Errorf("%s/%s: %w", pt.plan.Name, pt.proto.Name, err)
			}
			rep := Report{
				Profile:       pt.plan.Name,
				Protocol:      res.Protocol,
				QueueMeanPkts: res.QueueMeanPkts,
				QueueStdPkts:  res.QueueStdPkts,
				Utilization:   res.Utilization,
				FaultDrops:    res.FaultDrops,
				Timeouts:      res.Timeouts,
			}
			if r := res.Recovery; r != nil {
				rep.Drained = r.Drained
				rep.DrainTimeMs = r.DrainTime * 1e3
				rep.Relocked = r.Relocked
				rep.RelockTimeMs = r.RelockTime * 1e3
				rep.RefPeriodUs = r.RefPeriod * 1e6
			}
			return cell{rep: rep, snap: res.Metrics}, nil
		})
	if err != nil {
		return nil, nil, err
	}
	reports := make([]Report, len(cells))
	var snaps []metrics.Named
	for i, c := range cells {
		reports[i] = c.rep
		if o.Metrics {
			snaps = append(snaps, metrics.Named{
				Name:     pts[i].plan.Name + "/" + pts[i].proto.Name,
				Snapshot: c.snap,
			})
		}
	}
	return reports, snaps, nil
}

func printTable(w *os.File, reports []Report) {
	fmt.Fprintf(w, "%-10s %-22s %9s %8s %7s %8s %9s %9s\n",
		"profile", "protocol", "qmean", "qstd", "drops", "drain", "relock", "util")
	for _, r := range reports {
		drain := "never"
		if r.Drained {
			drain = fmt.Sprintf("%.2fms", r.DrainTimeMs)
		}
		relock := "never"
		if r.Relocked {
			relock = fmt.Sprintf("%.2fms", r.RelockTimeMs)
		}
		fmt.Fprintf(w, "%-10s %-22s %9.1f %8.1f %7d %8s %9s %9.3f\n",
			r.Profile, r.Protocol, r.QueueMeanPkts, r.QueueStdPkts,
			r.FaultDrops, drain, relock, r.Utilization)
	}
}

// merge writes snap as the file's Current, demoting any previous
// Current to the end of History (the dtbench convention).
func merge(path string, snap *Snapshot) error {
	var f File
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &f); err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		if f.Current != nil {
			f.History = append(f.History, *f.Current)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	f.Schema = schema
	f.Current = snap
	raw, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
