package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"dtdctcp"
	"dtdctcp/internal/chaos"
)

// sweepAll runs every built-in profile once at a reduced scale.
func sweepAll(t *testing.T) []Report {
	t.Helper()
	var plans []*chaos.Plan
	for _, name := range chaos.Profiles() {
		p, err := chaos.Profile(name)
		if err != nil {
			t.Fatal(err)
		}
		plans = append(plans, p)
	}
	reports, _, err := Sweep(plans, SweepOptions{Flows: 20, Rate: 1 * dtdctcp.Gbps, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return reports
}

// TestDTDCTCPRecoversNoSlowerOnSomeProfile pins the acceptance
// criterion: on at least one shipped fault profile, DT-DCTCP both
// drains and re-locks, no slower than DCTCP under the identical
// perturbation.
func TestDTDCTCPRecoversNoSlowerOnSomeProfile(t *testing.T) {
	reports := sweepAll(t)
	byProfile := map[string]map[string]Report{}
	for _, r := range reports {
		if byProfile[r.Profile] == nil {
			byProfile[r.Profile] = map[string]Report{}
		}
		key := "dctcp"
		if len(r.Protocol) > 2 && r.Protocol[:3] == "dt-" {
			key = "dt"
		}
		byProfile[r.Profile][key] = r
	}
	wins := 0
	for profile, pair := range byProfile {
		dctcp, dt := pair["dctcp"], pair["dt"]
		if !dt.Drained || !dt.Relocked {
			continue
		}
		drainOK := !dctcp.Drained || dt.DrainTimeMs <= dctcp.DrainTimeMs
		relockOK := !dctcp.Relocked || dt.RelockTimeMs <= dctcp.RelockTimeMs
		if drainOK && relockOK {
			t.Logf("profile %q: DT drain %.2f ms relock %.2f ms vs DCTCP drain %.2f ms relock %.2f ms (drained=%v relocked=%v)",
				profile, dt.DrainTimeMs, dt.RelockTimeMs, dctcp.DrainTimeMs, dctcp.RelockTimeMs,
				dctcp.Drained, dctcp.Relocked)
			wins++
		}
	}
	if wins == 0 {
		t.Fatalf("DT-DCTCP recovered slower than DCTCP on every profile:\n%+v", reports)
	}
}

// TestSweepDeterministicAcrossWorkers: the sweep output is identical
// for any worker count.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	plan, err := chaos.Profile("blackout")
	if err != nil {
		t.Fatal(err)
	}
	one, _, err := Sweep([]*chaos.Plan{plan}, SweepOptions{Flows: 12, Rate: 1 * dtdctcp.Gbps, Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	eight, _, err := Sweep([]*chaos.Plan{plan}, SweepOptions{Flows: 12, Rate: 1 * dtdctcp.Gbps, Seed: 3, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(one)
	b, _ := json.Marshal(eight)
	if string(a) != string(b) {
		t.Fatalf("workers=1 vs workers=8 diverged:\n%s\n%s", a, b)
	}
}

func TestMergeKeepsHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chaos.json")
	if err := merge(path, &Snapshot{Label: "first"}); err != nil {
		t.Fatal(err)
	}
	if err := merge(path, &Snapshot{Label: "second"}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatal(err)
	}
	if f.Schema != schema {
		t.Fatalf("schema = %q", f.Schema)
	}
	if f.Current == nil || f.Current.Label != "second" {
		t.Fatalf("current = %+v", f.Current)
	}
	if len(f.History) != 1 || f.History[0].Label != "first" {
		t.Fatalf("history = %+v", f.History)
	}
}

func TestSelectPlans(t *testing.T) {
	all, err := selectPlans("", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(chaos.Profiles()) {
		t.Fatalf("default selected %d plans, want all %d", len(all), len(chaos.Profiles()))
	}
	some, err := selectPlans("blackout, lossy", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(some) != 2 || some[0].Name != "blackout" || some[1].Name != "lossy" {
		t.Fatalf("subset = %v", some)
	}
	if _, err := selectPlans("meteor", ""); err == nil {
		t.Fatal("unknown profile accepted")
	}
	if _, err := selectPlans("", filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing plan file accepted")
	}
}
