// Command dtconform runs the cross-model conformance grid: matched
// packet-simulator, fluid-model and describing-function scenarios whose
// steady-state queue, oscillation magnitude and limit-cycle period must
// agree within the tolerances declared in internal/conform. It is the
// CLI face of the suite CI enforces via `go test ./internal/conform`.
//
// Usage:
//
//	dtconform                 # full grid, human-readable table
//	dtconform -grid quick     # four-point smoke subset (CI)
//	dtconform -grid zoo       # protocol & switch zoo grid (DCTCP+,
//	                          # HULL phantom queues, shared-buffer DT)
//	dtconform -grid zoo-quick # one zoo scenario per family
//	dtconform -workers 8      # cap concurrent scenario runs
//	dtconform -json           # machine-readable reports
//	dtconform -digests        # also print the golden-run digests
//
// The exit status is 1 when any applicable check fails, so the command
// slots directly into CI or a pre-merge hook.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"dtdctcp/internal/conform"
)

func main() {
	grid := flag.String("grid", "full", `scenario set: "full", "quick", "zoo", or "zoo-quick"`)
	workers := flag.Int("workers", 0, "concurrent scenario runs (0 = GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "emit reports as JSON instead of a table")
	digests := flag.Bool("digests", false, "also compute and print the golden-run digests")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: dtconform [-grid full|quick|zoo|zoo-quick] [-workers N] [-json] [-digests]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	ok, err := run(os.Stdout, *grid, *workers, *jsonOut, *digests)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtconform:", err)
		os.Exit(2)
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "dtconform: conformance FAILED")
		os.Exit(1)
	}
}

// output is the machine-readable shape of one invocation.
type output struct {
	Reports    []conform.Report    `json:"reports,omitempty"`
	ZooReports []conform.ZooReport `json:"zoo_reports,omitempty"`
	Digests    []conform.Digest    `json:"digests,omitempty"`
	Pass       bool                `json:"pass"`
}

// run executes the selected grid and writes the report; it returns
// whether every applicable check passed.
func run(w io.Writer, grid string, workers int, jsonOut, digests bool) (bool, error) {
	ctx := context.Background()
	out := output{Pass: true}
	var err error
	switch grid {
	case "full", "quick":
		scenarios := conform.Grid()
		if grid == "quick" {
			scenarios = conform.QuickGrid()
		}
		out.Reports, err = conform.RunGrid(ctx, scenarios, workers)
		if err != nil {
			return false, err
		}
		for _, r := range out.Reports {
			if !r.Pass() {
				out.Pass = false
			}
		}
		if digests {
			out.Digests, err = conform.DigestGrid(ctx, conform.GoldenScenarios(), workers)
			if err != nil {
				return false, err
			}
		}
	case "zoo", "zoo-quick":
		scenarios := conform.ZooGrid()
		if grid == "zoo-quick" {
			scenarios = conform.QuickZooGrid()
		}
		out.ZooReports, err = conform.RunZooGrid(ctx, scenarios, workers)
		if err != nil {
			return false, err
		}
		for _, r := range out.ZooReports {
			if !r.Pass() {
				out.Pass = false
			}
		}
		if digests {
			for _, z := range conform.ZooGoldenScenarios() {
				d, err := conform.DigestZooRun(z)
				if err != nil {
					return false, err
				}
				out.Digests = append(out.Digests, d)
			}
		}
	default:
		return false, fmt.Errorf("unknown grid %q (want full, quick, zoo, or zoo-quick)", grid)
	}

	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return out.Pass, enc.Encode(out)
	}
	return out.Pass, writeTable(w, out)
}

func writeTable(w io.Writer, out output) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scenario\tcheck\tsim\tref\tverdict\tdetail")
	row := func(scenario string, c conform.Check) {
		verdict := "pass"
		detail := c.Detail
		switch {
		case c.Skipped != "":
			verdict = "skip"
			detail = c.Skipped
		case !c.Pass:
			verdict = "FAIL"
		}
		fmt.Fprintf(tw, "%s\t%s\t%.4g\t%.4g\t%s\t%s\n",
			scenario, c.Name, c.Got, c.Ref, verdict, detail)
	}
	for _, r := range out.Reports {
		for _, c := range r.Checks {
			row(r.Scenario, c)
		}
	}
	for _, r := range out.ZooReports {
		for _, c := range r.Checks {
			row(r.Scenario, c)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if len(out.Digests) > 0 {
		fmt.Fprintln(w, "\ngolden digests:")
		dw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(dw, "scenario\tevents\tmarks\tqueue_hash\tstats_hash")
		for _, d := range out.Digests {
			fmt.Fprintf(dw, "%s\t%d\t%d\t%s\t%s\n", d.Scenario, d.Events, d.Marks, d.QueueHash, d.StatsHash)
		}
		if err := dw.Flush(); err != nil {
			return err
		}
	}
	status := "PASS"
	if !out.Pass {
		status = "FAIL"
	}
	_, err := fmt.Fprintf(w, "\nconformance: %s (%d scenarios)\n", status, len(out.Reports)+len(out.ZooReports))
	return err
}
