package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// The quick grid must pass end to end and render every check row.
func TestQuickGridTable(t *testing.T) {
	var buf bytes.Buffer
	ok, err := run(&buf, "quick", 0, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("quick grid failed:\n%s", buf.String())
	}
	text := buf.String()
	if !strings.Contains(text, "conformance: PASS (4 scenarios)") {
		t.Fatalf("missing summary:\n%s", text)
	}
	for _, want := range []string{"dctcp-k40-n20", "dt3050-n80", "queue-mean/sim-vs-fluid", "period/sim-vs-df"} {
		if !strings.Contains(text, want) {
			t.Fatalf("table missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "FAIL") {
		t.Fatalf("unexpected failing row:\n%s", text)
	}
}

// -json output must parse back into reports with the same verdict, and
// -digests must attach the golden fingerprints.
func TestJSONWithDigests(t *testing.T) {
	var buf bytes.Buffer
	ok, err := run(&buf, "quick", 2, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("quick grid failed")
	}
	var out output
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if !out.Pass || len(out.Reports) != 4 {
		t.Fatalf("want 4 passing reports, got pass=%v n=%d", out.Pass, len(out.Reports))
	}
	if len(out.Digests) == 0 {
		t.Fatal("missing digests")
	}
	for _, d := range out.Digests {
		if d.QueueHash == "" || d.Events == 0 {
			t.Fatalf("empty digest: %+v", d)
		}
	}
}

func TestUnknownGrid(t *testing.T) {
	var buf bytes.Buffer
	if _, err := run(&buf, "bogus", 0, false, false); err == nil {
		t.Fatal("unknown grid name must error")
	}
}

// The zoo quick grid must pass end to end, render one scenario per
// family, and round-trip through -json with the zoo golden digests.
func TestZooQuickGridTable(t *testing.T) {
	var buf bytes.Buffer
	ok, err := run(&buf, "zoo-quick", 0, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("zoo quick grid failed:\n%s", buf.String())
	}
	text := buf.String()
	if !strings.Contains(text, "conformance: PASS (3 scenarios)") {
		t.Fatalf("missing summary:\n%s", text)
	}
	for _, want := range []string{
		"zoo-plus-vs-dt-incast-w16", "zoo-hull-g95-n20",
		"zoo-sharedbuf-single-port-limit", "queue-trace/pooled-vs-private",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("table missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "FAIL") {
		t.Fatalf("unexpected failing row:\n%s", text)
	}
}

func TestZooQuickJSONWithDigests(t *testing.T) {
	var buf bytes.Buffer
	ok, err := run(&buf, "zoo-quick", 2, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("zoo quick grid failed")
	}
	var out output
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if !out.Pass || len(out.ZooReports) != 3 {
		t.Fatalf("want 3 passing zoo reports, got pass=%v n=%d", out.Pass, len(out.ZooReports))
	}
	if len(out.Reports) != 0 {
		t.Fatalf("zoo grid must not emit cross-model reports, got %d", len(out.Reports))
	}
	if len(out.Digests) != 3 {
		t.Fatalf("want 3 zoo golden digests, got %d", len(out.Digests))
	}
	for _, d := range out.Digests {
		if d.QueueHash == "" || d.Events == 0 {
			t.Fatalf("empty digest: %+v", d)
		}
	}
}
