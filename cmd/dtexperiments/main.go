// Command dtexperiments regenerates every figure of the paper as a table
// on stdout. EXPERIMENTS.md records one full run of this tool next to the
// paper's reported numbers.
//
// Usage:
//
//	dtexperiments                 # every figure, paper-scale parameters
//	dtexperiments -fig 10,11,12   # just the flow-count sweep figures
//	dtexperiments -short          # reduced durations for a quick pass
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"dtdctcp"
	"dtdctcp/internal/metrics"
	"dtdctcp/internal/runner"
	"dtdctcp/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dtexperiments:", err)
		os.Exit(1)
	}
}

type settings struct {
	duration time.Duration
	warmup   time.Duration
	rounds   int
	seeds    int
	workers  int
	shards   int
	// collect, when non-nil, receives observability snapshots from the
	// figures that support them (-metrics flag).
	collect *[]metrics.Named
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dtexperiments", flag.ContinueOnError)
	var (
		figs       = fs.String("fig", "1,2,6,9,10,11,12,14,15", "comma-separated figure ids to run (extensions: aqm, d2, buildup, zoo)")
		short      = fs.Bool("short", false, "reduced durations for a quick pass")
		workers    = fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent sweep points (results are identical for any value)")
		shards     = fs.Int("shards", 1, "shard domains of each packet-level run across this many parallel event wheels (results are byte-identical for any count)")
		metricsOut = fs.String("metrics", "", "write observability snapshots of the fig-1 runs as JSON to this path")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this path")
		memProfile = fs.String("memprofile", "", "write a heap profile to this path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProfile != "" {
		stop, err := metrics.StartCPUProfile(*cpuProfile)
		if err != nil {
			return err
		}
		defer stop()
	}

	s := settings{duration: 200 * time.Millisecond, warmup: 40 * time.Millisecond, rounds: 20, seeds: 3}
	if *short {
		s = settings{duration: 40 * time.Millisecond, warmup: 10 * time.Millisecond, rounds: 5, seeds: 1}
	}
	s.workers = *workers
	if s.workers < 1 {
		s.workers = 1
	}
	s.shards = *shards
	if s.shards < 1 {
		s.shards = 1
	}
	var collected []metrics.Named
	if *metricsOut != "" {
		s.collect = &collected
	}

	runners := map[string]func(settings, io.Writer) error{
		"1":  fig1,
		"2":  fig2,
		"6":  fig6,
		"9":  fig9,
		"10": figSweep, // Figs. 10–12 share one sweep; run it once.
		"11": figSweep,
		"12": figSweep,
		"14": fig14,
		"15": fig15,
		// Extensions beyond the paper's figures.
		"aqm":     extAQM,
		"d2":      extDeadlines,
		"buildup": extBuildup,
		"zoo":     extZoo,
	}
	ran := make(map[string]bool)
	for _, id := range strings.Split(*figs, ",") {
		id = strings.TrimSpace(id)
		fn, ok := runners[id]
		if !ok {
			return fmt.Errorf("unknown figure %q", id)
		}
		key := id
		if id == "10" || id == "11" || id == "12" {
			key = "sweep"
		}
		if ran[key] {
			continue
		}
		ran[key] = true
		if err := fn(s, out); err != nil {
			return fmt.Errorf("figure %s: %w", id, err)
		}
	}
	if *metricsOut != "" {
		if err := metrics.WriteFile(*metricsOut, collected); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nmetrics written to %s\n", *metricsOut)
	}
	if *memProfile != "" {
		if err := metrics.WriteHeapProfile(*memProfile); err != nil {
			return err
		}
	}
	return nil
}

func header(out io.Writer, title string) {
	fmt.Fprintln(out)
	fmt.Fprintln(out, "=== "+title+" ===")
}

// fig1 regenerates Fig. 1: DCTCP queue traces at N = 10 and N = 100.
func fig1(s settings, out io.Writer) error {
	header(out, "Fig. 1 — DCTCP queue oscillation (10 Gbps, 100 µs RTT, K=40, g=1/16)")
	for _, n := range []int{10, 100} {
		res, err := dtdctcp.RunDumbbell(dtdctcp.DumbbellConfig{
			Protocol:         dtdctcp.DCTCP(40, 1.0/16),
			Flows:            n,
			Rate:             10 * dtdctcp.Gbps,
			RTT:              100 * time.Microsecond,
			BufferPkts:       600,
			Duration:         s.duration,
			Warmup:           s.warmup,
			QueueSampleEvery: 25 * time.Microsecond,
			Seed:             1,
			Shards:           s.shards,
			Metrics:          s.collect != nil,
		})
		if err != nil {
			return err
		}
		if s.collect != nil {
			*s.collect = append(*s.collect,
				metrics.Named{Name: fmt.Sprintf("fig1-n%d", n), Snapshot: res.Metrics})
		}
		fmt.Fprintf(out, "\nN = %d: mean %.1f pkts, stddev %.1f, excursion [%.0f, %.0f] (peak-to-peak %.0f)\n",
			n, res.QueueMeanPkts, res.QueueStdPkts, res.QueueMinPkts, res.QueueMaxPkts,
			res.QueueMaxPkts-res.QueueMinPkts)
		if res.QueueSeries != nil {
			// Plot only the steady state; the slow-start transient
			// would dominate the y-scale otherwise.
			steady := stats.NewSeries("queue (packets, steady state)")
			for _, pt := range res.QueueSeries.Points() {
				if pt.T >= s.warmup.Seconds() {
					steady.Add(pt.T, pt.V)
				}
			}
			fmt.Fprint(out, steady.AsciiPlot(100, 12))
		}
	}
	fmt.Fprintln(out, "\npaper: N=100 amplitude ≈ 3–4× the N=10 amplitude")
	return nil
}

// fig2 regenerates Fig. 2: both marking strategies on one trajectory.
func fig2(_ settings, out io.Writer) error {
	header(out, "Fig. 2 — marking strategies on a rise-and-fall queue trajectory (peak 80 pkts)")
	traj := dtdctcp.TriangleTrajectory(80)
	protos := []dtdctcp.Protocol{dtdctcp.DCTCP(40, 1.0/16), dtdctcp.DTDCTCP(30, 50, 1.0/16)}
	for _, p := range protos {
		dec, err := dtdctcp.ReplayMarker(p, traj)
		if err != nil {
			return err
		}
		firstOn, lastOn := -1, -1
		for i, d := range dec {
			if d.Marked {
				if firstOn < 0 {
					firstOn = i
				}
				lastOn = i
			}
		}
		fmt.Fprintf(out, "%-24s marks from q=%d (rising) to q=%d (falling)\n",
			p.Name, dec[firstOn].QueuePkts, dec[lastOn].QueuePkts)
	}
	fmt.Fprintln(out, "paper: DCTCP marks symmetrically at K; DT-DCTCP starts at K1 rising, releases at K2 falling")
	return nil
}

// fig6 validates the describing functions of Figs. 6/8 numerically.
func fig6(_ settings, out io.Writer) error {
	header(out, "Figs. 6/8 — describing functions, closed form (Eqs. 22/27) vs numeric Fourier")
	fmt.Fprintln(out, "    X    N_dc analytic    N_dc numeric     N_dt analytic           N_dt numeric")
	dcDF := dtdctcp.DCTCPDF{K: 40}
	dtDF := dtdctcp.DTDCTCPDF{K1: 30, K2: 50}
	const steps = 200000
	for _, x := range []float64{55, 70, 100, 200} {
		x := x
		dc := dcDF.Eval(x)
		dcn := dtdctcp.NumericDF(x, steps, func(th float64) float64 {
			if x*math.Sin(th) >= 40 {
				return 1
			}
			return 0
		})
		dtv := dtDF.Eval(x)
		phi1 := math.Asin(30 / x)
		phi2 := math.Pi - math.Asin(50/x)
		dtn := dtdctcp.NumericDF(x, steps, func(th float64) float64 {
			if th >= phi1 && th <= phi2 {
				return 1
			}
			return 0
		})
		fmt.Fprintf(out, "  %5.0f  %13.6g  %13.6g   %10.6g+%.6gj   %10.6g+%.6gj\n",
			x, real(dc), real(dcn), real(dtv), imag(dtv), real(dtn), imag(dtn))
	}
	return nil
}

// fig9 regenerates Fig. 9: Nyquist verdicts across N and the onsets.
func fig9(_ settings, out io.Writer) error {
	header(out, "Fig. 9 — Nyquist / describing-function stability (R=100 µs, C=10 Gbps, K=40, g=1/16)")
	params := dtdctcp.PaperAnalysisParams()
	dc := dtdctcp.DCTCP(40, 1.0/16)
	dt := dtdctcp.DTDCTCP(30, 50, 1.0/16)
	fmt.Fprintln(out, "   N   DCTCP                                      DT-DCTCP")
	for _, n := range []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100} {
		vdc, err := dtdctcp.AnalyzeStability(dc, params, n)
		if err != nil {
			return err
		}
		vdt, err := dtdctcp.AnalyzeStability(dt, params, n)
		if err != nil {
			return err
		}
		mdc, err := dtdctcp.StabilityMargins(dc, params, n)
		if err != nil {
			return err
		}
		mdt, err := dtdctcp.StabilityMargins(dt, params, n)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, " %3d   %-36s gm=%4.2f   %-36s gm=%4.2f\n",
			n, verdict(vdc), mdc.GainMargin, verdict(vdt), mdt.GainMargin)
	}
	ndc, err := dtdctcp.CriticalFlows(dc, params, 2, 200)
	if err != nil {
		return err
	}
	ndt, err := dtdctcp.CriticalFlows(dt, params, 2, 200)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\noscillation onset: DCTCP N=%d, DT-DCTCP N=%d (paper: 60 and 70)\n", ndc, ndt)
	return nil
}

func verdict(v dtdctcp.StabilityVerdict) string {
	if v.Stable {
		return fmt.Sprintf("stable (approach %.3f)", v.ClosestApproach)
	}
	return fmt.Sprintf("oscillates X=%.0f pkts, %.0f rad/s", v.Cycle.Amplitude, v.Cycle.Frequency)
}

// figSweep regenerates Figs. 10, 11 and 12: the N = 10..100 sweep.
func figSweep(s settings, out io.Writer) error {
	header(out, "Figs. 10/11/12 — flow sweep (10 Gbps, 100 µs RTT; DCTCP K=40 vs DT-DCTCP K1=30/K2=50)")
	base := dtdctcp.DumbbellConfig{
		Rate:       10 * dtdctcp.Gbps,
		RTT:        100 * time.Microsecond,
		BufferPkts: 600,
		Duration:   s.duration,
		Warmup:     s.warmup,
		Seed:       1,
		Shards:     s.shards,
	}
	flows := make([]int, 0, 19)
	for n := 10; n <= 100; n += 5 {
		flows = append(flows, n)
	}
	baseDC := base
	baseDC.Protocol = dtdctcp.DCTCP(40, 1.0/16)
	dc, err := dtdctcp.SweepFlowsParallel(context.Background(), baseDC, flows, s.workers)
	if err != nil {
		return err
	}
	baseDT := base
	baseDT.Protocol = dtdctcp.DTDCTCP(30, 50, 1.0/16)
	dt, err := dtdctcp.SweepFlowsParallel(context.Background(), baseDT, flows, s.workers)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "   N | DCTCP  mean  norm    sd  alpha | DT-DCTCP mean  norm    sd  alpha")
	for i := range dc {
		rdc, rdt := dc[i].Result, dt[i].Result
		fmt.Fprintf(out, " %3d |       %5.1f %5.2f %5.1f  %.3f |         %5.1f %5.2f %5.1f  %.3f\n",
			dc[i].Flows,
			rdc.QueueMeanPkts, rdc.QueueMeanPkts/dc[0].Result.QueueMeanPkts, rdc.QueueStdPkts, rdc.AlphaMean,
			rdt.QueueMeanPkts, rdt.QueueMeanPkts/dt[0].Result.QueueMeanPkts, rdt.QueueStdPkts, rdt.AlphaMean)
	}
	fmt.Fprintln(out, "\nFig. 10 paper: DCTCP mean strays from N≈35 (up to 1.83× baseline); DT-DCTCP holds near 1× until N≈70")
	fmt.Fprintln(out, "Fig. 11 paper: both sd grow with N; DT-DCTCP's sd below DCTCP's at every N")
	fmt.Fprintln(out, "Fig. 12 paper: both alpha grow with N; DT-DCTCP's alpha below DCTCP's by ≈0.1")
	return nil
}

// fig14 regenerates Fig. 14: incast goodput vs synchronized flow count.
func fig14(s settings, out io.Writer) error {
	header(out, "Fig. 14 — incast: 64 KB/worker, 1 Gbps testbed, 128 KB buffer (DCTCP K=21; DT-DCTCP K1=16/K2=26)")
	fmt.Fprintln(out, "   n | DCTCP goodput  timeouts | DT-DCTCP goodput  timeouts")
	workers := []int{8, 16, 24, 32, 40, 48, 56, 64, 72}
	type incastRow struct {
		gdc, gdt float64
		tdc, tdt uint64
	}
	// Each point simulates both protocols in its own engines; the rows
	// come back in input order regardless of the worker count.
	rows, err := runner.Map(context.Background(), len(workers), runner.Options{Workers: s.workers, ThreadsPerJob: s.shards},
		func(_ context.Context, i int) (incastRow, error) {
			var r incastRow
			var err error
			if r.gdc, r.tdc, err = incastPoint(dtdctcp.DCTCP(21, 1.0/16), workers[i], s); err != nil {
				return r, err
			}
			r.gdt, r.tdt, err = incastPoint(dtdctcp.DTDCTCP(16, 26, 1.0/16), workers[i], s)
			return r, err
		})
	if err != nil {
		return err
	}
	collapseDC, collapseDT := -1, -1
	for i, r := range rows {
		n := workers[i]
		if collapseDC < 0 && r.gdc < 0.5e9 {
			collapseDC = n
		}
		if collapseDT < 0 && r.gdt < 0.5e9 {
			collapseDT = n
		}
		fmt.Fprintf(out, " %3d |  %7.1f Mbps  %8d |   %7.1f Mbps  %8d\n",
			n, r.gdc/1e6, r.tdc, r.gdt/1e6, r.tdt)
	}
	fmt.Fprintf(out, "\ncollapse onset (goodput < 500 Mbps): DCTCP n=%s, DT-DCTCP n=%s (paper: 32 and 37)\n",
		onset(collapseDC), onset(collapseDT))
	return nil
}

func onset(n int) string {
	if n < 0 {
		return ">72"
	}
	return fmt.Sprint(n)
}

func incastPoint(p dtdctcp.Protocol, n int, s settings) (goodput float64, timeouts uint64, err error) {
	for seed := int64(1); seed <= int64(s.seeds); seed++ {
		cfg := dtdctcp.DefaultTestbed(p, n)
		cfg.Seed = seed
		cfg.Shards = s.shards
		res, err := dtdctcp.RunIncast(cfg, s.rounds)
		if err != nil {
			return 0, 0, err
		}
		goodput += res.MeanGoodputBps / float64(s.seeds)
		timeouts += res.Timeouts
	}
	return goodput, timeouts, nil
}

// fig15 regenerates Fig. 15: query completion time vs worker count.
func fig15(s settings, out io.Writer) error {
	header(out, "Fig. 15 — completion time: 1 MB split n ways (floor ≈ 10 ms at 1 Gbps)")
	fmt.Fprintln(out, "   n | DCTCP   mean      p95      max | DT-DCTCP mean      p95      max")
	counts := []int{8, 16, 24, 32, 40, 48, 56, 64}
	type completionRow struct{ dc, dt *dtdctcp.QueryResult }
	rows, err := runner.Map(context.Background(), len(counts), runner.Options{Workers: s.workers, ThreadsPerJob: s.shards},
		func(_ context.Context, i int) (completionRow, error) {
			var r completionRow
			var err error
			if r.dc, err = completionPoint(dtdctcp.DCTCP(21, 1.0/16), counts[i], s); err != nil {
				return r, err
			}
			r.dt, err = completionPoint(dtdctcp.DTDCTCP(16, 26, 1.0/16), counts[i], s)
			return r, err
		})
	if err != nil {
		return err
	}
	for i, r := range rows {
		fmt.Fprintf(out, " %3d |  %8.1f %8.1f %8.1f |  %8.1f %8.1f %8.1f   (ms)\n",
			counts[i],
			ms(r.dc.MeanCompletion), ms(r.dc.P95Completion), ms(r.dc.MaxCompletion),
			ms(r.dt.MeanCompletion), ms(r.dt.P95Completion), ms(r.dt.MaxCompletion))
	}
	fmt.Fprintln(out, "\npaper: completion ≈10 ms until Incast; DCTCP oscillates from n=34 and spikes ≈20× at 40; DT-DCTCP climbs smoothly and spikes at 42")
	return nil
}

func completionPoint(p dtdctcp.Protocol, n int, s settings) (*dtdctcp.QueryResult, error) {
	cfg := dtdctcp.DefaultTestbed(p, n)
	cfg.Shards = s.shards
	return dtdctcp.RunCompletionTime(cfg, s.rounds)
}

func ms(d time.Duration) float64 {
	return math.Round(d.Seconds()*1e4) / 10
}

// extAQM compares every queue law in the library at the paper's N = 60
// oscillation point.
func extAQM(s settings, out io.Writer) error {
	header(out, "Extension — queue-law comparison at N = 60 (10 Gbps, 100 µs RTT)")
	protos := []dtdctcp.Protocol{
		dtdctcp.Reno(),
		dtdctcp.Cubic(),
		dtdctcp.RenoECN(40),
		dtdctcp.RenoPIE(10*dtdctcp.Gbps, 200*time.Microsecond),
		dtdctcp.RenoCoDel(200*time.Microsecond, time.Millisecond),
		dtdctcp.DCTCP(40, 1.0/16),
		dtdctcp.DTDCTCP(30, 50, 1.0/16),
		dtdctcp.DCTCPPlus(40, 1.0/16),
		dtdctcp.HULL(40, 0.95, 10*dtdctcp.Gbps, 1.0/16),
	}
	fmt.Fprintf(out, "%-28s %10s %8s %8s %9s %8s\n",
		"protocol", "mean(pkt)", "sd(pkt)", "util", "marks", "drops")
	for _, p := range protos {
		res, err := dtdctcp.RunDumbbell(dtdctcp.DumbbellConfig{
			Protocol:   p,
			Flows:      60,
			Rate:       10 * dtdctcp.Gbps,
			RTT:        100 * time.Microsecond,
			BufferPkts: 600,
			Duration:   s.duration,
			Warmup:     s.warmup,
			Seed:       1,
			Shards:     s.shards,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%-28s %10.1f %8.1f %7.1f%% %9d %8d\n",
			res.Protocol, res.QueueMeanPkts, res.QueueStdPkts,
			res.Utilization*100, res.Marks, res.Drops)
	}
	return nil
}

// extBuildup runs the queue-buildup microbenchmark from the DCTCP
// evaluation: short transfers behind bulk flows.
func extBuildup(_ settings, out io.Writer) error {
	header(out, "Extension — queue buildup: 20 KB short flows behind 2 bulk flows (10 Gbps)")
	fmt.Fprintf(out, "%-28s %9s %9s %9s %11s\n", "protocol", "meanFCT", "p95FCT", "maxFCT", "queue(pkt)")
	for _, p := range []dtdctcp.Protocol{
		dtdctcp.Reno(),
		dtdctcp.Cubic(),
		dtdctcp.DCTCP(40, 1.0/16),
		dtdctcp.DTDCTCP(30, 50, 1.0/16),
	} {
		res, err := dtdctcp.RunBuildup(dtdctcp.DefaultBuildup(p))
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%-28s %8.0fµs %8.0fµs %8.0fµs %11.1f\n",
			res.Protocol,
			float64(res.MeanFCT.Microseconds()),
			float64(res.P95FCT.Microseconds()),
			float64(res.MaxFCT.Microseconds()),
			res.QueueMeanPkts)
	}
	fmt.Fprintln(out, "\nshort-flow latency is the standing queue: DropTail stacks ~500 pkts in front of every short transfer")
	return nil
}

// extZoo runs the protocol-and-switch zoo: the sender-side DCTCP+ slow
// timer against the switch-side DT-DCTCP fix on the testbed incast, the
// HULL phantom-queue γ sweep (utilization pins at γ while the real queue
// keeps headroom), and the shared-buffer dynamic-threshold switch across
// α (the bottleneck queue caps at αB/(1+α)).
func extZoo(s settings, out io.Writer) error {
	header(out, "Zoo — DCTCP+ vs DT-DCTCP vs DCTCP incast (64 KB per worker)")
	fmt.Fprintf(out, "%-8s %-22s %10s %10s %9s %8s\n",
		"workers", "protocol", "meanC", "goodput", "timeouts", "drops")
	for _, w := range []int{16, 32} {
		for _, p := range []dtdctcp.Protocol{
			dtdctcp.DCTCPPlus(20, 1.0/16),
			dtdctcp.DTDCTCP(16, 26, 1.0/16),
			dtdctcp.DCTCP(20, 1.0/16),
		} {
			cfg := dtdctcp.DefaultTestbed(p, w)
			cfg.Shards = s.shards
			res, err := dtdctcp.RunIncast(cfg, s.rounds)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%-8d %-22s %10v %9.2fM %9d %8d\n",
				w, res.Protocol, res.MeanCompletion.Round(10*time.Microsecond),
				res.MeanGoodputBps/1e6, res.Timeouts, res.Drops)
		}
	}

	header(out, "Zoo — HULL phantom queue γ sweep (20 flows, 10 Gbps, K=40)")
	fmt.Fprintf(out, "%-8s %10s %10s %9s %8s\n", "gamma", "util", "mean(pkt)", "marks", "drops")
	for _, gamma := range []float64{0.80, 0.90, 0.95, 1.0} {
		res, err := dtdctcp.RunDumbbell(dtdctcp.DumbbellConfig{
			Protocol:   dtdctcp.HULL(40, gamma, 10*dtdctcp.Gbps, 1.0/16),
			Flows:      20,
			Rate:       10 * dtdctcp.Gbps,
			RTT:        100 * time.Microsecond,
			BufferPkts: 600,
			Duration:   s.duration,
			Warmup:     s.warmup,
			Seed:       1,
			Shards:     s.shards,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%-8.2f %9.1f%% %10.1f %9d %8d\n",
			gamma, res.Utilization*100, res.QueueMeanPkts, res.Marks, res.Drops)
	}
	fmt.Fprintln(out, "\nutilization tracks γ: the phantom queue trades bandwidth headroom for near-empty real buffers")

	// Loss-driven Reno fills whatever buffer it is given, so the
	// dynamic-threshold cap αB/(1+α) shows up directly in the queue max;
	// ECN-governed flows never push the pool hard enough to see it.
	header(out, "Zoo — shared-buffer dynamic-threshold switch (40 Reno flows, pool = 600 pkts)")
	fmt.Fprintf(out, "%-10s %10s %10s %10s %10s %9s %8s\n", "alpha", "cap(pkt)", "util", "mean(pkt)", "max(pkt)", "marks", "drops")
	for _, alpha := range []float64{0.5, 1, 2, 8} {
		res, err := dtdctcp.RunDumbbell(dtdctcp.DumbbellConfig{
			Protocol:     dtdctcp.Reno(),
			Flows:        40,
			Rate:         10 * dtdctcp.Gbps,
			RTT:          100 * time.Microsecond,
			BufferPkts:   600,
			Duration:     s.duration,
			Warmup:       s.warmup,
			Seed:         1,
			Shards:       s.shards,
			SharedBuffer: dtdctcp.SharedBufferConfig{Alpha: alpha},
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%-10.1f %10.0f %9.1f%% %10.1f %10.0f %9d %8d\n",
			alpha, alpha*600/(1+alpha), res.Utilization*100,
			res.QueueMeanPkts, res.QueueMaxPkts, res.Marks, res.Drops)
	}
	fmt.Fprintln(out, "\nthe dynamic threshold caps one congested port at αB/(1+α), keeping pool headroom for the quiet ports")
	return nil
}

// extDeadlines sweeps deadline tightness for the D²TCP extension.
func extDeadlines(s settings, out io.Writer) error {
	header(out, "Extension — D²TCP deadline miss rate (32 workers × 64 KB)")
	fmt.Fprintln(out, "deadline | dctcp   | d2tcp")
	for _, deadline := range []time.Duration{
		30 * time.Millisecond, 25 * time.Millisecond, 20 * time.Millisecond,
	} {
		fmt.Fprintf(out, "%8v |", deadline)
		for _, p := range []dtdctcp.Protocol{
			dtdctcp.DCTCP(21, 1.0/16), dtdctcp.D2TCP(21, 1.0/16),
		} {
			cfg := dtdctcp.DefaultTestbed(p, 32)
			cfg.Deadline = deadline
			cfg.Shards = s.shards
			res, err := dtdctcp.RunIncast(cfg, s.rounds)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, " %5.1f%%  |", res.DeadlineMissRate*100)
		}
		fmt.Fprintln(out)
	}
	return nil
}
