package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestRunQuickFigures(t *testing.T) {
	// Figures 2, 6 and 9 have no simulation component and run fast even
	// without -short.
	if err := run([]string{"-fig", "2,6,9"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunShortSimulationFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation figures are slow")
	}
	if err := run([]string{"-short", "-fig", "1"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "99"}, io.Discard); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-zap"}, io.Discard); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestWorkersFlagDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	// The figure tables must be byte-identical regardless of -workers:
	// every sweep point owns a private engine and rows are emitted in
	// input order.
	var serial, parallel bytes.Buffer
	if err := run([]string{"-short", "-workers", "1", "-fig", "10"}, &serial); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-short", "-workers", "8", "-fig", "10"}, &parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Fatalf("-workers=1 and -workers=8 produced different tables:\n--- workers=1\n%s\n--- workers=8\n%s",
			serial.String(), parallel.String())
	}
}

func TestSweepFiguresDeduplicated(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	// Figures 10, 11, 12 share one sweep; requesting all three must run
	// it once (this is a smoke test that it completes).
	if err := run([]string{"-short", "-fig", "10,11,12"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunZooExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("zoo tables are slow")
	}
	// The zoo tables must render all three families: the DCTCP+ incast
	// comparison, the HULL γ sweep, and the shared-buffer α sweep whose
	// queue max tracks the dynamic-threshold cap αB/(1+α).
	var buf bytes.Buffer
	if err := run([]string{"-short", "-fig", "zoo"}, &buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"dctcp+", "dt-dctcp", "HULL", "gamma", "alpha", "cap(pkt)",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("zoo output missing %q:\n%s", want, text)
		}
	}
}
