// Command dtfabric runs the datacenter-fabric experiment: DCTCP against
// DT-DCTCP on a k-ary fat-tree or leaf-spine Clos under a trace-driven
// workload, reporting flow-completion-time percentiles per size bucket,
// queue summaries at the core and aggregation tiers, and mark/drop
// rates as machine-readable JSON.
//
// Reports follow the dtbench file conventions — {schema, current,
// history[]} with -o merging — but deliberately record no wall-clock
// state: a report is a pure function of its flags, so committed
// baselines diff cleanly. The -verify-shards flag makes the determinism
// contract executable: every listed shard count must reproduce the
// serial digest bit for bit, and the verified counts are recorded in
// the report.
//
// Usage:
//
//	dtfabric                          # baseline pair on a k=4 fat-tree
//	dtfabric -o FABRIC_baseline.json  # merge into the committed baseline
//	dtfabric -quick                   # small leaf-spine (CI smoke)
//	dtfabric -topo leafspine -leaves 4 -spines 2 -hosts-per-leaf 4
//	dtfabric -cdf datamining -load 0.8 -matrix permutation
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"dtdctcp"
	"dtdctcp/internal/flowgen"
)

// Config echoes the flags that shaped a snapshot, so a committed report
// documents its own provenance.
type Config struct {
	Topology     string  `json:"topology"`
	K            int     `json:"k,omitempty"`
	Leaves       int     `json:"leaves,omitempty"`
	Spines       int     `json:"spines,omitempty"`
	HostsPerLeaf int     `json:"hosts_per_leaf,omitempty"`
	RateGbps     float64 `json:"rate_gbps"`
	HopMicros    float64 `json:"hop_micros"`
	BufferPkts   int     `json:"buffer_pkts"`
	CDF          string  `json:"cdf"`
	Load         float64 `json:"load"`
	Flows        int     `json:"flows"`
	Matrix       string  `json:"matrix"`
	SmallMax     int64   `json:"small_max_bytes"`
	LargeMin     int64   `json:"large_min_bytes"`
	Seed         int64   `json:"seed"`
	MarkK        int     `json:"mark_k"`
	MarkK1       int     `json:"mark_k1"`
	MarkK2       int     `json:"mark_k2"`
}

// Snapshot is one complete dtfabric run: the two protocols side by
// side, plus the shard counts whose digests were verified against the
// serial run.
type Snapshot struct {
	Label          string                  `json:"label"`
	GoVersion      string                  `json:"go_version"`
	Config         Config                  `json:"config"`
	Results        []*dtdctcp.FabricResult `json:"results"`
	ShardsVerified []int                   `json:"shards_verified,omitempty"`
}

// File is the on-disk layout shared with dtbench: the latest snapshot
// plus every snapshot it replaced, oldest first.
type File struct {
	Schema  string     `json:"schema"`
	Current *Snapshot  `json:"current"`
	History []Snapshot `json:"history,omitempty"`
}

const schema = "dtfabric/v1"

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dtfabric:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dtfabric", flag.ContinueOnError)
	var (
		topology = fs.String("topo", "fattree", "topology: fattree or leafspine")
		k        = fs.Int("k", 4, "fat-tree arity (even)")
		leaves   = fs.Int("leaves", 4, "leaf-spine: number of leaf switches")
		spines   = fs.Int("spines", 4, "leaf-spine: number of spine switches")
		hostsPer = fs.Int("hosts-per-leaf", 4, "leaf-spine: hosts per leaf")
		rateGbps = fs.Float64("rate", 1, "link rate in Gbit/s (hosts and fabric)")
		hop      = fs.Duration("hop", 10*time.Microsecond, "per-link propagation delay")
		buffer   = fs.Int("buffer", 100, "per-port buffer in packets")
		cdfName  = fs.String("cdf", flowgen.WebSearchSmall, "flow-size CDF: builtin name or trace file path")
		load     = fs.Float64("load", 0.6, "offered load as a fraction of bisection bandwidth")
		flows    = fs.Int("flows", 50000, "trace length in flows")
		matrixS  = fs.String("matrix", "random", "traffic matrix: random, permutation, incast")
		smallMax = fs.Int64("small-max", 100_000, "largest small-bucket flow in bytes")
		largeMin = fs.Int64("large-min", 1_000_000, "smallest large-bucket flow in bytes")
		seed     = fs.Int64("seed", 1, "simulation seed")
		shards   = fs.Int("shards", 1, "event wheels for the reported runs (1 = serial)")
		verify   = fs.String("verify-shards", "", "comma-separated shard counts that must reproduce the serial digest (e.g. 1,2,4)")
		markK    = fs.Int("K", 20, "DCTCP marking threshold in packets")
		markK1   = fs.Int("K1", 15, "DT-DCTCP lower threshold in packets")
		markK2   = fs.Int("K2", 25, "DT-DCTCP upper threshold in packets")
		g        = fs.Float64("g", 1.0/16, "DCTCP EWMA gain")
		zoo      = fs.Bool("zoo", false, "also run the DCTCP+ and HULL zoo protocols over the fabric")
		quick    = fs.Bool("quick", false, "small leaf-spine and short trace for a fast smoke pass")
		out      = fs.String("o", "", "merge the snapshot into this JSON file (previous current moves to history)")
		label    = fs.String("label", "", "snapshot label")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *quick {
		*topology = "leafspine"
		*leaves, *spines, *hostsPer = 2, 2, 2
		*flows = 80
		*load = 0.4
	}

	cdf, err := loadCDF(*cdfName)
	if err != nil {
		return err
	}
	matrix, err := flowgen.ParseMatrix(*matrixS)
	if err != nil {
		return err
	}
	base := dtdctcp.FabricConfig{
		Topology:     *topology,
		K:            *k,
		Leaves:       *leaves,
		Spines:       *spines,
		HostsPerLeaf: *hostsPer,
		Rate:         dtdctcp.Rate(*rateGbps * float64(dtdctcp.Gbps)),
		HopDelay:     *hop,
		BufferPkts:   *buffer,
		CDF:          cdf,
		Load:         *load,
		Flows:        *flows,
		Matrix:       matrix,
		SmallMax:     *smallMax,
		LargeMin:     *largeMin,
		Seed:         *seed,
		Shards:       *shards,
	}
	protocols := []dtdctcp.Protocol{
		dtdctcp.DCTCP(*markK, *g),
		dtdctcp.DTDCTCP(*markK1, *markK2, *g),
	}
	if *zoo {
		protocols = append(protocols,
			dtdctcp.DCTCPPlus(*markK, *g),
			dtdctcp.HULL(*markK, 0.95, base.Rate, *g),
		)
	}

	snap := &Snapshot{
		Label:     *label,
		GoVersion: runtime.Version(),
		Config: Config{
			Topology: *topology, RateGbps: *rateGbps,
			HopMicros: float64(*hop) / float64(time.Microsecond), BufferPkts: *buffer,
			CDF: *cdfName, Load: *load, Flows: *flows, Matrix: matrix.String(),
			SmallMax: *smallMax, LargeMin: *largeMin, Seed: *seed,
			MarkK: *markK, MarkK1: *markK1, MarkK2: *markK2,
		},
	}
	if *topology == "fattree" {
		snap.Config.K = *k
	} else {
		snap.Config.Leaves, snap.Config.Spines, snap.Config.HostsPerLeaf = *leaves, *spines, *hostsPer
	}

	verifyCounts, err := parseShardList(*verify)
	if err != nil {
		return err
	}
	for _, p := range protocols {
		cfg := base
		cfg.Protocol = p
		res, err := dtdctcp.RunFabric(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", p.Name, err)
		}
		fmt.Fprintf(os.Stderr, "dtfabric: %s: %d/%d flows, digest %s, %d events\n",
			p.Name, res.Completed, res.Flows, res.Digest, res.Events)
		for _, sc := range verifyCounts {
			if sc == cfg.Shards {
				continue // already the reported run
			}
			vc := cfg
			vc.Shards = sc
			vres, err := dtdctcp.RunFabric(vc)
			if err != nil {
				return fmt.Errorf("%s shards=%d: %w", p.Name, sc, err)
			}
			if vres.Digest != res.Digest {
				return fmt.Errorf("%s: shards=%d digest %s != shards=%d digest %s",
					p.Name, sc, vres.Digest, cfg.Shards, res.Digest)
			}
			fmt.Fprintf(os.Stderr, "dtfabric: %s: shards=%d reproduces digest %s\n",
				p.Name, sc, vres.Digest)
		}
		snap.Results = append(snap.Results, res)
	}
	snap.ShardsVerified = verifyCounts

	if *out == "" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(snap)
	}
	return merge(*out, snap)
}

// loadCDF resolves a builtin name, falling back to a trace file path.
func loadCDF(name string) (*dtdctcp.FlowSizeCDF, error) {
	if c, err := dtdctcp.BuiltinFlowCDF(name); err == nil {
		return c, nil
	} else if _, statErr := os.Stat(name); statErr != nil {
		return nil, err // not a file either: report the builtin error
	}
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dtdctcp.ParseFlowCDF(f)
}

func parseShardList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -verify-shards entry %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// merge writes snap as the file's Current, demoting any previous
// Current to the end of History.
func merge(path string, snap *Snapshot) error {
	var f File
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		if f.Schema != "" && f.Schema != schema {
			return fmt.Errorf("%s has schema %q, want %q", path, f.Schema, schema)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	if f.Current != nil {
		f.History = append(f.History, *f.Current)
	}
	f.Schema = schema
	f.Current = snap
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
