package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestQuickRunVerifiedSharded drives the whole CLI path: a quick
// leaf-spine pair with shard verification against the serial digest,
// merged into a fresh report file.
func TestQuickRunVerifiedSharded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fabric.json")
	if err := run([]string{"-quick", "-verify-shards", "1,2", "-o", path, "-label", "test"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	if f.Schema != schema {
		t.Fatalf("schema %q, want %q", f.Schema, schema)
	}
	if f.Current == nil || len(f.Current.Results) != 2 {
		t.Fatalf("want a DCTCP/DT-DCTCP result pair, got %+v", f.Current)
	}
	for _, res := range f.Current.Results {
		if res.Completed != res.Flows || len(res.Digest) != 16 {
			t.Fatalf("result %s: completed %d/%d, digest %q",
				res.Protocol, res.Completed, res.Flows, res.Digest)
		}
	}
	if len(f.Current.ShardsVerified) != 2 {
		t.Fatalf("shards verified %v, want [1 2]", f.Current.ShardsVerified)
	}
	if f.Current.Label != "test" {
		t.Fatalf("label %q", f.Current.Label)
	}
}

func TestMergeDemotesCurrentToHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fabric.json")
	if err := merge(path, &Snapshot{Label: "first"}); err != nil {
		t.Fatal(err)
	}
	if err := merge(path, &Snapshot{Label: "second"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	if f.Current.Label != "second" || len(f.History) != 1 || f.History[0].Label != "first" {
		t.Fatalf("merge did not demote: current %q, history %+v", f.Current.Label, f.History)
	}
}

func TestMergeRejectsForeignSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(`{"schema":"dtbench/v1"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := merge(path, &Snapshot{}); err == nil {
		t.Fatal("merged into a dtbench file")
	}
}

func TestLoadCDFFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sizes.cdf")
	if err := os.WriteFile(path, []byte("1460 0.5\n29200 1.0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := loadCDF(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Points() != 2 {
		t.Fatalf("parsed %d points", c.Points())
	}
	if _, err := loadCDF("no-such-builtin-or-file"); err == nil {
		t.Fatal("resolved a nonexistent CDF")
	}
}

func TestParseShardList(t *testing.T) {
	got, err := parseShardList("1, 2,4")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 4 {
		t.Fatalf("parseShardList: %v, %v", got, err)
	}
	for _, bad := range []string{"0", "-1", "x", "1,,2"} {
		if _, err := parseShardList(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
	if got, err := parseShardList(""); err != nil || got != nil {
		t.Fatalf("empty list: %v, %v", got, err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for name, args := range map[string][]string{
		"bad matrix":  {"-quick", "-matrix", "butterfly"},
		"bad cdf":     {"-quick", "-cdf", "no-such"},
		"bad verify":  {"-quick", "-verify-shards", "zero,"},
		"bad topo":    {"-topo", "torus", "-flows", "10"},
		"unknown arg": {"-frobnicate"},
	} {
		if err := run(args); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
