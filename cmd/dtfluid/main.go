// Command dtfluid integrates the DCTCP fluid model (Eqs. 1–3 of the
// paper, from Alizadeh et al. SIGMETRICS'11) under either marking law and
// reports the steady-state queue statistics and oscillation amplitude.
//
// Examples:
//
//	dtfluid -n 40 -k 40
//	dtfluid -dt -k1 30 -k2 50 -n 40 -plot
//	dtfluid -n 20 -csv fluid.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"dtdctcp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dtfluid:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dtfluid", flag.ContinueOnError)
	var (
		dt       = fs.Bool("dt", false, "integrate DT-DCTCP's law instead of DCTCP's")
		k        = fs.Int("k", 40, "DCTCP threshold in packets")
		k1       = fs.Int("k1", 30, "DT-DCTCP mark-on threshold in packets")
		k2       = fs.Int("k2", 50, "DT-DCTCP mark-off threshold in packets")
		g        = fs.Float64("g", 1.0/16, "DCTCP estimation gain")
		n        = fs.Int("n", 10, "flow count")
		c        = fs.Float64("c", 10e9/8/1500, "capacity in packets/second (10 Gbps of 1.5 KB packets)")
		rtt      = fs.Float64("rtt", 1e-4, "propagation RTT in seconds")
		duration = fs.Duration("duration", 200*time.Millisecond, "integration horizon")
		plot     = fs.Bool("plot", false, "print an ASCII queue trace")
		csvPath  = fs.String("csv", "", "write the queue trajectory as CSV to this path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var proto dtdctcp.Protocol
	if *dt {
		proto = dtdctcp.DTDCTCP(*k1, *k2, *g)
	} else {
		proto = dtdctcp.DCTCP(*k, *g)
	}
	params := dtdctcp.AnalysisParams{CapacityPktsPerSec: *c, RTT: *rtt, G: *g}
	cfg, err := dtdctcp.FluidConfig(proto, params, *n, *duration)
	if err != nil {
		return err
	}
	res, err := dtdctcp.SolveFluid(cfg)
	if err != nil {
		return err
	}

	w0, a0 := cfg.OperatingPoint()
	fmt.Fprintf(out, "protocol          %s\n", proto.Name)
	fmt.Fprintf(out, "flows             %d\n", *n)
	fmt.Fprintf(out, "operating point   W0 = %.2f pkts, alpha0 = %.3f\n", w0, a0)
	fmt.Fprintf(out, "queue mean        %.1f packets (steady state)\n", res.QueueMean)
	fmt.Fprintf(out, "queue stddev      %.1f packets\n", res.QueueStdDev)
	fmt.Fprintf(out, "oscillation amp.  %.1f packets\n", res.QueueAmplitude)

	if *plot {
		fmt.Fprintln(out)
		fmt.Fprint(out, res.Queue.AsciiPlot(100, 20))
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.Queue.WriteCSV(f); err != nil {
			return err
		}
		fmt.Fprintf(out, "\ntrajectory written to %s\n", *csvPath)
	}
	return nil
}
