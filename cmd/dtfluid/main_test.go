package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDCTCP(t *testing.T) {
	if err := run([]string{"-n", "10", "-duration", "30ms"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunDT(t *testing.T) {
	if err := run([]string{"-dt", "-k1", "30", "-k2", "50", "-n", "20", "-duration", "30ms"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fluid.csv")
	if err := run([]string{"-n", "10", "-duration", "20ms", "-csv", path}, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "t,q\n") {
		t.Fatalf("csv header: %q", string(data[:10]))
	}
}

func TestRunCSVBadPath(t *testing.T) {
	if err := run([]string{"-n", "10", "-duration", "10ms", "-csv", "/nonexistent-dir/f.csv"}, io.Discard); err == nil {
		t.Fatal("unwritable csv path accepted")
	}
}

func TestRunInvalid(t *testing.T) {
	if err := run([]string{"-n", "0"}, io.Discard); err == nil {
		t.Fatal("n=0 accepted")
	}
	if err := run([]string{"-bad"}, io.Discard); err == nil {
		t.Fatal("bad flag accepted")
	}
}
