// Command dthybrid runs the hybrid fluid/packet co-simulation and its
// fully packet-level reference side by side: background flows as the
// Alizadeh fluid model against packet-level foreground traffic, then the
// identical scenario with every background flow as a real windowed
// sender. The report pairs the two runs' queue statistics, oscillation
// estimates, and foreground flow completion times, and records the
// event-count ratio — the hybrid's reason to exist is advancing the same
// simulated horizon in a small fraction of the reference's events.
//
// Reports follow the dtbench file conventions — {schema, current,
// history[]} with -o merging. Simulation results are pure functions of
// the flags; wall-clock timings are recorded alongside as advisory
// context (they vary by machine, the event counts do not). The
// -verify-shards flag makes the determinism contract executable: every
// listed shard count must reproduce the serial hybrid digest bit for
// bit.
//
// Usage:
//
//	dthybrid                          # 1000 fluid background flows vs packet reference
//	dthybrid -o HYBRID_baseline.json  # merge into the committed baseline
//	dthybrid -quick                   # small scenario (CI smoke)
//	dthybrid -bg 200 -fg 8 -proto dtdctcp -K1 30 -K2 50
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"dtdctcp"
)

// Config echoes the flags that shaped a snapshot, so a committed report
// documents its own provenance.
type Config struct {
	Proto       string  `json:"proto"`
	MarkK       int     `json:"mark_k,omitempty"`
	MarkK1      int     `json:"mark_k1,omitempty"`
	MarkK2      int     `json:"mark_k2,omitempty"`
	G           float64 `json:"g"`
	BgFlows     int     `json:"bg_flows"`
	FgFlows     int     `json:"fg_flows"`
	FgBytes     int64   `json:"fg_bytes"`
	FgGapMicros float64 `json:"fg_gap_micros"`
	RateGbps    float64 `json:"rate_gbps"`
	RTTMicros   float64 `json:"rtt_micros"`
	BufferPkts  int     `json:"buffer_pkts"`
	WarmupMs    float64 `json:"warmup_ms"`
	DurationMs  float64 `json:"duration_ms"`
	RTOMinMs    float64 `json:"rto_min_ms"`
	Seed        int64   `json:"seed"`
}

// Run is one mode's outcome: the simulation result (a pure function of
// the flags) plus this machine's wall-clock timing (advisory).
type Run struct {
	Result           *dtdctcp.HybridResult `json:"result"`
	WallSeconds      float64               `json:"wall_seconds"`
	EventsPerWallSec float64               `json:"events_per_wall_sec"`
}

// Snapshot is one complete dthybrid run: hybrid and reference modes on
// the same scenario, the event-count ratio between them, and the shard
// counts whose digests were verified against the serial hybrid run.
type Snapshot struct {
	Label     string `json:"label"`
	GoVersion string `json:"go_version"`
	Config    Config `json:"config"`
	Hybrid    Run    `json:"hybrid"`
	Packet    Run    `json:"packet"`
	// EventRatio is packet events / hybrid events for the identical
	// simulated horizon — the deterministic speed-advantage measure the
	// baseline test pins.
	EventRatio float64 `json:"event_ratio"`
	// WallSpeedup is packet wall time / hybrid wall time on the machine
	// that produced the snapshot. Advisory: machines differ.
	WallSpeedup    float64 `json:"wall_speedup"`
	ShardsVerified []int   `json:"shards_verified,omitempty"`
}

// File is the on-disk layout shared with dtbench: the latest snapshot
// plus every snapshot it replaced, oldest first.
type File struct {
	Schema  string     `json:"schema"`
	Current *Snapshot  `json:"current"`
	History []Snapshot `json:"history,omitempty"`
}

const schema = "dthybrid/v1"

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dthybrid:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dthybrid", flag.ContinueOnError)
	var (
		proto    = fs.String("proto", "dctcp", "protocol: dctcp or dtdctcp")
		markK    = fs.Int("K", 40, "DCTCP marking threshold in packets")
		markK1   = fs.Int("K1", 30, "DT-DCTCP lower threshold in packets")
		markK2   = fs.Int("K2", 50, "DT-DCTCP upper threshold in packets")
		g        = fs.Float64("g", 1.0/16, "DCTCP EWMA gain")
		bg       = fs.Int("bg", 1000, "background flows (fluid in hybrid mode, real senders in the reference)")
		fg       = fs.Int("fg", 4, "foreground senders")
		fgBytes  = fs.Int64("fg-bytes", 20_000, "bytes per foreground transfer")
		fgGap    = fs.Duration("fg-gap", 500*time.Microsecond, "think time between foreground transfers")
		rateGbps = fs.Float64("rate", 10, "bottleneck rate in Gbit/s")
		rtt      = fs.Duration("rtt", 100*time.Microsecond, "zero-queue round-trip time")
		buffer   = fs.Int("buffer", 600, "bottleneck buffer in packets")
		warmup   = fs.Duration("warmup", 15*time.Millisecond, "settling interval excluded from statistics")
		duration = fs.Duration("duration", 45*time.Millisecond, "measured interval")
		rtoMin   = fs.Duration("rto-min", 10*time.Millisecond, "datacenter RTO floor for all senders")
		seed     = fs.Int64("seed", 1, "simulation seed")
		shards   = fs.Int("shards", 1, "event wheels for the reported runs (1 = serial)")
		verify   = fs.String("verify-shards", "", "comma-separated shard counts that must reproduce the serial hybrid digest (e.g. 1,2)")
		quick    = fs.Bool("quick", false, "small scenario for a fast smoke pass")
		out      = fs.String("o", "", "merge the snapshot into this JSON file (previous current moves to history)")
		label    = fs.String("label", "", "snapshot label")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *quick {
		*bg = 50
		*warmup = 5 * time.Millisecond
		*duration = 10 * time.Millisecond
	}

	var p dtdctcp.Protocol
	switch *proto {
	case "dctcp":
		p = dtdctcp.DCTCP(*markK, *g)
	case "dtdctcp":
		p = dtdctcp.DTDCTCP(*markK1, *markK2, *g)
	default:
		return fmt.Errorf("unknown protocol %q (want dctcp or dtdctcp)", *proto)
	}
	p.TCP.RTOMin = *rtoMin
	p.TCP.RTOInitial = *rtoMin

	base := dtdctcp.HybridConfig{
		Protocol:         p,
		BgFlows:          *bg,
		FgFlows:          *fg,
		FgBytes:          *fgBytes,
		FgGap:            *fgGap,
		Rate:             dtdctcp.Rate(*rateGbps * float64(dtdctcp.Gbps)),
		RTT:              *rtt,
		BufferPkts:       *buffer,
		Duration:         *duration,
		Warmup:           *warmup,
		QueueSampleEvery: *rtt / 5,
		Seed:             *seed,
		Shards:           *shards,
	}
	verifyCounts, err := parseShardList(*verify)
	if err != nil {
		return err
	}

	snap := &Snapshot{
		Label:     *label,
		GoVersion: runtime.Version(),
		Config: Config{
			Proto: *proto, G: *g,
			BgFlows: *bg, FgFlows: *fg, FgBytes: *fgBytes,
			FgGapMicros: float64(*fgGap) / float64(time.Microsecond),
			RateGbps:    *rateGbps,
			RTTMicros:   float64(*rtt) / float64(time.Microsecond),
			BufferPkts:  *buffer,
			WarmupMs:    float64(*warmup) / float64(time.Millisecond),
			DurationMs:  float64(*duration) / float64(time.Millisecond),
			RTOMinMs:    float64(*rtoMin) / float64(time.Millisecond),
			Seed:        *seed,
		},
	}
	if *proto == "dctcp" {
		snap.Config.MarkK = *markK
	} else {
		snap.Config.MarkK1, snap.Config.MarkK2 = *markK1, *markK2
	}

	snap.Hybrid, err = timedRun(base)
	if err != nil {
		return fmt.Errorf("hybrid: %w", err)
	}
	fmt.Fprintf(os.Stderr, "dthybrid: hybrid: digest %s, %d events, %.2fs wall\n",
		snap.Hybrid.Result.Digest, snap.Hybrid.Result.Events, snap.Hybrid.WallSeconds)

	ref := base
	ref.FullPacket = true
	snap.Packet, err = timedRun(ref)
	if err != nil {
		return fmt.Errorf("packet reference: %w", err)
	}
	fmt.Fprintf(os.Stderr, "dthybrid: packet: digest %s, %d events, %.2fs wall\n",
		snap.Packet.Result.Digest, snap.Packet.Result.Events, snap.Packet.WallSeconds)

	if h := snap.Hybrid.Result.Events; h > 0 {
		snap.EventRatio = float64(snap.Packet.Result.Events) / float64(h)
	}
	if h := snap.Hybrid.WallSeconds; h > 0 {
		snap.WallSpeedup = snap.Packet.WallSeconds / h
	}
	fmt.Fprintf(os.Stderr, "dthybrid: event ratio %.1fx, wall speedup %.1fx\n",
		snap.EventRatio, snap.WallSpeedup)

	for _, sc := range verifyCounts {
		if sc == base.Shards {
			continue // already the reported run
		}
		vc := base
		vc.Shards = sc
		vres, err := dtdctcp.RunHybrid(vc)
		if err != nil {
			return fmt.Errorf("shards=%d: %w", sc, err)
		}
		if vres.Digest != snap.Hybrid.Result.Digest {
			return fmt.Errorf("shards=%d digest %s != shards=%d digest %s",
				sc, vres.Digest, base.Shards, snap.Hybrid.Result.Digest)
		}
		fmt.Fprintf(os.Stderr, "dthybrid: shards=%d reproduces digest %s\n", sc, vres.Digest)
	}
	snap.ShardsVerified = verifyCounts

	if *out == "" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(snap)
	}
	return merge(*out, snap)
}

// timedRun executes one mode and wraps it with this machine's timing.
func timedRun(cfg dtdctcp.HybridConfig) (Run, error) {
	start := time.Now()
	res, err := dtdctcp.RunHybrid(cfg)
	if err != nil {
		return Run{}, err
	}
	wall := time.Since(start).Seconds()
	r := Run{Result: res, WallSeconds: wall}
	if wall > 0 {
		r.EventsPerWallSec = float64(res.Events) / wall
	}
	return r, nil
}

func parseShardList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -verify-shards entry %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// merge writes snap as the file's Current, demoting any previous
// Current to the end of History.
func merge(path string, snap *Snapshot) error {
	var f File
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		if f.Schema != "" && f.Schema != schema {
			return fmt.Errorf("%s has schema %q, want %q", path, f.Schema, schema)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	if f.Current != nil {
		f.History = append(f.History, *f.Current)
	}
	f.Schema = schema
	f.Current = snap
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
