package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestQuickRunVerifiedSharded drives the whole CLI path: a quick
// hybrid/packet pair with shard verification against the serial hybrid
// digest, merged into a fresh report file.
func TestQuickRunVerifiedSharded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hybrid.json")
	if err := run([]string{"-quick", "-verify-shards", "1,2", "-o", path, "-label", "test"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	if f.Schema != schema {
		t.Fatalf("schema %q, want %q", f.Schema, schema)
	}
	if f.Current == nil {
		t.Fatal("no current snapshot")
	}
	hyb, pkt := f.Current.Hybrid.Result, f.Current.Packet.Result
	if hyb == nil || pkt == nil {
		t.Fatal("want a hybrid/packet result pair")
	}
	if hyb.Mode != "hybrid" || pkt.Mode != "packet" {
		t.Fatalf("modes %q/%q, want hybrid/packet", hyb.Mode, pkt.Mode)
	}
	if len(hyb.Digest) != 16 || len(pkt.Digest) != 16 {
		t.Fatalf("digests %q/%q are not 64-bit hex words", hyb.Digest, pkt.Digest)
	}
	if hyb.FgFCTCount == 0 || pkt.FgFCTCount == 0 {
		t.Fatalf("foreground FCTs missing: hybrid %d, packet %d", hyb.FgFCTCount, pkt.FgFCTCount)
	}
	if f.Current.EventRatio <= 1 {
		t.Fatalf("event ratio %.2f, want > 1 (the hybrid must need fewer events)", f.Current.EventRatio)
	}
	if len(f.Current.ShardsVerified) != 2 {
		t.Fatalf("shards verified %v, want [1 2]", f.Current.ShardsVerified)
	}
	if f.Current.Label != "test" {
		t.Fatalf("label %q", f.Current.Label)
	}
}

// TestCommittedBaselinePinsSpeedAdvantage reads the repo's committed
// HYBRID_baseline.json and holds it to the headline claim: at 1000
// background flows the hybrid advances the same simulated horizon in at
// least 10x fewer events than the packet-level reference. The event
// counts are pure functions of the recorded config, so this pin is
// machine-independent.
func TestCommittedBaselinePinsSpeedAdvantage(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "HYBRID_baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	if f.Schema != schema {
		t.Fatalf("schema %q, want %q", f.Schema, schema)
	}
	if f.Current == nil {
		t.Fatal("baseline has no current snapshot")
	}
	if got := f.Current.Config.BgFlows; got < 1000 {
		t.Fatalf("baseline records %d background flows, want >= 1000", got)
	}
	if got := f.Current.EventRatio; got < 10 {
		t.Fatalf("baseline event ratio %.1fx, want >= 10x", got)
	}
	if f.Current.Hybrid.Result == nil || f.Current.Hybrid.Result.Digest == "" {
		t.Fatal("baseline hybrid result missing a digest")
	}
	if len(f.Current.ShardsVerified) == 0 {
		t.Fatal("baseline was not shard-verified")
	}
}

func TestMergeDemotesCurrentToHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hybrid.json")
	if err := merge(path, &Snapshot{Label: "first"}); err != nil {
		t.Fatal(err)
	}
	if err := merge(path, &Snapshot{Label: "second"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	if f.Current.Label != "second" || len(f.History) != 1 || f.History[0].Label != "first" {
		t.Fatalf("merge did not demote: current %q, history %+v", f.Current.Label, f.History)
	}
}

func TestMergeRejectsForeignSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(`{"schema":"dtbench/v1"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := merge(path, &Snapshot{}); err == nil {
		t.Fatal("merged into a dtbench file")
	}
}

func TestParseShardList(t *testing.T) {
	got, err := parseShardList("1, 2,4")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 4 {
		t.Fatalf("parseShardList: %v, %v", got, err)
	}
	for _, bad := range []string{"0", "-1", "x", "1,,2"} {
		if _, err := parseShardList(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
	if got, err := parseShardList(""); err != nil || got != nil {
		t.Fatalf("empty list: %v, %v", got, err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for name, args := range map[string][]string{
		"bad proto":   {"-quick", "-proto", "cubic"},
		"bad verify":  {"-quick", "-verify-shards", "zero,"},
		"bad config":  {"-bg", "-1"},
		"unknown arg": {"-frobnicate"},
	} {
		if err := run(args); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
