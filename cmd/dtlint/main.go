// Command dtlint runs the repository's custom static-analysis suite (see
// internal/lint): determinism and correctness rules the simulator depends
// on but the compiler cannot check.
//
// Usage:
//
//	go run ./cmd/dtlint [-list] [packages]
//
// Packages default to ./... and accept the usual go-list patterns. The
// command exits 1 when any analyzer reports a finding, so it slots
// directly into CI next to go vet.
package main

import (
	"flag"
	"fmt"
	"os"

	"dtdctcp/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: dtlint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	pkgs, err := lint.Load(".", flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtlint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dtlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
