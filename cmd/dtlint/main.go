// Command dtlint runs the repository's custom static-analysis suite (see
// internal/lint): determinism and correctness rules the simulator depends
// on but the compiler cannot check.
//
// Usage:
//
//	go run ./cmd/dtlint [-list] [-json] [-baseline file] [packages]
//
// Packages default to ./... and accept the usual go-list patterns.
//
// Output is one finding per line in file:line:col form, or, with -json, a
// single stable document:
//
//	{"version": 1, "count": N, "findings": [
//	    {"file": "...", "line": 1, "column": 1, "analyzer": "...", "message": "..."}]}
//
// With -baseline, findings recorded in the given file (same JSON schema,
// matched by file+analyzer+message so unrelated edits moving lines do not
// resurrect them) are tolerated; only new findings count. CI commits an
// empty baseline, so the gate is "no findings beyond the reviewed set".
//
// Exit codes:
//
//	0  no findings (or none beyond the baseline)
//	1  findings
//	2  usage, load, or internal error
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"dtdctcp/internal/lint"
)

// jsonVersion guards the output schema; bump only with a consumer-visible
// change.
const jsonVersion = 1

// report is the JSON document -json emits and -baseline consumes.
type report struct {
	Version  int       `json:"version"`
	Count    int       `json:"count"`
	Findings []finding `json:"findings"`
}

// finding is one diagnostic in the stable wire form.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func toFindings(diags []lint.Diagnostic) []finding {
	out := make([]finding, 0, len(diags))
	for _, d := range diags {
		out = append(out, finding{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	return out
}

// key identifies a finding across line drift: file, analyzer, and message
// (messages embed the offending construct, so this is tight enough in
// practice while surviving unrelated edits above the site).
func (f finding) key() string {
	return f.File + "\x00" + f.Analyzer + "\x00" + f.Message
}

// subtractBaseline drops findings already recorded in the baseline,
// consuming baseline entries one-for-one so duplicates only cover
// duplicates.
func subtractBaseline(findings []finding, baseline []finding) []finding {
	quota := make(map[string]int, len(baseline))
	for _, b := range baseline {
		quota[b.key()]++
	}
	var fresh []finding
	for _, f := range findings {
		if quota[f.key()] > 0 {
			quota[f.key()]--
			continue
		}
		fresh = append(fresh, f)
	}
	return fresh
}

func readBaseline(path string) ([]finding, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Version != jsonVersion {
		return nil, fmt.Errorf("%s: baseline schema version %d, this dtlint speaks %d", path, r.Version, jsonVersion)
	}
	return r.Findings, nil
}

func writeReport(w io.Writer, findings []finding) error {
	r := report{Version: jsonVersion, Count: len(findings), Findings: findings}
	if r.Findings == nil {
		r.Findings = []finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// run is main with the process edges injected, so tests can drive it.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dtlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers in the suite and exit")
	asJSON := fs.Bool("json", false, "emit findings as a single JSON document")
	baselinePath := fs.String("baseline", "", "tolerate findings recorded in this JSON `file`; only new ones fail")
	dir := fs.String("C", ".", "run as if launched from `dir` (go list working directory)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: dtlint [-list] [-json] [-baseline file] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	var baseline []finding
	if *baselinePath != "" {
		var err error
		baseline, err = readBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "dtlint:", err)
			return 2
		}
	}

	pkgs, err := lint.Load(*dir, fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, "dtlint:", err)
		return 2
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "dtlint:", err)
		return 2
	}

	findings := subtractBaseline(toFindings(diags), baseline)

	if *asJSON {
		if err := writeReport(stdout, findings); err != nil {
			fmt.Fprintln(stderr, "dtlint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s:%d:%d: %s (%s)\n", f.File, f.Line, f.Column, f.Message, f.Analyzer)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "dtlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
