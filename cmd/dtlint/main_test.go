package main

import (
	"testing"

	"dtdctcp/internal/lint"
)

// TestTreeIsClean is the acceptance gate in test form: the full dtlint
// suite must report nothing on the repository itself, so `go test ./...`
// alone already guards the determinism contract.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	pkgs, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader returned no packages")
	}
	diags, err := lint.Run(pkgs, lint.Analyzers())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("finding on supposedly clean tree: %s", d)
	}
}

// TestSuiteComplete pins the suite composition: the four analyzers the
// determinism contract documents, in reporting order.
func TestSuiteComplete(t *testing.T) {
	want := []string{"nondeterm", "maporder", "floatcmp", "simtime"}
	got := lint.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
	}
}
