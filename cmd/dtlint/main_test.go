package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dtdctcp/internal/lint"
)

// TestTreeIsClean is the acceptance gate in test form: the full dtlint
// suite must report nothing on the repository itself, so `go test ./...`
// alone already guards the determinism contract.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	pkgs, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader returned no packages")
	}
	diags, err := lint.Run(pkgs, lint.Analyzers())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("finding on supposedly clean tree: %s", d)
	}
}

// TestSuiteComplete pins the suite composition: the eight analyzers the
// determinism contract documents, in reporting order.
func TestSuiteComplete(t *testing.T) {
	want := []string{
		"nondeterm", "maporder", "floatcmp", "simtime",
		"hotalloc", "pktlife", "detflow", "soloengine",
	}
	got := lint.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
	}
}

// TestJSONSchema pins the -json wire format byte for byte: CI diffing and
// the committed baseline depend on it staying stable.
func TestJSONSchema(t *testing.T) {
	var buf bytes.Buffer
	err := writeReport(&buf, []finding{
		{File: "a.go", Line: 3, Column: 7, Analyzer: "nondeterm", Message: "bad"},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := `{
  "version": 1,
  "count": 1,
  "findings": [
    {
      "file": "a.go",
      "line": 3,
      "column": 7,
      "analyzer": "nondeterm",
      "message": "bad"
    }
  ]
}
`
	if buf.String() != want {
		t.Errorf("JSON schema drifted:\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
}

// TestJSONEmpty pins the clean-tree document: findings must be [], not
// null, so consumers can index unconditionally.
func TestJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := writeReport(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); !strings.Contains(got, `"findings": []`) || !strings.Contains(got, `"count": 0`) {
		t.Errorf("empty report = %s, want count 0 and an empty findings array", got)
	}
}

// TestSubtractBaseline pins the diff semantics: matching is by
// file+analyzer+message (line drift tolerated), and each baseline entry
// covers exactly one occurrence.
func TestSubtractBaseline(t *testing.T) {
	old := finding{File: "a.go", Line: 10, Analyzer: "maporder", Message: "m"}
	moved := old
	moved.Line = 99 // same finding after edits above it
	dup := old
	fresh := finding{File: "b.go", Line: 1, Analyzer: "detflow", Message: "n"}

	got := subtractBaseline([]finding{moved, dup, fresh}, []finding{old})
	if len(got) != 2 {
		t.Fatalf("new findings = %d (%v), want 2 (the duplicate and the genuinely new one)", len(got), got)
	}
	if got[1] != fresh {
		t.Errorf("fresh finding missing from the diff: %v", got)
	}
	if got := subtractBaseline([]finding{moved}, []finding{old}); len(got) != 0 {
		t.Errorf("line drift not tolerated: %v", got)
	}
}

// TestReadBaselineVersion pins the schema guard: a baseline written by a
// different schema version must fail loudly, not silently mismatch.
func TestReadBaselineVersion(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "base.json")
	if err := os.WriteFile(path, []byte(`{"version": 99, "count": 0, "findings": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readBaseline(path); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("version mismatch not rejected: %v", err)
	}
}

// TestRepoBaselineIsEmpty pins the committed baseline: the tree is clean,
// so the reviewed set of tolerated findings must be empty — new findings
// are fixed or //dtlint:allow'd, never baselined away.
func TestRepoBaselineIsEmpty(t *testing.T) {
	findings, err := readBaseline(filepath.Join("..", "..", "lint_baseline.json"))
	if err != nil {
		t.Fatalf("read committed baseline: %v", err)
	}
	if len(findings) != 0 {
		t.Errorf("committed baseline carries %d findings, want 0", len(findings))
	}
}

// TestRunExitCodes exercises the command surface that needs no package
// loading: -list succeeds and names every analyzer, a bad flag is exit 2.
func TestRunExitCodes(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exit = %d, want 0 (stderr: %s)", code, errOut.String())
	}
	for _, a := range lint.Analyzers() {
		if !strings.Contains(out.String(), a.Name) {
			t.Errorf("-list output missing analyzer %s", a.Name)
		}
	}
	if code := run([]string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
	if code := run([]string{"-baseline", "does-not-exist.json", "-C", "../.."}, &out, &errOut); code != 2 {
		t.Errorf("missing baseline exit = %d, want 2", code)
	}
}
