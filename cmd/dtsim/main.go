// Command dtsim runs one packet-level long-lived-flows scenario (the
// paper's Section VI-A setup) and prints queue statistics, optionally an
// ASCII queue trace and a CSV dump.
//
// Examples:
//
//	dtsim -protocol dctcp -k 40 -flows 100
//	dtsim -protocol dt-dctcp -k1 30 -k2 50 -flows 60 -plot
//	dtsim -protocol reno -flows 10 -csv queue.csv
//	dtsim -protocol dctcp+ -flows 40
//	dtsim -protocol hull -gamma 0.95 -flows 20
//	dtsim -protocol dctcp -sb-alpha 2 -flows 40
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"dtdctcp"
	"dtdctcp/internal/metrics"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dtsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dtsim", flag.ContinueOnError)
	var (
		protocol    = fs.String("protocol", "dctcp", "protocol: dctcp, dt-dctcp, dctcp+, hull, reno, reno-ecn")
		k           = fs.Int("k", 40, "single marking threshold in packets (dctcp, dctcp+, hull, reno-ecn)")
		k1          = fs.Int("k1", 30, "DT-DCTCP mark-on threshold in packets")
		k2          = fs.Int("k2", 50, "DT-DCTCP mark-off threshold in packets")
		g           = fs.Float64("g", 1.0/16, "DCTCP estimation gain")
		gamma       = fs.Float64("gamma", 0.95, "HULL phantom-queue drain fraction of line rate (hull)")
		sbAlpha     = fs.Float64("sb-alpha", 0, "shared-buffer dynamic-threshold α; > 0 pools the switch buffers")
		sbPool      = fs.Int("sb-pool", 0, "shared-buffer pool size in packets (0 = bottleneck buffer)")
		sbBneckOnly = fs.Bool("sb-bottleneck-only", false, "pool only the bottleneck port (diagnostic single-port limit)")
		flows       = fs.Int("flows", 10, "number of long-lived flows")
		rate        = fs.Int("rate-gbps", 10, "bottleneck rate in Gbps")
		rtt         = fs.Duration("rtt", 100*time.Microsecond, "base round-trip time")
		buffer      = fs.Int("buffer", 600, "bottleneck buffer in packets")
		duration    = fs.Duration("duration", 100*time.Millisecond, "measured interval")
		warmup      = fs.Duration("warmup", 20*time.Millisecond, "warmup excluded from statistics")
		seed        = fs.Int64("seed", 1, "random seed")
		shards      = fs.Int("shards", 1, "shard domains across this many parallel event wheels (results are byte-identical for any count)")
		plot        = fs.Bool("plot", false, "print an ASCII queue trace")
		csvPath     = fs.String("csv", "", "write the queue trace as CSV to this path")
		tracing     = fs.String("trace", "", "write per-packet bottleneck events as JSONL to this path")
		metricsOut  = fs.String("metrics", "", "write the observability snapshot as JSON to this path")
		promOut     = fs.String("metrics-prom", "", "write the snapshot in Prometheus text format to this path")
		metricsTick = fs.Duration("metrics-sample", 0, "sample queue/α/cwnd gauges into snapshot series at this virtual-time period")
		cpuProfile  = fs.String("cpuprofile", "", "write a CPU profile to this path")
		memProfile  = fs.String("memprofile", "", "write a heap profile to this path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProfile != "" {
		stop, err := metrics.StartCPUProfile(*cpuProfile)
		if err != nil {
			return err
		}
		defer stop()
	}

	var proto dtdctcp.Protocol
	switch *protocol {
	case "dctcp":
		proto = dtdctcp.DCTCP(*k, *g)
	case "dt-dctcp":
		proto = dtdctcp.DTDCTCP(*k1, *k2, *g)
	case "dctcp+":
		proto = dtdctcp.DCTCPPlus(*k, *g)
	case "hull":
		proto = dtdctcp.HULL(*k, *gamma, dtdctcp.Rate(*rate)*dtdctcp.Gbps, *g)
	case "reno":
		proto = dtdctcp.Reno()
	case "reno-ecn":
		proto = dtdctcp.RenoECN(*k)
	default:
		return fmt.Errorf("unknown protocol %q", *protocol)
	}

	cfg := dtdctcp.DumbbellConfig{
		Protocol:         proto,
		Flows:            *flows,
		Rate:             dtdctcp.Rate(*rate) * dtdctcp.Gbps,
		RTT:              *rtt,
		BufferPkts:       *buffer,
		Duration:         *duration,
		Warmup:           *warmup,
		Seed:             *seed,
		Shards:           *shards,
		AlphaSampleEvery: time.Millisecond,
	}
	if *sbAlpha > 0 {
		cfg.SharedBuffer = dtdctcp.SharedBufferConfig{
			Alpha:          *sbAlpha,
			PoolPkts:       *sbPool,
			BottleneckOnly: *sbBneckOnly,
		}
	}
	if *plot || *csvPath != "" {
		cfg.QueueSampleEvery = *rtt / 4
	}
	if *metricsOut != "" || *promOut != "" {
		cfg.Metrics = true
	}
	cfg.MetricsSampleEvery = *metricsTick
	if *tracing != "" {
		f, err := os.Create(*tracing)
		if err != nil {
			return err
		}
		defer f.Close()
		cfg.TraceTo = f
	}

	res, err := dtdctcp.RunDumbbell(cfg)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "protocol      %s\n", res.Protocol)
	fmt.Fprintf(out, "flows         %d\n", res.Flows)
	fmt.Fprintf(out, "queue mean    %.1f packets\n", res.QueueMeanPkts)
	fmt.Fprintf(out, "queue stddev  %.1f packets\n", res.QueueStdPkts)
	fmt.Fprintf(out, "queue min/max %.0f / %.0f packets\n", res.QueueMinPkts, res.QueueMaxPkts)
	fmt.Fprintf(out, "alpha mean    %.3f\n", res.AlphaMean)
	fmt.Fprintf(out, "utilization   %.1f%%\n", res.Utilization*100)
	fmt.Fprintf(out, "marks/drops   %d / %d\n", res.Marks, res.Drops)
	fmt.Fprintf(out, "timeouts      %d\n", res.Timeouts)

	if *plot && res.QueueSeries != nil {
		fmt.Fprintln(out)
		fmt.Fprint(out, res.QueueSeries.AsciiPlot(100, 20))
	}
	if *csvPath != "" && res.QueueSeries != nil {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.QueueSeries.WriteCSV(f); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nqueue trace written to %s\n", *csvPath)
	}
	if *metricsOut != "" {
		if err := metrics.WriteFile(*metricsOut, []metrics.Named{{Name: "dumbbell", Snapshot: res.Metrics}}); err != nil {
			return err
		}
		fmt.Fprintf(out, "metrics written to %s\n", *metricsOut)
	}
	if *promOut != "" {
		f, err := os.Create(*promOut)
		if err != nil {
			return err
		}
		if err := res.Metrics.WritePrometheus(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "prometheus metrics written to %s\n", *promOut)
	}
	if *memProfile != "" {
		if err := metrics.WriteHeapProfile(*memProfile); err != nil {
			return err
		}
	}
	return nil
}
