package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDefaultsQuick(t *testing.T) {
	err := run([]string{"-flows", "2", "-duration", "5ms", "-warmup", "1ms"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunAllProtocols(t *testing.T) {
	for _, p := range []string{"dctcp", "dt-dctcp", "reno", "reno-ecn"} {
		args := []string{"-protocol", p, "-flows", "2", "-duration", "3ms", "-warmup", "1ms"}
		if err := run(args, io.Discard); err != nil {
			t.Fatalf("protocol %s: %v", p, err)
		}
	}
}

func TestRunUnknownProtocol(t *testing.T) {
	if err := run([]string{"-protocol", "bbr"}, io.Discard); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nonsense"}, io.Discard); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunInvalidConfigSurfacesError(t *testing.T) {
	if err := run([]string{"-flows", "0"}, io.Discard); err == nil {
		t.Fatal("flows=0 accepted")
	}
}

func TestRunWritesCSVAndTrace(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "queue.csv")
	jsonl := filepath.Join(dir, "trace.jsonl")
	err := run([]string{"-flows", "2", "-duration", "3ms", "-warmup", "1ms",
		"-csv", csv, "-trace", jsonl}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "t,queue\n") {
		t.Fatalf("csv header: %q", string(data[:20]))
	}
	tr, err := os.ReadFile(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(tr), `"kind":"enqueue"`) {
		t.Fatal("trace has no enqueue events")
	}
}

func TestRunCSVBadPath(t *testing.T) {
	if err := run([]string{"-flows", "2", "-duration", "2ms", "-warmup", "1ms",
		"-csv", "/nonexistent-dir/x.csv"}, io.Discard); err == nil {
		t.Fatal("unwritable csv path accepted")
	}
}
