package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDefaultsQuick(t *testing.T) {
	err := run([]string{"-flows", "2", "-duration", "5ms", "-warmup", "1ms"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunAllProtocols(t *testing.T) {
	for _, p := range []string{"dctcp", "dt-dctcp", "reno", "reno-ecn"} {
		args := []string{"-protocol", p, "-flows", "2", "-duration", "3ms", "-warmup", "1ms"}
		if err := run(args, io.Discard); err != nil {
			t.Fatalf("protocol %s: %v", p, err)
		}
	}
}

func TestRunUnknownProtocol(t *testing.T) {
	if err := run([]string{"-protocol", "bbr"}, io.Discard); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nonsense"}, io.Discard); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunInvalidConfigSurfacesError(t *testing.T) {
	if err := run([]string{"-flows", "0"}, io.Discard); err == nil {
		t.Fatal("flows=0 accepted")
	}
}

func TestRunWritesCSVAndTrace(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "queue.csv")
	jsonl := filepath.Join(dir, "trace.jsonl")
	err := run([]string{"-flows", "2", "-duration", "3ms", "-warmup", "1ms",
		"-csv", csv, "-trace", jsonl}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "t,queue\n") {
		t.Fatalf("csv header: %q", string(data[:20]))
	}
	tr, err := os.ReadFile(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(tr), `"kind":"enqueue"`) {
		t.Fatal("trace has no enqueue events")
	}
}

func TestRunCSVBadPath(t *testing.T) {
	if err := run([]string{"-flows", "2", "-duration", "2ms", "-warmup", "1ms",
		"-csv", "/nonexistent-dir/x.csv"}, io.Discard); err == nil {
		t.Fatal("unwritable csv path accepted")
	}
}

func TestRunMetricsPlotShardsAndProfiles(t *testing.T) {
	dir := t.TempDir()
	mjson := filepath.Join(dir, "m.json")
	mprom := filepath.Join(dir, "m.prom")
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out strings.Builder
	err := run([]string{"-flows", "2", "-duration", "3ms", "-warmup", "1ms",
		"-shards", "2", "-plot",
		"-metrics", mjson, "-metrics-prom", mprom,
		"-cpuprofile", cpu, "-memprofile", mem}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{mjson, mprom, cpu, mem} {
		if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
			t.Errorf("output %s missing or empty: %v", path, err)
		}
	}
	if !strings.Contains(out.String(), "metrics written to") {
		t.Fatal("missing metrics confirmation line")
	}
	if !strings.Contains(out.String(), "utilization") {
		t.Fatal("missing summary")
	}
}

func TestRunMetricsSampler(t *testing.T) {
	mjson := filepath.Join(t.TempDir(), "m.json")
	err := run([]string{"-flows", "2", "-duration", "3ms", "-warmup", "1ms",
		"-metrics", mjson, "-metrics-sample", "1ms"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(mjson)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"series"`) {
		t.Fatal("sampled snapshot has no series")
	}
}

func TestRunBadOutputPaths(t *testing.T) {
	for name, args := range map[string][]string{
		"trace":      {"-trace", "/nonexistent-dir/t.jsonl"},
		"metrics":    {"-metrics", "/nonexistent-dir/m.json"},
		"prometheus": {"-metrics-prom", "/nonexistent-dir/m.prom"},
		"cpuprofile": {"-cpuprofile", "/nonexistent-dir/c.pprof"},
		"memprofile": {"-memprofile", "/nonexistent-dir/m.pprof"},
	} {
		full := append([]string{"-flows", "2", "-duration", "2ms", "-warmup", "1ms"}, args...)
		if err := run(full, io.Discard); err == nil {
			t.Errorf("unwritable %s path accepted", name)
		}
	}
}
