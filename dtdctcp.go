// Package dtdctcp is a from-scratch reproduction of "Ease the Queue
// Oscillation: Analysis and Enhancement of DCTCP" (Chen, Cheng, Ren, Shu,
// Lin — ICDCS 2013): the DT-DCTCP double-threshold ECN marking law, a
// DCTCP/TCP endpoint stack, a deterministic packet-level network
// simulator standing in for ns-2, the paper's NetFPGA testbed expressed
// as a simulator scenario, the DCTCP fluid model, and the
// describing-function stability analysis of Sections IV–V.
//
// This package is the public API: protocol presets, the experiment
// scenarios behind every figure in the paper, and the two analysis
// bridges (Nyquist/describing function and fluid model). The
// implementation lives in internal/ packages; everything a downstream
// user needs is re-exported here.
//
// # Quick start
//
//	res, err := dtdctcp.RunDumbbell(dtdctcp.DumbbellConfig{
//		Protocol:   dtdctcp.DTDCTCP(30, 50, 1.0/16),
//		Flows:      40,
//		Rate:       10 * dtdctcp.Gbps,
//		RTT:        100 * time.Microsecond,
//		BufferPkts: 600,
//		Duration:   100 * time.Millisecond,
//		Warmup:     20 * time.Millisecond,
//	})
//
// See the examples/ directory for runnable programs.
package dtdctcp

import (
	"context"
	"errors"
	"io"
	"time"

	"dtdctcp/internal/chaos"
	"dtdctcp/internal/control"
	"dtdctcp/internal/core"
	"dtdctcp/internal/flowgen"
	"dtdctcp/internal/fluid"
	"dtdctcp/internal/netsim"
	"dtdctcp/internal/stats"
)

// Rate is a link speed in bits per second.
type Rate = netsim.Rate

// Common link speeds.
const (
	Kbps = netsim.Kbps
	Mbps = netsim.Mbps
	Gbps = netsim.Gbps
)

// Protocol bundles one congestion-control configuration: endpoint
// transport settings plus the switch queue law.
type Protocol = core.Protocol

// DCTCP returns the paper's baseline protocol: DCTCP endpoints with a
// single-threshold ECN marker at kPackets packets and estimation gain g
// (the paper uses K = 40, g = 1/16).
func DCTCP(kPackets int, g float64) Protocol { return core.DCTCP(kPackets, g) }

// DTDCTCP returns the paper's contribution: DCTCP endpoints with the
// double-threshold marker. Marking starts when the queue crosses k1
// upward and stops when it crosses k2 downward; the paper's simulations
// use k1 = 30 < k2 = 50 (mark early on the rise, release early on the
// fall), its testbed the inverted order (classic hysteresis).
func DTDCTCP(k1, k2 int, g float64) Protocol { return core.DTDCTCP(k1, k2, g) }

// DCTCPPlus returns the sender-side enhancement the paper contrasts with
// its switch-side fix: DCTCP endpoints running the DCTCP+ slow-timer
// state machine (DCTCP_NORMAL → TIME_INC → TIME_DES) with randomized
// send pacing under persistent congestion at the window floor, over the
// single-threshold marker at kPackets.
func DCTCPPlus(kPackets int, g float64) Protocol { return core.DCTCPPlus(kPackets, g) }

// HULL returns DCTCP endpoints over a HULL-style phantom queue: a
// virtual queue drained at fraction gamma of the given line rate, marking
// against the virtual occupancy so the real queue keeps headroom.
func HULL(kPackets int, gamma float64, rate Rate, g float64) Protocol {
	return core.HULL(kPackets, gamma, rate, g)
}

// SharedBufferConfig replaces a scenario switch's static per-port
// buffers with one dynamic-threshold pool (Choudhury–Hahne): a port may
// queue at most α × (free pool) bytes. Enabled when Alpha > 0.
type SharedBufferConfig = core.SharedBufferConfig

// Reno returns plain loss-driven NewReno over DropTail.
func Reno() Protocol { return core.Reno() }

// RenoECN returns NewReno with the classic RFC3168 ECN response over a
// single-threshold marker.
func RenoECN(kPackets int) Protocol { return core.RenoECN(kPackets) }

// DumbbellConfig is the long-lived-flows scenario of the paper's
// Section VI-A simulations (Figs. 1 and 10–12).
type DumbbellConfig = core.DumbbellConfig

// DumbbellResult aggregates one dumbbell run.
type DumbbellResult = core.DumbbellResult

// FlowSweepPoint is one sample of a flow-count sweep.
type FlowSweepPoint = core.FlowSweepPoint

// RunDumbbell executes the long-lived-flows scenario.
func RunDumbbell(cfg DumbbellConfig) (*DumbbellResult, error) { return core.RunDumbbell(cfg) }

// SweepFlows runs the dumbbell at each flow count, as in Figs. 10–12.
// Points run serially; SweepFlowsParallel spreads them over goroutines.
func SweepFlows(base DumbbellConfig, flows []int) ([]FlowSweepPoint, error) {
	return core.SweepFlows(base, flows)
}

// SweepFlowsParallel runs the sweep points concurrently on up to workers
// goroutines (values < 1 mean GOMAXPROCS). Every point owns a private
// engine seeded by base.Seed alone, so the output is byte-identical for
// any worker count and is returned in the order of flows.
func SweepFlowsParallel(ctx context.Context, base DumbbellConfig, flows []int, workers int) ([]FlowSweepPoint, error) {
	return core.SweepFlowsParallel(ctx, base, flows, workers)
}

// HybridConfig describes a hybrid fluid/packet co-simulation: fluid
// background flows against packet-level foreground traffic, or the same
// scenario fully packet-level for reference.
type HybridConfig = core.HybridConfig

// HybridResult aggregates one hybrid (or reference) run.
type HybridResult = core.HybridResult

// RunHybrid executes a hybrid co-simulation scenario.
func RunHybrid(cfg HybridConfig) (*HybridResult, error) { return core.RunHybrid(cfg) }

// TestbedConfig describes the paper's four-switch NetFPGA testbed
// (Fig. 13) as a simulator scenario.
type TestbedConfig = core.TestbedConfig

// QueryResult aggregates a synchronized query experiment.
type QueryResult = core.QueryResult

// WorkerSweepPoint is one sample of a worker-count sweep.
type WorkerSweepPoint = core.WorkerSweepPoint

// DefaultTestbed returns the paper's testbed parameters for a protocol:
// 1 Gbps ports, 128 KB bottleneck buffer, 512 KB elsewhere, ≈100 µs RTT.
func DefaultTestbed(p Protocol, workers int) TestbedConfig {
	return core.DefaultTestbed(p, workers)
}

// RunQuery executes repeated synchronized queries: every worker sends
// bytesPerWorker to the aggregator simultaneously each round.
func RunQuery(cfg TestbedConfig, bytesPerWorker int64, rounds int) (*QueryResult, error) {
	return core.RunQuery(cfg, bytesPerWorker, rounds)
}

// RunIncast is the paper's Fig. 14 experiment: 64 KB per worker.
func RunIncast(cfg TestbedConfig, rounds int) (*QueryResult, error) {
	return core.RunIncast(cfg, rounds)
}

// RunCompletionTime is the paper's Fig. 15 experiment: 1 MB split evenly
// across the workers.
func RunCompletionTime(cfg TestbedConfig, rounds int) (*QueryResult, error) {
	return core.RunCompletionTime(cfg, rounds)
}

// SweepWorkers repeats a query experiment across worker counts, as in
// Figs. 14–15. Points run serially; SweepWorkersParallel spreads them
// over goroutines.
func SweepWorkers(base TestbedConfig, workers []int, rounds int,
	run func(TestbedConfig, int) (*QueryResult, error)) ([]WorkerSweepPoint, error) {
	return core.SweepWorkers(base, workers, rounds, run)
}

// SweepWorkersParallel repeats a query experiment across worker counts on
// up to par goroutines, with the same determinism guarantee as
// SweepFlowsParallel: each point owns a private engine, so results do not
// depend on par.
func SweepWorkersParallel(ctx context.Context, base TestbedConfig, workers []int, rounds, par int,
	run func(TestbedConfig, int) (*QueryResult, error)) ([]WorkerSweepPoint, error) {
	return core.SweepWorkersParallel(ctx, base, workers, rounds, par, run)
}

// AnalysisParams carries the network parameters of the stability and
// fluid analyses.
type AnalysisParams = core.AnalysisParams

// StabilityVerdict is the outcome of the describing-function criterion.
type StabilityVerdict = control.Verdict

// LimitCycle is a predicted self-oscillation (amplitude and frequency).
type LimitCycle = control.LimitCycle

// PaperAnalysisParams returns the parameter set of the paper's Fig. 9.
func PaperAnalysisParams() AnalysisParams { return core.PaperAnalysisParams() }

// AnalyzeStability applies Theorems 1/2 to the protocol's marker at the
// given flow count: it reports stability or the predicted limit cycle.
func AnalyzeStability(p Protocol, params AnalysisParams, flows int) (StabilityVerdict, error) {
	return core.AnalyzeStability(p, params, flows)
}

// CriticalFlows finds the smallest flow count in [nMin, nMax] predicted
// to oscillate (the paper's Fig. 9 onsets), or nMax+1 if none.
func CriticalFlows(p Protocol, params AnalysisParams, nMin, nMax int) (int, error) {
	return core.CriticalFlows(p, params, nMin, nMax)
}

// FluidConfig builds a fluid-model configuration (Eqs. 1–3) matching the
// protocol's marker.
func FluidConfig(p Protocol, params AnalysisParams, flows int, duration time.Duration) (fluid.Config, error) {
	return core.FluidConfig(p, params, flows, duration)
}

// SolveFluid integrates the DCTCP fluid model.
func SolveFluid(cfg fluid.Config) (*fluid.Result, error) { return fluid.Solve(cfg) }

// DCTCPDF is the describing function of the single-threshold marker
// (Eq. 22).
type DCTCPDF = control.DCTCPDF

// DTDCTCPDF is the describing function of the double-threshold marker
// (Eq. 27).
type DTDCTCPDF = control.DTDCTCPDF

// NumericDF computes a describing function by direct Fourier integration
// of a relay waveform; mark receives the phase θ and returns the relay
// output for the input X·sin(θ).
func NumericDF(x float64, steps int, mark func(theta float64) float64) complex128 {
	return control.NumericDF(x, steps, mark)
}

// MarkDecision is one step of a marker replay.
type MarkDecision = core.MarkDecision

// ReplayMarker drives a queue trajectory (packets) through the protocol's
// marker and records per-arrival decisions, reproducing Fig. 2.
func ReplayMarker(p Protocol, trajectoryPkts []int) ([]MarkDecision, error) {
	return core.ReplayMarker(p, trajectoryPkts)
}

// TriangleTrajectory builds a rise-and-fall queue trajectory for
// ReplayMarker.
func TriangleTrajectory(peak int) []int { return core.TriangleTrajectory(peak) }

// D2TCP returns the deadline-aware DCTCP extension (Vamanan et al.,
// SIGCOMM'12), which the paper cites as a DCTCP successor: DCTCP's marker
// with a backoff penalty of α^d for deadline urgency d. Configure
// deadlines via TestbedConfig.Deadline.
func D2TCP(kPackets int, g float64) Protocol { return core.D2TCPProto(kPackets, g) }

// RenoPIE returns NewReno/ECN endpoints over a PIE queue (RFC 8033)
// draining at the given rate and targeting the given queueing delay — a
// delay-targeting AQM baseline contemporaneous with the paper.
func RenoPIE(drainRate Rate, target time.Duration) Protocol {
	return core.RenoPIE(drainRate, target)
}

// RenoCoDel returns NewReno/ECN endpoints over a CoDel queue (RFC 8289)
// with the given sojourn target and control interval.
func RenoCoDel(target, interval time.Duration) Protocol {
	return core.RenoCoDel(target, interval)
}

// Cubic returns loss-driven CUBIC (RFC 8312) over DropTail — the Linux
// default TCP of the paper's era.
func Cubic() Protocol { return core.CubicProto() }

// Margins are the classical gain/phase margins of the marking loop,
// quantifying distance from oscillation onset.
type Margins = control.Margins

// StabilityMargins computes the loop's gain and phase margins against the
// marker's describing function at the given flow count.
func StabilityMargins(p Protocol, params AnalysisParams, flows int) (Margins, error) {
	df := p.DF()
	if df == nil {
		return Margins{}, errors.New("dtdctcp: protocol has no ECN marker to analyze")
	}
	return control.StabilityMargins(params.Plant(flows), df)
}

// ChaosPlan is a declarative, JSON-loadable fault-injection schedule:
// link outages and flapping, runtime capacity/delay/buffer changes,
// corruption windows, and background bursts, applied to a scenario via
// DumbbellConfig.Chaos or TestbedConfig.Chaos. Same seed + plan yields
// byte-identical runs.
type ChaosPlan = chaos.Plan

// ChaosEvent is one scheduled perturbation of a ChaosPlan.
type ChaosEvent = chaos.Event

// Recovery quantifies post-fault behavior: time-to-drain back into the
// pre-fault queue band and time until the oscillation re-locks.
type Recovery = stats.Recovery

// ChaosProfiles lists the built-in fault profiles in sorted order.
func ChaosProfiles() []string { return chaos.Profiles() }

// ChaosProfile returns a fresh copy of a built-in fault plan by name.
func ChaosProfile(name string) (*ChaosPlan, error) { return chaos.Profile(name) }

// LoadChaosPlan reads and validates a JSON plan file.
func LoadChaosPlan(path string) (*ChaosPlan, error) { return chaos.LoadPlan(path) }

// BuildupConfig is the queue-buildup microbenchmark (short transfers
// sharing a bottleneck with bulk flows), which the paper inherits from
// the DCTCP evaluation.
type BuildupConfig = core.BuildupConfig

// BuildupResult summarizes the short flows' completion times.
type BuildupResult = core.BuildupResult

// DefaultBuildup returns the microbenchmark's default parameters for a
// protocol.
func DefaultBuildup(p Protocol) BuildupConfig { return core.DefaultBuildup(p) }

// RunBuildup executes the queue-buildup microbenchmark.
func RunBuildup(cfg BuildupConfig) (*BuildupResult, error) { return core.RunBuildup(cfg) }

// FabricConfig is a trace-driven workload on a multi-tier datacenter
// fabric (k-ary fat-tree or leaf-spine Clos) with deterministic ECMP
// routing.
type FabricConfig = core.FabricConfig

// FabricResult aggregates one fabric run: FCT percentiles per size
// bucket, queue summaries at the core/aggregation tiers, mark and drop
// rates, and the run's reproducibility digest.
type FabricResult = core.FabricResult

// LoadSweepPoint is one (load factor, result) sample of a fabric load
// sweep.
type LoadSweepPoint = core.LoadSweepPoint

// FlowSizeCDF is an empirical flow-size distribution for trace-driven
// workloads.
type FlowSizeCDF = flowgen.CDF

// TrafficMatrix selects how a workload draws flow endpoints.
type TrafficMatrix = flowgen.Matrix

// Traffic matrices.
const (
	TrafficRandom      = flowgen.Random
	TrafficPermutation = flowgen.Permutation
	TrafficIncast      = flowgen.Incast
)

// BuiltinFlowCDF returns a named builtin flow-size distribution:
// "websearch", "websearch-small", or "datamining".
func BuiltinFlowCDF(name string) (*FlowSizeCDF, error) { return flowgen.BuiltinCDF(name) }

// ParseFlowCDF reads a flow-size trace in the ns2-style
// "<size_bytes> [id] <cdf>" format.
func ParseFlowCDF(r io.Reader) (*FlowSizeCDF, error) { return flowgen.ParseCDF(r) }

// RunFabric executes a fabric scenario to completion.
func RunFabric(cfg FabricConfig) (*FabricResult, error) { return core.RunFabric(cfg) }

// SweepLoads runs the fabric at each load factor serially.
func SweepLoads(base FabricConfig, loads []float64) ([]LoadSweepPoint, error) {
	return core.SweepLoads(base, loads)
}

// SweepLoadsParallel runs the sweep points concurrently on up to workers
// goroutines; results are byte-identical for any worker count.
func SweepLoadsParallel(ctx context.Context, base FabricConfig, loads []float64, workers int) ([]LoadSweepPoint, error) {
	return core.SweepLoadsParallel(ctx, base, loads, workers)
}
