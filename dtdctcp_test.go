package dtdctcp

import (
	"context"
	"strings"
	"testing"
	"time"
)

// The facade is thin; these tests pin the re-exports together end to end
// so a refactor of internal packages cannot silently break the public API.

func TestFacadeDumbbell(t *testing.T) {
	res, err := RunDumbbell(DumbbellConfig{
		Protocol:   DTDCTCP(30, 50, 1.0/16),
		Flows:      10,
		Rate:       10 * Gbps,
		RTT:        100 * time.Microsecond,
		BufferPkts: 600,
		Duration:   20 * time.Millisecond,
		Warmup:     5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization < 0.8 {
		t.Fatalf("utilization %v", res.Utilization)
	}
}

func TestFacadeSweepAndQuery(t *testing.T) {
	pts, err := SweepFlows(DumbbellConfig{
		Protocol:   DCTCP(40, 1.0/16),
		Rate:       10 * Gbps,
		RTT:        100 * time.Microsecond,
		BufferPkts: 600,
		Duration:   10 * time.Millisecond,
		Warmup:     2 * time.Millisecond,
	}, []int{5})
	if err != nil || len(pts) != 1 {
		t.Fatalf("sweep: %v %v", pts, err)
	}
	q, err := RunIncast(DefaultTestbed(DCTCP(21, 1.0/16), 4), 2)
	if err != nil || q.Rounds != 2 {
		t.Fatalf("incast: %+v %v", q, err)
	}
	ct, err := RunCompletionTime(DefaultTestbed(Reno(), 4), 1)
	if err != nil || ct.MeanCompletion <= 0 {
		t.Fatalf("completion: %+v %v", ct, err)
	}
	ws, err := SweepWorkers(DefaultTestbed(RenoECN(21), 0), []int{2}, 1, RunIncast)
	if err != nil || len(ws) != 1 {
		t.Fatalf("worker sweep: %v %v", ws, err)
	}
	if _, err := RunQuery(DefaultTestbed(Reno(), 2), 1024, 1); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeAnalysis(t *testing.T) {
	params := PaperAnalysisParams()
	v, err := AnalyzeStability(DCTCP(40, 1.0/16), params, 100)
	if err != nil {
		t.Fatal(err)
	}
	if v.Stable {
		t.Fatal("DCTCP at N=100 should oscillate in the analysis")
	}
	if v.Cycle.Amplitude <= 0 || v.Cycle.PeriodSeconds() <= 0 {
		t.Fatalf("cycle: %+v", v.Cycle)
	}
	n, err := CriticalFlows(DTDCTCP(30, 50, 1.0/16), params, 2, 120)
	if err != nil || n <= 2 {
		t.Fatalf("critical flows: %d %v", n, err)
	}
	fc, err := FluidConfig(DCTCP(40, 1.0/16), params, 10, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := SolveFluid(fc)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Queue.Len() == 0 {
		t.Fatal("fluid trajectory empty")
	}
}

func TestFacadeMarkerReplay(t *testing.T) {
	traj := TriangleTrajectory(60)
	if len(traj) != 121 {
		t.Fatalf("trajectory length %d", len(traj))
	}
	dec, err := ReplayMarker(DCTCP(40, 1.0/16), traj)
	if err != nil || len(dec) != len(traj) {
		t.Fatalf("replay: %d %v", len(dec), err)
	}
}

func TestFacadeMargins(t *testing.T) {
	params := PaperAnalysisParams()
	m, err := StabilityMargins(DCTCP(40, 1.0/16), params, 20)
	if err != nil {
		t.Fatal(err)
	}
	if m.GainMargin <= 1 {
		t.Fatalf("gain margin %v at N=20, want stable (>1)", m.GainMargin)
	}
	if _, err := StabilityMargins(Reno(), params, 20); err == nil {
		t.Fatal("Reno margins should fail")
	}
}

func TestFacadeExtensionPresets(t *testing.T) {
	if Cubic().Name != "cubic" {
		t.Fatal("cubic preset")
	}
	if D2TCP(21, 1.0/16).K != 21 {
		t.Fatal("d2tcp preset")
	}
	pie := RenoPIE(1*Gbps, 500*time.Microsecond)
	if pie.NewPolicy == nil || pie.NewPolicy(nil).Name() != "pie-ecn" {
		t.Fatal("pie preset")
	}
	codel := RenoCoDel(500*time.Microsecond, 5*time.Millisecond)
	if codel.NewPolicy == nil || codel.NewPolicy(nil).Name() != "codel-ecn" {
		t.Fatal("codel preset")
	}
}

func TestFacadeFabric(t *testing.T) {
	cdf, err := BuiltinFlowCDF("websearch-small")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuiltinFlowCDF("no-such-trace"); err == nil {
		t.Fatal("unknown builtin accepted")
	}
	parsed, err := ParseFlowCDF(strings.NewReader("1460 0.5\n29200 1.0\n"))
	if err != nil || parsed.Points() != 2 {
		t.Fatalf("ParseFlowCDF: %v %v", parsed, err)
	}
	base := FabricConfig{
		Protocol:     DTDCTCP(15, 25, 1.0/16),
		Topology:     "leafspine",
		Leaves:       2,
		Spines:       2,
		HostsPerLeaf: 2,
		Rate:         Gbps,
		HopDelay:     10 * time.Microsecond,
		BufferPkts:   100,
		CDF:          cdf,
		Load:         0.4,
		Flows:        40,
		Matrix:       TrafficRandom,
		Seed:         3,
	}
	res, err := RunFabric(base)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Flows || len(res.Digest) != 16 {
		t.Fatalf("fabric result: %+v", res)
	}
	pts, err := SweepLoads(base, []float64{0.2})
	if err != nil || len(pts) != 1 || pts[0].Load != 0.2 {
		t.Fatalf("SweepLoads: %v %v", pts, err)
	}
	ppts, err := SweepLoadsParallel(context.Background(), base, []float64{0.2}, 2)
	if err != nil || len(ppts) != 1 || ppts[0].Result.Digest != pts[0].Result.Digest {
		t.Fatalf("SweepLoadsParallel: %v %v", ppts, err)
	}
}

// The zoo re-exports: the DCTCP+ slow-timer sender, the HULL
// phantom-queue variant, and the shared-buffer dynamic-threshold
// switch must all run through the facade.
func TestFacadeZoo(t *testing.T) {
	base := DumbbellConfig{
		Flows:      10,
		Rate:       10 * Gbps,
		RTT:        100 * time.Microsecond,
		BufferPkts: 600,
		Duration:   20 * time.Millisecond,
		Warmup:     5 * time.Millisecond,
	}

	plus := base
	plus.Protocol = DCTCPPlus(40, 1.0/16)
	res, err := RunDumbbell(plus)
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization < 0.8 || res.Marks == 0 {
		t.Fatalf("dctcp+: util %v marks %d", res.Utilization, res.Marks)
	}

	hull := base
	hull.Protocol = HULL(40, 0.95, base.Rate, 1.0/16)
	hres, err := RunDumbbell(hull)
	if err != nil {
		t.Fatal(err)
	}
	if hres.Marks == 0 {
		t.Fatalf("hull: no phantom marks")
	}
	if hres.QueueMeanPkts >= res.QueueMeanPkts {
		t.Fatalf("hull queue mean %.1f not below dctcp+ %.1f", hres.QueueMeanPkts, res.QueueMeanPkts)
	}

	pooled := base
	pooled.Protocol = DCTCP(40, 1.0/16)
	pooled.SharedBuffer = SharedBufferConfig{Alpha: 2}
	sres, err := RunDumbbell(pooled)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Utilization < 0.8 || sres.Marks == 0 {
		t.Fatalf("shared buffer: util %v marks %d", sres.Utilization, sres.Marks)
	}
}
