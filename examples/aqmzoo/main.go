// AQM zoo: every queue law in the library on the paper's 10 Gbps
// bottleneck with 60 flows — the conditions under which the paper says
// DCTCP oscillates. The table shows the trade each law makes between
// queue level, oscillation, utilization, and loss.
//
//	go run ./examples/aqmzoo
package main

import (
	"fmt"
	"log"
	"time"

	"dtdctcp"
)

func main() {
	protos := []dtdctcp.Protocol{
		dtdctcp.Reno(),      // DropTail, loss-driven
		dtdctcp.Cubic(),     // DropTail, the era's Linux default
		dtdctcp.RenoECN(40), // classic ECN at K
		dtdctcp.RenoPIE(10*dtdctcp.Gbps, 200*time.Microsecond), // delay-targeting PI controller
		dtdctcp.RenoCoDel(200*time.Microsecond, time.Millisecond), // sojourn-based dequeue law
		dtdctcp.DCTCP(40, 1.0/16),                                 // the paper's baseline
		dtdctcp.DTDCTCP(30, 50, 1.0/16),                           // the paper's contribution
	}

	fmt.Println("60 flows, 10 Gbps, 100 µs RTT, 600-packet buffer, 100 ms measured")
	fmt.Printf("%-28s %10s %8s %8s %8s %8s\n",
		"protocol", "mean(pkt)", "sd(pkt)", "util", "marks", "drops")
	for _, p := range protos {
		res, err := dtdctcp.RunDumbbell(dtdctcp.DumbbellConfig{
			Protocol:   p,
			Flows:      60,
			Rate:       10 * dtdctcp.Gbps,
			RTT:        100 * time.Microsecond,
			BufferPkts: 600,
			Duration:   100 * time.Millisecond,
			Warmup:     25 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %10.1f %8.1f %7.1f%% %8d %8d\n",
			res.Protocol, res.QueueMeanPkts, res.QueueStdPkts,
			res.Utilization*100, res.Marks, res.Drops)
	}
	fmt.Println("\nthe paper's trade: DT-DCTCP holds the lowest queue *and* the")
	fmt.Println("smallest deviation without giving up utilization or taking drops")
}
