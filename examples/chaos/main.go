// Chaos: fault injection against the paper's dumbbell. A built-in
// blackout profile and a custom JSON plan (plan.json — a capacity
// brownout followed by a hostile burst) each perturb DCTCP and DT-DCTCP
// mid-run; the recovery metrics show how fast each protocol drains back
// into its pre-fault queue band and re-locks its limit cycle. Same seed
// + same plan reproduces every run byte-identically.
//
//	go run ./examples/chaos   # from the repo root (loads examples/chaos/plan.json)
package main

import (
	"fmt"
	"log"
	"time"

	"dtdctcp"
)

func main() {
	// One shipped profile and one plan loaded from JSON.
	blackout, err := dtdctcp.ChaosProfile("blackout")
	if err != nil {
		log.Fatal(err)
	}
	brownout, err := dtdctcp.LoadChaosPlan("examples/chaos/plan.json")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built-in profiles: %v\n\n", dtdctcp.ChaosProfiles())

	for _, plan := range []*dtdctcp.ChaosPlan{blackout, brownout} {
		fmt.Printf("── plan %q: %s\n", plan.Name, plan.Description)
		for _, proto := range []dtdctcp.Protocol{
			dtdctcp.DCTCP(40, 1.0/16),
			dtdctcp.DTDCTCP(30, 50, 1.0/16),
		} {
			cfg := dtdctcp.DumbbellConfig{
				Protocol:         proto,
				Flows:            20,
				Rate:             1 * dtdctcp.Gbps,
				RTT:              100 * time.Microsecond,
				BufferPkts:       250,
				Duration:         40 * time.Millisecond,
				Warmup:           10 * time.Millisecond,
				QueueSampleEvery: 20 * time.Microsecond,
				Seed:             1,
				Chaos:            plan,
			}
			res, err := dtdctcp.RunDumbbell(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-24s fault drops %4d, queue %.1f ±%.1f pkts, util %.1f%%\n",
				res.Protocol, res.FaultDrops, res.QueueMeanPkts, res.QueueStdPkts,
				res.Utilization*100)
			if r := res.Recovery; r != nil {
				drain, relock := "never drained", "never re-locked"
				if r.Drained {
					drain = fmt.Sprintf("drained in %.2f ms", r.DrainTime*1e3)
				}
				if r.Relocked {
					relock = fmt.Sprintf("re-locked in %.2f ms", r.RelockTime*1e3)
				}
				fmt.Printf("  %-24s %s, %s (pre-fault band %.1f ±%.1f pkts)\n",
					"", drain, relock, r.RefMean, r.RefStd)
			}
		}
		fmt.Println()
	}
}
