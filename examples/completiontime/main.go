// Completion time: the paper's Fig. 15. An aggregator requests 1 MB split
// evenly across n workers and waits for all responses; the query
// completion time is set by the slowest worker. At 1 Gbps the floor is
// ≈10 ms; when Incast sets in, a single timed-out worker stretches the
// round to RTOmin ≈ 200 ms — a 20× tail.
//
//	go run ./examples/completiontime
package main

import (
	"fmt"
	"log"
	"time"

	"dtdctcp"
)

func main() {
	dc := dtdctcp.DCTCP(21, 1.0/16)
	dt := dtdctcp.DTDCTCP(16, 26, 1.0/16)

	fmt.Println("query completion time for 1 MB split n ways (ms, 10 rounds)")
	fmt.Println("   n |  DCTCP  mean    p95    max | DT-DCTCP mean   p95    max")
	for _, n := range []int{8, 16, 32, 48, 64} {
		rdc, err := dtdctcp.RunCompletionTime(dtdctcp.DefaultTestbed(dc, n), 10)
		if err != nil {
			log.Fatal(err)
		}
		rdt, err := dtdctcp.RunCompletionTime(dtdctcp.DefaultTestbed(dt, n), 10)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf(" %3d | %7.1f %6.1f %6.1f |  %7.1f %6.1f %6.1f\n", n,
			ms(rdc.MeanCompletion), ms(rdc.P95Completion), ms(rdc.MaxCompletion),
			ms(rdt.MeanCompletion), ms(rdt.P95Completion), ms(rdt.MaxCompletion))
	}
	fmt.Println("\nthe ≈10 ms rows are the line-rate floor; 100+ ms rows contain RTO-stalled rounds")
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
