// Deadlines: the D²TCP extension (Vamanan et al., SIGCOMM'12) that the
// paper cites as a DCTCP successor. Partition/aggregate responses carry a
// completion deadline; D²TCP senders scale their ECN backoff by the
// urgency d (penalty α^d), backing off less when the deadline is close.
// The example sweeps the deadline tightness and reports the fraction of
// responses that miss it under DCTCP vs D²TCP.
//
//	go run ./examples/deadlines
package main

import (
	"fmt"
	"log"
	"time"

	"dtdctcp"
)

func main() {
	const workers = 32
	const rounds = 20

	fmt.Printf("deadline miss rate, %d workers × 64 KB responses, %d rounds\n", workers, rounds)
	fmt.Println("deadline | dctcp   | d2tcp")
	for _, deadline := range []time.Duration{
		30 * time.Millisecond,
		25 * time.Millisecond,
		20 * time.Millisecond,
		15 * time.Millisecond,
	} {
		row := fmt.Sprintf("%8v |", deadline)
		for _, p := range []dtdctcp.Protocol{
			dtdctcp.DCTCP(21, 1.0/16),
			dtdctcp.D2TCP(21, 1.0/16),
		} {
			cfg := dtdctcp.DefaultTestbed(p, workers)
			cfg.Deadline = deadline
			res, err := dtdctcp.RunIncast(cfg, rounds)
			if err != nil {
				log.Fatal(err)
			}
			row += fmt.Sprintf(" %5.1f%%  |", res.DeadlineMissRate*100)
		}
		fmt.Println(row)
	}
	fmt.Println("\nd² reduces misses by backing off less when the clock is short;")
	fmt.Println("with uniform deadlines the effect is modest — its real strength is")
	fmt.Println("mixed-deadline traffic, which the Sender.Deadline field supports.")
}
