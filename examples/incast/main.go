// Incast: the partition/aggregate pattern from the paper's Fig. 14. An
// aggregator fans a query out to n workers; every worker answers with
// 64 KB at once. Past a critical n the synchronized responses overflow
// the switch buffer, some worker loses its whole window, and the round
// stalls on a 200 ms retransmission timeout — throughput collapse. The
// double-threshold marker postpones the collapse.
//
//	go run ./examples/incast
package main

import (
	"fmt"
	"log"

	"dtdctcp"
)

func main() {
	protos := []dtdctcp.Protocol{
		dtdctcp.DCTCP(21, 1.0/16),       // K = 32 KB of 1.5 KB packets
		dtdctcp.DTDCTCP(16, 26, 1.0/16), // anticipatory thresholds, same mean
		dtdctcp.Reno(),                  // the pre-DCTCP baseline
	}
	workerCounts := []int{8, 24, 40, 56}

	fmt.Println("mean goodput (Mbps) by synchronized worker count")
	fmt.Printf("%-24s", "protocol")
	for _, n := range workerCounts {
		fmt.Printf("  n=%-6d", n)
	}
	fmt.Println()

	for _, p := range protos {
		fmt.Printf("%-24s", p.Name)
		for _, n := range workerCounts {
			cfg := dtdctcp.DefaultTestbed(p, n)
			res, err := dtdctcp.RunIncast(cfg, 10)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-8.0f", res.MeanGoodputBps/1e6)
		}
		fmt.Println()
	}

	fmt.Println("\ntimeouts are the collapse mechanism; per-protocol counts at n=56:")
	for _, p := range protos {
		res, err := dtdctcp.RunIncast(dtdctcp.DefaultTestbed(p, 56), 10)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-24s %4d timeouts, %5d drops\n", p.Name, res.Timeouts, res.Drops)
	}
}
