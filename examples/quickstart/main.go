// Quickstart: run ten DT-DCTCP flows over a 10 Gbps bottleneck for
// 100 ms and print what the switch queue did — the sub-second version of
// the paper's headline experiment.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"dtdctcp"
)

func main() {
	// The paper's simulation parameters: 10 Gbps bottleneck, 100 µs RTT,
	// g = 1/16, double thresholds K1 = 30 / K2 = 50 packets.
	cfg := dtdctcp.DumbbellConfig{
		Protocol:         dtdctcp.DTDCTCP(30, 50, 1.0/16),
		Flows:            10,
		Rate:             10 * dtdctcp.Gbps,
		RTT:              100 * time.Microsecond,
		BufferPkts:       600,
		Duration:         100 * time.Millisecond,
		Warmup:           20 * time.Millisecond,
		QueueSampleEvery: 50 * time.Microsecond,
	}

	res, err := dtdctcp.RunDumbbell(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("protocol:     %s\n", res.Protocol)
	fmt.Printf("queue mean:   %.1f packets (±%.1f)\n", res.QueueMeanPkts, res.QueueStdPkts)
	fmt.Printf("queue range:  %.0f–%.0f packets\n", res.QueueMinPkts, res.QueueMaxPkts)
	fmt.Printf("utilization:  %.1f%%\n", res.Utilization*100)
	fmt.Printf("CE marks:     %d, drops: %d\n", res.Marks, res.Drops)
	fmt.Println()
	fmt.Print(res.QueueSeries.AsciiPlot(90, 14))

	// The same bottleneck under plain DCTCP, for contrast.
	cfg.Protocol = dtdctcp.DCTCP(40, 1.0/16)
	dc, err := dtdctcp.RunDumbbell(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfor contrast, single-threshold DCTCP: mean %.1f (±%.1f) packets\n",
		dc.QueueMeanPkts, dc.QueueStdPkts)
}
