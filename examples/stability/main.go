// Stability: the paper's Sections IV–V workflow end to end. For each
// marker the describing-function criterion predicts whether the queue
// oscillates at a given flow count and, if so, the limit cycle; the fluid
// model (Eqs. 1–3) is then integrated as an independent cross-check of
// the oscillation amplitude.
//
//	go run ./examples/stability
package main

import (
	"fmt"
	"log"
	"time"

	"dtdctcp"
)

func main() {
	params := dtdctcp.PaperAnalysisParams() // R = 100 µs, C = 10 Gbps, g = 1/16
	dc := dtdctcp.DCTCP(40, 1.0/16)
	dt := dtdctcp.DTDCTCP(30, 50, 1.0/16)

	// 1. Describing-function verdicts (the paper's Fig. 9).
	fmt.Println("describing-function stability across flow counts:")
	for _, p := range []dtdctcp.Protocol{dc, dt} {
		onset, err := dtdctcp.CriticalFlows(p, params, 2, 200)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-24s oscillation onset at N = %d\n", p.Name, onset)
	}

	// 2. Predicted limit cycle at N = 80 (both oscillate there).
	fmt.Println("\npredicted limit cycles at N = 80:")
	for _, p := range []dtdctcp.Protocol{dc, dt} {
		v, err := dtdctcp.AnalyzeStability(p, params, 80)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-24s amplitude %.0f packets, period %.0f µs\n",
			p.Name, v.Cycle.Amplitude, v.Cycle.PeriodSeconds()*1e6)
	}

	// 3. Fluid-model cross-check in its oscillatory regime (N = 40):
	// DT-DCTCP's amplitude should be well below DCTCP's.
	fmt.Println("\nfluid-model oscillation amplitude at N = 40 (packet units, 1.5 KB packets):")
	fluidParams := dtdctcp.AnalysisParams{
		CapacityPktsPerSec: 10e9 / 8 / 1500,
		RTT:                100e-6,
		G:                  1.0 / 16,
	}
	for _, p := range []dtdctcp.Protocol{dc, dt} {
		cfg, err := dtdctcp.FluidConfig(p, fluidParams, 40, 200*time.Millisecond)
		if err != nil {
			log.Fatal(err)
		}
		res, err := dtdctcp.SolveFluid(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-24s amplitude %.1f packets (mean queue %.1f)\n",
			p.Name, res.QueueAmplitude, res.QueueMean)
	}
}
