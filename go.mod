module dtdctcp

go 1.22
