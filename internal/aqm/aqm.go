// Package aqm implements the queue laws compared in the paper: plain
// DropTail, the single-threshold ECN marking of DCTCP, the paper's
// double-threshold marking (DT-DCTCP), and RED as an additional baseline.
//
// A Policy decides, per arriving packet, whether the packet is accepted,
// accepted with an ECN Congestion-Experienced mark, or dropped. The
// switch port owns the physical buffer: running out of buffer always
// drops, regardless of policy.
package aqm

import (
	"time"

	"dtdctcp/internal/invariant"
	"dtdctcp/internal/sim"
)

// assertOccupancy checks, under -tags invariants, that the port reported a
// physically possible queue occupancy to the policy.
func assertOccupancy(qlenBytes int) {
	if invariant.Enabled {
		invariant.Assert(qlenBytes >= 0, "aqm: negative queue occupancy %d", qlenBytes)
	}
}

// Verdict is a marking decision for one arriving packet.
type Verdict int

// Verdicts a policy can return for an arriving packet.
const (
	// Accept enqueues the packet unmodified.
	Accept Verdict = iota + 1
	// AcceptMark enqueues the packet with the CE (Congestion
	// Experienced) codepoint set.
	AcceptMark
	// Drop discards the packet.
	Drop
)

// String names the verdict for traces.
func (v Verdict) String() string {
	switch v {
	case Accept:
		return "accept"
	case AcceptMark:
		return "mark"
	case Drop:
		return "drop"
	default:
		return "invalid"
	}
}

// Policy is a queue law attached to one switch port. Implementations are
// single-goroutine, matching the event-driven simulator.
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// OnArrival is consulted when a packet of size pktBytes arrives at
	// a port whose queue currently holds qlenBytes, at virtual instant
	// now. The verdict applies to the arriving packet.
	OnArrival(now sim.Time, qlenBytes, pktBytes int) Verdict
	// OnDeparture informs the policy that the queue has drained to
	// qlenBytes after a packet left. Policies with hysteresis or timers
	// update their state here.
	OnDeparture(now sim.Time, qlenBytes int)
	// Reset restores initial state so a policy value can be reused
	// across runs.
	Reset()
}

// LossSubstituting is implemented by queue laws whose AcceptMark verdict
// substitutes for a drop (RED, PIE, CoDel in ECN mode): for those laws a
// non-ECT packet must be dropped when the law signals congestion, per
// RFC 3168 §5. Threshold markers (DCTCP, DT-DCTCP) do not implement it:
// their marks are informational and non-ECT packets pass unharmed.
type LossSubstituting interface {
	// MarkSubstitutesDrop reports that AcceptMark stands in for Drop.
	MarkSubstitutesDrop() bool
}

// DequeuePolicy is implemented by queue laws that decide at dequeue time
// (CoDel). The port consults OnDequeue for every departing packet with
// its measured sojourn time; Drop discards the packet instead of
// transmitting it, AcceptMark sets CE on ECT packets.
type DequeuePolicy interface {
	Policy
	// OnDequeue returns the verdict for the departing packet given its
	// queue sojourn time and the occupancy left behind.
	OnDequeue(now sim.Time, sojourn time.Duration, qlenBytes int) Verdict
}

// DropTail accepts every packet; the port's buffer limit provides the only
// drop behaviour. It is the paper's configuration for the non-bottleneck
// testbed switches.
type DropTail struct{}

// NewDropTail returns the pass-through policy.
func NewDropTail() *DropTail { return &DropTail{} }

// Name implements Policy.
func (*DropTail) Name() string { return "droptail" }

// OnArrival implements Policy: always accept (the port drops on overflow).
//
//dtlint:hotpath
func (*DropTail) OnArrival(sim.Time, int, int) Verdict { return Accept }

// OnDeparture implements Policy.
//
//dtlint:hotpath
func (*DropTail) OnDeparture(sim.Time, int) {}

// Reset implements Policy.
func (*DropTail) Reset() {}

// SingleThreshold is the DCTCP switch law: mark the arriving packet with
// CE iff the instantaneous buffer occupancy is at least K at arrival.
type SingleThreshold struct {
	// K is the marking threshold in bytes.
	K int
}

// NewSingleThreshold creates the DCTCP marker with threshold kBytes.
func NewSingleThreshold(kBytes int) *SingleThreshold {
	return &SingleThreshold{K: kBytes}
}

// NewSingleThresholdPackets creates the DCTCP marker with a threshold of
// kPackets packets of size pktBytes, matching the paper's "K packets"
// parameterization.
func NewSingleThresholdPackets(kPackets, pktBytes int) *SingleThreshold {
	return &SingleThreshold{K: kPackets * pktBytes}
}

// Name implements Policy.
func (*SingleThreshold) Name() string { return "dctcp-single" }

// OnArrival implements Policy.
//
//dtlint:hotpath
func (p *SingleThreshold) OnArrival(_ sim.Time, qlenBytes, _ int) Verdict {
	assertOccupancy(qlenBytes)
	if qlenBytes >= p.K {
		return AcceptMark
	}
	return Accept
}

// OnDeparture implements Policy.
//
//dtlint:hotpath
func (*SingleThreshold) OnDeparture(sim.Time, int) {}

// Reset implements Policy.
func (*SingleThreshold) Reset() {}
