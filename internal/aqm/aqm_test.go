package aqm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

const pkt = 1500 // bytes, the paper's packet size

func TestVerdictString(t *testing.T) {
	tests := []struct {
		v    Verdict
		want string
	}{
		{Accept, "accept"},
		{AcceptMark, "mark"},
		{Drop, "drop"},
		{Verdict(0), "invalid"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("Verdict(%d).String() = %q, want %q", tt.v, got, tt.want)
		}
	}
}

func TestDropTailAlwaysAccepts(t *testing.T) {
	p := NewDropTail()
	if p.Name() != "droptail" {
		t.Fatalf("Name = %q", p.Name())
	}
	for _, q := range []int{0, 1, 1 << 20, 1 << 30} {
		if got := p.OnArrival(0, q, pkt); got != Accept {
			t.Fatalf("OnArrival(%d) = %v, want accept", q, got)
		}
	}
	p.OnDeparture(0, 0) // must not panic
	p.Reset()
}

func TestSingleThresholdMarksAtK(t *testing.T) {
	p := NewSingleThresholdPackets(40, pkt)
	if p.K != 40*pkt {
		t.Fatalf("K = %d, want %d", p.K, 40*pkt)
	}
	tests := []struct {
		qlen int
		want Verdict
	}{
		{0, Accept},
		{39 * pkt, Accept},
		{40*pkt - 1, Accept},
		{40 * pkt, AcceptMark},
		{41 * pkt, AcceptMark},
	}
	for _, tt := range tests {
		if got := p.OnArrival(0, tt.qlen, pkt); got != tt.want {
			t.Errorf("OnArrival(qlen=%d) = %v, want %v", tt.qlen, got, tt.want)
		}
	}
	if p.Name() != "dctcp-single" {
		t.Fatalf("Name = %q", p.Name())
	}
}

// Property: the single threshold is memoryless — the verdict depends only
// on the occupancy, never on history.
func TestPropertySingleThresholdMemoryless(t *testing.T) {
	f := func(history []uint32, probe uint32) bool {
		k := 40 * pkt
		fresh := NewSingleThreshold(k)
		worn := NewSingleThreshold(k)
		for _, h := range history {
			worn.OnArrival(0, int(h%200)*pkt, pkt)
			worn.OnDeparture(0, int(h%150*pkt))
		}
		q := int(probe%200) * pkt
		return fresh.OnArrival(0, q, pkt) == worn.OnArrival(0, q, pkt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleThresholdRisingUsesK1(t *testing.T) {
	p := NewDoubleThresholdPackets(30, 50, pkt)
	// Strictly growing queue: occupancy above EWMA, so threshold is K1.
	var got []Verdict
	for q := 0; q <= 60; q += 5 {
		got = append(got, p.OnArrival(0, q*pkt, pkt))
	}
	// q = 0 seeds the average; the verdicts for q=30..60 must be marks.
	for i, q := 0, 0; q <= 60; i, q = i+1, q+5 {
		want := Accept
		if q >= 30 && q > 0 {
			want = AcceptMark
		}
		if got[i] != want {
			t.Errorf("rising q=%d: verdict %v, want %v", q, got[i], want)
		}
	}
	if !p.Rising() {
		t.Error("Rising() = false during growth")
	}
}

func TestDoubleThresholdFallingUsesK2(t *testing.T) {
	p := NewDoubleThresholdPackets(30, 50, pkt)
	// Grow to 80 packets so the EWMA settles high enough, then fall.
	for q := 0; q <= 80; q++ {
		p.OnArrival(0, q*pkt, pkt)
	}
	// Drive the average up by holding at 80 for a while.
	for i := 0; i < 400; i++ {
		p.OnArrival(0, 80*pkt, pkt)
	}
	// Now fall steeply: occupancy below EWMA → threshold K2 = 50.
	marked := make(map[int]bool)
	for q := 79; q >= 0; q-- {
		v := p.OnArrival(0, q*pkt, pkt)
		marked[q] = v == AcceptMark
	}
	if !marked[60] || !marked[50] {
		t.Error("falling queue at/above K2 not marked")
	}
	if marked[49] || marked[35] || marked[10] {
		t.Error("falling queue below K2 marked (early release violated)")
	}
	if p.Rising() {
		t.Error("Rising() = true during fall")
	}
}

func TestDoubleThresholdClassicHysteresis(t *testing.T) {
	// Testbed parameterization: K1 > K2 (34 KB / 28 KB).
	p := NewDoubleThreshold(34<<10, 28<<10)
	// Rising: no mark below 34 KB, mark at/above.
	if v := p.OnArrival(0, 0, pkt); v != Accept {
		t.Fatalf("seed arrival = %v", v)
	}
	if v := p.OnArrival(0, 30<<10, pkt); v != Accept {
		t.Errorf("rising 30KB = %v, want accept (below K1)", v)
	}
	if v := p.OnArrival(0, 35<<10, pkt); v != AcceptMark {
		t.Errorf("rising 35KB = %v, want mark", v)
	}
	// Hold high, then fall: marking persists until below 28 KB.
	for i := 0; i < 400; i++ {
		p.OnArrival(0, 40<<10, pkt)
	}
	if v := p.OnArrival(0, 30<<10, pkt); v != AcceptMark {
		t.Errorf("falling 30KB = %v, want mark (above K2)", v)
	}
	for i := 0; i < 50; i++ {
		p.OnArrival(0, 29<<10, pkt)
	}
	if v := p.OnArrival(0, 27<<10, pkt); v != Accept {
		t.Errorf("falling 27KB = %v, want accept (below K2)", v)
	}
}

func TestDoubleThresholdReset(t *testing.T) {
	p := NewDoubleThresholdPackets(30, 50, pkt)
	for q := 0; q <= 80; q++ {
		p.OnArrival(0, q*pkt, pkt)
	}
	p.Reset()
	if p.Rising() {
		t.Error("Rising() = true after Reset")
	}
	// After reset the first arrival seeds the EWMA again: occupancy equals
	// the average, so the trend is "not rising" and the threshold is K2.
	if v := p.OnArrival(0, 40*pkt, pkt); v != Accept {
		t.Errorf("first post-reset arrival at 40 pkts = %v, want accept", v)
	}
}

func TestDoubleThresholdDepartureFeedsTrend(t *testing.T) {
	p := NewDoubleThresholdPackets(30, 50, pkt)
	for q := 0; q <= 60; q++ {
		p.OnArrival(0, q*pkt, pkt)
	}
	// Let the trend estimator converge at the plateau.
	for i := 0; i < 400; i++ {
		p.OnArrival(0, 60*pkt, pkt)
	}
	// A burst of departures drags the trend down even with no arrivals.
	for q := 60; q >= 40; q-- {
		p.OnDeparture(0, q*pkt)
	}
	if p.Rising() {
		t.Error("Rising() = true after a departure-only drain")
	}
	// Next arrival at 45 packets (below K2, falling) must not be marked.
	if v := p.OnArrival(0, 45*pkt, pkt); v != AcceptMark && v != Accept {
		t.Fatalf("unexpected verdict %v", v)
	}
	if v := p.OnArrival(0, 44*pkt, pkt); v != Accept {
		t.Errorf("falling 44 pkts = %v, want accept", v)
	}
}

// Property: DT-DCTCP's verdict is always at least as aggressive as a
// single threshold at max(K1,K2) and never more aggressive than a single
// threshold at min(K1,K2), for any queue trajectory.
func TestPropertyDoubleThresholdBounded(t *testing.T) {
	f := func(walk []int8, k1p, k2p uint8) bool {
		k1 := (int(k1p%60) + 5) * pkt
		k2 := (int(k2p%60) + 5) * pkt
		lo, hi := k1, k2
		if lo > hi {
			lo, hi = hi, lo
		}
		dt := NewDoubleThreshold(k1, k2)
		loose := NewSingleThreshold(hi)
		tight := NewSingleThreshold(lo)
		q := 0
		for _, step := range walk {
			q += int(step) * pkt / 4
			if q < 0 {
				q = 0
			}
			vdt := dt.OnArrival(0, q, pkt)
			vloose := loose.OnArrival(0, q, pkt)
			vtight := tight.OnArrival(0, q, pkt)
			if vloose == AcceptMark && vdt != AcceptMark {
				return false // DT must mark whenever q ≥ max(K1,K2)
			}
			if vtight == Accept && vdt == AcceptMark {
				return false // DT must not mark when q < min(K1,K2)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestREDBelowMinThAccepts(t *testing.T) {
	p := &RED{MinTh: 10 * pkt, MaxTh: 30 * pkt, MaxP: 0.1, ECN: true,
		Rand: rand.New(rand.NewSource(1))}
	for i := 0; i < 100; i++ {
		if v := p.OnArrival(0, 5*pkt, pkt); v != Accept {
			t.Fatalf("below MinTh verdict = %v", v)
		}
	}
}

func TestREDAboveMaxThAlwaysCongested(t *testing.T) {
	mark := &RED{MinTh: 10 * pkt, MaxTh: 30 * pkt, MaxP: 0.1, ECN: true,
		Rand: rand.New(rand.NewSource(1))}
	drop := &RED{MinTh: 10 * pkt, MaxTh: 30 * pkt, MaxP: 0.1,
		Rand: rand.New(rand.NewSource(1))}
	// Drive the EWMA above MaxTh.
	for i := 0; i < 5000; i++ {
		mark.OnArrival(0, 100*pkt, pkt)
		drop.OnArrival(0, 100*pkt, pkt)
	}
	if mark.Avg() < float64(mark.MaxTh) {
		t.Fatalf("avg %v did not exceed MaxTh", mark.Avg())
	}
	if v := mark.OnArrival(0, 100*pkt, pkt); v != AcceptMark {
		t.Fatalf("ECN RED above MaxTh = %v, want mark", v)
	}
	if v := drop.OnArrival(0, 100*pkt, pkt); v != Drop {
		t.Fatalf("drop RED above MaxTh = %v, want drop", v)
	}
}

func TestREDIntermediateMarksProbabilistically(t *testing.T) {
	p := &RED{MinTh: 10 * pkt, MaxTh: 30 * pkt, MaxP: 0.1, ECN: true,
		Rand: rand.New(rand.NewSource(7))}
	// Hold the instantaneous queue at 20 packets; the EWMA converges there.
	marks, total := 0, 20000
	for i := 0; i < total; i++ {
		if p.OnArrival(0, 20*pkt, pkt) == AcceptMark {
			marks++
		}
	}
	if marks == 0 || marks == total {
		t.Fatalf("marks = %d of %d; want probabilistic behaviour", marks, total)
	}
}

func TestREDNames(t *testing.T) {
	if (&RED{ECN: true}).Name() != "red-ecn" {
		t.Fatal("ECN name")
	}
	if (&RED{}).Name() != "red-drop" {
		t.Fatal("drop name")
	}
}

func TestREDReset(t *testing.T) {
	p := &RED{MinTh: 10 * pkt, MaxTh: 30 * pkt, MaxP: 0.1, ECN: true,
		Rand: rand.New(rand.NewSource(1))}
	for i := 0; i < 100; i++ {
		p.OnArrival(0, 50*pkt, pkt)
	}
	p.Reset()
	if p.Avg() != 0 {
		t.Fatalf("Avg after Reset = %v", p.Avg())
	}
}

func TestPolicyTrivialHooks(t *testing.T) {
	// The no-op hooks and marker methods of every law, pinned so an
	// accidental behaviour change (e.g. a hook gaining state) is caught.
	st := NewSingleThreshold(40 * pkt)
	st.OnDeparture(0, 10*pkt)
	st.Reset()
	if st.OnArrival(0, 39*pkt, pkt) != Accept {
		t.Fatal("single threshold changed by hooks")
	}

	red := &RED{MinTh: 10 * pkt, MaxTh: 30 * pkt, MaxP: 0.1}
	red.OnDeparture(0, 5*pkt)
	if !red.MarkSubstitutesDrop() {
		t.Fatal("RED must substitute drops")
	}

	pie := &PIE{DrainRateBps: 125e6}
	if !pie.MarkSubstitutesDrop() {
		t.Fatal("PIE must substitute drops")
	}
	pie.MarkECNThreshold = 0.3
	if pie.ecnCap() != 0.3 {
		t.Fatal("explicit ECN cap ignored")
	}

	codel := newTestCoDel(true)
	codel.OnDeparture(0, 5*pkt)
	if !codel.MarkSubstitutesDrop() {
		t.Fatal("CoDel must substitute drops")
	}
	if codel.controlInterval() != codel.interval() {
		t.Fatal("control interval with count 0 should be the base interval")
	}

	dt := NewDoubleThresholdPackets(30, 50, pkt)
	if dt.Name() != "dt-dctcp" {
		t.Fatal("name")
	}
	if dt.Marking() {
		t.Fatal("fresh trend-mode marker should not report marking")
	}
	hyst := NewDoubleThreshold(34<<10, 28<<10)
	hyst.OnArrival(0, 40<<10, pkt)
	if !hyst.Marking() {
		t.Fatal("hysteresis marker should be ON above K1")
	}
	hyst.OnDeparture(0, 20<<10)
	if hyst.Marking() {
		t.Fatal("hysteresis marker should release below K2 on departure")
	}
}
