package aqm

import (
	"math"
	"time"

	"dtdctcp/internal/sim"
)

// CoDel is the Controlled Delay AQM (Nichols/Jacobson, RFC 8289),
// contemporaneous with the paper and included as a second delay-targeting
// baseline. Unlike every other law in this package it acts at dequeue
// time on the measured per-packet sojourn: once the sojourn has stayed
// above Target for a full Interval, CoDel enters the dropping state and
// drops (or, in ECN mode, marks) at instants spaced by
// Interval/√count.
type CoDel struct {
	// Target is the acceptable standing sojourn time (RFC default 5 ms;
	// data centers scale it to ~RTT/10).
	Target time.Duration
	// Interval is the sliding measurement window (RFC default 100 ms;
	// should cover an RTT mix).
	Interval time.Duration
	// ECN marks instead of dropping.
	ECN bool

	firstAboveTime sim.Time
	dropNext       sim.Time
	count          int
	lastCount      int
	dropping       bool
}

// Name implements Policy.
func (c *CoDel) Name() string {
	if c.ECN {
		return "codel-ecn"
	}
	return "codel"
}

// OnArrival implements Policy: CoDel admits everything (the buffer limit
// still applies) and acts at dequeue.
func (c *CoDel) OnArrival(sim.Time, int, int) Verdict { return Accept }

// OnDeparture implements Policy.
func (c *CoDel) OnDeparture(sim.Time, int) {}

// MarkSubstitutesDrop implements LossSubstituting: in ECN mode the mark
// replaces the drop the control law scheduled.
func (c *CoDel) MarkSubstitutesDrop() bool { return true }

// Reset implements Policy.
func (c *CoDel) Reset() {
	*c = CoDel{Target: c.Target, Interval: c.Interval, ECN: c.ECN}
}

// Dropping exposes the control-law state for tests.
func (c *CoDel) Dropping() bool { return c.dropping }

// OnDequeue implements DequeuePolicy: the RFC 8289 control law.
func (c *CoDel) OnDequeue(now sim.Time, sojourn time.Duration, qlenBytes int) Verdict {
	okToDrop := c.shouldDrop(now, sojourn, qlenBytes)
	if c.dropping {
		if !okToDrop {
			c.dropping = false
			return Accept
		}
		if now >= c.dropNext {
			c.count++
			c.dropNext = c.dropNext.Add(c.controlInterval())
			return c.congested()
		}
		return Accept
	}
	if okToDrop && (now-c.dropNext < sim.FromDuration(c.interval()) || now-c.firstAboveTime >= sim.FromDuration(c.interval())) {
		c.dropping = true
		// RFC §5.4: restart from a higher rate if we were dropping
		// recently, else from 1.
		if now-c.dropNext < sim.FromDuration(c.interval()) && c.lastCount > 2 {
			c.count = c.lastCount - 2
		} else {
			c.count = 1
		}
		c.lastCount = c.count
		c.dropNext = now.Add(c.controlInterval())
		return c.congested()
	}
	return Accept
}

// shouldDrop tracks how long the sojourn has continuously exceeded Target.
func (c *CoDel) shouldDrop(now sim.Time, sojourn time.Duration, qlenBytes int) bool {
	// A near-empty queue never drops (RFC: at least one MTU must remain).
	if sojourn < c.target() || qlenBytes < 1500 {
		c.firstAboveTime = 0
		return false
	}
	if c.firstAboveTime == 0 {
		c.firstAboveTime = now.Add(c.interval())
		return false
	}
	return now >= c.firstAboveTime
}

func (c *CoDel) congested() Verdict {
	c.lastCount = c.count
	if c.ECN {
		return AcceptMark
	}
	return Drop
}

// controlInterval returns Interval/√count, the RFC's drop-spacing law.
func (c *CoDel) controlInterval() time.Duration {
	if c.count <= 0 {
		return c.interval()
	}
	return time.Duration(float64(c.interval()) / math.Sqrt(float64(c.count)))
}

func (c *CoDel) target() time.Duration {
	if c.Target <= 0 {
		return 5 * time.Millisecond
	}
	return c.Target
}

func (c *CoDel) interval() time.Duration {
	if c.Interval <= 0 {
		return 100 * time.Millisecond
	}
	return c.Interval
}

var _ DequeuePolicy = (*CoDel)(nil)
