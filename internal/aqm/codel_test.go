package aqm

import (
	"testing"
	"time"

	"dtdctcp/internal/sim"
)

func newTestCoDel(ecn bool) *CoDel {
	return &CoDel{Target: 100 * time.Microsecond, Interval: time.Millisecond, ECN: ecn}
}

func TestCoDelNames(t *testing.T) {
	if newTestCoDel(false).Name() != "codel" || newTestCoDel(true).Name() != "codel-ecn" {
		t.Fatal("names")
	}
}

func TestCoDelArrivalAlwaysAccepts(t *testing.T) {
	c := newTestCoDel(false)
	if c.OnArrival(0, 1<<30, pkt) != Accept {
		t.Fatal("CoDel must accept at enqueue")
	}
	c.OnDeparture(0, 0) // no-op
}

func TestCoDelStaysQuietBelowTarget(t *testing.T) {
	c := newTestCoDel(false)
	now := sim.TimeZero
	for i := 0; i < 10000; i++ {
		now = now.Add(10 * time.Microsecond)
		if v := c.OnDequeue(now, 50*time.Microsecond, 10*pkt); v != Accept {
			t.Fatalf("dropped below target at step %d", i)
		}
	}
	if c.Dropping() {
		t.Fatal("entered dropping state below target")
	}
}

func TestCoDelEntersDroppingAfterInterval(t *testing.T) {
	c := newTestCoDel(false)
	now := sim.TimeZero
	drops := 0
	// Sojourn pinned at 5× target with a full queue: after one interval
	// CoDel must start dropping, with accelerating frequency.
	for i := 0; i < 5000; i++ {
		now = now.Add(10 * time.Microsecond)
		if c.OnDequeue(now, 500*time.Microsecond, 50*pkt) == Drop {
			drops++
		}
	}
	if !c.Dropping() {
		t.Fatal("never entered dropping state")
	}
	if drops < 5 {
		t.Fatalf("drops = %d over 50 ms of persistent excess delay", drops)
	}
	// Drop spacing must accelerate: interval/√count shrinks.
	if got := c.controlInterval(); got >= c.interval() {
		t.Fatalf("control interval %v did not shrink (count=%d)", got, c.count)
	}
}

func TestCoDelExitsWhenDelayRecovers(t *testing.T) {
	c := newTestCoDel(false)
	now := sim.TimeZero
	for i := 0; i < 2000; i++ {
		now = now.Add(10 * time.Microsecond)
		c.OnDequeue(now, 500*time.Microsecond, 50*pkt)
	}
	if !c.Dropping() {
		t.Fatal("setup: not dropping")
	}
	now = now.Add(10 * time.Microsecond)
	if v := c.OnDequeue(now, 20*time.Microsecond, 10*pkt); v != Accept {
		t.Fatalf("verdict %v on recovered delay", v)
	}
	if c.Dropping() {
		t.Fatal("did not exit dropping state")
	}
}

func TestCoDelLastMTUProtected(t *testing.T) {
	c := newTestCoDel(false)
	now := sim.TimeZero
	for i := 0; i < 5000; i++ {
		now = now.Add(10 * time.Microsecond)
		// Huge sojourn but sub-MTU backlog: must never drop.
		if c.OnDequeue(now, time.Second, 1000) == Drop {
			t.Fatal("dropped the last packet")
		}
	}
}

func TestCoDelECNMarksInsteadOfDropping(t *testing.T) {
	c := newTestCoDel(true)
	now := sim.TimeZero
	marks, drops := 0, 0
	for i := 0; i < 5000; i++ {
		now = now.Add(10 * time.Microsecond)
		switch c.OnDequeue(now, 500*time.Microsecond, 50*pkt) {
		case AcceptMark:
			marks++
		case Drop:
			drops++
		}
	}
	if marks == 0 || drops != 0 {
		t.Fatalf("ECN mode: marks=%d drops=%d", marks, drops)
	}
}

func TestCoDelDefaultsAndReset(t *testing.T) {
	var c CoDel
	if c.target() != 5*time.Millisecond || c.interval() != 100*time.Millisecond {
		t.Fatal("RFC defaults")
	}
	cfg := newTestCoDel(true)
	now := sim.TimeZero
	for i := 0; i < 2000; i++ {
		now = now.Add(10 * time.Microsecond)
		cfg.OnDequeue(now, time.Millisecond, 50*pkt)
	}
	cfg.Reset()
	if cfg.Dropping() || cfg.count != 0 {
		t.Fatal("Reset did not clear state")
	}
	if cfg.Target != 100*time.Microsecond || !cfg.ECN {
		t.Fatal("Reset must preserve configuration")
	}
}
