package aqm

import (
	"dtdctcp/internal/invariant"
	"dtdctcp/internal/sim"
)

// DoubleThreshold is the paper's DT-DCTCP switch law.
//
// The describing function of Fig. 8 defines the marking interval of one
// queue oscillation period as [φ1, φ2] with φ1 = arcsin(K1/X) on the
// rising edge and φ2 = π − arcsin(K2/X) on the falling edge: marking
// starts when the queue crosses K1 upward and stops when it crosses K2
// downward. The paper instantiates this with both threshold orders, and
// the two orders call for different mechanics at packet granularity:
//
//   - K1 > K2 (the paper's testbed: 34 KB / 28 KB) is a classic
//     hysteresis relay. A two-state machine implements it exactly: turn
//     ON when occupancy reaches K1, turn OFF when it falls to K2. The
//     K1−K2 band absorbs per-packet jitter, so no smoothing is needed.
//
//   - K1 < K2 (the paper's simulations: 30 / 50 packets) marks early on
//     the rise and releases early — while the queue is still high — on
//     the fall. Equivalently the threshold is direction-dependent: K1
//     while the queue rises, K2 while it falls. The instantaneous queue
//     is a sawtooth at packet granularity, so the direction is estimated
//     against an exponentially weighted moving average of the occupancy
//     (the smoothing idea RED uses): "rising" means the occupancy exceeds
//     its EWMA. TrendGain controls that filter.
type DoubleThreshold struct {
	// K1 is the mark-on (rising-edge) threshold in bytes.
	K1 int
	// K2 is the mark-off (falling-edge) threshold in bytes.
	K2 int
	// TrendGain is the EWMA weight for the queue-trend estimator used
	// when K1 < K2, in (0, 1]. Zero selects DefaultTrendGain.
	TrendGain float64

	// Hysteresis mode (K1 > K2).
	marking bool

	// Trend mode (K1 < K2).
	avg        float64
	seeded     bool
	lastRising bool
}

// DefaultTrendGain is the EWMA weight used when TrendGain is unset.
const DefaultTrendGain = 1.0 / 16

// NewDoubleThreshold creates the DT-DCTCP marker with thresholds in bytes.
func NewDoubleThreshold(k1Bytes, k2Bytes int) *DoubleThreshold {
	return &DoubleThreshold{K1: k1Bytes, K2: k2Bytes}
}

// NewDoubleThresholdPackets creates the DT-DCTCP marker with thresholds of
// k1Packets/k2Packets packets of size pktBytes, matching the paper's
// packet-based simulation parameters.
func NewDoubleThresholdPackets(k1Packets, k2Packets, pktBytes int) *DoubleThreshold {
	return &DoubleThreshold{K1: k1Packets * pktBytes, K2: k2Packets * pktBytes}
}

// Name implements Policy.
func (*DoubleThreshold) Name() string { return "dt-dctcp" }

// Marking reports the relay state in hysteresis mode (K1 > K2); in trend
// mode it reports whether the last decision used the rising threshold.
func (p *DoubleThreshold) Marking() bool {
	if p.K1 > p.K2 {
		return p.marking
	}
	return p.lastRising
}

// Rising reports the most recent trend decision (trend mode only): true
// when the instantaneous occupancy was above its moving average at the
// last observation. Exposed for traces and tests.
func (p *DoubleThreshold) Rising() bool { return p.lastRising }

// OnArrival implements Policy.
//
//dtlint:hotpath
func (p *DoubleThreshold) OnArrival(_ sim.Time, qlenBytes, _ int) Verdict {
	assertOccupancy(qlenBytes)
	if invariant.Enabled {
		//dtlint:allow hotalloc: assertion boxing is build-tag gated; alloc tests skip under -tags invariants
		invariant.Assert(p.K1 >= 0 && p.K2 >= 0, "aqm: negative double-threshold K1=%d K2=%d", p.K1, p.K2)
	}
	if p.K1 > p.K2 {
		// Hysteresis relay.
		if p.marking {
			if qlenBytes <= p.K2 {
				p.marking = false
			}
		} else if qlenBytes >= p.K1 {
			p.marking = true
		}
		if p.marking {
			return AcceptMark
		}
		return Accept
	}
	// Direction-dependent threshold.
	rising := p.observe(qlenBytes)
	thr := p.K2
	if rising {
		thr = p.K1
	}
	if qlenBytes >= thr {
		return AcceptMark
	}
	return Accept
}

// OnDeparture implements Policy: departures update the relay state resp.
// the trend estimator so a draining queue is tracked between arrivals.
//
//dtlint:hotpath
func (p *DoubleThreshold) OnDeparture(_ sim.Time, qlenBytes int) {
	assertOccupancy(qlenBytes)
	if p.K1 > p.K2 {
		if p.marking && qlenBytes <= p.K2 {
			p.marking = false
		}
		return
	}
	p.observe(qlenBytes)
}

// Reset implements Policy.
func (p *DoubleThreshold) Reset() {
	p.marking = false
	p.avg = 0
	p.seeded = false
	p.lastRising = false
}

//dtlint:hotpath
func (p *DoubleThreshold) observe(qlen int) bool {
	g := p.TrendGain
	if g <= 0 || g > 1 {
		g = DefaultTrendGain
	}
	q := float64(qlen)
	if !p.seeded {
		p.seeded = true
		p.avg = q
	}
	rising := q > p.avg
	p.avg += g * (q - p.avg)
	p.lastRising = rising
	return rising
}
