package aqm

import (
	"testing"

	"dtdctcp/internal/sim"
)

// fuzz walk parameters: packets are MTU-sized, the buffer matches the
// dumbbell scenarios (100 packets).
const (
	fuzzPkt = 1500
	fuzzCap = 100 * fuzzPkt
)

// clampThreshold maps an arbitrary fuzzed int into [0, fuzzCap], the range
// of thresholds a port could meaningfully be configured with.
func clampThreshold(k int) int {
	if k < 0 {
		k = -k
	}
	if k < 0 { // math.MinInt negates to itself
		return 0
	}
	return k % (fuzzCap + 1)
}

// walkQueue replays ops as an arrival/departure trace against the policy,
// tracking occupancy like a port would, and hands every arrival verdict to
// check. Even op bytes are arrivals, odd are departures.
func walkQueue(t *testing.T, p Policy, ops []byte, check func(qlen int, v Verdict)) {
	t.Helper()
	qlen := 0
	var now sim.Time
	for _, op := range ops {
		now += sim.Time(op) + 1
		if op%2 == 0 {
			v := p.OnArrival(now, qlen, fuzzPkt)
			check(qlen, v)
			if v != Drop && qlen+fuzzPkt <= fuzzCap {
				qlen += fuzzPkt
			}
			continue
		}
		if qlen >= fuzzPkt {
			qlen -= fuzzPkt
			p.OnDeparture(now, qlen)
		}
	}
}

// FuzzDoubleThreshold checks the DT-DCTCP marker over arbitrary threshold
// pairs and queue trajectories: it must never panic or drop, must mark
// whenever the occupancy is at or above both thresholds, and must stay
// silent below both — the K_min/K_max envelope that holds in hysteresis
// mode (K1 > K2) and trend mode (K1 <= K2) alike.
func FuzzDoubleThreshold(f *testing.F) {
	// Paper configurations: 30/50 packets (simulation, trend mode) and
	// 34 KB/28 KB (testbed, hysteresis mode), plus degenerate edges.
	f.Add(30*fuzzPkt, 50*fuzzPkt, []byte{0, 0, 0, 2, 1, 4, 3, 0, 255, 254})
	f.Add(34*1024, 28*1024, []byte{0, 2, 4, 6, 1, 3, 5, 7, 0, 0})
	f.Add(0, 0, []byte{0, 1, 2, 3})
	f.Add(fuzzPkt, fuzzPkt, []byte{0, 0, 1, 1})
	f.Add(fuzzCap, 0, []byte{0, 2, 4, 1})
	f.Fuzz(func(t *testing.T, k1, k2 int, ops []byte) {
		k1, k2 = clampThreshold(k1), clampThreshold(k2)
		kmin, kmax := k1, k2
		if kmin > kmax {
			kmin, kmax = kmax, kmin
		}
		p := NewDoubleThreshold(k1, k2)
		walkQueue(t, p, ops, func(qlen int, v Verdict) {
			if v != Accept && v != AcceptMark {
				t.Fatalf("K1=%d K2=%d qlen=%d: verdict %v, want accept or mark", k1, k2, qlen, v)
			}
			if qlen >= kmax && v != AcceptMark {
				t.Fatalf("K1=%d K2=%d: qlen=%d above both thresholds but not marked", k1, k2, qlen)
			}
			if qlen < kmin && v != Accept {
				t.Fatalf("K1=%d K2=%d: qlen=%d below both thresholds but marked", k1, k2, qlen)
			}
		})
	})
}

// FuzzSingleThreshold checks the DCTCP marker: stateless, so the verdict
// must be exactly (qlen >= K), and never a drop or panic.
func FuzzSingleThreshold(f *testing.F) {
	f.Add(65*fuzzPkt, []byte{0, 0, 2, 1, 3, 0})
	f.Add(0, []byte{0, 1})
	f.Add(fuzzCap, []byte{0, 2, 4, 6})
	f.Fuzz(func(t *testing.T, k int, ops []byte) {
		k = clampThreshold(k)
		p := NewSingleThreshold(k)
		walkQueue(t, p, ops, func(qlen int, v Verdict) {
			want := Accept
			if qlen >= k {
				want = AcceptMark
			}
			if v != want {
				t.Fatalf("K=%d qlen=%d: verdict %v, want %v", k, qlen, v, want)
			}
		})
	})
}
