// HULL-style phantom queue (Alizadeh et al., NSDI'12): marking decisions
// come from a simulated *virtual* queue that drains at a configurable
// fraction γ of the line rate, not from the real buffer occupancy. By
// marking as if the link were slower, the real queue is held near empty
// and latency stays at the propagation floor — the price is the (1−γ)
// slice of bandwidth the phantom queue refuses to fill.
package aqm

import (
	"fmt"

	"dtdctcp/internal/invariant"
	"dtdctcp/internal/sim"
)

// PhantomQueue wraps an inner threshold policy and feeds it virtual-queue
// occupancy instead of the port's real queue length. The virtual queue
// grows by every arriving packet's size and drains continuously at
// DrainBytesPerSec = γ·C. With γ = 1 and a SingleThreshold inner policy
// it reproduces a rate-C fluid queue marked at K; with γ < 1 the virtual
// queue saturates while the real queue is still short, so marking starts
// earlier and steady-state utilization pins at γ.
type PhantomQueue struct {
	// DrainBytesPerSec is the virtual drain rate γ·C in bytes/second.
	DrainBytesPerSec float64
	// Inner is the threshold law consulted against the virtual
	// occupancy. It must be a pure occupancy law (SingleThreshold,
	// DoubleThreshold); dequeue-time laws are not meaningful here.
	Inner Policy

	vq      float64  // virtual occupancy in bytes
	lastAt  sim.Time // instant of the last drain update
	started bool
}

// NewPhantomQueue builds a phantom queue draining at drainBytesPerSec
// that marks via inner.
func NewPhantomQueue(drainBytesPerSec float64, inner Policy) *PhantomQueue {
	if drainBytesPerSec <= 0 {
		panic("aqm: phantom queue needs a positive drain rate")
	}
	if inner == nil {
		panic("aqm: phantom queue needs an inner policy")
	}
	return &PhantomQueue{DrainBytesPerSec: drainBytesPerSec, Inner: inner}
}

// Name identifies the policy in experiment output.
func (p *PhantomQueue) Name() string {
	return fmt.Sprintf("phantom(%s)", p.Inner.Name())
}

// drain advances the virtual queue to now.
//
//dtlint:hotpath
func (p *PhantomQueue) drain(now sim.Time) {
	if !p.started {
		p.lastAt = now
		p.started = true
		return
	}
	dt := (now - p.lastAt).Duration().Seconds()
	p.lastAt = now
	if dt <= 0 {
		return
	}
	p.vq -= p.DrainBytesPerSec * dt
	if p.vq < 0 {
		p.vq = 0
	}
}

// OnArrival drains the virtual queue to now, consults the inner law
// against the virtual occupancy, then adds the packet to the virtual
// queue. The real occupancy is ignored: HULL marks on what the queue
// *would* be at the slower virtual rate.
//
//dtlint:hotpath
func (p *PhantomQueue) OnArrival(now sim.Time, qlenBytes, pktBytes int) Verdict {
	assertOccupancy(qlenBytes)
	p.drain(now)
	v := p.Inner.OnArrival(now, int(p.vq), pktBytes)
	p.vq += float64(pktBytes)
	p.assertOccupancy()
	if v == Drop {
		// The phantom queue is a marking device; only the real buffer
		// drops. Inner laws here are threshold markers, which never
		// return Drop, but clamp defensively.
		v = AcceptMark
	}
	return v
}

// OnDeparture only advances the virtual drain: real departures do not
// shrink the virtual queue, which is the point of the device.
//
//dtlint:hotpath
func (p *PhantomQueue) OnDeparture(now sim.Time, qlenBytes int) {
	p.drain(now)
	p.Inner.OnDeparture(now, int(p.vq))
}

// assertOccupancy checks, under -tags invariants, that the virtual
// queue never goes negative. The format arguments only exist in
// invariants builds, keeping the hot path allocation-free.
func (p *PhantomQueue) assertOccupancy() {
	if invariant.Enabled {
		invariant.Assert(p.vq >= 0, "aqm: negative phantom occupancy %g", p.vq)
	}
}

// VirtualQueueBytes exposes the current virtual occupancy (for tests and
// monitors; the value is as of the last arrival/departure).
func (p *PhantomQueue) VirtualQueueBytes() float64 { return p.vq }

// Reset restores initial state for reuse across runs.
func (p *PhantomQueue) Reset() {
	p.vq = 0
	p.lastAt = 0
	p.started = false
	p.Inner.Reset()
}
