package aqm

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"dtdctcp/internal/sim"
)

// phantomRate is the reference line rate for phantom tests: 1 Gbps in
// bytes/second, the dumbbell bottleneck of the paper's experiments.
const phantomRate = 125e6

func TestPhantomQueueConstruction(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero drain", func() { NewPhantomQueue(0, NewSingleThreshold(10)) })
	mustPanic("negative drain", func() { NewPhantomQueue(-1, NewSingleThreshold(10)) })
	mustPanic("nil inner", func() { NewPhantomQueue(phantomRate, nil) })

	p := NewPhantomQueue(phantomRate, NewSingleThreshold(65*fuzzPkt))
	if !strings.HasPrefix(p.Name(), "phantom(") {
		t.Fatalf("Name = %q", p.Name())
	}
	if p.VirtualQueueBytes() != 0 {
		t.Fatalf("fresh virtual occupancy = %g", p.VirtualQueueBytes())
	}
}

// phantomWalk drives a phantom queue (and optional companions) through one
// arrival/departure trace with microsecond-scale gaps, tracking real
// occupancy like a port would. check sees each arrival's verdicts in the
// order the policies were passed.
func phantomWalk(rng *rand.Rand, steps int, policies []*PhantomQueue, check func(step int, verdicts []Verdict)) {
	qlen := 0
	var now sim.Time
	verdicts := make([]Verdict, len(policies))
	for step := 0; step < steps; step++ {
		now += sim.Time((rng.Int63n(50) + 1) * int64(time.Microsecond))
		if rng.Intn(3) < 2 { // bias toward arrivals so the virtual queue builds
			for i, p := range policies {
				verdicts[i] = p.OnArrival(now, qlen, fuzzPkt)
			}
			check(step, verdicts)
			if qlen+fuzzPkt <= fuzzCap {
				qlen += fuzzPkt
			}
		} else if qlen >= fuzzPkt {
			qlen -= fuzzPkt
			for _, p := range policies {
				p.OnDeparture(now, qlen)
			}
		}
	}
}

// Property: phantom marking is monotone in γ. A virtual queue draining
// slower (smaller γ) sits pointwise at or above one draining faster on the
// same trace, so with a monotone inner law every packet the faster-draining
// phantom marks, the slower-draining one must mark too.
func TestPropertyPhantomMarkingMonotoneInGamma(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(30*fuzzPkt + 1)
		g1 := 0.5 + rng.Float64()*0.4 // slower drain
		g2 := g1 + rng.Float64()*(1.0-g1) + 0.01
		slow := NewPhantomQueue(g1*phantomRate, NewSingleThreshold(k))
		fast := NewPhantomQueue(g2*phantomRate, NewSingleThreshold(k))
		phantomWalk(rng, 300, []*PhantomQueue{slow, fast}, func(step int, v []Verdict) {
			if slow.VirtualQueueBytes() < fast.VirtualQueueBytes()-1e-6 {
				t.Fatalf("seed %d step %d: slower drain γ=%.3f has smaller virtual queue (%.1f) than γ=%.3f (%.1f)",
					seed, step, g1, slow.VirtualQueueBytes(), g2, fast.VirtualQueueBytes())
			}
			if v[1] == AcceptMark && v[0] != AcceptMark {
				t.Fatalf("seed %d step %d: γ=%.3f marks but slower γ=%.3f does not", seed, step, g2, g1)
			}
		})
	}
}

// Metamorphic property: PQ(γ=1, K) over a SingleThreshold inner law is
// verdict-exact against an independently written rate-C fluid recurrence
// q ← max(0, q − C·Δt) fed to the same threshold — the γ=1 phantom queue
// is exactly the fluid queue of the paper's analysis, not an approximation.
func TestPropertyPhantomGammaOneMatchesFluidRecurrence(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(65*fuzzPkt + 1)
		pq := NewPhantomQueue(phantomRate, NewSingleThreshold(k))
		ref := NewSingleThreshold(k)
		var q float64     // fluid occupancy
		var last sim.Time // fluid drain timestamp, mirroring the phantom's
		started := false
		drain := func(now sim.Time) {
			if !started {
				last, started = now, true
				return
			}
			q = math.Max(0, q-phantomRate*(now-last).Duration().Seconds())
			last = now
		}
		qlen := 0
		var now sim.Time
		for step := 0; step < 400; step++ {
			now += sim.Time((rng.Int63n(50) + 1) * int64(time.Microsecond))
			if rng.Intn(3) < 2 {
				got := pq.OnArrival(now, qlen, fuzzPkt)
				drain(now)
				want := ref.OnArrival(now, int(q), fuzzPkt)
				q += fuzzPkt
				if got != want {
					t.Fatalf("seed %d step %d: K=%d phantom %v, fluid recurrence %v (vq=%.1f fluid=%.1f)",
						seed, step, k, got, want, pq.VirtualQueueBytes(), q)
				}
				if math.Abs(pq.VirtualQueueBytes()-q) > 1e-6 {
					t.Fatalf("seed %d step %d: virtual occupancy %.6f diverged from fluid %.6f",
						seed, step, pq.VirtualQueueBytes(), q)
				}
				if qlen+fuzzPkt <= fuzzCap {
					qlen += fuzzPkt
				}
			} else if qlen >= fuzzPkt {
				qlen -= fuzzPkt
				pq.OnDeparture(now, qlen)
				drain(now)
				ref.OnDeparture(now, int(q))
			}
		}
	}
}

// Reset must restore fresh behaviour: a scrambled-then-Reset phantom queue
// matches a brand-new one verdict for verdict on a shared trace.
func TestPhantomQueueResetRestoresFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		k := rng.Intn(30*fuzzPkt + 1)
		used := NewPhantomQueue(0.9*phantomRate, NewSingleThreshold(k))
		phantomWalk(rng, 150, []*PhantomQueue{used}, func(int, []Verdict) {})
		used.Reset()
		if used.VirtualQueueBytes() != 0 {
			t.Fatalf("trial %d: virtual occupancy %g after Reset", trial, used.VirtualQueueBytes())
		}
		fresh := NewPhantomQueue(0.9*phantomRate, NewSingleThreshold(k))
		phantomWalk(rng, 150, []*PhantomQueue{used, fresh}, func(step int, v []Verdict) {
			if v[0] != v[1] {
				t.Fatalf("trial %d step %d: reset policy %v, fresh %v", trial, step, v[0], v[1])
			}
		})
	}
}

// FuzzPhantomQueue checks the phantom queue over arbitrary thresholds,
// drain rates, and traces: it must never panic or drop, the virtual
// occupancy must stay within [0, total arrived bytes], and doubling the
// drain rate on the same trace must never add marks.
func FuzzPhantomQueue(f *testing.F) {
	// HULL's paper configuration (γ ≈ 0.95, K around 1 KB..tens of KB),
	// the γ=1 fluid edge, and a crawling drain.
	f.Add(10*fuzzPkt, int64(0.95*phantomRate), []byte{0, 0, 0, 2, 1, 4, 3, 0, 255, 254})
	f.Add(65*fuzzPkt, int64(phantomRate), []byte{0, 2, 4, 6, 1, 3, 5, 7, 0, 0})
	f.Add(0, int64(1), []byte{0, 1, 2, 3})
	f.Add(fuzzCap, int64(phantomRate), []byte{0, 0, 1, 1})
	f.Fuzz(func(t *testing.T, k int, drainBps int64, ops []byte) {
		k = clampThreshold(k)
		if drainBps <= 0 {
			drainBps = -drainBps + 1
		}
		if drainBps > int64(10*phantomRate) {
			drainBps = int64(10 * phantomRate)
		}
		p := NewPhantomQueue(float64(drainBps), NewSingleThreshold(k))
		faster := NewPhantomQueue(2*float64(drainBps), NewSingleThreshold(k))
		arrived := 0.0
		qlen := 0
		var now sim.Time
		for _, op := range ops {
			now += sim.Time((int64(op) + 1) * int64(time.Microsecond))
			if op%2 == 0 {
				v := p.OnArrival(now, qlen, fuzzPkt)
				vf := faster.OnArrival(now, qlen, fuzzPkt)
				arrived += fuzzPkt
				if v != Accept && v != AcceptMark {
					t.Fatalf("K=%d drain=%d qlen=%d: verdict %v, want accept or mark", k, drainBps, qlen, v)
				}
				if vf == AcceptMark && v != AcceptMark {
					t.Fatalf("K=%d drain=%d: doubled drain marks but base does not", k, drainBps)
				}
				if qlen+fuzzPkt <= fuzzCap {
					qlen += fuzzPkt
				}
			} else if qlen >= fuzzPkt {
				qlen -= fuzzPkt
				p.OnDeparture(now, qlen)
				faster.OnDeparture(now, qlen)
			}
			if vq := p.VirtualQueueBytes(); vq < 0 || vq > arrived+1e-6 {
				t.Fatalf("K=%d drain=%d: virtual occupancy %.3f outside [0, %g]", k, drainBps, vq, arrived)
			}
		}
	})
}
