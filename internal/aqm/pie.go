package aqm

import (
	"math/rand"
	"time"

	"dtdctcp/internal/sim"
)

// PIE is the Proportional Integral controller Enhanced AQM (RFC 8033,
// simplified), contemporaneous with the paper and included as an
// additional latency-targeting baseline: instead of thresholding the
// queue *length*, PIE steers the queueing *delay* toward a target by
// adapting a drop/mark probability with a PI controller.
//
// The queueing delay is estimated as occupancy divided by the configured
// drain rate (the attached link speed), which is RFC 8033's basic
// estimator for fixed-rate links.
type PIE struct {
	// Target is the queueing-delay setpoint (RFC default 15 ms; data
	// center deployments use sub-millisecond targets).
	Target time.Duration
	// TUpdate is the probability-update interval (RFC default 15 ms).
	TUpdate time.Duration
	// Alpha and Beta are the PI gains in probability per second of
	// delay error; zero selects the RFC defaults (0.125, 1.25).
	Alpha, Beta float64
	// DrainRateBps is the port's drain rate in bytes/second, used by
	// the delay estimator. Required.
	DrainRateBps float64
	// ECN marks instead of dropping while the probability is below
	// MarkECNThreshold.
	ECN bool
	// MarkECNThreshold caps ECN marking (RFC suggests 0.1): above it
	// PIE drops even in ECN mode. Zero selects 0.1.
	MarkECNThreshold float64
	// Rand supplies randomness; required for deterministic runs.
	Rand *rand.Rand

	prob       float64
	qdelayOld  time.Duration
	nextUpdate sim.Time
	started    bool
}

// Name implements Policy.
func (p *PIE) Name() string {
	if p.ECN {
		return "pie-ecn"
	}
	return "pie"
}

// Prob exposes the current drop/mark probability for tests.
func (p *PIE) Prob() float64 { return p.prob }

// OnArrival implements Policy.
func (p *PIE) OnArrival(now sim.Time, qlenBytes, _ int) Verdict {
	assertOccupancy(qlenBytes)
	p.maybeUpdate(now, qlenBytes)

	qdelay := p.delay(qlenBytes)
	// Burst protection: do not drop while the queue is comfortably
	// below target and the controller is calm.
	if qdelay < p.target()/2 && p.prob < 0.2 {
		return Accept
	}
	if p.Rand != nil && p.Rand.Float64() < p.prob {
		if p.ECN && p.prob <= p.ecnCap() {
			return AcceptMark
		}
		return Drop
	}
	return Accept
}

// OnDeparture implements Policy.
func (p *PIE) OnDeparture(now sim.Time, qlenBytes int) {
	p.maybeUpdate(now, qlenBytes)
}

// MarkSubstitutesDrop implements LossSubstituting: in ECN mode the mark
// replaces the drop the law would otherwise apply.
func (p *PIE) MarkSubstitutesDrop() bool { return true }

// Reset implements Policy.
func (p *PIE) Reset() {
	p.prob = 0
	p.qdelayOld = 0
	p.nextUpdate = 0
	p.started = false
}

func (p *PIE) maybeUpdate(now sim.Time, qlenBytes int) {
	if !p.started {
		p.started = true
		p.nextUpdate = now.Add(p.tUpdate())
		return
	}
	if now < p.nextUpdate {
		return
	}
	p.nextUpdate = now.Add(p.tUpdate())

	qdelay := p.delay(qlenBytes)
	alpha, beta := p.Alpha, p.Beta
	// The RFC's default gains (0.125, 1.25 per second of delay error)
	// are tuned for the 15 ms default target; at data-center targets the
	// loop would converge orders of magnitude too slowly. Scale the
	// defaults to the configured timescale so the controller closes the
	// loop within a few update intervals regardless of target.
	scale := (15 * time.Millisecond).Seconds() / p.target().Seconds()
	if alpha <= 0 {
		alpha = 0.125 * scale
	}
	if beta <= 0 {
		beta = 1.25 * scale
	}
	delta := alpha*(qdelay-p.target()).Seconds() + beta*(qdelay-p.qdelayOld).Seconds()

	// RFC 8033 auto-tuning: scale the adjustment down while the
	// probability is small so the controller is gentle near zero.
	switch {
	case p.prob < 0.000001:
		delta /= 2048
	case p.prob < 0.00001:
		delta /= 512
	case p.prob < 0.0001:
		delta /= 128
	case p.prob < 0.001:
		delta /= 32
	case p.prob < 0.01:
		delta /= 8
	case p.prob < 0.1:
		delta /= 2
	}
	p.prob += delta

	// Exponential decay when the queue is empty (RFC §4.2).
	if qdelay == 0 && p.qdelayOld == 0 {
		p.prob *= 0.98
	}
	if p.prob < 0 {
		p.prob = 0
	} else if p.prob > 1 {
		p.prob = 1
	}
	p.qdelayOld = qdelay
}

func (p *PIE) delay(qlenBytes int) time.Duration {
	if p.DrainRateBps <= 0 {
		return 0
	}
	return time.Duration(float64(qlenBytes) / p.DrainRateBps * float64(time.Second))
}

func (p *PIE) target() time.Duration {
	if p.Target <= 0 {
		return 15 * time.Millisecond
	}
	return p.Target
}

func (p *PIE) tUpdate() time.Duration {
	if p.TUpdate <= 0 {
		return 15 * time.Millisecond
	}
	return p.TUpdate
}

func (p *PIE) ecnCap() float64 {
	if p.MarkECNThreshold <= 0 {
		return 0.1
	}
	return p.MarkECNThreshold
}

var _ Policy = (*PIE)(nil)
