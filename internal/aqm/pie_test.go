package aqm

import (
	"math/rand"
	"testing"
	"time"

	"dtdctcp/internal/sim"
)

func newTestPIE(ecn bool) *PIE {
	return &PIE{
		Target:       time.Millisecond,
		TUpdate:      time.Millisecond,
		DrainRateBps: 125e6, // 1 Gbps
		ECN:          ecn,
		Rand:         rand.New(rand.NewSource(1)),
	}
}

func TestPIENames(t *testing.T) {
	if newTestPIE(true).Name() != "pie-ecn" || newTestPIE(false).Name() != "pie" {
		t.Fatal("names")
	}
}

func TestPIEProbabilityRisesUnderPersistentDelay(t *testing.T) {
	p := newTestPIE(false)
	// Queue pinned at 10× target delay: 125e6 B/s × 10 ms = 1.25 MB.
	const qlen = 1250000
	now := sim.TimeZero
	for i := 0; i < 200; i++ {
		now = now.Add(time.Millisecond)
		p.OnArrival(now, qlen, pkt)
	}
	if p.Prob() < 0.05 {
		t.Fatalf("prob = %v after 200 ms of 10× target delay, want substantial", p.Prob())
	}
}

func TestPIEProbabilityDecaysWhenIdle(t *testing.T) {
	p := newTestPIE(false)
	now := sim.TimeZero
	const qlen = 1250000
	for i := 0; i < 200; i++ {
		now = now.Add(time.Millisecond)
		p.OnArrival(now, qlen, pkt)
	}
	high := p.Prob()
	for i := 0; i < 2000; i++ {
		now = now.Add(time.Millisecond)
		p.OnDeparture(now, 0)
	}
	if p.Prob() >= high/4 {
		t.Fatalf("prob %v did not decay from %v on an empty queue", p.Prob(), high)
	}
}

func TestPIEBurstProtection(t *testing.T) {
	p := newTestPIE(false)
	// Below half target and calm controller: always accept.
	for i := 0; i < 1000; i++ {
		if v := p.OnArrival(sim.Time(i)*1000, 10*pkt, pkt); v != Accept {
			t.Fatalf("verdict %v during small burst", v)
		}
	}
}

func TestPIEECNMarksBelowCapDropsAbove(t *testing.T) {
	p := newTestPIE(true)
	p.prob = 0.05 // below the 0.1 ECN cap
	marks, drops := 0, 0
	now := sim.TimeZero
	const qlen = 1250000
	for i := 0; i < 5000; i++ {
		now = now.Add(10 * time.Microsecond) // below TUpdate: prob frozen-ish
		switch p.OnArrival(now, qlen, pkt) {
		case AcceptMark:
			marks++
		case Drop:
			drops++
		}
		p.prob = 0.05
	}
	if marks == 0 || drops != 0 {
		t.Fatalf("below cap: marks=%d drops=%d, want marks only", marks, drops)
	}

	p2 := newTestPIE(true)
	p2.prob = 0.5 // above the cap: ECN mode still drops
	drops = 0
	for i := 0; i < 2000; i++ {
		if p2.OnArrival(sim.Time(i)*10000, qlen, pkt) == Drop {
			drops++
		}
		p2.prob = 0.5
	}
	if drops == 0 {
		t.Fatal("above cap: expected drops in ECN mode")
	}
}

func TestPIEReset(t *testing.T) {
	p := newTestPIE(false)
	now := sim.TimeZero
	for i := 0; i < 100; i++ {
		now = now.Add(time.Millisecond)
		p.OnArrival(now, 1250000, pkt)
	}
	p.Reset()
	if p.Prob() != 0 {
		t.Fatalf("prob after reset = %v", p.Prob())
	}
}

func TestPIEDefaults(t *testing.T) {
	p := &PIE{DrainRateBps: 125e6, Rand: rand.New(rand.NewSource(1))}
	if p.target() != 15*time.Millisecond || p.tUpdate() != 15*time.Millisecond {
		t.Fatal("RFC defaults")
	}
	if p.ecnCap() != 0.1 {
		t.Fatal("ecn cap default")
	}
	zero := &PIE{Rand: rand.New(rand.NewSource(1))}
	if zero.delay(1e6) != 0 {
		t.Fatal("delay without drain rate should be 0")
	}
}
