package aqm

import (
	"math/rand"
	"testing"

	"dtdctcp/internal/sim"
)

// Property: marking is monotone in queue depth. At any reachable policy
// state, if the marker marks an arrival at occupancy q it must also mark
// at any deeper occupancy, and if it accepts at q it must also accept at
// any shallower one. The probes run on value copies of the policy so the
// walked state advances only along the real trajectory.
func TestPropertyMarkingMonotoneInQueueDepth(t *testing.T) {
	cases := []struct {
		name string
		mk   func(rng *rand.Rand) Policy
	}{
		{"single", func(rng *rand.Rand) Policy {
			return NewSingleThreshold(rng.Intn(fuzzCap + 1))
		}},
		{"double-hysteresis", func(rng *rand.Rand) Policy {
			k2 := rng.Intn(fuzzCap)
			k1 := k2 + 1 + rng.Intn(fuzzCap-k2)
			return NewDoubleThreshold(k1, k2) // K1 > K2
		}},
		{"double-trend", func(rng *rand.Rand) Policy {
			k1 := rng.Intn(fuzzCap)
			k2 := k1 + rng.Intn(fuzzCap-k1+1)
			return NewDoubleThreshold(k1, k2) // K1 ≤ K2
		}},
	}
	// probe returns the verdict a value copy of the policy gives for an
	// arrival at qlen, leaving the original untouched.
	probe := func(p Policy, now sim.Time, qlen int) Verdict {
		switch v := p.(type) {
		case *SingleThreshold:
			cp := *v
			return cp.OnArrival(now, qlen, fuzzPkt)
		case *DoubleThreshold:
			cp := *v
			return cp.OnArrival(now, qlen, fuzzPkt)
		default:
			t.Fatalf("unexpected policy type %T", p)
			return 0
		}
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(0); seed < 50; seed++ {
				rng := rand.New(rand.NewSource(seed))
				p := tc.mk(rng)
				qlen := 0
				var now sim.Time
				for step := 0; step < 200; step++ {
					now += sim.Time(rng.Intn(1000) + 1)
					// Probe monotonicity around the current occupancy
					// before advancing the real state.
					deeper := qlen + (1+rng.Intn(20))*fuzzPkt
					shallower := qlen - (1+rng.Intn(20))*fuzzPkt
					if shallower < 0 {
						shallower = 0
					}
					got := probe(p, now, qlen)
					if got == AcceptMark {
						if dv := probe(p, now, deeper); dv != AcceptMark {
							t.Fatalf("seed %d step %d: marks at %d but not at deeper %d", seed, step, qlen, deeper)
						}
					}
					if got == Accept && shallower < qlen {
						if sv := probe(p, now, shallower); sv != Accept {
							t.Fatalf("seed %d step %d: accepts at %d but marks at shallower %d", seed, step, qlen, shallower)
						}
					}
					// Advance the real trajectory one arrival or departure.
					if rng.Intn(2) == 0 {
						v := p.OnArrival(now, qlen, fuzzPkt)
						if v != Drop && qlen+fuzzPkt <= fuzzCap {
							qlen += fuzzPkt
						}
					} else if qlen >= fuzzPkt {
						qlen -= fuzzPkt
						p.OnDeparture(now, qlen)
					}
				}
			}
		})
	}
}

// Metamorphic property: DT-DCTCP with K1 = K2 = K is *exactly* the
// single-threshold DCTCP marker — identical verdicts on every arrival of
// every trajectory, hysteresis degenerated away. This is the paper's own
// sanity condition: the double threshold generalizes DCTCP, it does not
// redefine it.
func TestPropertyDegenerateDTEqualsSingleThreshold(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(fuzzCap + 1)
		dt := NewDoubleThreshold(k, k)
		st := NewSingleThreshold(k)
		qlen := 0
		var now sim.Time
		for step := 0; step < 300; step++ {
			now += sim.Time(rng.Intn(1000) + 1)
			if rng.Intn(2) == 0 {
				vd := dt.OnArrival(now, qlen, fuzzPkt)
				vs := st.OnArrival(now, qlen, fuzzPkt)
				if vd != vs {
					t.Fatalf("seed %d step %d: K=%d qlen=%d: DT(K,K)=%v, single(K)=%v",
						seed, step, k, qlen, vd, vs)
				}
				if vd != Drop && qlen+fuzzPkt <= fuzzCap {
					qlen += fuzzPkt
				}
			} else if qlen >= fuzzPkt {
				qlen -= fuzzPkt
				dt.OnDeparture(now, qlen)
				st.OnDeparture(now, qlen)
			}
		}
	}
}

// Reset must restore the degenerate equivalence mid-stream too: a used
// then Reset policy behaves like a fresh one.
func TestPropertyResetRestoresFreshBehaviour(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		k1, k2 := rng.Intn(fuzzCap+1), rng.Intn(fuzzCap+1)
		used := NewDoubleThreshold(k1, k2)
		// Drive it through a random walk to scramble internal state.
		qlen := 0
		var now sim.Time
		for step := 0; step < 100; step++ {
			now += sim.Time(rng.Intn(100) + 1)
			if rng.Intn(2) == 0 {
				used.OnArrival(now, qlen, fuzzPkt)
				if qlen+fuzzPkt <= fuzzCap {
					qlen += fuzzPkt
				}
			} else if qlen >= fuzzPkt {
				qlen -= fuzzPkt
				used.OnDeparture(now, qlen)
			}
		}
		used.Reset()
		fresh := NewDoubleThreshold(k1, k2)
		// Identical post-Reset behaviour on a shared random trajectory.
		qlen = 0
		for step := 0; step < 100; step++ {
			now += sim.Time(rng.Intn(100) + 1)
			vu := used.OnArrival(now, qlen, fuzzPkt)
			vf := fresh.OnArrival(now, qlen, fuzzPkt)
			if vu != vf {
				t.Fatalf("trial %d step %d: K1=%d K2=%d qlen=%d: reset policy %v, fresh %v",
					trial, step, k1, k2, qlen, vu, vf)
			}
			if qlen+fuzzPkt <= fuzzCap {
				qlen += fuzzPkt
			} else {
				qlen = 0
			}
		}
	}
}
