package aqm

import (
	"math/rand"

	"dtdctcp/internal/sim"
)

// RED is the classic Random Early Detection queue law (Floyd/Jacobson),
// included as an additional baseline for the ablation benchmarks. It
// operates on the EWMA of the queue length: below MinTh nothing happens;
// between MinTh and MaxTh the arriving packet is marked (or dropped in
// drop mode) with probability growing linearly up to MaxP; above MaxTh
// every packet is marked/dropped.
type RED struct {
	// MinTh and MaxTh are the average-queue thresholds in bytes.
	MinTh, MaxTh int
	// MaxP is the marking probability at MaxTh.
	MaxP float64
	// Weight is the queue-average EWMA weight; zero selects 0.002, the
	// classic recommendation.
	Weight float64
	// ECN selects marking; when false RED drops instead.
	ECN bool
	// Rand supplies randomness; it must be set (the simulator passes
	// its seeded source) for deterministic runs.
	Rand *rand.Rand

	avg    float64
	seeded bool
	count  int // packets since last mark, for the uniformization term
}

// Name implements Policy.
func (p *RED) Name() string {
	if p.ECN {
		return "red-ecn"
	}
	return "red-drop"
}

// OnArrival implements Policy.
func (p *RED) OnArrival(_ sim.Time, qlenBytes, _ int) Verdict {
	assertOccupancy(qlenBytes)
	w := p.Weight
	if w <= 0 || w > 1 {
		w = 0.002
	}
	if !p.seeded {
		p.seeded = true
		p.avg = float64(qlenBytes)
	}
	p.avg += w * (float64(qlenBytes) - p.avg)

	switch {
	case p.avg < float64(p.MinTh):
		p.count = 0
		return Accept
	case p.avg >= float64(p.MaxTh):
		p.count = 0
		return p.congested()
	default:
		base := p.MaxP * (p.avg - float64(p.MinTh)) / float64(p.MaxTh-p.MinTh)
		// Uniformize inter-mark gaps (gentle variant of the classic
		// count correction, clamped to keep the probability valid).
		prob := base * float64(p.count+1)
		if prob > 1 {
			prob = 1
		}
		p.count++
		if p.Rand != nil && p.Rand.Float64() < prob {
			p.count = 0
			return p.congested()
		}
		return Accept
	}
}

// OnDeparture implements Policy.
func (*RED) OnDeparture(sim.Time, int) {}

// MarkSubstitutesDrop implements LossSubstituting: in ECN mode the mark
// replaces the drop the law would otherwise apply.
func (p *RED) MarkSubstitutesDrop() bool { return true }

// Reset implements Policy.
func (p *RED) Reset() {
	p.avg = 0
	p.seeded = false
	p.count = 0
}

// Avg exposes the current queue-length average for tests.
func (p *RED) Avg() float64 { return p.avg }

func (p *RED) congested() Verdict {
	if p.ECN {
		return AcceptMark
	}
	return Drop
}
