package chaos

import (
	"time"

	"dtdctcp/internal/netsim"
	"dtdctcp/internal/sim"
)

// defaultBurstBytes is the injected packet size when a burst event does
// not set packet_bytes.
const defaultBurstBytes = 1500

// burster injects background packets into one port with exponential
// inter-arrivals at a mean bit rate. Packets are pooled, carry
// BurstFlowID, and are addressed to the port's peer so they evaporate
// one hop downstream after loading the queue. The fire callback is
// prestored so steady-state injection does not allocate.
type burster struct {
	c    *Controller
	port *netsim.Port
	dst  netsim.NodeID
	size int
	// meanGap is the mean inter-arrival time at the target rate.
	meanGap time.Duration
	stop    sim.Time
	name    string

	fireFn func(any)
}

func (c *Controller) scheduleBurst(ev *Event, port *netsim.Port, at sim.Time) {
	size := ev.PacketBytes
	if size == 0 {
		size = defaultBurstBytes
	}
	gap := time.Duration(float64(size*8) / float64(ev.RateBps) * float64(time.Second))
	b := &burster{
		c:       c,
		port:    port,
		dst:     port.Peer().ID(),
		size:    size,
		meanGap: gap,
		stop:    at.Add(ev.For.Duration),
		name:    ev.Link,
	}
	b.fireFn = b.fire
	c.engine.Schedule(at, func() {
		c.executed++
		if c.trace != nil {
			c.trace.Burst(c.engine.Now(), true, b.name)
		}
		b.fire(nil)
	})
}

func (b *burster) fire(any) {
	now := b.c.engine.Now()
	if !now.Before(b.stop) {
		b.c.executed++
		if b.c.trace != nil {
			b.c.trace.Burst(now, false, b.name)
		}
		return
	}
	pkt := b.c.net.AllocPacket()
	pkt.Flow = b.c.burstFlow
	pkt.Dst = b.dst
	pkt.Size = b.size
	b.port.Send(pkt)
	// Exponential inter-arrival: a Poisson packet process at the mean
	// rate, drawn from the engine RNG at execution time.
	gap := time.Duration(b.c.engine.Rand().ExpFloat64() * float64(b.meanGap))
	if gap <= 0 {
		gap = time.Nanosecond
	}
	b.c.engine.AfterArg(gap, b.fireFn, nil)
}
