package chaos

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"dtdctcp/internal/netsim"
	"dtdctcp/internal/sim"
)

func testNet(t *testing.T, seed int64) (*sim.Engine, *netsim.Network, *netsim.Host, *netsim.Host, *netsim.Port) {
	t.Helper()
	e := sim.NewEngine(seed)
	n := netsim.NewNetwork(e)
	src := n.AddHost("src")
	dst := n.AddHost("dst")
	sw := n.AddSwitch("sw")
	acc := netsim.PortConfig{Rate: 100 * netsim.Mbps, Delay: 10 * time.Microsecond, Buffer: 1 << 20}
	bn := netsim.PortConfig{Rate: 10 * netsim.Mbps, Delay: 10 * time.Microsecond, Buffer: 1 << 20}
	if err := n.Connect(src, sw, acc, acc); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect(dst, sw, acc, bn); err != nil {
		t.Fatal(err)
	}
	if err := n.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	return e, n, src, dst, sw.PortTo(dst.ID())
}

type countSink struct{ n int }

func (s *countSink) Deliver(*netsim.Packet) { s.n++ }

func sendAt(e *sim.Engine, n *netsim.Network, dst *netsim.Host, at time.Duration) {
	e.Schedule(sim.FromDuration(at), func() {
		pkt := n.AllocPacket()
		pkt.Flow = 1
		pkt.Dst = dst.ID()
		pkt.Size = 1500
		n.Hosts()[0].Send(pkt)
	})
}

func TestParsePlanDurationsAndUnknownFields(t *testing.T) {
	const good = `{
		"name": "demo",
		"events": [
			{"at": "25ms", "kind": "link-down", "link": "bottleneck", "down_for": "2ms"},
			{"at": 30000000, "kind": "corrupt", "link": "bottleneck", "prob": 0.1, "for": "5ms"}
		]
	}`
	p, err := ParsePlan([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	if p.Events[0].At.Duration != 25*time.Millisecond {
		t.Fatalf("string duration parsed as %v", p.Events[0].At)
	}
	if p.Events[1].At.Duration != 30*time.Millisecond {
		t.Fatalf("numeric nanoseconds parsed as %v", p.Events[1].At)
	}

	if _, err := ParsePlan([]byte(`{"name":"x","events":[{"at":"1ms","kind":"link-up","link":"l","typo":1}]}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ParsePlan([]byte(`{"name":"x","events":[{"at":"1ms","kind":"meteor","link":"l"}]}`)); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := ParsePlan([]byte(`{"events":[]}`)); err == nil {
		t.Fatal("unnamed plan accepted")
	}
	if _, err := ParsePlan([]byte(`{"name":"x","events":[{"at":"1ms","kind":"flap","link":"l","count":3,"down_for":"2ms","every":"1ms"}]}`)); err == nil {
		t.Fatal("flap with every <= down_for accepted")
	}
}

func TestPlanRoundTrip(t *testing.T) {
	p, err := Profile("flappy")
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParsePlan(data)
	if err != nil {
		t.Fatalf("re-parse of marshalled profile: %v\n%s", err, data)
	}
	if back.Events[0].Every != p.Events[0].Every || back.Events[0].Jitter != p.Events[0].Jitter {
		t.Fatalf("round trip mutated the plan: %+v vs %+v", back.Events[0], p.Events[0])
	}
}

func TestProfilesAllValidAndSorted(t *testing.T) {
	names := Profiles()
	if len(names) < 5 {
		t.Fatalf("only %d built-in profiles", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Profiles() not sorted: %v", names)
		}
	}
	for _, name := range names {
		p, err := Profile(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("profile %q invalid: %v", name, err)
		}
		if p.Span() <= 0 {
			t.Fatalf("profile %q has zero span", name)
		}
	}
	if _, err := Profile("no-such"); err == nil {
		t.Fatal("unknown profile accepted")
	}
	// Fresh copies: mutating one must not leak into the next.
	a, _ := Profile("blackout")
	a.Events[0].At = D(time.Hour)
	b, _ := Profile("blackout")
	if b.Events[0].At.Duration == time.Hour {
		t.Fatal("Profile returns shared state")
	}
}

func TestFaultWindow(t *testing.T) {
	p := &Plan{Name: "w", Events: []Event{
		{At: D(30 * time.Millisecond), Kind: KindLinkUp, Link: "l"},
		{At: D(25 * time.Millisecond), Kind: KindLinkDown, Link: "l", DownFor: D(2 * time.Millisecond)},
		{At: D(20 * time.Millisecond), Kind: KindCorrupt, Link: "l", Prob: 0.1, For: D(15 * time.Millisecond)},
	}}
	start, end, ok := p.FaultWindow()
	if !ok || start != 20*time.Millisecond || end != 35*time.Millisecond {
		t.Fatalf("FaultWindow = %v, %v, %v", start, end, ok)
	}
	if _, _, ok := (&Plan{Name: "e"}).FaultWindow(); ok {
		t.Fatal("empty plan reported a window")
	}
}

func TestControllerUnboundLinkFails(t *testing.T) {
	_, n, _, _, port := testNet(t, 1)
	plan := &Plan{Name: "p", Events: []Event{
		{At: D(time.Millisecond), Kind: KindLinkUp, Link: "nowhere"},
	}}
	c := NewController(n, plan)
	c.BindLink("bottleneck", port)
	err := c.Apply()
	if err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Fatalf("Apply = %v, want unbound-link error", err)
	}
}

func TestControllerOutageDropsAndRecovers(t *testing.T) {
	e, n, _, dst, port := testNet(t, 1)
	sink := &countSink{}
	dst.Register(1, sink)

	plan := &Plan{Name: "p", Events: []Event{
		{At: D(5 * time.Millisecond), Kind: KindLinkDown, Link: "bottleneck",
			DownFor: D(5 * time.Millisecond), Flush: true},
	}}
	c := NewController(n, plan)
	c.BindLink("bottleneck", port)
	if err := c.Apply(); err != nil {
		t.Fatal(err)
	}
	// One packet before the outage, one during (dropped on arrival), one
	// after recovery.
	sendAt(e, n, dst, 1*time.Millisecond)
	sendAt(e, n, dst, 7*time.Millisecond)
	sendAt(e, n, dst, 12*time.Millisecond)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sink.n != 2 {
		t.Fatalf("delivered %d, want 2 (before + after outage)", sink.n)
	}
	if port.Stats().DroppedLinkDown != 1 {
		t.Fatalf("DroppedLinkDown = %d, want 1", port.Stats().DroppedLinkDown)
	}
	if port.Down() {
		t.Fatal("port still down after down_for elapsed")
	}
}

// runFlapFingerprint runs the flappy profile against a stream of packets
// and fingerprints the outcome.
func runFlapFingerprint(t *testing.T, seed int64) [4]uint64 {
	e, n, _, dst, port := testNet(t, seed)
	sink := &countSink{}
	dst.Register(1, sink)

	plan, err := Profile("flappy")
	if err != nil {
		t.Fatal(err)
	}
	// Pull the flap forward so it overlaps the traffic.
	plan.Events[0].At = D(2 * time.Millisecond)
	c := NewController(n, plan)
	c.BindLink("bottleneck", port)
	if err := c.Apply(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		sendAt(e, n, dst, time.Duration(i)*200*time.Microsecond)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	st := port.Stats()
	return [4]uint64{uint64(sink.n), st.DroppedLinkDown, st.Dequeued, uint64(e.Now())}
}

func TestFlapJitterDeterministic(t *testing.T) {
	a := runFlapFingerprint(t, 42)
	b := runFlapFingerprint(t, 42)
	if a != b {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	cDiff := runFlapFingerprint(t, 43)
	if a == cDiff {
		t.Fatal("different seed produced identical run; jitter draws look disconnected from the engine RNG")
	}
	if a[1] == 0 {
		t.Fatal("flap plan dropped nothing; outage never overlapped traffic")
	}
}

func TestBurstLoadsQueueAndEvaporates(t *testing.T) {
	e, n, _, dst, port := testNet(t, 7)
	sink := &countSink{}
	dst.Register(1, sink)

	plan := &Plan{Name: "b", Events: []Event{
		// 10 Mbps of background onto a 10 Mbps link for 10 ms ≈ 8 pkts.
		{At: D(time.Millisecond), Kind: KindBurst, Link: "bottleneck",
			RateBps: 10_000_000, For: D(10 * time.Millisecond), PacketBytes: 1500},
	}}
	c := NewController(n, plan)
	c.BindLink("bottleneck", port)
	if err := c.Apply(); err != nil {
		t.Fatal(err)
	}
	sendAt(e, n, dst, 5*time.Millisecond)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sink.n != 1 {
		t.Fatalf("real traffic delivered %d, want 1", sink.n)
	}
	if dst.DroppedNoFlow() == 0 {
		t.Fatal("no burst packets evaporated at the receiver; injector never fired")
	}
	if port.Stats().Enqueued+port.Stats().Dequeued == 0 {
		t.Fatal("burst never touched the port")
	}
}
