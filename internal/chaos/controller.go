package chaos

import (
	"fmt"
	"sort"
	"time"

	"dtdctcp/internal/netsim"
	"dtdctcp/internal/sim"
)

// Tracer is the optional event sink for controller-originated chaos
// events (burst start/stop and setting changes). trace.Recorder
// satisfies it; port-level fault events (link state, drops) flow through
// netsim.FaultTracer on the port's own tracer instead, so nothing is
// reported twice.
type Tracer interface {
	// Burst records an injector switching on (start=true) or off.
	Burst(now sim.Time, start bool, name string)
	// Custom records a named scalar sample.
	Custom(now sim.Time, name string, value float64)
}

// Controller binds a Plan's link names to concrete ports and schedules
// the plan's events on the network's engine. All randomness (flap
// jitter, burst inter-arrivals) is drawn from the engine's RNG at event
// execution time, preserving the determinism contract.
type Controller struct {
	net    *netsim.Network
	engine *sim.Engine
	plan   *Plan
	links  map[string]*netsim.Port
	trace  Tracer
	// burstFlow is the flow ID stamped on injected packets; hosts have
	// no endpoint for it, so they evaporate one hop downstream.
	burstFlow netsim.FlowID
	// executed counts plan actions that have actually fired (each flap
	// transition and burst toggle counts individually).
	executed uint64
}

// BurstFlowID is the reserved flow carried by injected background
// packets. No endpoint registers it, so burst traffic occupies queues
// and then evaporates at the first host (or routeless switch) it hits.
const BurstFlowID netsim.FlowID = -1

// NewController creates a controller for plan over net's engine.
func NewController(net *netsim.Network, plan *Plan) *Controller {
	return &Controller{
		net:       net,
		engine:    net.Engine(),
		plan:      plan,
		links:     make(map[string]*netsim.Port),
		burstFlow: BurstFlowID,
	}
}

// BindLink names a port for the plan's events to target.
func (c *Controller) BindLink(name string, p *netsim.Port) {
	c.links[name] = p
}

// SetTrace attaches a sink for controller-originated events.
func (c *Controller) SetTrace(t Tracer) { c.trace = t }

// Apply validates the plan, resolves every link reference, and schedules
// all events. It must be called before the engine runs (or at least
// before the earliest event time).
func (c *Controller) Apply() error {
	if c.plan == nil {
		return nil
	}
	if err := c.plan.Validate(); err != nil {
		return err
	}
	// Resolve all links up front so a dangling name fails at Apply time,
	// not mid-run. Iterate events (slice order), not the map.
	for i := range c.plan.Events {
		ev := &c.plan.Events[i]
		if _, ok := c.links[ev.Link]; !ok {
			return fmt.Errorf("chaos: plan %q event %d: link %q not bound (have %v)",
				c.plan.Name, i, ev.Link, c.linkNames())
		}
	}
	for i := range c.plan.Events {
		c.schedule(&c.plan.Events[i])
	}
	return nil
}

// linkNames returns the bound link names sorted, for error messages.
func (c *Controller) linkNames() []string {
	names := make([]string, 0, len(c.links))
	for name := range c.links {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func (c *Controller) schedule(ev *Event) {
	port := c.links[ev.Link]
	at := sim.FromDuration(ev.At.Duration)
	switch ev.Kind {
	case KindLinkDown:
		flush := ev.Flush
		c.engine.Schedule(at, func() {
			c.executed++
			port.SetDown(true, flush)
		})
		if d := ev.DownFor.Duration; d > 0 {
			c.engine.Schedule(at.Add(d), func() {
				c.executed++
				port.SetDown(false, false)
			})
		}
	case KindLinkUp:
		c.engine.Schedule(at, func() {
			c.executed++
			port.SetDown(false, false)
		})
	case KindFlap:
		f := &flapper{
			c:       c,
			port:    port,
			every:   ev.Every.Duration,
			downFor: ev.DownFor.Duration,
			jitter:  ev.Jitter,
			left:    ev.Count,
			flush:   ev.Flush,
		}
		f.downFn = f.down
		f.upFn = f.up
		c.engine.ScheduleArg(at, f.downFn, nil)
	case KindSetRate:
		rate := netsim.Rate(ev.RateBps)
		c.engine.Schedule(at, func() {
			c.executed++
			port.SetRate(rate)
			c.custom("chaos-set-rate", float64(rate))
		})
	case KindScaleRate:
		factor := ev.Factor
		c.engine.Schedule(at, func() {
			c.executed++
			r := netsim.Rate(float64(port.Rate()) * factor)
			port.SetRate(r)
			c.custom("chaos-set-rate", float64(r))
		})
	case KindSetDelay:
		d := ev.Delay.Duration
		c.engine.Schedule(at, func() {
			c.executed++
			port.SetDelay(d)
			c.custom("chaos-set-delay", d.Seconds())
		})
	case KindSetBuffer:
		b := ev.BufferBytes
		c.engine.Schedule(at, func() {
			c.executed++
			port.SetBuffer(b)
			c.custom("chaos-set-buffer", float64(b))
		})
	case KindCorrupt:
		prob := ev.Prob
		c.engine.Schedule(at, func() {
			c.executed++
			port.SetCorruptProb(prob)
			c.custom("chaos-corrupt-prob", prob)
		})
		if d := ev.For.Duration; d > 0 {
			c.engine.Schedule(at.Add(d), func() {
				c.executed++
				port.SetCorruptProb(0)
				c.custom("chaos-corrupt-prob", 0)
			})
		}
	case KindBurst:
		c.scheduleBurst(ev, port, at)
	}
}

// Executed reports the number of plan actions that have fired so far
// (each flap transition and burst start/stop counts individually;
// individual burst packets do not).
func (c *Controller) Executed() uint64 { return c.executed }

func (c *Controller) custom(name string, v float64) {
	if c.trace != nil {
		c.trace.Custom(c.engine.Now(), name, v)
	}
}

// flapper drives one flap event's down/up cycles. Its callbacks are
// prestored func(any) values so rescheduling itself does not allocate
// closures in steady state.
type flapper struct {
	c       *Controller
	port    *netsim.Port
	every   time.Duration
	downFor time.Duration
	jitter  float64
	left    int
	flush   bool

	downFn func(any)
	upFn   func(any)
}

// jittered stretches or shrinks d by up to ±jitter, drawing from the
// engine RNG at call time so the draw order follows virtual time.
func (f *flapper) jittered(d time.Duration) time.Duration {
	if f.jitter == 0 {
		return d
	}
	u := f.c.engine.Rand().Float64()*2 - 1 // [-1, 1)
	j := time.Duration(float64(d) * (1 + f.jitter*u))
	if j < 0 {
		j = 0
	}
	return j
}

func (f *flapper) down(any) {
	f.c.executed++
	f.port.SetDown(true, f.flush)
	f.c.engine.AfterArg(f.jittered(f.downFor), f.upFn, nil)
}

func (f *flapper) up(any) {
	f.c.executed++
	f.port.SetDown(false, false)
	f.left--
	if f.left > 0 {
		f.c.engine.AfterArg(f.jittered(f.every-f.downFor), f.downFn, nil)
	}
}
