package chaos

import (
	"encoding/json"
	"testing"
)

// FuzzPlanJSON drives the plan parser with arbitrary bytes: it must
// never panic, and any plan it accepts must validate, survive a
// marshal/parse round trip, and report a non-negative span.
func FuzzPlanJSON(f *testing.F) {
	f.Add([]byte(`{"name":"p","events":[{"at":"25ms","kind":"link-down","link":"bottleneck","down_for":"2ms"}]}`))
	f.Add([]byte(`{"name":"p","events":[{"at":"1ms","kind":"flap","link":"l","every":"2ms","down_for":"400us","count":5,"jitter":0.2,"flush":true}]}`))
	f.Add([]byte(`{"name":"p","events":[{"at":"1ms","kind":"burst","link":"l","rate_bps":5000000000,"for":"5ms","packet_bytes":1500}]}`))
	f.Add([]byte(`{"name":"p","events":[{"at":1000000,"kind":"corrupt","link":"l","prob":0.5,"for":"1ms"}]}`))
	f.Add([]byte(`{"name":"p","events":[{"at":"0s","kind":"set-buffer","link":"l","buffer_bytes":60000}]}`))
	f.Add([]byte(`{"name":"","events":null}`))
	f.Add([]byte(`not json`))
	for _, name := range Profiles() {
		p, err := Profile(name)
		if err != nil {
			f.Fatal(err)
		}
		data, err := json.Marshal(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParsePlan(data)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("ParsePlan accepted a plan Validate rejects: %v", err)
		}
		if p.Span() < 0 {
			t.Fatalf("negative span %v", p.Span())
		}
		out, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("marshal of accepted plan failed: %v", err)
		}
		if _, err := ParsePlan(out); err != nil {
			t.Fatalf("round trip rejected: %v\n%s", err, out)
		}
	})
}
