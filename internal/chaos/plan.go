// Package chaos is the simulator's fault-injection and network-dynamics
// layer. A Plan is a declarative, JSON-loadable schedule of events —
// link outages and flapping, runtime capacity/delay/buffer changes,
// probabilistic corruption windows, and bursty background-traffic
// injectors — applied to named links of a running netsim topology by a
// Controller.
//
// Determinism is the package's contract: every random draw (flap jitter,
// burst inter-arrival times, corruption decisions) comes from the
// engine's single seeded *rand.Rand, and draws happen at event execution
// time in virtual-time order, so the same seed + plan yields
// byte-identical runs regardless of wall-clock or worker count.
package chaos

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"
)

// Duration wraps time.Duration with human-readable JSON: it marshals as
// a Go duration string ("5ms") and unmarshals from either a string or a
// number of nanoseconds.
type Duration struct {
	time.Duration
}

// D builds a Duration from a time.Duration.
func D(d time.Duration) Duration { return Duration{d} }

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(d.String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch x := v.(type) {
	case string:
		dd, err := time.ParseDuration(x)
		if err != nil {
			return fmt.Errorf("chaos: bad duration %q: %w", x, err)
		}
		d.Duration = dd
	case float64:
		d.Duration = time.Duration(x)
	default:
		return fmt.Errorf("chaos: duration must be a string or nanoseconds, got %T", v)
	}
	return nil
}

// Event kinds understood by the Controller.
const (
	// KindLinkDown takes a link down at At. Flush discards the queue;
	// otherwise it drains after the link returns. DownFor, when set,
	// schedules the matching link-up automatically.
	KindLinkDown = "link-down"
	// KindLinkUp brings a link back up at At.
	KindLinkUp = "link-up"
	// KindFlap runs Count down/up cycles starting at At: down for
	// DownFor, then up until the next cycle begins Every after the
	// previous one. Jitter (0..1) randomizes each interval by up to
	// ±Jitter of its nominal length using the engine RNG.
	KindFlap = "flap"
	// KindSetRate changes a link's capacity to RateBps at At.
	KindSetRate = "set-rate"
	// KindScaleRate multiplies a link's capacity by Factor at At.
	KindScaleRate = "scale-rate"
	// KindSetDelay changes a link's propagation delay to Delay at At.
	KindSetDelay = "set-delay"
	// KindSetBuffer resizes a link's buffer to BufferBytes at At;
	// shrinking drops the newest queued packets.
	KindSetBuffer = "set-buffer"
	// KindCorrupt sets a link's post-serialization corruption
	// probability to Prob at At; For, when set, restores 0 afterwards.
	KindCorrupt = "corrupt"
	// KindBurst injects background traffic into a link from At for For:
	// PacketBytes-sized packets at mean rate RateBps with exponential
	// inter-arrivals drawn from the engine RNG. The packets carry an
	// unroutable background flow and evaporate one hop downstream.
	KindBurst = "burst"
)

// Event is one scheduled perturbation. Which fields are meaningful
// depends on Kind; Validate enforces the per-kind requirements.
type Event struct {
	// At is the virtual time the event fires.
	At Duration `json:"at"`
	// Kind selects the perturbation (see the Kind* constants).
	Kind string `json:"kind"`
	// Link names the target link, resolved via Controller.BindLink.
	Link string `json:"link"`

	// Flush, for link-down/flap: discard the queue instead of holding it.
	Flush bool `json:"flush,omitempty"`
	// DownFor, for link-down/flap: how long the link stays down.
	DownFor Duration `json:"down_for,omitempty"`
	// Every, for flap: nominal cycle period (down edge to down edge).
	Every Duration `json:"every,omitempty"`
	// Count, for flap: number of down/up cycles.
	Count int `json:"count,omitempty"`
	// Jitter, for flap: fractional randomization (0..1) of intervals.
	Jitter float64 `json:"jitter,omitempty"`

	// RateBps, for set-rate/burst: bits per second.
	RateBps int64 `json:"rate_bps,omitempty"`
	// Factor, for scale-rate: multiplier on the current rate.
	Factor float64 `json:"factor,omitempty"`
	// Delay, for set-delay: new propagation delay.
	Delay Duration `json:"delay,omitempty"`
	// BufferBytes, for set-buffer: new buffer size.
	BufferBytes int `json:"buffer_bytes,omitempty"`

	// Prob, for corrupt: per-packet corruption probability in [0,1].
	Prob float64 `json:"prob,omitempty"`
	// For, for corrupt/burst: how long the window lasts.
	For Duration `json:"for,omitempty"`
	// PacketBytes, for burst: injected packet size (default 1500).
	PacketBytes int `json:"packet_bytes,omitempty"`
}

// Plan is a named schedule of chaos events.
type Plan struct {
	// Name identifies the plan (profile registry key, output label).
	Name string `json:"name"`
	// Description is a one-line human summary.
	Description string `json:"description,omitempty"`
	// Events fire in their listed order at their At times.
	Events []Event `json:"events"`
}

// Validate checks every event for per-kind completeness and bounds.
func (p *Plan) Validate() error {
	if p.Name == "" {
		return errors.New("chaos: plan needs a name")
	}
	for i := range p.Events {
		if err := p.Events[i].validate(); err != nil {
			return fmt.Errorf("chaos: plan %q event %d: %w", p.Name, i, err)
		}
	}
	return nil
}

func (ev *Event) validate() error {
	if ev.At.Duration < 0 {
		return errors.New("negative at")
	}
	if ev.Link == "" {
		return errors.New("missing link")
	}
	switch ev.Kind {
	case KindLinkDown:
		if ev.DownFor.Duration < 0 {
			return errors.New("negative down_for")
		}
	case KindLinkUp:
		// At + Link suffice.
	case KindFlap:
		if ev.Count <= 0 {
			return errors.New("flap needs count > 0")
		}
		if ev.DownFor.Duration <= 0 {
			return errors.New("flap needs down_for > 0")
		}
		if ev.Every.Duration <= ev.DownFor.Duration {
			return errors.New("flap needs every > down_for")
		}
		if ev.Jitter < 0 || ev.Jitter >= 1 {
			return errors.New("flap jitter must be in [0,1)")
		}
	case KindSetRate:
		if ev.RateBps <= 0 {
			return errors.New("set-rate needs rate_bps > 0")
		}
	case KindScaleRate:
		if ev.Factor <= 0 {
			return errors.New("scale-rate needs factor > 0")
		}
	case KindSetDelay:
		if ev.Delay.Duration < 0 {
			return errors.New("negative delay")
		}
	case KindSetBuffer:
		if ev.BufferBytes <= 0 {
			return errors.New("set-buffer needs buffer_bytes > 0")
		}
	case KindCorrupt:
		if ev.Prob < 0 || ev.Prob > 1 {
			return errors.New("corrupt prob must be in [0,1]")
		}
		if ev.For.Duration < 0 {
			return errors.New("negative for")
		}
	case KindBurst:
		if ev.RateBps <= 0 {
			return errors.New("burst needs rate_bps > 0")
		}
		if ev.For.Duration <= 0 {
			return errors.New("burst needs for > 0")
		}
		if ev.PacketBytes < 0 {
			return errors.New("negative packet_bytes")
		}
	default:
		return fmt.Errorf("unknown kind %q", ev.Kind)
	}
	return nil
}

// ParsePlan decodes and validates a JSON plan. Unknown fields are
// rejected so typos in hand-written plans fail loudly.
func ParsePlan(data []byte) (*Plan, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("chaos: parse plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// LoadPlan reads and parses a plan file.
func LoadPlan(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	return ParsePlan(data)
}

// Span returns the latest virtual time the plan can still be acting:
// the maximum over events of At plus any window the event opens
// (down_for, flap cycles, corruption/burst windows).
func (p *Plan) Span() time.Duration {
	var span time.Duration
	for i := range p.Events {
		ev := &p.Events[i]
		end := ev.At.Duration
		switch ev.Kind {
		case KindLinkDown:
			end += ev.DownFor.Duration
		case KindFlap:
			// Jitter can stretch each interval by up to (1+Jitter)×.
			nominal := time.Duration(float64(ev.Every.Duration) * float64(ev.Count) * (1 + ev.Jitter))
			end += nominal
		case KindCorrupt, KindBurst:
			end += ev.For.Duration
		}
		if end > span {
			span = end
		}
	}
	return span
}

// FaultWindow returns the earliest event time and the plan's Span — the
// interval callers should treat as "under fault" when computing
// recovery metrics. ok is false for an empty plan.
func (p *Plan) FaultWindow() (start, end time.Duration, ok bool) {
	if len(p.Events) == 0 {
		return 0, 0, false
	}
	start = p.Events[0].At.Duration
	for i := range p.Events {
		if at := p.Events[i].At.Duration; at < start {
			start = at
		}
	}
	return start, p.Span(), true
}
