package chaos

import (
	"fmt"
	"sort"
	"time"
)

// Built-in profiles are timed for the standard chaos dumbbell used by
// cmd/dtchaos and the core chaos tests: 10 Gbps bottleneck, 100 µs RTT,
// 250×1500 B buffer, 10 ms warmup + 40 ms measured, with the fault
// landing around t = 25 ms so there is steady state on both sides of it.
// Event times are absolute virtual times (warmup included). All target
// the link name "bottleneck".

// profileBuilders maps profile name → constructor. Constructors return a
// fresh Plan each call so callers can mutate their copy freely.
var profileBuilders = map[string]func() *Plan{
	"blackout": func() *Plan {
		return &Plan{
			Name:        "blackout",
			Description: "bottleneck dies for 2 ms in drain mode: queued packets survive, in-flight and arrivals are lost",
			Events: []Event{
				{At: D(25 * time.Millisecond), Kind: KindLinkDown, Link: "bottleneck", DownFor: D(2 * time.Millisecond)},
			},
		}
	},
	"flappy": func() *Plan {
		return &Plan{
			Name:        "flappy",
			Description: "five 400 µs outages 2 ms apart with 20% jitter, flushing the queue each time",
			Events: []Event{
				{At: D(22 * time.Millisecond), Kind: KindFlap, Link: "bottleneck",
					Every: D(2 * time.Millisecond), DownFor: D(400 * time.Microsecond),
					Count: 5, Jitter: 0.2, Flush: true},
			},
		}
	},
	"degrade": func() *Plan {
		return &Plan{
			Name:        "degrade",
			Description: "bottleneck capacity drops to 40% for 10 ms, then renegotiates back",
			Events: []Event{
				{At: D(25 * time.Millisecond), Kind: KindScaleRate, Link: "bottleneck", Factor: 0.4},
				{At: D(35 * time.Millisecond), Kind: KindScaleRate, Link: "bottleneck", Factor: 2.5},
			},
		}
	},
	"squeeze": func() *Plan {
		return &Plan{
			Name:        "squeeze",
			Description: "bottleneck buffer shrinks 250 → 40 packets for 10 ms (newest queued packets dropped), then grows back",
			Events: []Event{
				{At: D(25 * time.Millisecond), Kind: KindSetBuffer, Link: "bottleneck", BufferBytes: 40 * 1500},
				{At: D(35 * time.Millisecond), Kind: KindSetBuffer, Link: "bottleneck", BufferBytes: 250 * 1500},
			},
		}
	},
	"burst": func() *Plan {
		return &Plan{
			Name:        "burst",
			Description: "5 ms Poisson background burst at half line rate competes for the bottleneck queue",
			Events: []Event{
				{At: D(25 * time.Millisecond), Kind: KindBurst, Link: "bottleneck",
					RateBps: 5_000_000_000, For: D(5 * time.Millisecond), PacketBytes: 1500},
			},
		}
	},
	"lossy": func() *Plan {
		return &Plan{
			Name:        "lossy",
			Description: "0.5% post-serialization corruption for 10 ms: loss the marking law never sees",
			Events: []Event{
				{At: D(25 * time.Millisecond), Kind: KindCorrupt, Link: "bottleneck",
					Prob: 0.005, For: D(10 * time.Millisecond)},
			},
		}
	},
}

// Profiles lists the built-in profile names in sorted order.
func Profiles() []string {
	names := make([]string, 0, len(profileBuilders))
	for name := range profileBuilders {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Profile returns a fresh copy of a built-in plan by name.
func Profile(name string) (*Plan, error) {
	b, ok := profileBuilders[name]
	if !ok {
		return nil, fmt.Errorf("chaos: unknown profile %q (have %v)", name, Profiles())
	}
	return b(), nil
}
