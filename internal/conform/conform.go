// Package conform cross-validates the repo's three independent
// machineries against each other: the packet-level simulator
// (internal/netsim + internal/tcp, driven through core.RunDumbbell), the
// Alizadeh fluid model (internal/fluid), and the describing-function
// limit-cycle analysis (internal/control). The paper's claims rest on
// these agreeing — the analysis predicts the oscillation the simulator
// measures, the fluid model reproduces its mechanism — yet each is a
// separate implementation that can drift independently. This package
// turns the paper's cross-checks into permanent scenario tables with
// declared tolerances, plus a golden-run digest suite that pins the
// simulator's determinism byte-for-byte.
//
// Two parameter units are deliberate (DESIGN.md, judgment call 1): the
// fluid model integrates in the *physical* packet unit (C = rate /
// packet size), so its queue trajectory is directly comparable to the
// simulator's; the describing-function analysis uses the *paper's*
// 1000-bit packet unit, the only unit under which Fig. 9's onsets come
// out of Eqs. (19)/(24).
package conform

import (
	"fmt"
	"time"

	"dtdctcp/internal/core"
	"dtdctcp/internal/netsim"
)

// Tolerances declares how closely two machineries must agree on one
// scenario. Ratio bounds compare sim/reference; absolute+relative bounds
// compare queue means. The bands are wide by design: the fluid model is
// a continuous approximation of an integer-window, delayed-feedback
// packet system, and the describing function keeps only the fundamental
// harmonic — agreement on scale and ordering is the reproduction claim,
// not digit-for-digit equality.
type Tolerances struct {
	// QueueMeanAbsPkts and QueueMeanRel bound the sim-vs-fluid
	// steady-state queue mean: |sim − fluid| ≤ Abs + Rel·fluid.
	QueueMeanAbsPkts float64
	QueueMeanRel     float64
	// StdDevRatioLo/Hi bound sim σ / fluid σ, the Fig. 11 quantity.
	StdDevRatioLo, StdDevRatioHi float64
	// PeriodRatioLo/Hi bound sim period / fluid period, both estimated
	// by the same autocorrelation estimator (stats.EstimatePeriod).
	PeriodRatioLo, PeriodRatioHi float64
	// DFPeriodRatioLo/Hi bound sim period / describing-function
	// limit-cycle period when the analysis predicts a cycle.
	DFPeriodRatioLo, DFPeriodRatioHi float64
	// DFAmpRatioLo/Hi bound the simulator's sinusoid-equivalent
	// amplitude (√2·σ) against the predicted limit-cycle amplitude X.
	DFAmpRatioLo, DFAmpRatioHi float64
	// MinConfidence is the autocorrelation confidence below which a
	// period comparison is skipped rather than failed: with no credible
	// periodicity the estimator's lag is noise, not a measurement.
	MinConfidence float64
}

// DefaultTolerances is the band used by the standard grid; individual
// scenarios override fields where a regime is known to be harder (e.g.
// near the stability onset the sim's oscillation is weak and ragged).
func DefaultTolerances() Tolerances {
	return Tolerances{
		QueueMeanAbsPkts: 15,
		QueueMeanRel:     0.35,
		StdDevRatioLo:    0.25,
		StdDevRatioHi:    4.5,
		PeriodRatioLo:    0.4,
		PeriodRatioHi:    2.5,
		DFPeriodRatioLo:  0.4,
		DFPeriodRatioHi:  2.5,
		DFAmpRatioLo:     0.25,
		DFAmpRatioHi:     1.25,
		MinConfidence:    0.30,
	}
}

// Scenario is one matched configuration handed to all three machineries.
type Scenario struct {
	// Name identifies the scenario in reports and golden files.
	Name string
	// Protocol selects the marker and endpoints (DCTCP or DT-DCTCP for
	// conformance; the analyses need an ECN marker).
	Protocol core.Protocol
	// Flows is N.
	Flows int
	// Rate is the bottleneck speed.
	Rate netsim.Rate
	// RTT is the zero-queue round-trip time.
	RTT time.Duration
	// BufferPkts is the bottleneck buffer in packets.
	BufferPkts int
	// Warmup and Duration are the simulator's settling and measurement
	// intervals; the fluid model integrates for Warmup+Duration and
	// summarizes its second half.
	Warmup, Duration time.Duration
	// Seed drives the simulator's randomness.
	Seed int64
	// Tol is this scenario's agreement band.
	Tol Tolerances
}

// simConfig maps the scenario onto the packet simulator.
func (s Scenario) simConfig() core.DumbbellConfig {
	return core.DumbbellConfig{
		Protocol:         s.Protocol,
		Flows:            s.Flows,
		Rate:             s.Rate,
		RTT:              s.RTT,
		BufferPkts:       s.BufferPkts,
		Duration:         s.Duration,
		Warmup:           s.Warmup,
		QueueSampleEvery: s.RTT / 5,
		Seed:             s.Seed,
	}
}

// FluidParams returns the physical-unit analysis parameters: C in
// packets of the protocol's wire size per second.
func (s Scenario) FluidParams() core.AnalysisParams {
	return core.AnalysisParams{
		CapacityPktsPerSec: s.Rate.BytesPerSecond() / float64(s.Protocol.PacketSize()),
		RTT:                s.RTT.Seconds(),
		G:                  s.Protocol.TCP.G,
	}
}

// DFParams returns the paper-unit analysis parameters: C in 1000-bit
// packets per second (10 Gbps → 10⁷ pkts/s), the unit Fig. 9 is stated
// in. See DESIGN.md, judgment call 1.
func (s Scenario) DFParams() core.AnalysisParams {
	return core.AnalysisParams{
		CapacityPktsPerSec: float64(s.Rate) / 1000,
		RTT:                s.RTT.Seconds(),
		G:                  s.Protocol.TCP.G,
	}
}

// paperScenario is the grid's base point: the paper's Section VI-A
// simulation setup (10 Gbps, 100 µs, 600-packet buffer, g = 1/16).
func paperScenario(name string, p core.Protocol, flows int) Scenario {
	return Scenario{
		Name:       name,
		Protocol:   p,
		Flows:      flows,
		Rate:       10 * netsim.Gbps,
		RTT:        100 * time.Microsecond,
		BufferPkts: 600,
		Warmup:     15 * time.Millisecond,
		Duration:   60 * time.Millisecond,
		Seed:       1,
		Tol:        DefaultTolerances(),
	}
}

// Grid returns the full conformance grid: flow counts across the stable
// and oscillatory regimes, both protocols, threshold variations, and RTT
// variations — every point a matched (sim, fluid, DF) triple.
//
// Regime notes baked into the grid: the fluid model's relay regime ends
// where the saturated equilibrium q₀ = 2N − CD rises above the highest
// threshold (N ≈ 62 for K = 40 at 10 Gbps; TestSaturatedEquilibriumAtLargeN),
// so sim-vs-fluid period checks concentrate on N ≤ 60; the simulator's
// oscillation onset is N ≈ 38 for DCTCP and N ≈ 67 for DT-DCTCP
// (EXPERIMENTS.md, Fig. 9), so DF-vs-sim cycle checks live above those.
func Grid() []Scenario {
	g := 1.0 / 16
	var out []Scenario
	// DCTCP flow sweep over the paper's K = 40.
	for _, n := range []int{20, 40, 50, 60, 80} {
		out = append(out, paperScenario(fmt.Sprintf("dctcp-k40-n%d", n), core.DCTCP(40, g), n))
	}
	// DT-DCTCP flow sweep over the paper's K1 = 30 / K2 = 50.
	for _, n := range []int{20, 40, 60, 80} {
		out = append(out, paperScenario(fmt.Sprintf("dt3050-n%d", n), core.DTDCTCP(30, 50, g), n))
	}
	// Threshold variations at a fixed mid-grid flow count.
	out = append(out,
		paperScenario("dctcp-k25-n40", core.DCTCP(25, g), 40),
		paperScenario("dctcp-k65-n40", core.DCTCP(65, g), 40),
		paperScenario("dt4060-n40", core.DTDCTCP(40, 60, g), 40),
	)
	// RTT variations: halve and double the propagation delay.
	short := paperScenario("dctcp-k40-n40-rtt50", core.DCTCP(40, g), 40)
	short.RTT = 50 * time.Microsecond
	long := paperScenario("dctcp-k40-n40-rtt200", core.DCTCP(40, g), 40)
	long.RTT = 200 * time.Microsecond
	out = append(out, short, long)

	// Declared band overrides for the fluid model's slow-relay regime:
	// as the saturated equilibrium q₀ = 2N − CD climbs toward the
	// marking threshold, the continuous model's relay period stretches
	// to many milliseconds while the packet system keeps cycling at a
	// few RTTs (the per-RTT impulsive window cuts the fluid equations
	// average away). The ratio bands below pin today's measured
	// separation — they guard the regression, not digit equality; the
	// describing function remains the period reference on these points.
	widen := func(name string, lo, hi float64) {
		for i := range out {
			if out[i].Name == name {
				out[i].Tol.PeriodRatioLo, out[i].Tol.PeriodRatioHi = lo, hi
				return
			}
		}
		panic("conform: unknown grid point " + name)
	}
	widen("dctcp-k40-n50", 0.15, 1.0)
	widen("dctcp-k40-n60", 0.07, 0.6)
	widen("dt3050-n60", 0.10, 0.8)
	widen("dctcp-k40-n40-rtt50", 0.05, 0.5)
	return out
}

// QuickGrid returns a four-point subset of Grid for smoke runs (CI's
// dtconform step): one stable and one oscillatory point per protocol,
// with the same declared tolerances as the full grid.
func QuickGrid() []Scenario {
	want := map[string]bool{
		"dctcp-k40-n20": true,
		"dctcp-k40-n60": true,
		"dt3050-n20":    true,
		"dt3050-n80":    true,
	}
	var out []Scenario
	for _, s := range Grid() {
		if want[s.Name] {
			out = append(out, s)
		}
	}
	return out
}
