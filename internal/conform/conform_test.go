package conform

import (
	"context"
	"strings"
	"testing"
	"time"

	"dtdctcp/internal/core"
)

// The headline conformance assertion: every scenario of the full grid
// must pass every applicable cross-machinery check within its declared
// tolerance band. Each scenario runs as a subtest so a regression names
// the exact grid point and comparison that drifted.
func TestGridConformance(t *testing.T) {
	reps, err := RunGrid(context.Background(), Grid(), 0)
	if err != nil {
		t.Fatal(err)
	}
	applied := 0
	for _, rep := range reps {
		rep := rep
		t.Run(rep.Scenario, func(t *testing.T) {
			ran := 0
			for _, c := range rep.Checks {
				if c.Skipped != "" {
					t.Logf("%-28s skipped: %s", c.Name, c.Skipped)
					continue
				}
				ran++
				if !c.Pass {
					t.Errorf("%s: sim=%.4g ref=%.4g — %s", c.Name, c.Got, c.Ref, c.Detail)
				} else {
					t.Logf("%-28s %s", c.Name, c.Detail)
				}
			}
			// Every grid point must contribute real comparisons: at
			// minimum the queue-mean check plus one more. A scenario
			// whose checks all skip would pass vacuously.
			if ran < 2 {
				t.Errorf("only %d applicable check(s); the grid point validates nothing", ran)
			}
		})
		for _, c := range rep.Checks {
			if c.Skipped == "" {
				applied++
			}
		}
	}
	// The grid as a whole must keep exercising all three machineries.
	if applied < 40 {
		t.Errorf("only %d applicable checks across the grid, want ≥ 40", applied)
	}
}

// Specific regimes must keep their strongest checks applicable: the
// oscillatory points validate the describing-function cycle against the
// simulator, and the fluid relay regime validates the period estimator
// across machineries. If a future change silently pushes a scenario out
// of its regime (e.g. the DF verdict flips to stable), the conformance
// suite must fail loudly rather than skip quietly.
func TestGridRegimesStayCheckable(t *testing.T) {
	mustApply := map[string][]string{
		"dctcp-k40-n40":        {"queue-mean/sim-vs-fluid", "queue-std/sim-vs-fluid", "period/sim-vs-fluid", "period/sim-vs-df", "amplitude/sim-vs-df"},
		"dctcp-k40-n80":        {"queue-mean/sim-vs-fluid", "period/sim-vs-df", "amplitude/sim-vs-df"},
		"dt3050-n80":           {"queue-mean/sim-vs-fluid", "period/sim-vs-df", "amplitude/sim-vs-df"},
		"dt3050-n40":           {"queue-mean/sim-vs-fluid", "period/sim-vs-fluid"},
		"dctcp-k40-n40-rtt200": {"period/sim-vs-fluid", "period/sim-vs-df"},
	}
	byName := map[string]Scenario{}
	for _, s := range Grid() {
		byName[s.Name] = s
	}
	for name, wantChecks := range mustApply {
		s, ok := byName[name]
		if !ok {
			t.Fatalf("grid point %s disappeared from Grid()", name)
		}
		rep, err := RunScenario(s)
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]Check{}
		for _, c := range rep.Checks {
			got[c.Name] = c
		}
		for _, cn := range wantChecks {
			c, ok := got[cn]
			if !ok {
				t.Errorf("%s: check %s missing", name, cn)
				continue
			}
			if c.Skipped != "" {
				t.Errorf("%s: check %s skipped (%s), must stay applicable", name, cn, c.Skipped)
			}
		}
	}
}

// The quick grid is a strict subset of the full grid, tolerances
// included, so the CI smoke run can never drift from what the full
// suite enforces.
func TestQuickGridIsSubsetOfGrid(t *testing.T) {
	full := map[string]Scenario{}
	for _, s := range Grid() {
		full[s.Name] = s
	}
	quick := QuickGrid()
	if len(quick) == 0 {
		t.Fatal("empty quick grid")
	}
	for _, q := range quick {
		f, ok := full[q.Name]
		if !ok {
			t.Fatalf("quick scenario %s not in the full grid", q.Name)
		}
		if f.Tol != q.Tol || f.Flows != q.Flows || f.RTT != q.RTT {
			t.Fatalf("quick scenario %s differs from the grid's: %+v vs %+v", q.Name, q, f)
		}
	}
}

func TestGridNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Grid() {
		if seen[s.Name] {
			t.Fatalf("duplicate grid scenario name %q", s.Name)
		}
		seen[s.Name] = true
	}
}

// Unit coverage of the check evaluator: pass, fail and skip paths, and
// the Report helpers built on them.
func TestApplyChecksVerdicts(t *testing.T) {
	tol := DefaultTolerances()
	obs := Observation{
		SimQueueMean: 40, FluidQueueMean: 45,
		SimQueueStd: 20, FluidQueueStd: 15,
		SimPeriod: 700 * time.Microsecond, SimConfidence: 0.9,
		FluidPeriod: 1 * time.Millisecond, FluidConfidence: 0.9,
		DFStable: false, DFAmplitude: 50, DFPeriod: 800 * time.Microsecond,
	}
	rep := Report{Scenario: "unit", Checks: applyChecks(tol, obs)}
	if !rep.Pass() {
		t.Fatalf("healthy observation must pass, failures: %+v", rep.Failures())
	}
	if len(rep.Checks) != 5 {
		t.Fatalf("want 5 checks, got %d", len(rep.Checks))
	}
	for _, c := range rep.Checks {
		if c.Skipped != "" {
			t.Fatalf("no check should skip here: %+v", c)
		}
	}

	// A wildly diverged queue mean fails exactly the mean check.
	bad := obs
	bad.SimQueueMean = 400
	rep = Report{Checks: applyChecks(tol, bad)}
	if rep.Pass() {
		t.Fatal("diverged mean must fail")
	}
	fails := rep.Failures()
	if len(fails) != 1 || fails[0].Name != "queue-mean/sim-vs-fluid" {
		t.Fatalf("want exactly the mean check to fail, got %+v", fails)
	}

	// Low sim confidence turns every period/amplitude comparison into a
	// documented skip, never a silent pass.
	quiet := obs
	quiet.SimConfidence = 0.01
	rep = Report{Checks: applyChecks(tol, quiet)}
	skips := 0
	for _, c := range rep.Checks {
		if c.Skipped != "" {
			if !strings.Contains(c.Skipped, "confidence") {
				t.Fatalf("skip reason must name the confidence: %+v", c)
			}
			skips++
		}
	}
	if skips != 3 {
		t.Fatalf("want period/sim-vs-fluid, period/sim-vs-df and amplitude/sim-vs-df skipped, got %d skips", skips)
	}
	if !rep.Pass() {
		t.Fatal("skipped checks must not fail the report")
	}

	// A stable DF verdict skips the cycle comparisons.
	stable := obs
	stable.DFStable = true
	rep = Report{Checks: applyChecks(tol, stable)}
	for _, c := range rep.Checks {
		if (c.Name == "period/sim-vs-df" || c.Name == "amplitude/sim-vs-df") && c.Skipped == "" {
			t.Fatalf("DF-stable scenario must skip %s", c.Name)
		}
	}
}

// Scenarios without an ECN marker cannot be conformance-checked: the
// fluid model and the describing function need a marking law.
func TestRunScenarioRejectsUnmarkedProtocol(t *testing.T) {
	s := paperScenario("reno", core.Reno(), 10)
	s.Duration = 2 * time.Millisecond
	s.Warmup = time.Millisecond
	if _, err := RunScenario(s); err == nil {
		t.Fatal("Reno has no marker; RunScenario must error")
	}
}

// The two analysis parameterizations must keep their deliberate units:
// physical packets for the fluid model, the paper's 1000-bit packets for
// the describing function (DESIGN.md, judgment call 1).
func TestParameterUnits(t *testing.T) {
	s := paperScenario("units", core.DCTCP(40, 1.0/16), 10)
	fl := s.FluidParams()
	df := s.DFParams()
	wantFluid := 10e9 / 8 / 1500 // ≈ 833333 pkts/s
	if diff := fl.CapacityPktsPerSec - wantFluid; diff > 1 || diff < -1 {
		t.Fatalf("fluid C = %v, want ≈ %v", fl.CapacityPktsPerSec, wantFluid)
	}
	if df.CapacityPktsPerSec != 1e7 {
		t.Fatalf("DF C = %v, want 1e7 (paper unit)", df.CapacityPktsPerSec)
	}
	paper := core.PaperAnalysisParams()
	if df.CapacityPktsPerSec != paper.CapacityPktsPerSec || df.RTT != paper.RTT || df.G != paper.G {
		t.Fatalf("DF params %+v must match PaperAnalysisParams %+v at the paper's base point", df, paper)
	}
}
