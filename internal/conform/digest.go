package conform

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"time"

	"dtdctcp/internal/core"
	"dtdctcp/internal/runner"
)

// Digest is a compact deterministic fingerprint of one simulator run:
// event and marking counters in the clear, plus FNV-1a checksums over
// the sampled queue/α series, the per-flow byte counts, and the bit
// patterns of the float aggregates. Committed under testdata/golden/,
// a digest pins the simulator byte-for-byte — any change to event
// ordering, RNG consumption, or float arithmetic flips a hash — while
// staying small enough to diff by eye.
//
// Digests are stable across repeated runs, across -workers settings, and
// across builds of the same source on the same architecture. They are
// not guaranteed stable across architectures (the compiler may fuse
// multiply-adds differently); regenerate with
//
//	go test ./internal/conform -run Golden -update
//
// when a deliberate simulator change shifts them.
type Digest struct {
	// Scenario, Protocol and Flows echo the configuration.
	Scenario string `json:"scenario"`
	Protocol string `json:"protocol"`
	Flows    int    `json:"flows"`

	// Events is the number of simulator events processed.
	Events uint64 `json:"events"`
	// Marks, Drops and Timeouts count bottleneck CE marks, overflow
	// drops, and sender RTOs.
	Marks    uint64 `json:"marks"`
	Drops    uint64 `json:"drops"`
	Timeouts uint64 `json:"timeouts"`
	// AckedBytes is the sum of per-flow acknowledged bytes.
	AckedBytes int64 `json:"acked_bytes"`
	// QueueSamples counts the decimated queue-series samples.
	QueueSamples int `json:"queue_samples"`

	// QueueHash and AlphaHash checksum the sampled series (instants and
	// values, exact float bits).
	QueueHash string `json:"queue_hash"`
	AlphaHash string `json:"alpha_hash"`
	// FlowHash checksums the per-flow acknowledged byte counts in flow
	// order.
	FlowHash string `json:"flow_hash"`
	// StatsHash checksums the float aggregates (queue mean/σ/min/max,
	// α mean, utilization, fairness, oscillation period and confidence).
	StatsHash string `json:"stats_hash"`
}

// DigestRun executes the scenario's packet simulation with full series
// sampling and fingerprints the result.
func DigestRun(s Scenario) (Digest, error) {
	cfg := s.simConfig()
	cfg.AlphaSampleEvery = s.RTT
	return digestDumbbell(s.Name, cfg)
}

// digestDumbbell runs one dumbbell configuration and fingerprints the
// result under the given scenario name. Both the paper grid's golden
// scenarios and the zoo goldens funnel through here, so the two suites
// pin the same observables with the same hashes.
func digestDumbbell(name string, cfg core.DumbbellConfig) (Digest, error) {
	res, err := core.RunDumbbell(cfg)
	if err != nil {
		return Digest{}, fmt.Errorf("conform %s: digest run: %w", name, err)
	}
	d := Digest{
		Scenario: name,
		Protocol: res.Protocol,
		Flows:    res.Flows,
		Events:   res.Events,
		Marks:    res.Marks,
		Drops:    res.Drops,
		Timeouts: res.Timeouts,
	}
	if res.QueueSeries != nil {
		d.QueueSamples = res.QueueSeries.Len()
		d.QueueHash = fmt.Sprintf("%016x", res.QueueSeries.Hash64())
	}
	if res.AlphaSeries != nil {
		d.AlphaHash = fmt.Sprintf("%016x", res.AlphaSeries.Hash64())
	}

	fh := fnv.New64a()
	var buf [8]byte
	for _, acked := range res.PerFlowAcked {
		d.AckedBytes += acked
		binary.LittleEndian.PutUint64(buf[:], uint64(acked))
		fh.Write(buf[:])
	}
	d.FlowHash = fmt.Sprintf("%016x", fh.Sum64())

	sh := fnv.New64a()
	for _, v := range []float64{
		res.QueueMeanPkts, res.QueueStdPkts, res.QueueMinPkts, res.QueueMaxPkts,
		res.AlphaMean, res.Utilization, res.Fairness,
		res.OscPeriod.Seconds(), res.OscConfidence,
	} {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		sh.Write(buf[:])
	}
	d.StatsHash = fmt.Sprintf("%016x", sh.Sum64())
	return d, nil
}

// DigestGrid fingerprints the scenarios concurrently on up to workers
// goroutines (values < 1 mean GOMAXPROCS); digests come back in input
// order and are byte-identical for any worker count.
func DigestGrid(ctx context.Context, scenarios []Scenario, workers int) ([]Digest, error) {
	return runner.Map(ctx, len(scenarios), runner.Options{Workers: workers},
		func(_ context.Context, i int) (Digest, error) {
			return DigestRun(scenarios[i])
		})
}

// GoldenScenarios returns the golden-run suite: short, cheap runs that
// cover both protocols in the stable and oscillatory regimes plus a
// threshold variant — enough surface that a determinism regression
// anywhere in the engine, netsim, tcp, aqm, or stats layers flips at
// least one digest.
func GoldenScenarios() []Scenario {
	g := 1.0 / 16
	mk := func(name string, p core.Protocol, flows int) Scenario {
		s := paperScenario(name, p, flows)
		s.Warmup = 5 * time.Millisecond
		s.Duration = 20 * time.Millisecond
		return s
	}
	return []Scenario{
		mk("golden-dctcp-k40-n10", core.DCTCP(40, g), 10),
		mk("golden-dctcp-k40-n80", core.DCTCP(40, g), 80),
		mk("golden-dt3050-n10", core.DTDCTCP(30, 50, g), 10),
		mk("golden-dt3050-n80", core.DTDCTCP(30, 50, g), 80),
		mk("golden-dt4060-n40", core.DTDCTCP(40, 60, g), 40),
	}
}

// DigestZooRun fingerprints one zoo golden configuration — the DCTCP+
// pacing path, the phantom marker, or the shared-buffer admission path —
// through the same dumbbell digest the paper grid uses.
func DigestZooRun(z ZooGolden) (Digest, error) {
	return digestDumbbell(z.Name, z.Cfg)
}

// WriteGoldenFile marshals the digest to path as indented JSON with a
// trailing newline, the format the golden tests compare against.
func WriteGoldenFile(path string, d Digest) error {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadGoldenFile parses a digest written by WriteGoldenFile.
func ReadGoldenFile(path string) (Digest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Digest{}, err
	}
	var d Digest
	if err := json.Unmarshal(data, &d); err != nil {
		return Digest{}, fmt.Errorf("conform: parse golden %s: %w", path, err)
	}
	return d, nil
}
