package conform

import (
	"path/filepath"
	"testing"
	"time"

	"dtdctcp/internal/core"
)

func shortScenario(seed int64) Scenario {
	s := paperScenario("digest-unit", core.DCTCP(40, 1.0/16), 8)
	s.Warmup = 2 * time.Millisecond
	s.Duration = 6 * time.Millisecond
	s.Seed = seed
	return s
}

// A digest is a pure function of the scenario: identical for identical
// configurations, different as soon as the seed (hence every RNG draw)
// changes.
func TestDigestSensitivity(t *testing.T) {
	a, err := DigestRun(shortScenario(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := DigestRun(shortScenario(1))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same scenario, different digests:\n%+v\n%+v", a, b)
	}
	c, err := DigestRun(shortScenario(2))
	if err != nil {
		t.Fatal(err)
	}
	if a.QueueHash == c.QueueHash && a.FlowHash == c.FlowHash && a.StatsHash == c.StatsHash {
		t.Fatalf("different seeds produced identical hashes: %+v", c)
	}
	// The digest must carry real content, not zero values.
	if a.Events == 0 || a.Marks == 0 || a.AckedBytes == 0 || a.QueueSamples == 0 {
		t.Fatalf("empty digest fields: %+v", a)
	}
	if a.QueueHash == "" || a.AlphaHash == "" || a.FlowHash == "" || a.StatsHash == "" {
		t.Fatalf("missing hashes: %+v", a)
	}
}

// Golden files survive a write/read round trip exactly.
func TestGoldenFileRoundTrip(t *testing.T) {
	d, err := DigestRun(shortScenario(7))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "rt.json")
	if err := WriteGoldenFile(path, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGoldenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != d {
		t.Fatalf("round trip drift:\n%+v\n%+v", got, d)
	}
	if _, err := ReadGoldenFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing golden file must error")
	}
}
