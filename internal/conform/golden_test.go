package conform

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates the committed digests:
//
//	go test ./internal/conform -run Golden -update
//
// Run it only after a deliberate simulator change; the diff under
// testdata/golden/ is the reviewable record of what moved. Re-running
// without code changes must be diff-clean (TestGoldenDigests passes).
var update = flag.Bool("update", false, "rewrite testdata/golden digests")

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".json")
}

// TestGoldenDigests pins every golden scenario's digest byte-for-byte
// against the committed file.
func TestGoldenDigests(t *testing.T) {
	for _, s := range GoldenScenarios() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			got, err := DigestRun(s)
			if err != nil {
				t.Fatal(err)
			}
			path := goldenPath(s.Name)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := WriteGoldenFile(path, got); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s", path)
				return
			}
			want, err := ReadGoldenFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with: go test ./internal/conform -run Golden -update)", err)
			}
			if got != want {
				t.Errorf("digest drifted from %s:\n got: %+v\nwant: %+v\nIf the simulator change is deliberate, regenerate with -update and commit the diff.",
					path, got, want)
			}
		})
	}
}

// TestZooGoldenDigests pins the zoo configurations — DCTCP+ pacing,
// the HULL phantom marker, and the shared-buffer switch — byte-for-byte
// against their committed digests, sharing the -update flag with the
// paper-grid goldens.
func TestZooGoldenDigests(t *testing.T) {
	for _, z := range ZooGoldenScenarios() {
		z := z
		t.Run(z.Name, func(t *testing.T) {
			got, err := DigestZooRun(z)
			if err != nil {
				t.Fatal(err)
			}
			path := goldenPath(z.Name)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := WriteGoldenFile(path, got); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s", path)
				return
			}
			want, err := ReadGoldenFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with: go test ./internal/conform -run Golden -update)", err)
			}
			if got != want {
				t.Errorf("digest drifted from %s:\n got: %+v\nwant: %+v\nIf the simulator change is deliberate, regenerate with -update and commit the diff.",
					path, got, want)
			}
		})
	}
}

// The zoo golden runs must be repeat-stable on their own: the DCTCP+
// pacing RNG and the shared-buffer eviction order are the two newest
// places a hidden map-iteration or time.Now dependence could hide.
func TestZooGoldenDigestsRepeatStable(t *testing.T) {
	for _, z := range ZooGoldenScenarios() {
		z := z
		t.Run(z.Name, func(t *testing.T) {
			a, err := DigestZooRun(z)
			if err != nil {
				t.Fatal(err)
			}
			b, err := DigestZooRun(z)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Errorf("digest differs between repeated runs:\n%+v\n%+v", a, b)
			}
		})
	}
}

// The digest of a run must not depend on how the grid was scheduled:
// workers=1 and workers=8 must produce identical digests, and so must a
// repeated run — the determinism contract the golden suite rests on.
func TestGoldenDigestsWorkerAndRepeatStable(t *testing.T) {
	scenarios := GoldenScenarios()[:3] // three runs are enough to catch scheduling leaks
	ctx := context.Background()
	w1, err := DigestGrid(ctx, scenarios, 1)
	if err != nil {
		t.Fatal(err)
	}
	w8, err := DigestGrid(ctx, scenarios, 8)
	if err != nil {
		t.Fatal(err)
	}
	again, err := DigestGrid(ctx, scenarios, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range scenarios {
		if w1[i] != w8[i] {
			t.Errorf("%s: digest differs between workers=1 and workers=8:\n%+v\n%+v",
				scenarios[i].Name, w1[i], w8[i])
		}
		if w1[i] != again[i] {
			t.Errorf("%s: digest differs between repeated runs:\n%+v\n%+v",
				scenarios[i].Name, w1[i], again[i])
		}
	}
}

// Every committed golden file must correspond to a live scenario, so a
// renamed scenario cannot leave a stale file silently passing nothing.
func TestGoldenFilesMatchScenarios(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatal(err)
	}
	live := map[string]bool{}
	for _, s := range GoldenScenarios() {
		live[s.Name+".json"] = true
	}
	for _, z := range ZooGoldenScenarios() {
		live[z.Name+".json"] = true
	}
	for _, e := range entries {
		if !live[e.Name()] {
			t.Errorf("stale golden file %s: no scenario produces it", e.Name())
		}
	}
	if len(entries) != len(live) {
		t.Errorf("%d golden files for %d scenarios", len(entries), len(live))
	}
}
