package conform

import (
	"context"
	"fmt"
	"time"

	"dtdctcp/internal/core"
	"dtdctcp/internal/netsim"
	"dtdctcp/internal/runner"
)

// Hybrid conformance: the co-simulation of internal/hybrid replaces
// packet-level background flows with the Alizadeh fluid model, and its
// whole claim to validity is that a foreground flow cannot tell the
// difference. This grid pins that claim: every scenario is small enough
// to also run fully packet-level, and the hybrid run must reproduce the
// reference's queue statistics, oscillation period, and foreground flow
// completion times within declared tolerances.
//
// The bands are wide by design — the fluid model is a continuous
// mean-field approximation of discrete windowed senders, and the port's
// processor-sharing serialization is itself an approximation of FIFO —
// so agreement on scale is the contract, not digit equality. Where a
// comparison needs a quantity a run did not produce (a credible period,
// any recorded FCT), the check is skipped with the reason; the
// anti-vacuity test in hybrid_conform_test.go asserts every scenario
// still applies at least two real checks.

// HybridTolerances declares how closely a hybrid run must track its
// fully packet-level reference on one scenario.
type HybridTolerances struct {
	// QueueMeanAbsPkts and QueueMeanRel bound the hybrid-vs-packet
	// steady-state queue mean: |hybrid − packet| ≤ Abs + Rel·packet.
	QueueMeanAbsPkts float64
	QueueMeanRel     float64
	// StdDevRatioLo/Hi bound hybrid σ / packet σ.
	StdDevRatioLo, StdDevRatioHi float64
	// PeriodRatioLo/Hi bound hybrid period / packet period, both from
	// the same autocorrelation estimator.
	PeriodRatioLo, PeriodRatioHi float64
	// FCTMeanRatioLo/Hi bound hybrid mean foreground FCT / packet mean
	// foreground FCT.
	FCTMeanRatioLo, FCTMeanRatioHi float64
	// MinConfidence is the autocorrelation confidence below which the
	// period comparison is skipped rather than failed.
	MinConfidence float64
}

// DefaultHybridTolerances is the band used by the standard hybrid grid.
func DefaultHybridTolerances() HybridTolerances {
	return HybridTolerances{
		QueueMeanAbsPkts: 20,
		QueueMeanRel:     0.5,
		StdDevRatioLo:    0.2,
		StdDevRatioHi:    5,
		PeriodRatioLo:    0.3,
		PeriodRatioHi:    3.5,
		FCTMeanRatioLo:   0.3,
		FCTMeanRatioHi:   4,
		MinConfidence:    0.30,
	}
}

// HybridScenario is one matched configuration run both ways.
type HybridScenario struct {
	// Name identifies the scenario in reports.
	Name string
	// Protocol selects marker and endpoints; hybrid mode needs an ECN
	// marking law.
	Protocol core.Protocol
	// BgFlows is the background count — fluid N in hybrid mode, real
	// long-lived senders in the reference, so it must stay small enough
	// for the packet run to be affordable.
	BgFlows int
	// FgFlows foreground senders repeatedly transfer FgBytes with FgGap
	// think time.
	FgFlows int
	FgBytes int64
	FgGap   time.Duration
	// Rate, RTT, BufferPkts shape the bottleneck.
	Rate       netsim.Rate
	RTT        time.Duration
	BufferPkts int
	// Warmup settles both runs; Duration is the measured interval.
	Warmup, Duration time.Duration
	// Seed drives the simulator's randomness.
	Seed int64
	// Tol is this scenario's agreement band.
	Tol HybridTolerances
}

// config maps the scenario onto core.RunHybrid in either mode.
func (s HybridScenario) config(fullPacket bool) core.HybridConfig {
	return core.HybridConfig{
		Protocol:         s.Protocol,
		BgFlows:          s.BgFlows,
		FgFlows:          s.FgFlows,
		FgBytes:          s.FgBytes,
		FgGap:            s.FgGap,
		Rate:             s.Rate,
		RTT:              s.RTT,
		BufferPkts:       s.BufferPkts,
		Duration:         s.Duration,
		Warmup:           s.Warmup,
		QueueSampleEvery: s.RTT / 5,
		FullPacket:       fullPacket,
		Seed:             s.Seed,
	}
}

// HybridObservation collects the comparable quantities both modes
// produced.
type HybridObservation struct {
	// Hybrid run (fluid background + packet foreground).
	HybQueueMean  float64       `json:"hyb_queue_mean_pkts"`
	HybQueueStd   float64       `json:"hyb_queue_std_pkts"`
	HybPeriod     time.Duration `json:"hyb_period"`
	HybConfidence float64       `json:"hyb_confidence"`
	HybFCTMean    float64       `json:"hyb_fct_mean_sec"`
	HybFCTCount   int           `json:"hyb_fct_count"`

	// Fully packet-level reference.
	PktQueueMean  float64       `json:"pkt_queue_mean_pkts"`
	PktQueueStd   float64       `json:"pkt_queue_std_pkts"`
	PktPeriod     time.Duration `json:"pkt_period"`
	PktConfidence float64       `json:"pkt_confidence"`
	PktFCTMean    float64       `json:"pkt_fct_mean_sec"`
	PktFCTCount   int           `json:"pkt_fct_count"`
}

// HybridReport is the outcome of one hybrid grid point.
type HybridReport struct {
	Scenario string            `json:"scenario"`
	Obs      HybridObservation `json:"observation"`
	Checks   []Check           `json:"checks"`
}

// Pass reports whether every non-skipped check passed.
func (r HybridReport) Pass() bool {
	for _, c := range r.Checks {
		if c.Skipped == "" && !c.Pass {
			return false
		}
	}
	return true
}

// Failures returns the non-skipped checks that failed.
func (r HybridReport) Failures() []Check {
	var out []Check
	for _, c := range r.Checks {
		if c.Skipped == "" && !c.Pass {
			out = append(out, c)
		}
	}
	return out
}

// Applied counts the checks that actually ran (were not skipped).
func (r HybridReport) Applied() int {
	n := 0
	for _, c := range r.Checks {
		if c.Skipped == "" {
			n++
		}
	}
	return n
}

// RunHybridScenario executes one scenario in both modes and applies the
// scenario's tolerance checks.
func RunHybridScenario(s HybridScenario) (HybridReport, error) {
	rep := HybridReport{Scenario: s.Name}

	hyb, err := core.RunHybrid(s.config(false))
	if err != nil {
		return rep, fmt.Errorf("conform %s: hybrid: %w", s.Name, err)
	}
	rep.Obs.HybQueueMean = hyb.QueueMeanPkts
	rep.Obs.HybQueueStd = hyb.QueueStdPkts
	rep.Obs.HybPeriod = hyb.OscPeriod
	rep.Obs.HybConfidence = hyb.OscConfidence
	rep.Obs.HybFCTMean = hyb.FgFCTMeanSec
	rep.Obs.HybFCTCount = hyb.FgFCTCount

	pkt, err := core.RunHybrid(s.config(true))
	if err != nil {
		return rep, fmt.Errorf("conform %s: packet reference: %w", s.Name, err)
	}
	rep.Obs.PktQueueMean = pkt.QueueMeanPkts
	rep.Obs.PktQueueStd = pkt.QueueStdPkts
	rep.Obs.PktPeriod = pkt.OscPeriod
	rep.Obs.PktConfidence = pkt.OscConfidence
	rep.Obs.PktFCTMean = pkt.FgFCTMeanSec
	rep.Obs.PktFCTCount = pkt.FgFCTCount

	rep.Checks = applyHybridChecks(s.Tol, rep.Obs)
	return rep, nil
}

// applyHybridChecks evaluates the hybrid-vs-packet assertions. Checks
// whose inputs a run did not produce are skipped with the reason, never
// silently passed.
func applyHybridChecks(tol HybridTolerances, o HybridObservation) []Check {
	var checks []Check

	// Steady-state queue mean.
	meanBand := tol.QueueMeanAbsPkts + tol.QueueMeanRel*o.PktQueueMean
	diff := o.HybQueueMean - o.PktQueueMean
	if diff < 0 {
		diff = -diff
	}
	checks = append(checks, Check{
		Name:   "queue-mean/hybrid-vs-packet",
		Got:    o.HybQueueMean,
		Ref:    o.PktQueueMean,
		Detail: fmt.Sprintf("|Δ| = %.1f pkts ≤ %.1f", diff, meanBand),
		Pass:   diff <= meanBand,
	})

	// Oscillation magnitude (queue σ).
	sd := Check{
		Name: "queue-std/hybrid-vs-packet",
		Got:  o.HybQueueStd,
		Ref:  o.PktQueueStd,
	}
	if o.PktQueueStd < 2 {
		sd.Skipped = fmt.Sprintf("packet σ %.2f pkts too small for a ratio", o.PktQueueStd)
	} else {
		ratio := o.HybQueueStd / o.PktQueueStd
		sd.Detail = fmt.Sprintf("ratio %.2f in [%.2f, %.2f]", ratio, tol.StdDevRatioLo, tol.StdDevRatioHi)
		sd.Pass = ratio >= tol.StdDevRatioLo && ratio <= tol.StdDevRatioHi
	}
	checks = append(checks, sd)

	// Oscillation period (same estimator on both traces).
	pc := Check{
		Name: "period/hybrid-vs-packet",
		Got:  o.HybPeriod.Seconds(),
		Ref:  o.PktPeriod.Seconds(),
	}
	switch {
	case o.HybConfidence < tol.MinConfidence:
		pc.Skipped = fmt.Sprintf("hybrid periodicity confidence %.2f < %.2f", o.HybConfidence, tol.MinConfidence)
	case o.PktConfidence < tol.MinConfidence:
		pc.Skipped = fmt.Sprintf("packet periodicity confidence %.2f < %.2f", o.PktConfidence, tol.MinConfidence)
	default:
		ratio := o.HybPeriod.Seconds() / o.PktPeriod.Seconds()
		pc.Detail = fmt.Sprintf("ratio %.2f in [%.2f, %.2f]", ratio, tol.PeriodRatioLo, tol.PeriodRatioHi)
		pc.Pass = ratio >= tol.PeriodRatioLo && ratio <= tol.PeriodRatioHi
	}
	checks = append(checks, pc)

	// Foreground flow completion times.
	fct := Check{
		Name: "fct-mean/hybrid-vs-packet",
		Got:  o.HybFCTMean,
		Ref:  o.PktFCTMean,
	}
	switch {
	case o.HybFCTCount == 0:
		fct.Skipped = "hybrid run recorded no foreground FCTs"
	case o.PktFCTCount == 0:
		fct.Skipped = "packet reference recorded no foreground FCTs"
	default:
		ratio := o.HybFCTMean / o.PktFCTMean
		fct.Detail = fmt.Sprintf("ratio %.2f in [%.2f, %.2f] (n = %d vs %d)",
			ratio, tol.FCTMeanRatioLo, tol.FCTMeanRatioHi, o.HybFCTCount, o.PktFCTCount)
		fct.Pass = ratio >= tol.FCTMeanRatioLo && ratio <= tol.FCTMeanRatioHi
	}
	checks = append(checks, fct)

	return checks
}

// hybridProto returns the grid's protocol with a datacenter-scale RTO:
// a foreground flow whose window is lost to a transient burst must
// recover well inside the measured interval, in both modes alike.
func hybridProto(p core.Protocol) core.Protocol {
	p.TCP.RTOMin = 10 * time.Millisecond
	p.TCP.RTOInitial = 10 * time.Millisecond
	return p
}

// hybridScenario is the grid's base point: the paper's Section VI-A
// bottleneck with a small foreground mix, sized so the fully
// packet-level reference stays affordable.
func hybridScenario(name string, p core.Protocol, bg int) HybridScenario {
	return HybridScenario{
		Name:       name,
		Protocol:   hybridProto(p),
		BgFlows:    bg,
		FgFlows:    4,
		FgBytes:    20_000,
		FgGap:      500 * time.Microsecond,
		Rate:       10 * netsim.Gbps,
		RTT:        100 * time.Microsecond,
		BufferPkts: 600,
		Warmup:     15 * time.Millisecond,
		Duration:   45 * time.Millisecond,
		Seed:       1,
		Tol:        DefaultHybridTolerances(),
	}
}

// HybridGrid returns the hybrid conformance grid: background counts
// across the stable and oscillatory regimes, both protocols, a
// threshold variation, an RTT variation, and a heavier foreground mix —
// every point small enough to run fully packet-level.
func HybridGrid() []HybridScenario {
	g := 1.0 / 16
	var out []HybridScenario
	// DCTCP background sweep over the paper's K = 40.
	for _, n := range []int{10, 20, 40, 60} {
		out = append(out, hybridScenario(fmt.Sprintf("hyb-dctcp-k40-bg%d", n), core.DCTCP(40, g), n))
	}
	// DT-DCTCP background sweep over the paper's K1 = 30 / K2 = 50.
	for _, n := range []int{10, 20, 40} {
		out = append(out, hybridScenario(fmt.Sprintf("hyb-dt3050-bg%d", n), core.DTDCTCP(30, 50, g), n))
	}
	// Threshold variation at a mid-grid background count.
	out = append(out, hybridScenario("hyb-dctcp-k65-bg20", core.DCTCP(65, g), 20))
	// RTT variation: double the propagation delay.
	long := hybridScenario("hyb-dctcp-k40-bg20-rtt200", core.DCTCP(40, g), 20)
	long.RTT = 200 * time.Microsecond
	out = append(out, long)
	// Heavier foreground: more flows, bigger transfers.
	busy := hybridScenario("hyb-dctcp-k40-bg20-fg8", core.DCTCP(40, g), 20)
	busy.FgFlows = 8
	busy.FgBytes = 50_000
	out = append(out, busy)

	// Declared band override at the fluid relay regime's edge: as the
	// saturated equilibrium q₀ = 2N − CD climbs toward the marking
	// threshold (N ≈ 62 for K = 40 at 10 Gbps), the continuous model
	// damps to equilibrium while the packet system keeps oscillating, so
	// the hybrid run's queue σ sits far below the reference's. The band
	// pins today's measured separation — a regression guard, not an
	// agreement claim; the queue-mean and FCT checks still apply in full.
	for i := range out {
		if out[i].Name == "hyb-dctcp-k40-bg60" {
			out[i].Tol.StdDevRatioLo, out[i].Tol.StdDevRatioHi = 0.05, 1.0
		}
	}
	return out
}

// QuickHybridGrid returns a two-point subset of HybridGrid for smoke
// runs, one per protocol, with the same declared tolerances.
func QuickHybridGrid() []HybridScenario {
	want := map[string]bool{
		"hyb-dctcp-k40-bg20": true,
		"hyb-dt3050-bg20":    true,
	}
	var out []HybridScenario
	for _, s := range HybridGrid() {
		if want[s.Name] {
			out = append(out, s)
		}
	}
	return out
}

// RunHybridGrid executes the scenarios concurrently on up to workers
// goroutines (values < 1 mean GOMAXPROCS). Every scenario runs in a
// private engine seeded only by its own configuration, so reports are
// byte-identical for any worker count and are returned in input order.
func RunHybridGrid(ctx context.Context, scenarios []HybridScenario, workers int) ([]HybridReport, error) {
	return runner.Map(ctx, len(scenarios), runner.Options{Workers: workers},
		func(_ context.Context, i int) (HybridReport, error) {
			return RunHybridScenario(scenarios[i])
		})
}
