package conform

import (
	"context"
	"testing"
	"time"
)

// TestHybridGridConforms is the hybrid co-simulation's conformance
// contract: every grid point runs both as a hybrid (fluid background)
// and fully packet-level, and every applicable check must hold within
// the scenario's declared tolerances.
func TestHybridGridConforms(t *testing.T) {
	scenarios := HybridGrid()
	if len(scenarios) < 10 {
		t.Fatalf("hybrid grid has %d scenarios, want at least 10", len(scenarios))
	}
	reports, err := RunHybridGrid(context.Background(), scenarios, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reports {
		rep := rep
		t.Run(rep.Scenario, func(t *testing.T) {
			// Anti-vacuity: a scenario whose checks all skipped proves
			// nothing; demand at least two real comparisons.
			if got := rep.Applied(); got < 2 {
				t.Fatalf("only %d checks applied; a conformance point must compare at least 2 quantities", got)
			}
			for _, c := range rep.Checks {
				if c.Skipped != "" {
					t.Logf("skip %s: %s", c.Name, c.Skipped)
					continue
				}
				if !c.Pass {
					t.Errorf("%s: got %.4g ref %.4g (%s)", c.Name, c.Got, c.Ref, c.Detail)
				}
			}
		})
	}

	// Anti-vacuity across the grid: every kind of check must have run
	// for real somewhere, or a tolerance is dead weight.
	applied := map[string]int{}
	for _, rep := range reports {
		for _, c := range rep.Checks {
			if c.Skipped == "" {
				applied[c.Name]++
			}
		}
	}
	for _, name := range []string{
		"queue-mean/hybrid-vs-packet",
		"queue-std/hybrid-vs-packet",
		"period/hybrid-vs-packet",
		"fct-mean/hybrid-vs-packet",
	} {
		if applied[name] == 0 {
			t.Errorf("check %q was skipped on every scenario — the grid never exercises it", name)
		}
	}
	// The queue-mean and FCT comparisons have no skip condition that a
	// healthy run should trigger; they must apply on (nearly) every point.
	if applied["fct-mean/hybrid-vs-packet"] < len(reports)-1 {
		t.Errorf("fct-mean applied on only %d/%d scenarios", applied["fct-mean/hybrid-vs-packet"], len(reports))
	}
}

// TestHybridGridScenariosAreDistinct guards the grid's breadth: names
// are unique, both protocols appear, and every point is small enough to
// reference-run (the whole contract of the grid).
func TestHybridGridScenariosAreDistinct(t *testing.T) {
	seen := map[string]bool{}
	protos := map[string]bool{}
	for _, s := range HybridGrid() {
		if seen[s.Name] {
			t.Errorf("duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
		protos[s.Protocol.Name] = true
		if s.BgFlows > 100 {
			t.Errorf("%s: %d background flows is too many for a packet-level reference", s.Name, s.BgFlows)
		}
		if s.FgFlows == 0 {
			t.Errorf("%s: no foreground flows — the FCT comparison would be vacuous", s.Name)
		}
	}
	if len(protos) < 2 {
		t.Errorf("grid exercises only protocols %v, want at least 2", protos)
	}
}

// TestQuickHybridGridIsSubset pins the smoke subset: non-empty, and
// every entry resolves to a full-grid scenario.
func TestQuickHybridGridIsSubset(t *testing.T) {
	quick := QuickHybridGrid()
	if len(quick) == 0 {
		t.Fatal("quick hybrid grid is empty")
	}
	full := map[string]bool{}
	for _, s := range HybridGrid() {
		full[s.Name] = true
	}
	for _, s := range quick {
		if !full[s.Name] {
			t.Errorf("quick scenario %q not in the full grid", s.Name)
		}
	}
}

// TestHybridReportsAreDeterministic runs one scenario twice and demands
// identical observations — the conformance numbers themselves are
// reproducible artifacts.
func TestHybridReportsAreDeterministic(t *testing.T) {
	s := QuickHybridGrid()[0]
	a, err := RunHybridScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunHybridScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	if a.Obs != b.Obs {
		t.Fatalf("repeat scenario run diverged:\n%+v\n%+v", a.Obs, b.Obs)
	}
}

// TestHybridChecksSkipAndFailSemantics drives applyHybridChecks and the
// report accessors on synthetic observations, pinning the skip reasons
// and the Pass/Failures contract without paying for simulation runs.
func TestHybridChecksSkipAndFailSemantics(t *testing.T) {
	tol := DefaultHybridTolerances()

	// Degenerate observation: flat packet queue, unconfident hybrid
	// period, no hybrid FCTs. Everything but queue-mean must skip with a
	// reason, and the report still passes.
	flat := HybridObservation{PktQueueStd: 1, HybConfidence: 0, PktConfidence: 1, PktFCTCount: 3}
	rep := HybridReport{Scenario: "synthetic-flat", Checks: applyHybridChecks(tol, flat)}
	if got := rep.Applied(); got != 1 {
		t.Fatalf("flat observation applied %d checks, want just queue-mean", got)
	}
	for _, c := range rep.Checks[1:] {
		if c.Skipped == "" {
			t.Errorf("%s ran on degenerate inputs, want a skip reason", c.Name)
		}
	}
	if !rep.Pass() || rep.Failures() != nil {
		t.Fatalf("skipped checks counted as failures: %v", rep.Failures())
	}

	// Complementary skip arms: confident hybrid vs unconfident packet
	// period, and FCTs present on the hybrid side only.
	swap := HybridObservation{PktQueueStd: 1, HybConfidence: 1, PktConfidence: 0, HybFCTCount: 3}
	for _, c := range applyHybridChecks(tol, swap) {
		switch c.Name {
		case "period/hybrid-vs-packet", "fct-mean/hybrid-vs-packet":
			if c.Skipped == "" {
				t.Errorf("%s ran, want skip (packet side lacks the input)", c.Name)
			}
		}
	}

	// A hybrid that disagrees everywhere: every check applies and fails,
	// and Failures carries exactly the failing set.
	bad := HybridObservation{
		HybQueueMean: 500, PktQueueMean: 10,
		HybQueueStd: 100, PktQueueStd: 4,
		HybPeriod: time.Second, PktPeriod: time.Millisecond,
		HybConfidence: 1, PktConfidence: 1,
		HybFCTMean: 1, PktFCTMean: 0.001,
		HybFCTCount: 5, PktFCTCount: 5,
	}
	rep = HybridReport{Scenario: "synthetic-bad", Checks: applyHybridChecks(tol, bad)}
	if rep.Pass() {
		t.Fatal("wildly divergent observation passed")
	}
	if got := len(rep.Failures()); got != len(rep.Checks) {
		t.Fatalf("%d of %d checks failed, want all", got, len(rep.Checks))
	}
	for _, c := range rep.Failures() {
		if c.Skipped != "" || c.Pass {
			t.Errorf("Failures() returned a non-failure: %+v", c)
		}
	}
}
