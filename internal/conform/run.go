package conform

import (
	"context"
	"fmt"
	"math"
	"time"

	"dtdctcp/internal/core"
	"dtdctcp/internal/fluid"
	"dtdctcp/internal/runner"
)

// Observation collects the comparable quantities one scenario produced in
// each machinery.
type Observation struct {
	// Simulator (packet-level, core.RunDumbbell).
	SimQueueMean   float64       `json:"sim_queue_mean_pkts"`
	SimQueueStd    float64       `json:"sim_queue_std_pkts"`
	SimPeriod      time.Duration `json:"sim_period"`
	SimConfidence  float64       `json:"sim_confidence"`
	SimUtilization float64       `json:"sim_utilization"`

	// Fluid model (physical packet unit).
	FluidQueueMean  float64       `json:"fluid_queue_mean_pkts"`
	FluidQueueStd   float64       `json:"fluid_queue_std_pkts"`
	FluidAmplitude  float64       `json:"fluid_amplitude_pkts"`
	FluidPeriod     time.Duration `json:"fluid_period"`
	FluidConfidence float64       `json:"fluid_confidence"`

	// Describing-function analysis (paper packet unit).
	DFStable    bool          `json:"df_stable"`
	DFAmplitude float64       `json:"df_amplitude_pkts,omitempty"`
	DFPeriod    time.Duration `json:"df_period,omitempty"`
}

// Check is one pass/fail (or skipped) agreement assertion.
type Check struct {
	// Name identifies the comparison (e.g. "queue-mean/sim-vs-fluid").
	Name string `json:"name"`
	// Got and Ref are the compared values (sim-side first).
	Got float64 `json:"got,omitempty"`
	Ref float64 `json:"ref,omitempty"`
	// Detail states the tolerance the comparison was held to.
	Detail string `json:"detail"`
	// Pass reports the verdict; meaningless when Skipped is set.
	Pass bool `json:"pass"`
	// Skipped, when non-empty, says why the comparison does not apply
	// to this scenario (e.g. no credible periodicity to compare).
	Skipped string `json:"skipped,omitempty"`
}

// Report is the outcome of one scenario: what each machinery measured
// and how the cross-checks came out.
type Report struct {
	// Scenario names the grid point.
	Scenario string `json:"scenario"`
	// Obs holds the per-machinery measurements.
	Obs Observation `json:"observation"`
	// Checks are the agreement assertions, in a fixed order.
	Checks []Check `json:"checks"`
}

// Pass reports whether every non-skipped check passed.
func (r Report) Pass() bool {
	for _, c := range r.Checks {
		if c.Skipped == "" && !c.Pass {
			return false
		}
	}
	return true
}

// Failures returns the non-skipped checks that failed.
func (r Report) Failures() []Check {
	var out []Check
	for _, c := range r.Checks {
		if c.Skipped == "" && !c.Pass {
			out = append(out, c)
		}
	}
	return out
}

// RunScenario executes one scenario in all three machineries and applies
// the scenario's tolerance checks.
func RunScenario(s Scenario) (Report, error) {
	rep := Report{Scenario: s.Name}

	sim, err := core.RunDumbbell(s.simConfig())
	if err != nil {
		return rep, fmt.Errorf("conform %s: sim: %w", s.Name, err)
	}
	rep.Obs.SimQueueMean = sim.QueueMeanPkts
	rep.Obs.SimQueueStd = sim.QueueStdPkts
	rep.Obs.SimPeriod = sim.OscPeriod
	rep.Obs.SimConfidence = sim.OscConfidence
	rep.Obs.SimUtilization = sim.Utilization

	fc, err := core.FluidConfig(s.Protocol, s.FluidParams(), s.Flows, s.Warmup+s.Duration)
	if err != nil {
		return rep, fmt.Errorf("conform %s: fluid config: %w", s.Name, err)
	}
	fc.BufferLimit = float64(s.BufferPkts)
	fr, err := fluid.Solve(fc)
	if err != nil {
		return rep, fmt.Errorf("conform %s: fluid: %w", s.Name, err)
	}
	rep.Obs.FluidQueueMean = fr.QueueMean
	rep.Obs.FluidQueueStd = fr.QueueStdDev
	rep.Obs.FluidAmplitude = fr.QueueAmplitude
	rep.Obs.FluidPeriod = time.Duration(fr.OscPeriod * float64(time.Second))
	rep.Obs.FluidConfidence = fr.OscConfidence

	verdict, err := core.AnalyzeStability(s.Protocol, s.DFParams(), s.Flows)
	if err != nil {
		return rep, fmt.Errorf("conform %s: analysis: %w", s.Name, err)
	}
	rep.Obs.DFStable = verdict.Stable
	if !verdict.Stable {
		rep.Obs.DFAmplitude = verdict.Cycle.Amplitude
		rep.Obs.DFPeriod = time.Duration(verdict.Cycle.PeriodSeconds() * float64(time.Second))
	}

	rep.Checks = applyChecks(s.Tol, rep.Obs)
	return rep, nil
}

// applyChecks evaluates every agreement assertion against the tolerance
// band. Checks that need a quantity a regime does not produce (a credible
// period, a predicted cycle) are marked skipped with the reason, so a
// grid point can never pass vacuously without saying so.
func applyChecks(tol Tolerances, o Observation) []Check {
	var checks []Check

	// Steady-state queue mean, sim vs fluid.
	meanBand := tol.QueueMeanAbsPkts + tol.QueueMeanRel*o.FluidQueueMean
	diff := o.SimQueueMean - o.FluidQueueMean
	if diff < 0 {
		diff = -diff
	}
	checks = append(checks, Check{
		Name:   "queue-mean/sim-vs-fluid",
		Got:    o.SimQueueMean,
		Ref:    o.FluidQueueMean,
		Detail: fmt.Sprintf("|Δ| = %.1f pkts ≤ %.1f", diff, meanBand),
		Pass:   diff <= meanBand,
	})

	// Oscillation magnitude (queue σ), sim vs fluid.
	sd := Check{
		Name: "queue-std/sim-vs-fluid",
		Got:  o.SimQueueStd,
		Ref:  o.FluidQueueStd,
	}
	if o.FluidQueueStd < 2 {
		sd.Skipped = fmt.Sprintf("fluid σ %.2f pkts too small for a ratio", o.FluidQueueStd)
	} else {
		ratio := o.SimQueueStd / o.FluidQueueStd
		sd.Detail = fmt.Sprintf("ratio %.2f in [%.2f, %.2f]", ratio, tol.StdDevRatioLo, tol.StdDevRatioHi)
		sd.Pass = ratio >= tol.StdDevRatioLo && ratio <= tol.StdDevRatioHi
	}
	checks = append(checks, sd)

	// Oscillation period, sim vs fluid (same estimator on both traces).
	pf := Check{
		Name: "period/sim-vs-fluid",
		Got:  o.SimPeriod.Seconds(),
		Ref:  o.FluidPeriod.Seconds(),
	}
	switch {
	case o.SimConfidence < tol.MinConfidence:
		pf.Skipped = fmt.Sprintf("sim periodicity confidence %.2f < %.2f", o.SimConfidence, tol.MinConfidence)
	case o.FluidConfidence < tol.MinConfidence:
		pf.Skipped = fmt.Sprintf("fluid periodicity confidence %.2f < %.2f", o.FluidConfidence, tol.MinConfidence)
	default:
		ratio := o.SimPeriod.Seconds() / o.FluidPeriod.Seconds()
		pf.Detail = fmt.Sprintf("ratio %.2f in [%.2f, %.2f]", ratio, tol.PeriodRatioLo, tol.PeriodRatioHi)
		pf.Pass = ratio >= tol.PeriodRatioLo && ratio <= tol.PeriodRatioHi
	}
	checks = append(checks, pf)

	// Limit-cycle period, sim vs describing function.
	pd := Check{
		Name: "period/sim-vs-df",
		Got:  o.SimPeriod.Seconds(),
		Ref:  o.DFPeriod.Seconds(),
	}
	switch {
	case o.DFStable:
		pd.Skipped = "analysis predicts no limit cycle"
	case o.SimConfidence < tol.MinConfidence:
		pd.Skipped = fmt.Sprintf("sim periodicity confidence %.2f < %.2f", o.SimConfidence, tol.MinConfidence)
	default:
		ratio := o.SimPeriod.Seconds() / o.DFPeriod.Seconds()
		pd.Detail = fmt.Sprintf("ratio %.2f in [%.2f, %.2f]", ratio, tol.DFPeriodRatioLo, tol.DFPeriodRatioHi)
		pd.Pass = ratio >= tol.DFPeriodRatioLo && ratio <= tol.DFPeriodRatioHi
	}
	checks = append(checks, pd)

	// Limit-cycle amplitude, sim vs describing function. The simulator's
	// sinusoid-equivalent amplitude is √2·σ (the DF's X is the amplitude
	// of the fundamental; a sinusoid of amplitude X has σ = X/√2).
	ad := Check{
		Name: "amplitude/sim-vs-df",
		Got:  math.Sqrt2 * o.SimQueueStd,
		Ref:  o.DFAmplitude,
	}
	switch {
	case o.DFStable:
		ad.Skipped = "analysis predicts no limit cycle"
	case o.SimConfidence < tol.MinConfidence:
		ad.Skipped = fmt.Sprintf("sim periodicity confidence %.2f < %.2f", o.SimConfidence, tol.MinConfidence)
	default:
		ratio := ad.Got / o.DFAmplitude
		ad.Detail = fmt.Sprintf("ratio %.2f in [%.2f, %.2f]", ratio, tol.DFAmpRatioLo, tol.DFAmpRatioHi)
		ad.Pass = ratio >= tol.DFAmpRatioLo && ratio <= tol.DFAmpRatioHi
	}
	checks = append(checks, ad)

	return checks
}

// RunGrid executes the scenarios concurrently on up to workers goroutines
// (values < 1 mean GOMAXPROCS). Every scenario runs in a private engine
// seeded only by its own configuration, so reports are byte-identical
// for any worker count and are returned in input order.
func RunGrid(ctx context.Context, scenarios []Scenario, workers int) ([]Report, error) {
	return runner.Map(ctx, len(scenarios), runner.Options{Workers: workers},
		func(_ context.Context, i int) (Report, error) {
			return RunScenario(scenarios[i])
		})
}
