package conform

import (
	"context"
	"fmt"
	"time"

	"dtdctcp/internal/core"
	"dtdctcp/internal/netsim"
	"dtdctcp/internal/runner"
)

// Protocol & switch zoo conformance: the repo's rival mechanisms — the
// DCTCP+ slow-timer sender, HULL's phantom-queue marker, and the
// shared-buffer dynamic-threshold switch — each come with a claim that
// can drift silently: DCTCP+ must tame incast without giving up the
// transfer, the phantom queue must pin utilization at γ while holding the
// real queue near empty, and the shared-buffer switch must degenerate
// exactly to per-port tail-drop in the uncontended single-port limit.
// This grid turns each claim into a scenario with declared tolerances;
// checks whose inputs a regime does not produce are skipped with the
// reason, and the anti-vacuity test in zoo_conform_test.go asserts every
// scenario still applies at least two real checks.

// ZooTolerances declares the agreement bands of one zoo scenario. Only
// the fields its family reads are meaningful.
type ZooTolerances struct {
	// CompletionRatioLo/Hi bound candidate mean incast completion /
	// rival mean incast completion (incast family).
	CompletionRatioLo, CompletionRatioHi float64
	// GoodputRatioLo/Hi bound candidate mean goodput / rival mean
	// goodput (incast family).
	GoodputRatioLo, GoodputRatioHi float64
	// PlusBaseRatioLo/Hi bound DCTCP+ mean completion / DCTCP baseline
	// mean completion: the slow timer must track the baseline it
	// augments, in and out of collapse (incast family).
	PlusBaseRatioLo, PlusBaseRatioHi float64
	// ReliefRatioMax bounds DT-DCTCP mean completion / DCTCP baseline
	// mean completion in the collapse regime — the marking-side fix must
	// measurably ease the collapse (incast family).
	ReliefRatioMax float64
	// UtilizationAbs bounds |utilization − γ| for phantom scenarios
	// with γ < 1, and the shortfall below full utilization elsewhere.
	UtilizationAbs float64
	// RealQueueFrac bounds the phantom run's real queue mean as a
	// fraction of the marking threshold K (the HULL headroom claim).
	RealQueueFrac float64
	// QueueMeanRatioLo/Hi bound pooled/phantom queue mean against a
	// reference run's.
	QueueMeanRatioLo, QueueMeanRatioHi float64
	// QueueCapSlackPkts is the allowance above the dynamic-threshold
	// fixed point αB/(1+α) the pooled queue max may reach (in-flight
	// rounding, one packet in serialization).
	QueueCapSlackPkts float64
}

// DefaultZooTolerances is the band used by the standard zoo grid.
func DefaultZooTolerances() ZooTolerances {
	return ZooTolerances{
		CompletionRatioLo: 0.05,
		CompletionRatioHi: 3.0,
		GoodputRatioLo:    0.05,
		GoodputRatioHi:    1.5,
		PlusBaseRatioLo:   0.5,
		PlusBaseRatioHi:   1.3,
		ReliefRatioMax:    0.75,
		UtilizationAbs:    0.10,
		RealQueueFrac:     1.0,
		QueueMeanRatioLo:  0.3,
		QueueMeanRatioHi:  3.0,
		QueueCapSlackPkts: 4,
	}
}

// ZooKind selects a scenario family.
type ZooKind int

// Zoo scenario families.
const (
	// ZooIncast runs the testbed incast with DCTCP+, DT-DCTCP and the
	// DCTCP baseline and compares collapse behaviour.
	ZooIncast ZooKind = iota + 1
	// ZooPhantom runs a HULL phantom-queue dumbbell against the
	// analytic virtual-queue prediction (utilization pins at γ, real
	// queue stays under the threshold) and a DCTCP reference.
	ZooPhantom
	// ZooSharedBuffer runs a shared-buffer dumbbell against the
	// private-buffer reference — verdict-exact in the single-port
	// limit, band-compared under real sharing.
	ZooSharedBuffer
)

// ZooScenario is one zoo grid point.
type ZooScenario struct {
	// Name identifies the scenario in reports and golden files.
	Name string
	// Kind selects the family; the fields below it are read per family.
	Kind ZooKind

	// Incast family: worker count and rounds on the paper's testbed.
	// Collapse declares which regime the fan-in sits in: below the
	// cliff the checks demand a loss-free incast, above it they demand
	// the collapse actually happens and DT-DCTCP relieves it.
	Workers  int
	Rounds   int
	Collapse bool

	// Phantom and shared-buffer families: dumbbell shape.
	Flows      int
	Rate       netsim.Rate
	RTT        time.Duration
	BufferPkts int
	KPkts      int
	Warmup     time.Duration
	Duration   time.Duration

	// Gamma is the phantom drain fraction γ (phantom family).
	Gamma float64

	// Alpha and SinglePortLimit shape the shared-buffer pool: a
	// whole-switch pool at Alpha, or the bottleneck-only uncontended
	// limit pinned verdict-exact against the private-buffer run.
	Alpha           float64
	SinglePortLimit bool

	// Seed drives the simulator's randomness.
	Seed int64
	// Tol is this scenario's agreement band.
	Tol ZooTolerances
}

// ZooReport is the outcome of one zoo grid point.
type ZooReport struct {
	Scenario string  `json:"scenario"`
	Checks   []Check `json:"checks"`
}

// Pass reports whether every non-skipped check passed.
func (r ZooReport) Pass() bool {
	for _, c := range r.Checks {
		if c.Skipped == "" && !c.Pass {
			return false
		}
	}
	return true
}

// Failures returns the non-skipped checks that failed.
func (r ZooReport) Failures() []Check {
	var out []Check
	for _, c := range r.Checks {
		if c.Skipped == "" && !c.Pass {
			out = append(out, c)
		}
	}
	return out
}

// Applied counts the checks that actually ran (were not skipped).
func (r ZooReport) Applied() int {
	n := 0
	for _, c := range r.Checks {
		if c.Skipped == "" {
			n++
		}
	}
	return n
}

// zooG is the grid's EWMA gain, the paper's 1/16.
const zooG = 1.0 / 16

// RunZooScenario executes one zoo grid point and applies its checks.
func RunZooScenario(s ZooScenario) (ZooReport, error) {
	rep := ZooReport{Scenario: s.Name}
	var err error
	switch s.Kind {
	case ZooIncast:
		rep.Checks, err = runZooIncast(s)
	case ZooPhantom:
		rep.Checks, err = runZooPhantom(s)
	case ZooSharedBuffer:
		rep.Checks, err = runZooSharedBuffer(s)
	default:
		err = fmt.Errorf("conform %s: unknown zoo kind %d", s.Name, s.Kind)
	}
	if err != nil {
		return rep, fmt.Errorf("conform %s: %w", s.Name, err)
	}
	return rep, nil
}

// runZooIncast compares DCTCP+ against DT-DCTCP and the DCTCP baseline on
// the paper's testbed incast (Fig. 14 shape): the slow-timer sender must
// not collapse harder than plain DCTCP, and must stay on the same
// completion/goodput scale as the marking-side fix.
func runZooIncast(s ZooScenario) ([]Check, error) {
	run := func(p core.Protocol) (*core.QueryResult, error) {
		cfg := core.DefaultTestbed(p, s.Workers)
		cfg.Seed = s.Seed
		return core.RunIncast(cfg, s.Rounds)
	}
	plus, err := run(core.DCTCPPlus(20, zooG))
	if err != nil {
		return nil, fmt.Errorf("dctcp+: %w", err)
	}
	dt, err := run(core.DTDCTCP(16, 26, zooG))
	if err != nil {
		return nil, fmt.Errorf("dt-dctcp: %w", err)
	}
	base, err := run(core.DCTCP(20, zooG))
	if err != nil {
		return nil, fmt.Errorf("dctcp baseline: %w", err)
	}

	var checks []Check
	cc := Check{
		Name: "completion-mean/plus-vs-dt",
		Got:  plus.MeanCompletion.Seconds(),
		Ref:  dt.MeanCompletion.Seconds(),
	}
	if dt.MeanCompletion <= 0 {
		cc.Skipped = "rival run recorded no completions"
	} else {
		ratio := plus.MeanCompletion.Seconds() / dt.MeanCompletion.Seconds()
		cc.Detail = fmt.Sprintf("ratio %.2f in [%.2f, %.2f]", ratio, s.Tol.CompletionRatioLo, s.Tol.CompletionRatioHi)
		cc.Pass = ratio >= s.Tol.CompletionRatioLo && ratio <= s.Tol.CompletionRatioHi
	}
	checks = append(checks, cc)

	gc := Check{
		Name: "goodput-mean/plus-vs-dt",
		Got:  plus.MeanGoodputBps,
		Ref:  dt.MeanGoodputBps,
	}
	if dt.MeanGoodputBps <= 0 {
		gc.Skipped = "rival run recorded no goodput"
	} else {
		ratio := plus.MeanGoodputBps / dt.MeanGoodputBps
		gc.Detail = fmt.Sprintf("ratio %.2f in [%.2f, %.2f]", ratio, s.Tol.GoodputRatioLo, s.Tol.GoodputRatioHi)
		gc.Pass = ratio >= s.Tol.GoodputRatioLo && ratio <= s.Tol.GoodputRatioHi
	}
	checks = append(checks, gc)

	// The slow timer augments DCTCP; in every regime its completions
	// must track the baseline it grew out of.
	pb := Check{
		Name: "completion-mean/plus-vs-dctcp",
		Got:  plus.MeanCompletion.Seconds(),
		Ref:  base.MeanCompletion.Seconds(),
	}
	if base.MeanCompletion <= 0 {
		pb.Skipped = "baseline run recorded no completions"
	} else {
		ratio := plus.MeanCompletion.Seconds() / base.MeanCompletion.Seconds()
		pb.Detail = fmt.Sprintf("ratio %.2f in [%.2f, %.2f]", ratio, s.Tol.PlusBaseRatioLo, s.Tol.PlusBaseRatioHi)
		pb.Pass = ratio >= s.Tol.PlusBaseRatioLo && ratio <= s.Tol.PlusBaseRatioHi
	}
	checks = append(checks, pb)

	// Below the cliff the pacer must not manufacture timeouts the
	// baseline never saw; once the baseline itself collapses the
	// timeout-free claim has no referent and is skipped.
	tc := Check{
		Name: "timeouts/plus-below-cliff",
		Got:  float64(plus.Timeouts),
		Ref:  float64(base.Timeouts),
	}
	if base.Timeouts > 0 {
		tc.Skipped = fmt.Sprintf("baseline fired %d RTOs: the fan-in is past the cliff", base.Timeouts)
	} else {
		tc.Detail = fmt.Sprintf("%d RTOs (the pacer must not introduce timeouts below the cliff)", plus.Timeouts)
		tc.Pass = plus.Timeouts == 0
	}
	checks = append(checks, tc)

	// In the collapse regime, the marking-side fix must measurably ease
	// the collapse the baseline suffers.
	rc := Check{
		Name: "completion-mean/dt-vs-dctcp",
		Got:  dt.MeanCompletion.Seconds(),
		Ref:  base.MeanCompletion.Seconds(),
	}
	switch {
	case !s.Collapse:
		rc.Skipped = "below the cliff there is no collapse to relieve"
	case base.MeanCompletion <= 0:
		rc.Skipped = "baseline run recorded no completions"
	default:
		ratio := dt.MeanCompletion.Seconds() / base.MeanCompletion.Seconds()
		rc.Detail = fmt.Sprintf("ratio %.2f ≤ %.2f (DT-DCTCP must ease the collapse)", ratio, s.Tol.ReliefRatioMax)
		rc.Pass = ratio <= s.Tol.ReliefRatioMax
	}
	checks = append(checks, rc)

	// The declared regime must actually hold — this is the family's
	// anti-vacuity: a collapse scenario that never drops proves nothing,
	// and a pre-collapse scenario that drops is mislabeled.
	dc := Check{
		Name: "drops/dctcp-baseline",
		Got:  float64(base.Drops),
	}
	if s.Collapse {
		dc.Detail = fmt.Sprintf("%d drops > 0 (the incast must actually overflow the bottleneck)", base.Drops)
		dc.Pass = base.Drops > 0
	} else {
		dc.Detail = fmt.Sprintf("%d drops = 0 (below the cliff ECN absorbs the burst without loss)", base.Drops)
		dc.Pass = base.Drops == 0
	}
	checks = append(checks, dc)
	return checks, nil
}

// zooDumbbell maps a dumbbell-family scenario onto the simulator.
func (s ZooScenario) zooDumbbell(p core.Protocol) core.DumbbellConfig {
	return core.DumbbellConfig{
		Protocol:         p,
		Flows:            s.Flows,
		Rate:             s.Rate,
		RTT:              s.RTT,
		BufferPkts:       s.BufferPkts,
		Duration:         s.Duration,
		Warmup:           s.Warmup,
		QueueSampleEvery: s.RTT / 5,
		Seed:             s.Seed,
	}
}

// runZooPhantom checks HULL's analytic virtual-queue prediction: a
// phantom queue draining at γ·C pins utilization at γ, and with γ < 1 it
// marks early enough that the real queue's mean stays under the threshold
// the virtual queue trips at.
func runZooPhantom(s ZooScenario) ([]Check, error) {
	res, err := core.RunDumbbell(s.zooDumbbell(core.HULL(s.KPkts, s.Gamma, s.Rate, zooG)))
	if err != nil {
		return nil, fmt.Errorf("hull: %w", err)
	}
	ref, err := core.RunDumbbell(s.zooDumbbell(core.DCTCP(s.KPkts, zooG)))
	if err != nil {
		return nil, fmt.Errorf("dctcp reference: %w", err)
	}

	var checks []Check
	// The virtual queue saturates exactly when the arrival rate crosses
	// γ·C, so steady-state utilization must sit at γ (full rate at γ=1).
	uc := Check{
		Name: "utilization/sim-vs-virtual-queue-prediction",
		Got:  res.Utilization,
		Ref:  s.Gamma,
	}
	diff := res.Utilization - s.Gamma
	if diff < 0 {
		diff = -diff
	}
	uc.Detail = fmt.Sprintf("|util − γ| = %.3f ≤ %.3f", diff, s.Tol.UtilizationAbs)
	uc.Pass = diff <= s.Tol.UtilizationAbs
	checks = append(checks, uc)

	// Real-queue headroom: marking against the slower virtual drain
	// keeps the real buffer under the threshold.
	hc := Check{
		Name: "queue-mean/real-vs-threshold",
		Got:  res.QueueMeanPkts,
		Ref:  float64(s.KPkts),
	}
	if s.Gamma >= 1 {
		hc.Skipped = "γ = 1: the phantom queue tracks the real queue, no headroom claim to test"
	} else {
		bound := s.Tol.RealQueueFrac * float64(s.KPkts)
		hc.Detail = fmt.Sprintf("real mean %.1f pkts ≤ %.2f·K = %.1f", res.QueueMeanPkts, s.Tol.RealQueueFrac, bound)
		hc.Pass = res.QueueMeanPkts <= bound
	}
	checks = append(checks, hc)

	// Against the DCTCP reference at the same K: a γ<1 phantom must hold
	// a shorter real queue; at γ=1 the two markers see near-identical
	// occupancies and the means must sit on the same scale.
	qc := Check{
		Name: "queue-mean/hull-vs-dctcp",
		Got:  res.QueueMeanPkts,
		Ref:  ref.QueueMeanPkts,
	}
	switch {
	case ref.QueueMeanPkts < 1:
		qc.Skipped = fmt.Sprintf("reference queue mean %.2f pkts too small for a ratio", ref.QueueMeanPkts)
	case s.Gamma < 1:
		qc.Detail = fmt.Sprintf("phantom mean %.1f < reference %.1f (early marking shortens the real queue)",
			res.QueueMeanPkts, ref.QueueMeanPkts)
		qc.Pass = res.QueueMeanPkts < ref.QueueMeanPkts
	default:
		ratio := res.QueueMeanPkts / ref.QueueMeanPkts
		qc.Detail = fmt.Sprintf("ratio %.2f in [%.2f, %.2f]", ratio, s.Tol.QueueMeanRatioLo, s.Tol.QueueMeanRatioHi)
		qc.Pass = ratio >= s.Tol.QueueMeanRatioLo && ratio <= s.Tol.QueueMeanRatioHi
	}
	checks = append(checks, qc)

	checks = append(checks, Check{
		Name:   "stress/phantom-marks",
		Got:    float64(res.Marks),
		Detail: "the phantom queue must actually mark (anti-vacuity)",
		Pass:   res.Marks > 0,
	})
	return checks, nil
}

// runZooSharedBuffer checks the shared-buffer switch against the
// private-buffer reference. In the single-port limit the pooled run must
// be indistinguishable — same events, same marks, same drops, same queue
// trace hash. Under a whole-switch pool the dynamic allowance caps the
// bottleneck at the fixed point αB/(1+α) while utilization holds.
func runZooSharedBuffer(s ZooScenario) ([]Check, error) {
	p := core.DCTCP(s.KPkts, zooG)
	pooled := s.zooDumbbell(p)
	pooled.SharedBuffer = core.SharedBufferConfig{Alpha: s.Alpha, BottleneckOnly: s.SinglePortLimit}
	pres, err := core.RunDumbbell(pooled)
	if err != nil {
		return nil, fmt.Errorf("pooled: %w", err)
	}
	rres, err := core.RunDumbbell(s.zooDumbbell(p))
	if err != nil {
		return nil, fmt.Errorf("private reference: %w", err)
	}

	var checks []Check
	if s.SinglePortLimit {
		// Verdict-exact equivalence: every counter and the queue trace
		// must match bit for bit.
		ec := Check{
			Name: "events/pooled-vs-private",
			Got:  float64(pres.Events),
			Ref:  float64(rres.Events),
			Pass: pres.Events == rres.Events,
		}
		ec.Detail = fmt.Sprintf("%d vs %d (exact)", pres.Events, rres.Events)
		checks = append(checks, ec)
		mc := Check{
			Name: "marks-drops/pooled-vs-private",
			Got:  float64(pres.Marks),
			Ref:  float64(rres.Marks),
			Pass: pres.Marks == rres.Marks && pres.Drops == rres.Drops && pres.Timeouts == rres.Timeouts,
		}
		mc.Detail = fmt.Sprintf("marks %d/%d drops %d/%d timeouts %d/%d (exact)",
			pres.Marks, rres.Marks, pres.Drops, rres.Drops, pres.Timeouts, rres.Timeouts)
		checks = append(checks, mc)
		qc := Check{
			Name: "queue-trace/pooled-vs-private",
			Got:  pres.QueueMeanPkts,
			Ref:  rres.QueueMeanPkts,
		}
		switch {
		case pres.QueueSeries == nil || rres.QueueSeries == nil:
			qc.Skipped = "a run produced no queue series"
		default:
			qc.Pass = pres.QueueSeries.Hash64() == rres.QueueSeries.Hash64()
			qc.Detail = fmt.Sprintf("series hash %016x vs %016x (exact)",
				pres.QueueSeries.Hash64(), rres.QueueSeries.Hash64())
		}
		checks = append(checks, qc)
	} else {
		// Dynamic-threshold cap: with only the bottleneck congested the
		// allowance fixed point is q* = αB/(1+α).
		cap := s.Alpha * float64(s.BufferPkts) / (1 + s.Alpha)
		qm := Check{
			Name:   "queue-max/sim-vs-dt-fixed-point",
			Got:    pres.QueueMaxPkts,
			Ref:    cap,
			Detail: fmt.Sprintf("max %.1f pkts ≤ αB/(1+α) + %.0f = %.1f", pres.QueueMaxPkts, s.Tol.QueueCapSlackPkts, cap+s.Tol.QueueCapSlackPkts),
			Pass:   pres.QueueMaxPkts <= cap+s.Tol.QueueCapSlackPkts,
		}
		checks = append(checks, qm)
		uc := Check{
			Name:   "utilization/pooled",
			Got:    pres.Utilization,
			Ref:    1,
			Detail: fmt.Sprintf("utilization %.3f ≥ 1 − %.2f (the cap must not starve the link)", pres.Utilization, s.Tol.UtilizationAbs),
			Pass:   pres.Utilization >= 1-s.Tol.UtilizationAbs,
		}
		checks = append(checks, uc)
		qc := Check{
			Name: "queue-mean/pooled-vs-private",
			Got:  pres.QueueMeanPkts,
			Ref:  rres.QueueMeanPkts,
		}
		if rres.QueueMeanPkts < 1 {
			qc.Skipped = fmt.Sprintf("reference queue mean %.2f pkts too small for a ratio", rres.QueueMeanPkts)
		} else {
			ratio := pres.QueueMeanPkts / rres.QueueMeanPkts
			qc.Detail = fmt.Sprintf("ratio %.2f in [%.2f, %.2f]", ratio, s.Tol.QueueMeanRatioLo, s.Tol.QueueMeanRatioHi)
			qc.Pass = ratio >= s.Tol.QueueMeanRatioLo && ratio <= s.Tol.QueueMeanRatioHi
		}
		checks = append(checks, qc)
	}
	checks = append(checks, Check{
		Name:   "stress/pooled-marks",
		Got:    float64(pres.Marks),
		Detail: "the pooled bottleneck must actually mark (anti-vacuity)",
		Pass:   pres.Marks > 0,
	})
	return checks, nil
}

// zooDumbbellScenario is the dumbbell families' base point: the paper's
// Section VI-A bottleneck, shortened to keep the grid affordable.
func zooDumbbellScenario(name string, kind ZooKind, flows int) ZooScenario {
	return ZooScenario{
		Name:       name,
		Kind:       kind,
		Flows:      flows,
		Rate:       10 * netsim.Gbps,
		RTT:        100 * time.Microsecond,
		BufferPkts: 600,
		KPkts:      40,
		Warmup:     10 * time.Millisecond,
		Duration:   30 * time.Millisecond,
		Seed:       1,
		Tol:        DefaultZooTolerances(),
	}
}

// ZooGrid returns the zoo conformance grid: DCTCP+ against DT-DCTCP on
// two incast fan-ins, the phantom queue across γ, and the shared-buffer
// switch in its exact single-port limit and two sharing regimes.
func ZooGrid() []ZooScenario {
	var out []ZooScenario

	// Incast family: below and at the paper's collapse region.
	for _, w := range []int{16, 32} {
		s := ZooScenario{
			Name:     fmt.Sprintf("zoo-plus-vs-dt-incast-w%d", w),
			Kind:     ZooIncast,
			Workers:  w,
			Rounds:   3,
			Collapse: w >= 32,
			Seed:     1,
			Tol:      DefaultZooTolerances(),
		}
		out = append(out, s)
	}

	// Phantom family: HULL's γ sweep plus the γ = 1 fluid edge.
	for _, gamma := range []float64{0.80, 0.95, 1.0} {
		s := zooDumbbellScenario(fmt.Sprintf("zoo-hull-g%02.0f-n20", gamma*100), ZooPhantom, 20)
		s.Gamma = gamma
		out = append(out, s)
	}

	// Shared-buffer family: the exact uncontended limit, then sharing at
	// a conservative and a liberal α.
	limit := zooDumbbellScenario("zoo-sharedbuf-single-port-limit", ZooSharedBuffer, 40)
	limit.Alpha = 1e12
	limit.SinglePortLimit = true
	out = append(out, limit)
	for _, alpha := range []float64{1, 8} {
		s := zooDumbbellScenario(fmt.Sprintf("zoo-sharedbuf-a%.0f-n40", alpha), ZooSharedBuffer, 40)
		s.Alpha = alpha
		out = append(out, s)
	}
	return out
}

// QuickZooGrid returns a three-point subset of ZooGrid for smoke runs,
// one per family, with the same declared tolerances.
func QuickZooGrid() []ZooScenario {
	want := map[string]bool{
		"zoo-plus-vs-dt-incast-w16":       true,
		"zoo-hull-g95-n20":                true,
		"zoo-sharedbuf-single-port-limit": true,
	}
	var out []ZooScenario
	for _, s := range ZooGrid() {
		if want[s.Name] {
			out = append(out, s)
		}
	}
	return out
}

// RunZooGrid executes the scenarios concurrently on up to workers
// goroutines (values < 1 mean GOMAXPROCS). Every scenario runs in private
// engines seeded only by its own configuration, so reports are
// byte-identical for any worker count and are returned in input order.
func RunZooGrid(ctx context.Context, scenarios []ZooScenario, workers int) ([]ZooReport, error) {
	return runner.Map(ctx, len(scenarios), runner.Options{Workers: workers},
		func(_ context.Context, i int) (ZooReport, error) {
			return RunZooScenario(scenarios[i])
		})
}

// ZooGolden is one named dumbbell configuration in the zoo golden-digest
// suite: the DCTCP+ pacing path, the phantom marker, and the
// shared-buffer admission path each pin their determinism byte-for-byte.
type ZooGolden struct {
	Name string
	Cfg  core.DumbbellConfig
}

// ZooGoldenScenarios returns the zoo golden-run suite, regenerable with
//
//	go test ./internal/conform -run Golden -update
func ZooGoldenScenarios() []ZooGolden {
	base := func(p core.Protocol, flows int) core.DumbbellConfig {
		return core.DumbbellConfig{
			Protocol:         p,
			Flows:            flows,
			Rate:             10 * netsim.Gbps,
			RTT:              100 * time.Microsecond,
			BufferPkts:       600,
			Duration:         20 * time.Millisecond,
			Warmup:           5 * time.Millisecond,
			QueueSampleEvery: 20 * time.Microsecond,
			AlphaSampleEvery: 100 * time.Microsecond,
			Seed:             1,
		}
	}
	plus := base(core.DCTCPPlus(40, zooG), 16)
	hull := base(core.HULL(40, 0.95, 10*netsim.Gbps, zooG), 20)
	pool := base(core.DCTCP(40, zooG), 40)
	pool.SharedBuffer = core.SharedBufferConfig{Alpha: 2}
	return []ZooGolden{
		{Name: "golden-zoo-plus-n16", Cfg: plus},
		{Name: "golden-zoo-hull-g95-n20", Cfg: hull},
		{Name: "golden-zoo-sharedbuf-a2-n40", Cfg: pool},
	}
}
