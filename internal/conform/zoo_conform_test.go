package conform

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// TestZooGridConforms is the protocol-and-switch zoo's conformance
// contract: every grid point runs its candidate mechanism against its
// declared rival or analytic prediction, and every applicable check must
// hold within the scenario's tolerances.
func TestZooGridConforms(t *testing.T) {
	scenarios := ZooGrid()
	if len(scenarios) < 8 {
		t.Fatalf("zoo grid has %d scenarios, want at least 8", len(scenarios))
	}
	reports, err := RunZooGrid(context.Background(), scenarios, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reports {
		rep := rep
		t.Run(rep.Scenario, func(t *testing.T) {
			// Anti-vacuity: a scenario whose checks all skipped proves
			// nothing; demand at least two real comparisons.
			if got := rep.Applied(); got < 2 {
				t.Fatalf("only %d checks applied; a conformance point must compare at least 2 quantities", got)
			}
			for _, c := range rep.Checks {
				if c.Skipped != "" {
					t.Logf("skip %s: %s", c.Name, c.Skipped)
					continue
				}
				if !c.Pass {
					t.Errorf("%s: got %.4g ref %.4g (%s)", c.Name, c.Got, c.Ref, c.Detail)
				}
			}
		})
	}

	// Anti-vacuity across the grid: every kind of check must have run for
	// real somewhere, or a tolerance is dead weight.
	applied := map[string]int{}
	for _, rep := range reports {
		for _, c := range rep.Checks {
			if c.Skipped == "" {
				applied[c.Name]++
			}
		}
	}
	for _, name := range []string{
		"completion-mean/plus-vs-dt",
		"goodput-mean/plus-vs-dt",
		"completion-mean/plus-vs-dctcp",
		"timeouts/plus-below-cliff",
		"completion-mean/dt-vs-dctcp",
		"drops/dctcp-baseline",
		"utilization/sim-vs-virtual-queue-prediction",
		"queue-mean/real-vs-threshold",
		"queue-mean/hull-vs-dctcp",
		"events/pooled-vs-private",
		"marks-drops/pooled-vs-private",
		"queue-trace/pooled-vs-private",
		"queue-max/sim-vs-dt-fixed-point",
		"utilization/pooled",
	} {
		if applied[name] == 0 {
			t.Errorf("check %q was skipped on every scenario — the grid never exercises it", name)
		}
	}

	// Cross-scenario metamorphic check: utilization must be monotone in γ
	// across the HULL sweep — the virtual drain fraction is the knob the
	// whole phantom-queue claim hangs on.
	util := map[string]float64{}
	for _, rep := range reports {
		if !strings.HasPrefix(rep.Scenario, "zoo-hull-") {
			continue
		}
		for _, c := range rep.Checks {
			if c.Name == "utilization/sim-vs-virtual-queue-prediction" {
				util[rep.Scenario] = c.Got
			}
		}
	}
	u80, ok80 := util["zoo-hull-g80-n20"]
	u95, ok95 := util["zoo-hull-g95-n20"]
	u100, ok100 := util["zoo-hull-g100-n20"]
	if !ok80 || !ok95 || !ok100 {
		t.Fatalf("HULL sweep did not report all three utilizations: %v", util)
	}
	const slack = 0.02 // sampling noise on a 30 ms window
	if u80 > u95+slack || u95 > u100+slack {
		t.Errorf("utilization not monotone in γ: u(0.80)=%.3f u(0.95)=%.3f u(1.00)=%.3f", u80, u95, u100)
	}
}

// TestZooGridScenariosAreDistinct guards the grid's breadth: unique
// names, all three families present, and every dumbbell point small
// enough to reference-run.
func TestZooGridScenariosAreDistinct(t *testing.T) {
	seen := map[string]bool{}
	kinds := map[ZooKind]int{}
	for _, s := range ZooGrid() {
		if seen[s.Name] {
			t.Errorf("duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
		kinds[s.Kind]++
		switch s.Kind {
		case ZooIncast:
			if s.Workers <= 0 || s.Rounds <= 0 {
				t.Errorf("%s: incast scenario with no workers or rounds", s.Name)
			}
		case ZooPhantom:
			if s.Gamma <= 0 || s.Gamma > 1 {
				t.Errorf("%s: phantom drain fraction γ=%.2f outside (0, 1]", s.Name, s.Gamma)
			}
		case ZooSharedBuffer:
			if s.Alpha <= 0 {
				t.Errorf("%s: shared-buffer scenario with α=%.2f", s.Name, s.Alpha)
			}
		}
		if s.Kind != ZooIncast && s.Flows > 100 {
			t.Errorf("%s: %d flows is too many for a grid point", s.Name, s.Flows)
		}
	}
	for kind, want := range map[ZooKind]int{ZooIncast: 2, ZooPhantom: 3, ZooSharedBuffer: 3} {
		if kinds[kind] < want {
			t.Errorf("zoo grid has %d scenarios of kind %d, want at least %d", kinds[kind], kind, want)
		}
	}
}

// TestQuickZooGridIsSubset pins the smoke subset: one scenario per
// family, every entry resolving to a full-grid scenario.
func TestQuickZooGridIsSubset(t *testing.T) {
	quick := QuickZooGrid()
	if len(quick) != 3 {
		t.Fatalf("quick zoo grid has %d scenarios, want 3 (one per family)", len(quick))
	}
	full := map[string]bool{}
	for _, s := range ZooGrid() {
		full[s.Name] = true
	}
	kinds := map[ZooKind]bool{}
	for _, s := range quick {
		if !full[s.Name] {
			t.Errorf("quick scenario %q not in the full grid", s.Name)
		}
		kinds[s.Kind] = true
	}
	if len(kinds) != 3 {
		t.Errorf("quick grid covers %d families, want all 3", len(kinds))
	}
}

// TestZooReportsAreDeterministic runs one scenario from each family
// twice and demands identical reports — the conformance numbers are
// reproducible artifacts, including the DCTCP+ pacing and shared-buffer
// admission paths.
func TestZooReportsAreDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: repeat runs of the quick grid are covered by TestZooGridConforms")
	}
	for _, s := range QuickZooGrid() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			a, err := RunZooScenario(s)
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunZooScenario(s)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("repeat scenario run diverged:\n%+v\n%+v", a, b)
			}
		})
	}
}

// TestZooReportAccessors pins Pass/Failures/Applied on synthetic checks
// without paying for simulation runs.
func TestZooReportAccessors(t *testing.T) {
	rep := ZooReport{
		Scenario: "synthetic",
		Checks: []Check{
			{Name: "a", Pass: true},
			{Name: "b", Skipped: "not applicable"},
			{Name: "c", Pass: false},
		},
	}
	if rep.Pass() {
		t.Fatal("report with a failing check passed")
	}
	if got := rep.Applied(); got != 2 {
		t.Fatalf("Applied() = %d, want 2", got)
	}
	fails := rep.Failures()
	if len(fails) != 1 || fails[0].Name != "c" {
		t.Fatalf("Failures() = %+v, want just check c", fails)
	}
	rep.Checks[2].Pass = true
	if !rep.Pass() || rep.Failures() != nil {
		t.Fatal("all-pass report reported failures")
	}

	// An unknown kind must surface as an error, not a silent empty report.
	if _, err := RunZooScenario(ZooScenario{Name: "bogus", Kind: ZooKind(42)}); err == nil {
		t.Fatal("unknown zoo kind did not error")
	}
}
