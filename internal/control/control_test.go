package control

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

// paperPlant uses the parameter set of the paper's Fig. 9 (R = 100 µs,
// C = 10 Gbps, g = 1/16) with the capacity expressed in the packet unit
// that reproduces the paper's numeric onsets (see DESIGN.md: C = 10⁷
// pkts/s).
func paperPlant(n float64) Plant {
	return Plant{C: 1e7, N: n, R0: 1e-4, G: 1.0 / 16}
}

func TestPlantValid(t *testing.T) {
	if !paperPlant(10).Valid() {
		t.Fatal("paper plant should be valid")
	}
	bad := []Plant{
		{},
		{C: 1, N: 1, R0: 1}, // G = 0
		{C: 1, N: 1, G: 0.5},
		{C: 1, R0: 1, G: 0.5},
		{N: 1, R0: 1, G: 0.5},
		{C: 1, N: 1, R0: 1, G: 1.5},
	}
	for i, p := range bad {
		if p.Valid() {
			t.Errorf("plant %d should be invalid", i)
		}
	}
}

func TestPlantDCGainClosedForm(t *testing.T) {
	// As ω→0, G → √(C/2NR₀)·2R₀²C (all N-dependent poles/zeros cancel).
	p := paperPlant(60)
	want := math.Sqrt(p.C/(2*p.N*p.R0)) * 2 * p.R0 * p.R0 * p.C
	got := p.Eval(1e-3)
	if math.Abs(real(got)-want)/want > 1e-6 {
		t.Fatalf("G(0) = %v, want %v", got, want)
	}
	if math.Abs(imag(got)) > want*1e-3 {
		t.Fatalf("G(0) imaginary part %v not ~0", imag(got))
	}
}

func TestPhaseCrossover(t *testing.T) {
	p := paperPlant(60)
	df := DCTCPDF{K: 40}
	w, re, err := p.PhaseCrossover(df.K0(), 1e2, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	z := complex(df.K0(), 0) * p.Eval(w)
	if math.Abs(imag(z)) > 1e-6*cmplx.Abs(z) {
		t.Fatalf("crossover at w=%v has Im=%v", w, imag(z))
	}
	if re >= 0 {
		t.Fatalf("crossover real part %v, want negative", re)
	}
	// Paper's claim for N=60: the locus reaches past −π.
	if re > -math.Pi {
		t.Fatalf("crossover %v, want ≤ −π for N=60", re)
	}
}

func TestPhaseCrossoverInvalidPlant(t *testing.T) {
	var p Plant
	if _, _, err := p.PhaseCrossover(1, 1, 10); err == nil {
		t.Fatal("invalid plant accepted")
	}
}

func TestLocusSampling(t *testing.T) {
	p := paperPlant(10)
	ws, zs := p.Locus(1.0/40, 1e2, 1e6, 100)
	if len(ws) != 100 || len(zs) != 100 {
		t.Fatalf("locus lengths %d/%d", len(ws), len(zs))
	}
	if ws[0] != 1e2 || math.Abs(ws[99]-1e6)/1e6 > 1e-9 {
		t.Fatalf("locus endpoints %v..%v", ws[0], ws[99])
	}
	if ws2, zs2 := p.Locus(1, -1, 1, 10); ws2 != nil || zs2 != nil {
		t.Fatal("invalid range should return nil")
	}
}

func TestDCTCPDFClosedForm(t *testing.T) {
	df := DCTCPDF{K: 40}
	if df.MinAmplitude() != 40 || df.K0() != 1.0/40 {
		t.Fatal("accessors wrong")
	}
	// Below K the relay never switches: DF is 0.
	if df.Eval(30) != 0 {
		t.Fatal("DF below K should be 0")
	}
	// At X = K√2, N₀ attains its max 1/π, so −1/N₀ = −π.
	x := 40 * math.Sqrt2
	ni := df.NegInvRelative(x)
	if math.Abs(real(ni)+math.Pi) > 1e-9 || imag(ni) != 0 {
		t.Fatalf("−1/N₀(K√2) = %v, want −π", ni)
	}
	if df.MaxNegInvRelative() != -math.Pi {
		t.Fatal("MaxNegInvRelative")
	}
	if df.Name() != "dctcp-single" {
		t.Fatal("name")
	}
}

func TestDTDCTCPDFClosedForm(t *testing.T) {
	df := DTDCTCPDF{K1: 30, K2: 50}
	if df.MinAmplitude() != 50 || df.K0() != 1.0/50 {
		t.Fatal("accessors wrong")
	}
	if df.Eval(40) != 0 {
		t.Fatal("DF below max(K1,K2) should be 0")
	}
	n := df.Eval(100)
	// Eq. 27 by hand at X=100: re = (√(1−0.09)+√(1−0.25))/(100π),
	// im = 20/(π·10⁴).
	wantRe := (math.Sqrt(0.91) + math.Sqrt(0.75)) / (100 * math.Pi)
	wantIm := 20 / (math.Pi * 1e4)
	if math.Abs(real(n)-wantRe) > 1e-12 || math.Abs(imag(n)-wantIm) > 1e-12 {
		t.Fatalf("N_dt(100) = %v, want %v+%vj", n, wantRe, wantIm)
	}
	if imag(n) <= 0 {
		t.Fatal("DT DF must have positive imaginary part for K2 > K1")
	}
	// −1/N₀ then has positive imaginary part too (the paper's geometric
	// argument for why DT-DCTCP intersects later).
	if imag(df.NegInvRelative(100)) <= 0 {
		t.Fatal("−1/N₀ should have positive imaginary part")
	}
	if df.Name() != "dt-dctcp" {
		t.Fatal("name")
	}
}

// Property: with K1 = K2 = K the double-threshold DF degenerates exactly
// to the single-threshold DF.
func TestPropertyDTReducesToDC(t *testing.T) {
	f := func(kRaw, xRaw uint8) bool {
		k := float64(kRaw%60) + 5
		x := k*1.01 + float64(xRaw)
		dc := DCTCPDF{K: k}
		dt := DTDCTCPDF{K1: k, K2: k}
		a, b := dc.Eval(x), dt.Eval(x)
		return cmplx.Abs(a-b) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the closed-form DFs agree with direct numeric Fourier
// integration of the marking waveform.
func TestPropertyDFMatchesNumericFourier(t *testing.T) {
	const steps = 200000
	f := func(kRaw, xRaw uint8) bool {
		k := float64(kRaw%60) + 5
		x := k*1.05 + float64(xRaw) // X > K
		dc := DCTCPDF{K: k}
		numeric := NumericDF(x, steps, func(th float64) float64 {
			if x*math.Sin(th) >= k {
				return 1
			}
			return 0
		})
		return cmplx.Abs(dc.Eval(x)-numeric) < 5e-3*cmplx.Abs(dc.Eval(x))+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDTDFMatchesNumericFourier(t *testing.T) {
	// DT marking waveform for X·sin(θ): ON from the rising crossing of
	// K1 (θ = arcsin K1/X) to the falling crossing of K2
	// (θ = π − arcsin K2/X).
	k1, k2 := 30.0, 50.0
	df := DTDCTCPDF{K1: k1, K2: k2}
	for _, x := range []float64{55, 70, 100, 300} {
		phi1 := math.Asin(k1 / x)
		phi2 := math.Pi - math.Asin(k2/x)
		numeric := NumericDF(x, 400000, func(th float64) float64 {
			if th >= phi1 && th <= phi2 {
				return 1
			}
			return 0
		})
		if cmplx.Abs(df.Eval(x)-numeric) > 1e-3*cmplx.Abs(df.Eval(x)) {
			t.Fatalf("X=%v: closed form %v vs numeric %v", x, df.Eval(x), numeric)
		}
	}
}

func TestNumericDFMinSteps(t *testing.T) {
	// nSteps below the floor is clamped, not an error.
	got := NumericDF(10, 1, func(float64) float64 { return 1 })
	// A constant relay has no fundamental: both components ~0.
	if cmplx.Abs(got) > 1e-9 {
		t.Fatalf("constant waveform DF = %v, want ~0", got)
	}
}

func TestAnalyzeStabilityOnsets(t *testing.T) {
	dc := DCTCPDF{K: 40}
	dt := DTDCTCPDF{K1: 30, K2: 50}
	// DCTCP: stable at N=10, oscillating at N=60 (the paper's Fig. 9).
	v10, err := Analyze(paperPlant(10), dc)
	if err != nil {
		t.Fatal(err)
	}
	if !v10.Stable {
		t.Fatal("DCTCP at N=10 should be stable")
	}
	v60, err := Analyze(paperPlant(60), dc)
	if err != nil {
		t.Fatal(err)
	}
	if v60.Stable {
		t.Fatal("DCTCP at N=60 should oscillate")
	}
	if v60.Cycle.Amplitude < 40 {
		t.Fatalf("predicted amplitude %v below threshold K", v60.Cycle.Amplitude)
	}
	if v60.Cycle.PeriodSeconds() <= 0 {
		t.Fatal("period must be positive")
	}
	// DT-DCTCP is still stable at N=60 and oscillates by N=90.
	d60, err := Analyze(paperPlant(60), dt)
	if err != nil {
		t.Fatal(err)
	}
	if !d60.Stable {
		t.Fatal("DT-DCTCP at N=60 should still be stable")
	}
	d90, err := Analyze(paperPlant(90), dt)
	if err != nil {
		t.Fatal(err)
	}
	if d90.Stable {
		t.Fatal("DT-DCTCP at N=90 should oscillate")
	}
}

func TestAnalyzeAmplitudeGrowsWithN(t *testing.T) {
	dc := DCTCPDF{K: 40}
	prev := 0.0
	for _, n := range []float64{45, 60, 80, 100} {
		v, err := Analyze(paperPlant(n), dc)
		if err != nil {
			t.Fatal(err)
		}
		if v.Stable {
			t.Fatalf("N=%v unexpectedly stable", n)
		}
		if v.Cycle.Amplitude <= prev {
			t.Fatalf("amplitude should grow with N: N=%v gives %v after %v",
				n, v.Cycle.Amplitude, prev)
		}
		prev = v.Cycle.Amplitude
	}
}

func TestAnalyzeInvalidPlant(t *testing.T) {
	if _, err := Analyze(Plant{}, DCTCPDF{K: 40}); err == nil {
		t.Fatal("invalid plant accepted")
	}
}

func TestCriticalNOrdering(t *testing.T) {
	base := paperPlant(0) // N filled by CriticalN
	ndc, err := CriticalN(base, DCTCPDF{K: 40}, 2, 150)
	if err != nil {
		t.Fatal(err)
	}
	ndt, err := CriticalN(base, DTDCTCPDF{K1: 30, K2: 50}, 2, 150)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Fig. 9 story: both onsets are in the tens of flows and
	// DT-DCTCP's comes later.
	if ndc < 10 || ndc > 100 {
		t.Fatalf("DCTCP critical N = %d, want tens of flows", ndc)
	}
	if ndt <= ndc {
		t.Fatalf("DT-DCTCP critical N (%d) must exceed DCTCP's (%d)", ndt, ndc)
	}
}

func TestCriticalNStableEverywhere(t *testing.T) {
	// With 1500-byte packets (C ≈ 833k pkts/s) the same formulas predict
	// stability across the whole range — the unit-sensitivity note in
	// DESIGN.md.
	base := Plant{C: 10e9 / 8 / 1500, R0: 1e-4, G: 1.0 / 16}
	n, err := CriticalN(base, DCTCPDF{K: 40}, 2, 120)
	if err != nil {
		t.Fatal(err)
	}
	if n != 121 {
		t.Fatalf("CriticalN = %d, want 121 (stable everywhere)", n)
	}
}

func TestCriticalNAlreadyUnstable(t *testing.T) {
	n, err := CriticalN(paperPlant(0), DCTCPDF{K: 40}, 100, 150)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("CriticalN = %d, want 100 (unstable at range start)", n)
	}
}

func TestCriticalNBadRange(t *testing.T) {
	if _, err := CriticalN(paperPlant(0), DCTCPDF{K: 40}, 0, 5); err == nil {
		t.Fatal("bad range accepted")
	}
	if _, err := CriticalN(paperPlant(0), DCTCPDF{K: 40}, 10, 5); err == nil {
		t.Fatal("inverted range accepted")
	}
}
