package control

import (
	"math"
)

// DF is the describing function of one marking law: the complex gain seen
// by the fundamental of a sinusoidal queue excursion x = X·sin(ωt).
type DF interface {
	// Name identifies the marking law.
	Name() string
	// Eval returns N(X), defined for X ≥ MinAmplitude.
	Eval(X float64) complex128
	// NegInvRelative returns −1/N₀(X), the locus compared against
	// K₀·G(jω) (Eq. 9).
	NegInvRelative(X float64) complex128
	// K0 is the characteristic gain split out of the DF (1/K for
	// DCTCP, 1/K2 for DT-DCTCP).
	K0() float64
	// MinAmplitude is the smallest X for which the DF is defined (K
	// resp. max(K1, K2)).
	MinAmplitude() float64
}

// DCTCPDF is the relay describing function of the single-threshold marker
// (Eq. 22): N(X) = (2/πX)·√(1 − (K/X)²).
type DCTCPDF struct {
	// K is the marking threshold in packets.
	K float64
}

// Name implements DF.
func (DCTCPDF) Name() string { return "dctcp-single" }

// MinAmplitude implements DF.
func (d DCTCPDF) MinAmplitude() float64 { return d.K }

// K0 implements DF.
func (d DCTCPDF) K0() float64 { return 1 / d.K }

// Eval implements DF.
func (d DCTCPDF) Eval(X float64) complex128 {
	if X < d.K {
		return 0
	}
	u := d.K / X
	return complex(2/(math.Pi*X)*math.Sqrt(1-u*u), 0)
}

// NegInvRelative implements DF: −1/N₀ with N₀(X) = (2/π)(K/X)√(1−(K/X)²)
// (Eq. 23), purely real and ≤ −π.
func (d DCTCPDF) NegInvRelative(X float64) complex128 {
	n0 := d.Eval(X) * complex(d.K, 0)
	if n0 == 0 {
		return complex(math.Inf(-1), 0)
	}
	return -1 / n0
}

// MaxNegInvRelative returns max over X of −1/N₀(X) = −π, reached at
// X = K·√2. Theorem 1's stability condition compares the plant against
// this value.
func (DCTCPDF) MaxNegInvRelative() float64 { return -math.Pi }

// DTDCTCPDF is the describing function of the double-threshold marker
// (Eq. 27): marking starts at the rising crossing of K1 and stops at the
// falling crossing of K2.
type DTDCTCPDF struct {
	// K1 is the rising-edge threshold in packets.
	K1 float64
	// K2 is the falling-edge threshold in packets.
	K2 float64
}

// Name implements DF.
func (DTDCTCPDF) Name() string { return "dt-dctcp" }

// MinAmplitude implements DF.
func (d DTDCTCPDF) MinAmplitude() float64 { return math.Max(d.K1, d.K2) }

// K0 implements DF.
func (d DTDCTCPDF) K0() float64 { return 1 / d.K2 }

// Eval implements DF (Eq. 27):
//
//	N(X) = (1/πX)[√(1−(K1/X)²) + √(1−(K2/X)²)] + j·(K2−K1)/(πX²)
func (d DTDCTCPDF) Eval(X float64) complex128 {
	if X < d.MinAmplitude() {
		return 0
	}
	u1, u2 := d.K1/X, d.K2/X
	re := (math.Sqrt(1-u1*u1) + math.Sqrt(1-u2*u2)) / (math.Pi * X)
	im := (d.K2 - d.K1) / (math.Pi * X * X)
	return complex(re, im)
}

// NegInvRelative implements DF: −1/N₀ with N₀ = K2·N(X) (Eq. 28).
func (d DTDCTCPDF) NegInvRelative(X float64) complex128 {
	n0 := d.Eval(X) * complex(d.K2, 0)
	if n0 == 0 {
		return complex(math.Inf(-1), 0)
	}
	return -1 / n0
}

// NumericDF computes the describing function of an arbitrary relay
// waveform by direct Fourier integration of the marking indicator over
// one period, using nSteps trapezoids. mark(theta) must return the relay
// output (0 or 1) for the input X·sin(θ). It exists to cross-check the
// closed forms (property tests) and to analyze marker variants with no
// analytic DF.
func NumericDF(X float64, nSteps int, mark func(theta float64) float64) complex128 {
	if nSteps < 8 {
		nSteps = 8
	}
	h := 2 * math.Pi / float64(nSteps)
	var a1, b1 float64
	for i := 0; i < nSteps; i++ {
		th := float64(i) * h
		y := mark(th)
		a1 += y * math.Cos(th) * h
		b1 += y * math.Sin(th) * h
	}
	a1 /= math.Pi
	b1 /= math.Pi
	return complex(b1/X, a1/X)
}
