package control

import (
	"math"
	"testing"
)

// The margins must agree exactly with the Analyze verdict for DCTCP right
// at the instability boundary: GainMargin ≥ 1 one flow below the critical
// count, < 1 at and beyond it. (For DCTCP the −1/N₀ locus is the real
// ray (−∞, −π·K], so the two criteria coincide — the package doc's claim,
// pinned here at the boundary where it matters.)
func TestMarginsMatchVerdictAtDCTCPBoundary(t *testing.T) {
	df := DCTCPDF{K: 40}
	ncrit, err := CriticalN(paperPlant(1), df, 2, 200)
	if err != nil {
		t.Fatal(err)
	}
	if ncrit <= 2 || ncrit > 200 {
		t.Fatalf("critical N = %d outside the searchable range", ncrit)
	}
	for _, tc := range []struct {
		n          int
		wantStable bool
	}{
		{ncrit - 1, true},
		{ncrit, false},
		{ncrit + 1, false},
	} {
		p := paperPlant(float64(tc.n))
		v, err := Analyze(p, df)
		if err != nil {
			t.Fatal(err)
		}
		if v.Stable != tc.wantStable {
			t.Errorf("N=%d: Analyze stable=%v, want %v", tc.n, v.Stable, tc.wantStable)
		}
		m, err := StabilityMargins(p, df)
		if err != nil {
			t.Fatal(err)
		}
		if tc.wantStable && m.GainMargin < 1 {
			t.Errorf("N=%d: GainMargin %g < 1 on the stable side", tc.n, m.GainMargin)
		}
		if !tc.wantStable && m.GainMargin >= 1 {
			t.Errorf("N=%d: GainMargin %g ≥ 1 on the oscillating side", tc.n, m.GainMargin)
		}
	}
}

// For DT-DCTCP the scalar margin is conservative: wherever Analyze
// predicts a limit cycle, the margin must flag it too (GainMargin < 1),
// though the converse may not hold near the boundary.
func TestDTMarginConservativeAtBoundary(t *testing.T) {
	df := DTDCTCPDF{K1: 30, K2: 50}
	ncrit, err := CriticalN(paperPlant(1), df, 2, 300)
	if err != nil {
		t.Fatal(err)
	}
	if ncrit <= 2 || ncrit > 300 {
		t.Fatalf("critical N = %d outside the searchable range", ncrit)
	}
	for n := ncrit; n <= ncrit+10; n += 5 {
		p := paperPlant(float64(n))
		v, err := Analyze(p, df)
		if err != nil {
			t.Fatal(err)
		}
		if v.Stable {
			t.Fatalf("N=%d ≥ critical %d: expected oscillation", n, ncrit)
		}
		m, err := StabilityMargins(p, df)
		if err != nil {
			t.Fatal(err)
		}
		if m.GainMargin >= 1 {
			t.Errorf("N=%d oscillates but GainMargin = %g ≥ 1 (margin must be conservative)", n, m.GainMargin)
		}
	}
}

// The gain margin must shrink continuously and monotonically as N climbs
// through the boundary — no jumps or reversals that would make the margin
// useless as a distance-to-instability measure.
func TestGainMarginMonotoneAcrossBoundary(t *testing.T) {
	df := DCTCPDF{K: 40}
	ncrit, err := CriticalN(paperPlant(1), df, 2, 200)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.NaN()
	for n := ncrit - 10; n <= ncrit+10; n++ {
		if n < 1 {
			continue
		}
		m, err := StabilityMargins(paperPlant(float64(n)), df)
		if err != nil {
			t.Fatal(err)
		}
		if !math.IsNaN(prev) {
			if m.GainMargin >= prev {
				t.Fatalf("N=%d: GainMargin %g did not decrease (prev %g)", n, m.GainMargin, prev)
			}
			if prev-m.GainMargin > 0.5 {
				t.Fatalf("N=%d: GainMargin jumped by %g — not continuous", n, prev-m.GainMargin)
			}
		}
		prev = m.GainMargin
	}
}

// Right at the boundary the phase margin must exist (the locus reaches
// the critical magnitude) and change sign within a few flows of the
// verdict flip.
func TestPhaseMarginSignFlipsNearBoundary(t *testing.T) {
	df := DCTCPDF{K: 40}
	ncrit, err := CriticalN(paperPlant(1), df, 2, 200)
	if err != nil {
		t.Fatal(err)
	}
	// Well inside the stable region the margin is comfortably positive
	// (or the locus never even reaches the critical circle).
	mStable, err := StabilityMargins(paperPlant(float64(ncrit-10)), df)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(mStable.PhaseMargin) && mStable.PhaseMargin <= 0 {
		t.Errorf("N=%d (stable): PhaseMargin %g ≤ 0", ncrit-10, mStable.PhaseMargin)
	}
	// Past the boundary it must exist and be negative.
	mOsc, err := StabilityMargins(paperPlant(float64(ncrit+5)), df)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(mOsc.PhaseMargin) {
		t.Fatalf("N=%d (oscillating): PhaseMargin is NaN, want a finite negative value", ncrit+5)
	}
	if mOsc.PhaseMargin >= 0 {
		t.Errorf("N=%d (oscillating): PhaseMargin %g ≥ 0", ncrit+5, mOsc.PhaseMargin)
	}
	if mOsc.GainCrossover <= 0 || mOsc.PhaseCrossover <= 0 {
		t.Errorf("crossover frequencies must be positive: gc=%g pc=%g", mOsc.GainCrossover, mOsc.PhaseCrossover)
	}
}

// Degenerate thresholds: a DT describing function with K1 = K2 = K must
// give the same margins as the single-threshold one at the same K — the
// control-layer twin of the aqm packet-level degeneracy test.
func TestDegenerateDTMarginsEqualDCTCP(t *testing.T) {
	for _, n := range []float64{20, 60, 100} {
		p := paperPlant(n)
		md, err := StabilityMargins(p, DTDCTCPDF{K1: 40, K2: 40})
		if err != nil {
			t.Fatal(err)
		}
		ms, err := StabilityMargins(p, DCTCPDF{K: 40})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(md.GainMargin-ms.GainMargin) > 1e-6*math.Abs(ms.GainMargin) {
			t.Errorf("N=%g: DT(K,K) GainMargin %g ≠ DCTCP %g", n, md.GainMargin, ms.GainMargin)
		}
		if math.Abs(md.PhaseCrossover-ms.PhaseCrossover) > 1e-6*ms.PhaseCrossover {
			t.Errorf("N=%g: DT(K,K) PhaseCrossover %g ≠ DCTCP %g", n, md.PhaseCrossover, ms.PhaseCrossover)
		}
	}
}
