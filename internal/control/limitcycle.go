package control

import (
	"errors"
	"math"
	"math/cmplx"
)

// LimitCycle is a predicted self-oscillation: a solution of the
// characteristic equation K₀·G(jω) = −1/N₀(X) (Eqs. 19 and 24).
type LimitCycle struct {
	// Amplitude is the queue oscillation amplitude X in packets.
	Amplitude float64
	// Frequency is ω in rad/s.
	Frequency float64
	// Residual is |K₀G(jω) + 1/N₀(X)| at the solution; near zero for a
	// genuine intersection.
	Residual float64
}

// PeriodSeconds returns the oscillation period 2π/ω.
func (lc LimitCycle) PeriodSeconds() float64 { return 2 * math.Pi / lc.Frequency }

// Verdict summarizes a stability analysis of one (plant, marker) pair.
type Verdict struct {
	// Stable is true when the −1/N₀ locus is not reached by the plant
	// locus, i.e. no limit cycle is predicted (Theorems 1 and 2).
	Stable bool
	// Cycle is the predicted stable limit cycle when Stable is false.
	Cycle LimitCycle
	// ClosestApproach is the minimum distance between the two loci,
	// normalized by the locus magnitude; ≈ 0 when they intersect.
	ClosestApproach float64
}

// analysisTolerance is the normalized closest-approach distance below
// which the loci are declared intersecting.
const analysisTolerance = 1e-3

// Analyze applies the describing-function stability criterion: it searches
// for intersections of K₀·G(jω) with −1/N₀(X) and reports either
// stability or the predicted (stable) limit cycle — the intersection with
// the largest amplitude, following the paper's Section IV-B argument that
// the outward crossing is the stable one.
func Analyze(p Plant, df DF) (Verdict, error) {
	if !p.Valid() {
		return Verdict{}, errors.New("control: invalid plant")
	}
	k0 := df.K0()
	// Frequency range: the loop dynamics live around 1/R0; scan four
	// decades on each side.
	wMin := 1e-2 / p.R0
	wMax := 1e2 / p.R0

	xMin := df.MinAmplitude() * (1 + 1e-9)
	xMax := df.MinAmplitude() * 1e3

	// Coarse scan over X; for each X find the plant locus point nearest
	// to −1/N₀(X).
	const xSteps = 400
	bestX, bestW, bestNorm := xMin, wMin, math.Inf(1)
	ratio := math.Log(xMax / xMin)
	norms := make([]float64, xSteps+1)
	xsAt := make([]float64, xSteps+1)
	wsAt := make([]float64, xSteps+1)
	for i := 0; i <= xSteps; i++ {
		x := xMin * math.Exp(ratio*float64(i)/float64(xSteps))
		xsAt[i] = x
		norms[i] = math.Inf(1)
		target := df.NegInvRelative(x)
		if cmplx.IsInf(target) || cmplx.IsNaN(target) {
			continue
		}
		w, dist := nearestOnLocus(p, k0, target, wMin, wMax)
		wsAt[i] = w
		norms[i] = dist / (1 + cmplx.Abs(target))
		if norms[i] < bestNorm {
			bestNorm, bestX, bestW = norms[i], x, w
		}
	}

	normAt := func(x, w float64) float64 {
		return cmplx.Abs(complex(k0, 0)*p.Eval(w)-df.NegInvRelative(x)) /
			(1 + cmplx.Abs(df.NegInvRelative(x)))
	}

	// Refine the best candidate before deciding: the coarse X grid has
	// ~1.7% spacing, which leaves a residual floor well above a true
	// intersection's.
	px, pw := polish(p, df, bestX, bestW)
	best := Verdict{ClosestApproach: normAt(px, pw)}
	best.Cycle = LimitCycle{
		Amplitude: px,
		Frequency: pw,
		Residual:  cmplx.Abs(complex(k0, 0)*p.Eval(pw) - df.NegInvRelative(px)),
	}
	if best.ClosestApproach >= analysisTolerance {
		best.Stable = true
		return best, nil
	}

	// Intersections exist. The characteristic equation generally has two
	// solutions; report the largest-X one (the stable limit cycle, per
	// the paper's Section IV-B argument that the outward crossing is
	// stable): polish near-miss candidates from the top of the X range.
	for i := xSteps; i >= 0; i-- {
		if norms[i] > 20*analysisTolerance {
			continue
		}
		x, w := polish(p, df, xsAt[i], wsAt[i])
		if normAt(x, w) < analysisTolerance {
			best.Cycle = LimitCycle{
				Amplitude: x,
				Frequency: w,
				Residual:  cmplx.Abs(complex(k0, 0)*p.Eval(w) - df.NegInvRelative(x)),
			}
			break
		}
	}
	best.Stable = false
	return best, nil
}

// nearestOnLocus finds the frequency whose locus point is closest to
// target: coarse log scan plus golden-section refinement.
func nearestOnLocus(p Plant, k0 float64, target complex128, wMin, wMax float64) (w float64, dist float64) {
	const steps = 600
	ratio := math.Log(wMax / wMin)
	bestW, bestD := wMin, math.Inf(1)
	for i := 0; i <= steps; i++ {
		cw := wMin * math.Exp(ratio*float64(i)/float64(steps))
		d := cmplx.Abs(complex(k0, 0)*p.Eval(cw) - target)
		if d < bestD {
			bestD, bestW = d, cw
		}
	}
	// Golden-section refinement on log-frequency around the best sample.
	lo := bestW * math.Exp(-ratio/steps)
	hi := bestW * math.Exp(ratio/steps)
	f := func(w float64) float64 {
		return cmplx.Abs(complex(k0, 0)*p.Eval(w) - target)
	}
	const phi = 0.6180339887498949
	a, b := math.Log(lo), math.Log(hi)
	c := b - phi*(b-a)
	d := a + phi*(b-a)
	fc, fd := f(math.Exp(c)), f(math.Exp(d))
	for i := 0; i < 80; i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - phi*(b-a)
			fc = f(math.Exp(c))
		} else {
			a, c, fc = c, d, fd
			d = a + phi*(b-a)
			fd = f(math.Exp(d))
		}
	}
	w = math.Exp((a + b) / 2)
	return w, f(w)
}

// polish runs a few rounds of coordinate descent on (X, ω) to sharpen an
// intersection estimate.
func polish(p Plant, df DF, x, w float64) (float64, float64) {
	k0 := df.K0()
	obj := func(x, w float64) float64 {
		return cmplx.Abs(complex(k0, 0)*p.Eval(w) - df.NegInvRelative(x))
	}
	for iter := 0; iter < 20; iter++ {
		// Line search in X.
		step := x * 0.02
		for step > x*1e-8 {
			switch {
			case x-step > df.MinAmplitude() && obj(x-step, w) < obj(x, w):
				x -= step
			case obj(x+step, w) < obj(x, w):
				x += step
			default:
				step /= 2
			}
		}
		// Line search in ω.
		wstep := w * 0.02
		for wstep > w*1e-8 {
			switch {
			case obj(x, w-wstep) < obj(x, w):
				w -= wstep
			case obj(x, w+wstep) < obj(x, w):
				w += wstep
			default:
				wstep /= 2
			}
		}
	}
	return x, w
}

// CriticalN finds the smallest integer flow count in [nMin, nMax] at which
// the loop first predicts a limit cycle, holding every other parameter
// fixed. It returns nMax+1 when the loop is stable across the whole range.
func CriticalN(base Plant, df DF, nMin, nMax int) (int, error) {
	if nMin < 1 || nMax < nMin {
		return 0, errors.New("control: invalid N range")
	}
	lo, hi := nMin, nMax+1
	// Verify monotonicity assumption cheaply at the ends.
	stableAt := func(n int) (bool, error) {
		p := base
		p.N = float64(n)
		v, err := Analyze(p, df)
		if err != nil {
			return false, err
		}
		return v.Stable, nil
	}
	sLo, err := stableAt(lo)
	if err != nil {
		return 0, err
	}
	if !sLo {
		return lo, nil
	}
	sHi, err := stableAt(nMax)
	if err != nil {
		return 0, err
	}
	if sHi {
		return nMax + 1, nil
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		s, err := stableAt(mid)
		if err != nil {
			return 0, err
		}
		if s {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, nil
}
