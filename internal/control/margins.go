package control

import (
	"errors"
	"math"
	"math/cmplx"
)

// Margins summarizes the classical stability margins of the loop formed
// by the plant and a describing function evaluated at its most permissive
// amplitude (the max of −1/N₀, which is the point the locus reaches
// first). They quantify *how far* the loop is from oscillation onset,
// complementing the binary verdict of Analyze.
//
// For DCTCP the −1/N₀ locus lies on the real axis and GainMargin < 1
// coincides exactly with Analyze's oscillation verdict. For DT-DCTCP the
// locus is complex, and the scalar margin (measured against its minimum
// modulus) is conservative: the plant's locus can cross that modulus
// circle without touching the actual −1/N₀ curve, so GainMargin can dip
// below 1 a little before Analyze declares an intersection. The ordering
// between protocols at equal N is meaningful either way.
type Margins struct {
	// GainMargin is the factor by which the loop gain can grow before
	// the locus reaches the describing function's critical point:
	// |critical| / |K₀G(jω_pc)| at the phase crossover. > 1 is stable.
	GainMargin float64
	// PhaseCrossover is the frequency (rad/s) where the locus crosses
	// the negative real axis.
	PhaseCrossover float64
	// PhaseMargin is the additional phase lag (radians) the loop can
	// absorb at the gain-crossover frequency (where |K₀G| equals the
	// critical magnitude) before oscillating. NaN when the locus never
	// reaches the critical magnitude.
	PhaseMargin float64
	// GainCrossover is the frequency (rad/s) where |K₀G| crosses the
	// critical magnitude, or 0 when it never does.
	GainCrossover float64
}

// StabilityMargins computes the loop's margins against the describing
// function's most permissive point. For DCTCP that point is −π on the
// real axis (Theorem 1's max(−1/N₀)); for DT-DCTCP the locus of −1/N₀ is
// complex and the critical point is taken at its minimum modulus.
func StabilityMargins(p Plant, df DF) (Margins, error) {
	if !p.Valid() {
		return Margins{}, errors.New("control: invalid plant")
	}
	critical := criticalMagnitude(df)
	k0 := df.K0()
	wMin, wMax := 1e-2/p.R0, 1e2/p.R0

	var m Margins
	wpc, re, err := p.PhaseCrossover(k0, wMin, wMax)
	if err != nil {
		return Margins{}, err
	}
	m.PhaseCrossover = wpc
	m.GainMargin = critical / math.Abs(re)

	// Gain crossover: largest ω with |K₀G| ≥ critical (magnitude decays
	// with ω in this plant).
	const steps = 4000
	ratio := math.Log(wMax / wMin)
	gc, found := 0.0, false
	for i := 0; i <= steps; i++ {
		w := wMin * math.Exp(ratio*float64(i)/float64(steps))
		if cmplx.Abs(complex(k0, 0)*p.Eval(w)) >= critical {
			gc, found = w, true
		}
	}
	if !found {
		m.PhaseMargin = math.NaN()
		return m, nil
	}
	m.GainCrossover = gc
	phase := cmplx.Phase(complex(k0, 0) * p.Eval(gc))
	// Distance of the phase at gain crossover from −π, unwrapped into
	// (−π, π].
	m.PhaseMargin = math.Pi + phase
	for m.PhaseMargin > math.Pi {
		m.PhaseMargin -= 2 * math.Pi
	}
	return m, nil
}

// criticalMagnitude returns the modulus of the describing function's most
// permissive point: min over X of |−1/N₀(X)|.
func criticalMagnitude(df DF) float64 {
	xMin := df.MinAmplitude() * (1 + 1e-9)
	best := math.Inf(1)
	for i := 0; i <= 2000; i++ {
		x := xMin * math.Exp(math.Log(1e3)*float64(i)/2000)
		v := df.NegInvRelative(x)
		if a := cmplx.Abs(v); a < best {
			best = a
		}
	}
	return best
}
