package control

import (
	"math"
	"testing"
)

func TestCriticalMagnitudeDCTCP(t *testing.T) {
	// For DCTCP the most permissive point of −1/N₀ is −π.
	got := criticalMagnitude(DCTCPDF{K: 40})
	if math.Abs(got-math.Pi) > 1e-3 {
		t.Fatalf("critical magnitude = %v, want π", got)
	}
}

func TestMarginsTrackStability(t *testing.T) {
	dc := DCTCPDF{K: 40}
	// Stable regime: gain margin > 1.
	m10, err := StabilityMargins(paperPlant(10), dc)
	if err != nil {
		t.Fatal(err)
	}
	if m10.GainMargin <= 1 {
		t.Fatalf("N=10 gain margin = %v, want > 1 (stable)", m10.GainMargin)
	}
	// Unstable regime: gain margin < 1.
	m80, err := StabilityMargins(paperPlant(80), dc)
	if err != nil {
		t.Fatal(err)
	}
	if m80.GainMargin >= 1 {
		t.Fatalf("N=80 gain margin = %v, want < 1 (oscillating)", m80.GainMargin)
	}
	// The margin shrinks monotonically toward onset.
	m40, err := StabilityMargins(paperPlant(40), dc)
	if err != nil {
		t.Fatal(err)
	}
	if !(m10.GainMargin > m40.GainMargin && m40.GainMargin > m80.GainMargin) {
		t.Fatalf("gain margins not monotone: %v %v %v",
			m10.GainMargin, m40.GainMargin, m80.GainMargin)
	}
	if m80.PhaseCrossover <= 0 {
		t.Fatal("phase crossover missing")
	}
	// In the unstable regime the gain crossover exists and the phase
	// margin is negative (the locus is already past −π there).
	if m80.GainCrossover <= 0 || math.IsNaN(m80.PhaseMargin) || m80.PhaseMargin >= 0 {
		t.Fatalf("N=80 phase margin = %v at %v rad/s", m80.PhaseMargin, m80.GainCrossover)
	}
}

func TestMarginsDTDCTCPLargerThanDCTCP(t *testing.T) {
	// At equal N in the stable band, DT-DCTCP's gain margin must exceed
	// DCTCP's — the margin form of the paper's Fig. 9 argument.
	for _, n := range []float64{20, 30} {
		dc, err := StabilityMargins(paperPlant(n), DCTCPDF{K: 40})
		if err != nil {
			t.Fatal(err)
		}
		dt, err := StabilityMargins(paperPlant(n), DTDCTCPDF{K1: 30, K2: 50})
		if err != nil {
			t.Fatal(err)
		}
		if dt.GainMargin <= dc.GainMargin {
			t.Fatalf("N=%v: DT margin %v should exceed DCTCP's %v",
				n, dt.GainMargin, dc.GainMargin)
		}
	}
}

func TestMarginsInvalidPlant(t *testing.T) {
	if _, err := StabilityMargins(Plant{}, DCTCPDF{K: 40}); err == nil {
		t.Fatal("invalid plant accepted")
	}
}
