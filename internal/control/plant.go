// Package control implements the paper's stability machinery (Sections
// IV–V): the linearized DCTCP plant transfer function G(jω) of Eq. (18),
// the describing functions of the single- and double-threshold markers
// (Eqs. 22 and 27), the relative DFs and their negative reciprocals
// (Eqs. 23 and 28), Nyquist locus sampling, limit-cycle (intersection)
// search, and the critical flow count at which oscillation first appears
// (the paper's Fig. 9: N ≈ 60 for DCTCP vs N ≈ 70 for DT-DCTCP).
package control

import (
	"errors"
	"math"
	"math/cmplx"
)

// Plant is the linear part of the loop: every block of Fig. 5 except the
// marking law, evaluated on the imaginary axis.
//
//	G(jω) = √(C/2NR₀) · (2g/R₀ + jω) · (N/R₀) · e^(−jωR₀)
//	        ───────────────────────────────────────────────
//	        (jω + g/R₀)(jω + N/(R₀²C))(jω + 1/R₀)
type Plant struct {
	// C is the bottleneck capacity in packets/second.
	C float64
	// N is the number of flows.
	N float64
	// R0 is the reference round-trip time in seconds.
	R0 float64
	// G is DCTCP's α gain g.
	G float64
}

// Valid reports whether the parameters define a meaningful plant.
func (p Plant) Valid() bool {
	return p.C > 0 && p.N > 0 && p.R0 > 0 && p.G > 0 && p.G <= 1
}

// Eval returns G(jω).
func (p Plant) Eval(w float64) complex128 {
	jw := complex(0, w)
	gain := math.Sqrt(p.C / (2 * p.N * p.R0))
	num := complex(2*p.G/p.R0, 0) + jw
	num *= complex(p.N/p.R0, 0)
	num *= cmplx.Exp(complex(0, -w*p.R0))
	den := (jw + complex(p.G/p.R0, 0)) *
		(jw + complex(p.N/(p.R0*p.R0*p.C), 0)) *
		(jw + complex(1/p.R0, 0))
	return complex(gain, 0) * num / den
}

// Locus samples K0·G(jω) at logarithmically spaced frequencies in
// [wMin, wMax]. The returned slices are frequencies and locus points.
func (p Plant) Locus(k0 float64, wMin, wMax float64, points int) ([]float64, []complex128) {
	if points < 2 || wMin <= 0 || wMax <= wMin {
		return nil, nil
	}
	ws := make([]float64, points)
	zs := make([]complex128, points)
	ratio := math.Log(wMax / wMin)
	for i := range ws {
		w := wMin * math.Exp(ratio*float64(i)/float64(points-1))
		ws[i] = w
		zs[i] = complex(k0, 0) * p.Eval(w)
	}
	return ws, zs
}

// PhaseCrossover locates the first frequency where the locus crosses the
// negative real axis (Im = 0 with Re < 0), scanning upward from wMin. It
// returns the frequency and the (negative) real value there.
func (p Plant) PhaseCrossover(k0, wMin, wMax float64) (w float64, re float64, err error) {
	if !p.Valid() {
		return 0, 0, errors.New("control: invalid plant")
	}
	const steps = 4000
	ratio := math.Log(wMax / wMin)
	prevW := wMin
	prevIm := imag(complex(k0, 0) * p.Eval(wMin))
	for i := 1; i <= steps; i++ {
		cw := wMin * math.Exp(ratio*float64(i)/float64(steps))
		z := complex(k0, 0) * p.Eval(cw)
		// The exact-zero tests deliberately exclude samples landing on
		// the axis from the bracket: a sign test on ±0 is ambiguous.
		if im := imag(z); prevIm != 0 && im != 0 && (prevIm < 0) != (im < 0) { //dtlint:allow floatcmp: exact-zero screen for the sign-change bracket
			// Bisect the bracket.
			lo, hi := prevW, cw
			for iter := 0; iter < 100; iter++ {
				mid := math.Sqrt(lo * hi)
				if (imag(complex(k0, 0)*p.Eval(mid)) < 0) == (prevIm < 0) {
					lo = mid
				} else {
					hi = mid
				}
			}
			wc := math.Sqrt(lo * hi)
			zc := complex(k0, 0) * p.Eval(wc)
			if real(zc) < 0 {
				return wc, real(zc), nil
			}
		}
		prevW, prevIm = cw, imag(z)
	}
	return 0, 0, errors.New("control: no negative-real-axis crossing found")
}
