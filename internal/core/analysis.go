package core

import (
	"errors"
	"time"

	"dtdctcp/internal/aqm"
	"dtdctcp/internal/control"
	"dtdctcp/internal/fluid"
	"dtdctcp/internal/sim"
)

// AnalysisParams carries the network parameters shared by the
// describing-function and fluid-model analyses.
type AnalysisParams struct {
	// CapacityPktsPerSec is the bottleneck capacity C in packets/second.
	CapacityPktsPerSec float64
	// RTT is the reference round-trip time R₀ in seconds.
	RTT float64
	// G is DCTCP's α gain.
	G float64
}

// PaperAnalysisParams returns the parameter set behind the paper's Fig. 9:
// R = 100 µs, g = 1/16, and C = 10 Gbps expressed as 10⁷ pkts/s — the
// packet unit under which the paper's reported onsets (N ≈ 60 for DCTCP,
// N ≈ 70 for DT-DCTCP) come out of Eqs. (19)/(24); see DESIGN.md for the
// unit-sensitivity discussion.
func PaperAnalysisParams() AnalysisParams {
	return AnalysisParams{CapacityPktsPerSec: 1e7, RTT: 1e-4, G: 1.0 / 16}
}

// Plant builds the linearized plant of Eq. (18) for n flows.
func (a AnalysisParams) Plant(n int) control.Plant {
	return control.Plant{C: a.CapacityPktsPerSec, N: float64(n), R0: a.RTT, G: a.G}
}

// AnalyzeStability runs the describing-function criterion for the
// protocol's marker at the given flow count.
func AnalyzeStability(p Protocol, params AnalysisParams, flows int) (control.Verdict, error) {
	df := p.DF()
	if df == nil {
		return control.Verdict{}, errors.New("core: protocol has no ECN marker to analyze")
	}
	return control.Analyze(params.Plant(flows), df)
}

// CriticalFlows finds the smallest flow count in [nMin, nMax] predicted to
// oscillate under the protocol's marker, or nMax+1 if none.
func CriticalFlows(p Protocol, params AnalysisParams, nMin, nMax int) (int, error) {
	df := p.DF()
	if df == nil {
		return 0, errors.New("core: protocol has no ECN marker to analyze")
	}
	return control.CriticalN(params.Plant(1), df, nMin, nMax)
}

// FluidConfig builds a fluid-model configuration matching the protocol's
// marker for n flows, integrating for the given duration.
func FluidConfig(p Protocol, params AnalysisParams, flows int, duration time.Duration) (fluid.Config, error) {
	law := p.MarkingLaw()
	if law == nil {
		return fluid.Config{}, errors.New("core: protocol has no marking law")
	}
	ref := float64(p.K)
	if p.K2 > 0 {
		ref = float64(p.K1+p.K2) / 2
	}
	return fluid.Config{
		N:           float64(flows),
		C:           params.CapacityPktsPerSec,
		D:           params.RTT,
		G:           params.G,
		Law:         law,
		RTTRefQueue: ref,
		Duration:    duration.Seconds(),
	}, nil
}

// MarkDecision is one step of a marker replay (Fig. 2).
type MarkDecision struct {
	// QueuePkts is the queue occupancy presented to the marker.
	QueuePkts int
	// Marked reports whether the arriving packet got CE.
	Marked bool
}

// ReplayMarker drives a queue-length trajectory (in packets) through a
// fresh instance of the protocol's marker and records the per-arrival
// marking decisions. It reproduces the paper's Fig. 2 comparison of the
// two marking strategies on the same queue trajectory. The replay is an
// offline analysis with no engine, so randomized laws receive no source
// and degrade to their deterministic behaviour.
func ReplayMarker(p Protocol, trajectoryPkts []int) ([]MarkDecision, error) {
	if p.NewPolicy == nil {
		return nil, errors.New("core: protocol has no queue law")
	}
	pol := p.NewPolicy(nil)
	pktSize := p.PacketSize()
	out := make([]MarkDecision, len(trajectoryPkts))
	for i, q := range trajectoryPkts {
		v := pol.OnArrival(sim.Time(i), q*pktSize, pktSize)
		out[i] = MarkDecision{QueuePkts: q, Marked: v == aqm.AcceptMark}
	}
	return out, nil
}

// TriangleTrajectory builds a symmetric rise-and-fall queue trajectory
// from 0 to peak and back, one packet per step — the canonical input for
// ReplayMarker.
func TriangleTrajectory(peak int) []int {
	if peak <= 0 {
		return nil
	}
	out := make([]int, 0, 2*peak+1)
	for q := 0; q <= peak; q++ {
		out = append(out, q)
	}
	for q := peak - 1; q >= 0; q-- {
		out = append(out, q)
	}
	return out
}
