package core

import (
	"errors"
	"fmt"
	"time"

	"dtdctcp/internal/netsim"
	"dtdctcp/internal/sim"
	"dtdctcp/internal/stats"
	"dtdctcp/internal/tcp"
	"dtdctcp/internal/workload"
)

// BuildupConfig is the "queue buildup" microbenchmark the paper inherits
// from the DCTCP evaluation: a few long-lived flows keep the bottleneck
// busy while a latency-sensitive client repeatedly fetches short
// transfers through the same queue. The short flows' completion time
// exposes the standing queue each protocol maintains.
type BuildupConfig struct {
	// Protocol selects endpoints and queue law.
	Protocol Protocol
	// LongFlows is the number of background bulk flows (the DCTCP paper
	// uses 2).
	LongFlows int
	// ShortBytes is each short transfer's size (DCTCP paper: 20 KB).
	ShortBytes int64
	// ShortEvery is the idle gap between short transfers.
	ShortEvery time.Duration
	// Rate, RTT, BufferPkts as in DumbbellConfig.
	Rate       netsim.Rate
	RTT        time.Duration
	BufferPkts int
	// Duration bounds the run; Warmup lets the background flows settle
	// before the first short transfer starts.
	Duration, Warmup time.Duration
	// Seed drives randomness.
	Seed int64
}

// BuildupResult summarizes the short flows' experience.
type BuildupResult struct {
	// Protocol echoes the configuration.
	Protocol string
	// ShortTransfers counts completed short flows.
	ShortTransfers int
	// MeanFCT, P95FCT, MaxFCT summarize short-flow completion times.
	MeanFCT, P95FCT, MaxFCT time.Duration
	// QueueMeanPkts is the bottleneck's time-weighted mean occupancy.
	QueueMeanPkts float64
	// BackgroundUtilization is the long flows' share of capacity.
	BackgroundUtilization float64
}

// RunBuildup executes the microbenchmark.
func RunBuildup(cfg BuildupConfig) (*BuildupResult, error) {
	if cfg.LongFlows <= 0 || cfg.ShortBytes <= 0 || cfg.Duration <= 0 ||
		cfg.Rate <= 0 || cfg.RTT <= 0 || cfg.BufferPkts <= 0 {
		return nil, errors.New("core: invalid buildup config")
	}
	if cfg.ShortEvery <= 0 {
		cfg.ShortEvery = time.Millisecond
	}

	engine := sim.NewEngine(cfg.Seed)
	nw := netsim.NewNetwork(engine)
	sw := nw.AddSwitch("sw")
	rcv := nw.AddHost("rcv")
	pktSize := cfg.Protocol.PacketSize()
	hop := cfg.RTT / 4
	access := netsim.PortConfig{Rate: 10 * cfg.Rate, Delay: hop, Buffer: 4096 * pktSize}
	bneckCfg := netsim.PortConfig{Rate: cfg.Rate, Delay: hop, Buffer: cfg.BufferPkts * pktSize}
	if cfg.Protocol.NewPolicy != nil {
		bneckCfg.Policy = cfg.Protocol.NewPolicy(engine.Rand())
	}
	if err := nw.Connect(rcv, sw, access, bneckCfg); err != nil {
		return nil, err
	}
	longHosts := make([]*netsim.Host, cfg.LongFlows)
	for i := range longHosts {
		longHosts[i] = nw.AddHost(fmt.Sprintf("bg%d", i))
		if err := nw.Connect(longHosts[i], sw, access, access); err != nil {
			return nil, err
		}
	}
	shortHost := nw.AddHost("short")
	if err := nw.Connect(shortHost, sw, access, access); err != nil {
		return nil, err
	}
	if err := nw.ComputeRoutes(); err != nil {
		return nil, err
	}

	bneck := sw.PortTo(rcv.ID())
	rec := netsim.NewQueueRecorder(pktSize, 0)
	rec.WarmupUntil = sim.FromDuration(cfg.Warmup)
	bneck.SetMonitor(rec)

	bg := workload.StartLongLived(engine, workload.LongLivedConfig{
		Hosts:       longHosts,
		Receiver:    rcv,
		TCP:         cfg.Protocol.TCP,
		StartJitter: cfg.RTT,
	})

	// Sequential short transfers on fresh connections, starting after
	// warmup.
	var fcts []float64
	const shortFlowBase = 1 << 20
	flowID := netsim.FlowID(shortFlowBase)
	var launch func()
	launch = func() {
		flow := flowID
		flowID++
		s := tcp.NewSender(shortHost, flow, rcv.ID(), cfg.ShortBytes, cfg.Protocol.TCP)
		tcp.NewReceiver(rcv, flow, shortHost.ID(), cfg.Protocol.TCP)
		started := engine.Now()
		s.OnComplete = func(done sim.Time) {
			fcts = append(fcts, (done - started).Duration().Seconds())
			shortHost.Unregister(flow)
			rcv.Unregister(flow)
			engine.After(cfg.ShortEvery, launch)
		}
		s.Start()
	}
	engine.Schedule(sim.FromDuration(cfg.Warmup), launch)

	end := sim.FromDuration(cfg.Warmup + cfg.Duration)
	if err := engine.RunUntil(end); err != nil {
		return nil, err
	}
	rec.Finish(end)
	if len(fcts) == 0 {
		return nil, errors.New("core: no short transfer completed; duration too small")
	}

	res := &BuildupResult{
		Protocol:       cfg.Protocol.Name,
		ShortTransfers: len(fcts),
		MeanFCT:        secondsToDuration(stats.Mean(fcts)),
		P95FCT:         secondsToDuration(stats.Quantile(fcts, 0.95)),
		MaxFCT:         secondsToDuration(stats.Quantile(fcts, 1)),
		QueueMeanPkts:  rec.Mean(),
	}
	res.BackgroundUtilization = float64(bg.TotalAcked()) /
		(cfg.Rate.BytesPerSecond() * (cfg.Warmup + cfg.Duration).Seconds())
	return res, nil
}

// DefaultBuildup returns the DCTCP-paper parameters scaled to this
// repository's simulation defaults: 2 background flows and 20 KB short
// transfers on the 10 Gbps dumbbell.
func DefaultBuildup(p Protocol) BuildupConfig {
	return BuildupConfig{
		Protocol:   p,
		LongFlows:  2,
		ShortBytes: 20 << 10,
		ShortEvery: 500 * time.Microsecond,
		Rate:       10 * netsim.Gbps,
		RTT:        100 * time.Microsecond,
		BufferPkts: 600,
		Duration:   60 * time.Millisecond,
		Warmup:     20 * time.Millisecond,
		Seed:       1,
	}
}
