package core

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"dtdctcp/internal/chaos"
)

// chaosPlan is a nontrivial plan engaging every RNG-drawing event kind:
// jittered flapping, a corruption window, and a Poisson burst, all
// inside the measured interval of determinismConfig (5 ms warmup +
// 20 ms measure).
func chaosPlan() *chaos.Plan {
	return &chaos.Plan{
		Name:        "determinism-mix",
		Description: "flap + corruption + burst inside the measured window",
		Events: []chaos.Event{
			{At: chaos.D(12 * time.Millisecond), Kind: chaos.KindFlap, Link: "bottleneck",
				Every: chaos.D(time.Millisecond), DownFor: chaos.D(200 * time.Microsecond),
				Count: 3, Jitter: 0.3, Flush: true},
			{At: chaos.D(16 * time.Millisecond), Kind: chaos.KindCorrupt, Link: "bottleneck",
				Prob: 0.01, For: chaos.D(2 * time.Millisecond)},
			{At: chaos.D(18 * time.Millisecond), Kind: chaos.KindBurst, Link: "bottleneck",
				RateBps: 500_000_000, For: chaos.D(2 * time.Millisecond), PacketBytes: 1500},
		},
	}
}

func chaosConfig(seed int64) DumbbellConfig {
	cfg := determinismConfig(seed)
	cfg.Chaos = chaosPlan()
	return cfg
}

// chaosFingerprint extends the base fingerprint with the chaos-specific
// observables so divergence in fault accounting or recovery metrics is
// caught too.
func chaosFingerprint(t *testing.T, res *DumbbellResult) string {
	t.Helper()
	fp := fingerprint(t, res)
	fp += fmt.Sprintf("faultdrops=%d\n", res.FaultDrops)
	if res.Recovery != nil {
		r := res.Recovery
		fp += fmt.Sprintf("recovery drained=%v drain=%x relocked=%v relock=%x refmean=%x refstd=%x refperiod=%x\n",
			r.Drained, math.Float64bits(r.DrainTime), r.Relocked, math.Float64bits(r.RelockTime),
			math.Float64bits(r.RefMean), math.Float64bits(r.RefStd), math.Float64bits(r.RefPeriod))
	}
	return fp
}

// TestChaosDeterminismSameSeed extends the determinism contract to
// chaotic runs: flap jitter, corruption coin flips, and burst
// inter-arrivals all draw from the engine RNG, so the same seed + plan
// must reproduce the run byte-identically.
func TestChaosDeterminismSameSeed(t *testing.T) {
	first, err := RunDumbbell(chaosConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunDumbbell(chaosConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	fp1, fp2 := chaosFingerprint(t, first), chaosFingerprint(t, second)
	if fp1 != fp2 {
		t.Fatalf("same seed + plan diverged:\nfirst:\n%s\nsecond:\n%s",
			diffHead(fp1, fp2), diffHead(fp2, fp1))
	}
	if first.FaultDrops == 0 {
		t.Fatal("chaos plan caused no fault drops; the faults never engaged")
	}
	if second.Recovery == nil {
		t.Fatal("Recovery metrics missing despite Chaos + QueueSampleEvery")
	}
}

// TestChaosDeterminismSeedSensitivity: the chaos draws must be steered
// by the engine seed, not a private source.
func TestChaosDeterminismSeedSensitivity(t *testing.T) {
	a, err := RunDumbbell(chaosConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDumbbell(chaosConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if chaosFingerprint(t, a) == chaosFingerprint(t, b) {
		t.Fatal("different seeds produced byte-identical chaotic runs")
	}
}

// TestChaosDeterminismAcrossWorkers pins the acceptance criterion: a
// chaotic sweep is byte-identical between -workers 1 and -workers 8.
func TestChaosDeterminismAcrossWorkers(t *testing.T) {
	base := chaosConfig(7)
	flows := []int{4, 8, 12}
	serial, err := SweepFlowsParallel(context.Background(), base, flows, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := SweepFlowsParallel(context.Background(), base, flows, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range flows {
		fp1 := chaosFingerprint(t, serial[i].Result)
		fp8 := chaosFingerprint(t, parallel[i].Result)
		if fp1 != fp8 {
			t.Fatalf("N=%d diverged between 1 and 8 workers:\n%s", flows[i], diffHead(fp1, fp8))
		}
	}
}

// TestChaosRecoveryObservables sanity-checks the wired-through metrics
// on a plain blackout: the queue drains and the oscillation re-locks
// within the run.
func TestChaosRecoveryObservables(t *testing.T) {
	cfg := determinismConfig(3)
	cfg.Flows = 20
	cfg.Duration = 40 * time.Millisecond
	cfg.Chaos = &chaos.Plan{
		Name: "blackout-obs",
		Events: []chaos.Event{
			{At: chaos.D(15 * time.Millisecond), Kind: chaos.KindLinkDown, Link: "bottleneck",
				DownFor: chaos.D(2 * time.Millisecond)},
		},
	}
	res, err := RunDumbbell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovery == nil {
		t.Fatal("no recovery metrics")
	}
	if res.FaultDrops == 0 {
		t.Fatal("a 2 ms blackout under 20 flows dropped nothing")
	}
	if !res.Recovery.Drained {
		t.Fatalf("queue never drained after the blackout: %+v", res.Recovery)
	}
	if res.Recovery.RefMean <= 0 {
		t.Fatalf("empty pre-fault reference: %+v", res.Recovery)
	}
}

// TestTestbedChaosRuns wires a plan through the incast testbed: a short
// mid-run outage on the bottleneck must not wedge the query loop, and
// the run must stay deterministic.
func TestTestbedChaosRuns(t *testing.T) {
	cfg := DefaultTestbed(DCTCP(21, 1.0/16), 8)
	cfg.Chaos = &chaos.Plan{
		Name: "testbed-blackout",
		Events: []chaos.Event{
			{At: chaos.D(2 * time.Millisecond), Kind: chaos.KindLinkDown, Link: "bottleneck",
				DownFor: chaos.D(500 * time.Microsecond)},
		},
	}
	run := func() *QueryResult {
		res, err := RunQuery(cfg, 64<<10, 5)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.MeanGoodputBps != b.MeanGoodputBps || a.Timeouts != b.Timeouts ||
		a.MeanCompletion != b.MeanCompletion {
		t.Fatalf("chaotic testbed runs diverged: %+v vs %+v", a, b)
	}
}
