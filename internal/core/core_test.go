package core

import (
	"strings"
	"testing"
	"time"

	"dtdctcp/internal/control"
	"dtdctcp/internal/fluid"
	"dtdctcp/internal/netsim"
)

func paperDumbbell(p Protocol, flows int) DumbbellConfig {
	return DumbbellConfig{
		Protocol:   p,
		Flows:      flows,
		Rate:       10 * netsim.Gbps,
		RTT:        100 * time.Microsecond,
		BufferPkts: 600,
		Duration:   60 * time.Millisecond,
		Warmup:     15 * time.Millisecond,
		Seed:       1,
	}
}

func TestProtocolPresets(t *testing.T) {
	dc := DCTCP(40, 1.0/16)
	if !strings.Contains(dc.Name, "dctcp") || dc.K != 40 {
		t.Fatalf("DCTCP preset: %+v", dc)
	}
	if dc.PacketSize() != 1500 {
		t.Fatalf("PacketSize = %d", dc.PacketSize())
	}
	if _, ok := dc.DF().(control.DCTCPDF); !ok {
		t.Fatal("DCTCP DF type")
	}
	if _, ok := dc.MarkingLaw().(fluid.SingleThreshold); !ok {
		t.Fatal("DCTCP law type")
	}

	dt := DTDCTCP(30, 50, 1.0/16)
	if dt.K1 != 30 || dt.K2 != 50 {
		t.Fatalf("DTDCTCP preset: %+v", dt)
	}
	if df, ok := dt.DF().(control.DTDCTCPDF); !ok || df.K1 != 30 || df.K2 != 50 {
		t.Fatal("DT DF mapping")
	}
	if law, ok := dt.MarkingLaw().(fluid.DoubleThreshold); !ok || law.K1 != 30 {
		t.Fatal("DT law mapping")
	}

	reno := Reno()
	if reno.DF() != nil || reno.MarkingLaw() != nil || reno.NewPolicy != nil {
		t.Fatal("Reno should have no marker")
	}
	recn := RenoECN(40)
	if recn.K != 40 || recn.NewPolicy == nil {
		t.Fatal("RenoECN preset")
	}
}

func TestTriangleTrajectory(t *testing.T) {
	tr := TriangleTrajectory(3)
	want := []int{0, 1, 2, 3, 2, 1, 0}
	if len(tr) != len(want) {
		t.Fatalf("len = %d", len(tr))
	}
	for i := range want {
		if tr[i] != want[i] {
			t.Fatalf("tr = %v", tr)
		}
	}
	if TriangleTrajectory(0) != nil {
		t.Fatal("peak 0 should be nil")
	}
}

func TestReplayMarkerFig2(t *testing.T) {
	// Fig. 2's comparison: same trajectory through both markers.
	traj := TriangleTrajectory(80)
	dc, err := ReplayMarker(DCTCP(40, 1.0/16), traj)
	if err != nil {
		t.Fatal(err)
	}
	dt, err := ReplayMarker(DTDCTCP(30, 50, 1.0/16), traj)
	if err != nil {
		t.Fatal(err)
	}
	// DCTCP: memoryless at K=40 — marks iff q ≥ 40 on both slopes.
	for i, d := range dc {
		want := d.QueuePkts >= 40
		if d.Marked != want {
			t.Fatalf("DCTCP decision %d: q=%d marked=%v", i, d.QueuePkts, d.Marked)
		}
	}
	// DT-DCTCP: marks from 30 on the rise and down to 50 on the fall.
	firstMark, lastMark := -1, -1
	for i, d := range dt {
		if d.Marked {
			if firstMark < 0 {
				firstMark = i
			}
			lastMark = i
		}
	}
	if dt[firstMark].QueuePkts > 35 {
		t.Fatalf("DT first mark at q=%d, want ≈30 (early start)", dt[firstMark].QueuePkts)
	}
	if lastMark <= 81 { // index 81 is the first falling sample (q=79)
		t.Fatal("DT marking should persist into the fall")
	}
	if q := dt[lastMark].QueuePkts; q < 45 || q > 60 {
		t.Fatalf("DT last mark at q=%d, want ≈50 (early release)", q)
	}
	if _, err := ReplayMarker(Reno(), traj); err == nil {
		t.Fatal("Reno replay should fail")
	}
}

func TestRunDumbbellValidation(t *testing.T) {
	bad := []DumbbellConfig{
		{},
		{Flows: 1, Rate: 1, RTT: 1}, // no buffer/duration
		{Flows: -1, Rate: 1, RTT: 1, BufferPkts: 1, Duration: 1},
		{Flows: 1, Rate: 0, RTT: 1, BufferPkts: 1, Duration: 1},
		{Flows: 1, Rate: 1, RTT: 0, BufferPkts: 1, Duration: 1},
		{Flows: 1, Rate: 1, RTT: 1, BufferPkts: 0, Duration: 1},
	}
	for i, cfg := range bad {
		if _, err := RunDumbbell(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestRunDumbbellBasics(t *testing.T) {
	cfg := paperDumbbell(DCTCP(40, 1.0/16), 10)
	cfg.QueueSampleEvery = 100 * time.Microsecond
	cfg.AlphaSampleEvery = time.Millisecond
	res, err := RunDumbbell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Protocol != cfg.Protocol.Name || res.Flows != 10 {
		t.Fatal("result echo wrong")
	}
	if res.Utilization < 0.9 || res.Utilization > 1.05 {
		t.Fatalf("utilization = %v", res.Utilization)
	}
	if res.QueueMeanPkts <= 5 || res.QueueMeanPkts >= 80 {
		t.Fatalf("queue mean = %v, want in the neighbourhood of K=40", res.QueueMeanPkts)
	}
	if res.QueueStdPkts <= 0 {
		t.Fatal("queue sd must be positive")
	}
	if res.QueueMaxPkts > 600 {
		t.Fatal("queue exceeded buffer")
	}
	if res.AlphaMean <= 0 || res.AlphaMean >= 1 {
		t.Fatalf("alpha mean = %v", res.AlphaMean)
	}
	if res.Marks == 0 {
		t.Fatal("no marks")
	}
	if res.Drops != 0 {
		t.Fatalf("unexpected drops: %d", res.Drops)
	}
	if res.QueueSeries == nil || res.QueueSeries.Len() == 0 {
		t.Fatal("queue series missing")
	}
	if res.AlphaSeries == nil || res.AlphaSeries.Len() == 0 {
		t.Fatal("alpha series missing")
	}
}

// The paper's headline (Figs. 10–11): DCTCP's queue deviation grows with
// the flow count and DT-DCTCP stays below it.
func TestOscillationGrowsWithFlowsAndDTIsSmaller(t *testing.T) {
	run := func(p Protocol, n int) *DumbbellResult {
		res, err := RunDumbbell(paperDumbbell(p, n))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	dc10 := run(DCTCP(40, 1.0/16), 10)
	dc60 := run(DCTCP(40, 1.0/16), 60)
	dt10 := run(DTDCTCP(30, 50, 1.0/16), 10)
	dt60 := run(DTDCTCP(30, 50, 1.0/16), 60)

	if dc60.QueueStdPkts <= dc10.QueueStdPkts {
		t.Fatalf("DCTCP σ should grow with N: N=10 %.1f vs N=60 %.1f",
			dc10.QueueStdPkts, dc60.QueueStdPkts)
	}
	if dt10.QueueStdPkts >= dc10.QueueStdPkts {
		t.Fatalf("DT σ at N=10 (%.1f) should be below DCTCP's (%.1f)",
			dt10.QueueStdPkts, dc10.QueueStdPkts)
	}
	if dt60.QueueStdPkts >= dc60.QueueStdPkts {
		t.Fatalf("DT σ at N=60 (%.1f) should be below DCTCP's (%.1f)",
			dt60.QueueStdPkts, dc60.QueueStdPkts)
	}
}

func TestSweepFlows(t *testing.T) {
	base := paperDumbbell(DCTCP(40, 1.0/16), 0)
	base.Duration = 20 * time.Millisecond
	base.Warmup = 5 * time.Millisecond
	pts, err := SweepFlows(base, []int{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Flows != 5 || pts[1].Flows != 10 {
		t.Fatalf("sweep points: %+v", pts)
	}
	if _, err := SweepFlows(base, []int{0}); err == nil {
		t.Fatal("invalid sweep accepted")
	}
}

func TestTestbedValidation(t *testing.T) {
	good := DefaultTestbed(DCTCP(21, 1.0/16), 4)
	if err := good.validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Workers = 0
	if bad.validate() == nil {
		t.Fatal("workers=0 accepted")
	}
	bad = good
	bad.LinkRate = 0
	if bad.validate() == nil {
		t.Fatal("rate=0 accepted")
	}
	bad = good
	bad.BottleneckBuffer = 0
	if bad.validate() == nil {
		t.Fatal("buffer=0 accepted")
	}
	bad = good
	bad.HopDelay = 0
	if bad.validate() == nil {
		t.Fatal("delay=0 accepted")
	}
	if _, err := RunQuery(good, 0, 1); err == nil {
		t.Fatal("bytes=0 accepted")
	}
	if _, err := RunQuery(good, 100, 0); err == nil {
		t.Fatal("rounds=0 accepted")
	}
}

func TestIncastBeforeCollapse(t *testing.T) {
	cfg := DefaultTestbed(DCTCP(21, 1.0/16), 8)
	res, err := RunIncast(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 5 || res.Workers != 8 {
		t.Fatalf("result echo: %+v", res)
	}
	if res.Timeouts != 0 {
		t.Fatalf("timeouts before collapse: %d", res.Timeouts)
	}
	// 8 workers × 64 KB at 1 Gbps: goodput should be near line rate.
	if res.MeanGoodputBps < 0.7e9 {
		t.Fatalf("goodput %v too low before collapse", res.MeanGoodputBps)
	}
	if res.MeanCompletion < 4*time.Millisecond || res.MeanCompletion > 20*time.Millisecond {
		t.Fatalf("completion %v out of range", res.MeanCompletion)
	}
}

// Fig. 14's claim: DT-DCTCP postpones throughput collapse. At a flow count
// where DCTCP has clearly collapsed, anticipatory DT-DCTCP still delivers
// several times its goodput.
func TestIncastCollapsePostponedByDT(t *testing.T) {
	const n = 56
	dc, err := RunIncast(DefaultTestbed(DCTCP(21, 1.0/16), n), 10)
	if err != nil {
		t.Fatal(err)
	}
	dt, err := RunIncast(DefaultTestbed(DTDCTCP(16, 26, 1.0/16), n), 10)
	if err != nil {
		t.Fatal(err)
	}
	if dc.Timeouts == 0 {
		t.Fatal("DCTCP at n=56 should be suffering timeouts")
	}
	if dt.MeanGoodputBps <= dc.MeanGoodputBps {
		t.Fatalf("DT goodput (%v) should exceed DCTCP's (%v) past DCTCP's collapse",
			dt.MeanGoodputBps, dc.MeanGoodputBps)
	}
	if dt.Timeouts >= dc.Timeouts {
		t.Fatalf("DT timeouts (%d) should be below DCTCP's (%d)", dt.Timeouts, dc.Timeouts)
	}
}

func TestCompletionTimeExperiment(t *testing.T) {
	// Fig. 15: 1 MB split n ways; the floor is ≈10 ms (1 MB at 1 Gbps).
	cfg := DefaultTestbed(DCTCP(21, 1.0/16), 8)
	res, err := RunCompletionTime(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanCompletion < 8*time.Millisecond {
		t.Fatalf("completion %v below the line-rate floor", res.MeanCompletion)
	}
	if res.MeanCompletion > 30*time.Millisecond {
		t.Fatalf("completion %v far above the floor without timeouts (to=%d)",
			res.MeanCompletion, res.Timeouts)
	}
	if res.P95Completion < res.MeanCompletion/2 {
		t.Fatal("p95 below half the mean is impossible")
	}
	if res.MaxCompletion < res.P95Completion {
		t.Fatal("max below p95")
	}
}

func TestSweepWorkers(t *testing.T) {
	base := DefaultTestbed(DCTCP(21, 1.0/16), 0)
	pts, err := SweepWorkers(base, []int{4, 8}, 2, RunIncast)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Workers != 4 || pts[1].Workers != 8 {
		t.Fatalf("sweep: %+v", pts)
	}
	if _, err := SweepWorkers(base, []int{0}, 2, RunIncast); err == nil {
		t.Fatal("invalid sweep accepted")
	}
}

func TestAnalysisBridges(t *testing.T) {
	params := PaperAnalysisParams()
	dc := DCTCP(40, 1.0/16)
	v, err := AnalyzeStability(dc, params, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Stable {
		t.Fatal("DCTCP at N=10 should be analysis-stable")
	}
	n, err := CriticalFlows(dc, params, 2, 150)
	if err != nil {
		t.Fatal(err)
	}
	nDT, err := CriticalFlows(DTDCTCP(30, 50, 1.0/16), params, 2, 150)
	if err != nil {
		t.Fatal(err)
	}
	if nDT <= n {
		t.Fatalf("DT critical N (%d) must exceed DCTCP's (%d)", nDT, n)
	}
	if _, err := AnalyzeStability(Reno(), params, 10); err == nil {
		t.Fatal("Reno analysis should fail")
	}
	if _, err := CriticalFlows(Reno(), params, 2, 10); err == nil {
		t.Fatal("Reno critical flows should fail")
	}

	fc, err := FluidConfig(dc, params, 20, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fc.N != 20 || fc.RTTRefQueue != 40 || fc.Duration != 0.1 {
		t.Fatalf("fluid config: %+v", fc)
	}
	fcDT, err := FluidConfig(DTDCTCP(30, 50, 1.0/16), params, 20, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if fcDT.RTTRefQueue != 40 { // (30+50)/2
		t.Fatalf("DT ref queue = %v", fcDT.RTTRefQueue)
	}
	if _, err := FluidConfig(Reno(), params, 20, time.Second); err == nil {
		t.Fatal("Reno fluid config should fail")
	}
}

func TestDumbbellFairness(t *testing.T) {
	res, err := RunDumbbell(paperDumbbell(DCTCP(40, 1.0/16), 8))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerFlowAcked) != 8 {
		t.Fatalf("PerFlowAcked has %d entries", len(res.PerFlowAcked))
	}
	// DCTCP's fairness is one of its design goals; 8 identical flows over
	// 75 ms must share closely.
	if res.Fairness < 0.9 {
		t.Fatalf("Jain fairness = %.3f, want ≥ 0.9", res.Fairness)
	}
}

func TestDeadlineAccounting(t *testing.T) {
	// Loose deadline: nothing missed; impossible deadline: everything
	// missed. Pins the miss-rate bookkeeping end to end.
	loose := DefaultTestbed(D2TCPProto(21, 1.0/16), 4)
	loose.Deadline = 10 * time.Second
	res, err := RunIncast(loose, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.MissedDeadlines != 0 || res.DeadlineMissRate != 0 {
		t.Fatalf("loose deadline missed %d (rate %v)", res.MissedDeadlines, res.DeadlineMissRate)
	}
	tight := DefaultTestbed(D2TCPProto(21, 1.0/16), 4)
	tight.Deadline = time.Microsecond
	res, err = RunIncast(tight, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.MissedDeadlines != 3*4 || res.DeadlineMissRate != 1 {
		t.Fatalf("impossible deadline missed %d of 12 (rate %v)", res.MissedDeadlines, res.DeadlineMissRate)
	}
	// No deadline configured: rate stays zero.
	plain := DefaultTestbed(DCTCP(21, 1.0/16), 4)
	res, err = RunIncast(plain, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.MissedDeadlines != 0 || res.DeadlineMissRate != 0 {
		t.Fatal("deadline accounting active without a deadline")
	}
}

func TestD2TCPPreset(t *testing.T) {
	p := D2TCPProto(21, 1.0/16)
	if p.K != 21 || p.NewPolicy == nil {
		t.Fatalf("preset: %+v", p)
	}
	if p.DF() == nil || p.MarkingLaw() == nil {
		t.Fatal("D2TCP uses DCTCP's marker: analyses must map")
	}
}

func TestRenoPIEHoldsDelayTarget(t *testing.T) {
	// PIE targeting 200 µs of queueing at 10 Gbps ≈ 167 packets: the
	// mean queue must land well below the Reno/DropTail level (≈480
	// pkts riding the 600-pkt buffer) and near the target.
	p := RenoPIE(10*netsim.Gbps, 200*time.Microsecond)
	cfg := paperDumbbell(p, 20)
	cfg.Duration = 100 * time.Millisecond
	cfg.Warmup = 30 * time.Millisecond
	res, err := RunDumbbell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.QueueMeanPkts > 250 || res.QueueMeanPkts < 50 {
		t.Fatalf("PIE mean queue %.1f pkts, want near the 167-packet target", res.QueueMeanPkts)
	}
	if res.Marks == 0 {
		t.Fatal("PIE produced no ECN marks")
	}
	if res.Utilization < 0.7 {
		t.Fatalf("PIE utilization %.2f too low", res.Utilization)
	}
}

func TestRenoCoDelBoundsSojourn(t *testing.T) {
	p := RenoCoDel(200*time.Microsecond, time.Millisecond)
	cfg := paperDumbbell(p, 20)
	cfg.Duration = 100 * time.Millisecond
	cfg.Warmup = 30 * time.Millisecond
	res, err := RunDumbbell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 200 µs of sojourn at 10 Gbps ≈ 167 packets; CoDel should keep the
	// mean well under the DropTail level (≈480).
	if res.QueueMeanPkts > 300 {
		t.Fatalf("CoDel mean queue %.1f pkts: not controlling", res.QueueMeanPkts)
	}
	if res.Marks == 0 {
		t.Fatal("CoDel-ECN produced no marks")
	}
	if res.Utilization < 0.8 {
		t.Fatalf("utilization %.2f", res.Utilization)
	}
}

func TestCubicProtoDumbbell(t *testing.T) {
	res, err := RunDumbbell(paperDumbbell(CubicProto(), 10))
	if err != nil {
		t.Fatal(err)
	}
	// Loss-driven CUBIC rides the buffer like Reno: high mean queue,
	// full utilization.
	if res.QueueMeanPkts < 100 {
		t.Fatalf("CUBIC mean queue %.1f pkts: expected buffer-filling behaviour", res.QueueMeanPkts)
	}
	if res.Utilization < 0.9 {
		t.Fatalf("utilization %.2f", res.Utilization)
	}
}

func TestBuildupShortFlowsFasterUnderDCTCP(t *testing.T) {
	run := func(p Protocol) *BuildupResult {
		res, err := RunBuildup(DefaultBuildup(p))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	reno := run(Reno())
	dctcp := run(DCTCP(40, 1.0/16))
	dt := run(DTDCTCP(30, 50, 1.0/16))
	if reno.ShortTransfers == 0 || dctcp.ShortTransfers == 0 {
		t.Fatal("no short transfers completed")
	}
	// The DCTCP paper's point: the standing DropTail queue inflates
	// short-flow latency; DCTCP's shallow queue removes it.
	if dctcp.MeanFCT >= reno.MeanFCT {
		t.Fatalf("short-flow FCT: dctcp %v vs reno %v, want dctcp faster", dctcp.MeanFCT, reno.MeanFCT)
	}
	if dctcp.QueueMeanPkts >= reno.QueueMeanPkts {
		t.Fatalf("queue: dctcp %.1f vs reno %.1f", dctcp.QueueMeanPkts, reno.QueueMeanPkts)
	}
	// DT-DCTCP must not regress the short flows relative to Reno either.
	if dt.MeanFCT >= reno.MeanFCT {
		t.Fatalf("short-flow FCT: dt %v vs reno %v", dt.MeanFCT, reno.MeanFCT)
	}
}

func TestBuildupValidation(t *testing.T) {
	if _, err := RunBuildup(BuildupConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
	cfg := DefaultBuildup(Reno())
	cfg.Duration = time.Microsecond // too short for any short flow
	if _, err := RunBuildup(cfg); err == nil {
		t.Fatal("should fail with no completed transfers")
	}
}
