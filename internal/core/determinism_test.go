package core

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"dtdctcp/internal/netsim"
)

// determinismConfig is a short dumbbell run with every stochastic element
// engaged: start jitter from the engine seed and a queue trace sampled
// densely enough that any divergence shows.
func determinismConfig(seed int64) DumbbellConfig {
	return DumbbellConfig{
		Protocol:         DTDCTCP(30, 50, 1.0/16),
		Flows:            8,
		Rate:             1 * netsim.Gbps,
		RTT:              100 * time.Microsecond,
		BufferPkts:       100,
		Duration:         20 * time.Millisecond,
		Warmup:           5 * time.Millisecond,
		QueueSampleEvery: 50 * time.Microsecond,
		AlphaSampleEvery: time.Millisecond,
		Seed:             seed,
	}
}

// fingerprint serializes every observable of a run bit-exactly: float64
// values go through math.Float64bits so two fingerprints are equal iff the
// runs were byte-identical, not merely close.
func fingerprint(t *testing.T, res *DumbbellResult) string {
	t.Helper()
	var b strings.Builder
	fmt.Fprintf(&b, "marks=%d drops=%d timeouts=%d\n", res.Marks, res.Drops, res.Timeouts)
	fmt.Fprintf(&b, "util=%x fair=%x alpha=%x\n",
		math.Float64bits(res.Utilization), math.Float64bits(res.Fairness), math.Float64bits(res.AlphaMean))
	fmt.Fprintf(&b, "queue mean=%x std=%x min=%x max=%x\n",
		math.Float64bits(res.QueueMeanPkts), math.Float64bits(res.QueueStdPkts),
		math.Float64bits(res.QueueMinPkts), math.Float64bits(res.QueueMaxPkts))
	for i, acked := range res.PerFlowAcked {
		fmt.Fprintf(&b, "flow[%d]=%d\n", i, acked)
	}
	if res.QueueSeries == nil {
		t.Fatal("queue series missing despite QueueSampleEvery")
	}
	for _, p := range res.QueueSeries.Points() {
		fmt.Fprintf(&b, "q %x %x\n", math.Float64bits(p.T), math.Float64bits(p.V))
	}
	if res.AlphaSeries != nil {
		for _, p := range res.AlphaSeries.Points() {
			fmt.Fprintf(&b, "a %x %x\n", math.Float64bits(p.T), math.Float64bits(p.V))
		}
	}
	return b.String()
}

// TestDeterminismSameSeed is the regression test behind the determinism
// contract: two runs with the same seed must produce byte-identical queue
// traces and flow statistics. Any ambient randomness — wall clock, global
// rand, map iteration leaking into event order — breaks this test.
func TestDeterminismSameSeed(t *testing.T) {
	first, err := RunDumbbell(determinismConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunDumbbell(determinismConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	fp1, fp2 := fingerprint(t, first), fingerprint(t, second)
	if fp1 != fp2 {
		t.Fatalf("same seed produced diverging runs:\nfirst:\n%s\nsecond:\n%s",
			diffHead(fp1, fp2), diffHead(fp2, fp1))
	}
}

// TestDeterminismSeedSensitivity guards the other direction: the seed must
// actually steer the run. If two different seeds fingerprint identically,
// the randomness is not flowing from the engine source at all.
func TestDeterminismSeedSensitivity(t *testing.T) {
	a, err := RunDumbbell(determinismConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDumbbell(determinismConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(t, a) == fingerprint(t, b) {
		t.Fatal("different seeds produced byte-identical runs; seed is not wired through")
	}
}

// diffHead returns the first few lines of a that differ from b, keeping
// failure output readable.
func diffHead(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	var out []string
	for i := range al {
		if i >= len(bl) || al[i] != bl[i] {
			out = append(out, fmt.Sprintf("line %d: %s", i+1, al[i]))
			if len(out) >= 5 {
				break
			}
		}
	}
	return strings.Join(out, "\n")
}
