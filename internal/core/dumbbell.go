package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"dtdctcp/internal/chaos"
	"dtdctcp/internal/metrics"
	"dtdctcp/internal/netsim"
	"dtdctcp/internal/runner"
	"dtdctcp/internal/sim"
	"dtdctcp/internal/stats"
	"dtdctcp/internal/trace"
	"dtdctcp/internal/workload"
)

// DumbbellConfig is the scenario of the paper's Section VI-A simulations:
// N long-lived flows share one bottleneck of the given rate and round-trip
// time.
type DumbbellConfig struct {
	// Protocol selects endpoints and queue law.
	Protocol Protocol
	// Flows is N, the number of long-lived flows.
	Flows int
	// Rate is the bottleneck link speed (the paper uses 10 Gbps).
	Rate netsim.Rate
	// RTT is the zero-queue round-trip time (the paper uses 100 µs).
	RTT time.Duration
	// BufferPkts is the bottleneck buffer in packets.
	BufferPkts int
	// Duration is the measured interval, after Warmup.
	Duration time.Duration
	// Warmup is excluded from all aggregate statistics.
	Warmup time.Duration
	// QueueSampleEvery decimates the queue time series; zero disables
	// the series (aggregates are always collected).
	QueueSampleEvery time.Duration
	// AlphaSampleEvery sets the sampling period of the mean-α series;
	// zero disables it.
	AlphaSampleEvery time.Duration
	// Seed drives all randomness (start jitter).
	Seed int64
	// Shards, when above one, executes this single run in parallel on
	// that many event wheels under conservative-lookahead (epoch
	// barrier) synchronization; see netsim.Network.Partition. Results
	// are byte-identical for any shard count — shards=1 (or zero) is
	// the plain serial engine. Sharded runs reject Chaos and
	// MetricsSampleEvery: both schedule coordinator-side events that
	// have no sharded equivalent yet.
	Shards int
	// TraceTo, when set, streams the bottleneck port's per-packet
	// events (enqueue/dequeue/mark/drop, plus fault events when Chaos
	// is set) as JSON Lines.
	TraceTo io.Writer
	// Chaos, when set, applies the fault-injection plan to the running
	// topology. Plans may target the link names "bottleneck" (switch →
	// receiver), "ack" (receiver → switch), and "access<i>" (sender i →
	// switch). Event times are absolute virtual times, so plans should
	// account for Warmup.
	Chaos *chaos.Plan
	// Metrics enables the observability registry: the result carries a
	// Snapshot covering the engine, bottleneck port, senders, and chaos
	// controller. Collection is pull-based, so enabling it changes no
	// event order and no result field.
	Metrics bool
	// MetricsSampleEvery additionally runs a periodic virtual-time
	// sampler exporting queue depth, mean α, and mean cwnd as series in
	// the snapshot (implies Metrics). Unlike plain Metrics, the
	// sampler's ticks are engine events: a sampled run is a different —
	// still deterministic — run than an unsampled one.
	MetricsSampleEvery time.Duration
	// SharedBuffer, when enabled (Alpha > 0), replaces the switch's
	// static per-port buffers with one dynamic-threshold pool.
	SharedBuffer SharedBufferConfig
}

// SharedBufferConfig opts a scenario's bottleneck switch into
// shared-buffer dynamic-threshold allocation (netsim.SharedBuffer):
// admission tail-drops against T = α·(B − ΣQ) instead of a static
// per-port bound. The zero value leaves buffers private.
type SharedBufferConfig struct {
	// Alpha is the dynamic-threshold parameter; zero disables sharing.
	Alpha float64
	// PoolPkts is the pool capacity B in packets; zero defaults to the
	// scenario's per-port buffer (BufferPkts), which makes the
	// single-member pool directly comparable to the private-buffer run.
	PoolPkts int
	// BottleneckOnly restricts the pool to the bottleneck port instead
	// of every port of the switch. The conformance grid's
	// uncontended-limit scenario uses this: with one member and a large
	// α the pool must agree verdict-for-verdict with per-port tail-drop.
	BottleneckOnly bool
}

// enabled reports whether the scenario shares buffers.
func (s SharedBufferConfig) enabled() bool { return s.Alpha > 0 }

// build creates the pool (poolPkts defaulted to bufferPkts) and attaches
// either just the bottleneck or every port of the switch.
func (s SharedBufferConfig) build(sw *netsim.Switch, bneck *netsim.Port, bufferPkts, pktSize int) (*netsim.SharedBuffer, error) {
	poolPkts := s.PoolPkts
	if poolPkts <= 0 {
		poolPkts = bufferPkts
	}
	pool, err := netsim.NewSharedBuffer(poolPkts*pktSize, s.Alpha)
	if err != nil {
		return nil, err
	}
	if s.BottleneckOnly {
		return pool, pool.Attach(bneck)
	}
	for i := 0; i < sw.Ports(); i++ {
		if err := pool.Attach(sw.Port(i)); err != nil {
			return nil, err
		}
	}
	return pool, nil
}

// pinPool lists the domain of every pool member port, for pinning to
// shard 0: the pool counter mutates on every member enqueue/dequeue, so
// Partition requires all members on one shard.
func pinPool(nw *netsim.Network, pool *netsim.SharedBuffer) []int {
	var pins []int
	for _, p := range pool.Ports() {
		pins = append(pins, nw.PortDomain(p))
	}
	return pins
}

func (c DumbbellConfig) validate() error {
	switch {
	case c.Flows <= 0:
		return errors.New("core: Flows must be positive")
	case c.Rate <= 0:
		return errors.New("core: Rate must be positive")
	case c.RTT <= 0:
		return errors.New("core: RTT must be positive")
	case c.BufferPkts <= 0:
		return errors.New("core: BufferPkts must be positive")
	case c.Duration <= 0:
		return errors.New("core: Duration must be positive")
	case c.Shards < 0:
		return errors.New("core: Shards must not be negative")
	case c.Shards > 1 && c.Chaos != nil:
		return errors.New("core: Chaos requires serial execution (Shards <= 1)")
	case c.Shards > 1 && c.MetricsSampleEvery > 0:
		return errors.New("core: MetricsSampleEvery requires serial execution (Shards <= 1)")
	default:
		return nil
	}
}

// DumbbellResult aggregates one dumbbell run.
type DumbbellResult struct {
	// Protocol and Flows echo the configuration.
	Protocol string
	Flows    int

	// QueueMeanPkts and QueueStdPkts are the time-weighted queue
	// statistics in packets over the measured interval (Figs. 10, 11).
	QueueMeanPkts, QueueStdPkts float64
	// QueueMinPkts and QueueMaxPkts bound the measured excursion.
	QueueMinPkts, QueueMaxPkts float64
	// QueueSeries is the decimated occupancy trace (Fig. 1), including
	// warmup; nil when sampling was disabled.
	QueueSeries *stats.Series

	// AlphaMean is the time-average of the flows' mean α over the
	// measured interval (Fig. 12).
	AlphaMean float64
	// AlphaSeries is the sampled mean-α trace; nil when disabled.
	AlphaSeries *stats.Series

	// OscPeriod is the dominant queue-oscillation period estimated from
	// the sampled trace by autocorrelation (zero when QueueSampleEvery
	// was unset or no periodicity was found); OscConfidence is the
	// normalized autocorrelation at that lag. Comparable against the
	// limit-cycle period predicted by the describing-function analysis.
	OscPeriod     time.Duration
	OscConfidence float64

	// Utilization is bottleneck goodput ÷ capacity over the measured
	// interval.
	Utilization float64
	// Marks, Drops count bottleneck CE marks and overflow drops over
	// the whole run (warmup included).
	Marks, Drops uint64
	// Timeouts counts sender RTOs over the whole run.
	Timeouts uint64
	// Fairness is Jain's index over per-flow acknowledged bytes at the
	// end of the run (1 = perfectly even).
	Fairness float64
	// PerFlowAcked lists each flow's acknowledged bytes.
	PerFlowAcked []int64
	// Events is the number of simulator events processed, for
	// events-per-second throughput accounting in benchmarks.
	Events uint64

	// FaultDrops counts bottleneck packets lost to chaos faults (down
	// link or corruption) over the whole run.
	FaultDrops uint64
	// Recovery holds fault-recovery metrics of the queue trace around
	// the chaos plan's fault window; nil unless Chaos was set and the
	// queue series was sampled.
	Recovery *stats.Recovery

	// Metrics is the run's observability snapshot; nil unless
	// DumbbellConfig.Metrics (or MetricsSampleEvery) was set.
	Metrics *metrics.Snapshot
}

// testPermuteAssign, when non-nil, rewrites the domain→shard assignment
// of sharded runs before Partition. It exists only for the metamorphic
// determinism tests, which assert that results do not depend on where
// domains land (every cross-domain delivery goes through the barrier
// mailbox, whose sort key uses domain indices, never shard indices).
var testPermuteAssign func(assign []int)

// RunDumbbell executes the scenario to completion and aggregates results.
func RunDumbbell(cfg DumbbellConfig) (*DumbbellResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// A sharded run builds the identical topology on the coordinator's
	// shard-0 engine — same creation order, same RNG stream — so the
	// serial and sharded paths stay byte-identical by construction.
	sharded := cfg.Shards > 1
	var se *sim.ShardedEngine
	var engine *sim.Engine
	if sharded {
		se = sim.NewShardedEngine(cfg.Seed, cfg.Shards)
		engine = se.Shard(0)
	} else {
		engine = sim.NewEngine(cfg.Seed)
	}
	nw := netsim.NewNetwork(engine)
	sw := nw.AddSwitch("sw")
	rcv := nw.AddHost("rcv")

	pktSize := cfg.Protocol.PacketSize()
	// RTT splits evenly over the four link traversals.
	hop := cfg.RTT / 4
	access := netsim.PortConfig{
		Rate:   10 * cfg.Rate,
		Delay:  hop,
		Buffer: 4096 * pktSize,
	}
	var policy = cfg.Protocol.NewPolicy
	bneckCfg := netsim.PortConfig{
		Rate:   cfg.Rate,
		Delay:  hop,
		Buffer: cfg.BufferPkts * pktSize,
	}
	if policy != nil {
		bneckCfg.Policy = policy(engine.Rand())
	}
	if err := nw.Connect(rcv, sw, access, bneckCfg); err != nil {
		return nil, err
	}
	senders := make([]*netsim.Host, cfg.Flows)
	for i := range senders {
		senders[i] = nw.AddHost(fmt.Sprintf("s%d", i))
		if err := nw.Connect(senders[i], sw, access, access); err != nil {
			return nil, err
		}
	}
	if err := nw.ComputeRoutes(); err != nil {
		return nil, err
	}

	bneck := sw.PortTo(rcv.ID())
	if cfg.SharedBuffer.enabled() {
		if _, err := cfg.SharedBuffer.build(sw, bneck, cfg.BufferPkts, pktSize); err != nil {
			return nil, err
		}
	}
	if sharded {
		// Partition after routes (source-side egress resolution reads
		// them) and before endpoints (they bind Host.Engine at
		// construction). The bottleneck port's domain is pinned to
		// shard 0: a randomized AQM law draws from the root RNG at
		// runtime, and shard 0 is the one whose stream equals the
		// serial engine's. Shared-buffer member ports are pinned with
		// it — the pool counter must live on a single shard.
		pins := []int{nw.PortDomain(bneck)}
		if sb := bneck.Shared(); sb != nil {
			pins = append(pins, pinPool(nw, sb)...)
		}
		assign := nw.DefaultAssign(cfg.Shards, pins...)
		if testPermuteAssign != nil {
			testPermuteAssign(assign)
		}
		if err := nw.Partition(se, assign); err != nil {
			return nil, err
		}
	}

	var obs *observer
	if cfg.Metrics || cfg.MetricsSampleEvery > 0 {
		engineStats := engine.Stats
		if sharded {
			engineStats = se.Stats
		}
		obs = newObserver(engine, engineStats, cfg.MetricsSampleEvery)
	}

	rec := netsim.NewQueueRecorder(pktSize, sim.FromDuration(cfg.QueueSampleEvery))
	rec.WarmupUntil = sim.FromDuration(cfg.Warmup)
	if obs != nil {
		qmon := obs.observePort("bottleneck", bneck, pktSize, cfg.BufferPkts)
		bneck.SetMonitor(netsim.MultiMonitor{rec, qmon})
	} else {
		bneck.SetMonitor(rec)
	}

	var tracer *trace.Recorder
	if cfg.TraceTo != nil {
		tracer = trace.NewRecorder(cfg.TraceTo)
		tracer.PacketSize = pktSize
		bneck.SetTracer(tracer)
	}

	if cfg.Chaos != nil {
		ctl := chaos.NewController(nw, cfg.Chaos)
		ctl.BindLink("bottleneck", bneck)
		ctl.BindLink("ack", rcv.Uplink())
		for i, snd := range senders {
			ctl.BindLink(fmt.Sprintf("access%d", i), snd.Uplink())
		}
		if tracer != nil {
			ctl.SetTrace(tracer)
		}
		if err := ctl.Apply(); err != nil {
			return nil, err
		}
		if obs != nil {
			obs.observeChaos(ctl)
		}
	}

	flows := workload.StartLongLived(engine, workload.LongLivedConfig{
		Hosts:       senders,
		Receiver:    rcv,
		TCP:         cfg.Protocol.TCP,
		StartJitter: cfg.RTT,
	})
	if obs != nil {
		obs.observeFlows(flows)
		obs.startSampler(bneck, pktSize, flows)
	}

	// The periodic samplers below read state owned by many domains
	// (every sender's α, the bottleneck's byte counter). Serial runs
	// schedule them as ordinary self-rechaining events; sharded runs
	// hoist the same chains to barrier tasks, which fire in coordinator
	// context once every shard has processed all events before the tick
	// instant — the serial sampler's view, at the serial tick's place in
	// the (at, schedAt, seq) order.

	// α sampling (Fig. 12): a periodic event records the mean α.
	var alphaSeries *stats.Series
	if cfg.AlphaSampleEvery > 0 {
		alphaSeries = stats.NewSeries("alpha")
		if sharded {
			var tick func(now sim.Time)
			tick = func(now sim.Time) {
				alphaSeries.Add(now.Seconds(), flows.MeanAlpha())
				se.ScheduleBarrier(now.Add(cfg.AlphaSampleEvery), tick)
			}
			se.ScheduleBarrier(sim.FromDuration(cfg.AlphaSampleEvery), tick)
		} else {
			var tick func()
			tick = func() {
				alphaSeries.Add(engine.Now().Seconds(), flows.MeanAlpha())
				engine.After(cfg.AlphaSampleEvery, tick)
			}
			engine.After(cfg.AlphaSampleEvery, tick)
		}
	}
	// Aggregate α as a time-weighted mean over the measured interval.
	var alphaAgg stats.TimeWeighted
	alphaEvery := cfg.RTT // one α observation per RTT is plenty
	if sharded {
		var alphaTick func(now sim.Time)
		alphaTick = func(now sim.Time) {
			if now >= sim.FromDuration(cfg.Warmup) {
				alphaAgg.Observe(now.Seconds(), flows.MeanAlpha())
			}
			se.ScheduleBarrier(now.Add(alphaEvery), alphaTick)
		}
		se.ScheduleBarrier(sim.FromDuration(alphaEvery), alphaTick)
	} else {
		var alphaTick func()
		alphaTick = func() {
			if engine.Now() >= sim.FromDuration(cfg.Warmup) {
				alphaAgg.Observe(engine.Now().Seconds(), flows.MeanAlpha())
			}
			engine.After(alphaEvery, alphaTick)
		}
		engine.After(alphaEvery, alphaTick)
	}

	// Snapshot bottleneck byte counts at the warmup boundary for the
	// utilization computation.
	var bytesAtWarmup uint64
	if sharded {
		se.ScheduleBarrier(sim.FromDuration(cfg.Warmup), func(sim.Time) {
			bytesAtWarmup = bneck.Stats().BytesSent
		})
	} else {
		engine.Schedule(sim.FromDuration(cfg.Warmup), func() {
			bytesAtWarmup = bneck.Stats().BytesSent
		})
	}
	if obs != nil {
		obs.observeUtilization(bneck, &bytesAtWarmup,
			cfg.Rate.BytesPerSecond()*cfg.Duration.Seconds())
	}

	end := sim.FromDuration(cfg.Warmup + cfg.Duration)
	if sharded {
		if err := se.RunUntil(end); err != nil {
			return nil, err
		}
	} else {
		if err := engine.RunUntil(end); err != nil {
			return nil, err
		}
	}
	rec.Finish(end)
	alphaAgg.Finish(end.Seconds())

	res := &DumbbellResult{
		Protocol:      cfg.Protocol.Name,
		Flows:         cfg.Flows,
		QueueMeanPkts: rec.Mean(),
		QueueStdPkts:  rec.StdDev(),
		QueueMinPkts:  rec.Min(),
		QueueMaxPkts:  rec.Max(),
		QueueSeries:   rec.Series(),
		AlphaMean:     alphaAgg.Mean(),
		AlphaSeries:   alphaSeries,
		Marks:         bneck.Stats().Marked,
		Drops:         bneck.Stats().DroppedOverflow,
		Timeouts:      flows.Timeouts(),
		Events:        engine.Stats().Processed,
	}
	if sharded {
		res.Events = se.Stats().Processed
	}
	acked := make([]float64, len(flows.Senders))
	for i, snd := range flows.Senders {
		acked[i] = float64(snd.Acked())
		res.PerFlowAcked = append(res.PerFlowAcked, snd.Acked())
	}
	res.Fairness = stats.JainFairness(acked)
	sent := float64(bneck.Stats().BytesSent - bytesAtWarmup)
	res.Utilization = sent / (cfg.Rate.BytesPerSecond() * cfg.Duration.Seconds())

	if tracer != nil {
		if err := tracer.Flush(); err != nil {
			return nil, err
		}
	}

	if res.QueueSeries != nil {
		// Estimate the oscillation period on the post-warmup part of
		// the trace so the slow-start transient does not dominate.
		period, conf := stats.EstimatePeriod(res.QueueSeries.After(cfg.Warmup.Seconds()))
		res.OscPeriod = time.Duration(period * float64(time.Second))
		res.OscConfidence = conf
	}
	if cfg.Chaos != nil {
		st := bneck.Stats()
		res.FaultDrops = st.DroppedLinkDown + st.DroppedCorrupt
		if res.QueueSeries != nil {
			if fs, fe, ok := cfg.Chaos.FaultWindow(); ok {
				rec := stats.MeasureRecovery(res.QueueSeries, stats.RecoveryConfig{
					FaultStart: fs.Seconds(),
					FaultEnd:   fe.Seconds(),
				})
				res.Recovery = &rec
			}
		}
	}
	if obs != nil {
		res.Metrics = obs.snapshot(end)
	}
	return res, nil
}

// FlowSweepPoint is one (N, result-pair) sample of the paper's Figs. 10–12
// sweep.
type FlowSweepPoint struct {
	// Flows is N.
	Flows int
	// Result is the dumbbell outcome at this N.
	Result *DumbbellResult
}

// SweepFlows runs the dumbbell at each flow count in flows, reusing every
// other parameter of base. Points run serially; use SweepFlowsParallel to
// spread them over worker goroutines.
func SweepFlows(base DumbbellConfig, flows []int) ([]FlowSweepPoint, error) {
	return SweepFlowsParallel(context.Background(), base, flows, 1)
}

// SweepFlowsParallel runs the sweep points concurrently on up to workers
// goroutines (values < 1 mean GOMAXPROCS). Every point builds a private
// engine seeded only by base.Seed, so results are byte-identical for any
// worker count; they are returned in the order of flows.
//
// A per-packet trace interleaves points nondeterministically when written
// from concurrent runs, so a non-nil base.TraceTo forces workers to 1.
func SweepFlowsParallel(ctx context.Context, base DumbbellConfig, flows []int, workers int) ([]FlowSweepPoint, error) {
	if base.TraceTo != nil {
		workers = 1
	}
	// A sharded point occupies one goroutine per shard; shrink the worker
	// pool so the sweep does not oversubscribe the machine.
	return runner.Map(ctx, len(flows), runner.Options{Workers: workers, ThreadsPerJob: base.Shards},
		func(_ context.Context, i int) (FlowSweepPoint, error) {
			cfg := base
			cfg.Flows = flows[i]
			res, err := RunDumbbell(cfg)
			if err != nil {
				return FlowSweepPoint{}, fmt.Errorf("sweep N=%d: %w", flows[i], err)
			}
			return FlowSweepPoint{Flows: flows[i], Result: res}, nil
		})
}
