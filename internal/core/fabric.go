package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"dtdctcp/internal/flowgen"
	"dtdctcp/internal/metrics"
	"dtdctcp/internal/netsim"
	"dtdctcp/internal/runner"
	"dtdctcp/internal/sim"
	"dtdctcp/internal/topo"
)

// FabricConfig is a trace-driven workload on a multi-tier fabric: flows
// drawn from an empirical size CDF arrive open-loop at a fraction of
// the fabric's bisection bandwidth, and completion times are bucketed
// small/medium/large.
//
// Sharded fabric runs require a queue law with no runtime randomness —
// the threshold-marking laws (DCTCP's single and DT-DCTCP's double
// threshold) qualify. A randomized law (PIE) draws from its port's RNG
// at runtime, which is only the serial stream on shard 0; pinning every
// fabric port there would serialize the run, so dtfabric simply does
// not offer those laws.
type FabricConfig struct {
	// Protocol selects endpoints and the queue law on every fabric port.
	Protocol Protocol
	// Topology is "fattree" (K-ary) or "leafspine".
	Topology string
	// K is the fat-tree arity (even, ≥ 2); used when Topology is
	// "fattree".
	K int
	// Leaves, Spines, HostsPerLeaf shape the leaf-spine fabric; used
	// when Topology is "leafspine".
	Leaves, Spines, HostsPerLeaf int
	// Rate is the link speed of every link (hosts and fabric).
	Rate netsim.Rate
	// HopDelay is the one-way propagation delay of every link.
	HopDelay time.Duration
	// BufferPkts is each port's buffer in packets.
	BufferPkts int
	// CDF is the flow-size distribution.
	CDF *flowgen.CDF
	// Load is the offered load as a fraction of bisection bandwidth.
	Load float64
	// Flows is the trace length.
	Flows int
	// Matrix is the traffic pattern (default random).
	Matrix flowgen.Matrix
	// Drain is how long the run continues past the last arrival so
	// in-flight transfers can finish (default 2 s).
	Drain time.Duration
	// SmallMax and LargeMin bound the FCT size buckets in bytes:
	// small ≤ SmallMax < medium < LargeMin ≤ large. Defaults follow the
	// DCTCP paper's convention, 100 KB and 1 MB.
	SmallMax, LargeMin int64
	// Seed drives all randomness: trace generation and the ECMP salt.
	Seed int64
	// Shards, when above one, executes the run on that many event
	// wheels; results are byte-identical for any shard count.
	Shards int
	// Metrics attaches the observability registry: the result carries a
	// dtmetrics/v1 snapshot with per-bucket FCT histograms, tier queue
	// histograms, and engine counters.
	Metrics bool
}

func (c FabricConfig) validate() error {
	switch {
	case c.Topology != "fattree" && c.Topology != "leafspine":
		return fmt.Errorf("core: unknown topology %q (fattree, leafspine)", c.Topology)
	case c.Rate <= 0:
		return errors.New("core: Rate must be positive")
	case c.HopDelay <= 0:
		return errors.New("core: HopDelay must be positive")
	case c.BufferPkts <= 0:
		return errors.New("core: BufferPkts must be positive")
	case c.CDF == nil:
		return errors.New("core: CDF must be set")
	case c.Load <= 0:
		return errors.New("core: Load must be positive")
	case c.Flows <= 0:
		return errors.New("core: Flows must be positive")
	case c.Shards < 0:
		return errors.New("core: Shards must not be negative")
	default:
		return nil
	}
}

// QueueSummary aggregates one switch tier's egress-queue depth samples
// (one observation per enqueue/dequeue, in packets) over the whole run.
type QueueSummary struct {
	// Samples counts observations across every port of the tier.
	Samples uint64 `json:"samples"`
	// MeanPkts and MaxPkts summarize the merged distribution.
	MeanPkts float64 `json:"mean_pkts"`
	MaxPkts  float64 `json:"max_pkts"`
	// P50Pkts and P99Pkts are histogram-interpolated quantiles.
	P50Pkts float64 `json:"p50_pkts"`
	P99Pkts float64 `json:"p99_pkts"`
}

func summarize(h *metrics.Histogram) QueueSummary {
	return QueueSummary{
		Samples:  h.Count(),
		MeanPkts: h.Mean(),
		MaxPkts:  h.Max(),
		P50Pkts:  h.Quantile(0.50),
		P99Pkts:  h.Quantile(0.99),
	}
}

// FabricResult aggregates one fabric run.
type FabricResult struct {
	// Protocol, Topology, Hosts, Load echo the configuration.
	Protocol string  `json:"protocol"`
	Topology string  `json:"topology"`
	Hosts    int     `json:"hosts"`
	Load     float64 `json:"load"`

	// Flows and Completed count the trace and its finished transfers.
	Flows     int `json:"flows"`
	Completed int `json:"completed"`
	// FCT holds per-bucket completion-time percentiles in
	// small/medium/large order (exact nearest-rank, not interpolated).
	FCT []flowgen.BucketStats `json:"fct"`
	// Digest folds the whole trace and every FCT into one word
	// (hex-encoded); equal digests mean byte-identical results.
	Digest string `json:"digest"`

	// CoreQueue and AggQueue summarize queue depths at the fabric's
	// bottleneck tiers; AggQueue covers leaf→spine uplinks on a
	// leaf-spine fabric.
	CoreQueue QueueSummary `json:"core_queue"`
	AggQueue  QueueSummary `json:"agg_queue"`

	// Marks and Drops count CE marks and overflow drops across every
	// switch port; the rates normalize by switch-port enqueues.
	Marks    uint64  `json:"marks"`
	Drops    uint64  `json:"drops"`
	MarkRate float64 `json:"mark_rate"`
	DropRate float64 `json:"drop_rate"`

	// Timeouts and Retransmissions sum over every connection.
	Timeouts        uint64 `json:"timeouts"`
	Retransmissions uint64 `json:"retransmissions"`
	// Events is the number of simulator events processed.
	Events uint64 `json:"events"`

	// Metrics is the observability snapshot; nil unless requested.
	Metrics *metrics.Snapshot `json:"-"`
}

// RunFabric executes the scenario to completion and aggregates results.
func RunFabric(cfg FabricConfig) (*FabricResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Drain <= 0 {
		cfg.Drain = 2 * time.Second
	}
	if cfg.SmallMax <= 0 {
		cfg.SmallMax = 100_000
	}
	if cfg.LargeMin <= cfg.SmallMax {
		cfg.LargeMin = 1_000_000
	}

	sharded := cfg.Shards > 1
	var se *sim.ShardedEngine
	var engine *sim.Engine
	if sharded {
		se = sim.NewShardedEngine(cfg.Seed, cfg.Shards)
		engine = se.Shard(0)
	} else {
		engine = sim.NewEngine(cfg.Seed)
	}
	nw := netsim.NewNetwork(engine)

	pktSize := cfg.Protocol.PacketSize()
	link := topo.LinkSpec{
		Rate:        cfg.Rate,
		Delay:       cfg.HopDelay,
		BufferBytes: cfg.BufferPkts * pktSize,
	}
	tcfg := topo.Config{HostLink: link, FabricLink: link, Policy: cfg.Protocol.NewPolicy}
	var fab *topo.Fabric
	var err error
	if cfg.Topology == "fattree" {
		fab, err = topo.FatTree(nw, cfg.K, tcfg)
	} else {
		fab, err = topo.LeafSpine(nw, cfg.Leaves, cfg.Spines, cfg.HostsPerLeaf, tcfg)
	}
	if err != nil {
		return nil, err
	}

	// Per-port depth histograms, one bucket per buffer slot capped at
	// 64. Monitors fire on the owning shard; the merge below runs after
	// the run, in port order, so tier aggregates are shard-invariant.
	bucketW := float64(cfg.BufferPkts) / 64
	if bucketW < 1 {
		bucketW = 1
	}
	bounds := metrics.LinearBounds(bucketW, bucketW, 64)
	observe := func(ports []*netsim.Port) []*metrics.Histogram {
		hists := make([]*metrics.Histogram, len(ports))
		for i, p := range ports {
			hists[i] = metrics.NewHistogram(bounds)
			p.SetMonitor(metrics.NewQueueDepthMonitor(hists[i], pktSize))
		}
		return hists
	}
	coreHists := observe(fab.CorePorts())
	aggHists := observe(fab.AggPorts())

	if sharded {
		assign := nw.DefaultAssign(cfg.Shards)
		if testPermuteAssign != nil {
			testPermuteAssign(assign)
		}
		if err := nw.Partition(se, assign); err != nil {
			return nil, err
		}
	}

	// The workload draws the entire trace from the construction engine's
	// stream before constructing endpoints, so the sharded run sees the
	// byte-identical trace the serial run does.
	w, err := flowgen.Start(fab.Hosts, flowgen.Config{
		CDF:         cfg.CDF,
		Load:        cfg.Load,
		CapacityBps: fab.BisectionBps(),
		Flows:       cfg.Flows,
		Matrix:      cfg.Matrix,
		TCP:         cfg.Protocol.TCP,
	})
	if err != nil {
		return nil, err
	}

	end := w.LastArrival().Add(cfg.Drain)
	if sharded {
		err = se.RunUntil(end)
	} else {
		err = engine.RunUntil(end)
	}
	if err != nil {
		return nil, err
	}

	res := &FabricResult{
		Protocol:        cfg.Protocol.Name,
		Topology:        fab.Kind,
		Hosts:           len(fab.Hosts),
		Load:            cfg.Load,
		Flows:           cfg.Flows,
		Completed:       w.Completed(),
		FCT:             w.FCTStats(cfg.SmallMax, cfg.LargeMin),
		Digest:          fmt.Sprintf("%016x", w.Digest()),
		Timeouts:        w.TotalTimeouts(),
		Retransmissions: w.TotalRetransmissions(),
		Events:          engine.Stats().Processed,
	}
	if sharded {
		res.Events = se.Stats().Processed
	}

	core := metrics.NewHistogram(bounds)
	for _, h := range coreHists {
		core.Merge(h)
	}
	agg := metrics.NewHistogram(bounds)
	for _, h := range aggHists {
		agg.Merge(h)
	}
	res.CoreQueue = summarize(core)
	res.AggQueue = summarize(agg)

	var enq uint64
	for _, sw := range nw.Switches() {
		for i := 0; i < sw.Ports(); i++ {
			st := sw.Port(i).Stats()
			res.Marks += st.Marked
			res.Drops += st.DroppedOverflow
			enq += st.Enqueued
		}
	}
	if enq > 0 {
		res.MarkRate = float64(res.Marks) / float64(enq)
		res.DropRate = float64(res.Drops) / float64(enq)
	}

	if cfg.Metrics {
		reg := metrics.NewRegistry()
		if sharded {
			metrics.InstrumentEngineStats(reg, se.Stats)
		} else {
			metrics.InstrumentEngine(reg, engine)
		}
		w.RecordFCT(reg, cfg.SmallMax, cfg.LargeMin)
		reg.Histogram("fabric_queue_pkts", "egress queue depth by switch tier",
			bounds, metrics.L("tier", "core")).Merge(core)
		reg.Histogram("fabric_queue_pkts", "egress queue depth by switch tier",
			bounds, metrics.L("tier", "agg")).Merge(agg)
		res.Metrics = reg.Snapshot(end.Seconds())
	}

	w.Cleanup()
	return res, nil
}

// LoadSweepPoint is one (load, result) sample of a load sweep.
type LoadSweepPoint struct {
	// Load is the offered load fraction.
	Load float64
	// Result is the fabric outcome at this load.
	Result *FabricResult
}

// SweepLoads runs the fabric at each load factor, reusing every other
// parameter of base.
func SweepLoads(base FabricConfig, loads []float64) ([]LoadSweepPoint, error) {
	return SweepLoadsParallel(context.Background(), base, loads, 1)
}

// SweepLoadsParallel runs the sweep points concurrently on up to
// workers goroutines (values < 1 mean GOMAXPROCS). Every point builds a
// private engine seeded only by base.Seed, so results are
// byte-identical for any worker count; they are returned in load order.
func SweepLoadsParallel(ctx context.Context, base FabricConfig, loads []float64, workers int) ([]LoadSweepPoint, error) {
	return runner.Map(ctx, len(loads), runner.Options{Workers: workers, ThreadsPerJob: base.Shards},
		func(_ context.Context, i int) (LoadSweepPoint, error) {
			cfg := base
			cfg.Load = loads[i]
			res, err := RunFabric(cfg)
			if err != nil {
				return LoadSweepPoint{}, fmt.Errorf("sweep load=%.2f: %w", loads[i], err)
			}
			return LoadSweepPoint{Load: loads[i], Result: res}, nil
		})
}
