package core

import (
	"context"
	"testing"
	"time"

	"dtdctcp/internal/flowgen"
	"dtdctcp/internal/netsim"
)

func fabricConfig(t *testing.T) FabricConfig {
	t.Helper()
	cdf, err := flowgen.BuiltinCDF(flowgen.WebSearchSmall)
	if err != nil {
		t.Fatal(err)
	}
	return FabricConfig{
		Protocol:     DCTCP(20, 1.0/16),
		Topology:     "leafspine",
		Leaves:       2,
		Spines:       2,
		HostsPerLeaf: 2,
		Rate:         netsim.Gbps,
		HopDelay:     10 * time.Microsecond,
		BufferPkts:   100,
		CDF:          cdf,
		Load:         0.4,
		Flows:        60,
		Seed:         42,
	}
}

func TestRunFabricLeafSpine(t *testing.T) {
	res, err := RunFabric(fabricConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Flows {
		t.Fatalf("completed %d/%d flows", res.Completed, res.Flows)
	}
	if res.Topology != "leafspine" || res.Hosts != 4 {
		t.Fatalf("echoed %s/%d hosts", res.Topology, res.Hosts)
	}
	if len(res.Digest) != 16 {
		t.Fatalf("digest %q is not a 64-bit hex word", res.Digest)
	}
	if len(res.FCT) != 3 {
		t.Fatalf("want 3 FCT buckets, got %d", len(res.FCT))
	}
	total := 0
	for _, b := range res.FCT {
		total += b.Completed
		if b.Completed > 0 && b.P99Seconds < b.P50Seconds {
			t.Fatalf("bucket %s: p99 %v < p50 %v", b.Bucket, b.P99Seconds, b.P50Seconds)
		}
	}
	if total != res.Flows {
		t.Fatalf("buckets hold %d completions, want %d", total, res.Flows)
	}
	// Every queue observation point must have fired, and the workload is
	// heavy enough to queue at least sometimes.
	if res.CoreQueue.Samples == 0 || res.AggQueue.Samples == 0 {
		t.Fatalf("queue monitors silent: core %d, agg %d", res.CoreQueue.Samples, res.AggQueue.Samples)
	}
	if res.Events == 0 {
		t.Fatal("no events processed")
	}
}

func TestRunFabricFatTreeWithMetrics(t *testing.T) {
	cfg := fabricConfig(t)
	cfg.Topology = "fattree"
	cfg.K = 4
	cfg.Metrics = true
	res, err := RunFabric(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hosts != 16 {
		t.Fatalf("k=4 fat-tree has %d hosts, want 16", res.Hosts)
	}
	if res.Completed != res.Flows {
		t.Fatalf("completed %d/%d", res.Completed, res.Flows)
	}
	if res.Metrics == nil {
		t.Fatal("metrics requested but snapshot missing")
	}
	var fct, queue int
	for _, m := range res.Metrics.Metrics {
		switch m.Name {
		case "flowgen_fct_seconds":
			fct++
		case "fabric_queue_pkts":
			queue++
		}
	}
	if fct != 3 || queue != 2 {
		t.Fatalf("snapshot carries %d FCT and %d queue histograms, want 3 and 2", fct, queue)
	}
}

func TestRunFabricValidates(t *testing.T) {
	good := fabricConfig(t)
	for name, mutate := range map[string]func(*FabricConfig){
		"bad topology": func(c *FabricConfig) { c.Topology = "torus" },
		"nil cdf":      func(c *FabricConfig) { c.CDF = nil },
		"zero load":    func(c *FabricConfig) { c.Load = 0 },
		"zero flows":   func(c *FabricConfig) { c.Flows = 0 },
		"zero rate":    func(c *FabricConfig) { c.Rate = 0 },
		"zero delay":   func(c *FabricConfig) { c.HopDelay = 0 },
		"zero buffer":  func(c *FabricConfig) { c.BufferPkts = 0 },
		"odd k": func(c *FabricConfig) {
			c.Topology = "fattree"
			c.K = 3
		},
	} {
		bad := good
		mutate(&bad)
		if _, err := RunFabric(bad); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestFabricDeterminism is the acceptance property: the same seed and
// topology produce byte-identical digests on repeat runs and for every
// shard count, and the aggregate statistics agree exactly.
func TestFabricDeterminism(t *testing.T) {
	base := fabricConfig(t)
	serial, err := RunFabric(base)
	if err != nil {
		t.Fatal(err)
	}

	repeat, err := RunFabric(base)
	if err != nil {
		t.Fatal(err)
	}
	if repeat.Digest != serial.Digest {
		t.Fatalf("repeat run diverged: %s vs %s", repeat.Digest, serial.Digest)
	}

	for _, shards := range []int{2, 4} {
		cfg := base
		cfg.Shards = shards
		res, err := RunFabric(cfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if res.Digest != serial.Digest {
			t.Fatalf("shards=%d digest %s, serial %s", shards, res.Digest, serial.Digest)
		}
		if res.Marks != serial.Marks || res.Drops != serial.Drops ||
			res.Completed != serial.Completed || res.Timeouts != serial.Timeouts {
			t.Fatalf("shards=%d aggregates diverged: %+v vs %+v", shards, res, serial)
		}
		if res.CoreQueue != serial.CoreQueue || res.AggQueue != serial.AggQueue {
			t.Fatalf("shards=%d queue summaries diverged", shards)
		}
	}
}

// TestFabricShardAssignmentPermutation is the metamorphic companion:
// rotating which shard owns which domain must not change the result,
// because cross-shard ordering keys on domain indices, never on shard
// indices — and ECMP path choice is a pure function of (salt, switch,
// flow), so placement cannot depend on the assignment either.
func TestFabricShardAssignmentPermutation(t *testing.T) {
	base := fabricConfig(t)
	serial, err := RunFabric(base)
	if err != nil {
		t.Fatal(err)
	}
	testPermuteAssign = func(assign []int) {
		for i := range assign {
			assign[i] = (assign[i] + 1) % 2
		}
	}
	defer func() { testPermuteAssign = nil }()
	cfg := base
	cfg.Shards = 2
	res, err := RunFabric(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Digest != serial.Digest {
		t.Fatalf("permuted assignment digest %s, serial %s", res.Digest, serial.Digest)
	}
}

// TestSweepLoadsParallelWorkers pins worker-count invariance: each point
// owns a private engine, so 1 worker and 4 workers agree byte for byte.
func TestSweepLoadsParallelWorkers(t *testing.T) {
	base := fabricConfig(t)
	base.Flows = 30
	loads := []float64{0.2, 0.5}
	one, err := SweepLoadsParallel(context.Background(), base, loads, 1)
	if err != nil {
		t.Fatal(err)
	}
	many, err := SweepLoadsParallel(context.Background(), base, loads, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range one {
		if one[i].Result.Digest != many[i].Result.Digest {
			t.Fatalf("load %.2f: workers 1 vs 4 diverged", loads[i])
		}
		if one[i].Load != loads[i] {
			t.Fatalf("point %d out of order", i)
		}
	}
}
