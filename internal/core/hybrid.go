package core

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"dtdctcp/internal/fluid"
	"dtdctcp/internal/hybrid"
	"dtdctcp/internal/metrics"
	"dtdctcp/internal/netsim"
	"dtdctcp/internal/sim"
	"dtdctcp/internal/stats"
	"dtdctcp/internal/workload"
)

// HybridConfig is the hybrid co-simulation scenario: BgFlows long-lived
// background flows share the dumbbell bottleneck with FgFlows foreground
// flows doing repeated fixed-size transfers. In hybrid mode (the
// default) the background flows are the fluid model of internal/fluid,
// coupled to the bottleneck port by internal/hybrid; with FullPacket
// they are real packet-level senders — the reference the conformance
// grid holds hybrid runs against.
type HybridConfig struct {
	// Protocol selects endpoints and queue law. Hybrid mode requires a
	// protocol with a marking law (the fluid model needs one).
	Protocol Protocol
	// BgFlows is the number of long-lived background flows.
	BgFlows int
	// FgFlows is the number of foreground flows; each repeatedly
	// transfers FgBytes with FgGap think time between transfers.
	FgFlows int
	FgBytes int64
	FgGap   time.Duration
	// Rate is the bottleneck link speed.
	Rate netsim.Rate
	// RTT is the zero-queue round-trip time.
	RTT time.Duration
	// BufferPkts is the bottleneck buffer in packets.
	BufferPkts int
	// Duration is the measured interval, after Warmup.
	Duration time.Duration
	// Warmup is excluded from queue statistics and foreground FCTs.
	Warmup time.Duration
	// QueueSampleEvery decimates the queue time series; zero disables
	// the series (aggregates are always collected).
	QueueSampleEvery time.Duration
	// CouplingInterval is the fluid/packet coupling tick; zero selects
	// the hybrid package's default (R₀/8). Ignored with FullPacket.
	CouplingInterval time.Duration
	// StepsPerTick is the number of fluid RK4 steps per coupling tick;
	// zero selects the default (8). Ignored with FullPacket.
	StepsPerTick int
	// FullPacket simulates the background flows packet-level instead of
	// coupling the fluid model — the conformance reference.
	FullPacket bool
	// Seed drives all randomness (start jitter).
	Seed int64
	// Shards, when above one, executes the run on that many event
	// wheels; results are byte-identical for any shard count.
	Shards int
	// Metrics enables the observability registry snapshot. Collection
	// is pull-based: enabling it changes no event order and no result.
	Metrics bool
}

func (c HybridConfig) validate() error {
	switch {
	case c.BgFlows <= 0:
		return errors.New("core: BgFlows must be positive")
	case c.FgFlows < 0:
		return errors.New("core: FgFlows must not be negative")
	case c.FgFlows > 0 && c.FgBytes <= 0:
		return errors.New("core: FgBytes must be positive when FgFlows is set")
	case c.Rate <= 0:
		return errors.New("core: Rate must be positive")
	case c.RTT <= 0:
		return errors.New("core: RTT must be positive")
	case c.BufferPkts <= 0:
		return errors.New("core: BufferPkts must be positive")
	case c.Duration <= 0:
		return errors.New("core: Duration must be positive")
	case c.Warmup < 0:
		return errors.New("core: Warmup must not be negative")
	case c.CouplingInterval < 0:
		return errors.New("core: CouplingInterval must not be negative")
	case c.StepsPerTick < 0:
		return errors.New("core: StepsPerTick must not be negative")
	case c.Shards < 0:
		return errors.New("core: Shards must not be negative")
	case !c.FullPacket && c.Protocol.MarkingLaw() == nil:
		return errors.New("core: hybrid mode requires a protocol with a marking law")
	default:
		return nil
	}
}

// fluidConfig maps the scenario onto the background fluid model.
func (c HybridConfig) fluidConfig() fluid.Config {
	ref := float64(c.Protocol.K)
	if c.Protocol.K2 > 0 {
		ref = float64(c.Protocol.K1+c.Protocol.K2) / 2
	}
	pktSize := c.Protocol.PacketSize()
	return fluid.Config{
		N:           float64(c.BgFlows),
		C:           c.Rate.BytesPerSecond() / float64(pktSize),
		D:           c.RTT.Seconds(),
		G:           c.Protocol.TCP.G,
		Law:         c.Protocol.MarkingLaw(),
		RTTRefQueue: ref,
		BufferLimit: float64(c.BufferPkts),
	}
}

// HybridResult aggregates one hybrid (or full-packet reference) run.
type HybridResult struct {
	// Protocol, Mode ("hybrid" or "packet"), BgFlows and FgFlows echo
	// the configuration.
	Protocol string `json:"protocol"`
	Mode     string `json:"mode"`
	BgFlows  int    `json:"bg_flows"`
	FgFlows  int    `json:"fg_flows"`

	// QueueMeanPkts and QueueStdPkts are time-weighted statistics of
	// the bottleneck's total occupancy — real packets plus the fluid
	// ambient contribution in hybrid mode — over the measured interval,
	// in packets. Min and Max bound the excursion.
	QueueMeanPkts float64 `json:"queue_mean_pkts"`
	QueueStdPkts  float64 `json:"queue_std_pkts"`
	QueueMinPkts  float64 `json:"queue_min_pkts"`
	QueueMaxPkts  float64 `json:"queue_max_pkts"`
	// QueueSeries is the decimated occupancy trace; nil when sampling
	// was disabled.
	QueueSeries *stats.Series `json:"-"`

	// OscPeriod is the dominant queue-oscillation period estimated by
	// autocorrelation on the post-warmup trace (zero when sampling was
	// disabled or no periodicity was found).
	OscPeriod     time.Duration `json:"osc_period_ns"`
	OscConfidence float64       `json:"osc_confidence"`

	// FluidFinal is the background model's final state; zero in packet
	// mode. CouplerTicks counts coupling exchanges.
	FluidFinal   fluid.State `json:"fluid_final"`
	CouplerTicks int         `json:"coupler_ticks"`

	// FgTransfers counts completed foreground transfers (warmup
	// included); FgFCTs lists post-warmup completion times in seconds,
	// in flow order, with mean and p99 precomputed.
	FgTransfers  int       `json:"fg_transfers"`
	FgFCTs       []float64 `json:"-"`
	FgFCTCount   int       `json:"fg_fct_count"`
	FgFCTMeanSec float64   `json:"fg_fct_mean_sec"`
	FgFCTP99Sec  float64   `json:"fg_fct_p99_sec"`

	// Marks and Drops count bottleneck CE marks and overflow drops over
	// the whole run; Timeouts counts sender RTOs (all senders).
	Marks    uint64 `json:"marks"`
	Drops    uint64 `json:"drops"`
	Timeouts uint64 `json:"timeouts"`
	// Events is the number of simulator events processed.
	Events uint64 `json:"events"`

	// Digest folds the queue statistics, trace, fluid state, and every
	// foreground FCT into one hex word; equal digests mean
	// byte-identical results.
	Digest string `json:"digest"`

	// Metrics is the observability snapshot; nil unless requested.
	Metrics *metrics.Snapshot `json:"-"`
}

// RunHybrid executes the scenario to completion and aggregates results.
func RunHybrid(cfg HybridConfig) (*HybridResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sharded := cfg.Shards > 1
	var se *sim.ShardedEngine
	var engine *sim.Engine
	if sharded {
		se = sim.NewShardedEngine(cfg.Seed, cfg.Shards)
		engine = se.Shard(0)
	} else {
		engine = sim.NewEngine(cfg.Seed)
	}
	nw := netsim.NewNetwork(engine)
	sw := nw.AddSwitch("sw")
	rcv := nw.AddHost("rcv")

	pktSize := cfg.Protocol.PacketSize()
	hop := cfg.RTT / 4
	access := netsim.PortConfig{
		Rate:   10 * cfg.Rate,
		Delay:  hop,
		Buffer: 4096 * pktSize,
	}
	bneckCfg := netsim.PortConfig{
		Rate:   cfg.Rate,
		Delay:  hop,
		Buffer: cfg.BufferPkts * pktSize,
	}
	if cfg.Protocol.NewPolicy != nil {
		bneckCfg.Policy = cfg.Protocol.NewPolicy(engine.Rand())
	}
	if err := nw.Connect(rcv, sw, access, bneckCfg); err != nil {
		return nil, err
	}
	// Foreground hosts first, then (packet mode only) background hosts,
	// so foreground flows get identical host identities in both modes.
	fgHosts := make([]*netsim.Host, cfg.FgFlows)
	for i := range fgHosts {
		fgHosts[i] = nw.AddHost(fmt.Sprintf("f%d", i))
		if err := nw.Connect(fgHosts[i], sw, access, access); err != nil {
			return nil, err
		}
	}
	var bgHosts []*netsim.Host
	if cfg.FullPacket {
		bgHosts = make([]*netsim.Host, cfg.BgFlows)
		for i := range bgHosts {
			bgHosts[i] = nw.AddHost(fmt.Sprintf("b%d", i))
			if err := nw.Connect(bgHosts[i], sw, access, access); err != nil {
				return nil, err
			}
		}
	}
	if err := nw.ComputeRoutes(); err != nil {
		return nil, err
	}

	bneck := sw.PortTo(rcv.ID())
	if sharded {
		// Partition after routes, before endpoints; the bottleneck —
		// and with it the coupler's tick chain — is pinned to shard 0,
		// whose RNG stream equals the serial engine's.
		assign := nw.DefaultAssign(cfg.Shards, nw.PortDomain(bneck))
		if testPermuteAssign != nil {
			testPermuteAssign(assign)
		}
		if err := nw.Partition(se, assign); err != nil {
			return nil, err
		}
	}

	var obs *observer
	if cfg.Metrics {
		engineStats := engine.Stats
		if sharded {
			engineStats = se.Stats
		}
		obs = newObserver(engine, engineStats, 0)
	}

	rec := netsim.NewQueueRecorder(pktSize, sim.FromDuration(cfg.QueueSampleEvery))
	rec.WarmupUntil = sim.FromDuration(cfg.Warmup)
	if obs != nil {
		qmon := obs.observePort("bottleneck", bneck, pktSize, cfg.BufferPkts)
		bneck.SetMonitor(netsim.MultiMonitor{rec, qmon})
	} else {
		bneck.SetMonitor(rec)
	}

	end := sim.FromDuration(cfg.Warmup + cfg.Duration)

	// Background load: fluid coupler in hybrid mode, real senders in
	// packet mode.
	var coupler *hybrid.Coupler
	var bg *workload.LongLived
	if cfg.FullPacket {
		bg = workload.StartLongLived(engine, workload.LongLivedConfig{
			Hosts:       bgHosts,
			Receiver:    rcv,
			TCP:         cfg.Protocol.TCP,
			BaseFlow:    1 << 20,
			StartJitter: cfg.RTT,
		})
	} else {
		var err error
		coupler, err = hybrid.New(hybrid.Config{
			Fluid:        cfg.fluidConfig(),
			Port:         bneck,
			PktSize:      pktSize,
			Interval:     cfg.CouplingInterval,
			StepsPerTick: cfg.StepsPerTick,
			Horizon:      cfg.Warmup + cfg.Duration,
		})
		if err != nil {
			return nil, err
		}
		coupler.Start(engine)
	}

	var fg *workload.Foreground
	if cfg.FgFlows > 0 {
		fg = workload.StartForeground(engine, workload.ForegroundConfig{
			Hosts:       fgHosts,
			Receiver:    rcv,
			Bytes:       cfg.FgBytes,
			Gap:         cfg.FgGap,
			TCP:         cfg.Protocol.TCP,
			BaseFlow:    1,
			StartJitter: cfg.RTT,
			Horizon:     cfg.Warmup + cfg.Duration,
			Warmup:      cfg.Warmup,
		})
	}

	if sharded {
		if err := se.RunUntil(end); err != nil {
			return nil, err
		}
	} else {
		if err := engine.RunUntil(end); err != nil {
			return nil, err
		}
	}
	rec.Finish(end)

	res := &HybridResult{
		Protocol:      cfg.Protocol.Name,
		Mode:          "hybrid",
		BgFlows:       cfg.BgFlows,
		FgFlows:       cfg.FgFlows,
		QueueMeanPkts: rec.Mean(),
		QueueStdPkts:  rec.StdDev(),
		QueueMinPkts:  rec.Min(),
		QueueMaxPkts:  rec.Max(),
		QueueSeries:   rec.Series(),
		Marks:         bneck.Stats().Marked,
		Drops:         bneck.Stats().DroppedOverflow,
		Events:        engine.Stats().Processed,
	}
	if cfg.FullPacket {
		res.Mode = "packet"
	}
	if sharded {
		res.Events = se.Stats().Processed
	}
	if coupler != nil {
		res.FluidFinal = coupler.Stepper().State()
		res.CouplerTicks = coupler.Ticks()
	}
	if bg != nil {
		res.Timeouts += bg.Timeouts()
	}
	if fg != nil {
		res.FgTransfers = fg.Transfers()
		res.FgFCTs = fg.FCTs()
		res.FgFCTCount = len(res.FgFCTs)
		if res.FgFCTCount > 0 {
			res.FgFCTMeanSec = stats.Mean(res.FgFCTs)
			res.FgFCTP99Sec = stats.Quantile(res.FgFCTs, 0.99)
		}
		res.Timeouts += fg.Timeouts()
	}
	if res.QueueSeries != nil {
		period, conf := stats.EstimatePeriod(res.QueueSeries.After(cfg.Warmup.Seconds()))
		res.OscPeriod = time.Duration(period * float64(time.Second))
		res.OscConfidence = conf
	}
	res.Digest = res.digest()
	if obs != nil {
		res.Metrics = obs.snapshot(end)
	}
	return res, nil
}

// digest folds every deterministic result field into one FNV-1a word:
// the exact bit patterns of the queue aggregates and trace, the fluid
// state, and every foreground FCT. Two runs agree on the digest iff they
// agree on all of them — "same seed → same result, for any shard count
// and with metrics on or off" is a one-word comparison.
func (r *HybridResult) digest() string {
	h := fnv.New64a()
	var buf [8]byte
	word := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	word(math.Float64bits(r.QueueMeanPkts))
	word(math.Float64bits(r.QueueStdPkts))
	word(math.Float64bits(r.QueueMinPkts))
	word(math.Float64bits(r.QueueMaxPkts))
	if r.QueueSeries != nil {
		word(r.QueueSeries.Hash64())
	}
	word(uint64(r.FluidFinal.Step))
	word(math.Float64bits(r.FluidFinal.W))
	word(math.Float64bits(r.FluidFinal.Alpha))
	word(math.Float64bits(r.FluidFinal.Q))
	word(uint64(r.CouplerTicks))
	word(uint64(r.FgTransfers))
	for _, fct := range r.FgFCTs {
		word(math.Float64bits(fct))
	}
	word(r.Marks)
	word(r.Drops)
	word(r.Timeouts)
	return fmt.Sprintf("%016x", h.Sum64())
}
