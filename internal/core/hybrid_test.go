package core

import (
	"math"
	"testing"
	"time"

	"dtdctcp/internal/netsim"
)

// hybridTestConfig is a small-but-nonvacuous scenario: enough background
// flows to build a standing queue, a handful of foreground flows, and a
// measured interval long enough to record FCTs.
func hybridTestConfig() HybridConfig {
	// Datacenter-scale RTO (the DCTCP testbed's 10 ms, not the 200 ms WAN
	// default): a foreground flow whose whole window is lost to a
	// transient burst must recover well inside the measured interval.
	proto := DCTCP(40, 1.0/16)
	proto.TCP.RTOMin = 10 * time.Millisecond
	proto.TCP.RTOInitial = 10 * time.Millisecond
	return HybridConfig{
		Protocol:         proto,
		BgFlows:          50,
		FgFlows:          4,
		FgBytes:          20_000,
		FgGap:            500 * time.Microsecond,
		Rate:             10 * netsim.Gbps,
		RTT:              100 * time.Microsecond,
		BufferPkts:       200,
		Duration:         20 * time.Millisecond,
		Warmup:           10 * time.Millisecond,
		QueueSampleEvery: 100 * time.Microsecond,
		Seed:             42,
	}
}

func TestRunHybridSmoke(t *testing.T) {
	res, err := RunHybrid(hybridTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "hybrid" {
		t.Fatalf("mode %q, want hybrid", res.Mode)
	}
	if res.CouplerTicks == 0 {
		t.Fatal("coupler never ticked")
	}
	if res.FluidFinal.Step == 0 {
		t.Fatal("fluid model never advanced")
	}
	if res.QueueMeanPkts <= 0 {
		t.Fatalf("background flows built no queue: mean %v", res.QueueMeanPkts)
	}
	if res.FgFCTCount == 0 {
		t.Fatal("no foreground FCTs recorded")
	}
	if res.FgFCTMeanSec <= 0 {
		t.Fatalf("non-positive mean FCT %v", res.FgFCTMeanSec)
	}
	if len(res.Digest) != 16 {
		t.Fatalf("digest %q is not a 64-bit hex word", res.Digest)
	}
	if res.QueueSeries == nil || res.QueueSeries.Len() == 0 {
		t.Fatal("queue series missing despite QueueSampleEvery")
	}
}

func TestRunHybridFullPacketReference(t *testing.T) {
	cfg := hybridTestConfig()
	cfg.BgFlows = 10 // keep the packet-level reference cheap
	cfg.FullPacket = true
	res, err := RunHybrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "packet" {
		t.Fatalf("mode %q, want packet", res.Mode)
	}
	if res.CouplerTicks != 0 || res.FluidFinal.Step != 0 {
		t.Fatal("packet mode ran the fluid coupler")
	}
	if res.QueueMeanPkts <= 0 {
		t.Fatalf("background senders built no queue: mean %v", res.QueueMeanPkts)
	}
	if res.FgFCTCount == 0 {
		t.Fatal("no foreground FCTs recorded")
	}
}

// TestHybridRepeatRunsAreByteIdentical is determinism satellite 1a: the
// same configuration twice gives the same digest.
func TestHybridRepeatRunsAreByteIdentical(t *testing.T) {
	a, err := RunHybrid(hybridTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunHybrid(hybridTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("repeat run diverged: %s vs %s", a.Digest, b.Digest)
	}
}

// TestHybridShardsAreByteIdentical is determinism satellite 1b: sharded
// execution (fluid coupler pinned to shard 0) reproduces the serial
// digest exactly.
func TestHybridShardsAreByteIdentical(t *testing.T) {
	serial, err := RunHybrid(hybridTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2} {
		cfg := hybridTestConfig()
		cfg.Shards = shards
		res, err := RunHybrid(cfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if res.Digest != serial.Digest {
			t.Fatalf("shards=%d digest %s, serial %s", shards, res.Digest, serial.Digest)
		}
	}
}

// TestHybridMetricsDoNotPerturb is determinism satellite 1c: the
// pull-based metrics registry changes no result.
func TestHybridMetricsDoNotPerturb(t *testing.T) {
	off, err := RunHybrid(hybridTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := hybridTestConfig()
	cfg.Metrics = true
	on, err := RunHybrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if on.Digest != off.Digest {
		t.Fatalf("metrics perturbed the run: %s vs %s", on.Digest, off.Digest)
	}
	if on.Metrics == nil {
		t.Fatal("metrics requested but snapshot missing")
	}
	if off.Metrics != nil {
		t.Fatal("metrics not requested but snapshot present")
	}
}

func TestHybridConfigValidation(t *testing.T) {
	bad := []func(*HybridConfig){
		func(c *HybridConfig) { c.BgFlows = 0 },
		func(c *HybridConfig) { c.FgFlows = -1 },
		func(c *HybridConfig) { c.FgBytes = 0 },
		func(c *HybridConfig) { c.Rate = 0 },
		func(c *HybridConfig) { c.RTT = 0 },
		func(c *HybridConfig) { c.BufferPkts = 0 },
		func(c *HybridConfig) { c.Duration = 0 },
		func(c *HybridConfig) { c.Warmup = -time.Second },
		func(c *HybridConfig) { c.CouplingInterval = -time.Second },
		func(c *HybridConfig) { c.StepsPerTick = -1 },
		func(c *HybridConfig) { c.Shards = -1 },
		func(c *HybridConfig) { c.Protocol = Reno() }, // no marking law in hybrid mode
	}
	for i, mutate := range bad {
		cfg := hybridTestConfig()
		mutate(&cfg)
		if _, err := RunHybrid(cfg); err == nil {
			t.Errorf("case %d: RunHybrid accepted invalid config", i)
		}
	}
}

// FuzzHybridConfig is the robustness contract of the hybrid entry point:
// any input either fails validation with an error or runs to completion
// — never a panic, never NaN in the results.
func FuzzHybridConfig(f *testing.F) {
	f.Add(50, int64(100), 40, 2, 200)
	f.Add(1000, int64(100), 40, 0, 600)
	f.Add(1, int64(1), 1, 1, 1)
	f.Add(0, int64(100), 40, 2, 200)  // rejected: no background flows
	f.Add(50, int64(0), 40, 2, 200)   // rejected: zero RTT
	f.Add(50, int64(100), 0, 2, 200)  // rejected: no marking law
	f.Add(50, int64(-5), 40, -3, 200) // rejected: negative RTT and flows
	f.Add(7, int64(100000), 199, 7, 999)

	f.Fuzz(func(t *testing.T, bgFlows int, rttUs int64, k int, fgFlows, bufPkts int) {
		// Bound the work, not the validity: positive magnitudes are
		// folded into a cheap range, sign and zero pass through so the
		// rejection paths stay reachable.
		if bgFlows > 0 {
			bgFlows = 1 + bgFlows%100_000
		}
		if rttUs > 0 {
			rttUs = 1 + rttUs%100_000
		}
		if k > 0 {
			k = 1 + k%200
		}
		if fgFlows > 0 {
			fgFlows = 1 + fgFlows%8
		}
		if bufPkts > 0 {
			bufPkts = 1 + bufPkts%1000
		}
		cfg := HybridConfig{
			Protocol:   DCTCP(k, 1.0/16),
			BgFlows:    bgFlows,
			FgFlows:    fgFlows,
			FgBytes:    10_000,
			FgGap:      time.Millisecond,
			Rate:       100 * netsim.Mbps, // 100 Mbps keeps packet counts small
			RTT:        time.Duration(rttUs) * time.Microsecond,
			BufferPkts: bufPkts,
			Duration:   2 * time.Millisecond,
			Warmup:     time.Millisecond,
			Seed:       1,
		}
		res, err := RunHybrid(cfg)
		if err != nil {
			return // rejected inputs are fine; panics and NaNs are not
		}
		for name, v := range map[string]float64{
			"queue mean":  res.QueueMeanPkts,
			"queue std":   res.QueueStdPkts,
			"fluid W":     res.FluidFinal.W,
			"fluid alpha": res.FluidFinal.Alpha,
			"fluid q":     res.FluidFinal.Q,
			"fct mean":    res.FgFCTMeanSec,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s = %v for config %+v", name, v, cfg)
			}
		}
	})
}
