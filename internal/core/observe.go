package core

import (
	"time"

	"dtdctcp/internal/chaos"
	"dtdctcp/internal/metrics"
	"dtdctcp/internal/netsim"
	"dtdctcp/internal/sim"
	"dtdctcp/internal/tcp"
	"dtdctcp/internal/workload"
)

// observer wires the metrics registry into one run's layers. All
// instrumentation is pull-based (CounterFunc/GaugeFunc over counters the
// layers already keep) except the queue-depth histogram, which rides the
// existing QueueMonitor notification — so enabling metrics changes no
// event order, draws no randomness, and costs nothing measurable on the
// hot path. The one exception is the optional sampler, whose periodic
// ticks are engine events; it is therefore gated separately by
// MetricsSampleEvery.
type observer struct {
	reg     *metrics.Registry
	sampler *metrics.Sampler
}

// newObserver builds a registry over the engine, with a sampler when
// sampleEvery is positive. stats overrides the engine-counter source —
// sharded runs pass the coordinator's merged Stats so the snapshot
// reports run-wide totals; nil uses the engine's own. The sampler always
// ticks on the given engine and is gated off for sharded runs by config
// validation, not here.
func newObserver(engine *sim.Engine, stats func() sim.EngineStats, sampleEvery time.Duration) *observer {
	o := &observer{reg: metrics.NewRegistry()}
	if stats == nil {
		stats = engine.Stats
	}
	metrics.InstrumentEngineStats(o.reg, stats)
	if sampleEvery > 0 {
		o.sampler = metrics.NewSampler(o.reg, engine, sampleEvery)
	}
	return o
}

// observePort registers per-port counters and a queue-depth histogram
// (in packets, linear buckets spanning the configured buffer). The
// returned monitor must be fanned into the port's QueueMonitor chain by
// the caller.
func (o *observer) observePort(name string, p *netsim.Port, pktSize, bufferPkts int) *metrics.QueueDepthMonitor {
	lbl := metrics.L("port", name)
	stat := p.Stats
	o.reg.CounterFunc("port_enqueued_total",
		"Packets accepted into the port queue.",
		func() uint64 { return stat().Enqueued }, lbl)
	o.reg.CounterFunc("port_dequeued_total",
		"Packets transmitted out of the port queue.",
		func() uint64 { return stat().Dequeued }, lbl)
	o.reg.CounterFunc("port_marked_total",
		"Packets CE-marked by the port's AQM.",
		func() uint64 { return stat().Marked }, lbl)
	o.reg.CounterFunc("port_dropped_overflow_total",
		"Packets dropped for lack of buffer.",
		func() uint64 { return stat().DroppedOverflow }, lbl)
	o.reg.CounterFunc("port_dropped_policy_total",
		"Packets dropped by the AQM policy.",
		func() uint64 { return stat().DroppedPolicy }, lbl)
	o.reg.CounterFunc("port_dropped_fault_total",
		"Packets lost to injected faults (down link or corruption).",
		func() uint64 { s := stat(); return s.DroppedLinkDown + s.DroppedCorrupt }, lbl)
	o.reg.CounterFunc("port_bytes_sent_total",
		"On-wire bytes transmitted.",
		func() uint64 { return stat().BytesSent }, lbl)
	o.reg.GaugeFunc("port_queue_pkts",
		"Instantaneous queue occupancy in packets.",
		func() float64 { return float64(p.QueueLen()) / float64(pktSize) }, lbl)

	// One bucket per buffer slot up to 64 buckets, so small buffers get
	// exact per-packet resolution and large ones stay compact.
	width := 1.0
	n := bufferPkts
	if n > 64 {
		width = float64(bufferPkts) / 64
		n = 64
	}
	hist := o.reg.Histogram("port_queue_depth_pkts",
		"Queue occupancy in packets, observed at every enqueue/dequeue/drop.",
		metrics.LinearBounds(width, width, n), lbl)
	return metrics.NewQueueDepthMonitor(hist, pktSize)
}

// observeUtilization registers the bottleneck utilization gauge:
// measured-interval goodput ÷ capacity, matching
// DumbbellResult.Utilization. bytesAtWarmup must point at the byte
// counter snapshot taken at the warmup boundary.
func (o *observer) observeUtilization(p *netsim.Port, bytesAtWarmup *uint64, capacityBytes float64) {
	o.reg.GaugeFunc("port_utilization",
		"Bottleneck goodput over capacity for the measured interval.",
		func() float64 {
			if capacityBytes <= 0 {
				return 0
			}
			return float64(p.Stats().BytesSent-*bytesAtWarmup) / capacityBytes
		}, metrics.L("port", "bottleneck"))
}

// observeFlows registers aggregate sender metrics: total segment and
// recovery counters, the ECE ratio, and gauges over mean cwnd and mean α.
func (o *observer) observeFlows(flows *workload.LongLived) {
	sum := func(pick func(s tcp.SenderStats) uint64) func() uint64 {
		return func() uint64 {
			var total uint64
			for _, snd := range flows.Senders {
				total += pick(snd.Stats())
			}
			return total
		}
	}
	o.reg.CounterFunc("tcp_segments_sent_total",
		"Data segments transmitted by all senders, retransmissions included.",
		sum(func(s tcp.SenderStats) uint64 { return s.SegmentsSent }))
	o.reg.CounterFunc("tcp_retransmissions_total",
		"Segments retransmitted by all senders.",
		sum(func(s tcp.SenderStats) uint64 { return s.Retransmissions }))
	o.reg.CounterFunc("tcp_fast_recoveries_total",
		"Entries into NewReno fast recovery across all senders.",
		sum(func(s tcp.SenderStats) uint64 { return s.FastRecoveries }))
	o.reg.CounterFunc("tcp_rto_total",
		"Retransmission-timeout firings across all senders.",
		sum(func(s tcp.SenderStats) uint64 { return s.Timeouts }))
	o.reg.CounterFunc("tcp_acks_received_total",
		"ACK segments processed across all senders.",
		sum(func(s tcp.SenderStats) uint64 { return s.AcksReceived }))
	o.reg.CounterFunc("tcp_ece_acks_total",
		"ACKs carrying an ECN echo across all senders.",
		sum(func(s tcp.SenderStats) uint64 { return s.ECEAcks }))
	o.reg.CounterFunc("tcp_alpha_updates_total",
		"Per-window DCTCP α recomputations across all senders.",
		sum(func(s tcp.SenderStats) uint64 { return s.AlphaUpdates }))
	o.reg.CounterFunc("tcp_ecn_reductions_total",
		"Window reductions triggered by ECN marks across all senders.",
		sum(func(s tcp.SenderStats) uint64 { return s.ECNReductions }))
	o.reg.GaugeFunc("tcp_ece_ratio",
		"Fraction of ACKs carrying an ECN echo (the marking probability senders see).",
		func() float64 {
			var acks, ece uint64
			for _, snd := range flows.Senders {
				s := snd.Stats()
				acks += s.AcksReceived
				ece += s.ECEAcks
			}
			if acks == 0 {
				return 0
			}
			return float64(ece) / float64(acks)
		})
	o.reg.GaugeFunc("tcp_alpha_mean",
		"Mean DCTCP α across all senders.",
		flows.MeanAlpha)
	o.reg.GaugeFunc("tcp_cwnd_mean_pkts",
		"Mean congestion window across all senders, in packets.",
		func() float64 {
			if len(flows.Senders) == 0 {
				return 0
			}
			var total float64
			for _, snd := range flows.Senders {
				total += snd.CwndPackets()
			}
			return total / float64(len(flows.Senders))
		})
}

// observeChaos registers the fault-action counter.
func (o *observer) observeChaos(ctl *chaos.Controller) {
	o.reg.CounterFunc("chaos_actions_executed_total",
		"Chaos plan actions that have fired (flap transitions and burst toggles count individually).",
		ctl.Executed)
}

// startSampler begins the periodic virtual-time sampler (if configured)
// tracking the bottleneck queue depth, mean α, and mean cwnd.
func (o *observer) startSampler(bneck *netsim.Port, pktSize int, flows *workload.LongLived) {
	if o.sampler == nil {
		return
	}
	o.sampler.Track("metrics_queue_pkts", func() float64 {
		return float64(bneck.QueueLen()) / float64(pktSize)
	})
	o.sampler.Track("metrics_alpha_mean", flows.MeanAlpha)
	o.sampler.Track("metrics_cwnd_mean_pkts", func() float64 {
		if len(flows.Senders) == 0 {
			return 0
		}
		var total float64
		for _, snd := range flows.Senders {
			total += snd.CwndPackets()
		}
		return total / float64(len(flows.Senders))
	})
	o.sampler.Start()
}

// snapshot freezes the registry at the run's virtual end time.
func (o *observer) snapshot(end sim.Time) *metrics.Snapshot {
	return o.reg.Snapshot(end.Seconds())
}
