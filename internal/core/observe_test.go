package core

import (
	"testing"
	"time"
)

// The observability layer is exercised end to end by cmd/dtsim and the
// metrics package; these tests pin it from inside core so the observer
// wiring (dumbbell, testbed, chaos, sampler) keeps its own coverage.

func TestDumbbellMetricsSnapshot(t *testing.T) {
	cfg := paperDumbbell(DCTCP(40, 1.0/16), 6)
	cfg.Duration = 30 * time.Millisecond
	cfg.Warmup = 10 * time.Millisecond
	cfg.Metrics = true
	cfg.Chaos = chaosPlan()
	res, err := RunDumbbell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics == nil || len(res.Metrics.Metrics) == 0 {
		t.Fatal("Metrics snapshot missing despite Metrics: true")
	}
	names := map[string]bool{}
	for _, m := range res.Metrics.Metrics {
		names[m.Name] = true
	}
	for _, want := range []string{
		"sim_events_executed_total",
		"port_queue_depth_pkts",
		"tcp_alpha_mean",
		"chaos_actions_executed_total",
	} {
		if !names[want] {
			t.Errorf("snapshot lacks %q", want)
		}
	}
	if res.Metrics.EndSeconds <= 0 {
		t.Fatalf("EndSeconds = %v", res.Metrics.EndSeconds)
	}
}

func TestDumbbellMetricsSampler(t *testing.T) {
	cfg := paperDumbbell(DTDCTCP(30, 50, 1.0/16), 4)
	cfg.Duration = 20 * time.Millisecond
	cfg.Warmup = 5 * time.Millisecond
	cfg.MetricsSampleEvery = time.Millisecond // implies Metrics
	res, err := RunDumbbell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics == nil || len(res.Metrics.Series) == 0 {
		t.Fatal("sampler series missing despite MetricsSampleEvery")
	}
	for _, s := range res.Metrics.Series {
		if len(s.T) == 0 || len(s.T) != len(s.Values) {
			t.Fatalf("series %q has %d/%d points", s.Name, len(s.T), len(s.Values))
		}
	}
}

func TestTestbedMetricsSnapshot(t *testing.T) {
	cfg := DefaultTestbed(DCTCP(21, 1.0/16), 4)
	cfg.Metrics = true
	res, err := RunIncast(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics == nil || len(res.Metrics.Metrics) == 0 {
		t.Fatal("testbed Metrics snapshot missing")
	}
}

// TestSweepLoadsSerial covers the serial fabric sweep wrapper.
func TestSweepLoadsSerial(t *testing.T) {
	base := fabricConfig(t)
	base.Flows = 20
	pts, err := SweepLoads(base, []float64{0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].Load != 0.3 || pts[0].Result.Completed != 20 {
		t.Fatalf("SweepLoads: %+v", pts)
	}
}
