package core

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"dtdctcp/internal/netsim"
)

// sweepBase is a deliberately tiny dumbbell so the determinism tests run
// whole sweeps in milliseconds.
func sweepBase() DumbbellConfig {
	return DumbbellConfig{
		Protocol:         DCTCP(40, 1.0/16),
		Rate:             1 * netsim.Gbps,
		RTT:              100 * time.Microsecond,
		BufferPkts:       100,
		Duration:         20 * time.Millisecond,
		Warmup:           5 * time.Millisecond,
		QueueSampleEvery: 100 * time.Microsecond,
		Seed:             42,
	}
}

func marshalSweep(t *testing.T, pts []FlowSweepPoint) []byte {
	t.Helper()
	b, err := json.Marshal(pts)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSweepDeterministicUnderParallelism is the PR's acceptance test: the
// same seed must yield byte-identical sweep results at -workers=1 and
// -workers=8. Each point owns a private engine, so the worker count can
// only change scheduling on the host, never inside the simulated world.
func TestSweepDeterministicUnderParallelism(t *testing.T) {
	flows := []int{2, 4, 8, 16, 24, 32}
	base := sweepBase()

	serial, err := SweepFlowsParallel(context.Background(), base, flows, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := SweepFlowsParallel(context.Background(), base, flows, 8)
	if err != nil {
		t.Fatal(err)
	}

	sj, pj := marshalSweep(t, serial), marshalSweep(t, parallel)
	if !bytes.Equal(sj, pj) {
		t.Fatalf("sweep results differ between workers=1 and workers=8:\nserial:   %.200s\nparallel: %.200s", sj, pj)
	}

	// And repeated parallel runs must agree with themselves.
	again, err := SweepFlowsParallel(context.Background(), base, flows, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pj, marshalSweep(t, again)) {
		t.Fatal("two workers=8 sweeps with the same seed disagree")
	}
}

// TestSweepFlowsSerialMatchesParallelAPI pins the compatibility contract:
// the legacy serial entry point is exactly the parallel one at workers=1.
func TestSweepFlowsSerialMatchesParallelAPI(t *testing.T) {
	flows := []int{2, 6}
	base := sweepBase()
	legacy, err := SweepFlows(base, flows)
	if err != nil {
		t.Fatal(err)
	}
	par, err := SweepFlowsParallel(context.Background(), base, flows, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalSweep(t, legacy), marshalSweep(t, par)) {
		t.Fatal("SweepFlows and SweepFlowsParallel disagree on identical input")
	}
}

// TestSweepWorkersParallelDeterministic covers the testbed sweep the same
// way, with the incast runner as the experiment body.
func TestSweepWorkersParallelDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("incast rounds are slow")
	}
	base := DefaultTestbed(DCTCP(40, 1.0/16), 0)
	counts := []int{2, 4, 6}
	run := func(cfg TestbedConfig, rounds int) (*QueryResult, error) {
		return RunQuery(cfg, 16<<10, rounds)
	}
	serial, err := SweepWorkersParallel(context.Background(), base, counts, 2, 1, run)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := SweepWorkersParallel(context.Background(), base, counts, 2, 8, run)
	if err != nil {
		t.Fatal(err)
	}
	sj, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	pj, err := json.Marshal(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj, pj) {
		t.Fatalf("testbed sweep differs between par=1 and par=8:\nserial:   %.200s\nparallel: %.200s", sj, pj)
	}
}
