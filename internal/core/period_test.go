package core

import (
	"testing"
	"time"
)

// Cross-check of theory against the packet simulator: in the unstable
// regime, the queue trace must contain a genuine limit cycle (high
// autocorrelation confidence) whose period is on the scale the
// describing-function analysis predicts — a handful of RTTs. This is the
// strongest end-to-end validation in the suite: the analysis (Sections
// IV–V) and the simulation (Section VI) were built independently.
func TestMeasuredOscillationPeriodMatchesDFPrediction(t *testing.T) {
	params := PaperAnalysisParams()
	cfg := paperDumbbell(DCTCP(40, 1.0/16), 80)
	cfg.Duration = 120 * time.Millisecond
	cfg.Warmup = 30 * time.Millisecond
	cfg.QueueSampleEvery = 20 * time.Microsecond
	res, err := RunDumbbell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.OscConfidence < 0.5 {
		t.Fatalf("no credible periodicity at N=80 (confidence %.2f)", res.OscConfidence)
	}
	v, err := AnalyzeStability(cfg.Protocol, params, cfg.Flows)
	if err != nil {
		t.Fatal(err)
	}
	if v.Stable {
		t.Fatal("analysis should predict oscillation at N=80")
	}
	predicted := time.Duration(v.Cycle.PeriodSeconds() * float64(time.Second))
	ratio := float64(res.OscPeriod) / float64(predicted)
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("measured period %v vs predicted %v (ratio %.2f): beyond the agreed tolerance",
			res.OscPeriod, predicted, ratio)
	}
	// Both must sit at a few RTTs.
	rtts := res.OscPeriod.Seconds() / cfg.RTT.Seconds()
	if rtts < 2 || rtts > 15 {
		t.Fatalf("measured period %v = %.1f RTTs, expected a handful", res.OscPeriod, rtts)
	}
}

// The queue swing must grow with the flow count (the Fig. 1 phenomenon,
// measured rather than eyeballed).
func TestQueueSwingGrowsWithFlows(t *testing.T) {
	mk := func(n int) *DumbbellResult {
		cfg := paperDumbbell(DCTCP(40, 1.0/16), n)
		cfg.QueueSampleEvery = 20 * time.Microsecond
		res, err := RunDumbbell(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	small := mk(10)
	large := mk(100)
	swingSmall := small.QueueMaxPkts - small.QueueMinPkts
	swingLarge := large.QueueMaxPkts - large.QueueMinPkts
	if swingLarge < 1.5*swingSmall {
		t.Fatalf("queue swing should grow with N: %v → %v pkts", swingSmall, swingLarge)
	}
}
