// Package core ties the substrates together into the paper's experiments:
// protocol presets (DCTCP, DT-DCTCP, TCP baselines), the dumbbell scenario
// behind Figs. 1 and 10–12, the simulated NetFPGA testbed behind Figs. 14
// and 15, and bridges into the fluid-model and describing-function
// analyses of Sections IV–V.
package core

import (
	"fmt"
	"math/rand"
	"time"

	"dtdctcp/internal/aqm"
	"dtdctcp/internal/control"
	"dtdctcp/internal/fluid"
	"dtdctcp/internal/netsim"
	"dtdctcp/internal/tcp"
)

// Protocol bundles one end-to-end congestion-control configuration: the
// end-host transport settings and a factory for the switch queue law.
type Protocol struct {
	// Name labels the protocol in results.
	Name string
	// TCP is the endpoint configuration.
	TCP tcp.Config
	// NewPolicy returns a fresh queue law for one bottleneck port; nil
	// means DropTail. Runners pass the engine's seeded source so
	// randomized laws (PIE, RED) stay a pure function of the run seed;
	// deterministic laws ignore the argument, and offline contexts
	// (ReplayMarker) may pass nil.
	NewPolicy func(rng *rand.Rand) aqm.Policy

	// K, K1, K2 record the marking thresholds in packets (K for
	// single-threshold, K1/K2 for double) so analyses can mirror the
	// simulated configuration. Zero when not applicable.
	K, K1, K2 int
}

// PacketSize returns the wire size of a full segment under this protocol.
func (p Protocol) PacketSize() int { return p.TCP.PacketSize() }

// DF returns the describing function matching the protocol's marker, or
// nil for unmarked protocols.
func (p Protocol) DF() control.DF {
	switch {
	case p.K1 > 0 && p.K2 > 0:
		return control.DTDCTCPDF{K1: float64(p.K1), K2: float64(p.K2)}
	case p.K > 0:
		return control.DCTCPDF{K: float64(p.K)}
	default:
		return nil
	}
}

// MarkingLaw returns the fluid-model marking law matching the protocol's
// marker, or nil for unmarked protocols.
func (p Protocol) MarkingLaw() fluid.MarkingLaw {
	switch {
	case p.K1 > 0 && p.K2 > 0:
		return fluid.DoubleThreshold{K1: float64(p.K1), K2: float64(p.K2)}
	case p.K > 0:
		return fluid.SingleThreshold{K: float64(p.K)}
	default:
		return nil
	}
}

// DCTCP returns the paper's baseline: DCTCP endpoints with a
// single-threshold marker at kPackets and gain g.
func DCTCP(kPackets int, g float64) Protocol {
	cfg := tcp.DefaultConfig(tcp.DCTCP)
	cfg.G = g
	pktSize := cfg.PacketSize()
	return Protocol{
		Name: fmt.Sprintf("dctcp(K=%d)", kPackets),
		TCP:  cfg,
		NewPolicy: func(*rand.Rand) aqm.Policy {
			return aqm.NewSingleThresholdPackets(kPackets, pktSize)
		},
		K: kPackets,
	}
}

// DTDCTCP returns the paper's contribution: DCTCP endpoints with the
// double-threshold marker (mark-on at k1, mark-off at k2, in packets).
func DTDCTCP(k1, k2 int, g float64) Protocol {
	cfg := tcp.DefaultConfig(tcp.DCTCP)
	cfg.G = g
	pktSize := cfg.PacketSize()
	return Protocol{
		Name: fmt.Sprintf("dt-dctcp(K1=%d,K2=%d)", k1, k2),
		TCP:  cfg,
		NewPolicy: func(*rand.Rand) aqm.Policy {
			return aqm.NewDoubleThresholdPackets(k1, k2, pktSize)
		},
		K1: k1,
		K2: k2,
	}
}

// D2TCPProto returns the deadline-aware DCTCP successor the paper cites
// (Vamanan et al.): DCTCP's marker at kPackets with D2TCP endpoints whose
// backoff penalty is α^d for deadline urgency d.
func D2TCPProto(kPackets int, g float64) Protocol {
	cfg := tcp.DefaultConfig(tcp.D2TCP)
	cfg.G = g
	pktSize := cfg.PacketSize()
	return Protocol{
		Name: fmt.Sprintf("d2tcp(K=%d)", kPackets),
		TCP:  cfg,
		NewPolicy: func(*rand.Rand) aqm.Policy {
			return aqm.NewSingleThresholdPackets(kPackets, pktSize)
		},
		K: kPackets,
	}
}

// DCTCPPlus returns DCTCP+ (SNIPPETS Snippet 1 / ns-3 TcpDctcpPlus):
// DCTCP's single-threshold marker at kPackets with endpoints running the
// slow-timer backoff state machine — once the window floor is reached
// under persistent congestion, senders pace transmissions by a
// randomized, additively-grown slow timer instead of hammering
// synchronized bursts. A sender-side rival to DT-DCTCP on the incast
// scenarios.
func DCTCPPlus(kPackets int, g float64) Protocol {
	cfg := tcp.DefaultConfig(tcp.DCTCPPlus)
	cfg.G = g
	pktSize := cfg.PacketSize()
	return Protocol{
		Name: fmt.Sprintf("dctcp+(K=%d)", kPackets),
		TCP:  cfg,
		NewPolicy: func(*rand.Rand) aqm.Policy {
			return aqm.NewSingleThresholdPackets(kPackets, pktSize)
		},
		K: kPackets,
	}
}

// HULL returns HULL-style phantom-queue marking (Alizadeh et al.,
// NSDI'12): DCTCP endpoints marked by a virtual queue that drains at
// gamma times the bottleneck line rate and trips a single threshold at
// kPackets of virtual occupancy. With gamma < 1 utilization pins near
// gamma while the real queue stays close to empty. The marker needs the
// line rate, so callers pass the bottleneck rate the way RenoPIE does.
// K is left zero: the fluid and describing-function analyses model
// real-queue markers, and a virtual-queue threshold is not comparable —
// analytic checks skip with that reason rather than comparing apples to
// phantoms.
func HULL(kPackets int, gamma float64, rate netsim.Rate, g float64) Protocol {
	cfg := tcp.DefaultConfig(tcp.DCTCP)
	cfg.G = g
	pktSize := cfg.PacketSize()
	drain := gamma * rate.BytesPerSecond()
	return Protocol{
		Name: fmt.Sprintf("hull(K=%d,gamma=%.2f)", kPackets, gamma),
		TCP:  cfg,
		NewPolicy: func(*rand.Rand) aqm.Policy {
			return aqm.NewPhantomQueue(drain, aqm.NewSingleThresholdPackets(kPackets, pktSize))
		},
	}
}

// Reno returns plain loss-driven NewReno over DropTail, the conventional
// TCP the paper's introduction argues against.
func Reno() Protocol {
	return Protocol{Name: "reno", TCP: tcp.DefaultConfig(tcp.Reno)}
}

// RenoPIE returns NewReno endpoints with the RFC3168 ECN response over a
// PIE queue (RFC 8033) draining at the given rate and targeting the given
// queueing delay — the delay-targeting AQM contemporaneous with the paper,
// included as an ablation baseline. PIE's randomized marking draws from
// the source the runner injects (the engine's), so the run seed alone
// reproduces it.
func RenoPIE(drainRate netsim.Rate, target time.Duration) Protocol {
	cfg := tcp.DefaultConfig(tcp.RenoECN)
	return Protocol{
		Name: fmt.Sprintf("reno-pie(target=%v)", target),
		TCP:  cfg,
		NewPolicy: func(rng *rand.Rand) aqm.Policy {
			return &aqm.PIE{
				Target:       target,
				TUpdate:      target, // RFC suggests TUpdate ≈ target
				DrainRateBps: drainRate.BytesPerSecond(),
				ECN:          true,
				Rand:         rng,
			}
		},
	}
}

// RenoCoDel returns NewReno/ECN endpoints over a CoDel queue (RFC 8289)
// with the given sojourn target and interval — the second delay-targeting
// AQM of the paper's era, acting at dequeue time on measured sojourn.
func RenoCoDel(target, interval time.Duration) Protocol {
	cfg := tcp.DefaultConfig(tcp.RenoECN)
	return Protocol{
		Name: fmt.Sprintf("reno-codel(target=%v)", target),
		TCP:  cfg,
		NewPolicy: func(*rand.Rand) aqm.Policy {
			return &aqm.CoDel{Target: target, Interval: interval, ECN: true}
		},
	}
}

// CubicProto returns loss-driven CUBIC (RFC 8312) over DropTail — the
// Linux default TCP of the paper's era, with no ECN.
func CubicProto() Protocol {
	return Protocol{Name: "cubic", TCP: tcp.DefaultConfig(tcp.Cubic)}
}

// RenoECN returns NewReno with the classic RFC3168 ECN response over a
// single-threshold marker, an intermediate baseline between Reno and
// DCTCP.
func RenoECN(kPackets int) Protocol {
	cfg := tcp.DefaultConfig(tcp.RenoECN)
	pktSize := cfg.PacketSize()
	return Protocol{
		Name: fmt.Sprintf("reno-ecn(K=%d)", kPackets),
		TCP:  cfg,
		NewPolicy: func(*rand.Rand) aqm.Policy {
			return aqm.NewSingleThresholdPackets(kPackets, pktSize)
		},
		K: kPackets,
	}
}
