package core

import (
	"math"
	"fmt"
	"testing"
	"time"
)

// shardCounts is the acceptance matrix: sharded runs at every count must
// reproduce the serial run byte for byte.
var shardCounts = []int{2, 4, 8}

// TestShardedDumbbellMatchesSerial is the sharded-execution determinism
// contract on the dumbbell: for any shard count, a partitioned run must
// fingerprint identically to the serial engine — same queue trace, same
// α series, same per-flow byte counts, bit for bit.
func TestShardedDumbbellMatchesSerial(t *testing.T) {
	serial, err := RunDumbbell(determinismConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(t, serial)
	for _, shards := range shardCounts {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			cfg := determinismConfig(7)
			cfg.Shards = shards
			res, err := RunDumbbell(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := fingerprint(t, res); got != want {
				t.Fatalf("sharded run diverged from serial:\nserial:\n%s\nsharded:\n%s",
					diffHead(want, got), diffHead(got, want))
			}
		})
	}
}

// TestShardedDumbbellRepeatable reruns the same sharded configuration:
// goroutine scheduling must not leak into results.
func TestShardedDumbbellRepeatable(t *testing.T) {
	cfg := determinismConfig(11)
	cfg.Shards = 4
	first, err := RunDumbbell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunDumbbell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fp1, fp2 := fingerprint(t, first), fingerprint(t, second)
	if fp1 != fp2 {
		t.Fatalf("same sharded config produced diverging runs:\nfirst:\n%s\nsecond:\n%s",
			diffHead(fp1, fp2), diffHead(fp2, fp1))
	}
}

// TestShardedDumbbellAssignmentPermutation is the metamorphic check on
// the domain→shard assignment: moving domains between shards (keeping
// the root-RNG consumers pinned to shard 0) must not change a single
// bit, because the barrier mailbox orders deliveries by domain index,
// never by shard.
func TestShardedDumbbellAssignmentPermutation(t *testing.T) {
	cfg := determinismConfig(7)
	cfg.Shards = 4
	base, err := RunDumbbell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(t, base)

	testPermuteAssign = func(assign []int) {
		// Reverse every non-pinned domain's shard; domains already on
		// shard 0 (including the pinned bottleneck) stay put.
		for d, s := range assign {
			if s != 0 {
				assign[d] = cfg.Shards - s
			}
		}
	}
	defer func() { testPermuteAssign = nil }()

	permuted, err := RunDumbbell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprint(t, permuted); got != want {
		t.Fatalf("assignment permutation changed results:\nbase:\n%s\npermuted:\n%s",
			diffHead(want, got), diffHead(got, want))
	}
}

// TestShardedDumbbellGating pins the validation surface: features with
// no sharded equivalent must be rejected up front, not fail mysteriously
// mid-run.
func TestShardedDumbbellGating(t *testing.T) {
	cfg := determinismConfig(1)
	cfg.Shards = 2
	cfg.MetricsSampleEvery = time.Millisecond
	if _, err := RunDumbbell(cfg); err == nil {
		t.Fatal("sharded run with MetricsSampleEvery should be rejected")
	}
}

// TestShardedDumbbellPIEMatchesSerial pins the root-RNG discipline: PIE
// draws from the run's root source on every dequeue, so the sharded run
// only matches serial if the bottleneck's domain stays on shard 0 and no
// other shard touches that stream.
func TestShardedDumbbellPIEMatchesSerial(t *testing.T) {
	cfg := determinismConfig(7)
	cfg.Protocol = RenoPIE(cfg.Rate, 500*time.Microsecond)
	serial, err := RunDumbbell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(t, serial)
	cfg.Shards = 4
	res, err := RunDumbbell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprint(t, res); got != want {
		t.Fatalf("sharded PIE run diverged from serial:\nserial:\n%s\nsharded:\n%s",
			diffHead(want, got), diffHead(got, want))
	}
}

// queryFingerprint serializes every observable of a query run
// bit-exactly (floats via %x), mirroring the dumbbell fingerprint.
func queryFingerprint(res *QueryResult) string {
	return fmt.Sprintf("rounds=%d goodput=%x mean=%d p95=%d max=%d std=%d timeouts=%d drops=%d missed=%d missrate=%x",
		res.Rounds, math.Float64bits(res.MeanGoodputBps),
		res.MeanCompletion, res.P95Completion, res.MaxCompletion, res.CompletionStdDev,
		res.Timeouts, res.Drops, res.MissedDeadlines, math.Float64bits(res.DeadlineMissRate))
}

// TestShardedQueryMatchesSerial is the sharded determinism contract on
// the testbed: the relay-mode query runner must reproduce the serial
// incast run bit for bit at every shard count, including deadline
// bookkeeping (deadlines engage the D2TCP-style miss accounting).
func TestShardedQueryMatchesSerial(t *testing.T) {
	base := DefaultTestbed(DTDCTCP(16, 26, 1.0/16), 8)
	base.Deadline = 30 * time.Millisecond
	serial, err := RunQuery(base, 64<<10, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := queryFingerprint(serial)
	for _, shards := range shardCounts {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			cfg := base
			cfg.Shards = shards
			res, err := RunQuery(cfg, 64<<10, 4)
			if err != nil {
				t.Fatal(err)
			}
			if got := queryFingerprint(res); got != want {
				t.Fatalf("sharded query run diverged from serial:\nserial: %s\nsharded: %s", want, got)
			}
		})
	}
}

// TestShardedQueryRepeatable reruns one sharded testbed configuration.
func TestShardedQueryRepeatable(t *testing.T) {
	cfg := DefaultTestbed(DCTCP(21, 1.0/16), 6)
	cfg.Shards = 4
	first, err := RunQuery(cfg, 32<<10, 3)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunQuery(cfg, 32<<10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := queryFingerprint(first), queryFingerprint(second); a != b {
		t.Fatalf("same sharded config produced diverging query runs:\nfirst:  %s\nsecond: %s", a, b)
	}
}

// TestShardedQueryGating pins the testbed validation surface.
func TestShardedQueryGating(t *testing.T) {
	cfg := DefaultTestbed(DCTCP(21, 1.0/16), 4)
	cfg.Shards = 2
	cfg.FreshConnections = true
	if _, err := RunQuery(cfg, 1<<10, 1); err == nil {
		t.Fatal("sharded run with FreshConnections should be rejected")
	}
	cfg.FreshConnections = false
	cfg.Gap = cfg.HopDelay // below the 2×lookahead floor
	if _, err := RunQuery(cfg, 1<<10, 1); err == nil {
		t.Fatal("sharded run with Gap < 2*HopDelay should be rejected")
	}
}
