package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"dtdctcp/internal/chaos"
	"dtdctcp/internal/metrics"
	"dtdctcp/internal/netsim"
	"dtdctcp/internal/runner"
	"dtdctcp/internal/sim"
	"dtdctcp/internal/stats"
	"dtdctcp/internal/workload"
)

// TestbedConfig reproduces the paper's NetFPGA testbed (Fig. 13) in the
// simulator: one core switch (Switch 1) with the aggregator host and three
// edge switches, workers spread round-robin across the edges, every link
// at 1 Gbps. The bottleneck is the core→aggregator port: it carries the
// protocol's marking law and a 128 KB buffer; all other ports are
// DropTail with 512 KB, exactly as the paper configures it.
type TestbedConfig struct {
	// Protocol selects endpoints and the bottleneck queue law.
	Protocol Protocol
	// Workers is the number of responding servers (the paper's testbed
	// has 9 physical workers but scales flows beyond that; we scale
	// hosts with the flow count, which the simulator affords).
	Workers int
	// LinkRate is the port speed; the paper's NetFPGA cards run 1 Gbps.
	LinkRate netsim.Rate
	// BottleneckBuffer is the core→aggregator buffer in bytes (paper:
	// 128 KB).
	BottleneckBuffer int
	// EdgeBuffer is every other port's buffer in bytes (paper: 512 KB).
	EdgeBuffer int
	// HopDelay is the per-link one-way propagation delay; the paper
	// reports ≈100 µs RTT between hosts on the same switch, i.e. ≈25 µs
	// per traversal.
	HopDelay time.Duration
	// StartJitter staggers worker responses within a round, modelling
	// request fan-out serialization and host scheduling noise on the
	// real testbed.
	StartJitter time.Duration
	// Gap is the aggregator's think time between rounds.
	Gap time.Duration
	// Deadline, when positive, gives every response a per-round
	// completion deadline; D2TCP endpoints modulate their backoff with
	// it and QueryResult reports the miss rate for every variant.
	Deadline time.Duration
	// FreshConnections opens new connections (slow start) every round.
	// The default — persistent connections whose congestion state
	// carries across rounds — matches the classic incast benchmark
	// setup the paper inherits from Nagle et al.
	FreshConnections bool
	// Seed drives randomness.
	Seed int64
	// Shards, when above one, executes this single run in parallel on
	// that many event wheels under conservative-lookahead (epoch
	// barrier) synchronization; see netsim.Network.Partition and
	// workload.StartQueriesSharded. Results are byte-identical for any
	// shard count — shards=1 (or zero) is the plain serial engine.
	// Sharded runs reject Chaos and FreshConnections (serial-only
	// features) and require Gap ≥ 2×HopDelay so round boundaries clear
	// the epoch barriers.
	Shards int

	// Chaos, when set, applies a fault-injection plan to the topology.
	// Plans may target "bottleneck" (core switch → aggregator),
	// "agg-uplink" (aggregator → core switch), and "worker<i>"
	// (worker i → its edge switch). Event times are absolute virtual
	// times within the query run.
	Chaos *chaos.Plan
	// Metrics enables the observability registry: the result carries a
	// Snapshot covering the engine, the bottleneck port, and (when
	// Chaos is set) the chaos controller. Pull-based, so enabling it
	// changes nothing else.
	Metrics bool
	// SharedBuffer, when enabled (Alpha > 0), replaces the core
	// switch's static per-port buffers with one dynamic-threshold pool;
	// PoolPkts defaults to the bottleneck buffer.
	SharedBuffer SharedBufferConfig
}

// DefaultTestbed returns the paper's testbed parameters for a protocol.
func DefaultTestbed(p Protocol, workers int) TestbedConfig {
	return TestbedConfig{
		Protocol:         p,
		Workers:          workers,
		LinkRate:         1 * netsim.Gbps,
		BottleneckBuffer: 128 << 10,
		EdgeBuffer:       512 << 10,
		HopDelay:         25 * time.Microsecond,
		StartJitter:      50 * time.Microsecond,
		Gap:              100 * time.Microsecond,
		Seed:             1,
	}
}

func (c TestbedConfig) validate() error {
	switch {
	case c.Workers <= 0:
		return errors.New("core: Workers must be positive")
	case c.LinkRate <= 0:
		return errors.New("core: LinkRate must be positive")
	case c.BottleneckBuffer <= 0 || c.EdgeBuffer <= 0:
		return errors.New("core: buffers must be positive")
	case c.HopDelay <= 0:
		return errors.New("core: HopDelay must be positive")
	case c.Shards < 0:
		return errors.New("core: Shards must not be negative")
	case c.Shards > 1 && c.Chaos != nil:
		return errors.New("core: Chaos requires serial execution (Shards <= 1)")
	case c.Shards > 1 && c.FreshConnections:
		return errors.New("core: FreshConnections requires serial execution (Shards <= 1)")
	case c.Shards > 1 && c.Gap < 2*c.HopDelay:
		return errors.New("core: sharded queries need Gap >= 2*HopDelay (round starts must clear the epoch barrier)")
	default:
		return nil
	}
}

// testbed is a built topology ready to carry queries. se is non-nil
// when the topology was partitioned for sharded execution.
type testbed struct {
	engine     *sim.Engine
	se         *sim.ShardedEngine
	aggregator *netsim.Host
	workers    []*netsim.Host
	bneck      *netsim.Port
	obs        *observer
}

// buildTestbed constructs the Fig. 13 topology.
func buildTestbed(cfg TestbedConfig) (*testbed, error) {
	// A sharded build uses the coordinator's shard-0 engine for
	// construction — same creation order, same RNG stream as serial.
	sharded := cfg.Shards > 1
	var se *sim.ShardedEngine
	var engine *sim.Engine
	if sharded {
		se = sim.NewShardedEngine(cfg.Seed, cfg.Shards)
		engine = se.Shard(0)
	} else {
		engine = sim.NewEngine(cfg.Seed)
	}
	nw := netsim.NewNetwork(engine)
	core := nw.AddSwitch("switch1")
	agg := nw.AddHost("aggregator")

	edge := netsim.PortConfig{Rate: cfg.LinkRate, Delay: cfg.HopDelay, Buffer: cfg.EdgeBuffer}
	bneckCfg := netsim.PortConfig{Rate: cfg.LinkRate, Delay: cfg.HopDelay, Buffer: cfg.BottleneckBuffer}
	if cfg.Protocol.NewPolicy != nil {
		bneckCfg.Policy = cfg.Protocol.NewPolicy(engine.Rand())
	}
	if err := nw.Connect(agg, core, edge, bneckCfg); err != nil {
		return nil, err
	}

	const edges = 3
	edgeSwitches := make([]*netsim.Switch, edges)
	for i := range edgeSwitches {
		edgeSwitches[i] = nw.AddSwitch(fmt.Sprintf("switch%d", i+2))
		if err := nw.Connect(edgeSwitches[i], core, edge, edge); err != nil {
			return nil, err
		}
	}
	workers := make([]*netsim.Host, cfg.Workers)
	for i := range workers {
		workers[i] = nw.AddHost(fmt.Sprintf("worker%d", i))
		if err := nw.Connect(workers[i], edgeSwitches[i%edges], edge, edge); err != nil {
			return nil, err
		}
	}
	if err := nw.ComputeRoutes(); err != nil {
		return nil, err
	}
	bneck := core.PortTo(agg.ID())
	if cfg.SharedBuffer.enabled() {
		pktSize := cfg.Protocol.PacketSize()
		bufferPkts := cfg.BottleneckBuffer / pktSize
		if bufferPkts < 1 {
			bufferPkts = 1
		}
		if _, err := cfg.SharedBuffer.build(core, bneck, bufferPkts, pktSize); err != nil {
			return nil, err
		}
	}
	if sharded {
		// Partition after routes and before endpoints. The bottleneck
		// port's domain is pinned to shard 0: a randomized AQM law
		// (PIE) draws from the root RNG at runtime, and shard 0's
		// stream equals the serial engine's. Shared-buffer member
		// ports are pinned with it — the pool counter must live on a
		// single shard.
		pins := []int{nw.PortDomain(bneck)}
		if sb := bneck.Shared(); sb != nil {
			pins = append(pins, pinPool(nw, sb)...)
		}
		assign := nw.DefaultAssign(cfg.Shards, pins...)
		if err := nw.Partition(se, assign); err != nil {
			return nil, err
		}
	}
	var obs *observer
	if cfg.Metrics {
		engineStats := engine.Stats
		if sharded {
			engineStats = se.Stats
		}
		obs = newObserver(engine, engineStats, 0)
		pktSize := cfg.Protocol.PacketSize()
		bufferPkts := cfg.BottleneckBuffer / pktSize
		if bufferPkts < 1 {
			bufferPkts = 1
		}
		bneck.SetMonitor(obs.observePort("bottleneck", bneck, pktSize, bufferPkts))
	}
	if cfg.Chaos != nil {
		ctl := chaos.NewController(nw, cfg.Chaos)
		ctl.BindLink("bottleneck", bneck)
		ctl.BindLink("agg-uplink", agg.Uplink())
		for i, w := range workers {
			ctl.BindLink(fmt.Sprintf("worker%d", i), w.Uplink())
		}
		if err := ctl.Apply(); err != nil {
			return nil, err
		}
		if obs != nil {
			obs.observeChaos(ctl)
		}
	}
	return &testbed{
		engine:     engine,
		se:         se,
		aggregator: agg,
		workers:    workers,
		bneck:      bneck,
		obs:        obs,
	}, nil
}

// QueryResult aggregates a repeated synchronized query experiment.
type QueryResult struct {
	// Protocol and Workers echo the configuration.
	Protocol string
	Workers  int
	// Rounds is the number of completed repetitions.
	Rounds int
	// MeanGoodputBps is the average per-round application goodput
	// (Fig. 14's y-axis).
	MeanGoodputBps float64
	// MeanCompletion, P95Completion, MaxCompletion summarize the
	// query completion times (Fig. 15's y-axis).
	MeanCompletion, P95Completion, MaxCompletion time.Duration
	// CompletionStdDev is the standard deviation of completion times,
	// the "severe oscillation" the paper reports for DCTCP near
	// collapse.
	CompletionStdDev time.Duration
	// Timeouts counts RTO firings across all rounds; nonzero timeouts
	// are the mechanism of Incast collapse.
	Timeouts uint64
	// Drops counts bottleneck overflow drops.
	Drops uint64
	// MissedDeadlines counts worker responses that finished past their
	// deadline, and DeadlineMissRate normalizes it by the total number
	// of responses (0 when no deadline was configured).
	MissedDeadlines  int
	DeadlineMissRate float64

	// Events is the number of simulator events processed (summed over
	// shards when the run was sharded), for throughput accounting.
	Events uint64

	// Metrics is the run's observability snapshot; nil unless
	// TestbedConfig.Metrics was set.
	Metrics *metrics.Snapshot
}

// RunQuery executes rounds of a synchronized query on the testbed:
// every worker sends bytesPerWorker to the aggregator simultaneously and
// the round ends when all responses are delivered. This is the paper's
// Incast experiment when bytesPerWorker is fixed (64 KB, Fig. 14) and the
// completion-time experiment when bytesPerWorker = 1 MB ÷ workers
// (Fig. 15).
func RunQuery(cfg TestbedConfig, bytesPerWorker int64, rounds int) (*QueryResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if bytesPerWorker <= 0 || rounds <= 0 {
		return nil, errors.New("core: bytesPerWorker and rounds must be positive")
	}
	tb, err := buildTestbed(cfg)
	if err != nil {
		return nil, err
	}
	qcfg := workload.QueryConfig{
		Workers:        tb.workers,
		Aggregator:     tb.aggregator,
		BytesPerWorker: bytesPerWorker,
		Rounds:         rounds,
		Gap:            cfg.Gap,
		TCP:            cfg.Protocol.TCP,
		Persistent:     !cfg.FreshConnections,
		StartJitter:    cfg.StartJitter,
		Deadline:       cfg.Deadline,
	}
	var queries *workload.QueryRunner
	if tb.se != nil {
		queries = workload.StartQueriesSharded(tb.se, qcfg)
	} else {
		queries = workload.StartQueries(tb.engine, qcfg)
	}

	// Generous horizon: every round can absorb several full backoff
	// chains before we declare the run wedged.
	horizon := time.Duration(rounds) * (10*time.Second + 4*time.Duration(cfg.Workers)*time.Millisecond)
	if tb.se != nil {
		if err := tb.se.RunFor(horizon); err != nil {
			return nil, err
		}
	} else if err := tb.engine.RunFor(horizon); err != nil {
		return nil, err
	}
	if !queries.Done() {
		return nil, fmt.Errorf("core: query run incomplete after %v: %d/%d rounds",
			horizon, len(queries.Rounds()), rounds)
	}

	times := queries.CompletionTimes()
	goodputs := queries.GoodputsBps()
	res := &QueryResult{
		Protocol:         cfg.Protocol.Name,
		Workers:          cfg.Workers,
		Rounds:           len(queries.Rounds()),
		MeanGoodputBps:   stats.Mean(goodputs),
		MeanCompletion:   secondsToDuration(stats.Mean(times)),
		P95Completion:    secondsToDuration(stats.Quantile(times, 0.95)),
		MaxCompletion:    secondsToDuration(stats.Quantile(times, 1)),
		CompletionStdDev: secondsToDuration(stats.StdDev(times)),
		Timeouts:         queries.TotalTimeouts(),
		Drops:            tb.bneck.Stats().DroppedOverflow,
		MissedDeadlines:  queries.TotalMissedDeadlines(),
		Events:           tb.engine.Stats().Processed,
	}
	if tb.se != nil {
		res.Events = tb.se.Stats().Processed
	}
	if cfg.Deadline > 0 {
		total := float64(res.Rounds * cfg.Workers)
		if total > 0 {
			res.DeadlineMissRate = float64(res.MissedDeadlines) / total
		}
	}
	if tb.obs != nil {
		at := tb.engine.Now()
		if tb.se != nil {
			at = tb.se.Now()
		}
		res.Metrics = tb.obs.snapshot(at)
	}
	return res, nil
}

// RunIncast is the Fig. 14 experiment: fixed 64 KB per worker.
func RunIncast(cfg TestbedConfig, rounds int) (*QueryResult, error) {
	return RunQuery(cfg, 64<<10, rounds)
}

// RunCompletionTime is the Fig. 15 experiment: 1 MB split evenly over the
// workers.
func RunCompletionTime(cfg TestbedConfig, rounds int) (*QueryResult, error) {
	per := int64(1<<20) / int64(cfg.Workers)
	if per <= 0 {
		return nil, errors.New("core: too many workers for 1 MB query")
	}
	return RunQuery(cfg, per, rounds)
}

// WorkerSweepPoint is one (n, result) sample of the Figs. 14–15 sweeps.
type WorkerSweepPoint struct {
	// Workers is the synchronized flow count.
	Workers int
	// Result is the query outcome at this count.
	Result *QueryResult
}

// SweepWorkers repeats run for each worker count, cloning base. Points run
// serially; use SweepWorkersParallel to spread them over goroutines.
func SweepWorkers(base TestbedConfig, workers []int, rounds int,
	run func(TestbedConfig, int) (*QueryResult, error)) ([]WorkerSweepPoint, error) {
	return SweepWorkersParallel(context.Background(), base, workers, rounds, 1, run)
}

// SweepWorkersParallel runs the sweep points concurrently on up to par
// goroutines (values < 1 mean GOMAXPROCS). Each point builds a private
// testbed seeded only by base.Seed, so results are byte-identical for any
// worker count; they are returned in the order of workers.
func SweepWorkersParallel(ctx context.Context, base TestbedConfig, workers []int, rounds, par int,
	run func(TestbedConfig, int) (*QueryResult, error)) ([]WorkerSweepPoint, error) {
	// A sharded point occupies one goroutine per shard; shrink the worker
	// pool so the sweep does not oversubscribe the machine.
	return runner.Map(ctx, len(workers), runner.Options{Workers: par, ThreadsPerJob: base.Shards},
		func(_ context.Context, i int) (WorkerSweepPoint, error) {
			cfg := base
			cfg.Workers = workers[i]
			res, err := run(cfg, rounds)
			if err != nil {
				return WorkerSweepPoint{}, fmt.Errorf("sweep workers=%d: %w", workers[i], err)
			}
			return WorkerSweepPoint{Workers: workers[i], Result: res}, nil
		})
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
