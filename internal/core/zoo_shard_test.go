package core

import (
	"fmt"
	"testing"
)

// zooShardConfig is the combined protocol-and-switch-zoo determinism
// scenario: DCTCP+ senders (engine-seeded randomized pacing) draining
// through a shared-buffer switch (dynamic-threshold admission with the
// pool pinned to one shard). It exercises every new stochastic and
// stateful element of the zoo in a single run.
func zooShardConfig(seed int64) DumbbellConfig {
	cfg := determinismConfig(seed)
	cfg.Protocol = DCTCPPlus(30, 1.0/16)
	cfg.SharedBuffer = SharedBufferConfig{Alpha: 2}
	return cfg
}

// TestShardedZooMatchesSerial extends the sharded determinism contract
// to the zoo: a DCTCP+ run through a shared-buffer switch must
// fingerprint identically on the serial engine and at every shard count
// — the pacing RNG is seeded before the shards fork, and the pool's
// member ports are pinned to a single shard.
func TestShardedZooMatchesSerial(t *testing.T) {
	serial, err := RunDumbbell(zooShardConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(t, serial)
	for _, shards := range shardCounts {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			cfg := zooShardConfig(7)
			cfg.Shards = shards
			res, err := RunDumbbell(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := fingerprint(t, res); got != want {
				t.Fatalf("sharded zoo run diverged from serial:\nserial:\n%s\nsharded:\n%s",
					diffHead(want, got), diffHead(got, want))
			}
		})
	}
}

// TestShardedZooRepeatable reruns the same sharded zoo configuration:
// goroutine scheduling must not leak into the pacing draws or the pool
// admission order.
func TestShardedZooRepeatable(t *testing.T) {
	cfg := zooShardConfig(11)
	cfg.Shards = 4
	first, err := RunDumbbell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunDumbbell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fp1, fp2 := fingerprint(t, first), fingerprint(t, second)
	if fp1 != fp2 {
		t.Fatalf("same sharded zoo config produced diverging runs:\nfirst:\n%s\nsecond:\n%s",
			diffHead(fp1, fp2), diffHead(fp2, fp1))
	}
}

// TestShardedZooAssignmentPermutation is the metamorphic check on the
// zoo scenario: moving domains between shards (the pinned pool members
// stay together on shard 0) must not change a single bit.
func TestShardedZooAssignmentPermutation(t *testing.T) {
	cfg := zooShardConfig(7)
	cfg.Shards = 4
	base, err := RunDumbbell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(t, base)

	testPermuteAssign = func(assign []int) {
		for d, s := range assign {
			if s != 0 {
				assign[d] = cfg.Shards - s
			}
		}
	}
	defer func() { testPermuteAssign = nil }()

	permuted, err := RunDumbbell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprint(t, permuted); got != want {
		t.Fatalf("assignment permutation changed zoo results:\nbase:\n%s\npermuted:\n%s",
			diffHead(want, got), diffHead(got, want))
	}
}

// TestShardedHULLMatchesSerial pins the phantom queue under sharding:
// the virtual-queue drain is pure port-local state, so a HULL run must
// match serial at every shard count with no extra pinning.
func TestShardedHULLMatchesSerial(t *testing.T) {
	mk := func(seed int64) DumbbellConfig {
		cfg := determinismConfig(seed)
		cfg.Protocol = HULL(30, 0.95, cfg.Rate, 1.0/16)
		return cfg
	}
	serial, err := RunDumbbell(mk(7))
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(t, serial)
	if serial.Marks == 0 {
		t.Fatal("vacuous: the phantom queue never marked")
	}
	for _, shards := range shardCounts {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			cfg := mk(7)
			cfg.Shards = shards
			res, err := RunDumbbell(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := fingerprint(t, res); got != want {
				t.Fatalf("sharded HULL run diverged from serial:\nserial:\n%s\nsharded:\n%s",
					diffHead(want, got), diffHead(got, want))
			}
		})
	}
}

// TestShardedZooSeedSensitivity guards the other direction for the new
// stochastic element: the engine seed steers the DCTCP+ pacing draws, so
// two seeds must not fingerprint identically under sharding.
func TestShardedZooSeedSensitivity(t *testing.T) {
	mk := func(seed int64) DumbbellConfig {
		cfg := zooShardConfig(seed)
		cfg.Shards = 2
		return cfg
	}
	a, err := RunDumbbell(mk(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDumbbell(mk(8))
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(t, a) == fingerprint(t, b) {
		t.Fatal("different seeds produced byte-identical sharded zoo runs")
	}
}

// TestShardedZooIncastMatchesSerial closes the loop on the testbed side:
// the relay-mode query runner with DCTCP+ workers must reproduce the
// serial incast bit for bit — the per-sender pacing seeds are drawn from
// the engine source before the shards fork.
func TestShardedZooIncastMatchesSerial(t *testing.T) {
	base := DefaultTestbed(DCTCPPlus(20, 1.0/16), 8)
	serial, err := RunQuery(base, 64<<10, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := queryFingerprint(serial)
	for _, shards := range shardCounts {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			cfg := base
			cfg.Shards = shards
			res, err := RunQuery(cfg, 64<<10, 3)
			if err != nil {
				t.Fatal(err)
			}
			if got := queryFingerprint(res); got != want {
				t.Fatalf("sharded DCTCP+ query run diverged from serial:\nserial: %s\nsharded: %s", want, got)
			}
		})
	}
}
