// Package flowgen generates trace-driven datacenter workloads: flow
// sizes drawn from an empirical CDF, open-loop Poisson arrivals targeted
// at a fraction of the fabric's bisection bandwidth, and per-flow FCT
// recording bucketed small/medium/large.
//
// The whole trace — sizes, arrivals, source/destination pairs — is
// generated up front from the network construction engine's seeded
// source, before any endpoint exists. Sharded execution therefore sees
// the byte-identical trace the serial run does: the generator never
// consumes run-time randomness.
package flowgen

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"strings"
)

// CDF is an empirical flow-size distribution: strictly increasing sizes
// in bytes with nondecreasing cumulative probabilities ending at 1.
// Sampling inverts the CDF with piecewise-linear interpolation, which
// smooths the empirical step function between trace points; the mass at
// or below the first point collapses onto the first size.
type CDF struct {
	sizes []float64
	probs []float64
}

// ParseCDF reads the ns2-style flow-size trace format: one point per
// line, either "<size_bytes> <cdf>" or "<size_bytes> <id> <cdf>" (the
// middle column of three-column traces is ignored). '#' starts a
// comment; blank lines are skipped. Sizes must be positive and strictly
// increasing, probabilities nondecreasing within [0, 1], and the last
// probability must be exactly 1 so the distribution carries full mass.
func ParseCDF(r io.Reader) (*CDF, error) {
	c := &CDF{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("flowgen: line %d: want 2 or 3 columns, got %d", line, len(fields))
		}
		size, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("flowgen: line %d: bad size %q", line, fields[0])
		}
		prob, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			return nil, fmt.Errorf("flowgen: line %d: bad probability %q", line, fields[len(fields)-1])
		}
		switch {
		case math.IsNaN(size) || math.IsNaN(prob):
			return nil, fmt.Errorf("flowgen: line %d: NaN", line)
		case size < 1 || size > 1e15:
			return nil, fmt.Errorf("flowgen: line %d: size %v outside [1, 1e15] bytes", line, size)
		case len(c.sizes) > 0 && size <= c.sizes[len(c.sizes)-1]:
			return nil, fmt.Errorf("flowgen: line %d: sizes must be strictly increasing", line)
		case prob < 0 || prob > 1:
			return nil, fmt.Errorf("flowgen: line %d: probability %v outside [0, 1]", line, prob)
		case len(c.probs) > 0 && prob < c.probs[len(c.probs)-1]:
			return nil, fmt.Errorf("flowgen: line %d: CDF must be nondecreasing", line)
		}
		c.sizes = append(c.sizes, size)
		c.probs = append(c.probs, prob)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("flowgen: %w", err)
	}
	if len(c.sizes) == 0 {
		return nil, fmt.Errorf("flowgen: empty CDF")
	}
	if c.probs[len(c.probs)-1] != 1 {
		return nil, fmt.Errorf("flowgen: CDF ends at %v, want 1 (distribution must carry full mass)",
			c.probs[len(c.probs)-1])
	}
	return c, nil
}

// ParseCDFString parses an in-memory trace.
func ParseCDFString(s string) (*CDF, error) { return ParseCDF(strings.NewReader(s)) }

// Points returns the number of trace points.
func (c *CDF) Points() int { return len(c.sizes) }

// MinSize and MaxSize bound the support in bytes.
func (c *CDF) MinSize() int64 { return int64(c.sizes[0]) }

// MaxSize returns the largest size in the trace.
func (c *CDF) MaxSize() int64 { return int64(c.sizes[len(c.sizes)-1]) }

// Sample draws one flow size in bytes by inverting the CDF at a uniform
// variate, interpolating linearly inside each segment. Flat segments
// (zero probability mass) are never selected; draws at or below the
// first point return the first size.
func (c *CDF) Sample(rng *rand.Rand) int64 {
	u := rng.Float64()
	if u <= c.probs[0] {
		return int64(c.sizes[0])
	}
	// First point with prob >= u; its predecessor has prob < u, so the
	// segment has positive mass and the interpolation is well defined.
	lo, hi := 0, len(c.probs)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c.probs[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	i := lo
	frac := (u - c.probs[i-1]) / (c.probs[i] - c.probs[i-1])
	size := c.sizes[i-1] + frac*(c.sizes[i]-c.sizes[i-1])
	if size < 1 {
		size = 1
	}
	return int64(size)
}

// Mean returns the distribution's expected flow size in bytes under the
// same interpolation Sample uses: probs[0] mass at the first size, then
// uniformly spread mass inside each segment.
func (c *CDF) Mean() float64 {
	mean := c.probs[0] * c.sizes[0]
	for i := 1; i < len(c.sizes); i++ {
		mass := c.probs[i] - c.probs[i-1]
		mean += mass * (c.sizes[i-1] + c.sizes[i]) / 2
	}
	return mean
}

// Builtin trace names.
const (
	// WebSearch is the DCTCP-paper web-search workload (Alizadeh et al.
	// Fig. 4, packet counts scaled to 1460-byte segments): a mix from
	// single-segment queries up to ~30 MB background transfers, mean
	// ≈ 1.1 MB. Faithful but expensive — one run schedules hundreds of
	// events per flow megabyte.
	WebSearch = "websearch"
	// WebSearchSmall truncates the web-search mix at 1.2 MB (mean
	// ≈ 160 KB), keeping the shape of the short-flow region while
	// capping per-run event counts; the committed dtfabric baseline
	// uses it so a 50k-flow run stays in seconds, not hours.
	WebSearchSmall = "websearch-small"
	// DataMining is the heavy-tailed data-mining mix (most flows under
	// 10 KB, most bytes in multi-MB transfers).
	DataMining = "datamining"
)

// Builtin trace bodies double as format examples; see ParseCDF.
var builtins = map[string]string{
	WebSearch: `# DCTCP-paper web search flow sizes (bytes, cdf)
1460     0.15
4380     0.25
10220    0.45
51100    0.60
102200   0.70
511000   0.80
1022000  0.90
10220000 0.97
29200000 1.00
`,
	WebSearchSmall: `# Truncated web-search mix for event-budgeted runs (bytes, cdf)
1460    0.00
8760    0.15
18980   0.20
27740   0.30
48180   0.40
77380   0.53
150000  0.70
300000  0.85
600000  0.95
1200000 1.00
`,
	DataMining: `# Heavy-tailed data mining mix (bytes, id, cdf) — 3-column form
100       1  0.10
1460      2  0.40
10000     3  0.55
100000    4  0.75
1000000   5  0.90
10000000  6  0.97
100000000 7  1.00
`,
}

// BuiltinCDF returns a named builtin distribution, or an error listing
// the known names.
func BuiltinCDF(name string) (*CDF, error) {
	body, ok := builtins[name]
	if !ok {
		return nil, fmt.Errorf("flowgen: unknown CDF %q (builtins: %s, %s, %s; or pass a trace file)",
			name, WebSearch, WebSearchSmall, DataMining)
	}
	c, err := ParseCDFString(body)
	if err != nil {
		panic(fmt.Sprintf("flowgen: builtin %q does not parse: %v", name, err))
	}
	return c, nil
}
