package flowgen

import (
	"math/rand"
	"strings"
	"testing"
)

func TestParseCDFTwoAndThreeColumn(t *testing.T) {
	c2, err := ParseCDFString("# comment\n1460 0.5\n\n29200 1.0  # trailing\n")
	if err != nil {
		t.Fatal(err)
	}
	c3, err := ParseCDFString("1460 1 0.5\n29200 2 1.0\n")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []*CDF{c2, c3} {
		if c.Points() != 2 || c.MinSize() != 1460 || c.MaxSize() != 29200 {
			t.Fatalf("parsed %d points, support [%d, %d]", c.Points(), c.MinSize(), c.MaxSize())
		}
	}
	if c2.Mean() != c3.Mean() {
		t.Fatalf("column forms disagree: %v vs %v", c2.Mean(), c3.Mean())
	}
}

func TestParseCDFRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"comments only":   "# nothing\n",
		"one column":      "1460\n",
		"four columns":    "1 2 3 4\n",
		"bad size":        "xyz 1.0\n",
		"bad prob":        "1460 one\n",
		"negative size":   "-5 1.0\n",
		"zero size":       "0 1.0\n",
		"huge size":       "1e30 1.0\n",
		"nan size":        "NaN 1.0\n",
		"prob above one":  "1460 1.5\n",
		"negative prob":   "1460 -0.1\n",
		"non-monotone sz": "2000 0.5\n1000 1.0\n",
		"duplicate size":  "2000 0.5\n2000 1.0\n",
		"decreasing cdf":  "1000 0.8\n2000 0.5\n",
		"mass short of 1": "1000 0.5\n2000 0.9\n",
		"zero mass":       "1000 0.0\n2000 0.0\n",
	}
	for name, body := range cases {
		if _, err := ParseCDFString(body); err == nil {
			t.Errorf("%s: accepted %q", name, body)
		}
	}
}

func TestSampleStaysInSupportAndIsDeterministic(t *testing.T) {
	c, err := BuiltinCDF(WebSearchSmall)
	if err != nil {
		t.Fatal(err)
	}
	draw := func(seed int64) []int64 {
		rng := rand.New(rand.NewSource(seed))
		out := make([]int64, 1000)
		for i := range out {
			out[i] = c.Sample(rng)
			if out[i] < c.MinSize() || out[i] > c.MaxSize() {
				t.Fatalf("sample %d outside [%d, %d]", out[i], c.MinSize(), c.MaxSize())
			}
		}
		return out
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestSampleMatchesMean(t *testing.T) {
	c, err := BuiltinCDF(WebSearchSmall)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(c.Sample(rng))
	}
	got, want := sum/n, c.Mean()
	if got < 0.95*want || got > 1.05*want {
		t.Fatalf("empirical mean %.0f vs analytic %.0f", got, want)
	}
}

func TestSampleSkipsZeroMassSegments(t *testing.T) {
	// The flat segment 2000→3000 carries no mass: 3000 must never be the
	// interpolation target, so no sample lands in (2000, 3000].
	c, err := ParseCDFString("1000 0.5\n2000 0.75\n3000 0.75\n4000 1.0\n")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		if v := c.Sample(rng); v > 2000 && v <= 3000 {
			t.Fatalf("sample %d fell inside a zero-mass segment", v)
		}
	}
}

func TestBuiltins(t *testing.T) {
	means := map[string][2]float64{
		WebSearch:      {0.9e6, 1.3e6},
		WebSearchSmall: {120e3, 200e3},
		DataMining:     {1e6, 4e6},
	}
	for name, bounds := range means {
		c, err := BuiltinCDF(name)
		if err != nil {
			t.Fatal(err)
		}
		if m := c.Mean(); m < bounds[0] || m > bounds[1] {
			t.Errorf("%s mean %.0f outside [%.0f, %.0f]", name, m, bounds[0], bounds[1])
		}
	}
	if _, err := BuiltinCDF("nope"); err == nil || !strings.Contains(err.Error(), "websearch") {
		t.Fatalf("unknown builtin error %v should list the known names", err)
	}
}
