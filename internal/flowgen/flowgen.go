package flowgen

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"time"

	"dtdctcp/internal/metrics"
	"dtdctcp/internal/netsim"
	"dtdctcp/internal/sim"
	"dtdctcp/internal/tcp"
)

// Matrix selects how flow endpoints are drawn.
type Matrix int

const (
	// Random draws an independent source and destination per flow.
	Random Matrix = iota
	// Permutation fixes one derangement of the hosts at setup; every
	// flow goes from a random host to its image, so each host receives
	// from exactly one peer.
	Permutation
	// Incast directs every flow at one aggregator host drawn at setup,
	// from a random other host.
	Incast
)

// ParseMatrix maps the CLI names onto Matrix values.
func ParseMatrix(s string) (Matrix, error) {
	switch s {
	case "random":
		return Random, nil
	case "permutation":
		return Permutation, nil
	case "incast":
		return Incast, nil
	}
	return 0, fmt.Errorf("flowgen: unknown traffic matrix %q (random, permutation, incast)", s)
}

func (m Matrix) String() string {
	switch m {
	case Random:
		return "random"
	case Permutation:
		return "permutation"
	case Incast:
		return "incast"
	}
	return fmt.Sprintf("Matrix(%d)", int(m))
}

// Config parameterizes one trace-driven workload.
type Config struct {
	// CDF is the flow-size distribution.
	CDF *CDF
	// Load is the offered load as a fraction of CapacityBps; the Poisson
	// arrival rate is Load·CapacityBps/CDF.Mean() flows per second.
	Load float64
	// CapacityBps is the capacity the load targets in bytes per second —
	// conventionally the fabric's bisection bandwidth.
	CapacityBps float64
	// Flows is the trace length.
	Flows int
	// Matrix is the endpoint pattern (default Random).
	Matrix Matrix
	// TCP configures every connection; each flow opens a fresh
	// connection in slow start (the fresh-connection churn path — no
	// congestion state survives between flows).
	TCP tcp.Config
	// BaseFlow is the first flow ID; the workload consumes Flows
	// consecutive IDs. Zero means 1.
	BaseFlow netsim.FlowID
	// StartAfter delays the first arrival, leaving room for the run's
	// warm-up instrumentation.
	StartAfter time.Duration
}

// Flow is one trace entry with its measured outcome.
type Flow struct {
	// Src and Dst index the workload's host slice.
	Src, Dst int
	// Size is the transfer size in bytes.
	Size int64
	// Arrival is the flow's open-loop start instant.
	Arrival sim.Time
	// fct is the completion instant; done guards it. Written by the
	// sender's OnComplete on the sender's shard — distinct flows touch
	// distinct elements, so sharded workers never contend.
	fct  sim.Time
	done bool
}

// FCT returns the flow completion time and whether the flow finished.
func (f *Flow) FCT() (time.Duration, bool) { return (f.fct - f.Arrival).Duration(), f.done }

// Workload is a started trace: every connection is constructed and
// scheduled; run the engine to execute it.
type Workload struct {
	// Flows is the generated trace in arrival order.
	Flows []Flow

	hosts   []*netsim.Host
	cfg     Config
	senders []*tcp.Sender
}

// Start generates the trace and wires it onto hosts. All randomness —
// sizes, interarrivals, endpoint choices — is drawn here, from the
// network construction engine's seeded source, so the trace is a pure
// function of the run seed. Endpoint construction and StartAt
// scheduling also happen here, at setup time: on a partitioned network
// every shard clock is still zero, so cross-shard scheduling is safe
// (the same contract workload.StartLongLived relies on).
//
// Each flow is a fresh connection: a new sender/receiver pair in slow
// start. On completion the sender unregisters its host-side endpoint on
// its own shard — host tables shrink as the trace drains — and the
// receiver side is detached by Cleanup after the run.
func Start(hosts []*netsim.Host, cfg Config) (*Workload, error) {
	n := len(hosts)
	switch {
	case n < 2:
		return nil, fmt.Errorf("flowgen: need at least 2 hosts, got %d", n)
	case cfg.CDF == nil:
		return nil, fmt.Errorf("flowgen: no CDF")
	case cfg.Flows < 1:
		return nil, fmt.Errorf("flowgen: need at least 1 flow")
	case cfg.Load <= 0:
		return nil, fmt.Errorf("flowgen: load must be positive")
	case cfg.CapacityBps <= 0:
		return nil, fmt.Errorf("flowgen: capacity must be positive")
	}
	if cfg.BaseFlow == 0 {
		cfg.BaseFlow = 1
	}
	w := &Workload{hosts: hosts, cfg: cfg}
	rng := hosts[0].Network().Engine().Rand()

	// Endpoint pattern state drawn before the per-flow stream.
	var perm []int
	aggregator := 0
	switch cfg.Matrix {
	case Permutation:
		perm = derangement(rng, n)
	case Incast:
		aggregator = rng.Intn(n)
	}

	// flows/sec such that mean_size · rate = Load · CapacityBps.
	lambda := cfg.Load * cfg.CapacityBps / cfg.CDF.Mean()
	at := sim.TimeZero.Add(cfg.StartAfter)
	w.Flows = make([]Flow, cfg.Flows)
	for i := range w.Flows {
		at = at.Add(time.Duration(rng.ExpFloat64() / lambda * 1e9))
		f := &w.Flows[i]
		f.Arrival = at
		f.Size = cfg.CDF.Sample(rng)
		switch cfg.Matrix {
		case Permutation:
			f.Src = rng.Intn(n)
			f.Dst = perm[f.Src]
		case Incast:
			f.Dst = aggregator
			f.Src = otherThan(rng, n, aggregator)
		default:
			f.Src = rng.Intn(n)
			f.Dst = otherThan(rng, n, f.Src)
		}
	}

	w.senders = make([]*tcp.Sender, cfg.Flows)
	for i := range w.Flows {
		f := &w.Flows[i]
		id := cfg.BaseFlow + netsim.FlowID(i)
		src, dst := hosts[f.Src], hosts[f.Dst]
		s := tcp.NewSender(src, id, dst.ID(), f.Size, cfg.TCP)
		tcp.NewReceiver(dst, id, src.ID(), cfg.TCP)
		s.OnComplete = func(now sim.Time) {
			f.fct = now
			f.done = true
			src.Unregister(id)
		}
		s.StartAt(f.Arrival)
		w.senders[i] = s
	}
	return w, nil
}

// derangement returns a uniform-ish permutation of [0, n) with no fixed
// points: a Fisher–Yates draw repaired by swapping any fixed point with
// its neighbor.
func derangement(rng *rand.Rand, n int) []int {
	p := rng.Perm(n)
	for i := range p {
		if p[i] == i {
			j := (i + 1) % n
			p[i], p[j] = p[j], p[i]
		}
	}
	return p
}

// otherThan draws uniformly from [0, n) excluding skip.
func otherThan(rng *rand.Rand, n, skip int) int {
	v := rng.Intn(n - 1)
	if v >= skip {
		v++
	}
	return v
}

// Completed counts finished flows.
func (w *Workload) Completed() int {
	done := 0
	for i := range w.Flows {
		if w.Flows[i].done {
			done++
		}
	}
	return done
}

// LastArrival returns the final flow's start instant; running the
// engine well past it (plus a drain margin) completes the trace.
func (w *Workload) LastArrival() sim.Time { return w.Flows[len(w.Flows)-1].Arrival }

// TotalTimeouts sums RTO firings over all connections.
func (w *Workload) TotalTimeouts() uint64 {
	var total uint64
	for _, s := range w.senders {
		total += s.Stats().Timeouts
	}
	return total
}

// TotalRetransmissions sums retransmitted segments over all connections.
func (w *Workload) TotalRetransmissions() uint64 {
	var total uint64
	for _, s := range w.senders {
		total += s.Stats().Retransmissions
	}
	return total
}

// Cleanup detaches the remaining endpoints (receivers, plus senders of
// unfinished flows). Call it after the run, from a serial context.
func (w *Workload) Cleanup() {
	for i := range w.Flows {
		f := &w.Flows[i]
		id := w.cfg.BaseFlow + netsim.FlowID(i)
		if !f.done {
			w.hosts[f.Src].Unregister(id)
		}
		w.hosts[f.Dst].Unregister(id)
	}
}

// Digest folds every flow's trace entry and outcome — size, arrival,
// endpoints, completion time — into one FNV-1a word, in flow order. Two
// runs agree on the digest iff they agree on the whole trace and every
// FCT, making "same seed → same result, regardless of shard count" a
// one-word comparison.
func (w *Workload) Digest() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	word := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for i := range w.Flows {
		f := &w.Flows[i]
		word(uint64(f.Size))
		word(uint64(f.Arrival))
		word(uint64(f.Src)<<32 | uint64(f.Dst))
		fct := uint64(math.MaxUint64)
		if f.done {
			fct = uint64(f.fct)
		}
		word(fct)
	}
	return h.Sum64()
}

// BucketStats summarizes completion times for one size bucket.
type BucketStats struct {
	// Bucket names the class: "small", "medium", or "large".
	Bucket string `json:"bucket"`
	// Flows and Completed count trace entries and finished transfers.
	Flows     int `json:"flows"`
	Completed int `json:"completed"`
	// MeanSeconds and the percentiles summarize completed FCTs
	// (exact nearest-rank over the recorded values, not histogram
	// interpolation).
	MeanSeconds float64 `json:"mean_seconds"`
	P50Seconds  float64 `json:"p50_seconds"`
	P95Seconds  float64 `json:"p95_seconds"`
	P99Seconds  float64 `json:"p99_seconds"`
}

// Buckets classifies sizes: small ≤ smallMax < medium < largeMin ≤ large.
func bucketOf(size, smallMax, largeMin int64) int {
	switch {
	case size <= smallMax:
		return 0
	case size >= largeMin:
		return 2
	default:
		return 1
	}
}

var bucketNames = [3]string{"small", "medium", "large"}

// FCTStats buckets the trace by size and returns exact FCT percentiles
// per bucket, in small/medium/large order.
func (w *Workload) FCTStats(smallMax, largeMin int64) []BucketStats {
	var fcts [3][]float64
	out := make([]BucketStats, 3)
	for i := range out {
		out[i].Bucket = bucketNames[i]
	}
	for i := range w.Flows {
		f := &w.Flows[i]
		b := bucketOf(f.Size, smallMax, largeMin)
		out[b].Flows++
		if f.done {
			out[b].Completed++
			fcts[b] = append(fcts[b], (f.fct - f.Arrival).Seconds())
		}
	}
	for b := range out {
		v := fcts[b]
		if len(v) == 0 {
			continue
		}
		sort.Float64s(v)
		sum := 0.0
		for _, x := range v {
			sum += x
		}
		out[b].MeanSeconds = sum / float64(len(v))
		out[b].P50Seconds = nearestRank(v, 0.50)
		out[b].P95Seconds = nearestRank(v, 0.95)
		out[b].P99Seconds = nearestRank(v, 0.99)
	}
	return out
}

// nearestRank returns the q-quantile of sorted values by the
// nearest-rank definition: the smallest value with at least q·n values
// at or below it.
func nearestRank(sorted []float64, q float64) float64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// RecordFCT registers one FCT histogram per size bucket and fills them
// from the completed flows, so dtmetrics/v1 snapshots carry the
// workload's p50/p95/p99 per bucket. Call after the run: histograms are
// not written concurrently. Bounds span 10 µs to ~18 s exponentially.
func (w *Workload) RecordFCT(reg *metrics.Registry, smallMax, largeMin int64) {
	var hists [3]*metrics.Histogram
	bounds := metrics.ExponentialBounds(10e-6, 1.5, 36)
	for b, name := range bucketNames {
		hists[b] = reg.Histogram("flowgen_fct_seconds",
			"flow completion time by size bucket", bounds, metrics.L("bucket", name))
	}
	for i := range w.Flows {
		f := &w.Flows[i]
		if f.done {
			hists[bucketOf(f.Size, smallMax, largeMin)].Observe((f.fct - f.Arrival).Seconds())
		}
	}
	reg.GaugeFunc("flowgen_flows_total", "trace length", func() float64 {
		return float64(len(w.Flows))
	})
	reg.GaugeFunc("flowgen_flows_completed", "finished transfers", func() float64 {
		return float64(w.Completed())
	})
}
