package flowgen

import (
	"testing"
	"time"

	"dtdctcp/internal/metrics"
	"dtdctcp/internal/netsim"
	"dtdctcp/internal/sim"
	"dtdctcp/internal/tcp"
	"dtdctcp/internal/topo"
)

func testFabric(t *testing.T, seed int64) (*sim.Engine, *topo.Fabric) {
	t.Helper()
	e := sim.NewEngine(seed)
	nw := netsim.NewNetwork(e)
	f, err := topo.LeafSpine(nw, 2, 2, 2, topo.Config{
		HostLink:   topo.LinkSpec{Rate: netsim.Gbps, Delay: 10 * time.Microsecond, BufferBytes: 256 * 1500},
		FabricLink: topo.LinkSpec{Rate: netsim.Gbps, Delay: 10 * time.Microsecond, BufferBytes: 256 * 1500},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, f
}

func testConfig(t *testing.T, f *topo.Fabric, flows int) Config {
	t.Helper()
	cdf, err := BuiltinCDF(WebSearchSmall)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		CDF:         cdf,
		Load:        0.3,
		CapacityBps: f.BisectionBps(),
		Flows:       flows,
		TCP:         tcp.DefaultConfig(tcp.DCTCP),
	}
}

func TestStartValidates(t *testing.T) {
	_, f := testFabric(t, 1)
	good := testConfig(t, f, 10)
	for name, mutate := range map[string]func(*Config){
		"nil cdf":       func(c *Config) { c.CDF = nil },
		"zero flows":    func(c *Config) { c.Flows = 0 },
		"zero load":     func(c *Config) { c.Load = 0 },
		"zero capacity": func(c *Config) { c.CapacityBps = 0 },
	} {
		bad := good
		mutate(&bad)
		if _, err := Start(f.Hosts, bad); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, err := Start(f.Hosts[:1], good); err == nil {
		t.Error("single host accepted")
	}
}

// TestWorkloadCompletes runs a short trace end to end: every flow must
// finish, carry a positive FCT, and appear in exactly one bucket.
func TestWorkloadCompletes(t *testing.T) {
	e, f := testFabric(t, 2)
	w, err := Start(f.Hosts, testConfig(t, f, 40))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(w.LastArrival().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if got := w.Completed(); got != 40 {
		t.Fatalf("completed %d/40 flows", got)
	}
	for i := range w.Flows {
		fl := &w.Flows[i]
		fct, done := fl.FCT()
		if !done || fct <= 0 {
			t.Fatalf("flow %d: done=%v fct=%v", i, done, fct)
		}
	}
	stats := w.FCTStats(10000, 500000)
	total := 0
	for _, b := range stats {
		total += b.Flows
		if b.Completed != b.Flows {
			t.Fatalf("bucket %s: %d/%d completed", b.Bucket, b.Completed, b.Flows)
		}
		if b.Completed > 0 && (b.P50Seconds <= 0 || b.P99Seconds < b.P50Seconds) {
			t.Fatalf("bucket %s: implausible percentiles %+v", b.Bucket, b)
		}
	}
	if total != 40 {
		t.Fatalf("buckets hold %d flows, want 40", total)
	}
	w.Cleanup()
	// After cleanup every endpoint table must be empty again.
	for _, h := range f.Hosts {
		pkt := h.Network().AllocPacket()
		pkt.Flow = 1
		pkt.Dst = h.ID()
		before := h.DroppedNoFlow()
		h.Receive(pkt)
		if h.DroppedNoFlow() != before+1 {
			t.Fatalf("host %s still owns flow 1 after Cleanup", h.Name())
		}
		break
	}
}

// TestDigestIsSeedDeterministic pins the reproducibility contract: same
// seed → identical digest, different seed → different trace.
func TestDigestIsSeedDeterministic(t *testing.T) {
	run := func(seed int64) uint64 {
		e, f := testFabric(t, seed)
		w, err := Start(f.Hosts, testConfig(t, f, 30))
		if err != nil {
			t.Fatal(err)
		}
		if err := e.RunUntil(w.LastArrival().Add(5 * time.Second)); err != nil {
			t.Fatal(err)
		}
		return w.Digest()
	}
	if run(5) != run(5) {
		t.Fatal("same seed produced different digests")
	}
	if run(5) == run(6) {
		t.Fatal("different seeds produced the same digest")
	}
}

func TestMatrices(t *testing.T) {
	_, f := testFabric(t, 3)
	n := len(f.Hosts)

	cfg := testConfig(t, f, 200)
	cfg.Matrix = Permutation
	w, err := Start(f.Hosts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Each source always maps to the same destination, never itself.
	image := make(map[int]int)
	for i := range w.Flows {
		fl := &w.Flows[i]
		if fl.Src == fl.Dst {
			t.Fatal("permutation produced a self-flow")
		}
		if prev, seen := image[fl.Src]; seen && prev != fl.Dst {
			t.Fatalf("source %d maps to both %d and %d", fl.Src, prev, fl.Dst)
		}
		image[fl.Src] = fl.Dst
	}
	w.Cleanup()

	cfg = testConfig(t, f, 200)
	cfg.Matrix = Incast
	cfg.BaseFlow = 10000
	w, err = Start(f.Hosts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	agg := w.Flows[0].Dst
	srcs := make(map[int]bool)
	for i := range w.Flows {
		fl := &w.Flows[i]
		if fl.Dst != agg || fl.Src == agg {
			t.Fatalf("incast flow %d: %d → %d (aggregator %d)", i, fl.Src, fl.Dst, agg)
		}
		srcs[fl.Src] = true
	}
	if len(srcs) != n-1 {
		t.Fatalf("incast drew %d distinct sources, want %d", len(srcs), n-1)
	}
	w.Cleanup()

	cfg = testConfig(t, f, 200)
	cfg.Matrix = Random
	w, err = Start(f.Hosts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dsts := make(map[int]bool)
	for i := range w.Flows {
		fl := &w.Flows[i]
		if fl.Src == fl.Dst {
			t.Fatal("random matrix produced a self-flow")
		}
		dsts[fl.Dst] = true
	}
	if len(dsts) < n/2 {
		t.Fatalf("random matrix used only %d destinations", len(dsts))
	}
	w.Cleanup()
}

func TestParseMatrix(t *testing.T) {
	for _, s := range []string{"random", "permutation", "incast"} {
		m, err := ParseMatrix(s)
		if err != nil || m.String() != s {
			t.Fatalf("round trip %q → %v, %v", s, m, err)
		}
	}
	if _, err := ParseMatrix("all-to-all"); err == nil {
		t.Fatal("unknown matrix accepted")
	}
}

// TestArrivalRateMatchesLoad checks the open-loop arrival process: over
// a long trace the mean interarrival must approximate
// CDF.Mean() / (Load · Capacity).
func TestArrivalRateMatchesLoad(t *testing.T) {
	_, f := testFabric(t, 4)
	cfg := testConfig(t, f, 5000)
	w, err := Start(f.Hosts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	span := w.LastArrival().Seconds()
	want := float64(cfg.Flows) * cfg.CDF.Mean() / (cfg.Load * cfg.CapacityBps)
	if span < 0.9*want || span > 1.1*want {
		t.Fatalf("trace spans %.3fs, want ≈ %.3fs for load %.2f", span, want, cfg.Load)
	}
	w.Cleanup()
}

func TestRecordFCT(t *testing.T) {
	e, f := testFabric(t, 9)
	w, err := Start(f.Hosts, testConfig(t, f, 30))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(w.LastArrival().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	w.RecordFCT(reg, 10000, 500000)
	snap := reg.Snapshot(e.Now().Seconds())
	found, observed := 0, uint64(0)
	for _, m := range snap.Metrics {
		if m.Name == "flowgen_fct_seconds" {
			found++
			if m.Hist == nil {
				t.Fatalf("FCT metric without histogram: %+v", m)
			}
			observed += m.Hist.Count
		}
	}
	if found != 3 {
		t.Fatalf("snapshot carries %d FCT histograms, want 3", found)
	}
	if observed != 30 {
		t.Fatalf("histograms hold %d observations, want 30", observed)
	}
	w.Cleanup()
}
