package flowgen

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzCDFParse throws arbitrary trace text at the parser. Accepted
// inputs must satisfy every invariant Sample and Mean rely on: positive
// strictly increasing sizes, a nondecreasing CDF carrying full mass,
// finite analytic mean inside the support, and samples that never leave
// the support.
func FuzzCDFParse(f *testing.F) {
	f.Add("1460 1.0\n")
	f.Add("# comment\n1460 0.5\n29200 1.0\n")
	f.Add("100 1 0.10\n1460 2 0.40\n10000 3 1.00\n")
	f.Add("2000 0.5\n1000 1.0\n")     // non-monotone sizes
	f.Add("1000 0.8\n2000 0.5\n")     // decreasing CDF
	f.Add("1000 0.0\n2000 0.0\n")     // zero probability mass
	f.Add("1000 0.5\n2000 0.9\n")     // mass short of 1
	f.Add("NaN NaN\n")                // non-finite fields
	f.Add("1 2 3 4\n")                // too many columns
	f.Add("1000 0.5\n1000 1.0\n")     // duplicate size
	f.Add("1e300 1.0\n")              // absurd size
	f.Add("1460\t0.25\n2920  1.0  #")

	f.Fuzz(func(t *testing.T, body string) {
		c, err := ParseCDFString(body)
		if err != nil {
			return
		}
		if c.Points() < 1 {
			t.Fatal("accepted an empty CDF")
		}
		if c.MinSize() < 1 || c.MaxSize() > int64(1e15) || c.MinSize() > c.MaxSize() {
			t.Fatalf("support [%d, %d] out of range", c.MinSize(), c.MaxSize())
		}
		// MaxSize truncates, so allow the mean one byte of slack.
		m := c.Mean()
		if math.IsNaN(m) || m <= 0 || m > float64(c.MaxSize()+1) {
			t.Fatalf("mean %v outside (0, %d]", m, c.MaxSize()+1)
		}
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 64; i++ {
			v := c.Sample(rng)
			if v < c.MinSize() || v > c.MaxSize() {
				t.Fatalf("sample %d outside [%d, %d]", v, c.MinSize(), c.MaxSize())
			}
		}
	})
}
