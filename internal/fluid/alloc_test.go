// Allocation-regression test for the fluid stepper's hot path: the
// hybrid co-simulation calls Step thousands of times per simulated
// second from inside engine events, so the integration step must touch
// no allocator once constructed. Excluded from race builds (the race
// runtime adds bookkeeping allocations).

//go:build !race

package fluid

import "testing"

// TestStepperStepAllocs pins the integration step at 0 allocs: the
// delay history lives in a fixed ring, and the RK4 stage evaluations
// are closure-free method calls.
func TestStepperStepAllocs(t *testing.T) {
	cfg := stepperConfig()
	stp, err := NewStepper(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stp.Advance(500) // past the cold start, into the oscillating regime
	allocs := testing.AllocsPerRun(200, func() {
		stp.Step()
	})
	if allocs != 0 {
		t.Fatalf("Stepper.Step allocates %.1f per call, want 0", allocs)
	}
	// The coupled configuration must stay alloc-free too.
	stp.SetAmbientQueue(25)
	stp.SetDrainCapacity(cfg.C / 2)
	allocs = testing.AllocsPerRun(200, func() {
		stp.SetAmbientQueue(25)
		stp.SetDrainCapacity(cfg.C / 2)
		stp.Step()
		_ = stp.DepartureRate()
		_ = stp.State()
	})
	if allocs != 0 {
		t.Fatalf("coupled Step path allocates %.1f per call, want 0", allocs)
	}
}
