package fluid

import (
	"math"
	"testing"
)

// TestSolveEdgeCases drives the integrator through the degenerate corners
// of its parameter space: no flows, a single flow, RTTs two orders of
// magnitude off the paper's 100µs, and marking thresholds at or beyond
// the buffer limit. Valid-but-extreme configurations must stay finite and
// respect the state bounds; impossible ones must be rejected, not NaN.
func TestSolveEdgeCases(t *testing.T) {
	const C = 10e9 / 8 / 1500 // paper bottleneck in packets/sec
	base := func() Config {
		return Config{
			N:           10,
			C:           C,
			D:           100e-6,
			G:           1.0 / 16,
			Law:         SingleThreshold{K: 40},
			RTTRefQueue: 40,
			Duration:    0.05,
			BufferLimit: 600,
		}
	}
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantErr bool
		// wantMeanNear, when ≥ 0, pins the steady-state queue mean to
		// within tol packets.
		wantMeanNear float64
		tol          float64
	}{
		{
			name:         "zero flows rejected",
			mutate:       func(c *Config) { c.N = 0 },
			wantErr:      true,
			wantMeanNear: -1,
		},
		{
			name:         "negative flows rejected",
			mutate:       func(c *Config) { c.N = -3 },
			wantErr:      true,
			wantMeanNear: -1,
		},
		{
			name:         "nil marking law rejected",
			mutate:       func(c *Config) { c.Law = nil },
			wantErr:      true,
			wantMeanNear: -1,
		},
		{
			name:         "zero duration rejected",
			mutate:       func(c *Config) { c.Duration = 0 },
			wantErr:      true,
			wantMeanNear: -1,
		},
		{
			name:         "single flow stays finite",
			mutate:       func(c *Config) { c.N = 1 },
			wantMeanNear: -1,
		},
		{
			name: "zero propagation delay",
			// R₀ degenerates to the queueing delay K/C alone.
			mutate:       func(c *Config) { c.D = 0 },
			wantMeanNear: -1,
		},
		{
			name: "extreme RTT 10ms",
			// 100× the paper's RTT: the loop is sluggish but bounded.
			mutate: func(c *Config) {
				c.D = 10e-3
				c.Duration = 0.5
			},
			wantMeanNear: -1,
		},
		{
			name: "extreme RTT 1us",
			// Far below the queueing delay; R₀ ≈ K/C dominates.
			mutate:       func(c *Config) { c.D = 1e-6 },
			wantMeanNear: -1,
		},
		{
			name: "K at buffer limit pins queue to cap",
			// Marking can only fire above K = limit, which the cap makes
			// unreachable: the queue must ride the buffer limit.
			mutate: func(c *Config) {
				c.Law = SingleThreshold{K: 600}
				c.RTTRefQueue = 600
				c.Duration = 0.2 // long enough for the tail to be fully pinned
			},
			wantMeanNear: 600,
			tol:          1,
		},
		{
			name: "K above buffer limit pins queue to cap",
			mutate: func(c *Config) {
				c.Law = SingleThreshold{K: 1000}
				c.RTTRefQueue = 1000
				c.Duration = 0.2
			},
			wantMeanNear: 600,
			tol:          1,
		},
		{
			name: "DT thresholds at buffer limit",
			mutate: func(c *Config) {
				c.Law = DoubleThreshold{K1: 600, K2: 580}
				c.RTTRefQueue = 600
			},
			// The falling-edge threshold keeps marking reachable, so the
			// queue must stay below the cap on average.
			wantMeanNear: -1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mutate(&cfg)
			res, err := Solve(cfg)
			if tc.wantErr {
				if err == nil {
					t.Fatal("want config rejection, got success")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			// Every sampled state must be finite and inside its bounds.
			for i := 0; i < res.Queue.Len(); i++ {
				q, w, a := res.Queue.At(i).V, res.Window.At(i).V, res.Alpha.At(i).V
				if math.IsNaN(q) || math.IsInf(q, 0) || q < 0 || q > cfg.BufferLimit {
					t.Fatalf("sample %d: queue %g outside [0,%g]", i, q, cfg.BufferLimit)
				}
				if math.IsNaN(w) || math.IsInf(w, 0) || w < 1 {
					t.Fatalf("sample %d: window %g invalid", i, w)
				}
				if math.IsNaN(a) || a < 0 || a > 1 {
					t.Fatalf("sample %d: alpha %g outside [0,1]", i, a)
				}
			}
			if math.IsNaN(res.QueueMean) || math.IsNaN(res.QueueStdDev) || math.IsNaN(res.QueueAmplitude) {
				t.Fatalf("NaN summary: mean=%g std=%g amp=%g", res.QueueMean, res.QueueStdDev, res.QueueAmplitude)
			}
			if tc.wantMeanNear >= 0 && math.Abs(res.QueueMean-tc.wantMeanNear) > tc.tol {
				t.Fatalf("QueueMean = %g, want %g ± %g", res.QueueMean, tc.wantMeanNear, tc.tol)
			}
		})
	}
}

// A queue pinned at the buffer limit is flat to within numerical ripple.
// EstimatePeriod is deliberately scale-free (it normalizes by signal
// energy), so the flatness contract lives in the amplitude summaries that
// callers like internal/conform gate on — not in the period being zero.
func TestPinnedQueueIsFlat(t *testing.T) {
	res, err := Solve(Config{
		N:           10,
		C:           10e9 / 8 / 1500,
		D:           100e-6,
		G:           1.0 / 16,
		Law:         SingleThreshold{K: 1000},
		RTTRefQueue: 1000,
		Duration:    0.2,
		BufferLimit: 600,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.QueueStdDev > 1 {
		t.Fatalf("QueueStdDev = %g for a pinned queue, want ≈ 0", res.QueueStdDev)
	}
	if res.QueueAmplitude > 5 {
		t.Fatalf("QueueAmplitude = %g for a pinned queue, want ≈ 0", res.QueueAmplitude)
	}
}
