// Package fluid implements the DCTCP fluid model the paper's analysis is
// built on (Eqs. 1–3, from Alizadeh et al., SIGMETRICS'11):
//
//	dW/dt = 1/R − W·α/(2R) · p(t−R₀)
//	dα/dt = (g/R) · (p(t−R₀) − α)
//	dq/dt = N·W/R − C
//
// with p the marking law evaluated on the delayed queue state. The
// single-threshold law p = 𝟙{q > K} models DCTCP; the double-threshold law
// marks above K1 while the queue grows and above K2 while it falls,
// modelling DT-DCTCP (see internal/aqm for the packet-level equivalent).
//
// The delay differential system is integrated by the method of steps with
// a fixed-step RK4 and linear interpolation into the solution history.
package fluid

import (
	"errors"
	"math"

	"dtdctcp/internal/stats"
)

// MarkingLaw maps the (delayed) queue state to a marking probability.
type MarkingLaw interface {
	// Name identifies the law in output.
	Name() string
	// P returns the marking probability given the queue length q
	// (packets) and its derivative qdot (packets/sec).
	P(q, qdot float64) float64
}

// SingleThreshold is DCTCP's relay law: p = 𝟙{q > K}.
type SingleThreshold struct {
	// K is the threshold in packets.
	K float64
}

// Name implements MarkingLaw.
func (SingleThreshold) Name() string { return "dctcp-single" }

// P implements MarkingLaw.
func (l SingleThreshold) P(q, _ float64) float64 {
	if q > l.K {
		return 1
	}
	return 0
}

// DoubleThreshold is DT-DCTCP's law: threshold K1 while the queue rises,
// K2 while it falls — the hysteresis loop of the paper's Fig. 8.
type DoubleThreshold struct {
	// K1 is the rising-edge threshold in packets.
	K1 float64
	// K2 is the falling-edge threshold in packets.
	K2 float64
}

// Name implements MarkingLaw.
func (DoubleThreshold) Name() string { return "dt-dctcp" }

// P implements MarkingLaw.
func (l DoubleThreshold) P(q, qdot float64) float64 {
	thr := l.K2
	if qdot > 0 {
		thr = l.K1
	}
	if q > thr {
		return 1
	}
	return 0
}

// Config parameterizes one fluid-model integration.
type Config struct {
	// N is the number of flows.
	N float64
	// C is the bottleneck capacity in packets/second.
	C float64
	// D is the propagation (zero-queue) round-trip time in seconds.
	D float64
	// G is DCTCP's α gain.
	G float64
	// Law is the marking law (DCTCP or DT-DCTCP).
	Law MarkingLaw
	// FixedRTT, when true, freezes R(t) at R₀ = D + K/C as the paper's
	// linearization does; otherwise R(t) = D + q/C.
	FixedRTT bool
	// RTTRefQueue is the queue value (packets) defining R₀ (the paper
	// uses K). Also the delay of the marking feedback.
	RTTRefQueue float64
	// Duration is the integration horizon in seconds.
	Duration float64
	// Step is the RK4 step in seconds; zero selects R₀/50.
	Step float64
	// W0, Alpha0, Q0 are initial conditions; zero values start the
	// system at W=1, α=0, q=0 (a cold start).
	W0, Alpha0, Q0 float64
	// SampleEvery decimates the output series (seconds); zero selects
	// one sample per 10 steps.
	SampleEvery float64
	// BufferLimit, when positive, caps q (packets) like a finite buffer.
	BufferLimit float64
}

// R0 returns the reference RTT R₀ = D + RTTRefQueue/C.
func (c Config) R0() float64 { return c.D + c.RTTRefQueue/c.C }

// OperatingPoint returns the analytic equilibrium of the model
// (Section V-A): W₀ = R₀C/N and α₀ = p₀ = √(2/W₀).
func (c Config) OperatingPoint() (w0, alpha0 float64) {
	w0 = c.R0() * c.C / c.N
	alpha0 = math.Sqrt(2 / w0)
	return w0, alpha0
}

// Result is the sampled trajectory of one integration.
type Result struct {
	// Queue, Window and Alpha are the sampled state trajectories.
	Queue, Window, Alpha *stats.Series
	// QueueMean and QueueStdDev summarize the second half of the run
	// (the quasi-steady state).
	QueueMean, QueueStdDev float64
	// QueueAmplitude is (max−min)/2 of the queue over the second half:
	// the oscillation amplitude the describing-function analysis
	// predicts.
	QueueAmplitude float64
	// OscPeriod is the dominant oscillation period (seconds) of the
	// queue over the second half, estimated by autocorrelation exactly
	// like the packet simulator's DumbbellResult.OscPeriod, so the two
	// machineries are directly comparable; zero when no credible
	// periodicity was found. OscConfidence is the normalized
	// autocorrelation at that lag.
	OscPeriod     float64
	OscConfidence float64
}

// Solve integrates the model and samples the trajectory. It is a
// one-shot driver over Stepper, which holds the numerics; incremental
// integrations (the hybrid co-simulation) drive a Stepper directly.
func Solve(cfg Config) (*Result, error) {
	if cfg.Duration <= 0 {
		return nil, errors.New("fluid: invalid config")
	}
	stp, err := NewStepper(cfg)
	if err != nil {
		return nil, err
	}
	h := stp.StepSize()
	sampleEvery := cfg.SampleEvery
	if sampleEvery <= 0 {
		sampleEvery = 10 * h
	}
	steps := int(cfg.Duration/h) + 1

	res := &Result{
		Queue:  stats.NewSeries("q"),
		Window: stats.NewSeries("W"),
		Alpha:  stats.NewSeries("alpha"),
	}

	half := cfg.Duration / 2
	var tail stats.Welford
	tailMin, tailMax := math.Inf(1), math.Inf(-1)
	nextSample := 0.0

	for step := 0; step < steps; step++ {
		t := float64(step) * h
		if t >= nextSample {
			nextSample += sampleEvery
			res.Queue.Add(t, stp.q)
			res.Window.Add(t, stp.w)
			res.Alpha.Add(t, stp.alpha)
		}
		if t >= half {
			tail.Add(stp.q)
			if stp.q < tailMin {
				tailMin = stp.q
			}
			if stp.q > tailMax {
				tailMax = stp.q
			}
		}
		stp.Step()
	}

	res.QueueMean = tail.Mean()
	res.QueueStdDev = tail.StdDev()
	if tail.Count() > 0 {
		res.QueueAmplitude = (tailMax - tailMin) / 2
	}
	res.OscPeriod, res.OscConfidence = stats.EstimatePeriod(res.Queue.After(half))
	return res, nil
}
