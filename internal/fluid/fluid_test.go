package fluid

import (
	"math"
	"testing"
	"testing/quick"
)

// paperConfig returns the paper's simulation parameters: 10 Gbps of
// 1500-byte packets (C ≈ 833333 pkts/s), 100 µs propagation RTT, K = 40,
// g = 1/16.
func paperConfig(n float64, law MarkingLaw) Config {
	return Config{
		N:           n,
		C:           10e9 / 8 / 1500,
		D:           100e-6,
		G:           1.0 / 16,
		Law:         law,
		RTTRefQueue: 40,
		Duration:    0.2,
	}
}

func TestMarkingLaws(t *testing.T) {
	st := SingleThreshold{K: 40}
	if st.P(39, 0) != 0 || st.P(41, 0) != 1 {
		t.Fatal("single threshold law wrong")
	}
	if st.Name() != "dctcp-single" {
		t.Fatal("name")
	}
	dt := DoubleThreshold{K1: 30, K2: 50}
	tests := []struct {
		q, qdot float64
		want    float64
	}{
		{29, +1, 0}, // rising below K1
		{31, +1, 1}, // rising above K1
		{45, +1, 1}, // rising between: threshold is K1
		{45, -1, 0}, // falling between: threshold is K2
		{51, -1, 1}, // falling above K2
		{25, -1, 0}, // falling below both
	}
	for _, tt := range tests {
		if got := dt.P(tt.q, tt.qdot); got != tt.want {
			t.Errorf("DT.P(%v, %v) = %v, want %v", tt.q, tt.qdot, got, tt.want)
		}
	}
	if dt.Name() != "dt-dctcp" {
		t.Fatal("name")
	}
}

func TestOperatingPointMatchesClosedForm(t *testing.T) {
	cfg := paperConfig(10, SingleThreshold{K: 40})
	w0, a0 := cfg.OperatingPoint()
	r0 := cfg.R0()
	if math.Abs(r0-(100e-6+40/cfg.C)) > 1e-12 {
		t.Fatalf("R0 = %v", r0)
	}
	wantW0 := r0 * cfg.C / 10
	if math.Abs(w0-wantW0) > 1e-9 {
		t.Fatalf("W0 = %v, want %v", w0, wantW0)
	}
	if math.Abs(a0-math.Sqrt(2/wantW0)) > 1e-12 {
		t.Fatalf("alpha0 = %v", a0)
	}
}

func TestSolveRejectsInvalidConfig(t *testing.T) {
	bad := []Config{
		{},
		{N: 10, C: 1000, Duration: 1},        // no law
		{N: 10, Law: SingleThreshold{K: 40}}, // no C, no duration
		{N: -1, C: 1, Law: SingleThreshold{}, Duration: 1},
	}
	for i, cfg := range bad {
		if _, err := Solve(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestDCTCPFluidConvergesNearThreshold(t *testing.T) {
	// Small N: the paper's analysis says DCTCP is stable for N ≤ ~50, so
	// the fluid queue should settle in a bounded band around K.
	res, err := Solve(paperConfig(10, SingleThreshold{K: 40}))
	if err != nil {
		t.Fatal(err)
	}
	if res.QueueMean < 10 || res.QueueMean > 90 {
		t.Fatalf("steady queue mean %v, want near K=40", res.QueueMean)
	}
	if res.QueueAmplitude > 40 {
		t.Fatalf("amplitude %v too large for N=10", res.QueueAmplitude)
	}
	if res.Queue.Len() == 0 || res.Window.Len() == 0 || res.Alpha.Len() == 0 {
		t.Fatal("missing series")
	}
}

func TestFluidWindowNearOperatingPoint(t *testing.T) {
	cfg := paperConfig(10, SingleThreshold{K: 40})
	res, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w0, _ := cfg.OperatingPoint()
	// Mean window over the tail should be near W0 = R0·C/N.
	mean, _, _, _ := res.Window.Summary()
	if mean < 0.5*w0 || mean > 1.5*w0 {
		t.Fatalf("window mean %v, want near %v", mean, w0)
	}
}

// The paper's headline, in the fluid model's oscillatory regime (N ≤ ~60;
// beyond that the continuous model saturates into a marked-always
// equilibrium with q₀ = 2N − CD > K and stops switching — the per-RTT
// impulsive window cuts that keep the real system oscillating at large N
// live in the packet simulator, not in Eqs. 1–3): DCTCP's limit-cycle
// amplitude grows with N, and DT-DCTCP's stays well below DCTCP's.
func TestOscillationGrowsWithNAndDTIsSmaller(t *testing.T) {
	amp := func(n float64, law MarkingLaw) float64 {
		res, err := Solve(paperConfig(n, law))
		if err != nil {
			t.Fatal(err)
		}
		return res.QueueAmplitude
	}
	dcSmall := amp(10, SingleThreshold{K: 40})
	dcMid := amp(40, SingleThreshold{K: 40})
	if dcMid <= dcSmall {
		t.Fatalf("DCTCP amplitude should grow with N: N=10 → %v, N=40 → %v", dcSmall, dcMid)
	}
	for _, n := range []float64{10, 20, 40} {
		dc := amp(n, SingleThreshold{K: 40})
		dt := amp(n, DoubleThreshold{K1: 30, K2: 50})
		if dt >= dc {
			t.Fatalf("N=%v: DT-DCTCP amplitude %v should be below DCTCP's %v", n, dt, dc)
		}
	}
}

// At large N the continuous model leaves the relay regime: the saturated
// equilibrium q₀ = 2N − C·D (with α → 1, W → 2) exists above K and is
// stable, so the tail amplitude collapses. Pin that behaviour so a future
// integrator change that silently alters the regime boundary is caught.
func TestSaturatedEquilibriumAtLargeN(t *testing.T) {
	cfg := paperConfig(100, SingleThreshold{K: 40})
	res, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantQ := 2*100 - cfg.C*cfg.D // ≈ 116.7 packets
	if math.Abs(res.QueueMean-wantQ) > 5 {
		t.Fatalf("saturated queue mean %v, want ≈ %v", res.QueueMean, wantQ)
	}
	if res.QueueAmplitude > 1 {
		t.Fatalf("amplitude %v, want ~0 in the saturated regime", res.QueueAmplitude)
	}
}

func TestFixedRTTVariant(t *testing.T) {
	cfg := paperConfig(10, SingleThreshold{K: 40})
	cfg.FixedRTT = true
	res, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.QueueMean <= 0 {
		t.Fatalf("fixed-RTT queue mean %v", res.QueueMean)
	}
}

func TestBufferLimitCapsQueue(t *testing.T) {
	cfg := paperConfig(100, SingleThreshold{K: 40})
	cfg.BufferLimit = 60
	res, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, max := res.Queue.Summary()
	if max > 60+1e-9 {
		t.Fatalf("queue exceeded buffer limit: %v", max)
	}
}

// Property: state stays within physical bounds for any flow count and
// threshold in a broad range.
func TestPropertyStateBounded(t *testing.T) {
	f := func(nRaw, kRaw uint8) bool {
		n := float64(nRaw%100) + 1
		k := float64(kRaw%80) + 5
		cfg := paperConfig(n, SingleThreshold{K: k})
		cfg.RTTRefQueue = k
		cfg.Duration = 0.05
		res, err := Solve(cfg)
		if err != nil {
			return false
		}
		for _, p := range res.Alpha.Points() {
			if p.V < 0 || p.V > 1 {
				return false
			}
		}
		for _, p := range res.Queue.Points() {
			if p.V < 0 || math.IsNaN(p.V) {
				return false
			}
		}
		for _, p := range res.Window.Points() {
			if p.V < 1 || math.IsNaN(p.V) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: with no marking at all (threshold far above any reachable
// queue given a buffer cap just below it), the window grows monotonically —
// the additive-increase term is always positive.
func TestPropertyNoMarkingMeansWindowGrowth(t *testing.T) {
	cfg := paperConfig(10, SingleThreshold{K: 1e9})
	cfg.Duration = 0.02
	res, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Window.Points()
	for i := 1; i < len(pts); i++ {
		if pts[i].V < pts[i-1].V-1e-9 {
			t.Fatalf("window decreased without marking at t=%v", pts[i].T)
		}
	}
}
