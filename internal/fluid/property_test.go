package fluid

import (
	"math"
	"math/rand"
	"testing"
)

// TestStepperInvariantsAdversarial sweeps the stepper across an
// adversarial parameter grid — tiny and huge flow counts, capacities,
// delays and gains, thresholds at and beyond the buffer, oversized
// steps, hostile initial conditions, and mid-run coupling-input abuse —
// and asserts the physical invariants after every step: the queue is
// never negative (and never exceeds the buffer), α stays in [0, 1],
// W ≥ 1, and no state component ever becomes NaN or ±Inf.
func TestStepperInvariantsAdversarial(t *testing.T) {
	laws := []MarkingLaw{
		SingleThreshold{K: 0},
		SingleThreshold{K: 40},
		DoubleThreshold{K1: 30, K2: 50},
		DoubleThreshold{K1: 50, K2: 30},
	}
	type combo struct {
		n, c, d, g, step, buf float64
		w0, a0, q0            float64
		fixed                 bool
	}
	var combos []combo
	for _, n := range []float64{0.5, 1, 40, 5000} {
		for _, c := range []float64{1e3, 1e7} {
			for _, d := range []float64{0, 1e-6, 1e-3} {
				combos = append(combos, combo{n: n, c: c, d: d, g: 1.0 / 16, buf: 600})
			}
		}
	}
	// Hostile extras: giant gain, oversized step (h > R₀), saturating
	// initial conditions, fixed-RTT linearization.
	combos = append(combos,
		combo{n: 40, c: 1e7, d: 1e-4, g: 2, buf: 600},
		combo{n: 40, c: 1e7, d: 1e-4, g: 1.0 / 16, step: 1e-3, buf: 600},
		combo{n: 40, c: 1e7, d: 1e-4, g: 1.0 / 16, buf: 600, w0: 1e6, a0: 1, q0: 600},
		combo{n: 40, c: 1e7, d: 1e-4, g: 1.0 / 16, buf: 600, fixed: true},
		combo{n: 1000, c: 1e5, d: 1e-4, g: 1.0 / 16, buf: 50},
	)

	rng := rand.New(rand.NewSource(7))
	for ci, cb := range combos {
		for li, law := range laws {
			cfg := Config{
				N: cb.n, C: cb.c, D: cb.d, G: cb.g,
				Law:         law,
				RTTRefQueue: 40,
				Step:        cb.step,
				BufferLimit: cb.buf,
				W0:          cb.w0, Alpha0: cb.a0, Q0: cb.q0,
				FixedRTT: cb.fixed,
			}
			stp, err := NewStepper(cfg)
			if err != nil {
				t.Fatalf("combo %d law %d: %v", ci, li, err)
			}
			for step := 0; step < 2000; step++ {
				// Adversarial coupling inputs mid-run, including values
				// the setters must clamp.
				if step%97 == 0 {
					stp.SetAmbientQueue(rng.Float64()*2*cb.buf - cb.buf)
					stp.SetDrainCapacity(rng.Float64()*2*cb.c - cb.c/2)
				}
				stp.Step()
				st := stp.State()
				check := func(name string, v float64) {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						t.Fatalf("combo %d law %d step %d: %s = %v", ci, li, step, name, v)
					}
				}
				check("W", st.W)
				check("alpha", st.Alpha)
				check("Q", st.Q)
				check("Qdot", st.Qdot)
				if st.Q < 0 {
					t.Fatalf("combo %d law %d step %d: negative queue %v", ci, li, step, st.Q)
				}
				if cb.buf > 0 && st.Q > cb.buf {
					t.Fatalf("combo %d law %d step %d: queue %v above buffer %v", ci, li, step, st.Q, cb.buf)
				}
				if st.Alpha < 0 || st.Alpha > 1 {
					t.Fatalf("combo %d law %d step %d: alpha %v outside [0,1]", ci, li, step, st.Alpha)
				}
				if st.W < 1 {
					t.Fatalf("combo %d law %d step %d: window %v below 1", ci, li, step, st.W)
				}
			}
		}
	}
}

// TestStepperStepHalvingConverges is a Richardson-style consistency
// check: halving the RK4 step must shrink the change in the computed
// steady-state queue mean. On a discontinuous relay law the formal
// order collapses, so the assertion is monotone-ish contraction of the
// halving deltas — |m(h/2)−m(h/4)| ≤ max(0.75·|m(h)−m(h/2)|, floor) —
// rather than the smooth-case factor of 16.
func TestStepperStepHalvingConverges(t *testing.T) {
	for _, tc := range []struct {
		name string
		law  MarkingLaw
		n    float64
	}{
		{"stable-dctcp", SingleThreshold{K: 40}, 20},
		{"relay-dctcp", SingleThreshold{K: 40}, 50},
		{"relay-dt", DoubleThreshold{K1: 30, K2: 50}, 50},
	} {
		t.Run(tc.name, func(t *testing.T) {
			base := Config{
				N: tc.n, C: 1e7 / 12, D: 100e-6, G: 1.0 / 16,
				Law:         tc.law,
				RTTRefQueue: 40,
				Duration:    80e-3,
				BufferLimit: 600,
			}
			h0 := base.R0() / 50
			mean := func(h float64) float64 {
				cfg := base
				cfg.Step = h
				cfg.SampleEvery = h0 // identical sampling for all step sizes
				res, err := Solve(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return res.QueueMean
			}
			m1, m2, m3 := mean(h0), mean(h0/2), mean(h0/4)
			d1 := math.Abs(m1 - m2)
			d2 := math.Abs(m2 - m3)
			// floor: half a packet of absolute agreement is converged for
			// every claim this model backs.
			const floor = 0.5
			if d2 > d1*0.75 && d2 > floor {
				t.Fatalf("halving deltas not contracting: |m(h)-m(h/2)| = %.4f, |m(h/2)-m(h/4)| = %.4f (means %.3f %.3f %.3f)",
					d1, d2, m1, m2, m3)
			}
		})
	}
}
