package fluid

import (
	"errors"
	"math"
)

// State is the exported integration state of a Stepper: everything needed
// to observe, checkpoint, or couple the model mid-run.
type State struct {
	// Step counts completed RK4 steps; T = Step · StepSize seconds.
	Step int
	// T is the model time in seconds.
	T float64
	// W, Alpha and Q are the per-flow window (packets), the marking
	// estimate, and the queue length (packets).
	W, Alpha, Q float64
	// Qdot is the instantaneous queue derivative N·W/R − C_drain in
	// packets/second.
	Qdot float64
}

// Stepper integrates the fluid model one fixed RK4 step at a time and
// keeps its full state between calls, so an integration can be driven
// incrementally — from a virtual-time event loop, for instance — instead
// of in one Solve shot. The delayed marking lookup reads from a fixed
// ring buffer holding exactly the last R₀ of history, so a step touches
// no allocator no matter how long the run (TestStepperStepAllocs pins
// the step at 0 allocs/op).
//
// Two external inputs exist for hybrid fluid/packet co-simulation and
// default to neutral values: SetAmbientQueue adds a foreign queue
// contribution (packet-level flows sharing the bottleneck) to the queue
// the marking law and the RTT see, and SetDrainCapacity lowers the
// drain rate below Config.C by the bandwidth those foreign flows
// consume. With both untouched the Stepper reproduces Solve exactly —
// Solve is implemented on top of it.
type Stepper struct {
	cfg Config
	h   float64
	r0  float64
	// lag is the marking feedback delay in steps (R₀/h).
	lag float64

	step        int
	w, alpha, q float64

	// histQ and histQd are rings of the last ringCap steps of (q, q̇),
	// indexed by absolute step number modulo ringCap. count is the
	// number of entries ever pushed (== step count at push time).
	histQ, histQd []float64
	count         int
	ringCap       int

	// extQ and drainC are the hybrid coupling inputs: ambient queue in
	// packets and effective drain capacity in packets/second.
	extQ   float64
	drainC float64
}

// NewStepper validates the configuration and prepares a resumable
// integration at the initial conditions. Duration and SampleEvery are
// Solve-level concerns and are ignored here.
func NewStepper(cfg Config) (*Stepper, error) {
	if cfg.N <= 0 || cfg.C <= 0 || cfg.D < 0 || cfg.Law == nil {
		return nil, errors.New("fluid: invalid config")
	}
	r0 := cfg.R0()
	h := cfg.Step
	if h <= 0 {
		h = r0 / 50
	}
	w := cfg.W0
	if w <= 0 {
		w = 1
	}
	lag := r0 / h
	// The delayed lookup reaches back at most lag+1 whole steps; +3
	// covers the interpolation pair and integer truncation.
	ringCap := int(lag) + 3
	return &Stepper{
		cfg:     cfg,
		h:       h,
		r0:      r0,
		lag:     lag,
		w:       w,
		alpha:   cfg.Alpha0,
		q:       cfg.Q0,
		histQ:   make([]float64, ringCap),
		histQd:  make([]float64, ringCap),
		ringCap: ringCap,
		drainC:  cfg.C,
	}, nil
}

// StepSize returns the RK4 step in seconds.
func (s *Stepper) StepSize() float64 { return s.h }

// State returns the current integration state.
func (s *Stepper) State() State {
	return State{
		Step:  s.step,
		T:     float64(s.step) * s.h,
		W:     s.w,
		Alpha: s.alpha,
		Q:     s.q,
		Qdot:  s.qdot(s.w, s.q),
	}
}

// SetAmbientQueue sets the ambient (externally simulated) queue
// contribution in packets. It is added to the fluid queue wherever the
// queue level feeds back into the model — the marking law, the
// queueing-delay term of the RTT, and the buffer cap — so the fluid
// flows react to the total occupancy of a shared bottleneck. Negative
// values clamp to zero.
func (s *Stepper) SetAmbientQueue(pkts float64) {
	if pkts < 0 || math.IsNaN(pkts) {
		pkts = 0
	}
	s.extQ = pkts
}

// SetDrainCapacity sets the effective drain rate of the fluid queue in
// packets/second — Config.C minus whatever bandwidth co-simulated
// packet flows consumed. Values are clamped to [C/1000, C]: the fluid
// share can be starved but never negative, and it can never exceed the
// physical link.
func (s *Stepper) SetDrainCapacity(c float64) {
	lo := s.cfg.C / 1000
	switch {
	case math.IsNaN(c) || c < lo:
		c = lo
	case c > s.cfg.C:
		c = s.cfg.C
	}
	s.drainC = c
}

// DrainCapacity returns the effective drain rate (packets/second).
func (s *Stepper) DrainCapacity() float64 { return s.drainC }

// AmbientQueue returns the ambient queue contribution (packets).
func (s *Stepper) AmbientQueue() float64 { return s.extQ }

// ArrivalRate returns the instantaneous fluid arrival rate N·W/R in
// packets/second.
func (s *Stepper) ArrivalRate() float64 {
	return s.cfg.N * s.w / s.rtt(s.q)
}

// DepartureRate returns the rate at which fluid traffic leaves the
// bottleneck: the full drain capacity while backlogged, the arrival
// rate (capped by capacity) when the fluid queue is empty.
func (s *Stepper) DepartureRate() float64 {
	if s.q > 0 {
		return s.drainC
	}
	return math.Min(s.ArrivalRate(), s.drainC)
}

// Advance runs n consecutive steps.
func (s *Stepper) Advance(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// Step advances the system by one RK4 step: push the current (q, q̇)
// into the delay history, evaluate the delayed marking law (held
// constant across the step — it varies on the R₀ scale, many steps),
// integrate the coupled (W, α, q) system, and clamp to the physical
// region (W ≥ 1, α ∈ [0, 1], 0 ≤ q ≤ buffer).
//
//dtlint:hotpath
func (s *Stepper) Step() {
	h := s.h
	qd := s.qdot(s.w, s.q)
	slot := s.count % s.ringCap
	s.histQ[slot] = s.q
	s.histQd[slot] = qd
	s.count++

	p := s.delayedP()
	alpha := s.alpha

	k1w, k1a, k1q := s.dW(s.w, s.q, p, alpha), s.dA(s.q, alpha, p), qd
	k2w := s.dW(s.w+h/2*k1w, s.q+h/2*k1q, p, alpha)
	k2a := s.dA(s.q+h/2*k1q, alpha+h/2*k1a, p)
	k2q := s.qdot(s.w+h/2*k1w, s.q+h/2*k1q)
	k3w := s.dW(s.w+h/2*k2w, s.q+h/2*k2q, p, alpha)
	k3a := s.dA(s.q+h/2*k2q, alpha+h/2*k2a, p)
	k3q := s.qdot(s.w+h/2*k2w, s.q+h/2*k2q)
	k4w := s.dW(s.w+h*k3w, s.q+h*k3q, p, alpha)
	k4a := s.dA(s.q+h*k3q, alpha+h*k3a, p)
	k4q := s.qdot(s.w+h*k3w, s.q+h*k3q)

	s.w += h / 6 * (k1w + 2*k2w + 2*k3w + k4w)
	s.alpha += h / 6 * (k1a + 2*k2a + 2*k3a + k4a)
	s.q += h / 6 * (k1q + 2*k2q + 2*k3q + k4q)

	if s.w < 1 {
		s.w = 1
	}
	if s.alpha < 0 {
		s.alpha = 0
	} else if s.alpha > 1 {
		s.alpha = 1
	}
	if s.q < 0 {
		s.q = 0
	}
	if lim := s.cfg.BufferLimit; lim > 0 {
		lim -= s.extQ
		if lim < 0 {
			lim = 0
		}
		if s.q > lim {
			s.q = lim
		}
	}
	s.step++
}

// delayedP interpolates the queue state at t−R₀ from the ring history
// and evaluates the marking law on it (plus the ambient contribution);
// before the first R₀ the queue was at its initial condition, unmarked.
//
//dtlint:hotpath
func (s *Stepper) delayedP() float64 {
	idx := float64(s.step) - s.lag
	if idx < 0 {
		return s.cfg.Law.P(s.cfg.Q0+s.extQ, 0)
	}
	i := int(idx)
	if i >= s.count-1 {
		i = s.count - 2
		if i < 0 {
			return s.cfg.Law.P(s.cfg.Q0+s.extQ, 0)
		}
	}
	frac := idx - float64(i)
	j := i % s.ringCap
	k := (i + 1) % s.ringCap
	dq := s.histQ[j]*(1-frac) + s.histQ[k]*frac
	dqd := s.histQd[j]*(1-frac) + s.histQd[k]*frac
	return s.cfg.Law.P(dq+s.extQ, dqd)
}

// rtt returns the instantaneous round-trip time at fluid queue q: the
// propagation delay plus the queueing delay of the total occupancy
// (fluid plus ambient) draining at the full link rate.
//
//dtlint:hotpath
func (s *Stepper) rtt(q float64) float64 {
	if s.cfg.FixedRTT {
		return s.r0
	}
	if q < 0 {
		q = 0
	}
	q += s.extQ
	// Floor at 1ns: with D = 0 and an empty queue the instantaneous RTT
	// would otherwise vanish and the 1/R terms of the ODEs blow up.
	return math.Max(s.cfg.D+q/s.cfg.C, 1e-9)
}

//dtlint:hotpath
func (s *Stepper) qdot(w, q float64) float64 {
	return s.cfg.N*w/s.rtt(q) - s.drainC
}

//dtlint:hotpath
func (s *Stepper) dW(w, q, p, alpha float64) float64 {
	r := s.rtt(q)
	return 1/r - w*alpha*p/(2*r)
}

//dtlint:hotpath
func (s *Stepper) dA(q, a, p float64) float64 {
	return s.cfg.G / s.rtt(q) * (p - a)
}
