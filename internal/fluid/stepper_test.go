package fluid

import (
	"math"
	"testing"
)

func stepperConfig() Config {
	return Config{
		N:           40,
		C:           1e7 / 12, // 10 Gbps in 1500-byte packets
		D:           100e-6,
		G:           1.0 / 16,
		Law:         SingleThreshold{K: 40},
		RTTRefQueue: 40,
		Duration:    50e-3,
		BufferLimit: 600,
	}
}

// TestSolveIsStepperDriver replays Solve's sampling loop over a raw
// Stepper and requires exact float equality with Solve's output: Solve
// must be a thin driver, and the Stepper the single source of numerics.
func TestSolveIsStepperDriver(t *testing.T) {
	cfg := stepperConfig()
	res, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stp, err := NewStepper(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := stp.StepSize()
	sampleEvery := 10 * h
	steps := int(cfg.Duration/h) + 1
	nextSample := 0.0
	sampleIdx := 0
	for step := 0; step < steps; step++ {
		t64 := float64(step) * h
		if t64 >= nextSample {
			nextSample += sampleEvery
			st := stp.State()
			if sampleIdx >= res.Queue.Len() {
				t.Fatalf("stepper produced more samples than Solve (%d)", res.Queue.Len())
			}
			pt := res.Queue.At(sampleIdx)
			if pt.T != t64 || pt.V != st.Q {
				t.Fatalf("sample %d: Solve (t=%v q=%v) != stepper (t=%v q=%v)",
					sampleIdx, pt.T, pt.V, t64, st.Q)
			}
			if w := res.Window.At(sampleIdx).V; w != st.W {
				t.Fatalf("sample %d: window %v != %v", sampleIdx, w, st.W)
			}
			if a := res.Alpha.At(sampleIdx).V; a != st.Alpha {
				t.Fatalf("sample %d: alpha %v != %v", sampleIdx, a, st.Alpha)
			}
			sampleIdx++
		}
		stp.Step()
	}
	if sampleIdx != res.Queue.Len() {
		t.Fatalf("sample count: stepper %d, Solve %d", sampleIdx, res.Queue.Len())
	}
}

// TestStepperResumable verifies that observing and chunking an
// integration does not perturb it: stepping 1-at-a-time with State()
// reads between steps lands on exactly the state of one Advance call.
func TestStepperResumable(t *testing.T) {
	cfg := stepperConfig()
	a, err := NewStepper(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStepper(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 5000
	a.Advance(steps)
	for i := 0; i < steps; i++ {
		_ = b.State() // interleaved observation must be side-effect free
		b.Step()
	}
	sa, sb := a.State(), b.State()
	if sa != sb {
		t.Fatalf("chunked run diverged: %+v != %+v", sa, sb)
	}
}

// TestStepperCouplingInputs exercises the hybrid hooks: ambient queue
// shifts the marking input and the RTT, and a reduced drain capacity
// slows the queue's drain.
func TestStepperCouplingInputs(t *testing.T) {
	cfg := stepperConfig()
	stp, err := NewStepper(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Ambient above the threshold forces marking even with an empty
	// fluid queue: α must rise from 0 once the feedback delay passes.
	stp.SetAmbientQueue(100) // K = 40
	stp.Advance(500)
	if st := stp.State(); st.Alpha <= 0 {
		t.Fatalf("ambient queue above K did not drive marking: α = %v", st.Alpha)
	}

	// Clamps: negative ambient → 0; drain capacity stays in [C/1000, C].
	stp.SetAmbientQueue(-5)
	if got := stp.AmbientQueue(); got != 0 {
		t.Fatalf("negative ambient clamped to %v, want 0", got)
	}
	stp.SetAmbientQueue(math.NaN())
	if got := stp.AmbientQueue(); got != 0 {
		t.Fatalf("NaN ambient clamped to %v, want 0", got)
	}
	stp.SetDrainCapacity(-1)
	if got := stp.DrainCapacity(); got != cfg.C/1000 {
		t.Fatalf("negative drain clamped to %v, want %v", got, cfg.C/1000)
	}
	stp.SetDrainCapacity(2 * cfg.C)
	if got := stp.DrainCapacity(); got != cfg.C {
		t.Fatalf("excess drain clamped to %v, want %v", got, cfg.C)
	}

	// A starved drain must leave the queue growing toward the buffer cap
	// faster than the full-capacity run.
	full, _ := NewStepper(cfg)
	starved, _ := NewStepper(cfg)
	starved.SetDrainCapacity(cfg.C / 100)
	full.Advance(2000)
	starved.Advance(2000)
	if starved.State().Q <= full.State().Q {
		t.Fatalf("starved drain q=%v not above full-capacity q=%v",
			starved.State().Q, full.State().Q)
	}

	// DepartureRate: backlogged → drain capacity; empty → arrival rate.
	if starved.State().Q > 0 && starved.DepartureRate() != starved.DrainCapacity() {
		t.Fatalf("backlogged departure %v != drain %v", starved.DepartureRate(), starved.DrainCapacity())
	}
	idle, _ := NewStepper(cfg)
	if got, want := idle.DepartureRate(), idle.ArrivalRate(); got != want {
		t.Fatalf("idle departure %v != arrival %v", got, want)
	}
}

// TestStepperBufferLimitSharesWithAmbient pins the shared-buffer rule:
// the fluid queue caps at BufferLimit minus the ambient contribution,
// never below zero.
func TestStepperBufferLimitSharesWithAmbient(t *testing.T) {
	cfg := stepperConfig()
	cfg.N = 400 // drive the queue into the cap
	cfg.BufferLimit = 100
	stp, err := NewStepper(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stp.SetAmbientQueue(30)
	stp.Advance(20000)
	if q := stp.State().Q; q > 70 {
		t.Fatalf("fluid queue %v exceeds BufferLimit−ambient = 70", q)
	}
	stp.SetAmbientQueue(200) // ambient alone exceeds the buffer
	stp.Step()
	if q := stp.State().Q; q != 0 {
		t.Fatalf("fluid queue %v not squeezed to 0 by oversized ambient", q)
	}
}

func TestNewStepperRejectsInvalid(t *testing.T) {
	bad := []Config{
		{},
		{N: 0, C: 1, D: 0, Law: SingleThreshold{K: 1}},
		{N: 1, C: 0, D: 0, Law: SingleThreshold{K: 1}},
		{N: 1, C: 1, D: -1, Law: SingleThreshold{K: 1}},
		{N: 1, C: 1, D: 0, Law: nil},
	}
	for i, cfg := range bad {
		if _, err := NewStepper(cfg); err == nil {
			t.Errorf("config %d: NewStepper accepted invalid config %+v", i, cfg)
		}
	}
}
