// Package hybrid couples the fluid model of internal/fluid to the
// packet-level simulator of internal/netsim for hybrid co-simulation:
// thousands of long-lived background flows are modeled as the Alizadeh
// fluid ODE feeding the bottleneck's queue, while foreground flows stay
// packet-level against that time-varying ambient load.
//
// The Coupler is the bridge. On a fixed virtual-time tick it
//
//  1. measures the packet-level offered load at the bottleneck since the
//     previous tick (enqueues plus drops — arrivals are not throttled by
//     the bottleneck's service rate, so the measurement cannot deadlock)
//     and lowers the fluid drain capacity by the foreground's FIFO
//     share: the full offered rate while the link has room, the
//     proportional share C·r/(A+r) once fluid and foreground arrivals
//     together exceed capacity — per-class FIFO departure tracks
//     per-class arrival share under overload;
//  2. feeds the bottleneck's real queue occupancy into the fluid model
//     as ambient queue, so the background flows' marking feedback and
//     RTT react to foreground backlog;
//  3. advances the fluid integration by a whole number of RK4 steps
//     (the tick is an exact multiple of the step, so fluid time and
//     virtual time never drift);
//  4. installs the resulting fluid queue level and departure rate on the
//     port as ambient load (netsim.Port.SetAmbient), biasing the AQM's
//     marking/drop decisions, the overflow check, the queue monitor, and
//     the processor-sharing serialization rate the foreground packets
//     see (their share of the link tracks their share of the total
//     backlog, reproducing FIFO delay through the ambient queue).
//
// Both directions relax toward FIFO bandwidth sharing: fluid backlog
// slows packets, packet offered load starves the fluid drain, and each
// side's queue contribution feeds the other's congestion signals.
//
// Ticks are engine events stamped with a reserved source key
// (SrcKey), far above any topology domain index, so same-instant ties
// between a tick and packet deliveries resolve by the identical
// (at, schedAt, srcKey, srcSeq) ordering key in serial and sharded runs
// — the coupling never perturbs the determinism contract.
package hybrid

import (
	"errors"
	"time"

	"dtdctcp/internal/fluid"
	"dtdctcp/internal/netsim"
	"dtdctcp/internal/sim"
)

// SrcKey is the reserved event-source key coupling ticks are scheduled
// under. Topology domain indices are small (hosts + switch ports);
// reserving a key this large keeps tick ordering stable against any
// realistic topology.
const SrcKey = 1 << 30

// ewmaGain smooths the per-tick foreground offered-load measurement
// before it starves the fluid drain: raw per-tick rates quantize to
// whole packets and would inject measurement noise into the ODE.
const ewmaGain = 0.25

// Config parameterizes one fluid/packet coupling.
type Config struct {
	// Fluid is the background-flow model. Duration, Step and SampleEvery
	// are ignored: the Coupler integrates indefinitely with a step of
	// Interval/StepsPerTick.
	Fluid fluid.Config
	// Port is the bottleneck egress the background flows share with
	// foreground traffic. It must be pinned to the engine the Coupler is
	// started on (shard 0 in sharded runs).
	Port *netsim.Port
	// PktSize converts fluid packets to bytes; zero selects 1500.
	PktSize int
	// Interval is the coupling tick; zero selects R₀/8 (rounded to the
	// nanosecond grid).
	Interval time.Duration
	// StepsPerTick is the number of RK4 steps per tick; zero selects 8,
	// giving the default tick a step of R₀/64.
	StepsPerTick int
	// Horizon stops the tick chain: no tick is scheduled past it.
	Horizon time.Duration
}

// Coupler drives one fluid background model against one bottleneck port.
type Coupler struct {
	stepper *fluid.Stepper
	port    *netsim.Port
	engine  *sim.Engine

	pktSize      float64
	interval     time.Duration
	intervalSec  float64
	stepsPerTick int
	horizon      sim.Time
	fluidC       float64 // link capacity in fluid packets/second

	tickFn      func(any)
	seq         uint64
	ticks       int
	lastOffered uint64
	fgRate      float64 // EWMA of foreground offered load, packets/second
}

// New validates the configuration and builds a Coupler. The fluid
// stepper is created here with its step pinned to Interval/StepsPerTick,
// so one tick advances fluid time by exactly one interval.
func New(cfg Config) (*Coupler, error) {
	if cfg.Port == nil {
		return nil, errors.New("hybrid: nil port")
	}
	if cfg.Horizon <= 0 {
		return nil, errors.New("hybrid: non-positive horizon")
	}
	pktSize := cfg.PktSize
	if pktSize == 0 {
		pktSize = 1500
	}
	if pktSize < 0 {
		return nil, errors.New("hybrid: negative packet size")
	}
	steps := cfg.StepsPerTick
	if steps == 0 {
		steps = 8
	}
	if steps < 0 {
		return nil, errors.New("hybrid: negative steps per tick")
	}
	interval := cfg.Interval
	if interval == 0 {
		interval = time.Duration(cfg.Fluid.R0() * float64(time.Second) / 8)
	}
	if interval <= 0 {
		return nil, errors.New("hybrid: non-positive interval")
	}
	fcfg := cfg.Fluid
	fcfg.Step = interval.Seconds() / float64(steps)
	stp, err := fluid.NewStepper(fcfg)
	if err != nil {
		return nil, err
	}
	return &Coupler{
		stepper:      stp,
		port:         cfg.Port,
		pktSize:      float64(pktSize),
		interval:     interval,
		intervalSec:  interval.Seconds(),
		stepsPerTick: steps,
		horizon:      sim.FromDuration(cfg.Horizon),
		fluidC:       fcfg.C,
	}, nil
}

// Stepper exposes the fluid integration for observation and digesting.
func (c *Coupler) Stepper() *fluid.Stepper { return c.stepper }

// Ticks returns the number of coupling ticks executed so far.
func (c *Coupler) Ticks() int { return c.ticks }

// Interval returns the coupling tick period.
func (c *Coupler) Interval() time.Duration { return c.interval }

// Start schedules the tick chain on e, which must be the engine the
// bottleneck port runs on. The first tick fires one interval in; ticks
// then self-perpetuate until Horizon.
func (c *Coupler) Start(e *sim.Engine) {
	c.engine = e
	c.lastOffered = offeredPackets(c.port.Stats())
	//dtlint:hotpath
	c.tickFn = func(any) { c.tick() }
	c.schedule(e.Now().Add(c.interval))
}

func (c *Coupler) schedule(at sim.Time) {
	if at > c.horizon {
		return
	}
	c.engine.ScheduleSrcArg(at, SrcKey, c.seq, c.tickFn, nil)
	c.seq++
}

// tick is one coupling exchange; see the package comment for the four
// phases. It runs on the simulation goroutine and must stay alloc-free:
// at the default interval it fires tens of thousands of times per
// simulated second.
//
//dtlint:hotpath
func (c *Coupler) tick() {
	// Foreground offered load since the last tick, smoothed, sets the
	// foreground's FIFO share of the drain. Offered load (enqueues plus
	// drops) is measured at arrival, before the bottleneck serializes
	// anything, so a temporarily starved foreground still registers
	// demand and wins back its share — measuring achieved throughput
	// instead would deadlock at zero.
	offered := offeredPackets(c.port.Stats())
	measured := float64(offered-c.lastOffered) / c.intervalSec
	c.lastOffered = offered
	c.fgRate += ewmaGain * (measured - c.fgRate)
	fgShare := c.fgRate
	if total := c.stepper.ArrivalRate() + c.fgRate; total > c.fluidC {
		// Overloaded: FIFO departs each class at its arrival share.
		fgShare = c.fluidC * c.fgRate / total
	}
	c.stepper.SetDrainCapacity(c.fluidC - fgShare)

	// The real packet backlog is ambient occupancy for the fluid side.
	c.stepper.SetAmbientQueue(float64(c.port.QueueLen()) / c.pktSize)

	c.stepper.Advance(c.stepsPerTick)

	// The fluid queue and departure rate become the port's ambient load.
	st := c.stepper.State()
	dep := c.stepper.DepartureRate()
	c.port.SetAmbient(
		int(st.Q*c.pktSize+0.5),
		netsim.Rate(dep*c.pktSize*8+0.5),
	)

	c.ticks++
	c.schedule(c.engine.Now().Add(c.interval))
}

// offeredPackets counts arrivals at the port — everything the foreground
// tried to put through, whether it was queued or dropped.
//
//dtlint:hotpath
func offeredPackets(st netsim.PortStats) uint64 {
	return st.Enqueued + st.DroppedOverflow + st.DroppedPolicy
}
