package hybrid

import (
	"testing"
	"time"

	"dtdctcp/internal/fluid"
	"dtdctcp/internal/netsim"
	"dtdctcp/internal/sim"
)

const pktSize = 1500

// testbed is a one-hop a→sw→b topology; the returned port is the
// switch's egress toward b — the bottleneck the coupler drives.
func testbed(t *testing.T, e *sim.Engine, rate netsim.Rate, bufferPkts int) (*netsim.Host, *netsim.Host, *netsim.Port) {
	t.Helper()
	n := netsim.NewNetwork(e)
	a := n.AddHost("a")
	b := n.AddHost("b")
	sw := n.AddSwitch("sw")
	cfg := netsim.PortConfig{Rate: rate, Delay: 10 * time.Microsecond, Buffer: bufferPkts * pktSize}
	if err := n.Connect(a, sw, cfg, cfg); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect(b, sw, cfg, cfg); err != nil {
		t.Fatal(err)
	}
	if err := n.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	port := sw.PortTo(b.ID())
	if port == nil {
		t.Fatal("no switch port toward b")
	}
	return a, b, port
}

// fluidCfg models background flows on a rate-bps bottleneck.
func fluidCfg(n float64, rate netsim.Rate) fluid.Config {
	return fluid.Config{
		N:           n,
		C:           float64(rate) / 8 / pktSize,
		D:           100 * 1e-6,
		G:           1.0 / 16,
		Law:         fluid.SingleThreshold{K: 40},
		RTTRefQueue: 40,
		BufferLimit: 600,
	}
}

// TestCouplerMatchesStandaloneStepperWithoutForeground pins the neutral
// case: with no foreground traffic the coupler's fluid trajectory is
// bit-identical to a standalone stepper at the same step size — the
// coupling machinery itself adds no perturbation.
func TestCouplerMatchesStandaloneStepperWithoutForeground(t *testing.T) {
	e := sim.NewEngine(1)
	_, _, port := testbed(t, e, netsim.Gbps, 600)
	cfg := Config{
		Fluid:   fluidCfg(100, netsim.Gbps),
		Port:    port,
		Horizon: 20 * time.Millisecond,
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start(e)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}

	ref := fluidCfg(100, netsim.Gbps)
	ref.Step = c.Interval().Seconds() / 8
	stp, err := fluid.NewStepper(ref)
	if err != nil {
		t.Fatal(err)
	}
	stp.Advance(c.Ticks() * 8)
	if got, want := c.Stepper().State(), stp.State(); got != want {
		t.Fatalf("coupled trajectory diverged from standalone: %+v != %+v", got, want)
	}
	if c.Ticks() == 0 {
		t.Fatal("coupler never ticked")
	}
}

// TestCouplerInstallsFluidLoadOnPort verifies phase 4: after a run whose
// background flows build a standing queue, the port carries the fluid
// queue as ambient bytes and the fluid departure rate as consumed rate.
func TestCouplerInstallsFluidLoadOnPort(t *testing.T) {
	e := sim.NewEngine(1)
	_, _, port := testbed(t, e, netsim.Gbps, 600)
	c, err := New(Config{
		Fluid:   fluidCfg(100, netsim.Gbps),
		Port:    port,
		Horizon: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start(e)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}

	st := c.Stepper().State()
	if st.Q <= 0 {
		t.Fatalf("background flows built no queue (q = %v); test is vacuous", st.Q)
	}
	if got, want := port.AmbientBytes(), int(st.Q*pktSize+0.5); got != want {
		t.Fatalf("port ambient bytes %d, want %d (fluid q %v pkts)", got, want, st.Q)
	}
	wantRate := netsim.Rate(c.Stepper().DepartureRate()*pktSize*8 + 0.5)
	if cap := port.Rate() - port.Rate()/1000; wantRate > cap {
		wantRate = cap // SetAmbient never lets ambient starve packets fully
	}
	if got := port.AmbientRate(); got != wantRate {
		t.Fatalf("port ambient rate %v, want %v", got, wantRate)
	}
	if port.AmbientRate() <= 0 {
		t.Fatal("backlogged background flows consume no bandwidth; test is vacuous")
	}
}

// TestCouplerForegroundOfferedLoadStarvesFluidDrain verifies phase 1: a
// foreground packet stream through the bottleneck lowers the fluid
// drain capacity below the link rate.
func TestCouplerForegroundOfferedLoadStarvesFluidDrain(t *testing.T) {
	e := sim.NewEngine(1)
	a, b, port := testbed(t, e, netsim.Gbps, 600)
	fcfg := fluidCfg(100, netsim.Gbps)
	c, err := New(Config{Fluid: fcfg, Port: port, Horizon: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	c.Start(e)

	// Saturating foreground stream: one packet per serialization time.
	gap := netsim.Gbps.Serialization(pktSize)
	for i := 0; i < 10000; i++ {
		at := sim.TimeZero.Add(time.Duration(i) * gap)
		if at > sim.FromDuration(15*time.Millisecond) {
			break
		}
		e.ScheduleArg(at, func(any) {
			a.Send(&netsim.Packet{Flow: 1, Dst: b.ID(), Size: pktSize})
		}, nil)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := c.Stepper().DrainCapacity(); got >= fcfg.C {
		t.Fatalf("fluid drain %v not starved below link capacity %v", got, fcfg.C)
	}
}

// TestCouplerStopsAtHorizon pins the tick count: ticks fire at every
// multiple of the interval in (0, horizon] and then stop, so Run
// terminates.
func TestCouplerStopsAtHorizon(t *testing.T) {
	e := sim.NewEngine(1)
	_, _, port := testbed(t, e, netsim.Gbps, 600)
	c, err := New(Config{
		Fluid:    fluidCfg(100, netsim.Gbps),
		Port:     port,
		Interval: 100 * time.Microsecond,
		Horizon:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start(e)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got, want := c.Ticks(), 100; got != want {
		t.Fatalf("ticks = %d, want %d", got, want)
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	e := sim.NewEngine(1)
	_, _, port := testbed(t, e, netsim.Gbps, 600)
	good := Config{Fluid: fluidCfg(100, netsim.Gbps), Port: port, Horizon: time.Millisecond}

	bad := []func(*Config){
		func(c *Config) { c.Port = nil },
		func(c *Config) { c.Horizon = 0 },
		func(c *Config) { c.Horizon = -time.Second },
		func(c *Config) { c.PktSize = -1 },
		func(c *Config) { c.StepsPerTick = -1 },
		func(c *Config) { c.Interval = -time.Second },
		func(c *Config) { c.Fluid.N = 0 },
		func(c *Config) { c.Fluid.Law = nil },
	}
	for i, mutate := range bad {
		cfg := good
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New accepted invalid config", i)
		}
	}
	if _, err := New(good); err != nil {
		t.Fatalf("New rejected valid config: %v", err)
	}
}
