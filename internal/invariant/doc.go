// Package invariant is the build-tag-gated runtime assertion layer of the
// simulator's correctness tooling (the companion of the static dtlint
// suite, cmd/dtlint).
//
// Production and benchmark builds compile the package to nothing: Enabled
// is the constant false and Assert is an empty function, so guarded call
// sites
//
//	if invariant.Enabled {
//		invariant.Assert(qlen >= 0, "negative occupancy %d", qlen)
//	}
//
// are eliminated entirely by the compiler. Verification builds enable the
// checks with
//
//	go test -tags invariants ./internal/...
//
// and a violated invariant panics with the formatted message, pointing at
// the event that corrupted state rather than at the place the corruption
// was eventually observed.
//
// The simulator asserts, among others: event-time monotonicity in the
// discrete-event heap (internal/sim), non-negative queue occupancy and
// byte-count conservation at switch ports (internal/netsim,
// internal/aqm), and DCTCP's congestion estimate α staying in [0, 1]
// (internal/tcp).
package invariant
