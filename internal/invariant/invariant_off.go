//go:build !invariants

package invariant

// Enabled reports whether invariant checking is compiled in. It is a
// constant so disabled call sites guarded by `if invariant.Enabled` cost
// nothing.
const Enabled = false

// Assert does nothing in builds without the invariants tag.
func Assert(bool, string, ...any) {}
