//go:build invariants

package invariant

import "fmt"

// Enabled reports whether invariant checking is compiled in. It is a
// constant so disabled call sites guarded by `if invariant.Enabled` cost
// nothing.
const Enabled = true

// Assert panics with the formatted message when cond is false.
func Assert(cond bool, format string, args ...any) {
	if !cond {
		panic("invariant violated: " + fmt.Sprintf(format, args...))
	}
}
