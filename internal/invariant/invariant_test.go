package invariant

import "testing"

// TestAssert exercises both build flavours: with -tags invariants a false
// condition must panic and a true one must not; without the tag Assert is
// a no-op either way.
func TestAssert(t *testing.T) {
	Assert(true, "true condition must never fire")

	defer func() {
		r := recover()
		if Enabled && r == nil {
			t.Fatal("Assert(false) did not panic with invariants enabled")
		}
		if !Enabled && r != nil {
			t.Fatalf("Assert(false) panicked with invariants disabled: %v", r)
		}
	}()
	Assert(false, "deliberate violation %d", 42)
}
