package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// This file implements the dtlint annotation vocabulary:
//
//	//dtlint:allow analyzer[,analyzer...]: reason   suppress findings (reason required)
//	//dtlint:allow analyzer[,analyzer...] -- reason legacy separator, still accepted
//	//dtlint:hotpath                                mark a function as a zero-alloc hot path
//	//dtlint:shardboundary reason                   mark a function as the sharded sync layer
//
// An allow annotation covers its own line and the line directly below it.
// A hotpath or shardboundary annotation marks the function declaration it
// documents (any line of the doc comment) or, for function literals, the
// line directly above the literal. A shardboundary annotation requires a
// reason, like an allow: it exempts a whole function from soloengine's
// concurrency bans, and that much power must carry its justification.

const (
	allowMarker         = "dtlint:allow"
	hotpathMarker       = "dtlint:hotpath"
	shardBoundaryMarker = "dtlint:shardboundary"
)

// parseAllowComment parses the body of one comment (with or without the
// leading "//"). It returns the analyzer names and the justification.
// ok is false when the comment is not an allow annotation at all;
// a malformed annotation (no names, or no non-empty reason) returns
// ok=true with an empty names list or empty reason, so callers can
// distinguish "not an annotation" from "broken annotation".
func parseAllowComment(text string) (names []string, reason string, ok bool) {
	body := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(text), "//"))
	rest, found := strings.CutPrefix(body, allowMarker)
	if !found {
		return nil, "", false
	}
	// The marker must end the word: "dtlint:allowance" is not an annotation.
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' && rest[0] != ':' {
		return nil, "", false
	}
	// Names run until the first separator — ":" (canonical) or "--"
	// (legacy), whichever comes first — and the reason is everything after
	// it. Earliest-wins keeps the grammar unambiguous when a reason itself
	// contains the other separator.
	namePart := rest
	ci := strings.IndexByte(rest, ':')
	di := strings.Index(rest, "--")
	switch {
	case ci >= 0 && (di < 0 || ci < di):
		namePart, reason = rest[:ci], rest[ci+1:]
	case di >= 0:
		namePart, reason = rest[:di], rest[di+2:]
	}
	for _, n := range strings.Split(namePart, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, strings.TrimSpace(reason), true
}

// allowIndex maps filename → line → analyzer names a well-formed
// //dtlint:allow annotation covers. An annotation covers its own line and
// the line directly below it, so both same-line and line-above placements
// work.
type allowIndex map[string]map[int]map[string]bool

func (ai allowIndex) allows(pos token.Position, analyzer string) bool {
	lines := ai[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][analyzer] || lines[pos.Line-1][analyzer]
}

// allowDiagAnalyzer names the framework's own annotation checks in
// diagnostics. It is not a member of Analyzers(): the checks run
// unconditionally as part of every Run, and their findings cannot be
// suppressed by the very grammar they police.
const allowDiagAnalyzer = "allow"

// buildAllowIndex scans the files' comments for //dtlint:allow
// annotations. Only well-formed annotations — at least one analyzer name
// and a non-empty reason — enter the index; malformed ones suppress
// nothing and come back as diagnostics, as do names that match no
// analyzer in the suite.
func buildAllowIndex(fset *token.FileSet, files []*ast.File) (allowIndex, []Diagnostic) {
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	idx := make(allowIndex)
	var diags []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, reason, ok := parseAllowComment(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				if len(names) == 0 {
					diags = append(diags, Diagnostic{
						Pos:      pos,
						Analyzer: allowDiagAnalyzer,
						Message:  "dtlint:allow names no analyzer; write //dtlint:allow <analyzer>: <reason>",
					})
					continue
				}
				if reason == "" {
					diags = append(diags, Diagnostic{
						Pos:      pos,
						Analyzer: allowDiagAnalyzer,
						Message:  "dtlint:allow without a reason suppresses nothing; write //dtlint:allow " + strings.Join(names, ",") + ": <why this finding is acceptable>",
					})
					continue
				}
				for _, n := range names {
					if !known[n] {
						diags = append(diags, Diagnostic{
							Pos:      pos,
							Analyzer: allowDiagAnalyzer,
							Message:  "dtlint:allow names unknown analyzer " + strconvQuote(n) + "; the suite has no such check",
						})
					}
				}
				lines := idx[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					idx[pos.Filename] = lines
				}
				set := lines[pos.Line]
				if set == nil {
					set = make(map[string]bool)
					lines[pos.Line] = set
				}
				for _, n := range names {
					set[n] = true
				}
			}
		}
	}
	return idx, diags
}

// strconvQuote is a tiny local quote helper so annot.go needs no strconv
// import churn in callers; it only handles the diagnostic message case.
func strconvQuote(s string) string { return `"` + s + `"` }

// hotIndex records which functions carry a //dtlint:hotpath annotation.
type hotIndex struct {
	// markerLines maps filename → set of lines bearing the marker.
	markerLines map[string]map[int]bool
}

// buildHotIndex scans all comments for //dtlint:hotpath markers.
func buildHotIndex(fset *token.FileSet, files []*ast.File) *hotIndex {
	hi := &hotIndex{markerLines: make(map[string]map[int]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				body := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if body != hotpathMarker && !strings.HasPrefix(body, hotpathMarker+" ") {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := hi.markerLines[pos.Filename]
				if lines == nil {
					lines = make(map[int]bool)
					hi.markerLines[pos.Filename] = lines
				}
				lines[pos.Line] = true
			}
		}
	}
	return hi
}

// hotDecl reports whether a function declaration is hotpath-annotated:
// the marker appears in its doc comment or on the line directly above
// the declaration.
func (hi *hotIndex) hotDecl(fset *token.FileSet, fd *ast.FuncDecl) bool {
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			body := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if body == hotpathMarker || strings.HasPrefix(body, hotpathMarker+" ") {
				return true
			}
		}
	}
	pos := fset.Position(fd.Pos())
	return hi.markerLines[pos.Filename][pos.Line-1]
}

// hotLit reports whether a function literal is hotpath-annotated: the
// marker sits on the literal's own line or the line directly above it
// (literals have no doc comments, so the marker rides the statement that
// stores them).
func (hi *hotIndex) hotLit(fset *token.FileSet, lit *ast.FuncLit) bool {
	pos := fset.Position(lit.Pos())
	lines := hi.markerLines[pos.Filename]
	return lines[pos.Line] || lines[pos.Line-1]
}

// hotFunc is one hotpath-annotated function: a declaration or a literal.
type hotFunc struct {
	// Name labels the function in diagnostics ("Engine.Schedule", or
	// "func literal" for an anonymous one).
	Name string
	// Body is the function body to analyze.
	Body *ast.BlockStmt
	// Node is the FuncDecl or FuncLit itself.
	Node ast.Node
}

// HotFuncs returns every hotpath-annotated function of the pass's package
// in file order: declarations whose doc (or preceding line) carries
// //dtlint:hotpath, and function literals with the marker on or directly
// above their first line.
func (p *Pass) HotFuncs() []hotFunc {
	hi := p.hot
	if hi == nil {
		hi = buildHotIndex(p.Fset, p.Files)
		p.hot = hi
	}
	var out []hotFunc
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil && hi.hotDecl(p.Fset, fn) {
					out = append(out, hotFunc{Name: funcDeclName(fn), Body: fn.Body, Node: fn})
				}
			case *ast.FuncLit:
				if hi.hotLit(p.Fset, fn) {
					out = append(out, hotFunc{Name: "func literal", Body: fn.Body, Node: fn})
				}
			}
			return true
		})
	}
	return out
}

// shardIndex records which functions carry a well-formed (reasoned)
// //dtlint:shardboundary annotation. The soloengine analyzer skips the
// bodies of marked functions: they are the explicitly sanctioned
// synchronization layer of the sharded coordinator, the one place where
// goroutines and channels are part of the design rather than a leak.
type shardIndex struct {
	// markerLines maps filename → set of lines bearing a reasoned marker.
	markerLines map[string]map[int]bool
}

// parseShardBoundaryComment parses one comment as a shardboundary
// annotation. ok is false when the comment is not the marker at all; a
// marker without a reason returns ok=true with reason == "".
func parseShardBoundaryComment(text string) (reason string, ok bool) {
	body := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(text), "//"))
	rest, found := strings.CutPrefix(body, shardBoundaryMarker)
	if !found {
		return "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false
	}
	return strings.TrimSpace(rest), true
}

// buildShardIndex scans all comments for //dtlint:shardboundary markers.
// Only reasoned markers enter the index; a reasonless one exempts nothing
// and surfaces as a framework diagnostic, mirroring the allow grammar.
func buildShardIndex(fset *token.FileSet, files []*ast.File) (*shardIndex, []Diagnostic) {
	si := &shardIndex{markerLines: make(map[string]map[int]bool)}
	var diags []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				reason, ok := parseShardBoundaryComment(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				if reason == "" {
					diags = append(diags, Diagnostic{
						Pos:      pos,
						Analyzer: allowDiagAnalyzer,
						Message:  "dtlint:shardboundary without a reason exempts nothing; write //dtlint:shardboundary <why this function is the sanctioned sync layer>",
					})
					continue
				}
				lines := si.markerLines[pos.Filename]
				if lines == nil {
					lines = make(map[int]bool)
					si.markerLines[pos.Filename] = lines
				}
				lines[pos.Line] = true
			}
		}
	}
	return si, diags
}

// boundaryDecl reports whether a function declaration carries a reasoned
// shardboundary marker: in its doc comment or on the line directly above.
func (si *shardIndex) boundaryDecl(fset *token.FileSet, fd *ast.FuncDecl) bool {
	pos := fset.Position(fd.Pos())
	lines := si.markerLines[pos.Filename]
	if lines == nil {
		return false
	}
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if lines[fset.Position(c.Pos()).Line] {
				return true
			}
		}
	}
	return lines[pos.Line-1]
}

// boundaryLit reports whether a function literal carries the marker on
// its own line or the line directly above it.
func (si *shardIndex) boundaryLit(fset *token.FileSet, lit *ast.FuncLit) bool {
	pos := fset.Position(lit.Pos())
	lines := si.markerLines[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line] || lines[pos.Line-1]
}

// shardBoundary returns the pass's shardboundary index, building it on
// first use.
func (p *Pass) shardBoundary() *shardIndex {
	if p.shardb == nil {
		si, _ := buildShardIndex(p.Fset, p.Files)
		p.shardb = si
	}
	return p.shardb
}

// funcDeclName renders "Recv.Name" for methods and "Name" for functions.
func funcDeclName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}
