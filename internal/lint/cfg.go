package lint

import (
	"go/ast"
	"go/token"
)

// This file builds the intra-procedural control-flow graph the
// flow-sensitive analyzers (pktlife, detflow) run their dataflow over.
//
// Blocks hold "atomic" nodes only: simple statements and the init/cond/tag
// expressions of compound statements. Compound statements themselves never
// appear as nodes — their bodies become blocks and edges — so a transfer
// function can ast.Inspect each node without double-visiting nested code.
//
// Two synthetic blocks terminate every graph: exit (normal returns and
// falling off the end) and panicExit (paths ending in an explicit panic
// call). Deferred calls are modelled with may-run semantics: every defer
// seen anywhere in the function is assumed to run before exit, in LIFO
// order, wrapped in deferRun nodes so transfer functions can distinguish
// execution (at exit) from registration (the DeferStmt at its site, where
// the call's arguments are evaluated).

// block is one basic block of a function CFG.
type block struct {
	// index orders blocks in construction (roughly source) order.
	index int
	// nodes are the atomic statements and expressions of the block.
	nodes []ast.Node
	// succs are the control-flow successors.
	succs []*block
}

// deferRun wraps a deferred call for execution at function exit. It
// implements ast.Node by delegating to the underlying call.
type deferRun struct{ call *ast.CallExpr }

func (d *deferRun) Pos() token.Pos { return d.call.Pos() }
func (d *deferRun) End() token.Pos { return d.call.End() }

// rangeHead marks the head of a range loop: per iteration it assigns the
// Key/Value variables from the ranged expression. Kept as a wrapper so
// transfer functions see the assignment semantics without descending into
// the loop body (which is its own block).
type rangeHead struct{ stmt *ast.RangeStmt }

func (r *rangeHead) Pos() token.Pos { return r.stmt.Pos() }
func (r *rangeHead) End() token.Pos { return r.stmt.End() }

// funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	entry     *block
	exit      *block
	panicExit *block
	blocks    []*block
}

// cfgBuilder carries the construction state.
type cfgBuilder struct {
	g *funcCFG
	// cur is the block under construction; nil after a terminator.
	cur *block
	// breakTargets / continueTargets stack the innermost targets;
	// labels maps label name → target blocks for labeled break/continue
	// and goto.
	breakTargets    []*labeledTarget
	continueTargets []*labeledTarget
	gotoTargets     map[string]*block
	// defers collects deferred calls in registration order.
	defers []*ast.CallExpr
}

type labeledTarget struct {
	label string
	block *block
}

// buildCFG constructs the CFG of one function body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	g := &funcCFG{}
	b := &cfgBuilder{g: g, gotoTargets: make(map[string]*block)}
	g.entry = b.newBlock()
	g.exit = b.newBlock()
	g.panicExit = b.newBlock()
	b.cur = g.entry
	b.stmtList(body.List)
	// Falling off the end of the body is an implicit return.
	b.jump(g.exit)
	// Deferred calls run before exit, last registered first.
	for i := len(b.defers) - 1; i >= 0; i-- {
		g.exit.nodes = append(g.exit.nodes, &deferRun{call: b.defers[i]})
	}
	return g
}

func (b *cfgBuilder) newBlock() *block {
	blk := &block{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

// add appends an atomic node to the current block (creating an
// unreachable block if control already left — diagnostics in dead code
// are still wanted).
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.nodes = append(b.cur.nodes, n)
}

// jump ends the current block with an edge to dst.
func (b *cfgBuilder) jump(dst *block) {
	if b.cur != nil {
		b.cur.succs = append(b.cur.succs, dst)
	}
	b.cur = nil
}

// startBlock begins a new current block, linking from the previous one.
func (b *cfgBuilder) startBlock() *block {
	blk := b.newBlock()
	b.jump(blk)
	b.cur = blk
	return blk
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt lowers one statement. label is the name of an enclosing
// LabeledStmt when the statement is its direct body.
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// The label's target block: goto lands here; break/continue with
		// this label resolve inside the labeled statement.
		target := b.gotoTarget(s.Label.Name)
		b.jump(target)
		b.cur = target
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		b.add(s.Cond)
		condBlock := b.cur
		thenBlock := b.newBlock()
		condBlock.succs = append(condBlock.succs, thenBlock)
		join := b.newBlock()
		b.cur = thenBlock
		b.stmtList(s.Body.List)
		b.jump(join)
		if s.Else != nil {
			elseBlock := b.newBlock()
			condBlock.succs = append(condBlock.succs, elseBlock)
			b.cur = elseBlock
			b.stmt(s.Else, "")
			b.jump(join)
		} else {
			condBlock.succs = append(condBlock.succs, join)
		}
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		head := b.startBlock()
		if s.Cond != nil {
			b.add(s.Cond)
		}
		body := b.newBlock()
		after := b.newBlock()
		head.succs = append(head.succs, body)
		if s.Cond != nil {
			head.succs = append(head.succs, after)
		}
		// An infinite `for {}` loop still gets an after block for
		// break; it just has no edge from the head. continue jumps to
		// the post block so induction-variable updates stay on the path.
		cont := head
		var post *block
		if s.Post != nil {
			post = b.newBlock()
			cont = post
		}
		b.pushLoop(label, after, cont)
		b.cur = body
		b.stmtList(s.Body.List)
		if post != nil {
			b.jump(post)
			b.cur = post
			b.stmt(s.Post, "")
		}
		b.jump(head)
		b.popLoop()
		b.cur = after

	case *ast.RangeStmt:
		b.add(s.X)
		head := b.startBlock()
		head.nodes = append(head.nodes, &rangeHead{stmt: s})
		body := b.newBlock()
		after := b.newBlock()
		head.succs = append(head.succs, body, after)
		b.pushLoop(label, after, head)
		b.cur = body
		b.stmtList(s.Body.List)
		b.jump(head)
		b.popLoop()
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(s.Body.List, label, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		b.caseClauses(s.Body.List, label, s.Assign)

	case *ast.SelectStmt:
		head := b.cur
		if head == nil {
			head = b.newBlock()
			b.cur = head
		}
		after := b.newBlock()
		b.pushBreak(label, after)
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock()
			head.succs = append(head.succs, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm, "")
			}
			b.stmtList(cc.Body)
			b.jump(after)
		}
		b.popBreak()
		b.cur = after

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.exit)

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := b.findTarget(b.breakTargets, s.Label); t != nil {
				b.jump(t)
			} else {
				b.cur = nil
			}
		case token.CONTINUE:
			if t := b.findTarget(b.continueTargets, s.Label); t != nil {
				b.jump(t)
			} else {
				b.cur = nil
			}
		case token.GOTO:
			b.jump(b.gotoTarget(s.Label.Name))
		case token.FALLTHROUGH:
			// Handled by caseClauses; nothing to do here.
		}

	case *ast.DeferStmt:
		b.add(s)
		b.defers = append(b.defers, s.Call)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				b.jump(b.g.panicExit)
			}
		}

	case nil:
		// Absent optional statement.

	default:
		// Assign, IncDec, Send, Go, Decl, Empty: atomic.
		b.add(s)
	}
}

// caseClauses lowers the shared switch shape: every clause is a successor
// of the head block; fallthrough chains a clause body into the next one;
// a missing default adds a head→after edge.
func (b *cfgBuilder) caseClauses(clauses []ast.Stmt, label string, typeAssign ast.Stmt) {
	head := b.cur
	if head == nil {
		head = b.newBlock()
		b.cur = head
	}
	after := b.newBlock()
	b.pushBreak(label, after)
	hasDefault := false
	bodies := make([]*block, len(clauses))
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		blk := b.newBlock()
		bodies[i] = blk
		head.succs = append(head.succs, blk)
		if cc.List == nil {
			hasDefault = true
		}
	}
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		b.cur = bodies[i]
		for _, e := range cc.List {
			b.add(e)
		}
		if typeAssign != nil {
			b.stmt(typeAssign, "")
		}
		fallsThrough := false
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				continue
			}
			b.stmt(st, "")
		}
		if fallsThrough && i+1 < len(bodies) {
			b.jump(bodies[i+1])
		} else {
			b.jump(after)
		}
	}
	if !hasDefault {
		head.succs = append(head.succs, after)
	}
	b.popBreak()
	b.cur = after
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *block) {
	b.breakTargets = append(b.breakTargets, &labeledTarget{label: label, block: brk})
	b.continueTargets = append(b.continueTargets, &labeledTarget{label: label, block: cont})
}

func (b *cfgBuilder) popLoop() {
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
}

func (b *cfgBuilder) pushBreak(label string, brk *block) {
	b.breakTargets = append(b.breakTargets, &labeledTarget{label: label, block: brk})
}

func (b *cfgBuilder) popBreak() {
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
}

// findTarget resolves a break/continue target: the innermost entry, or
// the one carrying the label.
func (b *cfgBuilder) findTarget(stack []*labeledTarget, label *ast.Ident) *block {
	if label == nil {
		if len(stack) == 0 {
			return nil
		}
		return stack[len(stack)-1].block
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].label == label.Name {
			return stack[i].block
		}
	}
	return nil
}

// gotoTarget returns (creating on first reference) the block a label
// names, so forward gotos resolve.
func (b *cfgBuilder) gotoTarget(name string) *block {
	if blk, ok := b.gotoTargets[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.gotoTargets[name] = blk
	return blk
}
