package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// parseFuncCFG type-checks a snippet (wrapped in a fixed package prelude
// with src/sink/clean helpers), finds func f, and builds its CFG.
func parseFuncCFG(t *testing.T, body string) (*token.FileSet, *funcCFG, *types.Info) {
	t.Helper()
	src := `package p

func src() int   { return 1 }
func sink(x int) {}
func clean() int { return 0 }

func f(n int, c bool) {
` + body + `
}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := newTypesInfo()
	conf := types.Config{}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("type-check: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			return fset, buildCFG(fd.Body), info
		}
	}
	t.Fatal("func f not found")
	return nil, nil, nil
}

// blocksContaining returns the blocks holding a node satisfying pred.
func blocksContaining(g *funcCFG, pred func(ast.Node) bool) []*block {
	var out []*block
	for _, b := range g.blocks {
		for _, n := range b.nodes {
			if pred(n) {
				out = append(out, b)
				break
			}
		}
	}
	return out
}

func isCallTo(n ast.Node, name string) bool {
	es, ok := n.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == name
}

// TestCFGIfElseJoin pins the branch shape: the condition block forks to
// both arms, and both arms rejoin before the trailing statement.
func TestCFGIfElseJoin(t *testing.T) {
	_, g, _ := parseFuncCFG(t, `
	if c {
		src()
	} else {
		clean()
	}
	sink(n)
`)
	conds := blocksContaining(g, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		return ok && id.Name == "c"
	})
	if len(conds) != 1 {
		t.Fatalf("condition blocks = %d, want 1", len(conds))
	}
	if got := len(conds[0].succs); got != 2 {
		t.Fatalf("condition block successors = %d, want 2 (then, else)", got)
	}
	thenBlk := blocksContaining(g, func(n ast.Node) bool { return isCallTo(n, "src") })
	elseBlk := blocksContaining(g, func(n ast.Node) bool { return isCallTo(n, "clean") })
	joinBlk := blocksContaining(g, func(n ast.Node) bool { return isCallTo(n, "sink") })
	if len(thenBlk) != 1 || len(elseBlk) != 1 || len(joinBlk) != 1 {
		t.Fatalf("arm/join blocks: then=%d else=%d join=%d, want 1 each", len(thenBlk), len(elseBlk), len(joinBlk))
	}
	for _, arm := range []*block{thenBlk[0], elseBlk[0]} {
		if len(arm.succs) != 1 || arm.succs[0] != joinBlk[0] {
			t.Errorf("arm block %d does not jump straight to the join", arm.index)
		}
	}
}

// TestCFGForContinueTargetsPost pins the loop shape that once had a bug:
// continue must route through the post statement (the induction update),
// not jump straight to the head.
func TestCFGForContinueTargetsPost(t *testing.T) {
	_, g, _ := parseFuncCFG(t, `
	for i := 0; i < n; i++ {
		if c {
			continue
		}
		sink(i)
	}
`)
	posts := blocksContaining(g, func(n ast.Node) bool {
		_, ok := n.(*ast.IncDecStmt)
		return ok
	})
	if len(posts) != 1 {
		t.Fatalf("post blocks = %d, want 1", len(posts))
	}
	post := posts[0]
	heads := blocksContaining(g, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		return ok && be.Op == token.LSS
	})
	if len(heads) != 1 {
		t.Fatalf("head blocks = %d, want 1", len(heads))
	}
	if len(post.succs) != 1 || post.succs[0] != heads[0] {
		t.Fatalf("post block must have the back edge to the loop head")
	}
	preds := 0
	for _, b := range g.blocks {
		for _, s := range b.succs {
			if s == post {
				preds++
			}
		}
	}
	if preds != 2 {
		t.Errorf("post block predecessors = %d, want 2 (fallthrough body end and continue)", preds)
	}
}

// TestCFGDeferLIFO pins defer semantics: every deferred call is appended
// to the exit block as a deferRun, last registered first.
func TestCFGDeferLIFO(t *testing.T) {
	_, g, _ := parseFuncCFG(t, `
	defer src()
	defer clean()
	sink(n)
`)
	var order []string
	for _, n := range g.exit.nodes {
		dr, ok := n.(*deferRun)
		if !ok {
			continue
		}
		order = append(order, dr.call.Fun.(*ast.Ident).Name)
	}
	if strings.Join(order, ",") != "clean,src" {
		t.Errorf("exit deferRun order = %v, want [clean src] (LIFO)", order)
	}
}

// TestCFGPanicPath pins that an explicit panic ends the path in panicExit,
// not exit: code after it is a fresh (unreachable) block and the panic
// path never reaches the leak check at exit.
func TestCFGPanicPath(t *testing.T) {
	_, g, _ := parseFuncCFG(t, `
	if c {
		panic("boom")
	}
	sink(n)
`)
	panics := blocksContaining(g, func(n ast.Node) bool { return isCallTo(n, "panic") })
	if len(panics) != 1 {
		t.Fatalf("panic blocks = %d, want 1", len(panics))
	}
	if len(panics[0].succs) != 1 || panics[0].succs[0] != g.panicExit {
		t.Errorf("panic block must jump to panicExit")
	}
}

// miniTaint runs a toy taint analysis over f's CFG: src() taints, plain
// values clean, sink(x) records the line when x is tainted. It exercises
// the dataflow engine (fixpoint, join, report pass, deferRun) without any
// analyzer on top.
func miniTaint(t *testing.T, body string) []int {
	t.Helper()
	fset, g, info := parseFuncCFG(t, body)
	var hits []int

	isSrcCall := func(e ast.Expr) bool {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "src"
	}
	taintedExpr := func(e ast.Expr, f facts) bool {
		found := false
		inspectShallow(e, func(m ast.Node) bool {
			if isSrc, ok := m.(*ast.CallExpr); ok && isSrcCall(isSrc) {
				found = true
			}
			if id, ok := m.(*ast.Ident); ok {
				if v, ok := objOf(info, id).(*types.Var); ok && f.get(v) == 1 {
					found = true
				}
			}
			return true
		})
		return found
	}
	checkSink := func(n ast.Node, f facts, report bool) {
		inspectShallow(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "sink" {
				for _, arg := range call.Args {
					if taintedExpr(arg, f) && report {
						hits = append(hits, fset.Position(call.Pos()).Line)
					}
				}
			}
			return true
		})
	}

	fa := &flowAnalysis{
		transfer: func(n ast.Node, f facts, report bool) {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return
				}
				for i, lhs := range n.Lhs {
					v := localVar(info, lhs)
					if v == nil {
						continue
					}
					if taintedExpr(n.Rhs[i], f) {
						f.set(v, 1)
					} else {
						f.set(v, 0)
					}
				}
			case *ast.DeferStmt:
				// Checked at exit via deferRun, with exit facts.
			case *deferRun:
				checkSink(n.call, f, report)
			default:
				checkSink(n, f, report)
			}
		},
		join: func(a, b fact) fact {
			if a == 1 || b == 1 {
				return 1
			}
			return 0
		},
	}
	fa.run(g)
	return hits
}

// TestDataflowBranchJoin: taint acquired on one branch survives the join.
func TestDataflowBranchJoin(t *testing.T) {
	hits := miniTaint(t, `
	x := 0
	if c {
		x = src()
	}
	sink(x)
`)
	if len(hits) != 1 {
		t.Fatalf("sink hits = %v, want exactly one (taint joins from the then-branch)", hits)
	}
}

// TestDataflowStrongUpdate: overwriting with a clean value clears taint.
func TestDataflowStrongUpdate(t *testing.T) {
	hits := miniTaint(t, `
	x := src()
	x = clean()
	sink(x)
`)
	if len(hits) != 0 {
		t.Fatalf("sink hits = %v, want none (strong update cleared the taint)", hits)
	}
}

// TestDataflowLoopBackEdge: a sink at the top of a loop body sees taint
// assigned later in the body — only the fixpoint through the back edge
// finds this.
func TestDataflowLoopBackEdge(t *testing.T) {
	hits := miniTaint(t, `
	x := 0
	for i := 0; i < n; i++ {
		sink(x)
		x = src()
	}
`)
	if len(hits) != 1 {
		t.Fatalf("sink hits = %v, want one (taint flows around the back edge)", hits)
	}
}

// TestDataflowLoopClean: a value cleaned every iteration never reaches
// the sink tainted, even through the back edge.
func TestDataflowLoopClean(t *testing.T) {
	hits := miniTaint(t, `
	x := 0
	for i := 0; i < n; i++ {
		x = src()
		x = clean()
	}
	sink(x)
`)
	if len(hits) != 0 {
		t.Fatalf("sink hits = %v, want none", hits)
	}
}

// TestDataflowDeferSeesExitFacts: a deferred sink observes the facts at
// function exit (may-run semantics), not at the defer site.
func TestDataflowDeferSeesExitFacts(t *testing.T) {
	hits := miniTaint(t, `
	x := 0
	defer sink(x)
	x = src()
`)
	if len(hits) != 1 {
		t.Fatalf("sink hits = %v, want one (deferred call runs with exit facts)", hits)
	}
}
