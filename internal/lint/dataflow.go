package lint

import (
	"go/ast"
	"go/types"
	"maps"
)

// This file implements the forward-dataflow engine the flow-sensitive
// analyzers run over funcCFG. The abstract state is a map from variables
// (types.Object) to a small per-analysis fact value; the engine iterates
// block transfer functions to a fixpoint and then performs one reporting
// pass with the converged entry facts, so diagnostics fire exactly once
// per offending node.

// fact is one lattice value attached to one variable. The meaning of the
// values is private to each analysis; 0 (the absent map entry) must mean
// "nothing known".
type fact uint8

// facts maps tracked variables to their current fact. The zero entry is
// never stored: setting a variable to 0 deletes it.
type facts map[types.Object]fact

func (f facts) get(o types.Object) fact { return f[o] }

func (f facts) set(o types.Object, v fact) {
	if v == 0 {
		delete(f, o)
	} else {
		f[o] = v
	}
}

// flowAnalysis is one forward dataflow problem.
type flowAnalysis struct {
	// transfer applies the effect of one atomic CFG node to the state.
	// When report is true the converged facts are flowing through and
	// the transfer function may call Reportf; diagnostics must only be
	// issued in that mode.
	transfer func(n ast.Node, f facts, report bool)
	// join merges one variable's facts from two predecessor paths.
	// It must be commutative; the engine applies it pointwise. A zero
	// result drops the variable.
	join func(a, b fact) fact
}

// maxIterations caps fixpoint iteration as a defence against a
// non-monotone transfer function; real functions converge in a handful
// of passes (nesting depth of the loops).
const maxIterations = 64

// run iterates the analysis to a fixpoint over the CFG and then makes the
// reporting pass. It returns the facts at the end of the exit block, so
// callers can implement "must hold at function exit" checks.
func (fa *flowAnalysis) run(g *funcCFG) facts {
	in := make(map[*block]facts, len(g.blocks))
	out := make(map[*block]facts, len(g.blocks))
	preds := make(map[*block][]*block, len(g.blocks))
	for _, b := range g.blocks {
		for _, s := range b.succs {
			preds[s] = append(preds[s], b)
		}
	}

	changed := true
	for iter := 0; changed && iter < maxIterations; iter++ {
		changed = false
		for _, b := range g.blocks {
			newIn := make(facts)
			if b == g.entry {
				// entry has no facts.
			}
			for _, p := range preds[b] {
				fa.merge(newIn, out[p])
			}
			newOut := maps.Clone(newIn)
			for _, n := range b.nodes {
				fa.transfer(n, newOut, false)
			}
			if !maps.Equal(newIn, in[b]) || !maps.Equal(newOut, out[b]) {
				changed = true
			}
			in[b], out[b] = newIn, newOut
		}
	}

	// Reporting pass: re-run each block's transfers from its converged
	// entry facts with reporting enabled.
	for _, b := range g.blocks {
		f := maps.Clone(in[b])
		if f == nil {
			f = make(facts)
		}
		for _, n := range b.nodes {
			fa.transfer(n, f, true)
		}
	}

	exit := maps.Clone(in[g.exit])
	if exit == nil {
		exit = make(facts)
	}
	for _, n := range g.exit.nodes {
		fa.transfer(n, exit, false)
	}
	return exit
}

// merge folds src into dst pointwise with the analysis join.
func (fa *flowAnalysis) merge(dst, src facts) {
	for o, v := range src {
		if cur, ok := dst[o]; ok {
			dst.set(o, fa.join(cur, v))
		} else {
			dst.set(o, fa.join(0, v))
		}
	}
}

// inspectShallow walks n without descending into function literals.
// Nested literals are separate functions: their bodies run at another
// time (or never), so flow facts must not leak across the boundary. The
// visitor receives each literal once (and then the walk skips its body),
// letting callers model capture/escape explicitly.
//
// The CFG's synthetic wrappers are unwrapped here so transfer functions
// that fall through to a generic scan never hand ast.Inspect a node type
// it cannot walk: a deferRun scans its call, a rangeHead scans the
// ranged expression and the iteration variables (never the loop body,
// which is its own block).
func inspectShallow(n ast.Node, visit func(ast.Node) bool) {
	switch n := n.(type) {
	case *deferRun:
		inspectShallow(n.call, visit)
		return
	case *rangeHead:
		inspectShallow(n.stmt.X, visit)
		if n.stmt.Key != nil {
			inspectShallow(n.stmt.Key, visit)
		}
		if n.stmt.Value != nil {
			inspectShallow(n.stmt.Value, visit)
		}
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return true
		}
		if m == n {
			return visit(m)
		}
		if _, ok := m.(*ast.FuncLit); ok {
			visit(m)
			return false
		}
		return visit(m)
	})
}

// objOf resolves an identifier to its object, following uses and defs.
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// localVar returns the *types.Var for an identifier naming a
// function-local variable (not a field, not package-level), or nil.
func localVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := objOf(info, id).(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	if v.Parent() != nil && v.Parent().Parent() == types.Universe {
		return nil // package-level
	}
	return v
}
