package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetFlow is a forward taint analysis over the function CFG: values
// derived from nondeterministic sources must never reach the engine's
// scheduling interface or exported result fields, or the run stops being
// a pure function of its seed.
//
// Taint sources:
//
//   - time.Now / time.Since (wall clock)
//   - the process-global math/rand functions and newly constructed
//     sources (rand.New…) — engine-injected *rand.Rand draws are clean
//   - channel receives (<-ch): goroutine scheduling order is ambient
//   - the key/value variables of a `range` over a map: Go randomizes
//     visit order, so per-iteration values are order-dependent
//
// Taint sinks:
//
//   - arguments of Engine.Schedule / ScheduleArg / After / AfterArg /
//     RunUntil / RunFor and Timer.Reset / ResetAt (matched by method name
//     on a receiver named Engine / Timer)
//   - assignments into exported struct fields (the run's published
//     results)
//
// Propagation is by assignment and expression composition; calls launder
// taint (their results are assumed clean — callees are checked in their
// own right), so the analysis stays intra-procedural. Order-insensitive
// folds over maps that feed a sink carry //dtlint:allow detflow with the
// proof, mirroring maporder.
var DetFlow = &Analyzer{
	Name: "detflow",
	Doc:  "forbid nondeterministic values from reaching engine scheduling or exported result fields",
	Applies: appliesTo(
		"dtdctcp/internal/sim",
		"dtdctcp/internal/netsim",
		"dtdctcp/internal/aqm",
		"dtdctcp/internal/tcp",
		"dtdctcp/internal/core",
		"dtdctcp/internal/chaos",
		"dtdctcp/internal/workload",
	),
	Run: runDetFlow,
}

const tainted fact = 1

func runDetFlow(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDetFlow(pass, fd)
		}
	}
	return nil
}

func checkDetFlow(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	g := buildCFG(fd.Body)

	transfer := func(n ast.Node, f facts, report bool) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// Sinks and nested sources on the RHS first.
			for _, rhs := range n.Rhs {
				visitTaintSinks(pass, rhs, f, report)
			}
			transferTaintAssign(pass, n, f, report)

		case *rangeHead:
			rs := n.stmt
			if t := info.TypeOf(rs.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					taintLHS(info, rs.Key, f)
					taintLHS(info, rs.Value, f)
					return
				}
			}
			// Deterministic ranges (slices, channels would be flagged at
			// the receive, integers): loop vars take the element taint of
			// the ranged expression.
			if exprTainted(info, rs.X, f) {
				taintLHS(info, rs.Key, f)
				taintLHS(info, rs.Value, f)
			} else {
				clearLHS(info, rs.Key, f)
				clearLHS(info, rs.Value, f)
			}

		case *deferRun:
			// Arguments were evaluated (and checked) at the defer site.

		default:
			visitTaintSinks(pass, n, f, report)
		}
	}

	join := func(a, b fact) fact {
		if a == tainted || b == tainted {
			return tainted
		}
		return 0
	}

	fa := &flowAnalysis{transfer: transfer, join: join}
	fa.run(g)
}

// transferTaintAssign propagates taint through an assignment, with
// strong updates for single-variable targets.
func transferTaintAssign(pass *Pass, as *ast.AssignStmt, f facts, report bool) {
	info := pass.TypesInfo
	if len(as.Lhs) == len(as.Rhs) {
		for i, lhs := range as.Lhs {
			t := exprTainted(info, as.Rhs[i], f)
			// Compound assignment (+=, |=, …) folds the previous value in.
			if as.Tok != token.ASSIGN && as.Tok != token.DEFINE && exprTainted(info, lhs, f) {
				t = true
			}
			assignTaint(pass, lhs, t, f, report)
		}
		return
	}
	// Tuple assignment from a call or comma-ok: a, b := f() / v, ok := <-ch.
	t := false
	for _, rhs := range as.Rhs {
		if exprTainted(info, rhs, f) {
			t = true
		}
	}
	for _, lhs := range as.Lhs {
		assignTaint(pass, lhs, t, f, report)
	}
}

// assignTaint applies taint to an assignment target: identifiers get
// strong updates; stores into exported struct fields are sinks.
func assignTaint(pass *Pass, lhs ast.Expr, t bool, f facts, report bool) {
	info := pass.TypesInfo
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if v, ok := objOf(info, lhs).(*types.Var); ok {
			if t {
				f.set(v, tainted)
			} else {
				f.set(v, 0)
			}
		}
	case *ast.SelectorExpr:
		if v, ok := objOf(info, lhs.Sel).(*types.Var); ok && v.IsField() && ast.IsExported(lhs.Sel.Name) {
			if t && report {
				pass.Reportf(lhs.Pos(),
					"nondeterministic value stored in exported field %s: results must be a pure function of the seed; derive the value from engine state instead", lhs.Sel.Name)
			}
			return
		}
		// Unexported field: track by field object (weak but useful).
		if v, ok := objOf(info, lhs.Sel).(*types.Var); ok && v.IsField() {
			if t {
				f.set(v, tainted)
			} else {
				f.set(v, 0)
			}
		}
	}
}

func taintLHS(info *types.Info, e ast.Expr, f facts) {
	if e == nil {
		return
	}
	if id, ok := e.(*ast.Ident); ok {
		if v, ok := objOf(info, id).(*types.Var); ok {
			f.set(v, tainted)
		}
	}
}

func clearLHS(info *types.Info, e ast.Expr, f facts) {
	if e == nil {
		return
	}
	if id, ok := e.(*ast.Ident); ok {
		if v, ok := objOf(info, id).(*types.Var); ok {
			f.set(v, 0)
		}
	}
}

// visitTaintSinks scans a node for scheduling calls whose arguments are
// tainted.
func visitTaintSinks(pass *Pass, n ast.Node, f facts, report bool) {
	info := pass.TypesInfo
	inspectShallow(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, method := schedulingSink(info, call)
		if recv == "" {
			return true
		}
		for _, arg := range call.Args {
			if exprTainted(info, arg, f) && report {
				pass.Reportf(arg.Pos(),
					"nondeterministic value reaches %s.%s: event timing must be a pure function of the seed; derive it from Engine.Now/Engine.Rand", recv, method)
			}
		}
		return true
	})
}

// schedulingSink matches engine/timer scheduling calls by method name and
// receiver type name; returns ("", "") for non-sinks.
func schedulingSink(info *types.Info, call *ast.CallExpr) (recvType, method string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	var sinkMethods = map[string]bool{
		"Schedule": true, "ScheduleArg": true, "After": true, "AfterArg": true,
		"RunUntil": true, "RunFor": true, "Reset": true, "ResetAt": true,
	}
	if !sinkMethods[sel.Sel.Name] {
		return "", ""
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return "", ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	name := named.Obj().Name()
	if name != "Engine" && name != "Timer" {
		return "", ""
	}
	return name, sel.Sel.Name
}

// exprTainted reports whether evaluating e yields a taint-carrying value
// under the current facts.
func exprTainted(info *types.Info, e ast.Expr, f facts) bool {
	if e == nil {
		return false
	}
	found := false
	inspectShallow(e, func(m ast.Node) bool {
		if found {
			return false
		}
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			if v, ok := objOf(info, m).(*types.Var); ok && f.get(v) == tainted {
				found = true
			}
		case *ast.SelectorExpr:
			// Field read on a tainted struct, or tainted tracked field.
			if v, ok := objOf(info, m.Sel).(*types.Var); ok && v.IsField() && f.get(v) == tainted {
				found = true
			}
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				found = true // channel receive: goroutine result
			}
		case *ast.CallExpr:
			if nondetSourceCall(info, m) {
				found = true
				return false
			}
			// Ordinary calls launder taint: do not descend into the
			// callee, but arguments feeding the call were already
			// checked as sinks; keep scanning them for sources.
		}
		return true
	})
	return found
}

// nondetSourceCall matches the ambient-entropy calls: time.Now,
// time.Since, and anything in the process-global math/rand API.
func nondetSourceCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	switch pkgName.Imported().Path() {
	case "time":
		return sel.Sel.Name == "Now" || sel.Sel.Name == "Since"
	case "math/rand", "math/rand/v2":
		// Every package-level entry point draws from ambient state (or
		// constructs a source outside the engine's seed).
		return true
	}
	return false
}
