package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp flags == and != between floating-point operands in the numeric
// analysis packages, where values come out of iterative solvers and
// transcendental functions and exact equality is almost never the intended
// predicate. Compare against a tolerance (math.Abs(a-b) <= eps), or
// annotate with //dtlint:allow floatcmp when bit-exactness is genuinely
// meant (e.g. comparing against a sentinel that is assigned, never
// computed). The x != x NaN idiom is recognized and allowed.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "flag exact float equality in the numeric analysis packages",
	Applies: appliesTo(
		"dtdctcp/internal/control",
		"dtdctcp/internal/fluid",
	),
	Run: runFloatCmp,
}

func runFloatCmp(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.TypesInfo.TypeOf(be.X)) || !isFloat(pass.TypesInfo.TypeOf(be.Y)) {
				return true
			}
			// x != x is the deliberate NaN test; leave it alone.
			if be.Op == token.NEQ && sameIdent(be.X, be.Y) {
				return true
			}
			pass.Reportf(be.OpPos,
				"exact %s on floating-point values; compare with a tolerance or annotate why bit-exactness is intended", be.Op)
			return true
		})
	}
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func sameIdent(x, y ast.Expr) bool {
	xi, okx := x.(*ast.Ident)
	yi, oky := y.(*ast.Ident)
	return okx && oky && xi.Name == yi.Name
}
