package lint

import (
	"slices"
	"strings"
	"testing"
)

// FuzzAllowParse hammers the //dtlint:allow grammar: arbitrary comment
// text must never panic the parser, and every successful parse must obey
// the structural invariants the suppression index and the framework
// diagnostics rely on.
func FuzzAllowParse(f *testing.F) {
	seeds := []string{
		"//dtlint:allow nondeterm: the one seeded root source",
		"//dtlint:allow alpha,beta -- two analyzers at once",
		"//dtlint:allow maporder: fixpoint, order-insensitive",
		"//dtlint:allow",
		"//dtlint:allow hotalloc:",
		"//dtlint:allow : reason with no name",
		"//dtlint:allowance is not an annotation",
		"// plain comment",
		"//dtlint:hotpath",
		"//dtlint:allow a-b: hyphenated name before colon",
		"//dtlint:allow a--b",
		"//\tdtlint:allow simtime\t--\ttabs everywhere",
		"//dtlint:allow x: reason: with: colons",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		names, reason, ok := parseAllowComment(text)
		if !ok {
			if len(names) != 0 || reason != "" {
				t.Fatalf("ok=false must return empty parts, got names=%q reason=%q", names, reason)
			}
			return
		}
		// Anything recognized as an annotation really contains the marker.
		if !strings.Contains(text, allowMarker) {
			t.Fatalf("parsed %q as an annotation without the marker", text)
		}
		for _, n := range names {
			if n == "" || n != strings.TrimSpace(n) {
				t.Fatalf("name %q not trimmed/non-empty in %q", n, text)
			}
			if strings.Contains(n, ",") {
				t.Fatalf("name %q contains the list separator", n)
			}
		}
		if reason != strings.TrimSpace(reason) {
			t.Fatalf("reason %q not trimmed", reason)
		}
		// Round trip: re-rendering a well-formed annotation in canonical
		// form must parse back to the same parts.
		if len(names) > 0 && reason != "" {
			canon := "//" + allowMarker + " " + strings.Join(names, ",") + ": " + reason
			n2, r2, ok2 := parseAllowComment(canon)
			if !ok2 || !slices.Equal(n2, names) || r2 != reason {
				t.Fatalf("round trip of %q: got names=%q reason=%q ok=%v, want names=%q reason=%q",
					canon, n2, r2, ok2, names, reason)
			}
		}
	})
}
