package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc forbids allocation-inducing constructs inside functions
// annotated //dtlint:hotpath — the static complement of the
// testing.AllocsPerRun pins: the runtime tests prove the steady state is
// zero-alloc, this analyzer names the construct that would regress it.
//
// Flagged constructs:
//
//   - closures capturing enclosing variables (the capture record heaps)
//   - interface boxing: a non-pointer-shaped concrete value converted to
//     an interface type in a call argument, assignment, or return
//   - calls with non-empty variadic arguments (the argument slice heaps)
//   - append (growth reallocates the backing array)
//   - make, new, &T{…}, and map/slice composite literals
//   - string concatenation (+ / += on strings)
//
// Cold sub-paths inside a hot function — a pool-miss constructor, an
// amortized append into retained capacity — carry
// //dtlint:allow hotalloc: <reason>, which documents the allocation
// budget where it is spent. The check is not transitive: a call to a
// function that allocates internally is that function's business — pin
// it with its own annotation and alloc test.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "forbid allocation-inducing constructs in //dtlint:hotpath functions",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	for _, hf := range pass.HotFuncs() {
		checkHotBody(pass, hf)
	}
	return nil
}

func checkHotBody(pass *Pass, hf hotFunc) {
	info := pass.TypesInfo
	ast.Inspect(hf.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal nested in a hot body is built on the hot path:
			// if it captures, the capture record allocates here. Its own
			// body is a different execution context; only analyze it if
			// it carries its own annotation.
			if caps := capturedVars(info, n, hf.Body); len(caps) > 0 {
				pass.Reportf(n.Pos(),
					"closure captures %s and allocates on the hot path (%s); hoist the closure to construction time or pass state through ScheduleArg",
					caps[0].Name(), hf.Name)
			}
			return false

		case *ast.CallExpr:
			checkHotCall(pass, hf, n)

		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(),
					"map literal allocates on the hot path (%s); hoist the map to construction time", hf.Name)
			case *types.Slice:
				pass.Reportf(n.Pos(),
					"slice literal allocates on the hot path (%s); hoist the slice to construction time or use a fixed array", hf.Name)
			}

		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(),
						"&composite literal allocates on the hot path (%s); recycle from a pool or preallocate", hf.Name)
				}
			}

		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info.TypeOf(n.X)) && !isConstant(info, n) {
				pass.Reportf(n.OpPos,
					"string concatenation allocates on the hot path (%s); precompute the string or use a fixed buffer", hf.Name)
			}

		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(info.TypeOf(n.Lhs[0])) {
				pass.Reportf(n.TokPos,
					"string += allocates on the hot path (%s); precompute the string or use a fixed buffer", hf.Name)
			}
			checkHotAssign(pass, hf, n)

		case *ast.ReturnStmt:
			checkHotReturn(pass, hf, n)

		case *ast.ValueSpec:
			checkHotValueSpec(pass, hf, n)
		}
		return true
	})
}

// checkHotCall handles builtins (append/make/new), variadic argument
// slices, interface boxing of arguments, and conversions to interface
// types.
func checkHotCall(pass *Pass, hf hotFunc, call *ast.CallExpr) {
	info := pass.TypesInfo

	if id, ok := call.Fun.(*ast.Ident); ok {
		switch {
		case isBuiltin(info, id, "append"):
			pass.Reportf(call.Pos(),
				"append may grow the backing array on the hot path (%s); preallocate capacity or annotate the amortized case", hf.Name)
			return
		case isBuiltin(info, id, "make"):
			pass.Reportf(call.Pos(),
				"make allocates on the hot path (%s); hoist to construction time", hf.Name)
			return
		case isBuiltin(info, id, "new"):
			pass.Reportf(call.Pos(),
				"new allocates on the hot path (%s); recycle from a pool or preallocate", hf.Name)
			return
		case isBuiltin(info, id, "panic"), isBuiltin(info, id, "recover"),
			isBuiltin(info, id, "len"), isBuiltin(info, id, "cap"),
			isBuiltin(info, id, "delete"), isBuiltin(info, id, "copy"),
			isBuiltin(info, id, "print"), isBuiltin(info, id, "println"),
			isBuiltin(info, id, "min"), isBuiltin(info, id, "max"),
			isBuiltin(info, id, "clear"):
			return
		}
	}

	tv, ok := info.Types[call.Fun]
	if ok && tv.IsType() {
		// Conversion T(x): boxing when T is an interface.
		if isInterface(tv.Type) && len(call.Args) == 1 && boxes(info, call.Args[0]) {
			pass.Reportf(call.Pos(),
				"conversion to interface boxes a %s on the hot path (%s)", typeName(info.TypeOf(call.Args[0])), hf.Name)
		}
		return
	}

	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	np := params.Len()
	for i, arg := range call.Args {
		var paramType types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no repack
			}
			if i == np-1 {
				pass.Reportf(arg.Pos(),
					"variadic call allocates its argument slice on the hot path (%s); use a fixed-arity helper", hf.Name)
			}
			paramType = params.At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			paramType = params.At(i).Type()
		default:
			continue
		}
		if isInterface(paramType) && boxes(info, arg) {
			pass.Reportf(arg.Pos(),
				"argument boxes a %s into an interface on the hot path (%s); pass a pointer or a concrete type", typeName(info.TypeOf(arg)), hf.Name)
		}
	}
}

// checkHotAssign flags interface boxing on assignment: an interface-typed
// LHS receiving a non-pointer-shaped concrete RHS.
func checkHotAssign(pass *Pass, hf hotFunc, as *ast.AssignStmt) {
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		return
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	info := pass.TypesInfo
	for i, lhs := range as.Lhs {
		var lt types.Type
		if as.Tok == token.DEFINE {
			if id, ok := lhs.(*ast.Ident); ok {
				if o := info.Defs[id]; o != nil {
					lt = o.Type()
				}
			}
		}
		if lt == nil {
			lt = info.TypeOf(lhs)
		}
		if lt != nil && isInterface(lt) && boxes(info, as.Rhs[i]) {
			pass.Reportf(as.Rhs[i].Pos(),
				"assignment boxes a %s into an interface on the hot path (%s)", typeName(info.TypeOf(as.Rhs[i])), hf.Name)
		}
	}
}

// checkHotReturn flags interface boxing of return values.
func checkHotReturn(pass *Pass, hf hotFunc, ret *ast.ReturnStmt) {
	fnType := enclosingResults(pass, hf)
	if fnType == nil || fnType.Len() != len(ret.Results) {
		return
	}
	for i, r := range ret.Results {
		if isInterface(fnType.At(i).Type()) && boxes(pass.TypesInfo, r) {
			pass.Reportf(r.Pos(),
				"return boxes a %s into an interface on the hot path (%s)", typeName(pass.TypesInfo.TypeOf(r)), hf.Name)
		}
	}
}

// checkHotValueSpec flags `var x I = v` boxing.
func checkHotValueSpec(pass *Pass, hf hotFunc, vs *ast.ValueSpec) {
	info := pass.TypesInfo
	for i, name := range vs.Names {
		if i >= len(vs.Values) {
			break
		}
		o := info.Defs[name]
		if o == nil {
			continue
		}
		if isInterface(o.Type()) && boxes(info, vs.Values[i]) {
			pass.Reportf(vs.Values[i].Pos(),
				"declaration boxes a %s into an interface on the hot path (%s)", typeName(info.TypeOf(vs.Values[i])), hf.Name)
		}
	}
}

// enclosingResults returns the result tuple of the hot function.
func enclosingResults(pass *Pass, hf hotFunc) *types.Tuple {
	switch n := hf.Node.(type) {
	case *ast.FuncDecl:
		if o, ok := pass.TypesInfo.Defs[n.Name].(*types.Func); ok {
			return o.Type().(*types.Signature).Results()
		}
	case *ast.FuncLit:
		if sig, ok := pass.TypesInfo.TypeOf(n).(*types.Signature); ok {
			return sig.Results()
		}
	}
	return nil
}

// boxes reports whether passing e where an interface is expected heaps a
// copy: the static type is concrete and not pointer-shaped. nil and
// interface-typed expressions convert without allocation; pointers,
// channels, maps, and funcs fit in the interface word directly.
func boxes(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.IsNil() {
		return false
	}
	t := tv.Type
	if t == nil || isInterface(t) {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return false
	}
	return true
}

func isInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isConstant(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

func isBuiltin(info *types.Info, id *ast.Ident, name string) bool {
	if id.Name != name {
		return false
	}
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}

// capturedVars lists variables a function literal references that are
// declared outside it (but inside the enclosing function body) — the
// captures that force the closure onto the heap.
func capturedVars(info *types.Info, lit *ast.FuncLit, enclosing *ast.BlockStmt) []*types.Var {
	var out []*types.Var
	seen := make(map[*types.Var]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		// Declared inside the literal (params, locals): not a capture.
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true
		}
		// Package-level variables are shared, not captured.
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true
		}
		seen[v] = true
		out = append(out, v)
		return true
	})
	return out
}

func typeName(t types.Type) string {
	if t == nil {
		return "value"
	}
	return t.String()
}
