// Package lint implements dtlint, the repository's custom static-analysis
// suite. The simulator's headline claims are only reproducible when every
// run is a pure function of its seed; dtlint turns that discipline — and a
// few neighbouring correctness rules — from code-review folklore into
// mechanically checked invariants.
//
// The suite ships four analyzers (see their Doc strings and README.md):
//
//	nondeterm — wall-clock time and ambient randomness in simulator code
//	maporder  — map iteration on event-scheduling / packet-ordering paths
//	floatcmp  — exact float equality in the numeric analysis packages
//	simtime   — raw numeric literals materializing as sim.Time
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer, Pass, Reportf) but is built on the standard library alone:
// packages are enumerated with `go list -json` and type-checked with
// go/types using the source importer, so the tool works offline with no
// third-party dependencies.
//
// A finding can be suppressed — with a justification — by an annotation on
// the offending line or the line directly above it:
//
//	//dtlint:allow nondeterm -- the one seeded root source
//
// Run the suite with `go run ./cmd/dtlint ./...`.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package, mirroring
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //dtlint:allow
	// annotations.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Applies filters packages by import path; nil means every package.
	Applies func(importPath string) bool
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset resolves token positions for every file of the pass.
	Fset *token.FileSet
	// Files are the package's parsed non-test source files.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's expression annotations.
	TypesInfo *types.Info

	allow allowIndex
	diags *[]Diagnostic
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Analyzer names the check that fired.
	Analyzer string
	// Message explains the finding and the expected fix.
	Message string
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos unless a //dtlint:allow annotation for
// this analyzer covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allow.allows(position, p.Analyzer.Name) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full dtlint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{NonDeterm, MapOrder, FloatCmp, SimTime}
}

// Run applies the analyzers to the loaded packages and returns the merged
// findings sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allow := buildAllowIndex(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			if a.Applies != nil && !a.Applies(pkg.ImportPath) {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				allow:     allow,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// appliesTo builds an Applies filter matching the given import paths and
// anything below them.
func appliesTo(paths ...string) func(string) bool {
	return func(p string) bool {
		for _, q := range paths {
			if p == q || strings.HasPrefix(p, q+"/") {
				return true
			}
		}
		return false
	}
}

// allowIndex maps filename → line → analyzer names a //dtlint:allow
// annotation covers. An annotation covers its own line and the line below
// it, so both same-line and line-above placements work.
type allowIndex map[string]map[int]map[string]bool

func (ai allowIndex) allows(pos token.Position, analyzer string) bool {
	lines := ai[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][analyzer] || lines[pos.Line-1][analyzer]
}

const allowMarker = "dtlint:allow"

func buildAllowIndex(fset *token.FileSet, files []*ast.File) allowIndex {
	idx := make(allowIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				body := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				text, ok := strings.CutPrefix(body, allowMarker)
				if !ok {
					continue
				}
				// Everything after "--" is the human justification.
				names, _, _ := strings.Cut(text, "--")
				pos := fset.Position(c.Pos())
				lines := idx[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					idx[pos.Filename] = lines
				}
				set := lines[pos.Line]
				if set == nil {
					set = make(map[string]bool)
					lines[pos.Line] = set
				}
				for _, n := range strings.Split(names, ",") {
					if n = strings.TrimSpace(n); n != "" {
						set[n] = true
					}
				}
			}
		}
	}
	return idx
}
