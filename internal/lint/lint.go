// Package lint implements dtlint, the repository's custom static-analysis
// suite. The simulator's headline claims are only reproducible when every
// run is a pure function of its seed; dtlint turns that discipline — and a
// few neighbouring correctness rules — from code-review folklore into
// mechanically checked invariants.
//
// The suite ships eight analyzers (see their Doc strings and README.md).
// Four are syntax/type-level:
//
//	nondeterm — wall-clock time and ambient randomness in simulator code
//	maporder  — map iteration on event-scheduling / packet-ordering paths
//	floatcmp  — exact float equality in the numeric analysis packages
//	simtime   — raw numeric literals materializing as sim.Time
//
// Four are flow-sensitive, built on the intra-procedural CFG and forward
// dataflow framework in cfg.go / dataflow.go:
//
//	hotalloc   — no allocation-inducing constructs in //dtlint:hotpath functions
//	pktlife    — every AllocPacket reaches FreePacket or a handoff on all paths
//	detflow    — taint from nondeterministic sources must not reach scheduling
//	soloengine — no goroutines, channel ops, or global writes in the engine core
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer, Pass, Reportf) but is built on the standard library alone:
// packages are enumerated with `go list -json` and type-checked with
// go/types using the source importer, so the tool works offline with no
// third-party dependencies.
//
// A finding can be suppressed — with a mandatory justification — by an
// annotation on the offending line or the line directly above it:
//
//	//dtlint:allow nondeterm: the one seeded root source
//
// An annotation without a reason suppresses nothing and is itself a
// diagnostic. Run the suite with `go run ./cmd/dtlint ./...`.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package, mirroring
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //dtlint:allow
	// annotations.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Applies filters packages by import path; nil means every package.
	Applies func(importPath string) bool
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset resolves token positions for every file of the pass.
	Fset *token.FileSet
	// Files are the package's parsed non-test source files.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's expression annotations.
	TypesInfo *types.Info

	allow  allowIndex
	diags  *[]Diagnostic
	hot    *hotIndex
	shardb *shardIndex
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Analyzer names the check that fired.
	Analyzer string
	// Message explains the finding and the expected fix.
	Message string
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos unless a //dtlint:allow annotation for
// this analyzer covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allow.allows(position, p.Analyzer.Name) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full dtlint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NonDeterm, MapOrder, FloatCmp, SimTime,
		HotAlloc, PktLife, DetFlow, SoloEngine,
	}
}

// Run applies the analyzers to the loaded packages and returns the merged
// findings sorted by position. Malformed //dtlint:allow annotations —
// missing a reason, naming no (or an unknown) analyzer — are reported as
// framework diagnostics under the "allow" name regardless of which
// analyzers run.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allow, allowDiags := buildAllowIndex(pkg.Fset, pkg.Files)
		diags = append(diags, allowDiags...)
		shardb, shardDiags := buildShardIndex(pkg.Fset, pkg.Files)
		diags = append(diags, shardDiags...)
		for _, a := range analyzers {
			if a.Applies != nil && !a.Applies(pkg.ImportPath) {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				allow:     allow,
				diags:     &diags,
				shardb:    shardb,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	// Flow-sensitive analyzers may visit one syntactic site through more
	// than one CFG node (a deferred call registers where it is written and
	// runs at function exit); identical findings collapse to one.
	dedup := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		dedup = append(dedup, d)
	}
	return dedup, nil
}

// appliesTo builds an Applies filter matching the given import paths and
// anything below them.
func appliesTo(paths ...string) func(string) bool {
	return func(p string) bool {
		for _, q := range paths {
			if p == q || strings.HasPrefix(p, q+"/") {
				return true
			}
		}
		return false
	}
}
