package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the quoted regexps of a `// want "..." "..."` comment.
var wantRe = regexp.MustCompile(`"([^"]*)"`)

// runFixture type-checks one testdata file under the given import path,
// runs the analyzer, and compares the diagnostics against the fixture's
// `// want` comments: every diagnostic must match a want on its line and
// every want must be consumed, in the style of analysistest.
func runFixture(t *testing.T, a *Analyzer, file, importPath string) {
	t.Helper()
	fset := token.NewFileSet()
	path := filepath.Join("testdata", file)
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	info := newTypesInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(importPath, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check %s: %v", path, err)
	}
	pkg := &Package{
		ImportPath: importPath,
		Dir:        "testdata",
		Fset:       fset,
		Files:      []*ast.File{f},
		Types:      tpkg,
		TypesInfo:  info,
	}
	if a.Applies != nil && !a.Applies(importPath) {
		t.Fatalf("analyzer %s does not apply to fixture path %s", a.Name, importPath)
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}

	wants := collectWants(t, fset, f)
	for _, d := range diags {
		if !consumeWant(wants, d.Pos.Line, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", file, d)
		}
	}
	for line, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected diagnostic matching %q did not fire", file, line, re)
		}
	}
}

// collectWants maps line → pending want regexps.
func collectWants(t *testing.T, fset *token.FileSet, f *ast.File) map[int][]string {
	t.Helper()
	wants := make(map[int][]string)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			body := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			rest, ok := strings.CutPrefix(body, "want ")
			if !ok {
				continue
			}
			line := fset.Position(c.Pos()).Line
			for _, m := range wantRe.FindAllStringSubmatch(rest, -1) {
				if _, err := regexp.Compile(m[1]); err != nil {
					t.Fatalf("bad want regexp %q: %v", m[1], err)
				}
				wants[line] = append(wants[line], m[1])
			}
		}
	}
	return wants
}

func consumeWant(wants map[int][]string, line int, message string) bool {
	for i, re := range wants[line] {
		if regexp.MustCompile(re).MatchString(message) {
			wants[line] = append(wants[line][:i], wants[line][i+1:]...)
			if len(wants[line]) == 0 {
				delete(wants, line)
			}
			return true
		}
	}
	return false
}

func TestNonDetermFixture(t *testing.T) {
	runFixture(t, NonDeterm, "nondeterm.go", "dtdctcp/internal/sim/fixture")
}

func TestMapOrderFixture(t *testing.T) {
	runFixture(t, MapOrder, "maporder.go", "dtdctcp/internal/netsim/fixture")
}

func TestFloatCmpFixture(t *testing.T) {
	runFixture(t, FloatCmp, "floatcmp.go", "dtdctcp/internal/control/fixture")
}

func TestSimTimeFixture(t *testing.T) {
	runFixture(t, SimTime, "simtime.go", "dtdctcp/internal/lint/fixture")
}

// TestScoping pins each analyzer's package filter: the suite must bite in
// the simulator packages and stay out of the ones where the flagged
// patterns are legitimate.
func TestScoping(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		path     string
		want     bool
	}{
		{NonDeterm, "dtdctcp/internal/sim", true},
		{NonDeterm, "dtdctcp/internal/tcp", true},
		{NonDeterm, "dtdctcp/internal/stats", false},
		{NonDeterm, "dtdctcp/internal/lint", false},
		{MapOrder, "dtdctcp/internal/netsim", true},
		{MapOrder, "dtdctcp/internal/workload", true},
		{MapOrder, "dtdctcp/internal/fluid", false},
		{FloatCmp, "dtdctcp/internal/control", true},
		{FloatCmp, "dtdctcp/internal/fluid", true},
		{FloatCmp, "dtdctcp/internal/netsim", false},
	}
	for _, c := range cases {
		if got := c.analyzer.Applies(c.path); got != c.want {
			t.Errorf("%s.Applies(%q) = %v, want %v", c.analyzer.Name, c.path, got, c.want)
		}
	}
	if SimTime.Applies != nil {
		t.Error("simtime must apply everywhere sim.Time flows; expected nil Applies")
	}
}

// TestAllowIndex pins the annotation grammar: names before the "--"
// justification, same-line and line-above coverage, multiple names.
func TestAllowIndex(t *testing.T) {
	src := `package p

//dtlint:allow alpha,beta -- two analyzers at once
var a int

var b int //dtlint:allow gamma -- same line
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	idx := buildAllowIndex(fset, []*ast.File{f})
	cases := []struct {
		line     int
		analyzer string
		want     bool
	}{
		{3, "alpha", true},  // annotation's own line
		{4, "alpha", true},  // line below
		{4, "beta", true},   // second name of the list
		{5, "alpha", false}, // two lines below: out of range
		{6, "gamma", true},  // same-line placement
		{4, "gamma", false},
		{3, "delta", false}, // unknown analyzer name
	}
	for _, c := range cases {
		pos := token.Position{Filename: "p.go", Line: c.line}
		if got := idx.allows(pos, c.analyzer); got != c.want {
			t.Errorf("allows(line %d, %q) = %v, want %v", c.line, c.analyzer, got, c.want)
		}
	}
}

// TestDiagnosticString pins the file:line:col output format CI logs rely
// on.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
		Analyzer: "nondeterm",
		Message:  "bad",
	}
	if got, want := d.String(), "x.go:3:7: bad (nondeterm)"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	_ = fmt.Sprintf("%s", d) // Stringer must satisfy fmt
}
