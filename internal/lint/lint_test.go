package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the quoted regexps of a `// want "..." "..."` comment.
var wantRe = regexp.MustCompile(`"([^"]*)"`)

// runFixture type-checks one testdata file under the given import path,
// runs the analyzer, and compares the diagnostics against the fixture's
// `// want` comments: every diagnostic must match a want on its line and
// every want must be consumed, in the style of analysistest.
func runFixture(t *testing.T, a *Analyzer, file, importPath string) {
	t.Helper()
	fset := token.NewFileSet()
	path := filepath.Join("testdata", file)
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	info := newTypesInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(importPath, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check %s: %v", path, err)
	}
	pkg := &Package{
		ImportPath: importPath,
		Dir:        "testdata",
		Fset:       fset,
		Files:      []*ast.File{f},
		Types:      tpkg,
		TypesInfo:  info,
	}
	if a.Applies != nil && !a.Applies(importPath) {
		t.Fatalf("analyzer %s does not apply to fixture path %s", a.Name, importPath)
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}

	wants := collectWants(t, fset, f)
	for _, d := range diags {
		if !consumeWant(wants, d.Pos.Line, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", file, d)
		}
	}
	for line, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected diagnostic matching %q did not fire", file, line, re)
		}
	}
}

// collectWants maps line → pending want regexps.
func collectWants(t *testing.T, fset *token.FileSet, f *ast.File) map[int][]string {
	t.Helper()
	wants := make(map[int][]string)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			body := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			rest, ok := strings.CutPrefix(body, "want ")
			if !ok {
				continue
			}
			line := fset.Position(c.Pos()).Line
			for _, m := range wantRe.FindAllStringSubmatch(rest, -1) {
				if _, err := regexp.Compile(m[1]); err != nil {
					t.Fatalf("bad want regexp %q: %v", m[1], err)
				}
				wants[line] = append(wants[line], m[1])
			}
		}
	}
	return wants
}

func consumeWant(wants map[int][]string, line int, message string) bool {
	for i, re := range wants[line] {
		if regexp.MustCompile(re).MatchString(message) {
			wants[line] = append(wants[line][:i], wants[line][i+1:]...)
			if len(wants[line]) == 0 {
				delete(wants, line)
			}
			return true
		}
	}
	return false
}

func TestNonDetermFixture(t *testing.T) {
	runFixture(t, NonDeterm, "nondeterm.go", "dtdctcp/internal/sim/fixture")
}

func TestMapOrderFixture(t *testing.T) {
	runFixture(t, MapOrder, "maporder.go", "dtdctcp/internal/netsim/fixture")
}

func TestFloatCmpFixture(t *testing.T) {
	runFixture(t, FloatCmp, "floatcmp.go", "dtdctcp/internal/control/fixture")
}

func TestSimTimeFixture(t *testing.T) {
	runFixture(t, SimTime, "simtime.go", "dtdctcp/internal/lint/fixture")
}

func TestHotAllocFixture(t *testing.T) {
	runFixture(t, HotAlloc, "hotalloc.go", "dtdctcp/internal/sim/fixture")
}

func TestPktLifeFixture(t *testing.T) {
	runFixture(t, PktLife, "pktlife.go", "dtdctcp/internal/netsim/fixture")
}

func TestDetFlowFixture(t *testing.T) {
	runFixture(t, DetFlow, "detflow.go", "dtdctcp/internal/sim/fixture")
}

func TestSoloEngineFixture(t *testing.T) {
	runFixture(t, SoloEngine, "soloengine.go", "dtdctcp/internal/sim/fixture")
}

// TestScoping pins each analyzer's package filter: the suite must bite in
// the simulator packages and stay out of the ones where the flagged
// patterns are legitimate.
func TestScoping(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		path     string
		want     bool
	}{
		{NonDeterm, "dtdctcp/internal/sim", true},
		{NonDeterm, "dtdctcp/internal/tcp", true},
		{NonDeterm, "dtdctcp/internal/stats", false},
		{NonDeterm, "dtdctcp/internal/lint", false},
		{MapOrder, "dtdctcp/internal/netsim", true},
		{MapOrder, "dtdctcp/internal/workload", true},
		{MapOrder, "dtdctcp/internal/fluid", false},
		{FloatCmp, "dtdctcp/internal/control", true},
		{FloatCmp, "dtdctcp/internal/fluid", true},
		{FloatCmp, "dtdctcp/internal/netsim", false},
		{PktLife, "dtdctcp/internal/netsim", true},
		{PktLife, "dtdctcp/internal/sim", true},
		{PktLife, "dtdctcp/internal/aqm", false},
		{PktLife, "dtdctcp/internal/stats", false},
		{DetFlow, "dtdctcp/internal/sim", true},
		{DetFlow, "dtdctcp/internal/aqm", true},
		{DetFlow, "dtdctcp/internal/runner", false},
		{SoloEngine, "dtdctcp/internal/netsim", true},
		{SoloEngine, "dtdctcp/internal/chaos", true},
		{SoloEngine, "dtdctcp/internal/runner", false},
		{SoloEngine, "dtdctcp/internal/workload", false},
	}
	for _, c := range cases {
		if got := c.analyzer.Applies(c.path); got != c.want {
			t.Errorf("%s.Applies(%q) = %v, want %v", c.analyzer.Name, c.path, got, c.want)
		}
	}
	if SimTime.Applies != nil {
		t.Error("simtime must apply everywhere sim.Time flows; expected nil Applies")
	}
	if HotAlloc.Applies != nil {
		t.Error("hotalloc scopes by //dtlint:hotpath annotation, not package; expected nil Applies")
	}
	if len(Analyzers()) != 8 {
		t.Errorf("suite size = %d, want 8", len(Analyzers()))
	}
}

// TestAllowIndex pins the coverage rule: an annotation suppresses on its
// own line and the line directly below it, for every listed analyzer.
func TestAllowIndex(t *testing.T) {
	src := `package p

//dtlint:allow nondeterm,maporder: two analyzers at once
var a int

var b int //dtlint:allow floatcmp -- same line, legacy separator
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	idx, diags := buildAllowIndex(fset, []*ast.File{f})
	if len(diags) != 0 {
		t.Fatalf("well-formed annotations produced diagnostics: %v", diags)
	}
	cases := []struct {
		line     int
		analyzer string
		want     bool
	}{
		{3, "nondeterm", true},  // annotation's own line
		{4, "nondeterm", true},  // line below
		{4, "maporder", true},   // second name of the list
		{5, "nondeterm", false}, // two lines below: out of range
		{6, "floatcmp", true},   // same-line placement
		{4, "floatcmp", false},
		{3, "simtime", false}, // analyzer not listed
	}
	for _, c := range cases {
		pos := token.Position{Filename: "p.go", Line: c.line}
		if got := idx.allows(pos, c.analyzer); got != c.want {
			t.Errorf("allows(line %d, %q) = %v, want %v", c.line, c.analyzer, got, c.want)
		}
	}
}

// TestParseAllowComment pins the annotation grammar itself.
func TestParseAllowComment(t *testing.T) {
	cases := []struct {
		text   string
		names  []string
		reason string
		ok     bool
	}{
		{"//dtlint:allow nondeterm: seeded root", []string{"nondeterm"}, "seeded root", true},
		{"//dtlint:allow a,b -- legacy", []string{"a", "b"}, "legacy", true},
		{"//dtlint:allow a, b :  spaced ", []string{"a", "b"}, "spaced", true},
		{"//dtlint:allow a-b: hyphenated name", []string{"a-b"}, "hyphenated name", true},
		{"//dtlint:allow x: reason: with colons", []string{"x"}, "reason: with colons", true},
		{"//dtlint:allow maporder -- note: earliest separator wins", []string{"maporder"}, "note: earliest separator wins", true},
		{"//dtlint:allow", nil, "", true},                            // malformed: no names, no reason
		{"//dtlint:allow hotalloc:", []string{"hotalloc"}, "", true}, // malformed: empty reason
		{"//dtlint:allow : orphan reason", nil, "orphan reason", true},
		{"//dtlint:allowance is a word", nil, "", false},
		{"// ordinary comment", nil, "", false},
		{"//dtlint:hotpath", nil, "", false},
	}
	for _, c := range cases {
		names, reason, ok := parseAllowComment(c.text)
		if ok != c.ok || reason != c.reason || strings.Join(names, "|") != strings.Join(c.names, "|") {
			t.Errorf("parseAllowComment(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.text, names, reason, ok, c.names, c.reason, c.ok)
		}
	}
}

// TestAllowDiagnostics pins the reason requirement: malformed annotations
// suppress nothing and surface as framework diagnostics under "allow".
func TestAllowDiagnostics(t *testing.T) {
	src := `package p

//dtlint:allow nondeterm
var a int

//dtlint:allow
var b int

//dtlint:allow nosuchcheck: imaginary analyzer
var c int

//dtlint:allow maporder: fine as is
var d int
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	idx, diags := buildAllowIndex(fset, []*ast.File{f})
	if len(diags) != 3 {
		t.Fatalf("diagnostics = %d (%v), want 3 (reasonless, nameless, unknown name)", len(diags), diags)
	}
	for _, d := range diags {
		if d.Analyzer != allowDiagAnalyzer {
			t.Errorf("diagnostic analyzer = %q, want %q", d.Analyzer, allowDiagAnalyzer)
		}
	}
	if msgs := fmt.Sprint(diags); !strings.Contains(msgs, "without a reason") ||
		!strings.Contains(msgs, "names no analyzer") ||
		!strings.Contains(msgs, "unknown analyzer") {
		t.Errorf("diagnostics missing expected messages: %v", diags)
	}
	// The reasonless annotation must not have entered the index…
	if idx.allows(token.Position{Filename: "p.go", Line: 4}, "nondeterm") {
		t.Error("reasonless annotation suppressed a finding")
	}
	// …while the well-formed one did.
	if !idx.allows(token.Position{Filename: "p.go", Line: 13}, "maporder") {
		t.Error("well-formed annotation missing from the index")
	}
}

// TestHotIndex pins the //dtlint:hotpath placement rules: doc comment or
// line above for declarations, own line or line above for literals.
func TestHotIndex(t *testing.T) {
	src := `package p

// hotDoc is pinned by its doc comment.
//dtlint:hotpath
func hotDoc() {}

//dtlint:hotpath
func hotLineAbove() {}

func cold() {}

var fns []func()

func install() {
	//dtlint:hotpath
	fns = append(fns, func() {})
	fns = append(fns, func() {})
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := newTypesInfo()
	conf := types.Config{}
	tpkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	pass := &Pass{
		Fset:      fset,
		Files:     []*ast.File{f},
		Pkg:       tpkg,
		TypesInfo: info,
	}
	var names []string
	for _, hf := range pass.HotFuncs() {
		names = append(names, hf.Name)
	}
	want := "hotDoc,hotLineAbove,func literal"
	if got := strings.Join(names, ","); got != want {
		t.Errorf("HotFuncs = %q, want %q (cold and the unmarked literal excluded)", got, want)
	}
}

// TestShardBoundaryGrammar pins the marker parser: reasoned markers
// carry their justification, reasonless ones are distinguishable, and
// near-miss words are not markers at all.
func TestShardBoundaryGrammar(t *testing.T) {
	cases := []struct {
		text   string
		reason string
		ok     bool
	}{
		{"//dtlint:shardboundary epoch barrier fan-out", "epoch barrier fan-out", true},
		{"//dtlint:shardboundary", "", true},
		{"//dtlint:shardboundary   ", "", true},
		{"//dtlint:shardboundaryish", "", false},
		{"//dtlint:hotpath", "", false},
		{"// ordinary comment", "", false},
	}
	for _, c := range cases {
		reason, ok := parseShardBoundaryComment(c.text)
		if ok != c.ok || reason != c.reason {
			t.Errorf("parseShardBoundaryComment(%q) = (%q, %v), want (%q, %v)",
				c.text, reason, ok, c.reason, c.ok)
		}
	}
}

// TestShardBoundaryDiagnostics pins the reason requirement: a reasonless
// shardboundary marker exempts nothing and surfaces as a framework
// diagnostic, while a reasoned one enters the index.
func TestShardBoundaryDiagnostics(t *testing.T) {
	src := `package p

//dtlint:shardboundary
func bare() {}

//dtlint:shardboundary coordinator fan-out
func reasoned() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	si, diags := buildShardIndex(fset, []*ast.File{f})
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %d (%v), want 1 (reasonless marker)", len(diags), diags)
	}
	if diags[0].Analyzer != allowDiagAnalyzer {
		t.Errorf("diagnostic analyzer = %q, want %q", diags[0].Analyzer, allowDiagAnalyzer)
	}
	if !strings.Contains(diags[0].Message, "without a reason") {
		t.Errorf("diagnostic message missing reason requirement: %v", diags[0])
	}
	if si.markerLines["p.go"][3] {
		t.Error("reasonless marker entered the index")
	}
	if !si.markerLines["p.go"][6] {
		t.Error("reasoned marker missing from the index")
	}
	// Placement: the reasoned marker covers its declaration.
	var decls []*ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			decls = append(decls, fd)
		}
	}
	if si.boundaryDecl(fset, decls[0]) {
		t.Error("reasonless marker exempted its function")
	}
	if !si.boundaryDecl(fset, decls[1]) {
		t.Error("reasoned marker did not exempt its function")
	}
}

// TestDiagnosticString pins the file:line:col output format CI logs rely
// on.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
		Analyzer: "nondeterm",
		Message:  "bad",
	}
	if got, want := d.String(), "x.go:3:7: bad (nondeterm)"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	_ = fmt.Sprintf("%s", d) // Stringer must satisfy fmt
}
