package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	// ImportPath is the package's import path as reported by go list.
	ImportPath string
	// Dir is the package's source directory.
	Dir string
	// Fset resolves positions for Files.
	Fset *token.FileSet
	// Files are the parsed non-test Go files, build-tag filtered the same
	// way `go build` would filter them.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// TypesInfo records the type-checker's per-expression results.
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
}

// Load enumerates the packages matching the go-list patterns (relative to
// dir; empty dir means the current directory), parses their non-test files
// and type-checks them against source — no compiled export data and no
// network access are required. Test files are deliberately out of scope:
// tests may use wall clocks and ad-hoc randomness freely.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	// The source importer type-checks dependencies from source and caches
	// them, so sharing one instance across packages loads each dependency
	// once.
	imp := importer.ForCompiler(fset, "source", nil)

	var pkgs []*Package
	for _, lp := range listed {
		if lp.Name == "" || len(lp.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(lp.GoFiles))
		for _, name := range lp.GoFiles {
			path := filepath.Join(lp.Dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("lint: parse %s: %w", path, err)
			}
			files = append(files, f)
		}
		info := newTypesInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-check %s: %w", lp.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: lp.ImportPath,
			Dir:        lp.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			TypesInfo:  info,
		})
	}
	return pkgs, nil
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %v: %w\n%s", patterns, err, stderr.String())
	}
	var out []listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %w", err)
		}
		out = append(out, lp)
	}
	return out, nil
}
