package lint

import (
	"go/ast"
	"go/types"
)

// MapOrder flags `range` over maps in the packages that schedule events or
// order packets. Go randomizes map iteration order per run; any map range
// whose body's effects depend on visit order silently leaks that
// randomness into simulation results, defeating seeded reproducibility.
//
// The canonical fix — collect the keys, sort them, iterate the slice — is
// recognized and not flagged: a range whose body only appends the key to a
// slice that the same function later passes to a sort call is exempt.
// Loops that are order-insensitive for deeper reasons carry a
// //dtlint:allow maporder annotation with the proof.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration on event-scheduling and packet-ordering paths",
	Applies: appliesTo(
		"dtdctcp/internal/sim",
		"dtdctcp/internal/netsim",
		"dtdctcp/internal/core",
		"dtdctcp/internal/tcp",
		"dtdctcp/internal/workload",
	),
	Run: runMapOrder,
}

func runMapOrder(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sorted := sortedSlices(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.TypesInfo.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if isKeyCollection(rs, sorted) {
					return true
				}
				pass.Reportf(rs.For,
					"map iteration order is randomized per run and can leak into event/packet ordering; iterate sorted keys or annotate with a proof of order-insensitivity")
				return true
			})
		}
	}
	return nil
}

// sortedSlices returns the names of slice variables the function passes to
// a sort.* or slices.Sort* call.
func sortedSlices(pass *Pass, body *ast.BlockStmt) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgIdent, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.TypesInfo.Uses[pkgIdent].(*types.PkgName)
		if !ok {
			return true
		}
		switch pkgName.Imported().Path() {
		case "sort", "slices":
			if arg, ok := call.Args[0].(*ast.Ident); ok {
				out[arg.Name] = true
			}
		}
		return true
	})
	return out
}

// isKeyCollection reports whether the range body is exactly
// `keys = append(keys, k)` for a slice that is subsequently sorted.
func isKeyCollection(rs *ast.RangeStmt, sorted map[string]bool) bool {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || rs.Value != nil || len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	dst, ok := as.Lhs[0].(*ast.Ident)
	if !ok || !sorted[dst.Name] {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	recv, ok := call.Args[0].(*ast.Ident)
	arg, ok2 := call.Args[1].(*ast.Ident)
	return ok && ok2 && recv.Name == dst.Name && arg.Name == key.Name
}
