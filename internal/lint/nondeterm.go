package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// simPackages are the packages whose code must be a pure function of the
// engine seed: the event kernel and everything that runs inside event
// handlers.
var simPackages = []string{
	"dtdctcp/internal/sim",
	"dtdctcp/internal/netsim",
	"dtdctcp/internal/aqm",
	"dtdctcp/internal/core",
	"dtdctcp/internal/tcp",
}

// NonDeterm forbids the two ambient sources of nondeterminism in simulator
// code: the wall clock and process-global or locally constructed random
// sources. All virtual time must come from Engine.Now and all randomness
// from Engine.Rand (or a *rand.Rand injected from it), so that one seed
// governs the whole run.
var NonDeterm = &Analyzer{
	Name:    "nondeterm",
	Doc:     "forbid time.Now and ambient/local math/rand sources in simulator code",
	Applies: appliesTo(simPackages...),
	Run:     runNonDeterm,
}

func runNonDeterm(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			fn, ok := obj.(*types.Func)
			if !ok {
				return true
			}
			switch pkgName.Imported().Path() {
			case "time":
				if fn.Name() == "Now" {
					pass.Reportf(sel.Pos(),
						"time.Now reads the wall clock and breaks run-for-run determinism; use Engine.Now virtual time")
				}
			case "math/rand", "math/rand/v2":
				if strings.HasPrefix(fn.Name(), "New") {
					pass.Reportf(sel.Pos(),
						"%s.%s constructs a private random source; draw from Engine.Rand or an injected *rand.Rand so one seed governs the run",
						ident.Name, fn.Name())
				} else {
					pass.Reportf(sel.Pos(),
						"%s.%s uses the process-global random source, which is shared mutable state; draw from Engine.Rand or an injected *rand.Rand",
						ident.Name, fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
