package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PktLife proves packet and event-handle lifecycle contracts on every
// control-flow path, via the forward dataflow framework:
//
//   - A packet obtained from AllocPacket must reach a terminal handoff —
//     FreePacket, any call taking the packet (Send, Receive, Deliver,
//     queue push…), a return, or an escape (stored into a field, slice,
//     map, channel, or captured by a closure) — on all paths to function
//     exit. A path that falls off the end still holding the packet leaks
//     it from the pool; an AllocPacket whose result is discarded leaks
//     immediately.
//   - An EventRef local must not be reused after Cancel: once r.Cancel()
//     runs, any further method call on r (including a second Cancel) is a
//     stale-handle bug until r is reassigned. The engine's generation
//     check turns such reuse into a silent no-op at runtime; the analyzer
//     surfaces it at compile time instead.
//
// The analysis is intra-procedural and name-based (AllocPacket /
// FreePacket / EventRef are matched by name, so fixtures and future pools
// with the same shape are covered). Deferred calls run at function exit
// with may-run semantics.
var PktLife = &Analyzer{
	Name: "pktlife",
	Doc:  "prove AllocPacket reaches FreePacket or a handoff on all paths; no EventRef reuse after Cancel",
	Applies: appliesTo(
		"dtdctcp/internal/sim",
		"dtdctcp/internal/netsim",
		"dtdctcp/internal/tcp",
		"dtdctcp/internal/core",
		"dtdctcp/internal/chaos",
		"dtdctcp/internal/workload",
	),
	Run: runPktLife,
}

// Packet lifecycle facts.
const (
	pktLive     fact = 1 // allocated, not yet released on this path
	pktReleased fact = 2 // freed or handed off
	refArmed    fact = 3 // EventRef whose last assignment is visible
	refCancel   fact = 4 // EventRef after Cancel, before reassignment
)

func runPktLife(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPktLife(pass, fd)
		}
	}
	return nil
}

func checkPktLife(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	g := buildCFG(fd.Body)
	// allocSite remembers where each tracked packet variable was
	// allocated, for the leak report at exit.
	allocSite := make(map[types.Object]token.Pos)

	transfer := func(n ast.Node, f facts, report bool) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			transferAssign(pass, n, f, report, allocSite)
			return
		case *ast.DeferStmt:
			// Registration point: arguments are evaluated here but the
			// call's release effect applies at exit (deferRun below).
			return
		case *deferRun:
			releaseCallArgs(info, n.call, f)
			return
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				releaseUses(info, r, f)
			}
			return
		}
		// Generic nodes: expression statements, conditions, sends…
		inspectShallow(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				// Captured packets/refs escape into the closure.
				for _, v := range capturedVars(info, m, nil) {
					if f.get(v) == pktLive {
						f.set(v, pktReleased)
					}
				}
				return false
			case *ast.CallExpr:
				checkRefCall(pass, m, f, report)
				if isAllocPacketCall(m) {
					// Result used as a subexpression (argument, etc.):
					// immediate handoff, nothing to track. A bare
					// expression statement discards the packet — leak.
					if report && isDiscarded(n, m) {
						pass.Reportf(m.Pos(),
							"AllocPacket result discarded: the packet leaks from the pool; assign it and Send or FreePacket it")
					}
					return true
				}
				releaseCallArgs(info, m, f)
			case *ast.SendStmt:
				releaseUses(info, m.Value, f)
			}
			return true
		})
	}

	join := func(a, b fact) fact {
		// Packet facts: live wins (a leak on any path is a leak).
		// Ref facts: cancelled wins (reuse on any path is a reuse).
		switch {
		case a == pktLive || b == pktLive:
			return pktLive
		case a == pktReleased || b == pktReleased:
			return pktReleased
		case a == refCancel || b == refCancel:
			return refCancel
		case a == refArmed || b == refArmed:
			return refArmed
		}
		return 0
	}

	fa := &flowAnalysis{transfer: transfer, join: join}
	exit := fa.run(g)
	for o, v := range exit {
		if v == pktLive {
			pass.Reportf(allocSite[o],
				"packet %s can reach function exit without FreePacket or a handoff: it leaks from the pool on that path", o.Name())
		}
	}
}

// transferAssign tracks allocation (x := AllocPacket()), release-by-alias
// (y = x), overwrite-while-live, and EventRef reassignment.
func transferAssign(pass *Pass, as *ast.AssignStmt, f facts, report bool, allocSite map[types.Object]token.Pos) {
	info := pass.TypesInfo
	// RHS first: uses of tracked variables release them; calls checked.
	for _, rhs := range as.Rhs {
		if call, ok := rhs.(*ast.CallExpr); ok && isAllocPacketCall(call) {
			continue // handled with its LHS below
		}
		inspectShallow(rhs, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				for _, v := range capturedVars(info, m, nil) {
					if f.get(v) == pktLive {
						f.set(v, pktReleased)
					}
				}
				return false
			case *ast.CallExpr:
				checkRefCall(pass, m, f, report)
				releaseCallArgs(info, m, f)
			}
			return true
		})
	}
	// A tracked variable appearing as a bare RHS value is aliased or
	// stored somewhere: handoff.
	for _, rhs := range as.Rhs {
		releaseUses(info, rhs, f)
	}

	if len(as.Lhs) != len(as.Rhs) {
		// Tuple assignment from one call: any tracked LHS is clobbered.
		for _, lhs := range as.Lhs {
			clobberLHS(pass, lhs, f, report, allocSite)
		}
		return
	}
	for i, lhs := range as.Lhs {
		call, isAlloc := as.Rhs[i].(*ast.CallExpr)
		if isAlloc && isAllocPacketCall(call) {
			v := localVar(info, lhs)
			if v == nil {
				// Blank identifier or direct store into a structure:
				// blank discards (leak), a structure store escapes.
				if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" && report {
					pass.Reportf(call.Pos(),
						"AllocPacket result assigned to _: the packet leaks from the pool")
				}
				continue
			}
			if report && f.get(v) == pktLive {
				pass.Reportf(call.Pos(),
					"packet %s overwritten while still live: the previous packet leaks from the pool", v.Name())
			}
			f.set(v, pktLive)
			allocSite[v] = call.Pos()
			continue
		}
		clobberLHS(pass, lhs, f, report, allocSite)
	}
}

// clobberLHS applies an ordinary assignment's effect on a tracked LHS:
// overwriting a live packet leaks it; reassigning an EventRef clears the
// cancelled state.
func clobberLHS(pass *Pass, lhs ast.Expr, f facts, report bool, allocSite map[types.Object]token.Pos) {
	v := trackableVar(pass.TypesInfo, lhs)
	if v == nil {
		return
	}
	switch f.get(v) {
	case pktLive:
		if report {
			pass.Reportf(lhs.Pos(),
				"packet %s overwritten while still live: the previous packet leaks from the pool", v.Name())
		}
		f.set(v, 0)
	case refCancel, refArmed:
		f.set(v, refArmed)
	default:
		if isEventRefType(pass.TypesInfo.TypeOf(lhs)) {
			f.set(v, refArmed)
		}
	}
}

// checkRefCall handles method calls on tracked EventRef variables:
// Cancel transitions to the cancelled state; any call on a cancelled ref
// is a reuse.
func checkRefCall(pass *Pass, call *ast.CallExpr, f facts, report bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	v := trackableVar(pass.TypesInfo, sel.X)
	if v == nil || !isEventRefType(pass.TypesInfo.TypeOf(sel.X)) {
		return
	}
	if f.get(v) == refCancel {
		if report {
			pass.Reportf(call.Pos(),
				"%s.%s called after Cancel: the handle is stale (a generation-checked no-op at best); reassign the ref before reuse", v.Name(), sel.Sel.Name)
		}
		return
	}
	if sel.Sel.Name == "Cancel" {
		f.set(v, refCancel)
	}
}

// releaseCallArgs marks every tracked packet passed to a call as handed
// off (FreePacket, Send, Deliver, pushes — any callee takes ownership).
func releaseCallArgs(info *types.Info, call *ast.CallExpr, f facts) {
	for _, arg := range call.Args {
		releaseUses(info, arg, f)
	}
}

// releaseUses releases every tracked live packet referenced in e.
func releaseUses(info *types.Info, e ast.Expr, f facts) {
	if e == nil {
		return
	}
	inspectShallow(e, func(m ast.Node) bool {
		if lit, ok := m.(*ast.FuncLit); ok {
			for _, v := range capturedVars(info, lit, nil) {
				if f.get(v) == pktLive {
					f.set(v, pktReleased)
				}
			}
			return false
		}
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := objOf(info, id).(*types.Var); ok && f.get(v) == pktLive {
			f.set(v, pktReleased)
		}
		return true
	})
}

// trackableVar resolves an expression to a trackable variable: a plain
// local identifier, or a field selector on a local identifier (p.txRef),
// keyed by the field object — the usual "one receiver per function"
// approximation.
func trackableVar(info *types.Info, e ast.Expr) *types.Var {
	switch e := e.(type) {
	case *ast.Ident:
		return localVar(info, e)
	case *ast.SelectorExpr:
		if _, ok := e.X.(*ast.Ident); !ok {
			return nil
		}
		if v, ok := objOf(info, e.Sel).(*types.Var); ok && v.IsField() {
			return v
		}
	}
	return nil
}

// isAllocPacketCall matches n.AllocPacket() / network.AllocPacket() by
// method name.
func isAllocPacketCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name == "AllocPacket"
	case *ast.Ident:
		return fun.Name == "AllocPacket"
	}
	return false
}

// isDiscarded reports whether the call is the whole expression statement
// (its result value is dropped on the floor).
func isDiscarded(stmt ast.Node, call *ast.CallExpr) bool {
	es, ok := stmt.(*ast.ExprStmt)
	return ok && es.X == call
}

// isEventRefType matches the sim.EventRef named type (and same-named
// fixture types) by name.
func isEventRefType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "EventRef"
}
