package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

const simPath = "dtdctcp/internal/sim"

// SimTime flags raw integer or float literals that materialize as
// sim.Time. A bare literal hides its unit (nanoseconds) and its intent;
// instants and offsets must be built from sim.FromDuration, Time
// arithmetic, or the named constants (sim.TimeZero, sim.TimeNever). The
// literal 0 is exempt as the unambiguous zero value, and the declarations
// of named constants are themselves exempt.
var SimTime = &Analyzer{
	Name: "simtime",
	Doc:  "flag raw numeric literals used where sim.Time is expected",
	Run:  runSimTime,
}

func runSimTime(pass *Pass) error {
	simTime := lookupSimTime(pass.Pkg)
	if simTime == nil {
		return nil // package neither is nor imports the sim kernel
	}
	for _, f := range pass.Files {
		constDecls := constDeclRanges(f)
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || (lit.Kind != token.INT && lit.Kind != token.FLOAT) {
				return true
			}
			tv, ok := pass.TypesInfo.Types[lit]
			if !ok || !types.Identical(tv.Type, simTime) {
				return true
			}
			if tv.Value != nil && constant.Sign(tv.Value) == 0 {
				return true // the zero value is unambiguous
			}
			for _, r := range constDecls {
				if lit.Pos() >= r.start && lit.Pos() < r.end {
					return true // defining a named constant is the fix, not the bug
				}
			}
			pass.Reportf(lit.Pos(),
				"raw literal %s used as sim.Time; build instants from sim.FromDuration, Time arithmetic, or a named constant", lit.Value)
			return true
		})
	}
	return nil
}

// lookupSimTime resolves the sim.Time named type as seen by the analyzed
// package: from its own scope when the package is the kernel itself,
// otherwise from its import graph.
func lookupSimTime(pkg *types.Package) types.Type {
	resolve := func(p *types.Package) types.Type {
		if obj, ok := p.Scope().Lookup("Time").(*types.TypeName); ok {
			return obj.Type()
		}
		return nil
	}
	if pkg.Path() == simPath {
		return resolve(pkg)
	}
	for _, imp := range pkg.Imports() {
		if imp.Path() == simPath {
			return resolve(imp)
		}
	}
	return nil
}

type posRange struct{ start, end token.Pos }

func constDeclRanges(f *ast.File) []posRange {
	var out []posRange
	ast.Inspect(f, func(n ast.Node) bool {
		if gd, ok := n.(*ast.GenDecl); ok && gd.Tok == token.CONST {
			out = append(out, posRange{gd.Pos(), gd.End()})
		}
		return true
	})
	return out
}
