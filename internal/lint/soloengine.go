package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SoloEngine enforces the single-threaded-core contract: the engine and
// everything that runs inside event handlers execute on one goroutine,
// with concurrency confined to internal/runner (whole private engines per
// worker). Inside the core packages the analyzer forbids:
//
//   - `go` statements — a goroutine spawned from a handler races the
//     event loop and injects scheduler nondeterminism
//   - channel operations (send, receive, select) — they block the event
//     loop or smuggle cross-goroutine values into the run
//   - writes to package-level variables — engines running in parallel
//     sweep workers share package scope, so a global write is a data race
//     and couples runs that must be independent
//
// Reads of package-level state (named constants-in-var-form, sentinel
// errors, interface-conformance declarations) are fine; it is mutation
// that breaks engine isolation.
//
// One escape hatch exists: a function carrying a reasoned
// //dtlint:shardboundary annotation is the sharded coordinator's
// synchronization layer — its body (including nested literals, such as
// the worker goroutines it spawns) is exempt. Everything model-side still
// runs single-threaded per shard and stays under the ban.
var SoloEngine = &Analyzer{
	Name: "soloengine",
	Doc:  "forbid goroutines, channel ops, and package-level writes in the single-threaded engine core",
	Applies: appliesTo(
		"dtdctcp/internal/sim",
		"dtdctcp/internal/netsim",
		"dtdctcp/internal/aqm",
		"dtdctcp/internal/tcp",
		"dtdctcp/internal/core",
		"dtdctcp/internal/chaos",
	),
	Run: runSoloEngine,
}

func runSoloEngine(pass *Pass) error {
	info := pass.TypesInfo
	shardb := pass.shardBoundary()
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				// A reasoned shardboundary marker exempts the whole
				// function body; returning false also covers the worker
				// goroutine literals nested inside it.
				if shardb.boundaryDecl(pass.Fset, n) {
					return false
				}
			case *ast.FuncLit:
				if shardb.boundaryLit(pass.Fset, n) {
					return false
				}
			case *ast.GoStmt:
				pass.Reportf(n.Pos(),
					"go statement in the single-threaded engine core: handlers race the event loop; confine concurrency to internal/runner")
			case *ast.SendStmt:
				pass.Reportf(n.Pos(),
					"channel send in the engine core blocks the event loop; pass values through event arguments instead")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pass.Reportf(n.Pos(),
						"channel receive in the engine core blocks the event loop and imports goroutine-scheduling nondeterminism")
				}
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(),
					"select in the engine core: the case taken depends on goroutine scheduling, not the seed")
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					reportGlobalWrite(pass, info, lhs)
				}
			case *ast.IncDecStmt:
				reportGlobalWrite(pass, info, n.X)
			}
			return true
		})
	}
	return nil
}

// reportGlobalWrite flags assignment targets that resolve to
// package-level variables (directly or as the base of a field/index
// path).
func reportGlobalWrite(pass *Pass, info *types.Info, lhs ast.Expr) {
	base := lhs
	for {
		switch e := base.(type) {
		case *ast.SelectorExpr:
			// Stop at a package qualifier (pkg.Var handled below) but
			// follow field paths to their root identifier.
			if id, ok := e.X.(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					base = e.Sel
					continue
				}
			}
			base = e.X
			continue
		case *ast.IndexExpr:
			base = e.X
			continue
		case *ast.StarExpr:
			// Writing through a dereferenced pointer: ownership is not
			// decidable syntactically; leave it to review.
			return
		case *ast.ParenExpr:
			base = e.X
			continue
		}
		break
	}
	id, ok := base.(*ast.Ident)
	if !ok {
		return
	}
	v, ok := objOf(info, id).(*types.Var)
	if !ok || v.IsField() {
		return
	}
	if v.Parent() == nil || v.Parent().Parent() != types.Universe {
		return // not package scope
	}
	pass.Reportf(lhs.Pos(),
		"write to package-level variable %s from the engine core: parallel sweep workers share package scope, so this is shared-mutable state; move it onto the Engine or Network", v.Name())
}
