// Fixture for the detflow taint analysis: values derived from wall
// clocks, global rand, channel receives, or map iteration order must not
// reach the engine's scheduling interface or exported result fields. The
// local Engine/Timer types mirror internal/sim; sinks match by name.
package fixture

import (
	"math/rand"
	"time"
)

type Engine struct{ now int64 }

func (e *Engine) Schedule(at int64, fn func())     {}
func (e *Engine) After(d time.Duration, fn func()) {}
func (e *Engine) RunUntil(t int64)                 {}
func (e *Engine) Now() int64                       { return e.now }
func (e *Engine) Rand() *rand.Rand                 { return nil }

type Timer struct{}

func (t *Timer) Reset(d time.Duration) {}

type Summary struct {
	Final int64
	inner int64
}

func wallClock(e *Engine, fn func()) {
	t0 := time.Now()
	e.After(time.Since(t0), fn) // want "nondeterministic value reaches Engine.After"
}

func wallClockVar(e *Engine, fn func()) {
	now := time.Now().UnixNano()
	e.Schedule(now, fn) // want "nondeterministic value reaches Engine.Schedule"
}

func globalRand(e *Engine, fn func()) {
	jitter := rand.Int63n(100)
	e.Schedule(jitter, fn) // want "nondeterministic value reaches Engine.Schedule"
}

func injectedRand(e *Engine, rng *rand.Rand, fn func()) {
	j := rng.Int63n(100) // ok: draws from the engine-injected seeded source
	e.Schedule(j, fn)
}

func channelResult(e *Engine, ch chan int64, fn func()) {
	v := <-ch
	e.Schedule(v, fn) // want "nondeterministic value reaches Engine.Schedule"
}

func mapOrderLast(e *Engine, m map[string]int64, fn func()) {
	var last int64
	for _, v := range m {
		last = v // iteration order decides which value survives
	}
	e.Schedule(last, fn) // want "nondeterministic value reaches Engine.Schedule"
}

func timerFromClock(t *Timer) {
	d := time.Since(time.Now())
	t.Reset(d) // want "nondeterministic value reaches Timer.Reset"
}

func branchTaint(e *Engine, ch chan int64, cond bool, fn func()) {
	var at int64
	if cond {
		at = <-ch
	} else {
		at = 10
	}
	e.Schedule(at, fn) // want "nondeterministic value reaches Engine.Schedule"
}

func laundered(e *Engine, fn func()) {
	at := e.Now() + 5 // ok: virtual time, calls launder
	e.Schedule(at, fn)
}

func sliceRange(e *Engine, xs []int64, fn func()) {
	var sum int64
	for _, x := range xs { // ok: slice iteration order is deterministic
		sum += x
	}
	e.Schedule(sum, fn)
}

func retaint(e *Engine, fn func()) {
	at := time.Now().UnixNano()
	at = 42            // strong update: the clean constant overwrites the taint
	e.Schedule(at, fn) // ok
}

func exportedField(s *Summary, m map[string]int64) {
	for _, v := range m {
		s.Final = v // want "nondeterministic value stored in exported field Final"
	}
}

func cleanField(s *Summary, e *Engine) {
	s.Final = e.Now() // ok: engine virtual time
}

func allowedFold(e *Engine, m map[string]int64, fn func()) {
	var sum int64
	for _, v := range m {
		sum += v
	}
	//dtlint:allow detflow: sum over map values is order-insensitive, same total for every visit order
	e.Schedule(sum, fn)
}
