// Fixture for the floatcmp analyzer; see lint_test.go.
package fixture

import "math"

func exactEqual(a, b float64) bool {
	return a == b // want "exact == on floating-point values"
}

func exactNotEqual(a, b float32) bool {
	return a != b // want "exact != on floating-point values"
}

func tolerant(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9 // ok: tolerance comparison
}

func nanCheck(x float64) bool {
	return x != x // ok: the deliberate NaN idiom
}

func integers(a, b int) bool {
	return a == b // ok: exact integer comparison is well-defined
}

func sentinel(x float64) bool {
	return x == 0 //dtlint:allow floatcmp -- x is assigned zero, never computed
}
