// Fixture for the hotalloc analyzer. Functions annotated //dtlint:hotpath
// must contain no allocation-inducing constructs; everything else is out
// of scope. lint_test.go compares diagnostics against the `// want`
// comments.
package fixture

type item struct{ n int }

func takeAny(v any)      {}
func variadic(vs ...any) {}

var litHolder func(int) int

// notHot may allocate freely: it carries no annotation.
func notHot(xs []int) []int {
	return append(xs, 1) // ok: not a hot path
}

//dtlint:hotpath
func closureCapture(k int) func() int {
	total := 0
	f := func() int { // want "closure captures total and allocates on the hot path"
		total += k
		return total
	}
	g := func() int { return 42 } // ok: captures nothing, static closure
	_ = g
	return f
}

//dtlint:hotpath
func boxes(n int, p *item) {
	takeAny(n)    // want "argument boxes a int into an interface on the hot path"
	takeAny(p)    // ok: pointers fit the interface word
	var x any = n // want "declaration boxes a int into an interface on the hot path"
	x = p         // ok: pointer-shaped
	x = nil       // ok: nil never allocates
	_ = x
	y := any(n) // want "conversion to interface boxes a int on the hot path"
	_ = y
}

//dtlint:hotpath
func callsVariadic(p *item) {
	variadic(p, p) // want "variadic call allocates its argument slice on the hot path"
	variadic()     // ok: zero-argument variadic passes a nil slice
}

//dtlint:hotpath
func returnsAny(n int) any {
	return n // want "return boxes a int into an interface on the hot path"
}

//dtlint:hotpath
func allocs(xs []int, s string) string {
	xs = append(xs, 1)  // want "append may grow the backing array on the hot path"
	m := make([]int, 4) // want "make allocates on the hot path"
	_ = m
	q := new(item) // want "new allocates on the hot path"
	_ = q
	r := &item{n: 1} // want "&composite literal allocates on the hot path"
	_ = r
	lit := []int{1, 2} // want "slice literal allocates on the hot path"
	_ = lit
	mp := map[int]int{} // want "map literal allocates on the hot path"
	_ = mp
	s2 := s + "x" // want "string concatenation allocates on the hot path"
	s2 += "y"     // want "string .= allocates on the hot path"
	return s2
}

//dtlint:hotpath
func clean(xs []int, p *item) int {
	sum := 0
	for _, x := range xs {
		sum += x
	}
	p.n = sum
	xs[0] = sum
	return sum // ok: arithmetic, indexing and field writes never allocate
}

//dtlint:hotpath
func allowedGrow(xs []int) []int {
	//dtlint:allow hotalloc: free list retains capacity, append is amortized zero in steady state
	return append(xs, 0)
}

// setup is cold, but the literal it installs runs per event: the marker
// on the line above the literal makes its body a hot path.
func setup(buf []int) {
	//dtlint:hotpath
	litHolder = func(n int) int {
		buf = append(buf, n) // want "append may grow the backing array on the hot path"
		return buf[0]
	}
}
