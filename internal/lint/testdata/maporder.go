// Fixture for the maporder analyzer; see lint_test.go.
package fixture

import "sort"

func leakyIteration(m map[int]string) []string {
	var out []string
	for _, v := range m { // want "map iteration order is randomized"
		out = append(out, v)
	}
	return out
}

func sortedIteration(m map[int]string) []string {
	keys := make([]int, 0, len(m))
	for k := range m { // ok: canonical collect-then-sort idiom
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys { // ok: slice range
		out = append(out, m[k])
	}
	return out
}

func unsortedCollection(m map[int]string) []int {
	var keys []int
	for k := range m { // want "map iteration order is randomized"
		keys = append(keys, k)
	}
	return keys // never sorted: the order leak survives in the result
}

func provenInsensitive(m map[int]int) int {
	sum := 0
	//dtlint:allow maporder -- addition is commutative
	for _, v := range m {
		sum += v
	}
	return sum
}
