// Fixture for the nondeterm analyzer. This file lives under testdata so
// the go tool never builds it; lint_test.go parses, type-checks and
// analyzes it, comparing diagnostics against the `// want` comments.
package fixture

import (
	"math/rand"
	"time"
)

// jitter draws from an injected source — the sanctioned pattern.
func jitter(rng *rand.Rand) int64 {
	return rng.Int63n(1000) // ok: injected *rand.Rand
}

func wallClock() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // ok: Since is only flagged via the Now it needs
}

func globalSource() int {
	return rand.Intn(10) // want "process-global random source"
}

func shuffled(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "process-global random source"
}

func localSource(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want "private random source" "private random source"
}

func sanctionedRoot(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) //dtlint:allow nondeterm -- fixture's designated root source
}
