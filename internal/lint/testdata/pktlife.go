// Fixture for the pktlife analyzer: AllocPacket must reach FreePacket or
// a handoff on every control-flow path, and EventRef handles must not be
// reused after Cancel. The local types mirror the shapes in
// internal/netsim and internal/sim; the analyzer matches them by name.
package fixture

type Packet struct{ Size int }

type Network struct{ free []*Packet }

func (n *Network) AllocPacket() *Packet { return &Packet{} }
func (n *Network) FreePacket(p *Packet) {}

type Port struct{ net *Network }

func (p *Port) Send(pkt *Packet) {}

type EventRef struct{ id, gen int }

func (r EventRef) Cancel()       {}
func (r EventRef) Pending() bool { return false }

type stash struct {
	pkt *Packet
	ref EventRef
}

// dropPathMissesRecycle seeds the bug class this analyzer exists for: the
// overflow branch counts the drop but forgets to recycle the packet, the
// exact shape of a missing pool.FreePacket in netsim.Port.drop.
func dropPathMissesRecycle(n *Network, port *Port, overflow bool) {
	pkt := n.AllocPacket() // want "packet pkt can reach function exit without FreePacket or a handoff"
	if overflow {
		return // leaks pkt
	}
	port.Send(pkt)
}

func cleanAllPaths(n *Network, port *Port, drop bool) {
	pkt := n.AllocPacket() // ok: both branches terminate the lifecycle
	if drop {
		n.FreePacket(pkt)
		return
	}
	port.Send(pkt)
}

func discarded(n *Network) {
	n.AllocPacket() // want "AllocPacket result discarded"
}

func blankAssigned(n *Network) {
	_ = n.AllocPacket() // want "AllocPacket result assigned to _"
}

func overwriteWhileLive(n *Network, port *Port) {
	pkt := n.AllocPacket()
	pkt = n.AllocPacket() // want "packet pkt overwritten while still live"
	port.Send(pkt)
}

func loopClean(n *Network, port *Port, k int) {
	for i := 0; i < k; i++ {
		pkt := n.AllocPacket() // ok: released every iteration
		port.Send(pkt)
	}
}

func deferredFree(n *Network, cond bool) {
	pkt := n.AllocPacket() // ok: the deferred free covers every path
	defer n.FreePacket(pkt)
	if cond {
		return
	}
	pkt.Size++
}

func escapesToField(n *Network, st *stash) {
	pkt := n.AllocPacket() // ok: stored, ownership transferred
	st.pkt = pkt
}

func escapesToClosure(n *Network) func() int {
	pkt := n.AllocPacket() // ok: captured, ownership transferred
	return func() int { return pkt.Size }
}

func returnsPacket(n *Network) *Packet {
	pkt := n.AllocPacket() // ok: returned to the caller
	return pkt
}

func allowedLeak(n *Network, trace bool) {
	//dtlint:allow pktlife: measurement probe, the packet is owned by the trace buffer for the run
	pkt := n.AllocPacket()
	if trace {
		return
	}
	n.FreePacket(pkt)
}

func reuseAfterCancel(r EventRef) {
	r.Cancel()
	if r.Pending() { // want "r.Pending called after Cancel"
		return
	}
}

func doubleCancel(r EventRef) {
	r.Cancel()
	r.Cancel() // want "r.Cancel called after Cancel"
}

func cancelThenReassign(st *stash, fresh EventRef) {
	st.ref.Cancel()
	st.ref = fresh  // reassignment re-arms the handle
	st.ref.Cancel() // ok: fresh handle
}

func cancelOneBranch(r EventRef, cond bool) {
	if cond {
		r.Cancel()
	}
	r.Pending() // want "r.Pending called after Cancel"
}

func allowedRecancel(r EventRef) {
	r.Cancel()
	//dtlint:allow pktlife: Cancel is generation-checked and idempotent, the double call is intentional teardown
	r.Cancel()
}
