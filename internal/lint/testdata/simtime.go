// Fixture for the simtime analyzer; see lint_test.go.
package fixture

import (
	"time"

	"dtdctcp/internal/sim"
)

// epoch shows the sanctioned way to name a magic instant.
const epoch sim.Time = 1_000_000 // ok: defining a named constant is the fix

func schedule(at sim.Time) {}

func rawLiterals() {
	schedule(1000)      // want "raw literal 1000 used as sim.Time"
	t := sim.Time(2500) // want "raw literal 2500 used as sim.Time"
	if t > 300 {        // want "raw literal 300 used as sim.Time"
		return
	}
}

func sanctioned() {
	schedule(sim.FromDuration(10 * time.Microsecond)) // ok: unit is explicit
	schedule(sim.TimeZero)                            // ok: named constant
	schedule(0)                                       // ok: the zero value is unambiguous
	schedule(epoch)                                   // ok: named constant
	schedule(sim.Time(12345)) //dtlint:allow simtime -- fixture exercises the annotation path
}
