// Fixture for the soloengine analyzer: no goroutines, channel
// operations, or package-level writes inside the single-threaded engine
// core. Concurrency belongs to internal/runner, which owns whole private
// engines per worker.
package fixture

var counter int
var registry = map[string]int{}

type engine struct{ n int }

func spawn(fn func()) {
	go fn() // want "go statement in the single-threaded engine core"
}

func send(ch chan int, v int) {
	ch <- v // want "channel send in the engine core"
}

func recv(ch chan int) int {
	return <-ch // want "channel receive in the engine core"
}

func pick(a, b chan int) int {
	select { // want "select in the engine core"
	case v := <-a: // want "channel receive in the engine core"
		return v
	case v := <-b: // want "channel receive in the engine core"
		return v
	}
}

func bumpGlobal() {
	counter++ // want "write to package-level variable counter"
}

func storeGlobal(k string, v int) {
	registry[k] = v // want "write to package-level variable registry"
}

func localState() int {
	n := 0
	n++ // ok: locals are engine-owned
	return n
}

func (e *engine) step() {
	e.n++ // ok: receiver state rides inside one engine
}

func readGlobal() int {
	return counter // ok: reads do not break isolation
}

func allowedInit() {
	//dtlint:allow soloengine: init-time registration, runs before any engine starts
	counter = 0
}

// dispatchBarrier is the sanctioned sync layer: a reasoned shardboundary
// marker exempts the whole body, including the nested worker literal.
//
//dtlint:shardboundary epoch barrier fan-out/join is the one place concurrency belongs
func dispatchBarrier(work chan int, done chan int) {
	go func() { // ok: inside the marked sync layer
		for h := range work {
			done <- h // ok: nested literal rides the exemption
		}
	}()
	select { // ok
	case v := <-done: // ok
		_ = v
	default:
	}
}

func joinBarrier(done chan int) int {
	//dtlint:shardboundary worker join publishes shard state to the barrier
	collect := func() int { return <-done } // ok: marker on the line above the literal
	return collect()
}

func unmarkedCoordinator(work chan int) {
	work <- 1 // want "channel send in the engine core"
}
