// Fixture for the soloengine analyzer: no goroutines, channel
// operations, or package-level writes inside the single-threaded engine
// core. Concurrency belongs to internal/runner, which owns whole private
// engines per worker.
package fixture

var counter int
var registry = map[string]int{}

type engine struct{ n int }

func spawn(fn func()) {
	go fn() // want "go statement in the single-threaded engine core"
}

func send(ch chan int, v int) {
	ch <- v // want "channel send in the engine core"
}

func recv(ch chan int) int {
	return <-ch // want "channel receive in the engine core"
}

func pick(a, b chan int) int {
	select { // want "select in the engine core"
	case v := <-a: // want "channel receive in the engine core"
		return v
	case v := <-b: // want "channel receive in the engine core"
		return v
	}
}

func bumpGlobal() {
	counter++ // want "write to package-level variable counter"
}

func storeGlobal(k string, v int) {
	registry[k] = v // want "write to package-level variable registry"
}

func localState() int {
	n := 0
	n++ // ok: locals are engine-owned
	return n
}

func (e *engine) step() {
	e.n++ // ok: receiver state rides inside one engine
}

func readGlobal() int {
	return counter // ok: reads do not break isolation
}

func allowedInit() {
	//dtlint:allow soloengine: init-time registration, runs before any engine starts
	counter = 0
}
