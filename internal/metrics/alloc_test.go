//go:build !race

package metrics_test

import (
	"testing"
	"time"

	"dtdctcp/internal/invariant"
	"dtdctcp/internal/metrics"
	"dtdctcp/internal/netsim"
	"dtdctcp/internal/sim"
)

// TestHandlesAllocFree pins the record path of every handle type: Inc,
// Add, Set, and Observe perform no heap allocations. This is the
// registry's core contract — instrumentation must be free to leave on.
func TestHandlesAllocFree(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariant assertions allocate; alloc accounting is meaningless")
	}
	r := metrics.NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", metrics.LinearBounds(10, 10, 8))
	avg := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1.5)
		g.Add(0.5)
		h.Observe(35)
		h.Observe(1e9) // overflow bucket
	})
	if avg != 0 {
		t.Fatalf("record path allocated %.2f times per round, want 0", avg)
	}
}

type dropSink struct{ n int }

func (d *dropSink) Deliver(*netsim.Packet) { d.n++ }

// TestInstrumentedForwardSteadyStateAllocFree is the satellite overhead
// pin: the netsim steady state of internal/netsim's alloc tests must
// remain zero-alloc with the full metrics layer attached — engine
// counters instrumented, a queue-depth histogram monitoring the busy
// port. Mirrors netsim.TestForwardSteadyStateAllocFree but with
// observability on.
func TestInstrumentedForwardSteadyStateAllocFree(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariant assertions allocate; alloc accounting is meaningless")
	}
	e := sim.NewEngine(1)
	n := netsim.NewNetwork(e)
	src := n.AddHost("src")
	dst := n.AddHost("dst")
	sw := n.AddSwitch("sw")
	cfg := netsim.PortConfig{Rate: 100 * netsim.Gbps, Delay: time.Microsecond, Buffer: 1 << 24}
	if err := n.Connect(src, sw, cfg, cfg); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect(dst, sw, cfg, cfg); err != nil {
		t.Fatal(err)
	}
	if err := n.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	sink := &dropSink{}
	dst.Register(1, sink)

	reg := metrics.NewRegistry()
	metrics.InstrumentEngine(reg, e)
	hist := reg.Histogram("port_queue_depth_pkts", "", metrics.LinearBounds(1, 1, 64))
	src.Uplink().SetMonitor(metrics.NewQueueDepthMonitor(hist, 1500))

	send := func() {
		pkt := src.Network().AllocPacket()
		pkt.Flow = 1
		pkt.Dst = dst.ID()
		pkt.Size = 1500
		pkt.ECT = true
		src.Send(pkt)
	}

	// Warm-up grows rings, free list, and packet pool to steady state.
	for i := 0; i < 512; i++ {
		send()
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}

	const batch = 64
	avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < batch; i++ {
			send()
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("instrumented steady state allocated %.2f times per %d-packet batch, want 0", avg, batch)
	}
	if sink.n == 0 {
		t.Fatal("nothing delivered")
	}
	if hist.Count() == 0 {
		t.Fatal("queue-depth monitor observed nothing")
	}
	// The pull instrumentation only pays at snapshot time; the counters
	// must nonetheless reflect the traffic just forwarded.
	s := reg.Snapshot(e.Now().Seconds())
	if s.CounterValue("sim_events_executed_total") == 0 {
		t.Fatal("engine instrumentation read zero executed events")
	}
}
