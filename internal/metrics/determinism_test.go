package metrics_test

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dtdctcp/internal/chaos"
	"dtdctcp/internal/core"
	"dtdctcp/internal/metrics"
	"dtdctcp/internal/netsim"
)

var update = flag.Bool("update", false, "rewrite testdata golden snapshots")

// goldenConfig is the run behind the committed golden snapshot: a
// chaos-perturbed, sampler-enabled dumbbell chosen so every instrumented
// layer — engine, bottleneck port, senders, chaos controller — has
// something to say.
func goldenConfig() core.DumbbellConfig {
	return core.DumbbellConfig{
		Protocol:   core.DCTCP(40, 1.0/16),
		Flows:      8,
		Rate:       1 * netsim.Gbps,
		RTT:        100 * time.Microsecond,
		BufferPkts: 100,
		Duration:   10 * time.Millisecond,
		Warmup:     2 * time.Millisecond,
		Seed:       1,
		Chaos: &chaos.Plan{
			Name: "golden-blackout",
			Events: []chaos.Event{
				{At: chaos.D(5 * time.Millisecond), Kind: chaos.KindLinkDown,
					Link: "bottleneck", Flush: true, DownFor: chaos.D(time.Millisecond)},
			},
		},
		MetricsSampleEvery: 500 * time.Microsecond,
	}
}

func goldenRun(t *testing.T) *metrics.Snapshot {
	t.Helper()
	res, err := core.RunDumbbell(goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics == nil {
		t.Fatal("metrics-enabled run returned no snapshot")
	}
	return res.Metrics
}

// TestSnapshotRepeatable: the same seed yields byte-identical snapshots
// across repeated runs in one process.
func TestSnapshotRepeatable(t *testing.T) {
	a, b := goldenRun(t), goldenRun(t)
	if a.Hash64() != b.Hash64() {
		t.Fatal("repeat runs produced different snapshot digests")
	}
	ja, err := a.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatal("repeat runs produced different snapshot JSON")
	}
}

// TestSnapshotWorkerIndependent: snapshots are byte-identical whether
// the sweep runs on 1 worker or 8 — each point owns a private registry
// seeded only by the configuration.
func TestSnapshotWorkerIndependent(t *testing.T) {
	base := goldenConfig()
	flows := []int{4, 8, 16}
	one, err := core.SweepFlowsParallel(context.Background(), base, flows, 1)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := core.SweepFlowsParallel(context.Background(), base, flows, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range flows {
		sa, sb := one[i].Result.Metrics, eight[i].Result.Metrics
		if sa == nil || sb == nil {
			t.Fatalf("N=%d: missing snapshot", flows[i])
		}
		if sa.Hash64() != sb.Hash64() {
			t.Fatalf("N=%d: snapshot digest differs between workers=1 and workers=8", flows[i])
		}
	}
}

// TestGoldenSnapshot pins the full serialized snapshot of the golden
// run. Regenerate with: go test ./internal/metrics -run Golden -update
func TestGoldenSnapshot(t *testing.T) {
	got, err := goldenRun(t).MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden_dumbbell.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("snapshot drifted from %s (run with -update if intended)", path)
	}
}

// TestGoldenCoversAllLayers asserts the acceptance criterion directly:
// the golden run's snapshot carries nonzero counters from all four
// instrumented layers, and the sampler produced series.
func TestGoldenCoversAllLayers(t *testing.T) {
	s := goldenRun(t)
	for _, id := range []string{
		"sim_events_executed_total",              // engine
		`port_enqueued_total{port="bottleneck"}`, // netsim
		"tcp_segments_sent_total",                // tcp
		"tcp_acks_received_total",                // tcp (ECE-ratio denominator)
		"chaos_actions_executed_total",           // chaos
	} {
		if s.CounterValue(id) == 0 {
			t.Errorf("layer counter %s is zero in the golden run", id)
		}
	}
	if m, ok := s.Get(`port_queue_depth_pkts{port="bottleneck"}`); !ok || m.Hist == nil || m.Hist.Count == 0 {
		t.Error("bottleneck queue-depth histogram is empty")
	}
	if len(s.Series) == 0 {
		t.Error("sampler produced no series")
	}
	for _, name := range []string{"metrics_queue_pkts", "metrics_alpha_mean", "metrics_cwnd_mean_pkts"} {
		if s.SeriesByName(name) == nil {
			t.Errorf("series %s missing from snapshot", name)
		}
	}
	// The blackout flushed packets: the fault-drop counter must agree.
	if s.CounterValue(`port_dropped_fault_total{port="bottleneck"}`) == 0 {
		t.Error("chaos blackout produced no fault drops on the bottleneck")
	}
}

// TestMetricsDoNotPerturbResults: with the sampler off, enabling
// metrics must not change a single result field — collection is purely
// pull-based.
func TestMetricsDoNotPerturbResults(t *testing.T) {
	cfg := goldenConfig()
	cfg.MetricsSampleEvery = 0 // sampler ticks are events; exclude them
	cfg.Metrics = false
	off, err := core.RunDumbbell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Metrics = true
	on, err := core.RunDumbbell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if on.Metrics == nil {
		t.Fatal("metrics-enabled run returned no snapshot")
	}
	if off.QueueMeanPkts != on.QueueMeanPkts || off.QueueStdPkts != on.QueueStdPkts ||
		off.Utilization != on.Utilization || off.Timeouts != on.Timeouts ||
		off.FaultDrops != on.FaultDrops || off.Marks != on.Marks {
		t.Fatalf("enabling metrics changed results:\noff: %+v\non:  %+v", off, on)
	}
}
