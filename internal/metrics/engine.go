package metrics

import "dtdctcp/internal/sim"

// InstrumentEngine registers pull metrics over the engine's existing
// counters: events scheduled, executed, and cancelled, free-list hits
// and misses plus the derived hit rate, compaction passes, and the
// pending-queue depth with its high-water mark. Everything reads
// sim.EngineStats at snapshot time, so the event loop is untouched.
func InstrumentEngine(r *Registry, e *sim.Engine) {
	InstrumentEngineStats(r, e.Stats)
}

// InstrumentEngineStats registers the same metric family over any
// EngineStats source — a single engine's Stats, or a ShardedEngine's
// merged Stats, so a partitioned run exports one coherent set of totals
// instead of per-shard fragments. The source is only called at snapshot
// time.
func InstrumentEngineStats(r *Registry, stats func() sim.EngineStats) {
	r.CounterFunc("sim_events_scheduled_total",
		"Events ever enqueued on the engine.",
		func() uint64 { return stats().Scheduled })
	r.CounterFunc("sim_events_executed_total",
		"Events whose handler ran.",
		func() uint64 { return stats().Processed })
	r.CounterFunc("sim_events_cancelled_total",
		"Events lazily cancelled before firing.",
		func() uint64 { return stats().Cancelled })
	r.CounterFunc("sim_queue_compactions_total",
		"Compaction passes removing cancelled events from the heap.",
		func() uint64 { return stats().Compactions })
	r.CounterFunc("sim_free_list_hits_total",
		"Event allocations served from the free list.",
		func() uint64 { return stats().FreeHits })
	r.CounterFunc("sim_free_list_misses_total",
		"Event allocations that fell through to the heap.",
		func() uint64 { return stats().FreeMisses })
	r.GaugeFunc("sim_free_list_hit_rate",
		"Fraction of event allocations served from the free list.",
		func() float64 {
			s := stats()
			total := s.FreeHits + s.FreeMisses
			if total == 0 {
				return 0
			}
			return float64(s.FreeHits) / float64(total)
		})
	r.GaugeFunc("sim_events_pending",
		"Events currently queued (including uncompacted cancellations).",
		func() float64 { return float64(stats().Pending) })
	r.GaugeFunc("sim_events_pending_max",
		"High-water mark of the pending-event queue (the maximum over shards in a sharded run, since per-shard marks do not align in time).",
		func() float64 { return float64(stats().MaxPending) })
}
