package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Histogram counts observations into fixed buckets chosen at
// registration time. Buckets are defined by finite, strictly increasing
// upper bounds with Prometheus semantics — bucket i counts observations
// v ≤ bounds[i] that exceeded every earlier bound — plus one implicit
// overflow bucket above the last bound. Observe performs a binary
// search over the bounds and increments one slot: no allocation, no
// floating accumulation beyond the running sum.
type Histogram struct {
	bounds []float64 // finite, strictly increasing upper bounds
	counts []uint64  // len(bounds)+1; last slot is the overflow bucket
	count  uint64
	sum    float64
	min    float64
	max    float64
}

// NewHistogram creates a histogram over the given upper bounds. The
// bounds must be finite and strictly increasing; violating that is a
// configuration error and panics. Use Registry.Histogram to register it
// for snapshots.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	own := make([]float64, len(bounds))
	copy(own, bounds)
	for i, b := range own {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("metrics: non-finite histogram bound %v", b))
		}
		if i > 0 && b <= own[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not strictly increasing at %v", b))
		}
	}
	return &Histogram{bounds: own, counts: make([]uint64, len(own)+1)}
}

// Observe records one value.
//
//dtlint:hotpath
func (h *Histogram) Observe(v float64) {
	// First bound ≥ v; the overflow bucket catches v above every bound.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the running sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// Min and Max return the observed extrema (zero before any observation).
func (h *Histogram) Min() float64 { return h.min }

// Max returns the largest observed value.
func (h *Histogram) Max() float64 { return h.max }

// Mean returns the average observation, or zero before any observation.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Bounds returns a copy of the bucket upper bounds.
func (h *Histogram) Bounds() []float64 {
	out := make([]float64, len(h.bounds))
	copy(out, h.bounds)
	return out
}

// Counts returns a copy of the per-bucket counts, overflow bucket last.
func (h *Histogram) Counts() []uint64 {
	out := make([]uint64, len(h.counts))
	copy(out, h.counts)
	return out
}

// Quantile estimates the q-quantile (q in [0, 1]) from the buckets by
// linear interpolation inside the bucket holding the target rank. The
// estimate is exact at the observed extrema — q ≤ 0 returns Min, q ≥ 1
// returns Max — clamped to [Min, Max] everywhere, and monotone
// nondecreasing in q. Returns zero before any observation.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := q * float64(h.count)
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		lo := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		// Bucket i holds the target rank. Interpolate between its
		// edges, using the observed extrema for the outermost edges.
		lower := h.min
		if i > 0 {
			lower = h.bounds[i-1]
		}
		upper := h.max
		if i < len(h.bounds) && h.bounds[i] < upper {
			upper = h.bounds[i]
		}
		if lower < h.min {
			lower = h.min
		}
		if upper < lower {
			upper = lower
		}
		frac := (rank - float64(lo)) / float64(c)
		v := lower + (upper-lower)*frac
		if v < h.min {
			v = h.min
		}
		if v > h.max {
			v = h.max
		}
		return v
	}
	return h.max
}

// Merge folds other into h. Both histograms must share identical bucket
// bounds; merging mismatched layouts is a programming error and panics.
// After the merge, h is exactly the histogram of the two concatenated
// observation streams.
func (h *Histogram) Merge(other *Histogram) {
	if len(h.bounds) != len(other.bounds) {
		panic("metrics: merging histograms with different bucket layouts")
	}
	for i := range h.bounds {
		if h.bounds[i] != other.bounds[i] {
			panic("metrics: merging histograms with different bucket bounds")
		}
	}
	if other.count == 0 {
		return
	}
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if h.count == 0 || other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
}

// LinearBounds returns n strictly increasing upper bounds start,
// start+width, ..., start+(n-1)·width — the natural layout for a
// queue-depth histogram over a known buffer size.
func LinearBounds(start, width float64, n int) []float64 {
	if n <= 0 || width <= 0 {
		panic("metrics: LinearBounds needs n > 0 and width > 0")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBounds returns n upper bounds start, start·factor,
// start·factor², ... for quantities spanning orders of magnitude.
func ExponentialBounds(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		panic("metrics: ExponentialBounds needs n > 0, start > 0, factor > 1")
	}
	out := make([]float64, n)
	b := start
	for i := range out {
		out[i] = b
		b *= factor
	}
	return out
}
