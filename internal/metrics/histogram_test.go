package metrics

import (
	"math"
	"math/rand"
	"testing"
)

// randomValues draws n values spanning below, inside, and above the
// bucket range, from a fixed-seed source so failures reproduce.
func randomValues(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64()*140 - 20 // [-20, 120) around bounds [0, 100]
	}
	return out
}

func testBounds() []float64 { return LinearBounds(10, 10, 10) } // 10..100

// TestBucketCountsSumToCount: property 1 — for any observation stream,
// per-bucket counts (overflow included) sum to the observation count.
func TestBucketCountsSumToCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		h := NewHistogram(testBounds())
		vals := randomValues(rng, 1+rng.Intn(400))
		for _, v := range vals {
			h.Observe(v)
		}
		var sum uint64
		for _, c := range h.Counts() {
			sum += c
		}
		if sum != h.Count() || sum != uint64(len(vals)) {
			t.Fatalf("trial %d: bucket sum %d, Count %d, observed %d", trial, sum, h.Count(), len(vals))
		}
	}
}

// TestQuantileMonotone: property 2 — Quantile is nondecreasing in q and
// clamped to the observed extrema.
func TestQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		h := NewHistogram(testBounds())
		for _, v := range randomValues(rng, 1+rng.Intn(300)) {
			h.Observe(v)
		}
		prev := h.Quantile(0)
		if prev != h.Min() {
			t.Fatalf("Quantile(0) = %v, want Min %v", prev, h.Min())
		}
		for q := 0.01; q <= 1.0; q += 0.01 {
			cur := h.Quantile(q)
			if cur < prev {
				t.Fatalf("trial %d: Quantile(%v) = %v < Quantile(prev) = %v", trial, q, cur, prev)
			}
			if cur < h.Min() || cur > h.Max() {
				t.Fatalf("trial %d: Quantile(%v) = %v outside [%v, %v]", trial, q, cur, h.Min(), h.Max())
			}
			prev = cur
		}
		if got := h.Quantile(1); got != h.Max() {
			t.Fatalf("Quantile(1) = %v, want Max %v", got, h.Max())
		}
	}
}

// TestMergeEqualsConcatenation: property 3 — merging two histograms is
// exactly the histogram of the concatenated streams.
func TestMergeEqualsConcatenation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		a := NewHistogram(testBounds())
		b := NewHistogram(testBounds())
		both := NewHistogram(testBounds())
		va := randomValues(rng, rng.Intn(200))
		vb := randomValues(rng, rng.Intn(200))
		for _, v := range va {
			a.Observe(v)
			both.Observe(v)
		}
		for _, v := range vb {
			b.Observe(v)
			both.Observe(v)
		}
		a.Merge(b)
		// Sum is a float accumulation: merging adds two partial sums,
		// so it may differ from the sequential sum in the last ulp.
		sumDiff := math.Abs(a.Sum() - both.Sum())
		if a.Count() != both.Count() || sumDiff > 1e-9*math.Abs(both.Sum()) ||
			a.Min() != both.Min() || a.Max() != both.Max() {
			t.Fatalf("trial %d: merged aggregate differs: count %d/%d sum %v/%v min %v/%v max %v/%v",
				trial, a.Count(), both.Count(), a.Sum(), both.Sum(), a.Min(), both.Min(), a.Max(), both.Max())
		}
		ac, bc := a.Counts(), both.Counts()
		for i := range ac {
			if ac[i] != bc[i] {
				t.Fatalf("trial %d: bucket %d: merged %d, concat %d", trial, i, ac[i], bc[i])
			}
		}
	}
}

func TestMergeEmptyIntoEmpty(t *testing.T) {
	a, b := NewHistogram(testBounds()), NewHistogram(testBounds())
	a.Merge(b)
	if a.Count() != 0 || a.Min() != 0 || a.Max() != 0 {
		t.Fatalf("empty merge changed state: %+v", a)
	}
}

func TestMergeMismatchedBoundsPanics(t *testing.T) {
	a := NewHistogram([]float64{1, 2})
	mustPanic(t, "different bucket layouts", func() { a.Merge(NewHistogram([]float64{1, 2, 3})) })
	mustPanic(t, "different bucket bounds", func() { a.Merge(NewHistogram([]float64{1, 3})) })
}

func TestObserveBucketEdges(t *testing.T) {
	h := NewHistogram([]float64{10, 20})
	h.Observe(10) // Prometheus semantics: v ≤ bound → first bucket
	h.Observe(10.5)
	h.Observe(20)
	h.Observe(21) // overflow
	c := h.Counts()
	if c[0] != 1 || c[1] != 2 || c[2] != 1 {
		t.Fatalf("edge placement wrong: %v", c)
	}
}

func TestQuantileEmptyAndSingle(t *testing.T) {
	h := NewHistogram(testBounds())
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	h.Observe(42)
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 42 {
			t.Fatalf("single-observation Quantile(%v) = %v, want 42", q, got)
		}
	}
	if h.Mean() != 42 {
		t.Fatalf("Mean = %v, want 42", h.Mean())
	}
}

func TestNewHistogramValidation(t *testing.T) {
	mustPanic(t, "at least one", func() { NewHistogram(nil) })
	mustPanic(t, "not strictly increasing", func() { NewHistogram([]float64{1, 1}) })
	mustPanic(t, "non-finite", func() { NewHistogram([]float64{1, 2, math.Inf(1)}) })
}

func TestBoundsHelpers(t *testing.T) {
	lin := LinearBounds(5, 5, 4)
	for i, want := range []float64{5, 10, 15, 20} {
		if lin[i] != want {
			t.Fatalf("LinearBounds[%d] = %v, want %v", i, lin[i], want)
		}
	}
	exp := ExponentialBounds(1, 2, 5)
	for i, want := range []float64{1, 2, 4, 8, 16} {
		if exp[i] != want {
			t.Fatalf("ExponentialBounds[%d] = %v, want %v", i, exp[i], want)
		}
	}
	mustPanic(t, "LinearBounds", func() { LinearBounds(0, 0, 3) })
	mustPanic(t, "ExponentialBounds", func() { ExponentialBounds(1, 1, 3) })
}
