// Package metrics is the simulator's observability layer: a
// deterministic, zero-alloc-on-hot-path metrics registry holding
// counters, gauges, and fixed-bucket histograms over virtual time.
//
// The design follows the same contract as the rest of the simulator: a
// Registry belongs to exactly one run (one engine, one goroutine), all
// handles are resolved at registration time, and the record path —
// Counter.Inc, Gauge.Set, Histogram.Observe — performs no map lookups,
// no interface boxing, and no heap allocations. Snapshots taken at the
// end of a run are pure functions of the run, so two runs with the same
// seed produce byte-identical snapshot JSON regardless of worker count.
//
// Two registration styles cover the two instrumentation patterns in the
// stack:
//
//   - Push handles (Counter, Gauge, Histogram) for measurements with no
//     existing home, incremented directly by model code.
//   - Pull functions (CounterFunc, GaugeFunc) for layers that already
//     keep plain counters (sim.EngineStats, netsim.PortStats,
//     tcp.SenderStats): the function is evaluated only at snapshot or
//     sampler time, so the instrumented hot path costs nothing at all.
//
// A Registry must not be shared across goroutines. Concurrent sweep
// points each own a private Registry next to their private Engine (see
// internal/runner); snapshots come back with the results in input order.
package metrics

import (
	"fmt"
	"sort"
)

// Label is one name/value pair qualifying a metric, e.g. port="bottleneck".
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing uint64. The zero value is ready
// to use, but counters are normally obtained from Registry.Counter so
// they appear in snapshots.
type Counter struct {
	v uint64
}

// Inc adds one.
//
//dtlint:hotpath
func (c *Counter) Inc() { c.v++ }

// Add adds n.
//
//dtlint:hotpath
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is a float64 that can go up and down.
type Gauge struct {
	v float64
}

// Set replaces the value.
//
//dtlint:hotpath
func (g *Gauge) Set(v float64) { g.v = v }

// Add shifts the value by delta.
//
//dtlint:hotpath
func (g *Gauge) Add(delta float64) { g.v += delta }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// kind discriminates the metric variants inside the registry.
type kind uint8

const (
	kindCounter kind = iota
	kindCounterFunc
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// String names the kind for snapshots ("counter", "gauge", "histogram");
// pull variants snapshot identically to their push counterparts.
func (k kind) String() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one registered entry.
type metric struct {
	name   string
	help   string
	labels []Label // sorted by key
	id     string  // name{k="v",...}, the sort and dedup key
	kind   kind

	counter   *Counter
	counterFn func() uint64
	gauge     *Gauge
	gaugeFn   func() float64
	hist      *Histogram
}

// Registry holds one run's metrics. Create with NewRegistry; register
// everything up front; record through the returned handles; call
// Snapshot once the run ends. Not safe for concurrent use.
type Registry struct {
	metrics []*metric
	index   map[string]*metric
	series  []*seriesRef
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*metric)}
}

// Counter registers a push counter and returns its handle.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.add(&metric{name: name, help: help, labels: labels, kind: kindCounter, counter: c})
	return c
}

// CounterFunc registers a pull counter: fn is evaluated at snapshot
// time, so instrumenting an existing plain counter costs nothing on the
// hot path.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	if fn == nil {
		panic("metrics: nil CounterFunc for " + name)
	}
	r.add(&metric{name: name, help: help, labels: labels, kind: kindCounterFunc, counterFn: fn})
}

// Gauge registers a push gauge and returns its handle.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.add(&metric{name: name, help: help, labels: labels, kind: kindGauge, gauge: g})
	return g
}

// GaugeFunc registers a pull gauge, evaluated at snapshot and sampler
// time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if fn == nil {
		panic("metrics: nil GaugeFunc for " + name)
	}
	r.add(&metric{name: name, help: help, labels: labels, kind: kindGaugeFunc, gaugeFn: fn})
}

// Histogram registers a fixed-bucket histogram over the given finite,
// strictly increasing upper bounds (an implicit overflow bucket catches
// everything above the last bound) and returns its handle.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	h := NewHistogram(bounds)
	r.add(&metric{name: name, help: help, labels: labels, kind: kindHistogram, hist: h})
	return h
}

// add validates, indexes, and stores one metric. Duplicate ids and
// malformed names are programming errors and panic, matching the
// fail-fast convention of Engine.Schedule.
func (r *Registry) add(m *metric) {
	if !validName(m.name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", m.name))
	}
	m.labels = sortedLabels(m.labels)
	for _, l := range m.labels {
		if !validName(l.Key) {
			panic(fmt.Sprintf("metrics: invalid label key %q on %s", l.Key, m.name))
		}
	}
	m.id = metricID(m.name, m.labels)
	if _, dup := r.index[m.id]; dup {
		panic(fmt.Sprintf("metrics: duplicate registration of %s", m.id))
	}
	r.index[m.id] = m
	r.metrics = append(r.metrics, m)
}

// validName accepts Prometheus-compatible identifiers:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// sortedLabels returns a copy of labels ordered by key. Sorting at
// registration time keeps every later traversal (snapshot, Prometheus
// text, digest) deterministic without touching a map.
func sortedLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// metricID renders the canonical identity name{k="v",...}.
func metricID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	id := name + "{"
	for i, l := range labels {
		if i > 0 {
			id += ","
		}
		id += fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	return id + "}"
}
