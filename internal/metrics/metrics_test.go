package metrics

import (
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total", "help")
	g := r.Gauge("depth", "help")
	c.Inc()
	c.Add(4)
	g.Set(2.5)
	g.Add(-1)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", g.Value())
	}
	s := r.Snapshot(0)
	if got := s.CounterValue("events_total"); got != 5 {
		t.Fatalf("snapshot counter = %d, want 5", got)
	}
	if got := s.GaugeValue("depth"); got != 1.5 {
		t.Fatalf("snapshot gauge = %v, want 1.5", got)
	}
}

func TestPullFunctionsEvaluatedAtSnapshotTime(t *testing.T) {
	r := NewRegistry()
	var n uint64
	var v float64
	r.CounterFunc("pull_total", "", func() uint64 { return n })
	r.GaugeFunc("pull_gauge", "", func() float64 { return v })
	n, v = 7, 3.25
	s := r.Snapshot(0)
	if got := s.CounterValue("pull_total"); got != 7 {
		t.Fatalf("CounterFunc read %d, want 7", got)
	}
	if got := s.GaugeValue("pull_gauge"); got != 3.25 {
		t.Fatalf("GaugeFunc read %v, want 3.25", got)
	}
	// A later snapshot sees later values: nothing was cached.
	n = 9
	if got := r.Snapshot(0).CounterValue("pull_total"); got != 9 {
		t.Fatalf("second snapshot read %d, want 9", got)
	}
}

func TestLabelsSortedAndCanonicalID(t *testing.T) {
	r := NewRegistry()
	r.Counter("pkts_total", "", L("zone", "b"), L("port", "a"))
	s := r.Snapshot(0)
	m := s.Metrics[0]
	if m.Labels[0].Key != "port" || m.Labels[1].Key != "zone" {
		t.Fatalf("labels not sorted by key: %+v", m.Labels)
	}
	want := `pkts_total{port="a",zone="b"}`
	if m.ID() != want {
		t.Fatalf("ID = %q, want %q", m.ID(), want)
	}
}

func TestSameNameDifferentLabelsAllowed(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("pkts_total", "", L("port", "a"))
	b := r.Counter("pkts_total", "", L("port", "b"))
	a.Inc()
	b.Add(2)
	s := r.Snapshot(0)
	if got := s.CounterValue(`pkts_total{port="a"}`); got != 1 {
		t.Fatalf("port a = %d, want 1", got)
	}
	if got := s.CounterValue(`pkts_total{port="b"}`); got != 2 {
		t.Fatalf("port b = %d, want 2", got)
	}
}

func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic, want one mentioning %q", want)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic %v, want mention of %q", r, want)
		}
	}()
	fn()
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	mustPanic(t, "duplicate", func() { r.Counter("x_total", "") })
}

func TestInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	mustPanic(t, "invalid metric name", func() { r.Counter("", "") })
	mustPanic(t, "invalid metric name", func() { r.Counter("9starts_with_digit", "") })
	mustPanic(t, "invalid metric name", func() { r.Counter("has space", "") })
	mustPanic(t, "invalid label key", func() { r.Counter("ok_total", "", L("bad key", "v")) })
	mustPanic(t, "nil CounterFunc", func() { r.CounterFunc("cf_total", "", nil) })
	mustPanic(t, "nil GaugeFunc", func() { r.GaugeFunc("gf", "", nil) })
}

func TestValidNameAcceptsPrometheusIdentifiers(t *testing.T) {
	for _, ok := range []string{"a", "_x", "ns:sub:metric_total", "A9_b"} {
		if !validName(ok) {
			t.Errorf("validName(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{"", "9x", "a-b", "a.b", "µ"} {
		if validName(bad) {
			t.Errorf("validName(%q) = true, want false", bad)
		}
	}
}

func TestSnapshotSortedByID(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total", "")
	r.Counter("a_total", "")
	r.Gauge("m_gauge", "")
	s := r.Snapshot(0)
	for i := 1; i < len(s.Metrics); i++ {
		if s.Metrics[i-1].ID() >= s.Metrics[i].ID() {
			t.Fatalf("snapshot not sorted: %q before %q", s.Metrics[i-1].ID(), s.Metrics[i].ID())
		}
	}
}
