package metrics

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins writing a CPU profile to path and returns a
// stop function that ends profiling and closes the file. Commands call
// this when -cpuprofile is given; profiling is strictly opt-in and has
// no effect on simulation results (it samples the OS thread, not the
// virtual clock).
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("metrics: create cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("metrics: start cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile garbage-collects for an up-to-date picture and
// writes the heap profile to path. Commands call this at exit when
// -memprofile is given.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics: create heap profile: %w", err)
	}
	runtime.GC()
	if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
		f.Close()
		return fmt.Errorf("metrics: write heap profile: %w", err)
	}
	return f.Close()
}
