package metrics

import (
	"os"
	"path/filepath"
	"testing"
)

func TestCPUProfileWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.pprof")
	stop, err := StartCPUProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Fatal("CPU profile is empty")
	}
	// A second profile must not collide with the finished one.
	stop2, err := StartCPUProfile(filepath.Join(t.TempDir(), "cpu2.pprof"))
	if err != nil {
		t.Fatal(err)
	}
	if err := stop2(); err != nil {
		t.Fatal(err)
	}
}

func TestHeapProfileWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.pprof")
	if err := WriteHeapProfile(path); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Fatal("heap profile is empty")
	}
}

func TestProfileErrorsOnBadPath(t *testing.T) {
	if _, err := StartCPUProfile(filepath.Join(t.TempDir(), "no", "such", "dir", "p")); err == nil {
		t.Fatal("want error for unwritable CPU profile path")
	}
	if err := WriteHeapProfile(filepath.Join(t.TempDir(), "no", "such", "dir", "p")); err == nil {
		t.Fatal("want error for unwritable heap profile path")
	}
}
