package metrics

import "dtdctcp/internal/sim"

// QueueDepthMonitor observes every queue-length change of a port into a
// histogram, in packets. It satisfies netsim.QueueMonitor structurally
// (this package does not import netsim — wiring lives in core), so a
// port can fan out to both the experiment's QueueRecorder and this
// monitor. QueueChanged is on the per-packet hot path: one division,
// one binary search, no allocation.
type QueueDepthMonitor struct {
	hist    *Histogram
	pktSize float64
}

// NewQueueDepthMonitor creates a monitor recording into hist, converting
// byte depths to packets of size pktSize bytes.
func NewQueueDepthMonitor(hist *Histogram, pktSize int) *QueueDepthMonitor {
	if pktSize <= 0 {
		panic("metrics: queue-depth monitor needs a positive packet size")
	}
	return &QueueDepthMonitor{hist: hist, pktSize: float64(pktSize)}
}

// QueueChanged records the new depth. The sim.Time parameter keeps the
// signature aligned with netsim.QueueMonitor; the histogram is
// time-agnostic by design (the time-weighted view is QueueRecorder's
// job).
//
//dtlint:hotpath
func (m *QueueDepthMonitor) QueueChanged(_ sim.Time, qlenBytes int) {
	m.hist.Observe(float64(qlenBytes) / m.pktSize)
}
