package metrics

import (
	"time"

	"dtdctcp/internal/sim"
	"dtdctcp/internal/stats"
)

// seriesRef is one sampler-owned series registered for snapshot export.
type seriesRef struct {
	series *stats.Series
}

// Sampler turns gauges into time series over virtual time: every tick
// of the engine's clock it reads each tracked value and appends one
// point. Because ticks are ordinary engine events, the sampled instants
// are exact virtual times and the whole series is a pure function of
// the run — the same series for the same seed, on any worker count.
//
// A sampler does perturb the event stream (its ticks are events), so
// runs with and without a sampler are different runs; enable it
// per-configuration, not conditionally mid-experiment.
type Sampler struct {
	engine  *sim.Engine
	reg     *Registry
	every   time.Duration
	tracked []trackedSample
	tickFn  func(any)
	started bool
}

// trackedSample binds one value source to its output series.
type trackedSample struct {
	fn     func() float64
	series *stats.Series
}

// NewSampler creates a sampler ticking every interval on engine,
// exporting its series through reg's snapshots. Call Track for each
// value, then Start once.
func NewSampler(reg *Registry, engine *sim.Engine, every time.Duration) *Sampler {
	if every <= 0 {
		panic("metrics: sampler interval must be positive")
	}
	s := &Sampler{engine: engine, reg: reg, every: every}
	s.tickFn = s.tick
	return s
}

// Track samples fn each tick into a new series with the given name and
// returns the series. Track a push gauge with TrackGauge; any
// registered GaugeFunc can be tracked by passing the same function.
func (s *Sampler) Track(name string, fn func() float64) *stats.Series {
	if s.started {
		panic("metrics: Track after Start")
	}
	series := stats.NewSeries(name)
	s.tracked = append(s.tracked, trackedSample{fn: fn, series: series})
	s.reg.series = append(s.reg.series, &seriesRef{series: series})
	return series
}

// TrackGauge samples a push gauge each tick.
func (s *Sampler) TrackGauge(name string, g *Gauge) *stats.Series {
	return s.Track(name, g.Value)
}

// Start schedules the first tick one interval from now. Starting twice
// is a no-op.
func (s *Sampler) Start() {
	if s.started {
		return
	}
	s.started = true
	s.engine.AfterArg(s.every, s.tickFn, nil)
}

// tick samples every tracked value and reschedules itself.
func (s *Sampler) tick(any) {
	t := s.engine.Now().Seconds()
	for i := range s.tracked {
		s.tracked[i].series.Add(t, s.tracked[i].fn())
	}
	s.engine.AfterArg(s.every, s.tickFn, nil)
}
