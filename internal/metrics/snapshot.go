package metrics

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"sort"
	"strconv"

	"dtdctcp/internal/stats"
)

// MetricSnapshot is one metric's frozen state inside a Snapshot.
// Exactly one of Count (counters), Value (gauges), or Hist (histograms)
// is meaningful, selected by Kind.
type MetricSnapshot struct {
	// Name and Labels identify the metric; labels are sorted by key.
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	// Kind is "counter", "gauge", or "histogram".
	Kind string `json:"kind"`
	// Help is the registration-time description.
	Help string `json:"help,omitempty"`
	// Count carries a counter's value.
	Count uint64 `json:"count,omitempty"`
	// Value carries a gauge's value.
	Value float64 `json:"value,omitempty"`
	// Hist carries a histogram's buckets.
	Hist *HistogramSnapshot `json:"hist,omitempty"`
}

// ID renders the metric's canonical identity name{k="v",...}.
func (m MetricSnapshot) ID() string { return metricID(m.Name, m.Labels) }

// HistogramSnapshot is a histogram's frozen buckets. Bounds are the
// finite upper bounds; Counts has one extra trailing slot for the
// overflow bucket, so the counts always sum to Count.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"total"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
}

// SeriesSnapshot is one sampler-produced time series: virtual-time
// instants in seconds and the sampled gauge values.
type SeriesSnapshot struct {
	Name   string    `json:"name"`
	T      []float64 `json:"t"`
	Values []float64 `json:"values"`
}

// Snapshot is a run-scoped export of every registered metric, ordered
// by canonical id so the serialized form is byte-identical for
// identical runs. EndSeconds is the virtual end time of the run when
// the caller provides it (zero otherwise); no wall-clock state is ever
// recorded, keeping snapshots deterministic.
type Snapshot struct {
	// EndSeconds is the virtual instant the snapshot was taken.
	EndSeconds float64 `json:"end_seconds,omitempty"`
	// Metrics lists every registered metric sorted by id.
	Metrics []MetricSnapshot `json:"metrics"`
	// Series lists sampler output, sorted by name; empty without a
	// sampler.
	Series []SeriesSnapshot `json:"series,omitempty"`
}

// Snapshot freezes the registry: push handles are read, pull functions
// are evaluated, sampler series are copied out. The result is sorted by
// metric id and safe to retain after the registry is discarded.
func (r *Registry) Snapshot(endSeconds float64) *Snapshot {
	s := &Snapshot{EndSeconds: endSeconds}
	for _, m := range r.metrics {
		ms := MetricSnapshot{Name: m.name, Labels: m.labels, Kind: m.kind.String(), Help: m.help}
		switch m.kind {
		case kindCounter:
			ms.Count = m.counter.Value()
		case kindCounterFunc:
			ms.Count = m.counterFn()
		case kindGauge:
			ms.Value = m.gauge.Value()
		case kindGaugeFunc:
			ms.Value = m.gaugeFn()
		case kindHistogram:
			h := m.hist
			ms.Hist = &HistogramSnapshot{
				Bounds: h.Bounds(),
				Counts: h.Counts(),
				Count:  h.Count(),
				Sum:    h.Sum(),
				Min:    h.Min(),
				Max:    h.Max(),
			}
		}
		s.Metrics = append(s.Metrics, ms)
	}
	sort.Slice(s.Metrics, func(i, j int) bool { return s.Metrics[i].ID() < s.Metrics[j].ID() })
	for _, ref := range r.series {
		ss := SeriesSnapshot{Name: ref.series.Name}
		for _, p := range ref.series.Points() {
			ss.T = append(ss.T, p.T)
			ss.Values = append(ss.Values, p.V)
		}
		s.Series = append(s.Series, ss)
	}
	sort.Slice(s.Series, func(i, j int) bool { return s.Series[i].Name < s.Series[j].Name })
	return s
}

// Get returns the snapshot entry with the given canonical id (the bare
// name for unlabelled metrics), or false.
func (s *Snapshot) Get(id string) (MetricSnapshot, bool) {
	for _, m := range s.Metrics {
		if m.ID() == id {
			return m, true
		}
	}
	return MetricSnapshot{}, false
}

// CounterValue returns a counter's value by canonical id (zero when
// absent), a convenience for tests and table printers.
func (s *Snapshot) CounterValue(id string) uint64 {
	m, ok := s.Get(id)
	if !ok {
		return 0
	}
	return m.Count
}

// GaugeValue returns a gauge's value by canonical id (zero when absent).
func (s *Snapshot) GaugeValue(id string) float64 {
	m, ok := s.Get(id)
	if !ok {
		return 0
	}
	return m.Value
}

// MarshalIndent renders the snapshot as indented JSON with a trailing
// newline — the byte-stable form the golden tests commit.
func (s *Snapshot) MarshalIndent() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteJSON writes the indented JSON form to w.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	data, err := s.MarshalIndent()
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers, histogram _bucket lines
// with cumulative counts and an le="+Inf" terminator, _sum and _count.
// Series are omitted — the text format has no notion of them.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	for _, m := range s.Metrics {
		if m.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, m.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Kind); err != nil {
			return err
		}
		var err error
		switch {
		case m.Hist != nil:
			err = writePromHistogram(w, m)
		case m.Kind == "counter":
			_, err = fmt.Fprintf(w, "%s %d\n", promID(m.Name, m.Labels), m.Count)
		default:
			_, err = fmt.Fprintf(w, "%s %s\n", promID(m.Name, m.Labels), promFloat(m.Value))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram renders one histogram's cumulative bucket lines.
func writePromHistogram(w io.Writer, m MetricSnapshot) error {
	var cum uint64
	for i, b := range m.Hist.Bounds {
		cum += m.Hist.Counts[i]
		le := append(append([]Label(nil), m.Labels...), Label{Key: "le", Value: promFloat(b)})
		if _, err := fmt.Fprintf(w, "%s %d\n", promID(m.Name+"_bucket", le), cum); err != nil {
			return err
		}
	}
	cum += m.Hist.Counts[len(m.Hist.Counts)-1]
	inf := append(append([]Label(nil), m.Labels...), Label{Key: "le", Value: "+Inf"})
	if _, err := fmt.Fprintf(w, "%s %d\n", promID(m.Name+"_bucket", inf), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %s\n", promID(m.Name+"_sum", m.Labels), promFloat(m.Hist.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", promID(m.Name+"_count", m.Labels), m.Hist.Count)
	return err
}

// promID renders name{labels} for the text format; unlike metricID the
// label order is preserved as given (already sorted, with le appended
// last per convention).
func promID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	id := name + "{"
	for i, l := range labels {
		if i > 0 {
			id += ","
		}
		id += fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	return id + "}"
}

// promFloat formats a float the shortest way that round-trips.
func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Hash64 returns an FNV-1a digest over the snapshot's canonical ids and
// the exact bit patterns of every value, bucket count, and series
// sample — the same determinism-witness construction as
// stats.Series.Hash64 and the conform golden digests. Two snapshots
// hash equal iff they are value-for-value bit-identical.
func (s *Snapshot) Hash64() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wf := func(v float64) { w64(math.Float64bits(v)) }
	wf(s.EndSeconds)
	for _, m := range s.Metrics {
		h.Write([]byte(m.ID()))
		h.Write([]byte{0})
		w64(m.Count)
		wf(m.Value)
		if m.Hist != nil {
			for _, b := range m.Hist.Bounds {
				wf(b)
			}
			for _, c := range m.Hist.Counts {
				w64(c)
			}
			w64(m.Hist.Count)
			wf(m.Hist.Sum)
			wf(m.Hist.Min)
			wf(m.Hist.Max)
		}
	}
	for _, ss := range s.Series {
		h.Write([]byte(ss.Name))
		h.Write([]byte{0})
		for i := range ss.T {
			wf(ss.T[i])
			wf(ss.Values[i])
		}
	}
	return h.Sum64()
}

// SeriesByName returns a sampler series reconstituted as a stats.Series
// for post-hoc analysis (period estimation, CSV export), or nil when
// the snapshot has no series of that name.
func (s *Snapshot) SeriesByName(name string) *stats.Series {
	for _, ss := range s.Series {
		if ss.Name != name {
			continue
		}
		out := stats.NewSeries(name)
		for i := range ss.T {
			out.Add(ss.T[i], ss.Values[i])
		}
		return out
	}
	return nil
}

// Named pairs a snapshot with the run it came from, for commands that
// export several runs into one file.
type Named struct {
	Name     string    `json:"name"`
	Snapshot *Snapshot `json:"snapshot"`
}

// fileFormat is the on-disk layout of a -metrics export.
type fileFormat struct {
	Schema    string  `json:"schema"`
	Snapshots []Named `json:"snapshots"`
}

// FileSchema identifies the -metrics JSON export layout.
const FileSchema = "dtmetrics/v1"

// WriteFile writes named snapshots to path as indented JSON under the
// dtmetrics/v1 schema, in the given order.
func WriteFile(path string, snaps []Named) error {
	data, err := json.MarshalIndent(fileFormat{Schema: FileSchema, Snapshots: snaps}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile parses a file written by WriteFile.
func ReadFile(path string) ([]Named, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f fileFormat
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("metrics: parse %s: %w", path, err)
	}
	if f.Schema != FileSchema {
		return nil, fmt.Errorf("metrics: %s has schema %q, want %q", path, f.Schema, FileSchema)
	}
	return f.Snapshots, nil
}
