package metrics

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dtdctcp/internal/sim"
)

// buildSnapshot assembles a registry exercising every metric kind.
func buildSnapshot() *Snapshot {
	r := NewRegistry()
	c := r.Counter("requests_total", "requests served", L("port", "p0"))
	c.Add(12)
	g := r.Gauge("queue_pkts", "instantaneous depth")
	g.Set(3.5)
	r.CounterFunc("events_total", "", func() uint64 { return 99 })
	r.GaugeFunc("ratio", "", func() float64 { return 0.25 })
	h := r.Histogram("latency_us", "per-packet latency", LinearBounds(10, 10, 3))
	for _, v := range []float64{5, 15, 25, 35, 100} {
		h.Observe(v)
	}
	return r.Snapshot(1.5)
}

func TestMarshalIndentByteStable(t *testing.T) {
	a, err := buildSnapshot().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildSnapshot().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("identical registries marshalled differently")
	}
	if !bytes.HasSuffix(a, []byte("\n")) {
		t.Fatal("missing trailing newline")
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := buildSnapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP requests_total requests served",
		"# TYPE requests_total counter",
		`requests_total{port="p0"} 12`,
		"# TYPE queue_pkts gauge",
		"queue_pkts 3.5",
		"events_total 99",
		"ratio 0.25",
		"# TYPE latency_us histogram",
		`latency_us_bucket{le="10"} 1`,
		`latency_us_bucket{le="20"} 2`,
		`latency_us_bucket{le="30"} 3`,
		`latency_us_bucket{le="+Inf"} 5`,
		"latency_us_sum 180",
		"latency_us_count 5",
	} {
		if !strings.Contains(out, want+"\n") && !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n---\n%s", want, out)
		}
	}
}

func TestHash64EqualIffIdentical(t *testing.T) {
	a, b := buildSnapshot(), buildSnapshot()
	if a.Hash64() != b.Hash64() {
		t.Fatal("identical snapshots hash differently")
	}
	b.Metrics[0].Count++
	if a.Hash64() == b.Hash64() {
		t.Fatal("distinct snapshots hash equal")
	}
}

func TestWriteReadFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	in := []Named{{Name: "run-a", Snapshot: buildSnapshot()}}
	if err := WriteFile(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Name != "run-a" {
		t.Fatalf("round trip lost names: %+v", out)
	}
	if out[0].Snapshot.Hash64() != in[0].Snapshot.Hash64() {
		t.Fatal("round trip changed snapshot content")
	}
}

func TestReadFileRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema":"other/v9","snapshots":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("want schema error, got %v", err)
	}
}

func TestSeriesByName(t *testing.T) {
	s := &Snapshot{Series: []SeriesSnapshot{{Name: "q", T: []float64{0.1, 0.2}, Values: []float64{1, 2}}}}
	got := s.SeriesByName("q")
	if got == nil || got.Len() != 2 {
		t.Fatalf("SeriesByName lost points: %+v", got)
	}
	if s.SeriesByName("missing") != nil {
		t.Fatal("SeriesByName invented a series")
	}
}

func TestSamplerSeriesInSnapshot(t *testing.T) {
	r := NewRegistry()
	engine := sim.NewEngine(1)
	g := r.Gauge("depth", "")
	smp := NewSampler(r, engine, 10*time.Millisecond)
	smp.TrackGauge("depth_series", g)
	smp.Start()
	engine.After(5*time.Millisecond, func() { g.Set(1) })
	engine.After(15*time.Millisecond, func() { g.Set(2) })
	// The sampler reschedules forever, so run to a horizon rather than
	// draining the queue.
	if err := engine.RunFor(25 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	s := r.Snapshot(engine.Now().Seconds())
	if len(s.Series) != 1 || s.Series[0].Name != "depth_series" {
		t.Fatalf("series missing from snapshot: %+v", s.Series)
	}
	ser := s.Series[0]
	// Ticks at exactly 10ms and 20ms of virtual time: sees the 5ms and
	// 15ms gauge updates respectively.
	wantT := []float64{0.010, 0.020}
	wantV := []float64{1, 2}
	if len(ser.T) != len(wantT) {
		t.Fatalf("got %d samples, want %d: %+v", len(ser.T), len(wantT), ser)
	}
	for i := range wantT {
		if ser.T[i] != wantT[i] || ser.Values[i] != wantV[i] {
			t.Fatalf("sample %d = (%v, %v), want (%v, %v)", i, ser.T[i], ser.Values[i], wantT[i], wantV[i])
		}
	}
}

func TestSamplerPanics(t *testing.T) {
	r := NewRegistry()
	engine := sim.NewEngine(1)
	mustPanic(t, "interval must be positive", func() { NewSampler(r, engine, 0) })
	smp := NewSampler(r, engine, time.Millisecond)
	smp.Start()
	mustPanic(t, "Track after Start", func() { smp.Track("late", func() float64 { return 0 }) })
}
