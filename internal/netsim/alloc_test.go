//go:build !race

package netsim

import (
	"testing"

	"dtdctcp/internal/invariant"
)

// TestForwardSteadyStateAllocFree pins down the tentpole property on the
// network layer: once the event free list, the port rings, and the packet
// pool are warm, forwarding a pooled packet host→switch→host performs no
// heap allocations — not for events, not for queue slots, not for the
// packet itself.
//
// The file is excluded from -race builds (the race runtime instruments
// allocations) and skipped under -tags invariants (Assert's varargs box
// allocates by design).
func TestForwardSteadyStateAllocFree(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariant assertions allocate; alloc accounting is meaningless")
	}
	e, src, dst := benchNet(t, nil)
	sink := &countingSink{}
	dst.Register(1, sink)

	send := func() {
		pkt := src.Network().AllocPacket()
		pkt.Flow = 1
		pkt.Dst = dst.ID()
		pkt.Size = 1500
		pkt.ECT = true
		src.Send(pkt)
	}

	// Warm-up: grow rings, event free list, and packet pool to their
	// steady-state working set.
	for i := 0; i < 512; i++ {
		send()
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}

	const batch = 64
	avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < batch; i++ {
			send()
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state forwarding allocated %.2f times per %d-packet batch, want 0", avg, batch)
	}
	if sink.n == 0 {
		t.Fatal("nothing delivered")
	}
}

// TestPortSendSteadyStateAllocFree isolates Port.Send + transmit chain:
// enqueue/dequeue through the ring with a busy link must not allocate.
func TestPortSendSteadyStateAllocFree(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariant assertions allocate; alloc accounting is meaningless")
	}
	e, src, dst := benchNet(t, nil)
	sink := &countingSink{}
	dst.Register(1, sink)
	port := src.Uplink()

	for i := 0; i < 256; i++ {
		pkt := src.Network().AllocPacket()
		pkt.Flow = 1
		pkt.Dst = dst.ID()
		pkt.Size = 1500
		port.Send(pkt)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}

	avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < 32; i++ {
			pkt := src.Network().AllocPacket()
			pkt.Flow = 1
			pkt.Dst = dst.ID()
			pkt.Size = 1500
			port.Send(pkt)
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("Port.Send steady state allocated %.2f times per batch, want 0", avg)
	}
}

// TestSharedBufferSendSteadyStateAllocFree pins the pooled admission path:
// swapping the static per-port bound for the dynamic-threshold pool must
// keep enqueue/dequeue off the heap — admit() and the pool counter update
// are arithmetic on existing state, nothing more.
func TestSharedBufferSendSteadyStateAllocFree(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariant assertions allocate; alloc accounting is meaningless")
	}
	sb, err := NewSharedBuffer(64*pktSize, 2)
	if err != nil {
		t.Fatal(err)
	}
	st := newSharedStar(t, 2, 10*Gbps, Gbps, 64, sb)
	sinks := make([]*countingSink, 2)
	for i, d := range st.dsts {
		sinks[i] = &countingSink{}
		d.Register(FlowID(i+1), sinks[i])
	}

	cycle := func() {
		for i := 0; i < 32; i++ {
			st.offer(i % 2)
		}
		if err := st.engine.Run(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		cycle()
	}

	avg := testing.AllocsPerRun(200, cycle)
	if avg != 0 {
		t.Fatalf("pooled Port.Send steady state allocated %.2f times per batch, want 0", avg)
	}
	if sinks[0].n == 0 || sinks[1].n == 0 {
		t.Fatal("nothing delivered")
	}
}

// TestECMPForwardSteadyStateAllocFree pins the multi-path egress: a
// packet crossing a switch with an ECMP set resolves its port via the
// flow hash, and that lookup must stay off the heap like the
// single-path route lookup it replaces.
func TestECMPForwardSteadyStateAllocFree(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariant assertions allocate; alloc accounting is meaningless")
	}
	e, n, h0, h1, s0, _, _ := diamond(t, 7)
	if len(s0.ecmp[h1.ID()]) != 2 {
		t.Fatal("diamond lost its ECMP set")
	}
	sink := &countingSink{}
	for f := FlowID(1); f <= 8; f++ {
		h1.Register(f, sink)
	}

	send := func() {
		// Rotate flows so both equal-cost ports stay on the hot path.
		for f := FlowID(1); f <= 8; f++ {
			pkt := n.AllocPacket()
			pkt.Flow = f
			pkt.Dst = h1.ID()
			pkt.Size = 1500
			h0.Send(pkt)
		}
	}
	for i := 0; i < 64; i++ {
		send()
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}

	avg := testing.AllocsPerRun(200, func() {
		send()
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("ECMP forwarding allocated %.2f times per batch, want 0", avg)
	}
	if sink.n == 0 {
		t.Fatal("nothing delivered")
	}
}

// TestFlappingSteadyStateAllocFree pins the chaos drop paths onto the
// free-list contract: a link that flaps down (flushing its queue) and up
// while traffic keeps arriving, with probabilistic corruption on the
// survivors, must recycle every dropped packet through the pool and
// allocate nothing once warm.
func TestFlappingSteadyStateAllocFree(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariant assertions allocate; alloc accounting is meaningless")
	}
	e, src, dst := benchNet(t, nil)
	sink := &countingSink{}
	dst.Register(1, sink)
	port := src.Uplink()
	port.SetCorruptProb(0.2)

	send := func(k int) {
		for i := 0; i < k; i++ {
			pkt := src.Network().AllocPacket()
			pkt.Flow = 1
			pkt.Dst = dst.ID()
			pkt.Size = 1500
			port.Send(pkt)
		}
	}
	cycle := func() {
		send(16)                 // one in flight, the rest queued
		port.SetDown(true, true) // flush: in-flight + queue take the drop path
		send(8)                  // arrival drops while down
		port.SetDown(false, false)
		send(16) // these cross the restored link and roll the corruption die
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}

	for i := 0; i < 64; i++ {
		cycle()
	}

	avg := testing.AllocsPerRun(200, cycle)
	if avg != 0 {
		t.Fatalf("flapping steady state allocated %.2f times per cycle, want 0", avg)
	}
	st := port.Stats()
	if st.DroppedLinkDown == 0 || st.DroppedCorrupt == 0 {
		t.Fatalf("fault paths not exercised: linkdown=%d corrupt=%d", st.DroppedLinkDown, st.DroppedCorrupt)
	}
}
