package netsim

// Ambient load: the hybrid co-simulation's hook into a port. A fluid
// model of thousands of background flows produces, at each coupling
// tick, (a) a queue occupancy those flows contribute at this port and
// (b) the link bandwidth they consume. SetAmbient installs both, and the
// port then behaves as if that traffic were really queued here:
//
//   - the AQM policy sees the total occupancy (real + ambient) at every
//     arrival, dequeue, and departure, so marking/drop decisions for
//     packet-level flows respond to the ambient queue level;
//   - buffer overflow is judged against the total, so ambient backlog
//     squeezes the room left for packets exactly as real competitors
//     would;
//   - the queue monitor observes the total, so recorded queue statistics
//     are directly comparable with a fully packet-level run;
//   - packets serialize at the link rate scaled by the real share of the
//     total backlog — processor sharing over queue composition, the
//     classic fluid/packet approximation of FIFO: a packet behind k
//     ambient packets takes ≈(k+1) serialization times to depart, just
//     as if it had waited its FIFO turn, and the share is derived from
//     backlog alone so a temporarily slow packet class can always win
//     service back (a residual-rate model deadlocks here).
//
// Everything stays neutral until SetAmbient is first called: the zero
// ambient state reproduces the unmodified port exactly.

// SetAmbient sets the ambient queue contribution in bytes and the link
// bandwidth consumed by ambient traffic. The bytes bias the AQM, the
// overflow check, the monitor, and the serialization share; the consumed
// rate is recorded for observability only. Negative bytes clamp to zero;
// the consumed rate is clamped to [0, 99.9% of the link]. If the total
// occupancy changed, the queue monitor is notified at the current
// instant, keeping time-weighted queue statistics honest across coupling
// ticks.
func (p *Port) SetAmbient(bytes int, consumed Rate) {
	if bytes < 0 {
		bytes = 0
	}
	if consumed < 0 {
		consumed = 0
	}
	if max := p.rate - p.rate/1000; consumed > max {
		consumed = max
	}
	changed := bytes != p.ambientBytes
	p.ambientBytes = bytes
	p.ambientRate = consumed
	if changed {
		p.notifyMonitor()
	}
}

// AmbientBytes returns the ambient queue contribution in bytes.
func (p *Port) AmbientBytes() int { return p.ambientBytes }

// TotalQueueLen returns the occupancy the AQM policy and queue monitor
// observe: real queued bytes plus the ambient contribution.
func (p *Port) TotalQueueLen() int { return p.totalQueueLen() }

// AmbientRate returns the link bandwidth consumed by ambient traffic.
func (p *Port) AmbientRate() Rate { return p.ambientRate }

// serializationRate is the rate the next pktSize-byte transmission is
// serialized at: the link rate scaled by the real backlog's share of the
// total (real + ambient) — processor sharing over queue composition,
// which reproduces FIFO delay through the ambient queue. With no ambient
// load it is exactly the link rate.
//
//dtlint:hotpath
func (p *Port) serializationRate(pktSize int) Rate {
	if p.ambientBytes == 0 {
		return p.rate
	}
	real := p.queueLen + pktSize
	r := Rate(float64(p.rate) * float64(real) / float64(real+p.ambientBytes))
	if r < 1 {
		r = 1
	}
	return r
}

// totalQueueLen is the occupancy the AQM policy, the overflow check, and
// the queue monitor observe: real queued bytes plus the ambient
// contribution.
//
//dtlint:hotpath
func (p *Port) totalQueueLen() int { return p.queueLen + p.ambientBytes }
