package netsim

import (
	"testing"
	"time"

	"dtdctcp/internal/aqm"
	"dtdctcp/internal/sim"
)

// ambientPair builds a one-hop a→sw→b topology and returns the switch's
// egress port toward b — the port the ambient load is installed on.
func ambientPair(t *testing.T, e *sim.Engine, cfg PortConfig) (*Host, *Host, *Port) {
	t.Helper()
	_, a, b, sw := buildPair(t, e, cfg)
	port := sw.PortTo(b.ID())
	if port == nil {
		t.Fatal("no switch port toward b")
	}
	return a, b, port
}

// TestAmbientZeroIsNeutral pins the compatibility contract: installing a
// zero ambient load changes nothing about delivery timing.
func TestAmbientZeroIsNeutral(t *testing.T) {
	arrival := func(set bool) sim.Time {
		e := sim.NewEngine(1)
		a, b, port := ambientPair(t, e, linkCfg(10*Gbps, 25*time.Microsecond, 100, nil))
		if set {
			port.SetAmbient(0, 0)
		}
		rx := &sink{eng: e}
		b.Register(1, rx)
		a.Send(&Packet{Flow: 1, Dst: b.ID(), Size: pktSize})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		if len(rx.at) != 1 {
			t.Fatalf("delivered %d packets, want 1", len(rx.at))
		}
		return rx.at[0]
	}
	if without, with := arrival(false), arrival(true); without != with {
		t.Fatalf("zero ambient shifted arrival: %v != %v", with, without)
	}
}

// TestAmbientBiasesMarking verifies the AQM sees the total occupancy: an
// ambient contribution above the marking threshold forces CE on a packet
// arriving at an empty real queue.
func TestAmbientBiasesMarking(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := linkCfg(10*Gbps, 25*time.Microsecond, 100, aqm.NewSingleThresholdPackets(20, pktSize))
	a, b, port := ambientPair(t, e, cfg)
	port.SetAmbient(30*pktSize, 0) // ambient alone is above K = 20 packets

	rx := &sink{}
	b.Register(1, rx)
	a.Send(&Packet{Flow: 1, Dst: b.ID(), Size: pktSize, ECT: true})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rx.pkts) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(rx.pkts))
	}
	if !rx.pkts[0].CE {
		t.Fatal("packet through an ambient queue above K was not CE-marked")
	}
	if port.Stats().Marked != 1 {
		t.Fatalf("Marked = %d, want 1", port.Stats().Marked)
	}
}

// TestAmbientSqueezesBuffer verifies overflow is judged on the total: an
// ambient load filling the buffer leaves no room for real packets.
func TestAmbientSqueezesBuffer(t *testing.T) {
	e := sim.NewEngine(1)
	a, b, port := ambientPair(t, e, linkCfg(10*Gbps, 25*time.Microsecond, 10, nil))
	port.SetAmbient(10*pktSize, 0) // ambient occupies the whole buffer

	rx := &sink{}
	b.Register(1, rx)
	a.Send(&Packet{Flow: 1, Dst: b.ID(), Size: pktSize})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rx.pkts) != 0 {
		t.Fatalf("delivered %d packets through a full ambient buffer, want 0", len(rx.pkts))
	}
	if got := port.Stats().DroppedOverflow; got != 1 {
		t.Fatalf("DroppedOverflow = %d, want 1", got)
	}
}

// TestAmbientBacklogSlowsSerialization verifies processor sharing over
// queue composition: a packet holding half the total backlog serializes
// at half the link rate — the same delay FIFO would have charged for
// waiting behind one equal-sized ambient packet.
func TestAmbientBacklogSlowsSerialization(t *testing.T) {
	arrival := func(ambient int) sim.Time {
		e := sim.NewEngine(1)
		a, b, port := ambientPair(t, e, linkCfg(1*Gbps, 10*time.Microsecond, 100, nil))
		port.SetAmbient(ambient, 0)
		rx := &sink{eng: e}
		b.Register(1, rx)
		a.Send(&Packet{Flow: 1, Dst: b.ID(), Size: pktSize})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		if len(rx.at) != 1 {
			t.Fatalf("delivered %d packets, want 1", len(rx.at))
		}
		return rx.at[0]
	}
	// 1500 B at 1 Gbps is 12 µs. Behind an equal ambient backlog the
	// packet's share is 1500/3000 = 1 Gbps/2, so serialization takes
	// 24 µs. Only the switch egress port carries the ambient load, so
	// the difference between the runs is exactly the extra 12 µs.
	base := arrival(0)
	slow := arrival(pktSize)
	if got, want := (slow - base).Duration(), 12*time.Microsecond; got != want {
		t.Fatalf("half-share backlog delayed arrival by %v, want %v", got, want)
	}
}

// TestAmbientClamps pins the input clamps: negative bytes read back as
// zero, and the consumed rate can never exceed 99.9% of the link.
func TestAmbientClamps(t *testing.T) {
	e := sim.NewEngine(1)
	_, _, port := ambientPair(t, e, linkCfg(1*Gbps, 10*time.Microsecond, 100, nil))

	port.SetAmbient(-5, -3)
	if port.AmbientBytes() != 0 || port.AmbientRate() != 0 {
		t.Fatalf("negative ambient read back as (%d, %v), want (0, 0)",
			port.AmbientBytes(), port.AmbientRate())
	}
	port.SetAmbient(0, 2*Gbps)
	if got, want := port.AmbientRate(), 1*Gbps-1*Gbps/1000; got != want {
		t.Fatalf("oversubscribed consumed rate clamped to %v, want %v", got, want)
	}
	// The serialization share never rounds to zero, however large the
	// ambient backlog.
	port.SetAmbient(1<<40, 0)
	if got := port.serializationRate(pktSize); got < 1 {
		t.Fatalf("serialization rate %v under huge ambient backlog, want >= 1", got)
	}
	if got := port.serializationRate(pktSize); got >= 1*Gbps {
		t.Fatalf("serialization rate %v not reduced by ambient backlog", got)
	}
}

// countingMonitor records every occupancy the port reports.
type countingMonitor struct {
	lens []int
}

func (m *countingMonitor) QueueChanged(_ sim.Time, qlenBytes int) {
	m.lens = append(m.lens, qlenBytes)
}

// TestAmbientMonitorSeesTotal verifies the queue monitor observes real
// plus ambient bytes, and that SetAmbient itself reports the new total so
// time-weighted statistics track coupling ticks.
func TestAmbientMonitorSeesTotal(t *testing.T) {
	e := sim.NewEngine(1)
	a, b, port := ambientPair(t, e, linkCfg(1*Gbps, 10*time.Microsecond, 100, nil))
	mon := &countingMonitor{}
	port.SetMonitor(mon)

	port.SetAmbient(7*pktSize, 0)
	if len(mon.lens) != 1 || mon.lens[0] != 7*pktSize {
		t.Fatalf("SetAmbient reported %v, want [%d]", mon.lens, 7*pktSize)
	}
	// An unchanged ambient occupancy must not spam the monitor.
	port.SetAmbient(7*pktSize, 100*Mbps)
	if len(mon.lens) != 1 {
		t.Fatalf("unchanged ambient occupancy re-notified the monitor: %v", mon.lens)
	}

	rx := &sink{}
	b.Register(1, rx)
	a.Send(&Packet{Flow: 1, Dst: b.ID(), Size: pktSize})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Enqueue then dequeue: totals 8 then 7 packets.
	if len(mon.lens) != 3 || mon.lens[1] != 8*pktSize || mon.lens[2] != 7*pktSize {
		t.Fatalf("monitor saw %v, want [%d %d %d]", mon.lens, 7*pktSize, 8*pktSize, 7*pktSize)
	}
	if got := port.TotalQueueLen(); got != 7*pktSize {
		t.Fatalf("TotalQueueLen = %d, want %d", got, 7*pktSize)
	}
	if got := port.QueueLen(); got != 0 {
		t.Fatalf("QueueLen = %d, want 0 (ambient is not real occupancy)", got)
	}
}
