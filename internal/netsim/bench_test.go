package netsim

import (
	"testing"
	"time"

	"dtdctcp/internal/aqm"
	"dtdctcp/internal/sim"
)

// countingSink drains packets without retaining them.
type countingSink struct{ n int }

func (c *countingSink) Deliver(*Packet) { c.n++ }

// benchNet wires one sender host through a switch to a sink host and
// returns the pieces.
func benchNet(b testing.TB, policy aqm.Policy) (*sim.Engine, *Host, *Host) {
	b.Helper()
	e := sim.NewEngine(1)
	n := NewNetwork(e)
	src := n.AddHost("src")
	dst := n.AddHost("dst")
	sw := n.AddSwitch("sw")
	cfg := PortConfig{Rate: 100 * Gbps, Delay: time.Microsecond, Buffer: 1 << 24, Policy: policy}
	if err := n.Connect(src, sw, cfg, cfg); err != nil {
		b.Fatal(err)
	}
	if err := n.Connect(dst, sw, cfg, cfg); err != nil {
		b.Fatal(err)
	}
	if err := n.ComputeRoutes(); err != nil {
		b.Fatal(err)
	}
	return e, src, dst
}

// benchForward measures end-to-end packet forwarding cost per packet for a
// given queue law.
func benchForward(b *testing.B, policy aqm.Policy) {
	e, src, dst := benchNet(b, policy)
	sink := &countingSink{}
	dst.Register(1, sink)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt := src.Network().AllocPacket()
		pkt.Flow = 1
		pkt.Dst = dst.ID()
		pkt.Size = 1500
		pkt.ECT = true
		src.Send(pkt)
		if i%256 == 255 {
			if err := e.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	if sink.n == 0 {
		b.Fatal("nothing delivered")
	}
}

func BenchmarkForwardDropTail(b *testing.B) { benchForward(b, nil) }

func BenchmarkForwardSingleThreshold(b *testing.B) {
	benchForward(b, aqm.NewSingleThresholdPackets(40, 1500))
}

func BenchmarkForwardDoubleThreshold(b *testing.B) {
	benchForward(b, aqm.NewDoubleThresholdPackets(30, 50, 1500))
}

func BenchmarkForwardCoDel(b *testing.B) {
	benchForward(b, &aqm.CoDel{Target: 100 * time.Microsecond, Interval: time.Millisecond, ECN: true})
}
