package netsim

import (
	"testing"
	"time"

	"dtdctcp/internal/sim"
)

// diamond wires h0 — s0 — {sA, sB} — s3 — h1: two equal-cost two-hop
// paths between the edge switches. Routes are computed with ECMP under
// the given salt.
func diamond(t testing.TB, salt uint64) (*sim.Engine, *Network, *Host, *Host, *Switch, *Switch, *Switch) {
	t.Helper()
	e := sim.NewEngine(1)
	n := NewNetwork(e)
	h0 := n.AddHost("h0")
	h1 := n.AddHost("h1")
	s0 := n.AddSwitch("s0")
	sA := n.AddSwitch("sA")
	sB := n.AddSwitch("sB")
	s3 := n.AddSwitch("s3")
	cfg := linkCfg(Gbps, 10*time.Microsecond, 1<<14, nil)
	for _, pair := range [][2]Node{{h0, s0}, {s0, sA}, {s0, sB}, {sA, s3}, {sB, s3}, {s3, h1}} {
		if err := n.Connect(pair[0], pair[1], cfg, cfg); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.ComputeRoutesECMP(salt); err != nil {
		t.Fatal(err)
	}
	return e, n, h0, h1, s0, sA, s3
}

func TestECMPSetsOnDiamond(t *testing.T) {
	_, _, _, h1, s0, _, s3 := diamond(t, 7)
	set, ok := s0.ecmp[h1.ID()]
	if !ok || len(set) != 2 {
		t.Fatalf("s0 ECMP set toward h1 = %v, want 2 equal-cost ports", set)
	}
	// Port order: port 0 leads back to h0, ports 1 and 2 to sA and sB.
	if set[0] != 1 || set[1] != 2 {
		t.Fatalf("ECMP set = %v, want [1 2] (port-index order)", set)
	}
	// The last-hop switch has exactly one shortest path to each host.
	if _, ok := s3.ecmp[h1.ID()]; ok {
		t.Fatal("s3 has an ECMP set toward its directly attached host")
	}
}

func TestECMPMatchesSinglePathRoutingOnTrees(t *testing.T) {
	// On a line (a tree), ECMP routing must agree with ComputeRoutes
	// exactly and produce no multi-path sets.
	build := func(compute func(n *Network) error) *Network {
		e := sim.NewEngine(1)
		n := NewNetwork(e)
		cfg := linkCfg(Gbps, 10*time.Microsecond, 1<<14, nil)
		s0 := n.AddSwitch("s0")
		s1 := n.AddSwitch("s1")
		h0 := n.AddHost("h0")
		h1 := n.AddHost("h1")
		for _, pair := range [][2]Node{{h0, s0}, {s0, s1}, {s1, h1}} {
			if err := n.Connect(pair[0], pair[1], cfg, cfg); err != nil {
				t.Fatal(err)
			}
		}
		if err := compute(n); err != nil {
			t.Fatal(err)
		}
		return n
	}
	plain := build(func(n *Network) error { return n.ComputeRoutes() })
	ecmp := build(func(n *Network) error { return n.ComputeRoutesECMP(99) })
	for i, s := range ecmp.Switches() {
		if len(s.ecmp) != 0 {
			t.Fatalf("switch %d has ECMP sets %v on a tree", i, s.ecmp)
		}
		want := plain.Switches()[i].routes
		for dst, idx := range want {
			if got := s.routes[dst]; got != idx {
				t.Fatalf("switch %d route to %d = %d, want %d", i, dst, got, idx)
			}
		}
		if len(s.routes) != len(want) {
			t.Fatalf("switch %d has %d routes, want %d", i, len(s.routes), len(want))
		}
	}
}

func TestECMPChoiceIsPerFlowStableAndBalanced(t *testing.T) {
	_, _, _, h1, s0, _, _ := diamond(t, 7)
	used := map[int]int{}
	for flow := FlowID(1); flow <= 64; flow++ {
		pkt := &Packet{Flow: flow, Dst: h1.ID()}
		idx, ok := s0.egress(pkt)
		if !ok {
			t.Fatalf("no egress for flow %d", flow)
		}
		for i := 0; i < 4; i++ {
			again, _ := s0.egress(pkt)
			if again != idx {
				t.Fatalf("flow %d egress flapped %d → %d", flow, idx, again)
			}
		}
		used[idx]++
	}
	if len(used) != 2 {
		t.Fatalf("64 flows used ports %v, want both equal-cost ports", used)
	}
	if used[1] < 16 || used[2] < 16 {
		t.Fatalf("hash badly skewed: %v", used)
	}
}

func TestECMPSaltChangesPlacement(t *testing.T) {
	_, _, _, h1a, s0a, _, _ := diamond(t, 1)
	_, _, _, h1b, s0b, _, _ := diamond(t, 2)
	diff := 0
	for flow := FlowID(1); flow <= 64; flow++ {
		a, _ := s0a.egress(&Packet{Flow: flow, Dst: h1a.ID()})
		b, _ := s0b.egress(&Packet{Flow: flow, Dst: h1b.ID()})
		if a != b {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("changing the salt moved no flow")
	}
}

func TestECMPDeliversAcrossBothPaths(t *testing.T) {
	e, _, h0, h1, _, sA, _ := diamond(t, 7)
	const flows = 32
	sinks := make([]*sink, flows)
	for i := range sinks {
		sinks[i] = &sink{}
		h1.Register(FlowID(i+1), sinks[i])
	}
	for i := 0; i < flows; i++ {
		h0.Send(&Packet{Flow: FlowID(i + 1), Dst: h1.ID(), Size: 1000})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, rx := range sinks {
		if len(rx.pkts) != 1 {
			t.Fatalf("flow %d delivered %d packets, want 1", i+1, len(rx.pkts))
		}
	}
	// Both middle switches must have carried some of the 32 flows.
	viaA := sA.Port(1).Stats().Enqueued // sA port toward s3
	if viaA == 0 || viaA == flows {
		t.Fatalf("path split %d/%d via sA, want a real split", viaA, flows)
	}
}

func TestPortToUsesWiringIndex(t *testing.T) {
	_, _, h0, h1, s0, sA, _ := diamond(t, 7)
	if got := s0.PortTo(h0.ID()); got != s0.Port(0) {
		t.Fatal("PortTo(h0) is not port 0")
	}
	if got := s0.PortTo(sA.ID()); got != s0.Port(1) {
		t.Fatal("PortTo(sA) is not port 1")
	}
	if got := s0.PortTo(h1.ID()); got != nil {
		t.Fatal("PortTo on a non-neighbour must be nil")
	}
}

func TestConnectRejectsDuplicateSwitchLink(t *testing.T) {
	e := sim.NewEngine(1)
	n := NewNetwork(e)
	s0 := n.AddSwitch("s0")
	s1 := n.AddSwitch("s1")
	cfg := linkCfg(Gbps, time.Microsecond, 1<<14, nil)
	if err := n.Connect(s0, s1, cfg, cfg); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect(s0, s1, cfg, cfg); err == nil {
		t.Fatal("duplicate parallel link accepted; ECMP indexing requires one port per peer")
	}
}

// BenchmarkPortTo pins the satellite: peer lookup must stay a map access,
// not a linear port scan — it sits on route computation and on every
// experiment's bottleneck-port wiring, and fat-tree switches have dozens
// of ports.
func BenchmarkPortTo(b *testing.B) {
	e := sim.NewEngine(1)
	n := NewNetwork(e)
	sw := n.AddSwitch("sw")
	cfg := linkCfg(Gbps, time.Microsecond, 1<<14, nil)
	hosts := make([]*Host, 64)
	for i := range hosts {
		hosts[i] = n.AddHost("h")
		if err := n.Connect(hosts[i], sw, cfg, cfg); err != nil {
			b.Fatal(err)
		}
	}
	if err := n.ComputeRoutes(); err != nil {
		b.Fatal(err)
	}
	last := hosts[len(hosts)-1].ID()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sw.PortTo(last) == nil {
			b.Fatal("lost peer")
		}
	}
}

// BenchmarkSwitchEgressECMP pins the per-packet ECMP resolution cost:
// one map probe, one hash, one slice index.
func BenchmarkSwitchEgressECMP(b *testing.B) {
	_, _, _, h1, s0, _, _ := diamond(b, 7)
	pkt := &Packet{Flow: 3, Dst: h1.ID()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s0.egress(pkt); !ok {
			b.Fatal("no egress")
		}
	}
}
