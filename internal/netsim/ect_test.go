package netsim

import (
	"math/rand"
	"testing"
	"time"

	"dtdctcp/internal/aqm"
	"dtdctcp/internal/sim"
)

// alwaysMark is a loss-substituting law that marks every arrival.
type alwaysMark struct{ substitute bool }

func (a *alwaysMark) Name() string                             { return "always-mark" }
func (a *alwaysMark) OnArrival(sim.Time, int, int) aqm.Verdict { return aqm.AcceptMark }
func (a *alwaysMark) OnDeparture(sim.Time, int)                {}
func (a *alwaysMark) Reset()                                   {}
func (a *alwaysMark) MarkSubstitutesDrop() bool                { return a.substitute }

var _ aqm.LossSubstituting = (*alwaysMark)(nil)

func sendMixed(t *testing.T, policy aqm.Policy) (delivered, markedCE int, st PortStats) {
	t.Helper()
	e := sim.NewEngine(1)
	n := NewNetwork(e)
	src := n.AddHost("src")
	dst := n.AddHost("dst")
	sw := n.AddSwitch("sw")
	cfg := PortConfig{Rate: Gbps, Delay: time.Microsecond, Buffer: 1 << 20}
	up := PortConfig{Rate: Gbps, Delay: time.Microsecond, Buffer: 1 << 20, Policy: policy}
	if err := n.Connect(src, sw, up, cfg); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect(dst, sw, cfg, cfg); err != nil {
		t.Fatal(err)
	}
	if err := n.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	rx := &sink{}
	dst.Register(1, rx)
	for i := 0; i < 20; i++ {
		src.Send(&Packet{Flow: 1, Dst: dst.ID(), Size: 1500, ECT: i%2 == 0})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for _, p := range rx.pkts {
		if p.CE {
			markedCE++
		}
	}
	return len(rx.pkts), markedCE, src.Uplink().Stats()
}

func TestLossSubstitutingLawDropsNonECT(t *testing.T) {
	delivered, marked, st := sendMixed(t, &alwaysMark{substitute: true})
	// 10 ECT packets marked and delivered; 10 non-ECT dropped.
	if delivered != 10 || marked != 10 {
		t.Fatalf("delivered=%d marked=%d, want 10/10", delivered, marked)
	}
	if st.DroppedPolicy != 10 {
		t.Fatalf("DroppedPolicy = %d, want 10", st.DroppedPolicy)
	}
}

func TestInformationalMarkerPassesNonECT(t *testing.T) {
	// DCTCP-style threshold markers do not substitute drops: non-ECT
	// packets pass unmarked and unharmed.
	delivered, marked, st := sendMixed(t, &alwaysMark{substitute: false})
	if delivered != 20 || marked != 10 {
		t.Fatalf("delivered=%d marked=%d, want 20/10", delivered, marked)
	}
	if st.DroppedPolicy != 0 {
		t.Fatalf("DroppedPolicy = %d, want 0", st.DroppedPolicy)
	}
}

func TestCoDelDropsNonECTAtDequeue(t *testing.T) {
	// End-to-end: CoDel-ECN over a slow link with mixed traffic must mark
	// the ECT packets it would have dropped — and actually drop the
	// non-ECT ones.
	e := sim.NewEngine(1)
	n := NewNetwork(e)
	src := n.AddHost("src")
	dst := n.AddHost("dst")
	sw := n.AddSwitch("sw")
	codel := &aqm.CoDel{Target: 50 * time.Microsecond, Interval: 500 * time.Microsecond, ECN: true}
	slow := PortConfig{Rate: 100 * Mbps, Delay: time.Microsecond, Buffer: 1 << 20, Policy: codel}
	fast := PortConfig{Rate: 10 * Gbps, Delay: time.Microsecond, Buffer: 1 << 20}
	if err := n.Connect(src, sw, fast, fast); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect(dst, sw, fast, slow); err != nil {
		t.Fatal(err)
	}
	if err := n.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	rx := &sink{}
	dst.Register(1, rx)
	rng := rand.New(rand.NewSource(2))
	// A long standing queue at 100 Mbps: sojourn far above target.
	for i := 0; i < 2000; i++ {
		src.Send(&Packet{Flow: 1, Dst: dst.ID(), Size: 1500, ECT: rng.Intn(2) == 0})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	bneck := sw.PortTo(dst.ID())
	st := bneck.Stats()
	if st.Marked == 0 {
		t.Fatal("CoDel never marked")
	}
	if st.DroppedPolicy == 0 {
		t.Fatal("CoDel never dropped a non-ECT packet")
	}
	ce := 0
	for _, p := range rx.pkts {
		if p.CE {
			if !p.ECT {
				t.Fatal("CE set on a non-ECT packet")
			}
			ce++
		}
	}
	if ce != int(st.Marked) {
		t.Fatalf("delivered CE=%d vs port marked=%d", ce, st.Marked)
	}
}
