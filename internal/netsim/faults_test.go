package netsim

import (
	"testing"
	"time"

	"dtdctcp/internal/sim"
)

// faultNet wires src → sw → dst and returns the switch's port toward dst
// (the one the tests mutate). The access legs run at access, the mutated
// bottleneck at bneck; an access faster than the bottleneck builds a
// standing queue at the mutated port.
func faultNet(t testing.TB, access, bneck Rate) (*sim.Engine, *Network, *Host, *Host, *Port) {
	t.Helper()
	e := sim.NewEngine(1)
	n := NewNetwork(e)
	src := n.AddHost("src")
	dst := n.AddHost("dst")
	sw := n.AddSwitch("sw")
	acc := PortConfig{Rate: access, Delay: 10 * time.Microsecond, Buffer: 1 << 20}
	bn := PortConfig{Rate: bneck, Delay: 10 * time.Microsecond, Buffer: 1 << 20}
	if err := n.Connect(src, sw, acc, acc); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect(dst, sw, acc, bn); err != nil {
		t.Fatal(err)
	}
	if err := n.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	return e, n, src, dst, sw.PortTo(dst.ID())
}

func sendOne(n *Network, src, dst *Host, size int) {
	pkt := n.AllocPacket()
	pkt.Flow = 1
	pkt.Dst = dst.ID()
	pkt.Size = size
	src.Send(pkt)
}

func TestLinkDownDropsArrivals(t *testing.T) {
	e, n, src, dst, port := faultNet(t, Gbps, Gbps)
	sink := &countingSink{}
	dst.Register(1, sink)

	port.SetDown(true, false)
	for i := 0; i < 5; i++ {
		sendOne(n, src, dst, 1500)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sink.n != 0 {
		t.Fatalf("delivered %d packets over a down link", sink.n)
	}
	if got := port.Stats().DroppedLinkDown; got != 5 {
		t.Fatalf("DroppedLinkDown = %d, want 5", got)
	}
}

func TestLinkDownCutsInFlightSerialization(t *testing.T) {
	// 10 Mbps: a 1500-byte packet serializes in 1.2 ms, so we can catch
	// it mid-transmission.
	e, n, src, dst, port := faultNet(t, 10*Mbps, 10*Mbps)
	sink := &countingSink{}
	dst.Register(1, sink)

	sendOne(n, src, dst, 1500)
	// The access link is also 10 Mbps here, so the packet reaches the
	// switch port after one serialization + propagation; cut the
	// bottleneck in the middle of its own serialization.
	e.Schedule(sim.FromDuration(1800*time.Microsecond), func() {
		if !port.Down() && port.QueuePackets() == 0 && port.Stats().Dequeued == 1 {
			port.SetDown(true, false)
		} else {
			t.Fatalf("packet not in serialization at cut time (dequeued=%d)", port.Stats().Dequeued)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sink.n != 0 {
		t.Fatalf("delivered %d packets despite mid-serialization cut", sink.n)
	}
	if got := port.Stats().DroppedLinkDown; got != 1 {
		t.Fatalf("DroppedLinkDown = %d, want 1", got)
	}
}

func TestLinkDownDrainModeKeepsQueue(t *testing.T) {
	// Fast access (0.12 ms/pkt) into a slow bottleneck (1.2 ms/pkt): all
	// eight packets reach the switch queue within ~1 ms, long before the
	// bottleneck can drain them.
	e, n, src, dst, port := faultNet(t, 100*Mbps, 10*Mbps)
	sink := &countingSink{}
	dst.Register(1, sink)

	for i := 0; i < 8; i++ {
		sendOne(n, src, dst, 1500)
	}
	// Cut at 2.5 ms: one packet delivered (done at ~1.33 ms), the second
	// mid-serialization (cut → dropped), six held in the queue. Restore at
	// 4 ms and let the survivors drain.
	e.Schedule(sim.FromDuration(2500*time.Microsecond), func() {
		port.SetDown(true, false)
	})
	e.Schedule(sim.FromDuration(4*time.Millisecond), func() {
		if port.QueuePackets() == 0 {
			t.Fatal("queue empty at link-up; drain mode did not hold packets across the outage")
		}
		port.SetDown(false, false)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := port.Stats().DroppedLinkDown; got != 1 {
		t.Fatalf("DroppedLinkDown = %d, want 1 (only the in-flight packet)", got)
	}
	if sink.n != 7 {
		t.Fatalf("delivered %d, want 7 (one pre-cut + six drained after link-up)", sink.n)
	}
}

func TestLinkDownFlushEmptiesQueue(t *testing.T) {
	e, n, src, dst, port := faultNet(t, 10*Mbps, 10*Mbps)
	sink := &countingSink{}
	dst.Register(1, sink)

	for i := 0; i < 8; i++ {
		sendOne(n, src, dst, 1500)
	}
	e.Schedule(sim.FromDuration(3*time.Millisecond), func() {
		port.SetDown(true, true)
		if port.QueuePackets() != 0 || port.QueueLen() != 0 {
			t.Fatalf("flush left %d packets / %d bytes queued", port.QueuePackets(), port.QueueLen())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := int(port.Stats().DroppedLinkDown) + sink.n; got != 8 {
		t.Fatalf("accounting: %d dropped + %d delivered, want 8", port.Stats().DroppedLinkDown, sink.n)
	}
	if port.Stats().DroppedLinkDown == 0 {
		t.Fatal("flush at 3 ms should have caught queued packets")
	}
}

func TestSetRateChangesServiceTime(t *testing.T) {
	e, n, src, dst, port := faultNet(t, 10*Mbps, 10*Mbps)
	sink := &countingSink{}
	dst.Register(1, sink)

	sendOne(n, src, dst, 1500)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	slow := e.Now()

	// Same transfer at 10× the rate: the second leg serializes 10× faster.
	port.SetRate(100 * Mbps)
	start := e.Now()
	sendOne(n, src, dst, 1500)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	fast := e.Now() - start
	if fast >= slow {
		t.Fatalf("rate increase did not speed delivery: first=%v second=%v", slow, fast)
	}

	// Non-positive rates are ignored.
	port.SetRate(0)
	if port.Rate() != 100*Mbps {
		t.Fatalf("SetRate(0) mutated the rate to %v", port.Rate())
	}
}

func TestSetDelayChangesPropagation(t *testing.T) {
	e, n, src, dst, port := faultNet(t, Gbps, Gbps)
	sink := &countingSink{}
	dst.Register(1, sink)

	sendOne(n, src, dst, 1500)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	base := e.Now()

	port.SetDelay(10 * time.Millisecond)
	start := e.Now()
	sendOne(n, src, dst, 1500)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if d := (e.Now() - start).Duration(); d < 10*time.Millisecond || d > 10*time.Millisecond+base.Duration() {
		t.Fatalf("delivery took %v after raising delay to 10ms (baseline %v)", d, base)
	}
	port.SetDelay(-time.Second)
	if port.Delay() != 10*time.Millisecond {
		t.Fatal("negative SetDelay mutated the delay")
	}
}

func TestSetBufferShrinkDropsFromTail(t *testing.T) {
	e, n, _, dst, port := faultNet(t, 10*Mbps, 10*Mbps)
	sink := &countingSink{}
	dst.Register(1, sink)

	// Send 10 packets straight into the port back-to-back: the first
	// starts serializing immediately, the other 9 wait in the queue.
	const pkt = 1000
	for i := 0; i < 10; i++ {
		p := n.AllocPacket()
		p.Flow = 1
		p.Dst = dst.ID()
		p.Size = pkt
		p.Seq = int64(i)
		port.Send(p)
	}
	if port.QueuePackets() != 9 {
		t.Fatalf("setup: %d queued, want 9", port.QueuePackets())
	}
	before := port.Stats().DroppedOverflow
	port.SetBuffer(4 * pkt)
	if port.QueueLen() > port.Buffer() {
		t.Fatalf("occupancy %d exceeds shrunk buffer %d", port.QueueLen(), port.Buffer())
	}
	if got := port.Stats().DroppedOverflow - before; got != 5 {
		t.Fatalf("shrink dropped %d packets, want 5", got)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Survivors are the oldest arrivals: seq 0 (in flight at shrink time)
	// then 1..4 from the head of the queue.
	if sink.n != 5 {
		t.Fatalf("delivered %d after shrink, want 5", sink.n)
	}
}

func TestCorruptionDropsProbabilistically(t *testing.T) {
	e, n, src, dst, port := faultNet(t, Gbps, Gbps)
	sink := &countingSink{}
	dst.Register(1, sink)

	port.SetCorruptProb(1)
	for i := 0; i < 20; i++ {
		sendOne(n, src, dst, 1500)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sink.n != 0 {
		t.Fatalf("prob=1 still delivered %d packets", sink.n)
	}
	if got := port.Stats().DroppedCorrupt; got != 20 {
		t.Fatalf("DroppedCorrupt = %d, want 20", got)
	}

	port.SetCorruptProb(0.5)
	for i := 0; i < 200; i++ {
		sendOne(n, src, dst, 1500)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sink.n < 50 || sink.n > 150 {
		t.Fatalf("prob=0.5 delivered %d of 200; corruption draw looks broken", sink.n)
	}

	port.SetCorruptProb(2)
	if port.CorruptProb() != 1 {
		t.Fatalf("SetCorruptProb(2) = %v, want clamp to 1", port.CorruptProb())
	}
	port.SetCorruptProb(-1)
	if port.CorruptProb() != 0 {
		t.Fatalf("SetCorruptProb(-1) = %v, want clamp to 0", port.CorruptProb())
	}
}

// TestFaultDropsRecyclePackets pins the free-list contract for the new
// drop paths: packets lost to a down link, a flush, or corruption return
// to the network pool and are handed out again by AllocPacket.
func TestFaultDropsRecyclePackets(t *testing.T) {
	e, n, src, dst, port := faultNet(t, Gbps, Gbps)
	sink := &countingSink{}
	dst.Register(1, sink)

	// Prime the pool with exactly one packet in circulation.
	sendOne(n, src, dst, 1500)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	seen := n.AllocPacket()
	n.FreePacket(seen)

	exercise := func(name string, drop func()) {
		drop()
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		got := n.AllocPacket()
		if got != seen {
			t.Fatalf("%s: dropped packet was not recycled to the pool", name)
		}
		n.FreePacket(got)
	}

	exercise("link-down arrival", func() {
		port.SetDown(true, false)
		pkt := n.AllocPacket()
		pkt.Flow = 1
		pkt.Dst = dst.ID()
		pkt.Size = 1500
		port.Send(pkt)
		port.SetDown(false, false)
	})
	exercise("corruption", func() {
		port.SetCorruptProb(1)
		pkt := n.AllocPacket()
		pkt.Flow = 1
		pkt.Dst = dst.ID()
		pkt.Size = 1500
		port.Send(pkt)
		port.SetCorruptProb(0)
	})
}
