package netsim

import (
	"dtdctcp/internal/sim"
	"dtdctcp/internal/stats"
)

// QueueRecorder collects queue statistics from a port: a time-weighted
// mean/deviation over the whole run and, optionally, a decimated time
// series for plotting. Attach with Port.SetMonitor.
type QueueRecorder struct {
	// PacketSize, when positive, converts byte occupancy to packets in
	// the recorded series (the paper reports queue length in packets).
	PacketSize int
	// SampleEvery decimates the time series: at most one point per
	// interval. Zero records only aggregates, no series.
	SampleEvery sim.Time
	// WarmupUntil discards aggregate observations before this instant so
	// slow-start transients don't pollute steady-state statistics. The
	// series still records the warmup, matching the paper's Fig. 1.
	WarmupUntil sim.Time

	tw         stats.TimeWeighted
	series     *stats.Series
	lastSample sim.Time
	warmedUp   bool
}

// NewQueueRecorder creates a recorder that reports queue length in packets
// of pktSize bytes and samples the time series at most every sampleEvery.
func NewQueueRecorder(pktSize int, sampleEvery sim.Time) *QueueRecorder {
	r := &QueueRecorder{PacketSize: pktSize, SampleEvery: sampleEvery, lastSample: -1}
	if sampleEvery > 0 {
		r.series = stats.NewSeries("queue")
	}
	return r
}

// QueueChanged implements QueueMonitor.
func (r *QueueRecorder) QueueChanged(now sim.Time, qlenBytes int) {
	v := float64(qlenBytes)
	if r.PacketSize > 0 {
		v /= float64(r.PacketSize)
	}
	if now >= r.WarmupUntil {
		if !r.warmedUp {
			r.warmedUp = true
		}
		r.tw.Observe(now.Seconds(), v)
	}
	if r.series != nil && (r.lastSample < 0 || now-r.lastSample >= r.SampleEvery) {
		r.lastSample = now
		r.series.Add(now.Seconds(), v)
	}
}

// Finish closes the aggregation window at the end instant.
func (r *QueueRecorder) Finish(end sim.Time) {
	if r.warmedUp {
		r.tw.Finish(end.Seconds())
	}
}

// Mean returns the time-weighted mean occupancy (packets when PacketSize
// is set, bytes otherwise), excluding warmup.
func (r *QueueRecorder) Mean() float64 { return r.tw.Mean() }

// StdDev returns the time-weighted standard deviation, excluding warmup.
func (r *QueueRecorder) StdDev() float64 { return r.tw.StdDev() }

// Min returns the smallest post-warmup occupancy.
func (r *QueueRecorder) Min() float64 { return r.tw.Min() }

// Max returns the largest post-warmup occupancy.
func (r *QueueRecorder) Max() float64 { return r.tw.Max() }

// Series returns the decimated time series, or nil when sampling was
// disabled.
func (r *QueueRecorder) Series() *stats.Series { return r.series }

// MultiMonitor fans one port's queue-change notifications out to several
// monitors, letting an experiment attach both its QueueRecorder and an
// observability histogram to the same port. Order of delivery is the
// slice order; the loop is allocation-free.
type MultiMonitor []QueueMonitor

// QueueChanged implements QueueMonitor.
func (m MultiMonitor) QueueChanged(now sim.Time, qlenBytes int) {
	for _, mon := range m {
		mon.QueueChanged(now, qlenBytes)
	}
}
