package netsim

import (
	"testing"
	"testing/quick"
	"time"

	"dtdctcp/internal/aqm"
	"dtdctcp/internal/sim"
)

const pktSize = 1500

func linkCfg(rate Rate, delay time.Duration, bufferPkts int, policy aqm.Policy) PortConfig {
	return PortConfig{Rate: rate, Delay: delay, Buffer: bufferPkts * pktSize, Policy: policy}
}

// sink records every delivered packet.
type sink struct {
	pkts []*Packet
	at   []sim.Time
	eng  *sim.Engine
}

func (s *sink) Deliver(p *Packet) {
	s.pkts = append(s.pkts, p)
	if s.eng != nil {
		s.at = append(s.at, s.eng.Now())
	}
}

func TestRateSerialization(t *testing.T) {
	tests := []struct {
		rate Rate
		size int
		want time.Duration
	}{
		{10 * Gbps, 1500, 1200 * time.Nanosecond},
		{1 * Gbps, 1500, 12 * time.Microsecond},
		{1 * Gbps, 40, 320 * time.Nanosecond},
		{100 * Mbps, 1500, 120 * time.Microsecond},
		{0, 1500, 0},
	}
	for _, tt := range tests {
		if got := tt.rate.Serialization(tt.size); got != tt.want {
			t.Errorf("%v.Serialization(%d) = %v, want %v", tt.rate, tt.size, got, tt.want)
		}
	}
}

func TestRateString(t *testing.T) {
	tests := []struct {
		rate Rate
		want string
	}{
		{10 * Gbps, "10Gbps"},
		{1 * Mbps, "1Mbps"},
		{64 * Kbps, "64Kbps"},
		{Rate(1500), "1500bps"},
	}
	for _, tt := range tests {
		if got := tt.rate.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestRateBytesPerSecond(t *testing.T) {
	if got := (8 * Mbps).BytesPerSecond(); got != 1e6 {
		t.Fatalf("BytesPerSecond = %v", got)
	}
}

// buildPair wires host A — switch — host B with identical link configs and
// returns the pieces.
func buildPair(t *testing.T, e *sim.Engine, cfg PortConfig) (*Network, *Host, *Host, *Switch) {
	t.Helper()
	n := NewNetwork(e)
	a := n.AddHost("a")
	b := n.AddHost("b")
	sw := n.AddSwitch("sw")
	if err := n.Connect(a, sw, cfg, cfg); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect(b, sw, cfg, cfg); err != nil {
		t.Fatal(err)
	}
	if err := n.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	return n, a, b, sw
}

func TestEndToEndDeliveryAndLatency(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := linkCfg(10*Gbps, 25*time.Microsecond, 100, nil)
	_, a, b, _ := buildPair(t, e, cfg)

	rx := &sink{eng: e}
	b.Register(7, rx)
	pkt := &Packet{Flow: 7, Dst: b.ID(), Size: pktSize, PayloadLen: 1460}
	a.Send(pkt)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rx.pkts) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(rx.pkts))
	}
	if rx.pkts[0].Src != a.ID() {
		t.Fatalf("Src = %v, want %v", rx.pkts[0].Src, a.ID())
	}
	// Two hops: 2 × (1.2µs serialization + 25µs propagation) = 52.4µs.
	want := sim.FromDuration(52400 * time.Nanosecond)
	if rx.at[0] != want {
		t.Fatalf("arrival at %v, want %v", rx.at[0], want)
	}
}

func TestFIFOOrderPreserved(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := linkCfg(1*Gbps, 10*time.Microsecond, 1000, nil)
	_, a, b, _ := buildPair(t, e, cfg)
	rx := &sink{}
	b.Register(1, rx)
	for i := 0; i < 50; i++ {
		pkt := &Packet{Flow: 1, Dst: b.ID(), Size: pktSize, Seq: int64(i)}
		a.Send(pkt)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rx.pkts) != 50 {
		t.Fatalf("delivered %d packets, want 50", len(rx.pkts))
	}
	for i, p := range rx.pkts {
		if p.Seq != int64(i) {
			t.Fatalf("packet %d has seq %d: FIFO violated", i, p.Seq)
		}
	}
}

func TestBufferOverflowDropsTail(t *testing.T) {
	e := sim.NewEngine(1)
	// Tiny buffer: 5 packets.
	cfg := linkCfg(1*Gbps, 10*time.Microsecond, 5, nil)
	_, a, b, _ := buildPair(t, e, cfg)
	rx := &sink{}
	b.Register(1, rx)
	// Burst of 20 back-to-back sends: the first enters service
	// immediately, 5 queue, the rest drop at the host uplink.
	for i := 0; i < 20; i++ {
		a.Send(&Packet{Flow: 1, Dst: b.ID(), Size: pktSize, Seq: int64(i)})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	drops := a.Uplink().Stats().DroppedOverflow
	if drops != 14 {
		t.Fatalf("dropped %d, want 14 (1 in service + 5 queued of 20)", drops)
	}
	if len(rx.pkts) != 6 {
		t.Fatalf("delivered %d, want 6", len(rx.pkts))
	}
}

func TestECNMarkingAtBottleneck(t *testing.T) {
	e := sim.NewEngine(1)
	// Mark everything above 2 packets of occupancy.
	mk := func() aqm.Policy { return aqm.NewSingleThresholdPackets(2, pktSize) }
	cfg := func() PortConfig { return linkCfg(1*Gbps, 10*time.Microsecond, 100, mk()) }
	n := NewNetwork(e)
	a := n.AddHost("a")
	b := n.AddHost("b")
	sw := n.AddSwitch("sw")
	if err := n.Connect(a, sw, cfg(), cfg()); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect(b, sw, cfg(), cfg()); err != nil {
		t.Fatal(err)
	}
	if err := n.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	rx := &sink{}
	b.Register(1, rx)
	for i := 0; i < 10; i++ {
		a.Send(&Packet{Flow: 1, Dst: b.ID(), Size: pktSize, ECT: true, Seq: int64(i)})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	var marked int
	for _, p := range rx.pkts {
		if p.CE {
			marked++
		}
	}
	if marked == 0 {
		t.Fatal("no packets were CE-marked despite queue above threshold")
	}
	if rx.pkts[0].CE {
		t.Fatal("first packet marked although the queue was empty at arrival")
	}
}

func TestNonECTPacketsAreNotMarked(t *testing.T) {
	e := sim.NewEngine(1)
	mk := aqm.NewSingleThresholdPackets(0, pktSize) // mark always
	cfg := linkCfg(1*Gbps, time.Microsecond, 100, mk)
	n := NewNetwork(e)
	a := n.AddHost("a")
	b := n.AddHost("b")
	sw := n.AddSwitch("sw")
	if err := n.Connect(a, sw, cfg, linkCfg(1*Gbps, time.Microsecond, 100, nil)); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect(b, sw, linkCfg(1*Gbps, time.Microsecond, 100, nil), linkCfg(1*Gbps, time.Microsecond, 100, nil)); err != nil {
		t.Fatal(err)
	}
	if err := n.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	rx := &sink{}
	b.Register(1, rx)
	a.Send(&Packet{Flow: 1, Dst: b.ID(), Size: pktSize /* ECT: false */})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rx.pkts) != 1 || rx.pkts[0].CE {
		t.Fatalf("non-ECT packet handling wrong: %+v", rx.pkts)
	}
}

func TestMultiHopRouting(t *testing.T) {
	// Paper's testbed shape: core switch with three edge switches, hosts
	// on the edges, aggregator on the core.
	e := sim.NewEngine(1)
	n := NewNetwork(e)
	core := n.AddSwitch("core")
	agg := n.AddHost("aggregator")
	cfg := linkCfg(1*Gbps, 5*time.Microsecond, 100, nil)
	if err := n.Connect(agg, core, cfg, cfg); err != nil {
		t.Fatal(err)
	}
	var workers []*Host
	for i := 0; i < 3; i++ {
		edge := n.AddSwitch("edge")
		if err := n.Connect(edge, core, cfg, cfg); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 3; j++ {
			w := n.AddHost("worker")
			if err := n.Connect(w, edge, cfg, cfg); err != nil {
				t.Fatal(err)
			}
			workers = append(workers, w)
		}
	}
	if err := n.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	rx := &sink{}
	for i := range workers {
		agg.Register(FlowID(i), rx)
	}
	for i, w := range workers {
		w.Send(&Packet{Flow: FlowID(i), Dst: agg.ID(), Size: pktSize})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rx.pkts) != len(workers) {
		t.Fatalf("delivered %d of %d worker packets", len(rx.pkts), len(workers))
	}
	for _, sw := range n.Switches() {
		if sw.DroppedNoRoute() != 0 {
			t.Fatalf("switch %s dropped %d packets without route", sw.Name(), sw.DroppedNoRoute())
		}
	}
}

func TestWorkConservationThroughput(t *testing.T) {
	// A saturated 1 Gbps port must deliver exactly back-to-back packets:
	// the n-th arrival is separated by one serialization time.
	e := sim.NewEngine(1)
	cfg := linkCfg(1*Gbps, 10*time.Microsecond, 10000, nil)
	_, a, b, _ := buildPair(t, e, cfg)
	rx := &sink{eng: e}
	b.Register(1, rx)
	const count = 100
	for i := 0; i < count; i++ {
		a.Send(&Packet{Flow: 1, Dst: b.ID(), Size: pktSize})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	ser := sim.FromDuration((1 * Gbps).Serialization(pktSize))
	for i := 1; i < count; i++ {
		gap := rx.at[i] - rx.at[i-1]
		if gap != ser {
			t.Fatalf("inter-arrival %v at packet %d, want %v (work conservation)", gap, i, ser)
		}
	}
}

func TestHostSingleConnection(t *testing.T) {
	e := sim.NewEngine(1)
	n := NewNetwork(e)
	a := n.AddHost("a")
	s1 := n.AddSwitch("s1")
	s2 := n.AddSwitch("s2")
	cfg := linkCfg(1*Gbps, time.Microsecond, 10, nil)
	if err := n.Connect(a, s1, cfg, cfg); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect(a, s2, cfg, cfg); err == nil {
		t.Fatal("second host connection should fail")
	}
}

func TestDuplicateEndpointPanics(t *testing.T) {
	e := sim.NewEngine(1)
	n := NewNetwork(e)
	h := n.AddHost("h")
	h.Register(1, &sink{})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	h.Register(1, &sink{})
}

func TestUnknownFlowCounted(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := linkCfg(1*Gbps, time.Microsecond, 10, nil)
	_, a, b, _ := buildPair(t, e, cfg)
	a.Send(&Packet{Flow: 99, Dst: b.ID(), Size: pktSize})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if b.DroppedNoFlow() != 1 {
		t.Fatalf("DroppedNoFlow = %d, want 1", b.DroppedNoFlow())
	}
}

func TestNoRouteError(t *testing.T) {
	e := sim.NewEngine(1)
	n := NewNetwork(e)
	n.AddHost("a")
	sw := n.AddSwitch("sw")
	_ = sw
	// Disconnected topology: routes cannot be computed.
	if err := n.ComputeRoutes(); err == nil {
		t.Fatal("ComputeRoutes on disconnected topology should fail")
	}
}

func TestPortStatsAndAccessors(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := linkCfg(1*Gbps, time.Microsecond, 100, nil)
	_, a, b, sw := buildPair(t, e, cfg)
	rx := &sink{}
	b.Register(1, rx)
	for i := 0; i < 5; i++ {
		a.Send(&Packet{Flow: 1, Dst: b.ID(), Size: pktSize})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	up := a.Uplink()
	st := up.Stats()
	if st.Enqueued != 5 || st.Dequeued != 5 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesSent != 5*pktSize {
		t.Fatalf("BytesSent = %d", st.BytesSent)
	}
	if up.Rate() != 1*Gbps {
		t.Fatalf("Rate = %v", up.Rate())
	}
	if up.QueueLen() != 0 || up.QueuePackets() != 0 {
		t.Fatal("queue not drained")
	}
	if up.Policy().Name() != "droptail" {
		t.Fatalf("Policy = %q", up.Policy().Name())
	}
	if up.Peer().ID() != sw.ID() {
		t.Fatal("Peer mismatch")
	}
	if got := sw.PortTo(b.ID()); got == nil || got.Peer().ID() != b.ID() {
		t.Fatal("PortTo(b) wrong")
	}
	if sw.PortTo(NodeID(999)) != nil {
		t.Fatal("PortTo(unknown) should be nil")
	}
	if sw.Ports() != 2 || sw.Port(0) == nil {
		t.Fatal("switch port accessors wrong")
	}
}

func TestQueueRecorderAggregatesAndSeries(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := linkCfg(1*Gbps, time.Microsecond, 1000, nil)
	_, a, b, _ := buildPair(t, e, cfg)
	rx := &sink{}
	b.Register(1, rx)
	rec := NewQueueRecorder(pktSize, 1) // sample every ns: effectively all
	a.Uplink().SetMonitor(rec)
	for i := 0; i < 10; i++ {
		a.Send(&Packet{Flow: 1, Dst: b.ID(), Size: pktSize})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rec.Finish(e.Now())
	if rec.Max() < 5 {
		t.Fatalf("recorder max = %v, want ≥ 5 packets for a 10-packet burst", rec.Max())
	}
	if rec.Min() != 0 {
		t.Fatalf("recorder min = %v, want 0 after drain", rec.Min())
	}
	if rec.Mean() <= 0 || rec.Mean() >= 10 {
		t.Fatalf("recorder mean = %v out of range", rec.Mean())
	}
	if rec.StdDev() <= 0 {
		t.Fatalf("recorder sd = %v, want > 0", rec.StdDev())
	}
	if rec.Series() == nil || rec.Series().Len() == 0 {
		t.Fatal("series missing")
	}
}

func TestQueueRecorderWarmupExcluded(t *testing.T) {
	rec := NewQueueRecorder(1, 0)
	rec.WarmupUntil = 1000
	rec.QueueChanged(0, 50)   // warmup: excluded from aggregates
	rec.QueueChanged(1000, 2) // first counted observation
	rec.QueueChanged(2000, 2)
	rec.Finish(3000)
	if rec.Max() != 2 {
		t.Fatalf("Max = %v, want 2 (warmup excluded)", rec.Max())
	}
	if rec.Series() != nil {
		t.Fatal("series should be nil when sampling disabled")
	}
}

func TestPacketString(t *testing.T) {
	p := &Packet{Flow: 3, Src: 1, Dst: 2, Seq: 100, PayloadLen: 1460}
	if got := p.String(); got == "" || got[:4] != "data" {
		t.Fatalf("String = %q", got)
	}
	p.IsAck = true
	if got := p.String(); got[:3] != "ack" {
		t.Fatalf("String = %q", got)
	}
}

// Property: for any burst size and buffer size, packets delivered + packets
// dropped = packets sent, and delivered count never exceeds buffer+1 for a
// single instantaneous burst (one in service plus a full queue).
func TestPropertyConservationUnderBursts(t *testing.T) {
	f := func(burst, buf uint8) bool {
		nPkts := int(burst%64) + 1
		bufPkts := int(buf%32) + 1
		e := sim.NewEngine(1)
		cfg := linkCfg(1*Gbps, time.Microsecond, bufPkts, nil)
		n := NewNetwork(e)
		a := n.AddHost("a")
		b := n.AddHost("b")
		sw := n.AddSwitch("sw")
		if err := n.Connect(a, sw, cfg, cfg); err != nil {
			return false
		}
		if err := n.Connect(b, sw, cfg, cfg); err != nil {
			return false
		}
		if err := n.ComputeRoutes(); err != nil {
			return false
		}
		rx := &sink{}
		b.Register(1, rx)
		for i := 0; i < nPkts; i++ {
			a.Send(&Packet{Flow: 1, Dst: b.ID(), Size: pktSize})
		}
		if err := e.Run(); err != nil {
			return false
		}
		drops := int(a.Uplink().Stats().DroppedOverflow)
		if len(rx.pkts)+drops != nPkts {
			return false
		}
		maxDeliverable := bufPkts + 1
		if nPkts <= maxDeliverable {
			return len(rx.pkts) == nPkts
		}
		return len(rx.pkts) == maxDeliverable
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkAccessors(t *testing.T) {
	e := sim.NewEngine(1)
	n := NewNetwork(e)
	if n.Engine() != e {
		t.Fatal("Engine accessor")
	}
	h := n.AddHost("h")
	s := n.AddSwitch("s")
	if n.Node(h.ID()) != Node(h) || n.Node(s.ID()) != Node(s) {
		t.Fatal("Node accessor")
	}
	if len(n.Hosts()) != 1 || n.Hosts()[0] != h {
		t.Fatal("Hosts accessor")
	}
	if h.Network() != n {
		t.Fatal("host Network accessor")
	}
	if h.Name() != "h" || s.Name() != "s" {
		t.Fatal("names")
	}
}

func TestSwitchDropsWithoutRoute(t *testing.T) {
	e := sim.NewEngine(1)
	n := NewNetwork(e)
	a := n.AddHost("a")
	b := n.AddHost("b")
	sw := n.AddSwitch("sw")
	cfg := linkCfg(1*Gbps, time.Microsecond, 10, nil)
	if err := n.Connect(a, sw, cfg, cfg); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect(b, sw, cfg, cfg); err != nil {
		t.Fatal(err)
	}
	// Routes deliberately not computed: the switch has no entries.
	a.Send(&Packet{Flow: 1, Dst: b.ID(), Size: 1500})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sw.DroppedNoRoute() != 1 {
		t.Fatalf("DroppedNoRoute = %d, want 1", sw.DroppedNoRoute())
	}
}

func TestReceiverIgnoresDataAtUnknownSwitchlessHost(t *testing.T) {
	// Host.Receive for a registered flow delivers; SetTracer(nil) is a
	// no-op detach.
	e := sim.NewEngine(1)
	cfg := linkCfg(1*Gbps, time.Microsecond, 10, nil)
	_, a, b, _ := buildPair(t, e, cfg)
	rx := &sink{}
	b.Register(1, rx)
	a.Uplink().SetTracer(nil)
	a.Send(&Packet{Flow: 1, Dst: b.ID(), Size: 1500})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rx.pkts) != 1 {
		t.Fatal("delivery broken with nil tracer")
	}
}
