package netsim

import (
	"fmt"

	"dtdctcp/internal/sim"
)

// Network is a collection of nodes and directed links plus static routes.
// Build a topology with AddHost/AddSwitch/Connect, then call ComputeRoutes
// once before starting traffic.
type Network struct {
	engine   *sim.Engine
	nodes    []Node
	hosts    []*Host
	switches []*Switch
	// adjacency lists the neighbours of each node in attachment order,
	// mirrored by the switch port slices.
	adjacency map[NodeID][]NodeID
	// pool recycles packets across the whole topology; see AllocPacket.
	pool packetPool

	// Sharded execution state (see Partition in shard.go): the
	// coordinator, one packet free list per shard, and the rebalancing
	// scratch buffer that levels them between epochs.
	se         *sim.ShardedEngine
	shardPools []packetPool
	spares     []*Packet
}

// NewNetwork creates an empty topology bound to the engine.
func NewNetwork(engine *sim.Engine) *Network {
	return &Network{engine: engine, adjacency: make(map[NodeID][]NodeID)}
}

// Engine returns the simulation engine the network runs on.
func (n *Network) Engine() *sim.Engine { return n.engine }

// AddHost creates a host node.
func (n *Network) AddHost(name string) *Host {
	h := &Host{
		id:        NodeID(len(n.nodes)),
		name:      name,
		net:       n,
		endpoints: make(map[FlowID]Endpoint),
		engine:    n.engine,
		pool:      &n.pool,
	}
	h.recvArgFn = func(arg any) { h.Receive(arg.(*Packet)) }
	n.nodes = append(n.nodes, h)
	n.hosts = append(n.hosts, h)
	return h
}

// AddSwitch creates a switch node.
func (n *Network) AddSwitch(name string) *Switch {
	s := &Switch{
		id:      NodeID(len(n.nodes)),
		name:    name,
		net:     n,
		portIdx: make(map[NodeID]int),
		routes:  make(map[NodeID]int),
	}
	n.nodes = append(n.nodes, s)
	n.switches = append(n.switches, s)
	return s
}

// Node returns the node with the given id.
func (n *Network) Node(id NodeID) Node { return n.nodes[id] }

// Hosts returns the hosts in creation order (shared slice; do not mutate).
func (n *Network) Hosts() []*Host { return n.hosts }

// Switches returns the switches in creation order (shared slice; do not
// mutate).
func (n *Network) Switches() []*Switch { return n.switches }

// Connect joins two nodes with a full-duplex link: ab configures the a→b
// direction (the port on a), ba the b→a direction. Hosts accept exactly
// one connection.
func (n *Network) Connect(a, b Node, ab, ba PortConfig) error {
	if _, err := n.attach(a, b, ab); err != nil {
		return err
	}
	if _, err := n.attach(b, a, ba); err != nil {
		return err
	}
	n.adjacency[a.ID()] = append(n.adjacency[a.ID()], b.ID())
	n.adjacency[b.ID()] = append(n.adjacency[b.ID()], a.ID())
	return nil
}

func (n *Network) attach(from, to Node, cfg PortConfig) (*Port, error) {
	port := newPort(n, cfg, to)
	switch node := from.(type) {
	case *Host:
		if node.uplink != nil {
			return nil, fmt.Errorf("netsim: host %s already connected", node.name)
		}
		node.uplink = port
	case *Switch:
		if _, dup := node.portIdx[to.ID()]; dup {
			return nil, fmt.Errorf("netsim: duplicate link %s → %s", node.name, to.Name())
		}
		node.portIdx[to.ID()] = len(node.ports)
		node.ports = append(node.ports, port)
	default:
		return nil, fmt.Errorf("netsim: unknown node type %T", from)
	}
	return port, nil
}

// ComputeRoutes fills every switch's routing table with shortest paths
// (hop count, BFS). It must be called after the topology is complete and
// before any traffic is sent. It also stamps every port with its stable
// shard-domain index (hosts in creation order, then switch ports in
// switch × attachment order — the same numbering Partition uses), so
// serial runs order same-instant cross-domain deliveries by the
// identical key a partitioned run produces at its epoch barriers.
func (n *Network) ComputeRoutes() error {
	n.stampDomains()
	for _, s := range n.switches {
		for _, dst := range n.nodes {
			if dst.ID() == s.ID() {
				continue
			}
			next, ok := n.nextHop(s.ID(), dst.ID())
			if !ok {
				return fmt.Errorf("netsim: no path from %s to %s", s.Name(), dst.Name())
			}
			idx, ok := s.portIdx[next]
			if !ok {
				return fmt.Errorf("netsim: inconsistent adjacency at %s", s.Name())
			}
			s.routes[dst.ID()] = idx
		}
	}
	return nil
}

// stampDomains writes the stable shard-domain index onto every port
// (hosts in creation order, then switch ports in switch × attachment
// order — the numbering Partition uses), so serial runs order
// same-instant cross-domain deliveries by the identical key a
// partitioned run produces at its epoch barriers.
func (n *Network) stampDomains() {
	d := 0
	for _, h := range n.hosts {
		if h.uplink != nil {
			h.uplink.srcKey = d
		}
		d++
	}
	for _, s := range n.switches {
		for _, p := range s.ports {
			p.srcKey = d
			d++
		}
	}
}

// ComputeRoutesECMP fills the routing tables like ComputeRoutes, but
// keeps every equal-cost shortest next hop instead of only the first: a
// destination with two or more tied first hops gets an ECMP set, and
// each switch resolves a packet's egress by hashing (salt, switch id,
// flow id) over it — see Switch.egress. The salt should come from the
// topology's seeded engine so placement is a pure function of the run
// seed; ECMP sets are ordered by port index, so the choice is
// reproducible and independent of shard count and domain assignment.
// Like ComputeRoutes, it must be called after the topology is complete
// and before any traffic (or Partition).
func (n *Network) ComputeRoutesECMP(salt uint64) error {
	n.stampDomains()
	// dist[x] = hops from node x to the current destination along paths
	// whose interior nodes are switches. Computed by BFS outward from the
	// destination over the (symmetric) adjacency; hosts other than the
	// destination take a distance but are never expanded, because they do
	// not forward.
	dist := make([]int, len(n.nodes))
	queue := make([]NodeID, 0, len(n.nodes))
	for _, s := range n.switches {
		s.hashSalt = salt
		s.ecmp = make(map[NodeID][]int32)
	}
	for _, dstNode := range n.nodes {
		dst := dstNode.ID()
		for i := range dist {
			dist[i] = -1
		}
		dist[dst] = 0
		queue = append(queue[:0], dst)
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			if cur != dst {
				if _, isHost := n.nodes[cur].(*Host); isHost {
					continue
				}
			}
			for _, nb := range n.adjacency[cur] {
				if dist[nb] < 0 {
					dist[nb] = dist[cur] + 1
					queue = append(queue, nb)
				}
			}
		}
		for _, s := range n.switches {
			if s.id == dst {
				continue
			}
			if dist[s.id] < 0 {
				return fmt.Errorf("netsim: no path from %s to %s", s.Name(), dstNode.Name())
			}
			first := -1
			var set []int32
			for i, p := range s.ports {
				peer := p.peer.ID()
				if dist[peer] != dist[s.id]-1 {
					continue
				}
				if peer != dst {
					if _, isHost := n.nodes[peer].(*Host); isHost {
						continue // hosts do not forward
					}
				}
				if first < 0 {
					first = i
				}
				set = append(set, int32(i))
			}
			if first < 0 {
				return fmt.Errorf("netsim: inconsistent adjacency at %s", s.Name())
			}
			s.routes[dst] = first
			if len(set) > 1 {
				s.ecmp[dst] = set
			}
		}
	}
	return nil
}

// nextHop runs a BFS from src and returns the first hop on a shortest path
// to dst.
func (n *Network) nextHop(src, dst NodeID) (NodeID, bool) {
	type entry struct {
		node  NodeID
		first NodeID
	}
	visited := make(map[NodeID]bool, len(n.nodes))
	visited[src] = true
	queue := make([]entry, 0, len(n.nodes))
	for _, nb := range n.adjacency[src] {
		if nb == dst {
			return nb, true
		}
		visited[nb] = true
		queue = append(queue, entry{node: nb, first: nb})
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		// Hosts do not forward; they can only terminate a path.
		if _, isHost := n.nodes[cur.node].(*Host); isHost {
			continue
		}
		for _, nb := range n.adjacency[cur.node] {
			if nb == dst {
				return cur.first, true
			}
			if !visited[nb] {
				visited[nb] = true
				queue = append(queue, entry{node: nb, first: cur.first})
			}
		}
	}
	return 0, false
}
