package netsim

import (
	"fmt"

	"dtdctcp/internal/sim"
)

// Node is anything packets can arrive at: a switch or a host.
type Node interface {
	// ID returns the node's identifier within its network.
	ID() NodeID
	// Receive handles a packet that finished propagation on an inbound
	// link.
	Receive(pkt *Packet)
	// Name returns a human-readable label for traces.
	Name() string
}

// Endpoint is a transport attached to a host; the host delivers every
// packet of the endpoint's flow to it.
type Endpoint interface {
	// Deliver hands the endpoint an arrived packet.
	Deliver(pkt *Packet)
}

// Switch is an output-queued store-and-forward switch with static routes.
type Switch struct {
	id    NodeID
	name  string
	net   *Network
	ports []*Port
	// portIdx maps a directly attached peer to its port index, built at
	// wiring time so PortTo and route computation stay O(1) per lookup
	// even on fat-tree switches with dozens of ports.
	portIdx map[NodeID]int
	// routes maps destination node → output port index.
	routes map[NodeID]int
	// ecmp lists every equal-cost egress port for destinations that have
	// more than one shortest path; nil (or a missing key) means the
	// single entry in routes is the only choice. Filled by
	// ComputeRoutesECMP, read-only afterwards. Sets are ordered by port
	// index so path selection is a pure function of (hashSalt, switch id,
	// flow id) — identical in serial and sharded runs.
	ecmp map[NodeID][]int32
	// hashSalt seeds the ECMP flow hash; drawn once per topology from
	// the engine's seeded source so path placement varies with the run
	// seed but never with shard count or assignment.
	hashSalt uint64
	// droppedNoRoute counts packets with no matching route.
	droppedNoRoute uint64

	// Sharded execution (see Network.Partition): routeless packets have
	// no egress domain, so they are charged to the shard of the first
	// port, where noRouteFn counts and recycles them.
	noRouteShard int
	noRouteFn    func(any)
}

// ID implements Node.
func (s *Switch) ID() NodeID { return s.id }

// Name implements Node.
func (s *Switch) Name() string { return s.name }

// Port returns the i-th port in attachment order.
func (s *Switch) Port(i int) *Port { return s.ports[i] }

// Ports returns the number of attached ports.
func (s *Switch) Ports() int { return len(s.ports) }

// PortTo returns the port whose link leads directly to peer, or nil.
func (s *Switch) PortTo(peer NodeID) *Port {
	if i, ok := s.portIdx[peer]; ok {
		return s.ports[i]
	}
	return nil
}

// egress resolves the packet's output port index: the ECMP set when the
// destination has several equal-cost next hops, the static route
// otherwise. ECMP selection hashes (topology salt, switch id, flow id),
// so a flow's path is fixed for its lifetime and identical whether the
// lookup runs serially in Receive or at a shipping port's source-side
// resolution on another shard.
//
//dtlint:hotpath
func (s *Switch) egress(pkt *Packet) (int, bool) {
	if s.ecmp != nil {
		if set, ok := s.ecmp[pkt.Dst]; ok {
			h := ecmpHash(s.hashSalt, uint64(s.id), uint64(pkt.Flow))
			return int(set[h%uint64(len(set))]), true
		}
	}
	idx, ok := s.routes[pkt.Dst]
	return idx, ok
}

// ecmpHash mixes the topology salt, the switch identity, and the flow
// identity with a splitmix64-style finalizer. Including the switch id
// decorrelates consecutive hops (no path polarization: downstream
// switches do not all make the same choice), and the salt makes
// placement a function of the run seed.
//
//dtlint:hotpath
func ecmpHash(salt, swID, flow uint64) uint64 {
	z := salt ^ swID*0x9e3779b97f4a7c15 ^ flow*0xbf58476d1ce4e5b9
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ z>>31
}

// Receive implements Node: forward on the route — or the ECMP hash — for
// the packet's destination.
//
//dtlint:hotpath
func (s *Switch) Receive(pkt *Packet) {
	idx, ok := s.egress(pkt)
	if !ok {
		s.droppedNoRoute++
		s.net.FreePacket(pkt)
		return
	}
	s.ports[idx].Send(pkt)
}

// DroppedNoRoute reports packets discarded for lack of a route.
func (s *Switch) DroppedNoRoute() uint64 { return s.droppedNoRoute }

// Host is a leaf node with a single uplink and a set of transport
// endpoints keyed by flow.
type Host struct {
	id        NodeID
	name      string
	net       *Network
	uplink    *Port
	endpoints map[FlowID]Endpoint
	// droppedNoFlow counts packets for unknown flows.
	droppedNoFlow uint64

	// engine is the event wheel this host's endpoints schedule on: the
	// network's engine in a serial run, the owning shard's under
	// Partition. pool is the packet free list on the same shard.
	engine *sim.Engine
	pool   *packetPool
	// shard and recvArgFn serve cross-shard delivery: a remote port
	// ships arriving packets as barrier messages running recvArgFn on
	// this host's shard.
	shard     int
	recvArgFn func(any)
}

// ID implements Node.
func (h *Host) ID() NodeID { return h.id }

// Name implements Node.
func (h *Host) Name() string { return h.name }

// Uplink returns the host's single outbound port. It is nil until the
// host is connected.
func (h *Host) Uplink() *Port { return h.uplink }

// Network returns the network the host belongs to.
func (h *Host) Network() *Network { return h.net }

// Engine returns the event wheel this host's endpoints must schedule on:
// the network's engine in a serial run, the owning shard's engine after
// Network.Partition. Transports bind timers and events through this
// accessor so the same endpoint code runs serial or sharded unchanged.
func (h *Host) Engine() *sim.Engine { return h.engine }

// AllocPacket returns a zeroed packet from the host's free list (the
// shard-local list under Partition, the network-wide one otherwise).
// Endpoints must allocate through their host so packet storage stays on
// the shard that fills it.
//
//dtlint:hotpath
func (h *Host) AllocPacket() *Packet { return h.pool.get() }

// Register attaches a transport endpoint for a flow. Registering a second
// endpoint for the same flow panics: it is always a harness bug.
func (h *Host) Register(flow FlowID, ep Endpoint) {
	if _, dup := h.endpoints[flow]; dup {
		panic(fmt.Sprintf("netsim: duplicate endpoint for flow %d on %s", flow, h.name))
	}
	h.endpoints[flow] = ep
}

// Unregister detaches the endpoint for a flow.
func (h *Host) Unregister(flow FlowID) { delete(h.endpoints, flow) }

// Send stamps the packet's source and pushes it onto the uplink.
//
//dtlint:hotpath
func (h *Host) Send(pkt *Packet) {
	pkt.Src = h.id
	h.uplink.Send(pkt)
}

// Receive implements Node: deliver to the flow's endpoint. Delivery is
// a pooled packet's terminal point — the network recycles it when
// Deliver returns, so endpoints must copy out anything they keep.
//
//dtlint:hotpath
func (h *Host) Receive(pkt *Packet) {
	ep, ok := h.endpoints[pkt.Flow]
	if !ok {
		h.droppedNoFlow++
		h.pool.put(pkt)
		return
	}
	ep.Deliver(pkt)
	h.pool.put(pkt)
}

// DroppedNoFlow reports packets discarded for lack of an endpoint.
func (h *Host) DroppedNoFlow() uint64 { return h.droppedNoFlow }
