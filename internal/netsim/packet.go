// Package netsim models the network elements of the paper's experiments:
// packets, rate-limited links with propagation delay, output-queued switch
// ports with pluggable AQM, switches with static routing, and hosts that
// demultiplex packets to transport endpoints.
//
// The model is deliberately at the abstraction level of ns-2's wired
// stack — the substrate the paper's simulations used: store-and-forward
// output queues, exact serialization times, fixed propagation delays, and
// instantaneous ECN marking at enqueue.
package netsim

import (
	"fmt"

	"dtdctcp/internal/sim"
)

// NodeID identifies a host or switch within one Network.
type NodeID int

// FlowID identifies a transport flow. Data packets and their ACKs share
// the flow ID, which is how hosts demultiplex.
type FlowID int

// Packet is the single wire unit of the simulator. One concrete struct
// (rather than per-protocol types) keeps the hot path free of interface
// dispatch; unused fields are zero.
type Packet struct {
	// Flow is the transport flow the packet belongs to.
	Flow FlowID
	// Src and Dst are the endpoints; switches route on Dst.
	Src, Dst NodeID
	// Size is the on-wire size in bytes, headers included.
	Size int

	// IsAck marks a pure acknowledgement (no payload).
	IsAck bool
	// Seq is the byte sequence number of the first payload byte.
	Seq int64
	// PayloadLen is the number of payload bytes carried.
	PayloadLen int
	// Ack is the cumulative acknowledgement number (next expected byte),
	// meaningful when IsAck.
	Ack int64

	// ECT marks an ECN-capable transport; only ECT packets are marked
	// by AQM (non-ECT packets would be dropped by RED-style laws).
	ECT bool
	// CE is the Congestion-Experienced codepoint, set by switches.
	CE bool
	// ECE is the receiver's echo of CE back to the sender (carried on
	// ACKs, per the DCTCP echo state machine).
	ECE bool
	// CWR is set by a classic-ECN sender on the first data packet after
	// a window reduction, telling the receiver to stop latching ECE.
	CWR bool
	// DelayedCount is the number of data packets this (delayed) ACK
	// acknowledges, used by the DCTCP sender to weight marked bytes.
	DelayedCount int

	// SentAt is the instant the sender handed the packet to its port,
	// echoed on ACKs for RTT sampling.
	SentAt sim.Time
	// EnqueuedAt is stamped by the port on acceptance; dequeue-time
	// queue laws (CoDel) read the sojourn time from it.
	EnqueuedAt sim.Time
	// EchoSentAt is the SentAt of the data packet that triggered this
	// ACK (for RTT measurement at the sender).
	EchoSentAt sim.Time

	// pooled marks a packet born from a Network's free list; only such
	// packets are recycled at delivery/drop points. freed guards against
	// double-recycling.
	pooled bool
	freed  bool
}

// String renders a compact description for traces.
func (p *Packet) String() string {
	kind := "data"
	if p.IsAck {
		kind = "ack"
	}
	return fmt.Sprintf("%s flow=%d %d→%d seq=%d ack=%d len=%d ce=%t ece=%t",
		kind, p.Flow, p.Src, p.Dst, p.Seq, p.Ack, p.PayloadLen, p.CE, p.ECE)
}
