package netsim

import "dtdctcp/internal/invariant"

// packetPool is a free list of Packets owned by one Network. Transport
// endpoints allocate from it and the network recycles a packet at its
// single terminal point — delivery to an endpoint or a drop — so the
// steady-state data path reuses a small working set of packets instead
// of allocating one per segment.
//
// Only packets born from the pool are ever recycled: a Packet built with
// a plain composite literal (tests, examples) passes through the free
// hooks untouched, which keeps the pool opt-in and the old construction
// style valid.
type packetPool struct {
	free []*Packet
}

//dtlint:hotpath
func (pp *packetPool) get() *Packet {
	if n := len(pp.free); n > 0 {
		p := pp.free[n-1]
		pp.free[n-1] = nil
		pp.free = pp.free[:n-1]
		p.freed = false
		return p
	}
	//dtlint:allow hotalloc: pool miss is the cold path; steady state is all free-list hits
	return &Packet{pooled: true}
}

//dtlint:hotpath
func (pp *packetPool) put(p *Packet) {
	if p == nil || !p.pooled || p.freed {
		if invariant.Enabled && p != nil && p.pooled {
			//dtlint:allow hotalloc: assertion boxing is build-tag gated; alloc tests skip under -tags invariants
			invariant.Assert(!p.freed, "netsim: double free of pooled packet %v", p)
		}
		return
	}
	*p = Packet{pooled: true, freed: true}
	//dtlint:allow hotalloc: the free list retains capacity; growth is amortized across the warm-up
	pp.free = append(pp.free, p)
}

// AllocPacket returns a zeroed packet from the network's free list. The
// caller sets its fields and hands it to a Host or Port; the network
// recycles it when it is delivered or dropped. After that point the
// packet must not be touched — endpoints that need data past Deliver
// must copy it out.
//
//dtlint:hotpath
func (n *Network) AllocPacket() *Packet { return n.pool.get() }

// FreePacket returns a pooled packet to the free list; packets not born
// from AllocPacket are ignored. Model code rarely calls this directly —
// the network frees at delivery and drop points — but a producer that
// allocated a packet and then decided not to send it must give it back.
//
//dtlint:hotpath
func (n *Network) FreePacket(p *Packet) { n.pool.put(p) }
