package netsim

import (
	"fmt"
	"time"

	"dtdctcp/internal/aqm"
	"dtdctcp/internal/invariant"
	"dtdctcp/internal/sim"
)

// QueueMonitor observes every occupancy change of one port's queue. The
// experiment runners attach monitors to the bottleneck port to collect the
// queue-length statistics of Figs. 1, 10 and 11.
type QueueMonitor interface {
	// QueueChanged is invoked after each enqueue or dequeue with the new
	// occupancy in bytes.
	QueueChanged(now sim.Time, qlenBytes int)
}

// PortTracer observes per-packet events at one port, for structured
// tracing. All hooks run synchronously on the simulation goroutine; keep
// them cheap, and copy out any packet fields needed later — pooled
// packets are recycled after the hook returns.
type PortTracer interface {
	// PacketEnqueued fires after a packet is accepted into the queue;
	// marked reports whether this port set CE on it.
	PacketEnqueued(now sim.Time, pkt *Packet, qlenBytes int, marked bool)
	// PacketDequeued fires when a packet enters transmission.
	PacketDequeued(now sim.Time, pkt *Packet, qlenBytes int)
	// PacketDropped fires for discarded packets; overflow distinguishes
	// buffer exhaustion from an AQM drop decision.
	PacketDropped(now sim.Time, pkt *Packet, qlenBytes int, overflow bool)
}

// FaultKind classifies a fault-induced packet loss (see FaultTracer).
type FaultKind int

// Fault-induced loss kinds.
const (
	// FaultCorrupt is a packet corrupted on the wire after serialization
	// (modelled as loss: the receiver would fail the checksum).
	FaultCorrupt FaultKind = iota
	// FaultLinkDown is a packet lost to a link in the down state: an
	// arrival while down, a flushed queue entry, or the packet whose
	// serialization the outage cut mid-transmission.
	FaultLinkDown
)

// String names the fault kind for traces and test output.
func (k FaultKind) String() string {
	switch k {
	case FaultCorrupt:
		return "corrupt"
	case FaultLinkDown:
		return "link-down"
	default:
		return "unknown"
	}
}

// FaultTracer is an optional extension of PortTracer for ports under
// fault injection: implementations additionally observe fault-induced
// losses and link state transitions. A PortTracer that does not implement
// it still sees fault losses through PacketDropped.
type FaultTracer interface {
	// PacketFaulted fires for packets lost to a fault rather than a
	// queue decision.
	PacketFaulted(now sim.Time, pkt *Packet, qlenBytes int, kind FaultKind)
	// LinkStateChanged fires after the port's link goes down or returns.
	LinkStateChanged(now sim.Time, up bool, qlenBytes int)
}

// PortStats counts per-port events.
type PortStats struct {
	// Enqueued and Dequeued count packets accepted into and transmitted
	// out of the queue.
	Enqueued, Dequeued uint64
	// Marked counts packets that left with the CE codepoint set by this
	// port.
	Marked uint64
	// DroppedOverflow counts packets dropped for lack of buffer.
	DroppedOverflow uint64
	// DroppedPolicy counts packets dropped by the AQM policy (RED in
	// drop mode).
	DroppedPolicy uint64
	// DroppedLinkDown counts packets lost to a down link: arrivals during
	// an outage, flushed queue entries, and serializations cut mid-packet.
	DroppedLinkDown uint64
	// DroppedCorrupt counts packets corrupted (and hence lost) on the
	// wire by SetCorruptProb.
	DroppedCorrupt uint64
	// BytesSent is the total on-wire bytes transmitted.
	BytesSent uint64
}

// Port is one output interface: a finite FIFO byte buffer drained at the
// link rate, with an AQM policy consulted at every arrival, followed by a
// fixed propagation delay to the peer node.
type Port struct {
	engine *sim.Engine
	net    *Network

	// rate and delay describe the attached link.
	rate  Rate
	delay time.Duration
	// buffer is the queue capacity in bytes (the packet in transmission
	// no longer counts against it, matching output-queued switches).
	buffer int
	policy aqm.Policy
	peer   Node

	queue    pktRing
	queueLen int // bytes
	// shared, when non-nil, replaces the static buffer bound with a
	// switch-wide dynamic-threshold pool (see SharedBuffer).
	shared  *SharedBuffer
	busy    bool
	stats   PortStats
	monitor QueueMonitor
	tracer  PortTracer

	// ambientBytes and ambientRate model co-simulated background traffic
	// sharing this port (see SetAmbient in ambient.go): a foreign queue
	// contribution biasing every occupancy the AQM and monitor see, and
	// the bandwidth that traffic consumes.
	ambientBytes int
	ambientRate  Rate

	// Runtime fault state (see SetDown / SetCorruptProb). txPkt and txRef
	// track the packet currently in serialization so a link-down can cut
	// it mid-transmission.
	down        bool
	corruptProb float64
	txPkt       *Packet
	txRef       sim.EventRef

	// txDoneFn and deliverFn are the transmit chain's event callbacks,
	// built once at construction. Scheduling them through ScheduleArg
	// with the packet as the argument keeps the per-packet event path
	// free of closure allocations.
	txDoneFn  func(any)
	deliverFn func(any)
	// sendArgFn wraps Send for cross-shard injection: a remote domain
	// whose route egresses here ships a barrier message that runs it on
	// this port's shard.
	sendArgFn func(any)

	// pool is the packet free list drops and deliveries recycle into:
	// the network-wide pool in a serial run, the owning shard's under
	// Partition.
	pool *packetPool
	// shard and outbox bind the port for sharded execution (nil outbox ⇒
	// serial). srcKey is the stable domain index the port ships under and
	// xseq its per-domain monotone delivery counter; ComputeRoutes assigns
	// srcKey for serial runs too, so a serial engine orders same-instant
	// deliveries by the identical (srcKey, xseq) key a partitioned run
	// uses at its barriers. srcKey < 0 means unassigned (a topology that
	// never computed routes), which falls back to unkeyed scheduling.
	shard  int
	srcKey int
	xseq   uint64
	outbox *sim.Outbox
}

// PortConfig bundles the parameters of one directed link attachment.
type PortConfig struct {
	// Rate is the link speed.
	Rate Rate
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// Buffer is the queue capacity in bytes.
	Buffer int
	// Policy is the queue law; nil means DropTail.
	Policy aqm.Policy
}

func newPort(net *Network, cfg PortConfig, peer Node) *Port {
	policy := cfg.Policy
	if policy == nil {
		policy = aqm.NewDropTail()
	}
	p := &Port{
		engine: net.engine,
		net:    net,
		rate:   cfg.Rate,
		delay:  cfg.Delay,
		buffer: cfg.Buffer,
		policy: policy,
		peer:   peer,
		queue:  pktRing{buf: make([]*Packet, ringInitialCap)},
		pool:   &net.pool,
		srcKey: -1,
	}
	//dtlint:hotpath
	p.deliverFn = func(arg any) { p.peer.Receive(arg.(*Packet)) }
	//dtlint:hotpath
	p.sendArgFn = func(arg any) { p.Send(arg.(*Packet)) }
	//dtlint:hotpath
	p.txDoneFn = func(arg any) {
		pkt := arg.(*Packet)
		p.txPkt = nil
		p.txRef = sim.EventRef{}
		// Wire corruption is decided once serialization completes: the
		// packet occupied the link but never arrives intact.
		if p.corruptProb > 0 && p.engine.Rand().Float64() < p.corruptProb {
			p.dropFault(pkt, FaultCorrupt)
		} else {
			p.ship(pkt)
		}
		p.transmitNext()
	}
	return p
}

// bindShard rebinds the port to its shard's engine, outbox, and pool,
// recording the stable domain index used as the cross-shard sort key.
func (p *Port) bindShard(se *sim.ShardedEngine, shard, srcKey int, pool *packetPool) {
	p.engine = se.Shard(shard)
	p.shard = shard
	p.srcKey = srcKey
	p.outbox = se.Outbox(shard)
	p.pool = pool
}

// ship launches a serialized packet onto the wire: arrival at the peer
// after the propagation delay. Serially that is one self-owned event; a
// partitioned port instead ships a barrier message to the destination
// domain, resolving the switch hop at the source (see shard.go) so the
// message lands directly on the egress port's — or the peer host's —
// shard. Both paths stamp the delivery with the ship instant and the
// port's stable (srcKey, xseq) identity, so same-instant arrival ties at
// the destination resolve identically whether the run is serial or
// partitioned — a tie between two domains' deliveries is decided by the
// topology-derived key, never by the engine-local scheduling
// interleaving, which a partitioned run could not reproduce.
//
//dtlint:hotpath
func (p *Port) ship(pkt *Packet) {
	if p.outbox == nil {
		if p.srcKey < 0 {
			// Routes never computed: no stable identity to ship under.
			p.engine.AfterArg(p.delay, p.deliverFn, pkt)
			return
		}
		now := p.engine.Now()
		p.engine.ScheduleSrcArg(now.Add(p.delay), p.srcKey, p.xseq, p.deliverFn, pkt)
		p.xseq++
		return
	}
	now := p.engine.Now()
	dst, fn := p.resolveDst(pkt)
	p.outbox.Ship(sim.Message{
		At:      now.Add(p.delay),
		SchedAt: now,
		SrcKey:  p.srcKey,
		SrcSeq:  p.xseq,
		Dst:     dst,
		Fn:      fn,
		Arg:     pkt,
	})
	p.xseq++
}

// resolveDst maps a packet to its destination shard and delivery
// function. Host peers take the packet directly; switch peers are
// resolved through their routing state to the egress port, whose
// Send runs on its own shard at the arrival instant — the same
// Switch.egress lookup (static route or ECMP hash) Receive performs
// serially, against tables that are read-only after
// ComputeRoutes/ComputeRoutesECMP.
//
//dtlint:hotpath
func (p *Port) resolveDst(pkt *Packet) (int, func(any)) {
	switch peer := p.peer.(type) {
	case *Host:
		return peer.shard, peer.recvArgFn
	case *Switch:
		idx, ok := peer.egress(pkt)
		if !ok {
			return peer.noRouteShard, peer.noRouteFn
		}
		egress := peer.ports[idx]
		return egress.shard, egress.sendArgFn
	default:
		//dtlint:allow hotalloc: unreachable die path; nodes are hosts or switches
		panic(fmt.Sprintf("netsim: unknown peer type %T", p.peer))
	}
}

// SetMonitor attaches a queue monitor; pass nil to detach.
func (p *Port) SetMonitor(m QueueMonitor) { p.monitor = m }

// SetTracer attaches a per-packet tracer; pass nil to detach.
func (p *Port) SetTracer(t PortTracer) { p.tracer = t }

// Stats returns a copy of the port's counters.
func (p *Port) Stats() PortStats { return p.stats }

// QueueLen returns the instantaneous queue occupancy in bytes.
func (p *Port) QueueLen() int { return p.queueLen }

// QueuePackets returns the number of queued packets.
func (p *Port) QueuePackets() int { return p.queue.len() }

// Policy returns the attached AQM policy.
func (p *Port) Policy() aqm.Policy { return p.policy }

// Rate returns the link speed.
func (p *Port) Rate() Rate { return p.rate }

// Delay returns the one-way propagation delay.
func (p *Port) Delay() time.Duration { return p.delay }

// Buffer returns the queue capacity in bytes. For a pooled port this is
// the configured static size, which admission no longer consults — see
// Shared.
func (p *Port) Buffer() int { return p.buffer }

// Shared returns the port's shared-buffer pool, or nil for a port with a
// private static buffer.
func (p *Port) Shared() *SharedBuffer { return p.shared }

// addQueued moves the port's byte counter by delta, mirroring the change
// into the shared pool's occupancy when the port is pooled. Every
// enqueue/dequeue path funnels through here so the two counters cannot
// drift.
//
//dtlint:hotpath
func (p *Port) addQueued(delta int) {
	p.queueLen += delta
	if p.shared != nil {
		p.shared.used += delta
	}
}

// Down reports whether the link is administratively down.
func (p *Port) Down() bool { return p.down }

// CorruptProb returns the per-packet wire corruption probability.
func (p *Port) CorruptProb() float64 { return p.corruptProb }

// Peer returns the node at the far end of the link.
func (p *Port) Peer() Node { return p.peer }

// SetRate changes the link speed at the current instant. The packet
// currently in serialization keeps its old timing; every later packet
// clocks out at the new rate. Non-positive rates are ignored.
func (p *Port) SetRate(r Rate) {
	if r > 0 {
		p.rate = r
	}
}

// SetDelay changes the propagation delay. Packets already launched keep
// their old arrival times (the wire does not reorder); negative delays
// are ignored.
func (p *Port) SetDelay(d time.Duration) {
	if d >= 0 {
		p.delay = d
	}
}

// SetBuffer resizes the queue capacity. Shrinking below the current
// occupancy drops packets from the tail of the queue (the most recent
// arrivals — what a switch reconfiguring its buffer carve-up discards)
// until the occupancy fits; those count as overflow drops. On a pooled
// port the mutation resizes the whole shared pool instead, evicting from
// the longest member queue (chaos buffer faults compose with buffer
// sharing this way). Non-positive sizes are ignored.
func (p *Port) SetBuffer(bytes int) {
	if bytes <= 0 {
		return
	}
	if p.shared != nil {
		p.shared.Resize(bytes)
		return
	}
	p.buffer = bytes
	if p.queueLen <= p.buffer {
		return
	}
	for p.queueLen > p.buffer && p.queue.len() > 0 {
		pkt := p.queue.popTail()
		p.addQueued(-pkt.Size)
		p.policy.OnDeparture(p.engine.Now(), p.totalQueueLen())
		p.drop(pkt, true)
	}
	p.checkConservation()
	p.notifyMonitor()
}

// SetCorruptProb sets the probability that a packet is corrupted (and so
// lost) after serialization. Randomness comes from the engine's seeded
// source, so corruption is a pure function of the run seed. The value is
// clamped to [0, 1].
func (p *Port) SetCorruptProb(prob float64) {
	switch {
	case prob < 0:
		prob = 0
	case prob > 1:
		prob = 1
	}
	p.corruptProb = prob
}

// SetDown changes the link's administrative state. Going down always cuts
// the packet currently in serialization (it is lost mid-transmission);
// flush additionally discards every queued packet, while flush=false keeps
// the queue intact to drain when the link returns. While down, arriving
// packets are dropped. Coming up resumes transmission of whatever is
// queued; flush is ignored on the way up.
//
//dtlint:hotpath
func (p *Port) SetDown(down, flush bool) {
	if down == p.down {
		if down && flush {
			p.flushQueue()
		}
		return
	}
	p.down = down
	if down {
		p.txRef.Cancel()
		p.txRef = sim.EventRef{}
		if p.txPkt != nil {
			p.dropFault(p.txPkt, FaultLinkDown)
			p.txPkt = nil
		}
		p.busy = false
		if flush {
			p.flushQueue()
		}
	}
	if ft, ok := p.tracer.(FaultTracer); ok {
		ft.LinkStateChanged(p.engine.Now(), !down, p.queueLen)
	}
	if !down && p.queue.len() > 0 {
		p.transmitNext()
	}
}

// flushQueue discards every queued packet as a link-down loss.
//
//dtlint:hotpath
func (p *Port) flushQueue() {
	for p.queue.len() > 0 {
		pkt := p.queue.pop()
		p.addQueued(-pkt.Size)
		p.policy.OnDeparture(p.engine.Now(), p.totalQueueLen())
		p.dropFault(pkt, FaultLinkDown)
	}
	p.checkConservation()
	p.notifyMonitor()
}

// drop discards a packet: count, trace, recycle.
//
//dtlint:hotpath
func (p *Port) drop(pkt *Packet, overflow bool) {
	if overflow {
		p.stats.DroppedOverflow++
	} else {
		p.stats.DroppedPolicy++
	}
	if p.tracer != nil {
		p.tracer.PacketDropped(p.engine.Now(), pkt, p.queueLen, overflow)
	}
	p.pool.put(pkt)
}

// dropFault discards a packet lost to a fault (corruption, dead link):
// count, trace — through FaultTracer when the tracer implements it, as a
// policy drop otherwise — and recycle to the network's free list.
//
//dtlint:hotpath
func (p *Port) dropFault(pkt *Packet, kind FaultKind) {
	switch kind {
	case FaultCorrupt:
		p.stats.DroppedCorrupt++
	case FaultLinkDown:
		p.stats.DroppedLinkDown++
	}
	if ft, ok := p.tracer.(FaultTracer); ok {
		ft.PacketFaulted(p.engine.Now(), pkt, p.queueLen, kind)
	} else if p.tracer != nil {
		p.tracer.PacketDropped(p.engine.Now(), pkt, p.queueLen, false)
	}
	p.pool.put(pkt)
}

// Send offers a packet to the port. The AQM policy is consulted with the
// occupancy at arrival; buffer overflow always drops. A dropped packet is
// recycled here — the caller must not touch it after Send returns.
//
//dtlint:hotpath
func (p *Port) Send(pkt *Packet) {
	if p.down {
		p.dropFault(pkt, FaultLinkDown)
		return
	}
	verdict := p.policy.OnArrival(p.engine.Now(), p.totalQueueLen(), pkt.Size)
	if verdict == aqm.Drop {
		p.drop(pkt, false)
		return
	}
	overflow := p.totalQueueLen()+pkt.Size > p.buffer
	if p.shared != nil {
		// Pooled port: tail-drop against the dynamic allowance
		// T = α·(B − ΣQ) instead of the static per-port bound.
		overflow = !p.shared.admit(p.queueLen, pkt.Size)
	}
	if overflow {
		// The policy saw an arrival that never materialized; inform it
		// of the unchanged occupancy so trend estimators stay honest.
		p.policy.OnDeparture(p.engine.Now(), p.totalQueueLen())
		p.drop(pkt, true)
		return
	}
	marked := false
	if verdict == aqm.AcceptMark {
		switch {
		case pkt.ECT:
			pkt.CE = true
			marked = true
			p.stats.Marked++
		case markSubstitutesDrop(p.policy):
			// RFC 3168 §5: a law whose mark replaces a drop must
			// drop non-ECT traffic when it signals congestion.
			p.policy.OnDeparture(p.engine.Now(), p.totalQueueLen())
			p.drop(pkt, false)
			return
		}
	}
	pkt.EnqueuedAt = p.engine.Now()
	p.queue.push(pkt)
	p.addQueued(pkt.Size)
	p.stats.Enqueued++
	p.checkConservation()
	if p.tracer != nil {
		p.tracer.PacketEnqueued(p.engine.Now(), pkt, p.queueLen, marked)
	}
	p.notifyMonitor()
	if !p.busy {
		p.transmitNext()
	}
}

//dtlint:hotpath
func (p *Port) transmitNext() {
	var pkt *Packet
	for {
		if p.down || p.queue.len() == 0 {
			p.busy = false
			return
		}
		p.busy = true
		pkt = p.queue.pop()
		p.addQueued(-pkt.Size)
		p.checkConservation()

		// Dequeue-time queue laws (CoDel) may drop or mark here.
		dq, ok := p.policy.(aqm.DequeuePolicy)
		if !ok {
			break
		}
		sojourn := (p.engine.Now() - pkt.EnqueuedAt).Duration()
		verdict := dq.OnDequeue(p.engine.Now(), sojourn, p.totalQueueLen())
		if verdict == aqm.Drop {
			p.drop(pkt, false)
			p.notifyMonitor()
			continue
		}
		if verdict == aqm.AcceptMark {
			if pkt.ECT {
				if !pkt.CE {
					pkt.CE = true
					p.stats.Marked++
				}
			} else if markSubstitutesDrop(p.policy) {
				p.drop(pkt, false)
				p.notifyMonitor()
				continue
			}
		}
		break
	}
	p.stats.Dequeued++
	p.stats.BytesSent += uint64(pkt.Size)
	p.policy.OnDeparture(p.engine.Now(), p.totalQueueLen())
	if p.tracer != nil {
		p.tracer.PacketDequeued(p.engine.Now(), pkt, p.queueLen)
	}
	p.notifyMonitor()

	p.txPkt = pkt
	p.txRef = p.engine.AfterArg(p.serializationRate(pkt.Size).Serialization(pkt.Size), p.txDoneFn, pkt)
}

// markSubstitutesDrop reports whether the policy's marks stand in for
// drops (RFC 3168 §5 handling of non-ECT packets).
//
//dtlint:hotpath
func markSubstitutesDrop(pol aqm.Policy) bool {
	ls, ok := pol.(aqm.LossSubstituting)
	return ok && ls.MarkSubstitutesDrop()
}

//dtlint:hotpath
func (p *Port) notifyMonitor() {
	if p.monitor != nil {
		p.monitor.QueueChanged(p.engine.Now(), p.totalQueueLen())
	}
}

// checkConservation asserts, under -tags invariants, that the byte counter
// the AQM policies see agrees with the packets actually queued and stays
// inside the physical buffer. The O(len(queue)) walk only exists in
// invariants builds.
func (p *Port) checkConservation() {
	if !invariant.Enabled {
		return
	}
	invariant.Assert(p.queueLen >= 0, "netsim: negative queue occupancy %d on port to %s",
		p.queueLen, p.peer.Name())
	if p.shared == nil {
		invariant.Assert(p.queueLen <= p.buffer, "netsim: occupancy %d exceeds buffer %d on port to %s",
			p.queueLen, p.buffer, p.peer.Name())
	} else {
		p.shared.checkConservation()
	}
	sum := 0
	for i := 0; i < p.queue.len(); i++ {
		sum += p.queue.at(i).Size
	}
	invariant.Assert(sum == p.queueLen, "netsim: byte-count drift: queued packets hold %d bytes, counter says %d",
		sum, p.queueLen)
}
