package netsim

import (
	"time"

	"dtdctcp/internal/aqm"
	"dtdctcp/internal/invariant"
	"dtdctcp/internal/sim"
)

// QueueMonitor observes every occupancy change of one port's queue. The
// experiment runners attach monitors to the bottleneck port to collect the
// queue-length statistics of Figs. 1, 10 and 11.
type QueueMonitor interface {
	// QueueChanged is invoked after each enqueue or dequeue with the new
	// occupancy in bytes.
	QueueChanged(now sim.Time, qlenBytes int)
}

// PortTracer observes per-packet events at one port, for structured
// tracing. All hooks run synchronously on the simulation goroutine; keep
// them cheap, and copy out any packet fields needed later — pooled
// packets are recycled after the hook returns.
type PortTracer interface {
	// PacketEnqueued fires after a packet is accepted into the queue;
	// marked reports whether this port set CE on it.
	PacketEnqueued(now sim.Time, pkt *Packet, qlenBytes int, marked bool)
	// PacketDequeued fires when a packet enters transmission.
	PacketDequeued(now sim.Time, pkt *Packet, qlenBytes int)
	// PacketDropped fires for discarded packets; overflow distinguishes
	// buffer exhaustion from an AQM drop decision.
	PacketDropped(now sim.Time, pkt *Packet, qlenBytes int, overflow bool)
}

// PortStats counts per-port events.
type PortStats struct {
	// Enqueued and Dequeued count packets accepted into and transmitted
	// out of the queue.
	Enqueued, Dequeued uint64
	// Marked counts packets that left with the CE codepoint set by this
	// port.
	Marked uint64
	// DroppedOverflow counts packets dropped for lack of buffer.
	DroppedOverflow uint64
	// DroppedPolicy counts packets dropped by the AQM policy (RED in
	// drop mode).
	DroppedPolicy uint64
	// BytesSent is the total on-wire bytes transmitted.
	BytesSent uint64
}

// Port is one output interface: a finite FIFO byte buffer drained at the
// link rate, with an AQM policy consulted at every arrival, followed by a
// fixed propagation delay to the peer node.
type Port struct {
	engine *sim.Engine
	net    *Network

	// rate and delay describe the attached link.
	rate  Rate
	delay time.Duration
	// buffer is the queue capacity in bytes (the packet in transmission
	// no longer counts against it, matching output-queued switches).
	buffer int
	policy aqm.Policy
	peer   Node

	queue    pktRing
	queueLen int // bytes
	busy     bool
	stats    PortStats
	monitor  QueueMonitor
	tracer   PortTracer

	// txDoneFn and deliverFn are the transmit chain's event callbacks,
	// built once at construction. Scheduling them through ScheduleArg
	// with the packet as the argument keeps the per-packet event path
	// free of closure allocations.
	txDoneFn  func(any)
	deliverFn func(any)
}

// PortConfig bundles the parameters of one directed link attachment.
type PortConfig struct {
	// Rate is the link speed.
	Rate Rate
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// Buffer is the queue capacity in bytes.
	Buffer int
	// Policy is the queue law; nil means DropTail.
	Policy aqm.Policy
}

func newPort(net *Network, cfg PortConfig, peer Node) *Port {
	policy := cfg.Policy
	if policy == nil {
		policy = aqm.NewDropTail()
	}
	p := &Port{
		engine: net.engine,
		net:    net,
		rate:   cfg.Rate,
		delay:  cfg.Delay,
		buffer: cfg.Buffer,
		policy: policy,
		peer:   peer,
		queue:  pktRing{buf: make([]*Packet, ringInitialCap)},
	}
	p.deliverFn = func(arg any) { p.peer.Receive(arg.(*Packet)) }
	p.txDoneFn = func(arg any) {
		// Arrival at the peer after propagation; transmission of the
		// next packet can begin immediately.
		p.engine.AfterArg(p.delay, p.deliverFn, arg)
		p.transmitNext()
	}
	return p
}

// SetMonitor attaches a queue monitor; pass nil to detach.
func (p *Port) SetMonitor(m QueueMonitor) { p.monitor = m }

// SetTracer attaches a per-packet tracer; pass nil to detach.
func (p *Port) SetTracer(t PortTracer) { p.tracer = t }

// Stats returns a copy of the port's counters.
func (p *Port) Stats() PortStats { return p.stats }

// QueueLen returns the instantaneous queue occupancy in bytes.
func (p *Port) QueueLen() int { return p.queueLen }

// QueuePackets returns the number of queued packets.
func (p *Port) QueuePackets() int { return p.queue.len() }

// Policy returns the attached AQM policy.
func (p *Port) Policy() aqm.Policy { return p.policy }

// Rate returns the link speed.
func (p *Port) Rate() Rate { return p.rate }

// Peer returns the node at the far end of the link.
func (p *Port) Peer() Node { return p.peer }

// drop discards a packet: count, trace, recycle.
func (p *Port) drop(pkt *Packet, overflow bool) {
	if overflow {
		p.stats.DroppedOverflow++
	} else {
		p.stats.DroppedPolicy++
	}
	if p.tracer != nil {
		p.tracer.PacketDropped(p.engine.Now(), pkt, p.queueLen, overflow)
	}
	p.net.FreePacket(pkt)
}

// Send offers a packet to the port. The AQM policy is consulted with the
// occupancy at arrival; buffer overflow always drops. A dropped packet is
// recycled here — the caller must not touch it after Send returns.
func (p *Port) Send(pkt *Packet) {
	verdict := p.policy.OnArrival(p.engine.Now(), p.queueLen, pkt.Size)
	if verdict == aqm.Drop {
		p.drop(pkt, false)
		return
	}
	if p.queueLen+pkt.Size > p.buffer {
		// The policy saw an arrival that never materialized; inform it
		// of the unchanged occupancy so trend estimators stay honest.
		p.policy.OnDeparture(p.engine.Now(), p.queueLen)
		p.drop(pkt, true)
		return
	}
	marked := false
	if verdict == aqm.AcceptMark {
		switch {
		case pkt.ECT:
			pkt.CE = true
			marked = true
			p.stats.Marked++
		case markSubstitutesDrop(p.policy):
			// RFC 3168 §5: a law whose mark replaces a drop must
			// drop non-ECT traffic when it signals congestion.
			p.policy.OnDeparture(p.engine.Now(), p.queueLen)
			p.drop(pkt, false)
			return
		}
	}
	pkt.EnqueuedAt = p.engine.Now()
	p.queue.push(pkt)
	p.queueLen += pkt.Size
	p.stats.Enqueued++
	p.checkConservation()
	if p.tracer != nil {
		p.tracer.PacketEnqueued(p.engine.Now(), pkt, p.queueLen, marked)
	}
	p.notifyMonitor()
	if !p.busy {
		p.transmitNext()
	}
}

func (p *Port) transmitNext() {
	var pkt *Packet
	for {
		if p.queue.len() == 0 {
			p.busy = false
			return
		}
		p.busy = true
		pkt = p.queue.pop()
		p.queueLen -= pkt.Size
		p.checkConservation()

		// Dequeue-time queue laws (CoDel) may drop or mark here.
		dq, ok := p.policy.(aqm.DequeuePolicy)
		if !ok {
			break
		}
		sojourn := (p.engine.Now() - pkt.EnqueuedAt).Duration()
		verdict := dq.OnDequeue(p.engine.Now(), sojourn, p.queueLen)
		if verdict == aqm.Drop {
			p.drop(pkt, false)
			p.notifyMonitor()
			continue
		}
		if verdict == aqm.AcceptMark {
			if pkt.ECT {
				if !pkt.CE {
					pkt.CE = true
					p.stats.Marked++
				}
			} else if markSubstitutesDrop(p.policy) {
				p.drop(pkt, false)
				p.notifyMonitor()
				continue
			}
		}
		break
	}
	p.stats.Dequeued++
	p.stats.BytesSent += uint64(pkt.Size)
	p.policy.OnDeparture(p.engine.Now(), p.queueLen)
	if p.tracer != nil {
		p.tracer.PacketDequeued(p.engine.Now(), pkt, p.queueLen)
	}
	p.notifyMonitor()

	p.engine.AfterArg(p.rate.Serialization(pkt.Size), p.txDoneFn, pkt)
}

// markSubstitutesDrop reports whether the policy's marks stand in for
// drops (RFC 3168 §5 handling of non-ECT packets).
func markSubstitutesDrop(pol aqm.Policy) bool {
	ls, ok := pol.(aqm.LossSubstituting)
	return ok && ls.MarkSubstitutesDrop()
}

func (p *Port) notifyMonitor() {
	if p.monitor != nil {
		p.monitor.QueueChanged(p.engine.Now(), p.queueLen)
	}
}

// checkConservation asserts, under -tags invariants, that the byte counter
// the AQM policies see agrees with the packets actually queued and stays
// inside the physical buffer. The O(len(queue)) walk only exists in
// invariants builds.
func (p *Port) checkConservation() {
	if !invariant.Enabled {
		return
	}
	invariant.Assert(p.queueLen >= 0, "netsim: negative queue occupancy %d on port to %s",
		p.queueLen, p.peer.Name())
	invariant.Assert(p.queueLen <= p.buffer, "netsim: occupancy %d exceeds buffer %d on port to %s",
		p.queueLen, p.buffer, p.peer.Name())
	sum := 0
	for i := 0; i < p.queue.len(); i++ {
		sum += p.queue.at(i).Size
	}
	invariant.Assert(sum == p.queueLen, "netsim: byte-count drift: queued packets hold %d bytes, counter says %d",
		sum, p.queueLen)
}
