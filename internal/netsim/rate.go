package netsim

import (
	"fmt"
	"time"
)

// Rate is a link speed in bits per second.
type Rate int64

// Common link speeds.
const (
	Kbps Rate = 1e3
	Mbps Rate = 1e6
	Gbps Rate = 1e9
)

// Serialization returns the exact time to clock size bytes onto a link of
// this rate. The computation stays in integers: ns = bytes·8·1e9 / rate.
func (r Rate) Serialization(sizeBytes int) time.Duration {
	if r <= 0 {
		return 0
	}
	bits := int64(sizeBytes) * 8
	return time.Duration(bits * int64(time.Second) / int64(r))
}

// BytesPerSecond converts the rate to a byte throughput.
func (r Rate) BytesPerSecond() float64 { return float64(r) / 8 }

// String renders the rate in the largest natural unit.
func (r Rate) String() string {
	switch {
	case r >= Gbps && r%Gbps == 0:
		return fmt.Sprintf("%dGbps", r/Gbps)
	case r >= Mbps && r%Mbps == 0:
		return fmt.Sprintf("%dMbps", r/Mbps)
	case r >= Kbps && r%Kbps == 0:
		return fmt.Sprintf("%dKbps", r/Kbps)
	default:
		return fmt.Sprintf("%dbps", int64(r))
	}
}
