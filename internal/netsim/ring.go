package netsim

// pktRing is a FIFO of packets over a power-of-two circular buffer. The
// previous slice-based queue shifted every remaining element on dequeue
// (O(n) copy per packet, quadratic under deep queues — exactly the
// regime the paper's oscillation experiments spend their time in); the
// ring dequeues in O(1) and only allocates when the occupancy exceeds
// every level seen before.
type pktRing struct {
	buf  []*Packet // len(buf) is always a power of two
	head int       // index of the oldest element
	n    int       // occupancy
}

const ringInitialCap = 64

//dtlint:hotpath
func (r *pktRing) len() int { return r.n }

//dtlint:hotpath
func (r *pktRing) push(p *Packet) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = p
	r.n++
}

//dtlint:hotpath
func (r *pktRing) pop() *Packet {
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return p
}

// popTail removes and returns the most recently pushed element. It is the
// other end of the FIFO, used when a buffer resize must discard the
// newest arrivals first.
//
//dtlint:hotpath
func (r *pktRing) popTail() *Packet {
	r.n--
	i := (r.head + r.n) & (len(r.buf) - 1)
	p := r.buf[i]
	r.buf[i] = nil
	return p
}

// at returns the i-th element in FIFO order without removing it.
//
//dtlint:hotpath
func (r *pktRing) at(i int) *Packet {
	return r.buf[(r.head+i)&(len(r.buf)-1)]
}

func (r *pktRing) grow() {
	capNew := 2 * len(r.buf)
	if capNew < ringInitialCap {
		capNew = ringInitialCap
	}
	buf := make([]*Packet, capNew)
	for i := 0; i < r.n; i++ {
		buf[i] = r.at(i)
	}
	r.buf = buf
	r.head = 0
}
