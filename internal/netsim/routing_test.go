package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"dtdctcp/internal/sim"
)

// Property: on any random tree of switches with hosts hanging off random
// switches, every host can reach every other host, and no switch ever
// reports a missing route.
func TestPropertyRoutingOnRandomTrees(t *testing.T) {
	f := func(seed int64, swRaw, hostRaw uint8) bool {
		nSwitches := int(swRaw%6) + 1
		nHosts := int(hostRaw%6) + 2
		rng := rand.New(rand.NewSource(seed))

		e := sim.NewEngine(1)
		n := NewNetwork(e)
		cfg := PortConfig{Rate: Gbps, Delay: time.Microsecond, Buffer: 1 << 20}

		switches := make([]*Switch, nSwitches)
		for i := range switches {
			switches[i] = n.AddSwitch("sw")
			if i > 0 {
				// Attach to a random earlier switch: uniform random tree.
				parent := switches[rng.Intn(i)]
				if err := n.Connect(switches[i], parent, cfg, cfg); err != nil {
					return false
				}
			}
		}
		hosts := make([]*Host, nHosts)
		for i := range hosts {
			hosts[i] = n.AddHost("h")
			if err := n.Connect(hosts[i], switches[rng.Intn(nSwitches)], cfg, cfg); err != nil {
				return false
			}
		}
		if err := n.ComputeRoutes(); err != nil {
			return false
		}

		// All-pairs delivery.
		delivered := 0
		want := 0
		flow := FlowID(0)
		for _, src := range hosts {
			for _, dst := range hosts {
				if src == dst {
					continue
				}
				flow++
				want++
				rx := &sink{}
				dst.Register(flow, rx)
				src.Send(&Packet{Flow: flow, Dst: dst.ID(), Size: 100})
				if err := e.Run(); err != nil {
					return false
				}
				delivered += len(rx.pkts)
				dst.Unregister(flow)
			}
		}
		for _, sw := range n.Switches() {
			if sw.DroppedNoRoute() != 0 {
				return false
			}
		}
		return delivered == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: in a tree, a packet between two hosts traverses each switch at
// most once (shortest-path routing cannot loop).
func TestRoutingTakesShortestPathInLine(t *testing.T) {
	// Line topology: h0 - s0 - s1 - s2 - h1; the only path has 4 links.
	e := sim.NewEngine(1)
	n := NewNetwork(e)
	cfg := PortConfig{Rate: Gbps, Delay: 10 * time.Microsecond, Buffer: 1 << 20}
	s0 := n.AddSwitch("s0")
	s1 := n.AddSwitch("s1")
	s2 := n.AddSwitch("s2")
	h0 := n.AddHost("h0")
	h1 := n.AddHost("h1")
	for _, pair := range [][2]Node{{h0, s0}, {s0, s1}, {s1, s2}, {s2, h1}} {
		if err := n.Connect(pair[0], pair[1], cfg, cfg); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	rx := &sink{eng: e}
	h1.Register(1, rx)
	h0.Send(&Packet{Flow: 1, Dst: h1.ID(), Size: 1000})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rx.pkts) != 1 {
		t.Fatal("not delivered")
	}
	// 4 links × (10 µs propagation + 8 µs serialization of 1000 B at 1 Gbps).
	want := sim.FromDuration(4 * (10*time.Microsecond + 8*time.Microsecond))
	if rx.at[0] != want {
		t.Fatalf("arrival %v, want %v (exactly one traversal per link)", rx.at[0], want)
	}
}
