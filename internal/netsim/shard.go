package netsim

import (
	"fmt"
	"time"

	"dtdctcp/internal/sim"
)

// This file cuts a Network into shard domains for parallel single-run
// execution on a sim.ShardedEngine.
//
// The domain decomposition is fixed and independent of the shard count:
// every host (together with its uplink port) is one domain, and every
// switch port is one domain of its own. Domains are numbered
// deterministically — hosts in creation order, then switch ports in
// switch-creation × port-attachment order — and an assignment maps each
// domain to a shard. Because the numbering never changes, the barrier
// sort key (At, SchedAt, SrcKey=domain, SrcSeq) orders cross-domain
// deliveries identically for every assignment, which is what makes
// results byte-identical across shard counts and assignment
// permutations.
//
// Every delivery that leaves a domain goes through the barrier mailbox,
// even when source and destination domains happen to share a shard;
// taking the shortcut only when co-located would make event sequence
// numbers depend on the grouping. The switch hop is resolved at the
// source: the shipping port looks up the egress port in the peer
// switch's static routing table (read-only after ComputeRoutes, so
// concurrent readers are safe) and targets the egress domain directly
// with the egress port's Send. A serial run performs the identical
// lookup inside Switch.Receive at the same virtual instant.

// NumDomains returns the number of shard domains the topology cuts
// into: one per host plus one per switch port.
func (n *Network) NumDomains() int {
	d := len(n.hosts)
	for _, s := range n.switches {
		d += len(s.ports)
	}
	return d
}

// HostDomain returns the domain index of a host (also the domain of its
// uplink port).
func (n *Network) HostDomain(h *Host) int {
	for i, cand := range n.hosts {
		if cand == h {
			return i
		}
	}
	panic("netsim: host not in this network")
}

// PortDomain returns the domain index of a switch port. Host uplinks
// share their host's domain; pass those to HostDomain instead.
func (n *Network) PortDomain(p *Port) int {
	d := len(n.hosts)
	for _, s := range n.switches {
		for _, cand := range s.ports {
			if cand == p {
				return d
			}
			d++
		}
	}
	panic("netsim: port is not a switch port of this network")
}

// DefaultAssign builds a deterministic domain→shard assignment: the
// listed pinned domains go to shard 0 (the shard whose RNG stream equals
// the serial engine's — pin every domain that draws from the root source
// at runtime, such as a port with a randomized AQM policy), and the
// remaining domains round-robin across all shards.
func (n *Network) DefaultAssign(shards int, pinned ...int) []int {
	assign := make([]int, n.NumDomains())
	pin := make([]bool, len(assign))
	for _, d := range pinned {
		pin[d] = true
		assign[d] = 0
	}
	next := 0
	for d := range assign {
		if pin[d] {
			continue
		}
		assign[d] = next % shards
		next++
	}
	return assign
}

// MinLinkDelay returns the smallest propagation delay over all ports —
// the conservative lookahead bound for sharded execution. Events inside
// an epoch window of this length cannot affect another domain within the
// same window, because every cross-domain path crosses at least one
// link.
func (n *Network) MinLinkDelay() time.Duration {
	min := time.Duration(-1)
	for _, h := range n.hosts {
		if h.uplink != nil && (min < 0 || h.uplink.delay < min) {
			min = h.uplink.delay
		}
	}
	for _, s := range n.switches {
		for _, p := range s.ports {
			if min < 0 || p.delay < min {
				min = p.delay
			}
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// Partition binds every domain of the topology to its assigned shard of
// the coordinator: engines, packet pools, outboxes, and stable source
// keys. Call it after ComputeRoutes (the source-side egress resolution
// reads the routing tables) and before constructing endpoints (they bind
// to Host.Engine at construction). The coordinator's lookahead is set to
// the network's minimum link delay, and a barrier hook is registered to
// level the per-shard packet free lists between epochs.
func (n *Network) Partition(se *sim.ShardedEngine, assign []int) error {
	if n.se != nil {
		return fmt.Errorf("netsim: network already partitioned")
	}
	if got, want := len(assign), n.NumDomains(); got != want {
		return fmt.Errorf("netsim: assignment covers %d domains, topology has %d", got, want)
	}
	for d, s := range assign {
		if s < 0 || s >= se.NumShards() {
			return fmt.Errorf("netsim: domain %d assigned to shard %d, engine has %d", d, s, se.NumShards())
		}
	}
	la := n.MinLinkDelay()
	if la <= 0 {
		return fmt.Errorf("netsim: sharded execution requires positive link delays (lookahead)")
	}
	// Shared-buffer pools are a single mutable counter touched on every
	// member enqueue/dequeue; the accounting is only race-free when all
	// members execute on one shard. Validate against the assignment
	// before mutating anything — switch-port domains follow the host
	// domains in declaration order.
	poolShard := make(map[*SharedBuffer]int)
	for i, h := range n.hosts {
		if h.uplink != nil && h.uplink.shared != nil {
			if want, seen := poolShard[h.uplink.shared]; seen && assign[i] != want {
				return fmt.Errorf("netsim: shared-buffer pool split across shards %d and %d; assign all member ports to one shard (pin their domains)",
					want, assign[i])
			} else if !seen {
				poolShard[h.uplink.shared] = assign[i]
			}
		}
	}
	pd := len(n.hosts)
	for _, s := range n.switches {
		for _, p := range s.ports {
			if p.shared != nil {
				if want, seen := poolShard[p.shared]; seen {
					if assign[pd] != want {
						return fmt.Errorf("netsim: shared-buffer pool split across shards %d and %d; assign all member ports to one shard (pin their domains)",
							want, assign[pd])
					}
				} else {
					poolShard[p.shared] = assign[pd]
				}
			}
			pd++
		}
	}
	n.se = se
	n.shardPools = make([]packetPool, se.NumShards())

	d := 0
	for _, h := range n.hosts {
		shard := assign[d]
		h.shard = shard
		h.engine = se.Shard(shard)
		h.pool = &n.shardPools[shard]
		if h.uplink != nil {
			h.uplink.bindShard(se, shard, d, h.pool)
		}
		d++
	}
	for _, s := range n.switches {
		for _, p := range s.ports {
			shard := assign[d]
			p.bindShard(se, shard, d, &n.shardPools[shard])
			d++
		}
	}
	for _, s := range n.switches {
		if len(s.ports) == 0 {
			continue
		}
		first := s.ports[0]
		s.noRouteShard = first.shard
		sw, pool := s, first.pool
		s.noRouteFn = func(arg any) {
			sw.droppedNoRoute++
			pool.put(arg.(*Packet))
		}
	}
	se.SetLookahead(sim.FromDuration(la))
	se.AddBarrierHook(n.rebalancePools)
	return nil
}

// Sharded reports whether the network has been partitioned.
func (n *Network) Sharded() bool { return n.se != nil }

// rebalanceSlack is the per-pool surplus tolerated before the barrier
// hook levels free lists. Data flows drain packets from sender shards
// into receiver shards; without rebalancing the receiving pool grows
// while the senders allocate fresh packets forever.
const rebalanceSlack = 32

// rebalancePools levels the shard packet pools toward the mean free-list
// size. It runs in coordinator context at epoch barriers, when no shard
// goroutine is active, so plain slice surgery is safe.
func (n *Network) rebalancePools() {
	total := 0
	for i := range n.shardPools {
		total += len(n.shardPools[i].free)
	}
	mean := total / len(n.shardPools)
	for i := range n.shardPools {
		free := n.shardPools[i].free
		for len(free) > mean+rebalanceSlack {
			k := len(free) - 1
			n.spares = append(n.spares, free[k])
			free[k] = nil
			free = free[:k]
		}
		n.shardPools[i].free = free
	}
	for i := range n.shardPools {
		if len(n.spares) == 0 {
			break
		}
		free := n.shardPools[i].free
		for len(n.spares) > 0 && len(free) < mean {
			k := len(n.spares) - 1
			free = append(free, n.spares[k])
			n.spares[k] = nil
			n.spares = n.spares[:k]
		}
		n.shardPools[i].free = free
	}
}
