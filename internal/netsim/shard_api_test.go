package netsim_test

// Exported-API partitioning tests, built on the shared topo.NewStar
// helper: one sender host and one receiver around a switch gives the
// same four shard domains (receiver 0, sender 1, switch ports 2 and 3)
// the in-package buildStar tests use for the unexported internals.

import (
	"testing"
	"time"

	"dtdctcp/internal/netsim"
	"dtdctcp/internal/sim"
	"dtdctcp/internal/topo"
)

func apiStar(t *testing.T, engine *sim.Engine, accessDelay, bneckDelay time.Duration) *topo.Star {
	t.Helper()
	st, err := topo.NewStar(netsim.NewNetwork(engine), topo.StarConfig{
		Senders:    1,
		Access:     netsim.PortConfig{Rate: netsim.Gbps, Delay: accessDelay, Buffer: 64 * 1500},
		Bottleneck: netsim.PortConfig{Rate: netsim.Gbps, Delay: bneckDelay, Buffer: 64 * 1500},
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestDefaultAssign(t *testing.T) {
	st := apiStar(t, sim.NewEngine(1), 25*time.Microsecond, 25*time.Microsecond)
	n := st.Net
	assign := n.DefaultAssign(2, 3)
	if len(assign) != n.NumDomains() {
		t.Fatalf("assignment covers %d domains, want %d", len(assign), n.NumDomains())
	}
	if assign[3] != 0 {
		t.Fatalf("pinned domain 3 on shard %d, want 0", assign[3])
	}
	// The remaining domains round-robin: 0→0, 1→1, 2→0.
	want := []int{0, 1, 0, 0}
	for d, s := range assign {
		if s != want[d] {
			t.Fatalf("assign = %v, want %v", assign, want)
		}
	}
}

func TestMinLinkDelay(t *testing.T) {
	st := apiStar(t, sim.NewEngine(1), 25*time.Microsecond, 10*time.Microsecond)
	if got := st.Net.MinLinkDelay(); got != 10*time.Microsecond {
		t.Fatalf("MinLinkDelay = %v, want 10µs", got)
	}
}

func TestPartitionValidates(t *testing.T) {
	se := sim.NewShardedEngine(1, 2)
	st := apiStar(t, se.Shard(0), 25*time.Microsecond, 25*time.Microsecond)
	n := st.Net
	if err := n.Partition(se, []int{0}); err == nil {
		t.Fatal("short assignment accepted")
	}
	if err := n.Partition(se, []int{0, 1, 2, 0}); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	good := n.DefaultAssign(2)
	if err := n.Partition(se, good); err != nil {
		t.Fatal(err)
	}
	if !n.Sharded() {
		t.Fatal("network does not report sharded after Partition")
	}
	if err := n.Partition(se, good); err == nil {
		t.Fatal("double partition accepted")
	}
	if got, want := se.Lookahead(), sim.FromDuration(25*time.Microsecond); got != want {
		t.Fatalf("lookahead %v, want %v", got, want)
	}
}

func TestPartitionRejectsZeroDelay(t *testing.T) {
	se := sim.NewShardedEngine(1, 2)
	st := apiStar(t, se.Shard(0), 25*time.Microsecond, 0)
	if err := st.Net.Partition(se, st.Net.DefaultAssign(2)); err == nil {
		t.Fatal("zero link delay accepted (no positive lookahead exists)")
	}
}
