package netsim

import (
	"testing"
	"time"

	"dtdctcp/internal/sim"
)

// buildStar builds hostA—sw—hostB with the given per-link delays and
// returns the network. Routes are computed. Only the tests that poke
// unexported fields live here; exported-API partition tests use the
// shared topo.NewStar helper in shard_api_test.go.
func buildStar(t *testing.T, engine *sim.Engine, dA, dB time.Duration) (*Network, *Host, *Host, *Switch) {
	t.Helper()
	n := NewNetwork(engine)
	a := n.AddHost("a")
	b := n.AddHost("b")
	sw := n.AddSwitch("sw")
	if err := n.Connect(a, sw, linkCfg(Gbps, dA, 64, nil), linkCfg(Gbps, dA, 64, nil)); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect(b, sw, linkCfg(Gbps, dB, 64, nil), linkCfg(Gbps, dB, 64, nil)); err != nil {
		t.Fatal(err)
	}
	if err := n.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	return n, a, b, sw
}

func TestDomainNumbering(t *testing.T) {
	n, a, b, sw := buildStar(t, sim.NewEngine(1), 25*time.Microsecond, 25*time.Microsecond)
	if got := n.NumDomains(); got != 4 {
		t.Fatalf("NumDomains = %d, want 4 (2 hosts + 2 switch ports)", got)
	}
	if n.HostDomain(a) != 0 || n.HostDomain(b) != 1 {
		t.Fatalf("host domains %d,%d, want 0,1 (creation order)", n.HostDomain(a), n.HostDomain(b))
	}
	for i := 0; i < sw.Ports(); i++ {
		if got := n.PortDomain(sw.Port(i)); got != 2+i {
			t.Fatalf("switch port %d domain = %d, want %d", i, got, 2+i)
		}
	}
	// ComputeRoutes stamps the same numbering onto the ports themselves,
	// so serial runs ship under the keys a partitioned run would use.
	if a.uplink.srcKey != 0 || b.uplink.srcKey != 1 {
		t.Fatalf("uplink srcKeys %d,%d, want host domains 0,1", a.uplink.srcKey, b.uplink.srcKey)
	}
	for i := 0; i < sw.Ports(); i++ {
		if got := sw.Port(i).srcKey; got != 2+i {
			t.Fatalf("switch port %d srcKey = %d, want %d", i, got, 2+i)
		}
	}
}

// TestPartitionBindsDomains checks the concrete bindings Partition
// installs: per-shard engines for hosts and ports, and per-shard pools.
func TestPartitionBindsDomains(t *testing.T) {
	se := sim.NewShardedEngine(1, 2)
	n, a, b, sw := buildStar(t, se.Shard(0), 25*time.Microsecond, 25*time.Microsecond)
	assign := n.DefaultAssign(2)
	if err := n.Partition(se, assign); err != nil {
		t.Fatal(err)
	}
	if got := a.Engine(); got != se.Shard(assign[0]) {
		t.Fatalf("host a bound to wrong engine")
	}
	if got := b.Engine(); got != se.Shard(assign[1]) {
		t.Fatalf("host b bound to wrong engine")
	}
	for i := 0; i < sw.Ports(); i++ {
		p := sw.Port(i)
		if p.outbox == nil {
			t.Fatalf("switch port %d has no outbox after Partition", i)
		}
		if p.srcKey != 2+i {
			t.Fatalf("switch port %d srcKey = %d after Partition, want %d", i, p.srcKey, 2+i)
		}
	}
	if a.uplink.pool != a.pool {
		t.Fatal("host uplink pool differs from host pool")
	}
}
