package netsim

import (
	"testing"
	"time"

	"dtdctcp/internal/sim"
)

// buildStar builds hostA—sw—hostB with the given per-link delays and
// returns the network. Routes are computed.
func buildStar(t *testing.T, engine *sim.Engine, dA, dB time.Duration) (*Network, *Host, *Host, *Switch) {
	t.Helper()
	n := NewNetwork(engine)
	a := n.AddHost("a")
	b := n.AddHost("b")
	sw := n.AddSwitch("sw")
	if err := n.Connect(a, sw, linkCfg(Gbps, dA, 64, nil), linkCfg(Gbps, dA, 64, nil)); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect(b, sw, linkCfg(Gbps, dB, 64, nil), linkCfg(Gbps, dB, 64, nil)); err != nil {
		t.Fatal(err)
	}
	if err := n.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	return n, a, b, sw
}

func TestDomainNumbering(t *testing.T) {
	n, a, b, sw := buildStar(t, sim.NewEngine(1), 25*time.Microsecond, 25*time.Microsecond)
	if got := n.NumDomains(); got != 4 {
		t.Fatalf("NumDomains = %d, want 4 (2 hosts + 2 switch ports)", got)
	}
	if n.HostDomain(a) != 0 || n.HostDomain(b) != 1 {
		t.Fatalf("host domains %d,%d, want 0,1 (creation order)", n.HostDomain(a), n.HostDomain(b))
	}
	for i := 0; i < sw.Ports(); i++ {
		if got := n.PortDomain(sw.Port(i)); got != 2+i {
			t.Fatalf("switch port %d domain = %d, want %d", i, got, 2+i)
		}
	}
	// ComputeRoutes stamps the same numbering onto the ports themselves,
	// so serial runs ship under the keys a partitioned run would use.
	if a.uplink.srcKey != 0 || b.uplink.srcKey != 1 {
		t.Fatalf("uplink srcKeys %d,%d, want host domains 0,1", a.uplink.srcKey, b.uplink.srcKey)
	}
	for i := 0; i < sw.Ports(); i++ {
		if got := sw.Port(i).srcKey; got != 2+i {
			t.Fatalf("switch port %d srcKey = %d, want %d", i, got, 2+i)
		}
	}
}

func TestDefaultAssign(t *testing.T) {
	n, _, _, _ := buildStar(t, sim.NewEngine(1), 25*time.Microsecond, 25*time.Microsecond)
	assign := n.DefaultAssign(2, 3)
	if len(assign) != n.NumDomains() {
		t.Fatalf("assignment covers %d domains, want %d", len(assign), n.NumDomains())
	}
	if assign[3] != 0 {
		t.Fatalf("pinned domain 3 on shard %d, want 0", assign[3])
	}
	// The remaining domains round-robin: 0→0, 1→1, 2→0.
	want := []int{0, 1, 0, 0}
	for d, s := range assign {
		if s != want[d] {
			t.Fatalf("assign = %v, want %v", assign, want)
		}
	}
}

func TestMinLinkDelay(t *testing.T) {
	n, _, _, _ := buildStar(t, sim.NewEngine(1), 25*time.Microsecond, 10*time.Microsecond)
	if got := n.MinLinkDelay(); got != 10*time.Microsecond {
		t.Fatalf("MinLinkDelay = %v, want 10µs", got)
	}
}

func TestPartitionValidates(t *testing.T) {
	se := sim.NewShardedEngine(1, 2)
	n, _, _, _ := buildStar(t, se.Shard(0), 25*time.Microsecond, 25*time.Microsecond)
	if err := n.Partition(se, []int{0}); err == nil {
		t.Fatal("short assignment accepted")
	}
	if err := n.Partition(se, []int{0, 1, 2, 0}); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	good := n.DefaultAssign(2)
	if err := n.Partition(se, good); err != nil {
		t.Fatal(err)
	}
	if !n.Sharded() {
		t.Fatal("network does not report sharded after Partition")
	}
	if err := n.Partition(se, good); err == nil {
		t.Fatal("double partition accepted")
	}
	if got, want := se.Lookahead(), sim.FromDuration(25*time.Microsecond); got != want {
		t.Fatalf("lookahead %v, want %v", got, want)
	}
}

func TestPartitionRejectsZeroDelay(t *testing.T) {
	se := sim.NewShardedEngine(1, 2)
	n, _, _, _ := buildStar(t, se.Shard(0), 0, 25*time.Microsecond)
	if err := n.Partition(se, n.DefaultAssign(2)); err == nil {
		t.Fatal("zero link delay accepted (no positive lookahead exists)")
	}
}

// TestPartitionBindsDomains checks the concrete bindings Partition
// installs: per-shard engines for hosts and ports, and per-shard pools.
func TestPartitionBindsDomains(t *testing.T) {
	se := sim.NewShardedEngine(1, 2)
	n, a, b, sw := buildStar(t, se.Shard(0), 25*time.Microsecond, 25*time.Microsecond)
	assign := n.DefaultAssign(2)
	if err := n.Partition(se, assign); err != nil {
		t.Fatal(err)
	}
	if got := a.Engine(); got != se.Shard(assign[0]) {
		t.Fatalf("host a bound to wrong engine")
	}
	if got := b.Engine(); got != se.Shard(assign[1]) {
		t.Fatalf("host b bound to wrong engine")
	}
	for i := 0; i < sw.Ports(); i++ {
		p := sw.Port(i)
		if p.outbox == nil {
			t.Fatalf("switch port %d has no outbox after Partition", i)
		}
		if p.srcKey != 2+i {
			t.Fatalf("switch port %d srcKey = %d after Partition, want %d", i, p.srcKey, 2+i)
		}
	}
	if a.uplink.pool != a.pool {
		t.Fatal("host uplink pool differs from host pool")
	}
}
