package netsim

import (
	"testing"
	"time"

	"dtdctcp/internal/sim"
)

// shardDiamond builds the ecmp_test diamond on a caller-owned engine so
// the same topology can run serial and partitioned.
func shardDiamond(t *testing.T, e *sim.Engine, salt uint64) (*Network, *Host, *Host) {
	t.Helper()
	n := NewNetwork(e)
	h0 := n.AddHost("h0")
	h1 := n.AddHost("h1")
	s0 := n.AddSwitch("s0")
	sA := n.AddSwitch("sA")
	sB := n.AddSwitch("sB")
	s3 := n.AddSwitch("s3")
	cfg := linkCfg(Gbps, 10*time.Microsecond, 1<<14, nil)
	for _, pair := range [][2]Node{{h0, s0}, {s0, sA}, {s0, sB}, {sA, s3}, {sB, s3}, {s3, h1}} {
		if err := n.Connect(pair[0], pair[1], cfg, cfg); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.ComputeRoutesECMP(salt); err != nil {
		t.Fatal(err)
	}
	return n, h0, h1
}

// driveDiamond pushes count packets per flow (flows 1..flows) from h0 to
// h1, spaced 5µs apart, allocating through the host pool, and returns
// the delivery counter.
func driveDiamond(h0, h1 *Host, flows, count int) *countingSink {
	sink := &countingSink{}
	for f := 1; f <= flows; f++ {
		h1.Register(FlowID(f), sink)
	}
	e := h0.Engine()
	sent := 0
	var step func()
	step = func() {
		for f := 1; f <= flows; f++ {
			pkt := h0.AllocPacket()
			pkt.Flow = FlowID(f)
			pkt.Dst = h1.ID()
			pkt.Size = 1500
			h0.Send(pkt)
		}
		sent++
		if sent < count {
			e.After(5*time.Microsecond, step)
		}
	}
	step()
	return sink
}

// TestShardedForwardingMatchesSerial runs cross-shard data through the
// ECMP diamond: the partitioned run must deliver exactly the serial
// run's packet count, exercising the sharded ship/resolveDst path, the
// host-pool allocation, and the barrier pool rebalancing (the receiver
// shard accumulates every packet, so the free lists must level).
func TestShardedForwardingMatchesSerial(t *testing.T) {
	const salt, flows, rounds = 7, 8, 80

	e := sim.NewEngine(3)
	_, h0, h1 := shardDiamond(t, e, salt)
	serial := driveDiamond(h0, h1, flows, rounds)
	if err := e.RunFor(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if serial.n != flows*rounds {
		t.Fatalf("serial delivered %d, want %d", serial.n, flows*rounds)
	}

	se := sim.NewShardedEngine(3, 2)
	n, sh0, sh1 := shardDiamond(t, se.Shard(0), salt)
	if err := n.Partition(se, n.DefaultAssign(2)); err != nil {
		t.Fatal(err)
	}
	if !n.Sharded() {
		t.Fatal("network not sharded")
	}
	sharded := driveDiamond(sh0, sh1, flows, rounds)
	if err := se.RunFor(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if sharded.n != serial.n {
		t.Fatalf("sharded delivered %d, serial %d", sharded.n, serial.n)
	}
}

// queueLog records queue-change notifications for MultiMonitor fan-out.
type queueLog struct{ n int }

func (q *queueLog) QueueChanged(sim.Time, int) { q.n++ }

func TestMultiMonitorFansOut(t *testing.T) {
	e := sim.NewEngine(1)
	_, h0, h1 := shardDiamond(t, e, 7)
	a, b := &queueLog{}, &queueLog{}
	h0.Uplink().SetMonitor(MultiMonitor{a, b})
	sink := driveDiamond(h0, h1, 1, 10)
	if err := e.RunFor(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if sink.n != 10 {
		t.Fatalf("delivered %d, want 10", sink.n)
	}
	if a.n == 0 || a.n != b.n {
		t.Fatalf("monitors saw %d and %d changes, want equal and nonzero", a.n, b.n)
	}
}

func TestFaultKindString(t *testing.T) {
	for kind, want := range map[FaultKind]string{
		FaultCorrupt:  "corrupt",
		FaultLinkDown: "link-down",
	} {
		if got := kind.String(); got != want {
			t.Errorf("FaultKind(%d).String() = %q, want %q", kind, got, want)
		}
	}
}
