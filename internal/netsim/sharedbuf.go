package netsim

import (
	"fmt"

	"dtdctcp/internal/invariant"
)

// SharedBuffer is one switch-wide buffer pool shared by several output
// ports under dynamic-threshold allocation (Choudhury–Hahne): an arriving
// packet of size s is admitted at port i only while the pool has room
// (ΣQ + s ≤ B) and the port stays inside its dynamic allowance
//
//	Q_i + s ≤ T_i = α·(B − ΣQ).
//
// Small α behaves like a conservative static carve-up; large α approaches
// complete sharing, with the congested-ports fixed point T = αB/(1+αN)
// converging to an equal B/N split as α → ∞. With a single member port
// and α large enough that the allowance never binds, admission reduces
// exactly to the per-port tail-drop rule at buffer B — the uncontended
// limit the conformance grid pins verdict-for-verdict.
//
// All member ports must execute on one shard (Network.Partition enforces
// this), so the pool counter needs no synchronization.
type SharedBuffer struct {
	total int     // B: pool capacity in bytes
	alpha float64 // dynamic-threshold α
	used  int     // ΣQ_i over member ports, in bytes
	ports []*Port
}

// NewSharedBuffer creates an empty pool of totalBytes with dynamic
// threshold α. Both must be positive.
func NewSharedBuffer(totalBytes int, alpha float64) (*SharedBuffer, error) {
	if totalBytes <= 0 {
		return nil, fmt.Errorf("netsim: shared buffer needs positive capacity, got %d", totalBytes)
	}
	if alpha <= 0 {
		return nil, fmt.Errorf("netsim: shared buffer needs positive alpha, got %g", alpha)
	}
	return &SharedBuffer{total: totalBytes, alpha: alpha}, nil
}

// Attach makes ports members of the pool. A port may belong to at most
// one pool, and must join before it has queued anything; attaching
// replaces the port's static buffer bound with the pool's dynamic
// allowance.
func (sb *SharedBuffer) Attach(ports ...*Port) error {
	for _, p := range ports {
		if p.shared != nil {
			return fmt.Errorf("netsim: port to %s already belongs to a shared buffer", p.peer.Name())
		}
		if p.queueLen != 0 {
			return fmt.Errorf("netsim: port to %s has %d bytes queued; attach before traffic starts",
				p.peer.Name(), p.queueLen)
		}
		p.shared = sb
		sb.ports = append(sb.ports, p)
	}
	return nil
}

// Total returns the pool capacity B in bytes.
func (sb *SharedBuffer) Total() int { return sb.total }

// Alpha returns the dynamic-threshold parameter α.
func (sb *SharedBuffer) Alpha() float64 { return sb.alpha }

// Used returns the pool occupancy ΣQ_i in bytes.
func (sb *SharedBuffer) Used() int { return sb.used }

// Ports returns the member ports (shared slice; do not mutate).
func (sb *SharedBuffer) Ports() []*Port { return sb.ports }

// Threshold returns the instantaneous dynamic allowance
// T = α·(B − ΣQ) in bytes.
func (sb *SharedBuffer) Threshold() float64 {
	return sb.alpha * float64(sb.total-sb.used)
}

// admit decides whether a packet of size bytes may enter a member port
// currently holding qlen bytes.
//
//dtlint:hotpath
func (sb *SharedBuffer) admit(qlen, size int) bool {
	free := sb.total - sb.used
	if size > free {
		return false
	}
	return float64(qlen+size) <= sb.alpha*float64(free)
}

// Resize changes the pool capacity at the current instant — the
// shared-buffer analogue of Port.SetBuffer, and what chaos buffer
// mutations call on pooled ports. Shrinking below the current occupancy
// evicts from the tail of the longest member queue (ties broken by
// attachment order) until the pool fits; evictions count as overflow
// drops on the owning port. Non-positive sizes are ignored.
func (sb *SharedBuffer) Resize(bytes int) {
	if bytes <= 0 {
		return
	}
	sb.total = bytes
	for sb.used > sb.total {
		victim := sb.ports[0]
		for _, p := range sb.ports[1:] {
			if p.queueLen > victim.queueLen {
				victim = p
			}
		}
		if victim.queue.len() == 0 {
			// Unreachable while used > 0; guard against counter drift.
			break
		}
		pkt := victim.queue.popTail()
		victim.addQueued(-pkt.Size)
		victim.policy.OnDeparture(victim.engine.Now(), victim.totalQueueLen())
		victim.drop(pkt, true)
		victim.notifyMonitor()
	}
	for _, p := range sb.ports {
		p.checkConservation()
	}
}

// checkConservation asserts, under -tags invariants, that the pool
// counter equals the sum of member occupancies and never exceeds the
// capacity.
func (sb *SharedBuffer) checkConservation() {
	if !invariant.Enabled {
		return
	}
	invariant.Assert(sb.used >= 0, "netsim: negative shared-buffer occupancy %d", sb.used)
	invariant.Assert(sb.used <= sb.total,
		"netsim: shared-buffer occupancy %d exceeds capacity %d", sb.used, sb.total)
	sum := 0
	for _, p := range sb.ports {
		sum += p.queueLen
	}
	invariant.Assert(sum == sb.used,
		"netsim: shared-buffer drift: member queues hold %d bytes, pool counter says %d", sum, sb.used)
}
