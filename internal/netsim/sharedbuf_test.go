package netsim

import (
	"strings"
	"testing"
	"time"

	"dtdctcp/internal/sim"
)

// sharedStar wires nDst destination hosts behind one switch, each egress
// port running at bneck, fed by one source host per destination on access
// links. When pool is non-nil the switch egress ports join it.
type sharedStar struct {
	engine *sim.Engine
	net    *Network
	srcs   []*Host
	dsts   []*Host
	sw     *Switch
	egress []*Port
	pool   *SharedBuffer
}

func newSharedStar(t testing.TB, nDst int, access, bneck Rate, staticPkts int, pool *SharedBuffer) *sharedStar {
	t.Helper()
	e := sim.NewEngine(1)
	n := NewNetwork(e)
	sw := n.AddSwitch("sw")
	st := &sharedStar{engine: e, net: n, sw: sw, pool: pool}
	acc := PortConfig{Rate: access, Delay: 10 * time.Microsecond, Buffer: 1 << 20}
	bn := PortConfig{Rate: bneck, Delay: 10 * time.Microsecond, Buffer: staticPkts * pktSize}
	for i := 0; i < nDst; i++ {
		src := n.AddHost("src")
		dst := n.AddHost("dst")
		if err := n.Connect(src, sw, acc, acc); err != nil {
			t.Fatal(err)
		}
		if err := n.Connect(dst, sw, acc, bn); err != nil {
			t.Fatal(err)
		}
		st.srcs = append(st.srcs, src)
		st.dsts = append(st.dsts, dst)
	}
	if err := n.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	for _, d := range st.dsts {
		st.egress = append(st.egress, sw.PortTo(d.ID()))
	}
	if pool != nil {
		if err := pool.Attach(st.egress...); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// offer injects one packet directly at egress port i, bypassing the access
// leg so tests control arrival order exactly.
func (st *sharedStar) offer(i int) {
	pkt := st.net.AllocPacket()
	pkt.Flow = FlowID(i + 1)
	pkt.Dst = st.dsts[i].ID()
	pkt.Size = pktSize
	st.egress[i].Send(pkt)
}

func TestSharedBufferConstruction(t *testing.T) {
	if _, err := NewSharedBuffer(0, 1); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := NewSharedBuffer(-5, 1); err == nil {
		t.Fatal("negative capacity accepted")
	}
	if _, err := NewSharedBuffer(1500, 0); err == nil {
		t.Fatal("zero alpha accepted")
	}
	if _, err := NewSharedBuffer(1500, -2); err == nil {
		t.Fatal("negative alpha accepted")
	}
	sb, err := NewSharedBuffer(100*pktSize, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sb.Total() != 100*pktSize || sb.Alpha() != 2 || sb.Used() != 0 {
		t.Fatalf("accessors: total=%d alpha=%g used=%d", sb.Total(), sb.Alpha(), sb.Used())
	}
	if got := sb.Threshold(); got != 2*float64(100*pktSize) {
		t.Fatalf("empty-pool threshold = %g", got)
	}
}

func TestSharedBufferAttachRejections(t *testing.T) {
	st := newSharedStar(t, 2, 10*Gbps, Gbps, 64, nil)
	sb, _ := NewSharedBuffer(100*pktSize, 2)
	if err := sb.Attach(st.egress[0]); err != nil {
		t.Fatal(err)
	}
	// Double membership, same or different pool.
	if err := sb.Attach(st.egress[0]); err == nil {
		t.Fatal("double attach accepted")
	}
	other, _ := NewSharedBuffer(100*pktSize, 2)
	if err := other.Attach(st.egress[0]); err == nil {
		t.Fatal("attach to second pool accepted")
	}
	// Non-empty queue: park a packet on egress[1] first.
	st.offer(1)
	st.offer(1) // first is in serialization, second queues
	if st.egress[1].QueueLen() == 0 {
		t.Fatal("setup: expected a queued packet")
	}
	if err := other.Attach(st.egress[1]); err == nil {
		t.Fatal("attach with queued bytes accepted")
	}
}

// The uncontended single-port limit: a pool with one member and an α large
// enough that the allowance never binds must behave packet-for-packet like
// the static per-port tail-drop buffer it replaces.
func TestSharedBufferSinglePortEqualsTailDrop(t *testing.T) {
	const bufPkts = 16
	run := func(pool *SharedBuffer) PortStats {
		st := newSharedStar(t, 1, 10*Gbps, 100*Mbps, bufPkts, nil)
		if pool != nil {
			if err := pool.Attach(st.egress[0]); err != nil {
				t.Fatal(err)
			}
		}
		// Three bursts past capacity with partial drains between them.
		for burst := 0; burst < 3; burst++ {
			for i := 0; i < 2*bufPkts; i++ {
				st.offer(0)
			}
			st.engine.RunUntil(st.engine.Now().Add(time.Duration(burst+1) * time.Millisecond))
		}
		if err := st.engine.Run(); err != nil {
			t.Fatal(err)
		}
		return st.egress[0].Stats()
	}
	static := run(nil)
	sb, _ := NewSharedBuffer(bufPkts*pktSize, 1e12)
	pooled := run(sb)
	if static != pooled {
		t.Fatalf("single-port pooled stats diverged from tail-drop:\nstatic: %+v\npooled: %+v", static, pooled)
	}
	if static.DroppedOverflow == 0 {
		t.Fatal("vacuous: bursts never overflowed the buffer")
	}
	if sb.Used() != 0 {
		t.Fatalf("pool occupancy %d after full drain", sb.Used())
	}
}

// Property: the pool conserves bytes — at every enqueue/dequeue the counter
// equals the sum of member occupancies and never exceeds capacity.
func TestPropertySharedBufferConservation(t *testing.T) {
	const poolPkts = 32
	sb, _ := NewSharedBuffer(poolPkts*pktSize, 2)
	st := newSharedStar(t, 4, 10*Gbps, 50*Mbps, 64, sb)
	check := func(when string) {
		t.Helper()
		sum := 0
		for _, p := range st.egress {
			sum += p.QueueLen()
		}
		if sb.Used() != sum {
			t.Fatalf("%s: pool counter %d, member queues hold %d", when, sb.Used(), sum)
		}
		if sb.Used() < 0 || sb.Used() > sb.Total() {
			t.Fatalf("%s: pool occupancy %d outside [0, %d]", when, sb.Used(), sb.Total())
		}
	}
	// Uneven offered load: port i gets i+1 packets per round.
	for round := 0; round < 40; round++ {
		for i := range st.egress {
			for k := 0; k <= i; k++ {
				st.offer(i)
			}
			check("after arrivals")
		}
		st.engine.RunUntil(st.engine.Now().Add(200 * time.Microsecond))
		check("after partial drain")
	}
	if err := st.engine.Run(); err != nil {
		t.Fatal(err)
	}
	check("after full drain")
	if sb.Used() != 0 {
		t.Fatalf("drained pool still holds %d bytes", sb.Used())
	}
	dropped := uint64(0)
	for _, p := range st.egress {
		dropped += p.Stats().DroppedOverflow
	}
	if dropped == 0 {
		t.Fatal("vacuous: offered load never hit the dynamic threshold")
	}
}

// Property: as α → ∞ dynamic thresholding degenerates to a static equal
// split. Round-robin-filling N member ports with the link stopped lands
// each at the congested fixed point T = αB/(1+αN) → B/N.
func TestPropertySharedBufferAlphaInfinityStaticSplit(t *testing.T) {
	const nPorts, poolPkts = 4, 64
	sb, _ := NewSharedBuffer(poolPkts*pktSize, 1e9)
	st := newSharedStar(t, nPorts, 10*Gbps, Mbps, 64, sb)
	// Round-robin arrivals, no engine time passing: pure fill. Each port
	// immediately pulls its first packet into serialization, which leaves
	// the queue, so offer one extra round before measuring.
	for round := 0; round < 2*poolPkts; round++ {
		for i := range st.egress {
			st.offer(i)
		}
	}
	want := poolPkts / nPorts * pktSize // B/N in bytes
	for i, p := range st.egress {
		got := p.QueueLen()
		// One packet per port is in serialization (off-queue), and the
		// fixed point rounds to whole packets: allow two packets of slack.
		if got < want-2*pktSize || got > want+2*pktSize {
			t.Fatalf("port %d settled at %d bytes, want ≈ %d (B/N)", i, got, want)
		}
	}
	if sb.Used() > sb.Total() {
		t.Fatalf("pool overcommitted: %d > %d", sb.Used(), sb.Total())
	}
	if err := st.engine.Run(); err != nil {
		t.Fatal(err)
	}
}

// Small α is a conservative carve-up: with α = 1/N the congested fixed
// point keeps the pool at most half full even under saturation.
func TestSharedBufferSmallAlphaLeavesHeadroom(t *testing.T) {
	const nPorts, poolPkts = 4, 64
	sb, _ := NewSharedBuffer(poolPkts*pktSize, 1.0/nPorts)
	st := newSharedStar(t, nPorts, 10*Gbps, Mbps, 64, sb)
	for round := 0; round < 2*poolPkts; round++ {
		for i := range st.egress {
			st.offer(i)
		}
	}
	// Fixed point: N·T = N·αB/(1+αN) = B/2 at α = 1/N.
	if sb.Used() > sb.Total()/2+nPorts*pktSize {
		t.Fatalf("α=1/N pool filled to %d of %d, want ≈ half", sb.Used(), sb.Total())
	}
	if sb.Used() == 0 {
		t.Fatal("vacuous: nothing queued")
	}
	if err := st.engine.Run(); err != nil {
		t.Fatal(err)
	}
}

// Resize shrinks deterministically: evictions come off the tail of the
// longest member queue, count as overflow drops on the owning port, and
// two identical runs agree exactly.
func TestSharedBufferResizeEvictsLongestQueue(t *testing.T) {
	run := func() (used int, drops [2]uint64) {
		sb, _ := NewSharedBuffer(32*pktSize, 1e9)
		st := newSharedStar(t, 2, 10*Gbps, Mbps, 64, sb)
		// Port 0 gets 20 packets, port 1 gets 8 (one each goes straight
		// to serialization).
		for i := 0; i < 20; i++ {
			st.offer(0)
		}
		for i := 0; i < 8; i++ {
			st.offer(1)
		}
		sb.Resize(12 * pktSize)
		if sb.Total() != 12*pktSize {
			t.Fatalf("Resize did not take: total=%d", sb.Total())
		}
		return sb.Used(), [2]uint64{st.egress[0].Stats().DroppedOverflow, st.egress[1].Stats().DroppedOverflow}
	}
	used, drops := run()
	if used > 12*pktSize {
		t.Fatalf("post-shrink occupancy %d exceeds new capacity", used)
	}
	// 19+7 = 26 packets queued, capacity 12: 14 evictions, all from the
	// longer queue (port 0 held 19, evicting 12 still leaves it ≥ port 1's
	// 7, then they alternate — port 0 loses strictly more).
	if drops[0] <= drops[1] || drops[0]+drops[1] < 14 {
		t.Fatalf("eviction split %v, want longest-queue-first with ≥14 total", drops)
	}
	used2, drops2 := run()
	if used != used2 || drops != drops2 {
		t.Fatalf("Resize nondeterministic: (%d,%v) vs (%d,%v)", used, drops, used2, drops2)
	}
	// Growing never evicts; non-positive is ignored.
	sb, _ := NewSharedBuffer(10*pktSize, 1)
	sb.Resize(-1)
	if sb.Total() != 10*pktSize {
		t.Fatal("negative Resize mutated capacity")
	}
}

// Partition must reject a pool whose member ports land on different
// shards: the pool counter is unsynchronized by design.
func TestPartitionRejectsSplitPool(t *testing.T) {
	se := sim.NewShardedEngine(1, 2)
	e := se.Shard(0)
	n := NewNetwork(e)
	sw := n.AddSwitch("sw")
	cfg := PortConfig{Rate: Gbps, Delay: 25 * time.Microsecond, Buffer: 64 * pktSize}
	var dsts []*Host
	for i := 0; i < 2; i++ {
		h := n.AddHost("h")
		if err := n.Connect(h, sw, cfg, cfg); err != nil {
			t.Fatal(err)
		}
		dsts = append(dsts, h)
	}
	if err := n.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	p0, p1 := sw.PortTo(dsts[0].ID()), sw.PortTo(dsts[1].ID())
	sb, _ := NewSharedBuffer(64*pktSize, 2)
	if err := sb.Attach(p0, p1); err != nil {
		t.Fatal(err)
	}
	// Assign the two switch-port domains to different shards.
	assign := make([]int, n.NumDomains())
	assign[n.PortDomain(p0)] = 0
	assign[n.PortDomain(p1)] = 1
	if err := n.Partition(se, assign); err == nil {
		t.Fatal("split pool accepted")
	} else if !strings.Contains(err.Error(), "shared-buffer pool split") {
		t.Fatalf("unexpected error: %v", err)
	}
	// Co-located members partition fine.
	se2 := sim.NewShardedEngine(1, 2)
	e2 := se2.Shard(0)
	n2 := NewNetwork(e2)
	sw2 := n2.AddSwitch("sw")
	var dsts2 []*Host
	for i := 0; i < 2; i++ {
		h := n2.AddHost("h")
		if err := n2.Connect(h, sw2, cfg, cfg); err != nil {
			t.Fatal(err)
		}
		dsts2 = append(dsts2, h)
	}
	if err := n2.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	q0, q1 := sw2.PortTo(dsts2[0].ID()), sw2.PortTo(dsts2[1].ID())
	sb2, _ := NewSharedBuffer(64*pktSize, 2)
	if err := sb2.Attach(q0, q1); err != nil {
		t.Fatal(err)
	}
	assign2 := make([]int, n2.NumDomains())
	for d := range assign2 {
		assign2[d] = 1
	}
	assign2[n2.PortDomain(q0)] = 0
	assign2[n2.PortDomain(q1)] = 0
	if err := n2.Partition(se2, assign2); err != nil {
		t.Fatalf("co-located pool rejected: %v", err)
	}
}

// Chaos composition: SetBuffer on a pooled port resizes the pool rather
// than the (retired) static bound.
func TestSetBufferOnPooledPortResizesPool(t *testing.T) {
	sb, _ := NewSharedBuffer(32*pktSize, 1e9)
	st := newSharedStar(t, 2, 10*Gbps, Mbps, 64, sb)
	for i := 0; i < 10; i++ {
		st.offer(0)
	}
	st.egress[0].SetBuffer(4 * pktSize)
	if sb.Total() != 4*pktSize {
		t.Fatalf("SetBuffer on pooled port left pool at %d", sb.Total())
	}
	if sb.Used() > sb.Total() {
		t.Fatalf("pool overcommitted after SetBuffer: %d > %d", sb.Used(), sb.Total())
	}
	if st.egress[0].Stats().DroppedOverflow == 0 {
		t.Fatal("shrink evicted nothing")
	}
	if err := st.engine.Run(); err != nil {
		t.Fatal(err)
	}
}

// FuzzSharedBufferConfig drives arbitrary pool configurations and
// arrival/drain traces through a two-port pooled switch: construction must
// reject only non-positive parameters, and any accepted configuration must
// conserve bytes (ΣQ = Used ≤ Total) at every step and drain to empty.
func FuzzSharedBufferConfig(f *testing.F) {
	f.Add(64, 2000, []byte{0, 0, 1, 2, 3, 4, 255, 254})      // α=2.0, mixed trace
	f.Add(1, 1, []byte{0, 1})                                // minimal pool, crawling α
	f.Add(64, 1_000_000_000, []byte{0, 0, 0, 0, 1, 1, 1, 1}) // α→∞
	f.Add(8, 250, []byte{0, 2, 4, 6, 8, 10, 1, 3, 5})        // conservative α=0.25
	f.Fuzz(func(t *testing.T, poolPkts int, alphaMilli int, ops []byte) {
		if poolPkts < 0 {
			poolPkts = -poolPkts
		}
		poolPkts = poolPkts%256 + 1
		if alphaMilli < 0 {
			alphaMilli = -alphaMilli
		}
		alphaMilli = alphaMilli%2_000_000_000 + 1
		alpha := float64(alphaMilli) / 1000
		sb, err := NewSharedBuffer(poolPkts*pktSize, alpha)
		if err != nil {
			t.Fatalf("valid config rejected: %v", err)
		}
		st := newSharedStar(t, 2, 10*Gbps, 50*Mbps, 512, sb)
		for _, op := range ops {
			switch op % 4 {
			case 0, 1:
				st.offer(int(op) % 2)
			case 2:
				st.engine.RunUntil(st.engine.Now().Add(time.Duration(op) * time.Microsecond))
			case 3:
				sb.Resize((int(op)%128 + 1) * pktSize)
			}
			sum := 0
			for _, p := range st.egress {
				sum += p.QueueLen()
			}
			if sb.Used() != sum || sb.Used() < 0 || sb.Used() > sb.Total() {
				t.Fatalf("pool counter %d, members %d, capacity %d", sb.Used(), sum, sb.Total())
			}
		}
		if err := st.engine.Run(); err != nil {
			t.Fatal(err)
		}
		if sb.Used() != 0 {
			t.Fatalf("pool holds %d bytes after full drain", sb.Used())
		}
	})
}
