// Package runner executes independent simulation points concurrently.
//
// A sweep — throughput vs. flow count, completion time vs. load — is a
// set of runs that differ only in configuration and seed. Each run owns a
// private sim.Engine, so runs share no mutable state and the simulator's
// determinism guarantee (a run is a pure function of its seed) survives
// parallel execution: results are collected by input index, which makes
// the output byte-identical for any worker count.
//
// The package deliberately knows nothing about simulations. Map is a
// generic index-parallel map with panic isolation, context cancellation
// and serialized progress reporting; the core package layers sweep
// semantics on top.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Options tunes a Map call.
type Options struct {
	// Workers is the number of concurrent goroutines; values < 1 mean
	// runtime.GOMAXPROCS(0). Workers is always clamped to the job count.
	Workers int
	// ThreadsPerJob declares how many OS threads a single job keeps busy
	// (a sharded simulation run occupies one goroutine per shard); values
	// < 1 mean 1. Map divides the worker budget by it so a sweep of
	// sharded runs cannot oversubscribe the machine: explicit Workers are
	// capped at GOMAXPROCS/ThreadsPerJob (floor 1), and the default
	// worker count starts from that quotient instead of GOMAXPROCS.
	ThreadsPerJob int
	// OnProgress, when non-nil, is invoked after each job finishes with
	// the number of completed jobs and the total. Calls are serialized
	// (one at a time) but may arrive in any completion order; done is
	// monotonically increasing across calls.
	OnProgress func(done, total int)
}

// PanicError wraps a panic recovered from one job so the caller sees
// which input exploded and where, instead of losing the whole process.
type PanicError struct {
	// Index is the job input index that panicked.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// Map runs fn for every index in [0, n) on a pool of workers and returns
// the results in input order. Each invocation must be independent: fn
// shares nothing with other invocations except what the caller closes
// over, and that must be read-only or internally synchronized.
//
// On the first error (or panic, wrapped as *PanicError) no new jobs are
// dispatched; jobs already running finish, and the error belonging to
// the lowest input index is returned alongside a nil slice. Context
// cancellation stops dispatch the same way and returns ctx.Err() if no
// job error outranks it.
func Map[T any](ctx context.Context, n int, opts Options, fn func(ctx context.Context, index int) (T, error)) ([]T, error) {
	if n <= 0 {
		return []T{}, nil
	}
	workers := opts.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opts.ThreadsPerJob > 1 {
		budget := runtime.GOMAXPROCS(0) / opts.ThreadsPerJob
		if budget < 1 {
			budget = 1
		}
		if workers > budget {
			workers = budget
		}
	}
	if workers > n {
		workers = n
	}

	results := make([]T, n)
	errs := make([]error, n)

	var (
		next    atomic.Int64 // next index to dispatch
		failed  atomic.Bool  // set on first error; stops dispatch
		mu      sync.Mutex   // guards done and serializes OnProgress
		done    int
		wg      sync.WaitGroup
		ctxDone = ctx.Done()
	)

	runOne := func(ctx context.Context, i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				stack := make([]byte, 64<<10)
				stack = stack[:runtime.Stack(stack, false)]
				err = &PanicError{Index: i, Value: r, Stack: stack}
			}
		}()
		results[i], err = fn(ctx, i)
		return err
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				select {
				case <-ctxDone:
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := runOne(ctx, i); err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				if opts.OnProgress != nil {
					mu.Lock()
					done++
					opts.OnProgress(done, n)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}
