package runner

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapReturnsResultsInInputOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 33} {
		got, err := Map(context.Background(), 100, Options{Workers: workers},
			func(_ context.Context, i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	// Each job seeds its own PRNG from its index — the way sweeps seed
	// engines — so the result must be identical for any worker count.
	job := func(_ context.Context, i int) (uint64, error) {
		rng := rand.New(rand.NewSource(int64(i) + 1)) //dtlint:allow nondeterm: test-local stream, seeded per subtest
		var acc uint64
		for k := 0; k < 1000; k++ {
			acc = acc*31 + uint64(rng.Intn(1000))
		}
		return acc, nil
	}
	serial, err := Map(context.Background(), 32, Options{Workers: 1}, job)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Map(context.Background(), 32, Options{Workers: 8}, job)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("index %d: workers=1 → %d, workers=8 → %d", i, serial[i], parallel[i])
		}
	}
}

func TestMapZeroJobs(t *testing.T) {
	got, err := Map(context.Background(), 0, Options{},
		func(context.Context, int) (int, error) { return 0, errors.New("never") })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v; want empty, nil", got, err)
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	wantErr := errors.New("boom")
	_, err := Map(context.Background(), 50, Options{Workers: 4},
		func(_ context.Context, i int) (int, error) {
			if i == 7 || i == 23 {
				return 0, fmt.Errorf("job %d: %w", i, wantErr)
			}
			return i, nil
		})
	if err == nil || !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	// With 4 workers both failing jobs may run, but the reported error
	// must belong to the lowest failing index that actually ran.
	if !strings.HasPrefix(err.Error(), "job 7:") && !strings.HasPrefix(err.Error(), "job 23:") {
		t.Fatalf("err = %v, want one of the failing jobs", err)
	}
}

func TestMapStopsDispatchAfterError(t *testing.T) {
	var started atomic.Int64
	_, err := Map(context.Background(), 1000, Options{Workers: 2},
		func(_ context.Context, i int) (int, error) {
			started.Add(1)
			if i < 2 {
				return 0, errors.New("early failure")
			}
			return i, nil
		})
	if err == nil {
		t.Fatal("want error")
	}
	if n := started.Load(); n >= 1000 {
		t.Fatalf("all %d jobs ran despite early failure", n)
	}
}

func TestMapPanicIsolation(t *testing.T) {
	_, err := Map(context.Background(), 10, Options{Workers: 2},
		func(_ context.Context, i int) (int, error) {
			if i == 3 {
				panic("kaboom")
			}
			return i, nil
		})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Index != 3 || pe.Value != "kaboom" {
		t.Fatalf("PanicError = {Index: %d, Value: %v}", pe.Index, pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "runner") {
		t.Fatal("PanicError.Stack missing")
	}
}

func TestMapContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	done := make(chan struct{})
	var err error
	go func() {
		defer close(done)
		_, err = Map(ctx, 10_000, Options{Workers: 2},
			func(ctx context.Context, i int) (int, error) {
				if ran.Add(1) == 10 {
					cancel()
				}
				return i, nil
			})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Map did not return after cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 10_000 {
		t.Fatalf("all %d jobs ran despite cancellation", n)
	}
}

func TestMapProgressMonotonicAndComplete(t *testing.T) {
	var calls []int
	got, err := Map(context.Background(), 64, Options{
		Workers: 4,
		// Serialized by Map; safe to append without locking here.
		OnProgress: func(done, total int) {
			if total != 64 {
				t.Errorf("total = %d, want 64", total)
			}
			calls = append(calls, done)
		},
	}, func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 64 || len(calls) != 64 {
		t.Fatalf("results=%d progress=%d, want 64/64", len(got), len(calls))
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress call %d reported done=%d, want %d", i, d, i+1)
		}
	}
}

func TestMapDefaultWorkers(t *testing.T) {
	// Workers <= 0 must still complete everything.
	got, err := Map(context.Background(), 17, Options{Workers: 0},
		func(_ context.Context, i int) (int, error) { return i + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, v := range got {
		sum += v
	}
	if want := 17 * 18 / 2; sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

func TestMapThreadsPerJobCapsConcurrency(t *testing.T) {
	// With ThreadsPerJob exceeding the whole machine, only one job may run
	// at a time, no matter how many workers were requested.
	var cur, peak atomic.Int64
	_, err := Map(context.Background(), 16,
		Options{Workers: 8, ThreadsPerJob: 2 * runtime.GOMAXPROCS(0)},
		func(_ context.Context, i int) (int, error) {
			if c := cur.Add(1); c > peak.Load() {
				peak.Store(c)
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got != 1 {
		t.Fatalf("peak concurrency %d, want 1 (workers capped by ThreadsPerJob)", got)
	}
}
