// Allocation-regression tests for the pooled event path. They are
// excluded from race builds (the race runtime adds bookkeeping
// allocations) and skipped under -tags invariants (assertion arguments
// box into ...any); CI runs them in the default configuration, where a
// regression fails the build.

//go:build !race

package sim

import (
	"testing"
	"time"

	"dtdctcp/internal/invariant"
)

// TestScheduleSteadyStateAllocFree asserts that once the event pool is
// warm, Schedule + run recycles storage instead of allocating: the
// dominant cost of every packet-level experiment.
func TestScheduleSteadyStateAllocFree(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariant assertions box arguments; allocation budget does not apply")
	}
	e := NewEngine(1)
	fn := func() {}
	// Warm the pool past the working set of the loop below.
	for i := 0; i < 128; i++ {
		e.Schedule(e.Now()+Time(i%8+1), fn)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 64; i++ {
			e.Schedule(e.Now()+Time(i%8+1), fn)
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Schedule/run allocates %.1f objs per batch, want 0", allocs)
	}
}

// TestAfterArgSteadyStateAllocFree covers the closure-free scheduling
// path the port transmit chain uses: a long-lived fn plus an out-of-band
// pointer argument must not allocate.
func TestAfterArgSteadyStateAllocFree(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariant assertions box arguments; allocation budget does not apply")
	}
	e := NewEngine(1)
	type payload struct{ n int }
	p := &payload{}
	fn := func(arg any) { arg.(*payload).n++ }
	e.AfterArg(time.Microsecond, fn, p)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(500, func() {
		e.AfterArg(time.Microsecond, fn, p)
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("AfterArg steady state allocates %.1f objs per event, want 0", allocs)
	}
	if p.n == 0 {
		t.Fatal("argument-carrying events never ran")
	}
}

// TestTimerRearmAllocFree asserts the RTO pattern — Reset superseding a
// pending deadline on every ACK — allocates nothing once warm, including
// across the compactions its cancellations trigger.
func TestTimerRearmAllocFree(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariant assertions box arguments; allocation budget does not apply")
	}
	e := NewEngine(1)
	tm := NewTimer(e, func() {})
	for i := 0; i < 1024; i++ {
		tm.Reset(time.Millisecond)
	}
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 256; i++ {
			tm.Reset(time.Millisecond)
		}
	})
	tm.Stop()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Fatalf("timer rearm allocates %.1f objs per batch, want 0", allocs)
	}
}
