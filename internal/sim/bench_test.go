package sim

import (
	"testing"
	"time"
)

// BenchmarkScheduleRun measures raw event throughput: the dominant cost of
// every packet-level experiment (each packet is ~4 events).
func BenchmarkScheduleRun(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+Time(i%64), func() {})
		if i%1024 == 1023 {
			if err := e.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEventChain measures the self-scheduling pattern every port's
// transmit loop uses.
func BenchmarkEventChain(b *testing.B) {
	e := NewEngine(1)
	remaining := b.N
	var step func()
	step = func() {
		remaining--
		if remaining > 0 {
			e.After(time.Microsecond, step)
		}
	}
	b.ReportAllocs()
	e.After(time.Microsecond, step)
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTimerReset measures RTO-style timer rearming.
func BenchmarkTimerReset(b *testing.B) {
	e := NewEngine(1)
	tm := NewTimer(e, func() {})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm.Reset(time.Millisecond)
		if i%4096 == 4095 {
			// Drain the cancelled backlog periodically, as a real
			// run's event loop does.
			if err := e.RunUntil(e.Now()); err != nil {
				b.Fatal(err)
			}
		}
	}
	tm.Stop()
}
