package sim

import (
	"testing"
	"time"
)

// TestPendingBoundedUnderCancelHeavyWorkload drives the RTO-rearm
// pattern — schedule a far deadline, cancel it on the next "ACK", repeat
// — and asserts the queue does not accumulate the cancelled backlog.
// Before compaction existed, Pending() grew linearly with the number of
// rearms (every cancelled timer lingered until its deadline surfaced).
func TestPendingBoundedUnderCancelHeavyWorkload(t *testing.T) {
	e := NewEngine(1)
	tm := NewTimer(e, func() {})
	const rearms = 100000
	maxPending := 0
	for i := 0; i < rearms; i++ {
		// A long deadline that never fires before the next rearm.
		tm.Reset(time.Second)
		if p := e.Pending(); p > maxPending {
			maxPending = p
		}
	}
	// One live timer plus at most the compaction slack (cancelled events
	// may be up to half the queue plus the compaction floor).
	const bound = 2*compactMinCancelled + 16
	if maxPending > bound {
		t.Fatalf("Pending grew to %d under %d rearms, want ≤ %d", maxPending, rearms, bound)
	}
	tm.Stop()
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := e.Stats().Processed; got != 0 {
		t.Fatalf("Processed = %d, want 0 (every deadline was superseded)", got)
	}
}

// TestCompactionPreservesOrder cancels every other event out of a large
// batch (forcing at least one compaction) and checks the survivors still
// run in exact (time, schedule-order) sequence.
func TestCompactionPreservesOrder(t *testing.T) {
	e := NewEngine(1)
	var got []int
	var refs []EventRef
	const n = 1000
	for i := 0; i < n; i++ {
		i := i
		// Many ties on At to exercise the seq tie-break after reheapify.
		refs = append(refs, e.Schedule(Time(i%10+1), func() { got = append(got, i) }))
	}
	for i := 0; i < n; i += 2 {
		refs[i].Cancel()
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != n/2 {
		t.Fatalf("ran %d events, want %d", len(got), n/2)
	}
	// Survivors are the odd indices, ordered by (at = i%10+1, seq = i):
	// compute the expected order with a stable sort by the same key.
	want := make([]int, 0, n/2)
	for at := 1; at <= 10; at++ {
		for i := 1; i < n; i += 2 {
			if i%10+1 == at {
				want = append(want, i)
			}
		}
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("order diverged at position %d: got %d, want %d", k, got[k], want[k])
		}
	}
}

// TestCancelDuringRunStillCompacts cancels from inside event handlers,
// which is where model code (ACK processing) actually cancels from.
func TestCancelDuringRunStillCompacts(t *testing.T) {
	e := NewEngine(1)
	const n = 10000
	var victims []EventRef
	fired := 0
	for i := 0; i < n; i++ {
		victims = append(victims, e.Schedule(Time(1000000+i), func() { fired++ }))
	}
	maxPending := 0
	for i := 0; i < n; i++ {
		i := i
		e.Schedule(Time(1+i), func() {
			victims[i].Cancel()
			if p := e.Pending(); p > maxPending {
				maxPending = p
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != 0 {
		t.Fatalf("%d cancelled events fired", fired)
	}
	// The queue starts at 2n (victims + cancellers); it must shrink as
	// cancellations accumulate rather than holding all n victims.
	if maxPending >= 2*n {
		t.Fatalf("Pending never shrank below initial %d", maxPending)
	}
}
