package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"dtdctcp/internal/invariant"
)

// ErrStopped is returned by Run variants when the engine was stopped
// explicitly before reaching the requested horizon.
var ErrStopped = errors.New("sim: engine stopped")

// initialHeapCap sizes the preallocated event-heap backing storage. A
// dumbbell run keeps a few hundred events in flight (one per queued
// packet plus timers); starting at this capacity means the heap slice
// never reallocates in steady state.
const initialHeapCap = 1024

// compactMinCancelled is the floor below which lazy cancellation is left
// alone: compacting a handful of events is not worth the O(n) pass.
const compactMinCancelled = 64

// Engine is the discrete-event simulation core. It owns the virtual clock
// and the pending-event queue. An Engine must not be shared across
// goroutines; all model code runs inside event handlers on the caller's
// goroutine. Concurrent experiments each own a private Engine (see
// internal/runner).
type Engine struct {
	now     Time
	queue   eventHeap
	nextSeq uint64
	rng     *rand.Rand
	stopped bool

	// free is the event free list: fired and compacted events return
	// here and are handed back out by Schedule, so the steady-state
	// event path allocates nothing.
	free []*Event
	// cancelled counts lazily cancelled events still in the queue; when
	// they outnumber live events the queue is compacted.
	cancelled int

	// processed counts events that actually ran (cancelled events are
	// excluded). Exposed through Stats for tests and benchmarks.
	processed uint64
	scheduled uint64

	// Observability counters behind EngineStats: free-list hits and
	// misses (the pool's effectiveness), total lazy cancellations,
	// compaction passes, and the high-water mark of the pending queue.
	// Plain field increments — the hot path stays branch- and
	// allocation-free whether or not anything ever reads them.
	freeHits       uint64
	freeMisses     uint64
	cancelledTotal uint64
	compactions    uint64
	maxPending     int
}

// NewEngine creates an engine whose random source is seeded with seed.
// The same seed always produces the same run.
func NewEngine(seed int64) *Engine {
	// The engine is the single sanctioned root of randomness: every other
	// construction site must draw from Engine.Rand() or an injected
	// *rand.Rand so one seed governs the whole run.
	return &Engine{
		rng:   rand.New(rand.NewSource(seed)), //dtlint:allow nondeterm: the one seeded root source
		queue: eventHeap{items: make([]*Event, 0, initialHeapCap)},
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand exposes the engine's deterministic random source. Model code must
// draw all randomness from here so a run is a pure function of its seed.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// alloc takes an event from the free list, or makes one.
//
//dtlint:hotpath
func (e *Engine) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		e.freeHits++
		return ev
	}
	e.freeMisses++
	//dtlint:allow hotalloc: pool miss is the cold path; steady state is all free-list hits
	return &Event{}
}

// recycle returns a popped event to the free list. Bumping the
// generation first invalidates every outstanding EventRef to it.
//
//dtlint:hotpath
func (e *Engine) recycle(ev *Event) {
	ev.gen++
	ev.run = nil
	ev.runArg = nil
	ev.arg = nil
	ev.cancelled = false
	ev.heapIndex = -1
	//dtlint:allow hotalloc: the free list retains capacity; growth is amortized across the warm-up
	e.free = append(e.free, ev)
}

// enqueue pools an event and pushes it at the given instant.
//
//dtlint:hotpath
func (e *Engine) enqueue(at Time) *Event {
	return e.enqueueKeyed(at, e.now, unkeyedSrc, 0)
}

// enqueueKeyed enqueues an event with an explicit scheduling instant and
// source identity. The full key must be final before the heap push: every
// component participates in the heap ordering, so rewriting one
// afterwards would silently violate the heap invariant for same-instant
// ties.
//
//dtlint:hotpath
func (e *Engine) enqueueKeyed(at, schedAt Time, srcKey int, srcSeq uint64) *Event {
	if at < e.now {
		//dtlint:allow hotalloc: formatting a panic message on the die path costs nothing in steady state
		panic(fmt.Sprintf("sim: scheduling into the past: now=%v at=%v", e.now, at))
	}
	ev := e.alloc()
	ev.at = at
	ev.schedAt = schedAt
	ev.srcKey = srcKey
	ev.srcSeq = srcSeq
	ev.seq = e.nextSeq
	e.nextSeq++
	e.scheduled++
	e.queue.push(ev)
	if n := e.queue.Len(); n > e.maxPending {
		e.maxPending = n
	}
	return ev
}

// Schedule enqueues fn to run at the absolute instant at. Scheduling in
// the past (before Now) is a programming error and panics: allowing it
// silently would reorder causality.
//
//dtlint:hotpath
func (e *Engine) Schedule(at Time, fn func()) EventRef {
	ev := e.enqueue(at)
	ev.run = fn
	return EventRef{engine: e, ev: ev, gen: ev.gen}
}

// ScheduleArg enqueues fn to run at the absolute instant at with arg as
// its argument. The argument travels out of band so call sites with a
// long-lived fn (stored once on the owning struct) schedule without
// allocating a closure — the difference between one heap allocation per
// packet and none on the port transmit path.
//
//dtlint:hotpath
func (e *Engine) ScheduleArg(at Time, fn func(any), arg any) EventRef {
	ev := e.enqueue(at)
	ev.runArg = fn
	ev.arg = arg
	return EventRef{engine: e, ev: ev, gen: ev.gen}
}

// InjectArg enqueues fn like ScheduleArg but stamps the event with an
// explicit scheduling instant instead of the engine's clock. It is the
// entry point for cross-shard deliveries at an epoch barrier: the message
// carries the virtual instant its sender shipped it, and replaying that
// instant into the (at, schedAt, seq) ordering key makes the destination
// shard run the delivery exactly where a serial execution would have —
// before any same-instant event that was scheduled later in virtual time.
// schedAt must not exceed at.
func (e *Engine) InjectArg(at, schedAt Time, fn func(any), arg any) EventRef {
	if schedAt > at {
		panic(fmt.Sprintf("sim: inject with schedAt after at: schedAt=%v at=%v", schedAt, at))
	}
	ev := e.enqueueKeyed(at, schedAt, unkeyedSrc, 0)
	ev.runArg = fn
	ev.arg = arg
	return EventRef{engine: e, ev: ev, gen: ev.gen}
}

// ScheduleSrcArg enqueues fn like ScheduleArg but additionally stamps the
// event with a stable source identity: srcKey is a topology domain index
// (≥ 0) and srcSeq a per-source monotone counter. Cross-domain link
// deliveries use it in serial runs so that same-instant ties between
// deliveries from different domains resolve by (srcKey, srcSeq) — an
// order a partitioned run reproduces exactly at its epoch barriers —
// instead of by global scheduling order, which depends on event
// genealogy no sharded execution could reconstruct.
//
//dtlint:hotpath
func (e *Engine) ScheduleSrcArg(at Time, srcKey int, srcSeq uint64, fn func(any), arg any) EventRef {
	if srcKey < 0 {
		//dtlint:allow hotalloc: formatting a panic message on the die path costs nothing in steady state
		panic(fmt.Sprintf("sim: negative source key %d", srcKey))
	}
	ev := e.enqueueKeyed(at, e.now, srcKey, srcSeq)
	ev.runArg = fn
	ev.arg = arg
	return EventRef{engine: e, ev: ev, gen: ev.gen}
}

// InjectSrcArg is the sharded counterpart of ScheduleSrcArg: it enqueues
// a cross-shard delivery with both its sender's scheduling instant and
// source identity, giving the injected event the exact key its serial
// equivalent would have carried. schedAt must not exceed at.
func (e *Engine) InjectSrcArg(at, schedAt Time, srcKey int, srcSeq uint64, fn func(any), arg any) EventRef {
	if schedAt > at {
		panic(fmt.Sprintf("sim: inject with schedAt after at: schedAt=%v at=%v", schedAt, at))
	}
	if srcKey < 0 {
		panic(fmt.Sprintf("sim: negative source key %d", srcKey))
	}
	ev := e.enqueueKeyed(at, schedAt, srcKey, srcSeq)
	ev.runArg = fn
	ev.arg = arg
	return EventRef{engine: e, ev: ev, gen: ev.gen}
}

// After enqueues fn to run d after the current instant.
//
//dtlint:hotpath
func (e *Engine) After(d time.Duration, fn func()) EventRef {
	return e.Schedule(e.now.Add(d), fn)
}

// AfterArg enqueues fn to run d after the current instant with arg as
// its argument; see ScheduleArg.
//
//dtlint:hotpath
func (e *Engine) AfterArg(d time.Duration, fn func(any), arg any) EventRef {
	return e.ScheduleArg(e.now.Add(d), fn, arg)
}

// noteCancelled records one lazy cancellation and compacts the queue
// when cancelled events outnumber live ones. RTO timers are rearmed (one
// cancel) per ACK, so without compaction a cancel-heavy run would hold
// its entire timer history in the heap until the deadlines surface.
//
//dtlint:hotpath
func (e *Engine) noteCancelled() {
	e.cancelled++
	e.cancelledTotal++
	if e.cancelled >= compactMinCancelled && e.cancelled*2 > e.queue.Len() {
		e.compact()
	}
}

// compact removes every cancelled event from the queue in one O(n) pass
// and restores the heap property. Relative order of the survivors is
// unaffected: ordering is decided by (at, seq), which compaction does not
// touch.
//
//dtlint:hotpath
func (e *Engine) compact() {
	items := e.queue.items
	kept := items[:0]
	for _, ev := range items {
		if ev.cancelled {
			e.recycle(ev)
		} else {
			//dtlint:allow hotalloc: kept appends into the items backing array it aliases; it can never outgrow it
			kept = append(kept, ev)
		}
	}
	for i := len(kept); i < len(items); i++ {
		items[i] = nil
	}
	e.queue.items = kept
	e.queue.reheapify()
	e.cancelled = 0
	e.compactions++
}

// Stop halts the run loop after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of events still queued (including lazily
// cancelled ones that have not yet been compacted away).
func (e *Engine) Pending() int { return e.queue.Len() }

// Run processes events until the queue drains or Stop is called. It
// returns ErrStopped in the latter case.
func (e *Engine) Run() error {
	return e.run(func(*Event) bool { return true })
}

// RunUntil processes events with firing times ≤ horizon. The clock is
// left at min(horizon, time of last event) — it advances to horizon if the
// queue drains early, so back-to-back RunUntil calls observe monotonic
// time.
func (e *Engine) RunUntil(horizon Time) error {
	err := e.run(func(ev *Event) bool { return ev.at <= horizon })
	if e.now < horizon {
		e.now = horizon
	}
	return err
}

// RunFor advances the simulation by d virtual time.
func (e *Engine) RunFor(d time.Duration) error {
	return e.RunUntil(e.now.Add(d))
}

// NextEventTime returns the firing time of the earliest queued event, or
// TimeNever if the queue is empty. A lazily cancelled event at the head
// still counts — the bound it supplies is merely conservative, which is
// all the sharded coordinator's window computation needs.
func (e *Engine) NextEventTime() Time {
	if next := e.queue.peek(); next != nil {
		return next.at
	}
	return TimeNever
}

// RunStrictUntil processes events with firing times strictly before
// horizon and leaves the clock at the last event that ran (it does NOT
// advance to horizon). Epoch windows in the sharded coordinator are
// half-open [start, horizon): the shard must stop short of the horizon so
// cross-shard messages stamped at exactly horizon can still be injected,
// and its clock must not outrun the injection point.
func (e *Engine) RunStrictUntil(horizon Time) error {
	return e.run(func(ev *Event) bool { return ev.at < horizon })
}

//dtlint:hotpath
func (e *Engine) run(keep func(*Event) bool) error {
	e.stopped = false
	for {
		if e.stopped {
			return ErrStopped
		}
		next := e.queue.peek()
		if next == nil || !keep(next) {
			return nil
		}
		e.queue.pop()
		if next.cancelled {
			e.cancelled--
			e.recycle(next)
			continue
		}
		if invariant.Enabled {
			//dtlint:allow hotalloc: assertion boxing is build-tag gated; alloc tests skip under -tags invariants
			invariant.Assert(next.at >= e.now, "sim: event time moved backwards: now=%v next=%v", e.now, next.at)
		}
		e.now = next.at
		e.processed++
		// Recycle before running: the handler's own storage is saved to
		// locals, so any event the handler schedules can reuse it
		// immediately (the common self-scheduling transmit chain then
		// ping-pongs between two pooled events for its whole lifetime).
		run, runArg, arg := next.run, next.runArg, next.arg
		e.recycle(next)
		if runArg != nil {
			runArg(arg)
		} else {
			run()
		}
	}
}

// Stats reports counters about engine activity.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Scheduled:   e.scheduled,
		Processed:   e.processed,
		Pending:     e.queue.Len(),
		Cancelled:   e.cancelledTotal,
		Compactions: e.compactions,
		FreeHits:    e.freeHits,
		FreeMisses:  e.freeMisses,
		MaxPending:  e.maxPending,
	}
}

// EngineStats is a snapshot of engine counters.
type EngineStats struct {
	// Scheduled is the total number of events ever enqueued.
	Scheduled uint64
	// Processed is the number of events whose Run hook executed.
	Processed uint64
	// Pending is the number of events still queued.
	Pending int
	// Cancelled is the total number of events lazily cancelled over the
	// run (whether or not they have been compacted away yet).
	Cancelled uint64
	// Compactions counts queue compaction passes.
	Compactions uint64
	// FreeHits and FreeMisses count event allocations served from the
	// free list versus fresh heap allocations; a warm steady state has a
	// hit rate of 1.
	FreeHits, FreeMisses uint64
	// MaxPending is the high-water mark of the pending-event queue.
	MaxPending int
}
