package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"dtdctcp/internal/invariant"
)

// ErrStopped is returned by Run variants when the engine was stopped
// explicitly before reaching the requested horizon.
var ErrStopped = errors.New("sim: engine stopped")

// Engine is the discrete-event simulation core. It owns the virtual clock
// and the pending-event queue. An Engine must not be shared across
// goroutines; all model code runs inside event handlers on the caller's
// goroutine.
type Engine struct {
	now     Time
	queue   eventHeap
	nextSeq uint64
	rng     *rand.Rand
	stopped bool

	// processed counts events that actually ran (cancelled events are
	// excluded). Exposed through Stats for tests and benchmarks.
	processed uint64
	scheduled uint64
}

// NewEngine creates an engine whose random source is seeded with seed.
// The same seed always produces the same run.
func NewEngine(seed int64) *Engine {
	// The engine is the single sanctioned root of randomness: every other
	// construction site must draw from Engine.Rand() or an injected
	// *rand.Rand so one seed governs the whole run.
	return &Engine{rng: rand.New(rand.NewSource(seed))} //dtlint:allow nondeterm -- the one seeded root source
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand exposes the engine's deterministic random source. Model code must
// draw all randomness from here so a run is a pure function of its seed.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Schedule enqueues fn to run at the absolute instant at. Scheduling in
// the past (before Now) is a programming error and panics: allowing it
// silently would reorder causality.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past: now=%v at=%v", e.now, at))
	}
	ev := &Event{At: at, Run: fn, seq: e.nextSeq}
	e.nextSeq++
	e.scheduled++
	e.queue.push(ev)
	return ev
}

// After enqueues fn to run d after the current instant.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	return e.Schedule(e.now.Add(d), fn)
}

// Stop halts the run loop after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of events still queued (including lazily
// cancelled ones).
func (e *Engine) Pending() int { return e.queue.Len() }

// Run processes events until the queue drains or Stop is called. It
// returns ErrStopped in the latter case.
func (e *Engine) Run() error {
	return e.run(func(*Event) bool { return true })
}

// RunUntil processes events with firing times ≤ horizon. The clock is
// left at min(horizon, time of last event) — it advances to horizon if the
// queue drains early, so back-to-back RunUntil calls observe monotonic
// time.
func (e *Engine) RunUntil(horizon Time) error {
	err := e.run(func(ev *Event) bool { return ev.At <= horizon })
	if e.now < horizon {
		e.now = horizon
	}
	return err
}

// RunFor advances the simulation by d virtual time.
func (e *Engine) RunFor(d time.Duration) error {
	return e.RunUntil(e.now.Add(d))
}

func (e *Engine) run(keep func(*Event) bool) error {
	e.stopped = false
	for {
		if e.stopped {
			return ErrStopped
		}
		next := e.queue.peek()
		if next == nil || !keep(next) {
			return nil
		}
		e.queue.pop()
		if next.cancelled {
			continue
		}
		if invariant.Enabled {
			invariant.Assert(next.At >= e.now,
				"sim: event time moved backwards: now=%v next=%v", e.now, next.At)
		}
		e.now = next.At
		e.processed++
		next.Run()
	}
}

// Stats reports counters about engine activity.
func (e *Engine) Stats() EngineStats {
	return EngineStats{Scheduled: e.scheduled, Processed: e.processed, Pending: e.queue.Len()}
}

// EngineStats is a snapshot of engine counters.
type EngineStats struct {
	// Scheduled is the total number of events ever enqueued.
	Scheduled uint64
	// Processed is the number of events whose Run hook executed.
	Processed uint64
	// Pending is the number of events still queued.
	Pending int
}
